package realhf

import (
	"context"
	"errors"
	"testing"
)

// TestErrorTaxonomy pins the exported error taxonomy the plan service maps
// onto HTTP statuses: every rejection class is detectable with errors.Is —
// no string matching — and ErrInvalidRunOptions stays a sub-class of
// ErrInvalidConfig so existing callers keep working.
func TestErrorTaxonomy(t *testing.T) {
	if !errors.Is(ErrInvalidRunOptions, ErrInvalidConfig) {
		t.Error("ErrInvalidRunOptions must wrap ErrInvalidConfig")
	}

	p := NewPlanner(ClusterConfig{})
	ctx := context.Background()

	// Config validation failures.
	if _, err := p.Plan(ctx, ExperimentConfig{}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("empty config: %v, want wrapped ErrInvalidConfig", err)
	}
	bad := fastConfig()
	bad.Solver = "annealing"
	if _, err := p.Plan(ctx, bad); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("unknown solver: %v, want wrapped ErrInvalidConfig", err)
	}
	if _, err := AlgoRPCs("alignprop", "llama7b", "llama7b"); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("unknown algo: %v, want wrapped ErrInvalidConfig", err)
	}
	if _, err := p.Plan(ctx, fastConfig(), WithCalibrationFactors(map[string]float64{"actor/GENERATE": -1})); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("negative calibration factor: %v, want wrapped ErrInvalidConfig", err)
	}

	// Cancellation, before and during the solve.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.Plan(canceled, fastConfig()); !errors.Is(err, ErrSolveCanceled) {
		t.Errorf("pre-canceled context: %v, want wrapped ErrSolveCanceled", err)
	}
	short, cancel2 := context.WithCancel(ctx)
	go cancel2()
	big := fastConfig()
	big.SearchSteps = 50_000_000
	if _, err := p.Plan(short, big); !errors.Is(err, ErrSolveCanceled) {
		t.Errorf("mid-solve cancel: %v, want wrapped ErrSolveCanceled", err)
	}

	// Memory feasibility: a 7B cast on a node fits; a 70B cast does not.
	fits, err := p.Plan(ctx, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := fits.FeasibleMemory(); err != nil {
		t.Errorf("7B cast reported infeasible: %v", err)
	}
	oomCfg := fastConfig()
	oomCfg.RPCs = PPORPCs("llama70b", "llama70b-critic")
	oomCfg.Solver = "greedy"
	oom, err := p.Plan(ctx, oomCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := oom.FeasibleMemory(); !errors.Is(err, ErrInfeasibleMemory) {
		t.Errorf("70B-on-one-node cast: %v, want wrapped ErrInfeasibleMemory", err)
	}

	// The classes are disjoint.
	if errors.Is(ErrInvalidConfig, ErrInfeasibleMemory) || errors.Is(ErrInfeasibleMemory, ErrSolveCanceled) ||
		errors.Is(ErrSolveCanceled, ErrInvalidConfig) {
		t.Error("error taxonomy classes must be disjoint")
	}
}
