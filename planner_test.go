package realhf

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"realhf/internal/search"
)

func plannerConfig(seed int64, steps int) ExperimentConfig {
	return ExperimentConfig{
		Nodes: 1, BatchSize: 64, PromptLen: 256, GenLen: 256,
		RPCs: PPORPCs("llama7b", "llama7b-critic"), SearchSteps: steps, Seed: seed,
	}
}

func TestPlannerPlanCacheHitDeterminism(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	cfg := plannerConfig(3, 200)

	first, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request must run a solve, not hit the cache")
	}
	second, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeated config must be answered from the plan cache")
	}
	if second.Plan.Fingerprint() != first.Plan.Fingerprint() {
		t.Error("cached plan fingerprint differs from the original solve")
	}
	if second.Estimate.Cost != first.Estimate.Cost {
		t.Error("cached estimate differs from the original solve")
	}

	// An equivalent config — zero values that withDefaults resolves to the
	// same canonical request — must hit the same cache entry.
	equiv := cfg
	equiv.GPUsPerNode = 8 // default
	equiv.Solver = "mcmc" // default
	third, err := p.Plan(context.Background(), equiv)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached || third.Plan.Fingerprint() != first.Plan.Fingerprint() {
		t.Error("equivalent config must hit the plan cache with an identical plan")
	}

	// The cached plan must equal a fresh solve by an unrelated session.
	fresh, err := NewPlanner(ClusterConfig{}).Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Plan.Fingerprint() != first.Plan.Fingerprint() {
		t.Error("cached plan fingerprint differs from a freshly solved one")
	}

	st := p.Stats()
	if st.PlanRequests != 3 || st.PlanCacheHits != 2 || st.PlanCacheMisses != 1 {
		t.Errorf("stats = %+v, want 3 requests, 2 hits, 1 miss", st)
	}
	if st.Problems != 1 {
		t.Errorf("one problem planned, %d cost caches live", st.Problems)
	}
}

// TestPlannerConcurrentPlan hammers one session from many goroutines with a
// mix of identical and distinct configs; run under -race in CI. Every
// response for one config must carry the same plan fingerprint whether it
// was solved or served from cache.
func TestPlannerConcurrentPlan(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	cfgs := []ExperimentConfig{
		plannerConfig(1, 120),
		plannerConfig(9, 120), // same problem, different chain
		plannerConfig(1, 120), // identical to cfgs[0]
		{Nodes: 1, BatchSize: 32, PromptLen: 256, GenLen: 256, // distinct problem
			RPCs: DPORPCs("llama7b"), SearchSteps: 120, Seed: 5},
	}
	const goroutines = 8
	const iters = 3

	var mu sync.Mutex
	got := map[int]map[string]bool{} // config index -> fingerprints seen
	var wg sync.WaitGroup
	var firstErr error
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				idx := (g + i) % len(cfgs)
				exp, err := p.Plan(context.Background(), cfgs[idx])
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					if got[idx] == nil {
						got[idx] = map[string]bool{}
					}
					got[idx][exp.Plan.Fingerprint()] = true
				}
				mu.Unlock()
				// Heuristic shares the session estimator and cost cache.
				if _, err := p.Heuristic(cfgs[idx]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	for idx, fps := range got {
		if len(fps) != 1 {
			t.Errorf("config %d produced %d distinct plans: %v", idx, len(fps), fps)
		}
	}
	// cfgs[0] and cfgs[2] are byte-equal requests: one plan between them.
	for fp := range got[0] {
		if !got[2][fp] {
			t.Error("identical configs resolved to different plans")
		}
	}
	if st := p.Stats(); st.PlanCacheHits == 0 {
		t.Errorf("hammer saw no plan-cache hits: %+v", st)
	}
}

func TestPlannerCancellationMidSearch(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	cfg := ExperimentConfig{
		Nodes: 2, BatchSize: 256, PromptLen: 512, GenLen: 512,
		RPCs: PPORPCs("llama7b", "llama7b-critic"),
		// Far more steps than can finish before the cancel fires.
		SearchSteps: 50_000_000, Seed: 1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := p.Plan(ctx, cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Plan returned %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("error %q should say the solve was cancelled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled Plan took %v to return", elapsed)
	}
	// A failed solve must be neither cached nor counted as a solve.
	if st := p.Stats(); st.PlanCacheHits != 0 || st.PlanCacheMisses != 0 {
		t.Errorf("cancelled request polluted the counters: %+v", st)
	}

	// An already-expired deadline fails before any search work.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := p.Plan(expired, plannerConfig(1, 100)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}
}

// TestHeuristicValidatesLikeAuto pins the bugfix: Heuristic used to skip the
// Nodes check that Auto performed.
func TestHeuristicValidatesLikeAuto(t *testing.T) {
	bad := plannerConfig(1, 100)
	bad.Nodes = 0
	_, autoErr := Auto(bad)
	_, heurErr := Heuristic(bad)
	if autoErr == nil || heurErr == nil {
		t.Fatalf("Nodes=0 must fail: auto=%v heuristic=%v", autoErr, heurErr)
	}
	if autoErr.Error() != heurErr.Error() {
		t.Errorf("Auto and Heuristic must return the same validation error: %q vs %q",
			autoErr, heurErr)
	}
	bad.Nodes = -3
	if _, err := Heuristic(bad); err == nil {
		t.Error("negative Nodes must fail")
	}

	// Heuristic runs no search: search-shaping options are an error, not a
	// silent no-op; WithRunOptions still applies.
	p := NewPlanner(ClusterConfig{})
	good := plannerConfig(1, 100)
	if _, err := p.Heuristic(good, WithSolver("greedy")); err == nil {
		t.Error("Heuristic must reject search-shaping options")
	}
	if _, err := p.Heuristic(good, WithProgress(func(search.ProgressPoint) {})); err == nil {
		t.Error("Heuristic must reject WithProgress")
	}
	exp, err := p.Heuristic(good, WithRunOptions(RunOptions{UseCUDAGraph: true}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverlapComm {
		t.Error("Heuristic must honor WithRunOptions")
	}
}

func TestPlannerSessionDefaults(t *testing.T) {
	p := NewPlanner(ClusterConfig{Nodes: 1})
	cfg := plannerConfig(2, 100)
	cfg.Nodes = 0 // inherit the session cluster
	exp, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Config.Nodes != 1 || exp.Cluster.Nodes != 1 {
		t.Errorf("session default Nodes not applied: config=%d cluster=%d",
			exp.Config.Nodes, exp.Cluster.Nodes)
	}
}

func TestPlannerOptions(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	cfg := plannerConfig(4, 150)

	// WithProgress streams a monotone best-cost curve.
	var pts []search.ProgressPoint
	exp, err := p.Plan(context.Background(), cfg, WithProgress(func(pt search.ProgressPoint) {
		pts = append(pts, pt)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("WithProgress saw no points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].BestCost > pts[i-1].BestCost+1e-12 {
			t.Errorf("best cost increased at point %d: %v -> %v", i, pts[i-1].BestCost, pts[i].BestCost)
		}
	}

	// Cache hits skip the search and emit no points.
	n := len(pts)
	cached, err := p.Plan(context.Background(), cfg, WithProgress(func(pt search.ProgressPoint) {
		pts = append(pts, pt)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Cached || len(pts) != n {
		t.Errorf("cached request streamed %d new progress points", len(pts)-n)
	}

	// WithSolver overrides the engine; greedy is deterministic and distinct
	// from the cached MCMC request.
	greedy, err := p.Plan(context.Background(), cfg, WithSolver("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Cached {
		t.Error("different solver must not alias the mcmc cache entry")
	}
	if greedy.Config.Solver != "greedy" {
		t.Errorf("WithSolver not applied: %q", greedy.Config.Solver)
	}
	if _, err := p.Plan(context.Background(), cfg, WithSolver("no-such-solver")); err == nil {
		t.Error("unknown solver must fail")
	}

	// WithSearchParallelism upgrades the default solver to parallel-mcmc.
	par, err := p.Plan(context.Background(), cfg, WithSearchParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if par.Config.Solver != "parallel-mcmc" || len(par.SearchStats.Chains) != 2 {
		t.Errorf("WithSearchParallelism(2): solver=%q chains=%d",
			par.Config.Solver, len(par.SearchStats.Chains))
	}

	// WithWarmStart seeds the solve and keys the cache separately.
	warm, err := p.Plan(context.Background(), cfg, WithWarmStart(exp.Plan))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cached {
		t.Error("warm-started request must not alias the plain cache entry")
	}
	if warm.Estimate.Cost > exp.Estimate.Cost+1e-12 {
		t.Errorf("warm start (%.4f) lost to its own seed (%.4f)", warm.Estimate.Cost, exp.Estimate.Cost)
	}

	// WithRunOptions binds execution options to Run().
	serial, err := p.Plan(context.Background(), cfg,
		WithRunOptions(RunOptions{UseCUDAGraph: true, OverlapComm: false}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverlapComm {
		t.Error("Run() ignored WithRunOptions (overlap should be off)")
	}
	// ... including on cache hits.
	cachedSerial, err := p.Plan(context.Background(), cfg,
		WithRunOptions(RunOptions{UseCUDAGraph: true, OverlapComm: false}))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := cachedSerial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !cachedSerial.Cached || rep2.OverlapComm {
		t.Error("cached experiment must honor the request's run options")
	}
}

func TestSavePlanLoadExperimentRoundtrip(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	cfg := plannerConfig(6, 150)
	exp, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := exp.SavePlan(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := p.LoadExperiment(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Plan.Fingerprint() != exp.Plan.Fingerprint() {
		t.Error("loaded plan differs from the saved one")
	}
	if loaded.Estimate.Cost != exp.Estimate.Cost {
		t.Errorf("loaded estimate %.6f != original %.6f", loaded.Estimate.Cost, exp.Estimate.Cost)
	}
	rep, err := loaded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOM || rep.IterationTime <= 0 {
		t.Errorf("loaded experiment failed to run: %+v", rep)
	}

	// The package-level mirror goes through the default planner.
	if _, err := LoadExperiment(path, cfg); err != nil {
		t.Fatal(err)
	}

	// Cluster-shape mismatches are rejected.
	wrong := cfg
	wrong.Nodes = 2
	if _, err := p.LoadExperiment(path, wrong); err == nil {
		t.Error("node-count mismatch must fail")
	}
	// Model-cast mismatches are rejected.
	wrongModels := cfg
	wrongModels.RPCs = PPORPCs("llama13b", "llama7b-critic")
	if _, err := p.LoadExperiment(path, wrongModels); err == nil {
		t.Error("model mismatch must fail")
	}
}

func TestAlgoPresets(t *testing.T) {
	base := ExperimentConfig{Nodes: 1, BatchSize: 64, PromptLen: 256, GenLen: 256}

	cases := []struct {
		algo  string
		calls int
	}{{"ppo", 6}, {"dpo", 2}, {"grpo", 4}, {"remax", 5}}
	for _, tc := range cases {
		rpcs, err := AlgoRPCs(tc.algo, "llama7b", "llama7b-critic")
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.RPCs = rpcs
		g, models, err := buildGraph(cfg.withDefaults())
		if err != nil {
			t.Fatalf("%s: %v", tc.algo, err)
		}
		if len(g.Nodes) != tc.calls {
			t.Errorf("%s graph has %d calls, want %d", tc.algo, len(g.Nodes), tc.calls)
		}
		if !models["actor"].Trainable {
			t.Errorf("%s: actor must be trainable", tc.algo)
		}
	}
	if _, err := AlgoRPCs("rlaif", "llama7b", "llama7b-critic"); err == nil {
		t.Error("unknown algorithm must fail")
	}

	// Workload shaping: GRPO's calls see the grouped batch, DPO's the
	// doubled pair batch, and DPO/ReMax train full-batch.
	check := func(algo string, wantBatch, wantTrainMB int) {
		t.Helper()
		rpcs, err := AlgoRPCs(algo, "llama7b", "llama7b-critic")
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.RPCs = rpcs
		g, _, err := buildGraph(cfg.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range g.Nodes {
			if n.Work.Batch != wantBatch {
				t.Errorf("%s call %s batch=%d, want %d", algo, n.Name, n.Work.Batch, wantBatch)
			}
			if n.Name == "ActorTrain" && n.Work.MiniBatches != wantTrainMB {
				t.Errorf("%s train MiniBatches=%d, want %d", algo, n.Work.MiniBatches, wantTrainMB)
			}
		}
	}
	check("grpo", 64*GRPOGroupSize, 8)
	check("dpo", 64*2, 1)
	check("remax", 64, 1)

	// Presets must plan and run end to end through the session API.
	p := NewPlanner(ClusterConfig{Nodes: 1})
	for _, algo := range []string{"dpo", "remax"} {
		rpcs, err := AlgoRPCs(algo, "llama7b", "llama7b-critic")
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.RPCs = rpcs
		cfg.SearchSteps = 120
		exp, err := p.Plan(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		rep, err := exp.Run()
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if rep.OOM {
			t.Errorf("%s plan OOMed: %v", algo, rep.Errors)
		}
	}
}

// TestConfigFingerprintCanonical guards the cache key: search knobs are in
// the fingerprint but not the problem key, and names cannot alias.
func TestConfigFingerprintCanonical(t *testing.T) {
	a := plannerConfig(1, 100).withDefaults()
	b := a
	b.Seed = 2
	if a.problemKey() != b.problemKey() {
		t.Error("seed must not change the problem key")
	}
	if a.fingerprint() == b.fingerprint() {
		t.Error("seed must change the request fingerprint")
	}
	c := a
	c.BatchSize *= 2
	if a.problemKey() == c.problemKey() {
		t.Error("batch size must change the problem key")
	}
	// Length-prefixed tokens: ("ab","c") must not alias ("a","bc").
	d := a
	d.RPCs = append([]ModelFunctionCallDef{}, a.RPCs...)
	d.RPCs[0].InputData = []string{"ab", "c"}
	e := a
	e.RPCs = append([]ModelFunctionCallDef{}, a.RPCs...)
	e.RPCs[0].InputData = []string{"a", "bc"}
	if d.problemKey() == e.problemKey() {
		t.Error("token lists alias under concatenation")
	}
}

// TestPlannerLRUEviction exercises the bounded plan cache.
func TestPlannerLRUEviction(t *testing.T) {
	p := NewPlanner(ClusterConfig{PlanCacheEntries: 2, ProblemCacheEntries: 1})
	mk := func(seed int64) ExperimentConfig { return plannerConfig(seed, 80) }
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := p.Plan(context.Background(), mk(seed)); err != nil {
			t.Fatal(err)
		}
	}
	// Seed 1 was evicted by seeds 2 and 3; re-planning it is a miss.
	again, err := p.Plan(context.Background(), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Error("evicted entry served from cache")
	}
	// Seed 3 is still resident.
	hit, err := p.Plan(context.Background(), mk(3))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Error("resident entry missed the cache")
	}
}

// TestCachedPlanIsolation: mutating a returned plan must not corrupt the
// cache or other callers.
func TestCachedPlanIsolation(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	cfg := plannerConfig(8, 120)
	first, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := first.Plan.Fingerprint()
	for name := range first.Plan.Assign {
		delete(first.Plan.Assign, name) // vandalize the caller's copy
		break
	}
	second, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Plan.Fingerprint() != fp {
		t.Error("cache entry was corrupted by a caller's mutation")
	}
	for name := range second.Plan.Assign {
		delete(second.Plan.Assign, name)
		break
	}
	third, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.Plan.Fingerprint() != fp {
		t.Error("cache entry was corrupted by a cached caller's mutation")
	}
}

func TestPlannerTimeBoundedBypassesCache(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	cfg := plannerConfig(11, 0)
	cfg.SearchTime = 50 * time.Millisecond
	a, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cached || b.Cached {
		t.Error("time-bounded searches must not be replayed from the plan cache")
	}
	// The bypass also covers the multi-chain engine: every time-bounded
	// parallel request runs a fresh solve (its exchange barriers terminate
	// on the clock, so results are nondeterministic and must not be
	// replayed).
	for i := 0; i < 2; i++ {
		exp, err := p.Plan(context.Background(), cfg, WithSearchParallelism(3))
		if err != nil {
			t.Fatal(err)
		}
		if exp.Cached {
			t.Error("time-bounded parallel-mcmc request hit the plan cache")
		}
		if got := len(exp.SearchStats.Chains); got != 3 {
			t.Errorf("want 3 chains of stats, got %d", got)
		}
	}
	st := p.Stats()
	if st.PlanCacheHits != 0 || st.PlanCacheMisses != 4 {
		t.Errorf("time-bounded requests must all count as misses: hits %d misses %d",
			st.PlanCacheHits, st.PlanCacheMisses)
	}
}

// TestPlanForOverlapIsolatesCaches: a serialized and an overlap-aware
// request for the same workload must not share the per-problem cost cache
// (their estimators disagree about every makespan) nor the plan cache, and
// WithOverlapAwareSearch must be equivalent to setting the config knob.
func TestPlanForOverlapIsolatesCaches(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	cfg := plannerConfig(3, 200)
	serial, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ovCfg := cfg
	ovCfg.PlanForOverlap = true
	over, err := p.Plan(context.Background(), ovCfg)
	if err != nil {
		t.Fatal(err)
	}
	if over.Cached {
		t.Error("overlap-aware request must not be answered from the serialized plan cache")
	}
	if st := p.Stats(); st.Problems != 2 {
		t.Errorf("serialized and overlap-aware solves must own separate cost caches, got %d problems", st.Problems)
	}
	// Same request expressed through the option: identical fingerprint,
	// answered from the overlap-aware cache entry.
	viaOpt, err := p.Plan(context.Background(), cfg, WithOverlapAwareSearch())
	if err != nil {
		t.Fatal(err)
	}
	if !viaOpt.Cached {
		t.Error("WithOverlapAwareSearch must alias ExperimentConfig.PlanForOverlap in the plan cache")
	}
	if viaOpt.Plan.Fingerprint() != over.Plan.Fingerprint() {
		t.Error("option and config knob chose different plans")
	}
	if serial.Config.PlanForOverlap || !over.Config.PlanForOverlap {
		t.Error("returned Experiment.Config must echo the cost semantics used")
	}
	if _, err := p.Heuristic(cfg, WithOverlapAwareSearch()); err == nil {
		t.Error("Heuristic must reject WithOverlapAwareSearch (no search runs)")
	}
	// Heuristic honors the config knob: same symmetric plan, estimated
	// under the overlapped schedule — never above its serialized estimate.
	heurSerial, err := p.Heuristic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heurOver, err := p.Heuristic(ovCfg)
	if err != nil {
		t.Fatal(err)
	}
	if heurOver.Plan.Fingerprint() != heurSerial.Plan.Fingerprint() {
		t.Error("PlanForOverlap must not change the heuristic plan, only its estimate")
	}
	if heurOver.Estimate.TimeCost > heurSerial.Estimate.TimeCost {
		t.Errorf("overlapped heuristic estimate %.4f exceeds serialized %.4f of the same plan",
			heurOver.Estimate.TimeCost, heurSerial.Estimate.TimeCost)
	}
	// The overlap-aware solve is warm-started with the heuristic seed, so
	// its cost can never exceed the heuristic's under the same semantics.
	if over.Estimate.Cost > heurOver.Estimate.Cost {
		t.Errorf("overlap-aware solve (%.4f) worse than its heuristic seed under overlapped costs (%.4f)",
			over.Estimate.Cost, heurOver.Estimate.Cost)
	}
}

func TestPlannerStatsCostCacheReuse(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	cfg := plannerConfig(1, 150)
	if _, err := p.Plan(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	st1 := p.Stats()
	// A different seed re-searches the same problem over the warm cache.
	cfg.Seed = 2
	if _, err := p.Plan(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	st2 := p.Stats()
	if st2.Problems != 1 {
		t.Errorf("one problem, %d cost caches", st2.Problems)
	}
	if st2.CostCacheHits <= st1.CostCacheHits {
		t.Error("re-searching a known problem must reuse its cost cache")
	}
}

func ExamplePlanner() {
	planner := NewPlanner(ClusterConfig{Nodes: 1})
	cfg := ExperimentConfig{
		BatchSize: 64, PromptLen: 256, GenLen: 256,
		RPCs: PPORPCs("llama7b", "llama7b-critic"), SearchSteps: 150, Seed: 1,
	}
	first, _ := planner.Plan(context.Background(), cfg)
	second, _ := planner.Plan(context.Background(), cfg)
	fmt.Println("second request cached:", second.Cached,
		"identical:", first.Plan.Fingerprint() == second.Plan.Fingerprint())
	// Output: second request cached: true identical: true
}
