module realhf

go 1.24
