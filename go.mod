module realhf

go 1.23
