package realhf

import (
	"context"
	"errors"
	"math"
	"testing"
)

// fastConfig is a one-node workload small enough for validation-focused
// tests that still have to run a real (short) search.
func fastConfig() ExperimentConfig {
	return ExperimentConfig{
		Nodes: 1, BatchSize: 64, PromptLen: 256, GenLen: 256,
		RPCs: PPORPCs("llama7b", "llama7b-critic"), SearchSteps: 200, Seed: 3,
	}
}

// TestRunOptionsValidationShared: negative, NaN and infinite cluster
// overrides are rejected with the same wrapped ErrInvalidRunOptions by
// every entry point that accepts RunOptions — RunWith at execution time,
// Run via options bound at planning time, and WithRunOptions inside
// Planner.Plan itself.
func TestRunOptionsValidationShared(t *testing.T) {
	planner := NewPlanner(ClusterConfig{})
	exp, err := planner.Plan(context.Background(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	bad := []RunOptions{
		{BandwidthScale: -1},
		{LatencyScale: math.NaN()},
		{MemoryScale: math.Inf(1)},
		{BandwidthScale: math.Inf(-1)},
	}
	for _, opts := range bad {
		if err := opts.Validate(); !errors.Is(err, ErrInvalidRunOptions) {
			t.Fatalf("Validate(%+v) = %v, want ErrInvalidRunOptions", opts, err)
		}
		if _, err := exp.RunWith(opts); !errors.Is(err, ErrInvalidRunOptions) {
			t.Fatalf("RunWith(%+v) = %v, want ErrInvalidRunOptions", opts, err)
		}
		// WithRunOptions rejects at planning time, before any search runs.
		if _, err := planner.Plan(context.Background(), fastConfig(), WithRunOptions(opts)); !errors.Is(err, ErrInvalidRunOptions) {
			t.Fatalf("Plan(WithRunOptions(%+v)) = %v, want ErrInvalidRunOptions", opts, err)
		}
		if _, err := planner.Heuristic(fastConfig(), WithRunOptions(opts)); !errors.Is(err, ErrInvalidRunOptions) {
			t.Fatalf("Heuristic(WithRunOptions(%+v)) = %v, want ErrInvalidRunOptions", opts, err)
		}
	}

	// Run() executes under bound options, so a bad binding that slipped past
	// planning-time checks would still be rejected at run time; a zero or
	// positive override is accepted.
	if err := (RunOptions{}).Validate(); err != nil {
		t.Fatalf("zero RunOptions must validate, got %v", err)
	}
	if err := (RunOptions{BandwidthScale: 0.5, LatencyScale: 2, MemoryScale: 1}).Validate(); err != nil {
		t.Fatalf("positive overrides must validate, got %v", err)
	}
}

// TestRunOptionsClusterOverridesApply: a what-if run under a slower fabric
// takes longer than the default run of the same plan, and a shrunken HBM
// override turns a feasible plan into a reported OOM. The unscaled plan and
// the default report stay untouched.
func TestRunOptionsClusterOverridesApply(t *testing.T) {
	planner := NewPlanner(ClusterConfig{})
	exp, err := planner.Plan(context.Background(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := exp.RunWith(DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if base.OOM {
		t.Fatalf("base run OOMed: %v", base.Errors)
	}

	slow := DefaultRunOptions()
	slow.BandwidthScale, slow.LatencyScale = 0.05, 20
	slowRep, err := exp.RunWith(slow)
	if err != nil {
		t.Fatal(err)
	}
	if slowRep.IterationTime <= base.IterationTime {
		t.Errorf("20x-slower fabric run (%v) should exceed default (%v)",
			slowRep.IterationTime, base.IterationTime)
	}

	tiny := DefaultRunOptions()
	tiny.MemoryScale = 0.05
	tinyRep, err := exp.RunWith(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !tinyRep.OOM {
		t.Error("a 4GB-device override should OOM the 7B cast")
	}

	// The experiment's own plan must be untouched by scaled runs.
	if exp.Plan.Cluster.GPU.MemoryBytes != exp.Cluster.GPU.MemoryBytes {
		t.Error("scaled run mutated the experiment's plan cluster")
	}
	again, err := exp.RunWith(DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if again.IterationTime != base.IterationTime {
		t.Errorf("default rerun changed after scaled runs: %v vs %v", again.IterationTime, base.IterationTime)
	}
}
