package realhf

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"realhf/internal/runtime"
)

// chaosRig builds Trainer worker fleets whose chan transport is wrapped in
// a runtime.FaultyTransport, and remembers the latest fleet's wrapper so a
// test can arm faults against whatever fleet the session currently runs.
type chaosRig struct {
	mu sync.Mutex
	ft *runtime.FaultyTransport
}

func (r *chaosRig) factory(numGPUs int, memoryBytes int64) (*runtime.WorkerPool, error) {
	workers := make([]*runtime.ModelWorker, numGPUs)
	for i := range workers {
		workers[i] = runtime.NewModelWorker(i, memoryBytes)
	}
	ft := runtime.NewFaultyTransport(runtime.NewChanTransport(workers))
	r.mu.Lock()
	r.ft = ft
	r.mu.Unlock()
	return runtime.NewWorkerPoolWith(workers, ft), nil
}

func (r *chaosRig) transport() *runtime.FaultyTransport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ft
}

// TestTrainerShrinkReplanOnWorkerLoss: killing a worker mid-campaign must
// not end the session — the Trainer evicts the dead device's node,
// replans onto the survivor mesh, charges the §5 reallocation, re-executes
// the iteration there, and keeps the campaign's accounting consistent.
func TestTrainerShrinkReplanOnWorkerLoss(t *testing.T) {
	ctx := context.Background()
	planner := NewPlanner(ClusterConfig{})
	rig := &chaosRig{}
	cfg := trainerConfig()
	cfg.Nodes = 2

	tr, err := planner.Train(ctx, cfg, WithWorkerPoolFactory(rig.factory))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	first, err := tr.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first.WorkerLost || first.Nodes != 2 {
		t.Fatalf("healthy iteration reported %+v", first)
	}

	rig.transport().Fail(3, runtime.FaultKill)
	rep, err := tr.Step(ctx)
	if err != nil {
		t.Fatalf("Step with a killed worker must shrink and survive, got %v", err)
	}
	if !rep.WorkerLost || len(rep.LostGPUs) != 1 || rep.LostGPUs[0] != 3 {
		t.Fatalf("loss not recorded: %+v", rep)
	}
	if rep.Nodes != 1 {
		t.Fatalf("iteration after shrink ran on %d nodes, want 1", rep.Nodes)
	}
	if !rep.Replanned || !rep.Switched {
		t.Fatalf("shrink must replan and switch: %+v", rep)
	}
	if rep.ReallocSwitchCost <= 0 {
		t.Fatal("shrink must charge a positive reallocation cost")
	}
	if rep.MakespanV <= first.MakespanV {
		t.Fatalf("degraded makespan %.3f must exceed the 2-node %.3f", rep.MakespanV, first.MakespanV)
	}

	st := tr.Stats()
	if st.Nodes != 1 || st.WorkerFailures != 1 {
		t.Fatalf("stats after shrink: %+v", st)
	}

	// The campaign keeps running on the survivor fleet.
	next, err := tr.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if next.WorkerLost || next.Nodes != 1 {
		t.Fatalf("post-shrink iteration: %+v", next)
	}
}

// TestTrainerWorkerLossNoSurvivors: losing a worker on the last remaining
// node cannot be recovered by shrinking — the step must fail with the
// package sentinel (for taxonomy dispatch) and the typed runtime error
// (naming the device) both in the chain.
func TestTrainerWorkerLossNoSurvivors(t *testing.T) {
	ctx := context.Background()
	planner := NewPlanner(ClusterConfig{})
	rig := &chaosRig{}

	tr, err := planner.Train(ctx, trainerConfig(), WithWorkerPoolFactory(rig.factory))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	rig.transport().Fail(0, runtime.FaultKill)
	_, err = tr.Step(ctx)
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("Step = %v, want ErrWorkerLost in the chain", err)
	}
	var lost *runtime.ErrWorkerLost
	if !errors.As(err, &lost) || lost.GPU != 0 {
		t.Fatalf("Step = %v, want *runtime.ErrWorkerLost on gpu 0", err)
	}
	st := tr.Stats()
	if st.WorkerFailures != 1 {
		t.Fatalf("unrecovered loss must still count: %+v", st)
	}
}

// TestTrainerCampaignPartialReportOnLoss: a campaign ended by an
// unrecoverable loss hands back the completed prefix with
// CompletedIterations consistent with the accounting.
func TestTrainerCampaignPartialReportOnLoss(t *testing.T) {
	ctx := context.Background()
	planner := NewPlanner(ClusterConfig{})
	rig := &chaosRig{}

	tr, err := planner.Train(ctx, trainerConfig(),
		WithWorkerPoolFactory(rig.factory),
		WithIterationProgress(func(r IterationReport) {
			if r.Iter == 1 {
				rig.transport().Fail(2, runtime.FaultKill)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	rep, err := tr.Campaign(ctx, 4)
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("campaign = %v, want ErrWorkerLost", err)
	}
	if rep == nil {
		t.Fatal("failed campaign must return the partial report")
	}
	if rep.CompletedIterations != 2 || len(rep.Iterations) != 2 {
		t.Fatalf("partial report completed %d/%d iterations, want 2", rep.CompletedIterations, len(rep.Iterations))
	}
	var sum float64
	for _, r := range rep.Iterations {
		sum += r.MakespanV + r.ReallocSwitchCost
	}
	if sum != rep.TotalMakespanV {
		t.Fatalf("partial total %.4f != per-iteration sum %.4f", rep.TotalMakespanV, sum)
	}
}

// TestCheckpointResumeExactReplay: Checkpoint → (simulated) kill →
// ResumeTrain on a fresh planner replays the campaign exactly — the resumed
// session's next iteration matches the uninterrupted session's byte for
// byte: same plan fingerprint, same iteration counter, same makespan and
// switch accounting. The generation-length ramp makes the comparison
// meaningful: the post-resume step triggers a replan, so every piece of
// restored state (plan, calibration, counters, drift flag) must be exact
// for the two sessions to agree.
func TestCheckpointResumeExactReplay(t *testing.T) {
	ctx := context.Background()
	schedule := WithGenLenSchedule(rampSchedule)

	orig, err := NewPlanner(ClusterConfig{}).Train(ctx, trainerConfig(), schedule)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	if _, err := orig.Campaign(ctx, 2); err != nil {
		t.Fatal(err)
	}

	var ckpt bytes.Buffer
	if err := orig.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	// Checkpoints are deterministic: a second write is byte-identical.
	var again bytes.Buffer
	if err := orig.Checkpoint(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt.Bytes(), again.Bytes()) {
		t.Fatal("two checkpoints of the same session differ")
	}

	cont, err := orig.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := NewPlanner(ClusterConfig{}).ResumeTrain(ctx, bytes.NewReader(ckpt.Bytes()), trainerConfig(), schedule)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	rep, err := resumed.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Iter != cont.Iter {
		t.Fatalf("resumed iteration counter %d != uninterrupted %d", rep.Iter, cont.Iter)
	}
	if rep.PlanFingerprint != cont.PlanFingerprint {
		t.Fatalf("resumed plan fingerprint %s != uninterrupted %s", rep.PlanFingerprint, cont.PlanFingerprint)
	}
	if rep.MakespanV != cont.MakespanV || rep.EstMakespanV != cont.EstMakespanV {
		t.Fatalf("resumed makespan (%.6f est %.6f) != uninterrupted (%.6f est %.6f)",
			rep.MakespanV, rep.EstMakespanV, cont.MakespanV, cont.EstMakespanV)
	}
	if rep.ReallocSwitchCost != cont.ReallocSwitchCost || rep.Replanned != cont.Replanned || rep.Switched != cont.Switched {
		t.Fatalf("resumed replan accounting %+v != uninterrupted %+v", rep, cont)
	}
	a, b := resumed.Stats(), orig.Stats()
	if a.Iterations != b.Iterations || a.Replans != b.Replans || a.Switches != b.Switches ||
		a.SwitchCostV != b.SwitchCostV || a.TotalMakespanV != b.TotalMakespanV ||
		a.PlanFingerprint != b.PlanFingerprint {
		t.Fatalf("resumed stats %+v != uninterrupted %+v", a, b)
	}
}

// TestResumeRejectsBadCheckpoints: resume failures are config errors —
// garbage bytes, a tampered fingerprint, and a node count the checkpoint
// cannot describe all wrap ErrInvalidConfig.
func TestResumeRejectsBadCheckpoints(t *testing.T) {
	ctx := context.Background()
	planner := NewPlanner(ClusterConfig{})
	tr, err := planner.Train(ctx, trainerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Step(ctx); err != nil {
		t.Fatal(err)
	}
	var good bytes.Buffer
	if err := tr.Checkpoint(&good); err != nil {
		t.Fatal(err)
	}

	if _, err := planner.ResumeTrain(ctx, strings.NewReader("not json"), trainerConfig()); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("garbage checkpoint: %v, want ErrInvalidConfig", err)
	}

	tampered := strings.Replace(good.String(), `"plan_fingerprint": "`, `"plan_fingerprint": "00`, 1)
	if _, err := planner.ResumeTrain(ctx, strings.NewReader(tampered), trainerConfig()); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("tampered fingerprint: %v, want ErrInvalidConfig", err)
	}

	// A config whose model cast disagrees with the checkpointed plan.
	other := trainerConfig()
	other.RPCs = PPORPCs("llama13b", "llama13b-critic")
	if _, err := planner.ResumeTrain(ctx, bytes.NewReader(good.Bytes()), other); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("model mismatch: %v, want ErrInvalidConfig", err)
	}
}

// TestWorkerTimeoutOptionValidation: a negative liveness bound is a run
// option rejection (and therefore a config error).
func TestWorkerTimeoutOptionValidation(t *testing.T) {
	opts := DefaultRunOptions()
	opts.WorkerTimeout = -time.Second
	_, err := NewPlanner(ClusterConfig{}).Train(context.Background(), trainerConfig(), WithTrainRunOptions(opts))
	if !errors.Is(err, ErrInvalidRunOptions) || !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Train with negative WorkerTimeout = %v, want ErrInvalidRunOptions", err)
	}
}
