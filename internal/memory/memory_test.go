package memory

import (
	"testing"

	"realhf/internal/dfg"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

func TestStaticShardsOverTPandPP(t *testing.T) {
	p := model.LLaMA70B.Params()
	s1 := parallel.Strategy{DP: 1, TP: 1, PP: 1, MicroBatches: 1}
	s8 := parallel.Strategy{DP: 1, TP: 2, PP: 4, MicroBatches: 1}
	b1 := Static(p, s1, StaticOpts{Trainable: true})
	b8 := Static(p, s8, StaticOpts{Trainable: true})
	if b8 >= b1 || b1/b8 < 7 || b1/b8 > 9 {
		t.Errorf("tp*pp=8 should shard static memory ~8×: %d vs %d", b1, b8)
	}
}

func TestDistributedOptimizerShardsOverDP(t *testing.T) {
	p := model.LLaMA70B.Params()
	s := parallel.Strategy{DP: 4, TP: 2, PP: 4, MicroBatches: 1}
	dense := Static(p, s, StaticOpts{Trainable: true})
	sharded := Static(p, s, StaticOpts{Trainable: true, ShardOptimizerOverDP: true})
	if sharded >= dense {
		t.Error("distributed optimizer must reduce per-GPU static memory")
	}
	// The reduction applies only to the 12B/param optimizer slice.
	shard := p / 8
	wantDiff := shard*12 - shard*12/4
	if dense-sharded != wantDiff {
		t.Errorf("optimizer sharding saved %d bytes, want %d", dense-sharded, wantDiff)
	}
}

func TestFrozenModelsKeepOnlyWeights(t *testing.T) {
	p := model.LLaMA7B.Params()
	s := parallel.Strategy{DP: 2, TP: 2, PP: 2, MicroBatches: 1}
	frozen := Static(p, s, StaticOpts{})
	if want := p / 4 * 2; frozen != want {
		t.Errorf("frozen static = %d, want weights only %d", frozen, want)
	}
	if off := Static(p, s, StaticOpts{OffloadParams: true}); off != 0 {
		t.Errorf("offloaded frozen model should hold 0 device bytes, got %d", off)
	}
}

func TestOffloadZeRO3Interaction(t *testing.T) {
	// OffloadParams removes exactly the resting bf16 weight shard under
	// every sharding regime; gradient and optimizer bytes are untouched.
	p := model.LLaMA70B.Params()

	z3 := parallel.Strategy{DP: 8, TP: 1, PP: 1, MicroBatches: 1, ZeRO3: true}
	resident := Static(p, z3, StaticOpts{})
	offloaded := Static(p, z3, StaticOpts{OffloadParams: true})
	if offloaded != 0 {
		t.Errorf("frozen ZeRO-3 model with offloaded params should hold 0 device bytes, got %d", offloaded)
	}
	if want := p / 8 * 2; resident-offloaded != want {
		t.Errorf("ZeRO-3 offload saved %d bytes, want the DP-sharded weight shard %d", resident-offloaded, want)
	}

	// A trainable ZeRO-3 model keeps its gradient+optimizer shard even when
	// OffloadParams is (nonsensically) set: the ledger never lets offload
	// hide training state.
	trained := Static(p, z3, StaticOpts{Trainable: true, OffloadParams: true})
	if want := p / 8 * (2 + 12); trained != want {
		t.Errorf("trainable ZeRO-3 + offload static = %d, want grads+optimizer %d", trained, want)
	}

	// Dense sharding: offload saves the TP×PP weight shard, optimizer
	// sharding still applies on top.
	dense := parallel.Strategy{DP: 4, TP: 2, PP: 4, MicroBatches: 1}
	full := Static(p, dense, StaticOpts{Trainable: true, ShardOptimizerOverDP: true})
	off := Static(p, dense, StaticOpts{Trainable: true, ShardOptimizerOverDP: true, OffloadParams: true})
	if want := p / 8 * 2; full-off != want {
		t.Errorf("dense offload saved %d bytes, want the TP×PP weight shard %d", full-off, want)
	}
	if off != p/8*2+p/8*12/4 {
		t.Errorf("dense trainable+offload static = %d, want gradients + DP-sharded optimizer %d",
			off, p/8*2+p/8*12/4)
	}
}

func spec(typ dfg.CallType, cfg model.Config, st parallel.Strategy, nodes int) gpumodel.CallSpec {
	return gpumodel.CallSpec{
		Cfg: cfg, Type: typ,
		Work:     dfg.Workload{Batch: 512, PromptLen: 1024, GenLen: 1024, MiniBatches: 8},
		Strategy: st, Mesh: mesh.Full(hardware.DefaultCluster(nodes)),
	}
}

func TestActiveGenerationIncludesKVCache(t *testing.T) {
	st := parallel.Strategy{DP: 16, TP: 2, PP: 4, MicroBatches: 4}
	cfg := model.LLaMA70B
	gen := Active(spec(dfg.Generate, cfg, st, 16))
	params := ParamShardBytes(cfg.Params(), st)
	// 512/16 = 32 sequences per DP rank, full 2048-token KV entries over
	// 80/4 = 20 local layers, TP-sharded by 2.
	kv := int64(32) * 2048 * cfg.KVBytesPerTokenPerLayer() * 20 / 2
	if gen < params+kv {
		t.Errorf("generation active %d must include params %d + KV %d", gen, params, kv)
	}
}

func TestActiveTrainLogitsDominate(t *testing.T) {
	// The paper's footnote: 128k-vocab softmax is enormous. Critic calls
	// (scalar head) must be much lighter than actor calls.
	st := parallel.Strategy{DP: 4, TP: 8, PP: 4, MicroBatches: 8}
	actor := spec(dfg.Train, model.LLaMA70B, st, 16)
	critic := actor
	critic.IsCritic = true
	a, c := Active(actor), Active(critic)
	if a <= c {
		t.Errorf("actor train active (%d) should exceed critic's (%d)", a, c)
	}
}

func TestActiveFitsRealisticPlan(t *testing.T) {
	// The searched 70B plan of paper Table 2 must fit in 80 GB together
	// with its training static memory.
	hw := hardware.DefaultCluster(16)
	trainSt := parallel.Strategy{DP: 4, TP: 2, PP: 16, MicroBatches: 2}
	static := Static(model.LLaMA70B.Params(), trainSt,
		StaticOpts{Trainable: true, ShardOptimizerOverDP: true})
	train := spec(dfg.Train, model.LLaMA70B, trainSt, 16)
	act := Active(train)
	if static+act >= hw.GPU.MemoryBytes {
		t.Errorf("Table 2 style plan OOMs: static %d + active %d >= %d",
			static, act, hw.GPU.MemoryBytes)
	}
}

func TestNaiveDataParallelOOMs(t *testing.T) {
	// 70B with pure DP cannot fit: this is what forces the planner towards
	// model parallelism, as on real hardware.
	hw := hardware.DefaultCluster(16)
	st := parallel.Strategy{DP: 128, TP: 1, PP: 1, MicroBatches: 1}
	static := Static(model.LLaMA70B.Params(), st, StaticOpts{Trainable: true, ShardOptimizerOverDP: true})
	if static < hw.GPU.MemoryBytes {
		t.Errorf("70B pure-DP static %d unexpectedly fits in %d", static, hw.GPU.MemoryBytes)
	}
}

func TestActiveScalesWithContext(t *testing.T) {
	st := parallel.Strategy{DP: 16, TP: 2, PP: 4, MicroBatches: 4}
	short := spec(dfg.Generate, model.LLaMA34B, st, 16)
	long := short
	long.Work.PromptLen, long.Work.GenLen = 1024, 7168 // ctx 8192
	if Active(long) <= Active(short) {
		t.Error("longer context must increase KV footprint")
	}
}

func TestMicroBatchesReduceActivationPeak(t *testing.T) {
	one := spec(dfg.Train, model.LLaMA70B, parallel.Strategy{DP: 4, TP: 8, PP: 4, MicroBatches: 1}, 16)
	many := spec(dfg.Train, model.LLaMA70B, parallel.Strategy{DP: 4, TP: 8, PP: 4, MicroBatches: 8}, 16)
	if Active(many) >= Active(one) {
		t.Errorf("more micro-batches should lower activation peak: %d vs %d",
			Active(many), Active(one))
	}
}

func TestParamShardBytes(t *testing.T) {
	p := model.LLaMA7B.Params()
	s := parallel.Strategy{DP: 3, TP: 2, PP: 2, MicroBatches: 1}
	if got, want := ParamShardBytes(p, s), p/4*2; got != want {
		t.Errorf("ParamShardBytes = %d, want %d (dp must not shard params)", got, want)
	}
}
