// Package memory implements the paper's §5.1 memory model. Runtime memory
// divides into static memory — gradients and optimizer states that persist
// at a trained model's home location for the whole experiment — and active
// memory that exists only while a function call runs: reallocable parameter
// copies, activations, KV cache, and logits. An execution plan is feasible
// only if every device's peak stays under the HBM capacity.
package memory

import (
	"realhf/internal/dfg"
	"realhf/internal/gpumodel"
	"realhf/internal/parallel"
)

const (
	bytesBF16 = 2
	// optimizerBytesPerParam covers the fp32 master copy and the two Adam
	// moments (4+4+4 bytes).
	optimizerBytesPerParam = 12
	// actBytesPerTokenPerLayerFactor × hidden is the activation footprint of
	// one token in one layer with selective recomputation enabled.
	actBytesPerTokenPerLayerFactor = 18
	// inferenceLiveLayers is how many layers' activations are live at once
	// during a no-grad forward pass (buffers are recycled layer to layer).
	inferenceLiveLayers = 2
)

// StaticOpts selects what persistent state a model keeps.
type StaticOpts struct {
	// Trainable models keep gradients and optimizer states.
	Trainable bool
	// ShardOptimizerOverDP enables the Megatron-style distributed optimizer,
	// splitting optimizer states across data-parallel peers.
	ShardOptimizerOverDP bool
	// OffloadParams parks the bf16 weights in host memory between calls
	// (only meaningful for frozen models).
	OffloadParams bool
}

// Static returns the persistent per-GPU bytes of a model with the given
// total parameter count held under strategy s.
func Static(params int64, s parallel.Strategy, o StaticOpts) int64 {
	if s.ZeRO3 {
		// Fully sharded: weights, gradients and optimizer states all split
		// across the DP group.
		shard := params / int64(s.DP)
		var b int64
		if !o.OffloadParams {
			b += shard * bytesBF16
		}
		if o.Trainable {
			b += shard * (bytesBF16 + optimizerBytesPerParam)
		}
		return b
	}
	shard := params / int64(s.TP*s.PP)
	var b int64
	if !o.OffloadParams {
		b += shard * bytesBF16 // resting weights
	}
	if o.Trainable {
		b += shard * bytesBF16 // gradients
		opt := shard * optimizerBytesPerParam
		if o.ShardOptimizerOverDP {
			opt /= int64(s.DP)
		}
		b += opt
	}
	return b
}

// paramsOf resolves the trainable/parked parameter count of a call's model.
func paramsOf(spec gpumodel.CallSpec) int64 {
	if spec.IsCritic {
		return spec.Cfg.CriticParams()
	}
	return spec.Cfg.Params()
}

// ParamShardBytes is the per-GPU bf16 weight footprint of a model sharded by
// strategy s — the amount parameter reallocation materializes on each
// destination GPU.
func ParamShardBytes(params int64, s parallel.Strategy) int64 {
	return params / int64(s.TP*s.PP) * bytesBF16
}

// Active returns the peak per-GPU bytes a function call allocates while it
// runs, including the reallocable parameter copy it computes with.
func Active(spec gpumodel.CallSpec) int64 {
	s := spec.Strategy
	w := spec.Work
	cfg := spec.Cfg
	params := ParamShardBytes(paramsOf(spec), s)
	if s.ZeRO3 {
		// Resident shard plus the gathered working set of two live layers.
		params = paramsOf(spec)/int64(s.DP)*bytesBF16 + 2*cfg.LayerParamBytes()
	}

	perDP := (w.Batch + s.DP - 1) / s.DP
	if perDP < 1 {
		perDP = 1
	}
	mbs := s.MicroBatches
	if mbs > perDP {
		mbs = perDP
	}
	if mbs < 1 {
		mbs = 1
	}
	if spec.Type == dfg.Train && w.MiniBatches > 1 {
		perDP = (perDP + w.MiniBatches - 1) / w.MiniBatches
		if perDP < 1 {
			perDP = 1
		}
		if mbs > perDP {
			mbs = perDP
		}
	}
	perMicro := int64((perDP + mbs - 1) / mbs)
	lps := int64(s.LayersPerStage(cfg))
	h := int64(cfg.HiddenSize)
	tokensMicro := perMicro * int64(w.SeqLen())

	var act, logits, kv int64
	switch spec.Type {
	case dfg.Train:
		// 1F1B keeps up to min(pp, mbs) micro-batches of activations alive
		// on the deepest stage.
		inFlight := int64(s.PP)
		if int64(mbs) < inFlight {
			inFlight = int64(mbs)
		}
		act = tokensMicro * actBytesPerTokenPerLayerFactor * h / int64(s.TP) * lps * inFlight
		if !spec.IsCritic {
			// bf16 logits plus fp32 softmax workspace on the last stage.
			logits = tokensMicro * int64(cfg.VocabSize) * (bytesBF16 + 4) / int64(s.TP)
		}
	case dfg.Inference:
		act = tokensMicro * actBytesPerTokenPerLayerFactor * h / int64(s.TP) * inferenceLiveLayers
		if !spec.IsCritic {
			logits = tokensMicro * int64(cfg.VocabSize) * bytesBF16 / int64(s.TP)
		}
	case dfg.Generate:
		// Generation engines wave-schedule micro-batches (continuous
		// batching): only min(pp, mbs) micro-batches hold KV entries at
		// once; completed waves free their cache.
		inFlight := int64(s.PP)
		if int64(mbs) < inFlight {
			inFlight = int64(mbs)
		}
		kv = perMicro * inFlight * int64(w.SeqLen()) * cfg.KVBytesPerTokenPerLayer() * lps / int64(s.TP)
		act = perMicro * actBytesPerTokenPerLayerFactor * h / int64(s.TP) * inferenceLiveLayers
		if !spec.IsCritic {
			logits = perMicro * int64(cfg.VocabSize) * bytesBF16 / int64(s.TP)
		}
	}
	return params + act + logits + kv
}
