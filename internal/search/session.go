package search

import (
	"sort"

	"realhf/internal/core"
	"realhf/internal/estimator"
)

// planEvaluator is a chain-local incremental scorer: an estimator.EvalSession
// for delta re-costing plus the shared CostCache's compact plan-cost index.
// Plans any chain has scored before are served from the cache without
// touching the estimator; brand-new plans pay only for the augmented-graph
// nodes their last mutation changed, with node durations shared across
// chains through the cache's node-level memo.
//
// A planEvaluator is single-goroutine state (each chain owns one); all
// cross-chain sharing happens through the concurrency-safe cache underneath.
type planEvaluator struct {
	cache *CostCache
	sess  *estimator.EvalSession
	names []string // sorted call names, fixed per problem
	buf   []byte   // reusable key buffer
	fixed int      // length of the semantics prefix in buf
}

func newPlanEvaluator(e *estimator.Estimator, cache *CostCache, p *core.Plan) *planEvaluator {
	names := p.CallNames()
	sort.Strings(names)
	ev := &planEvaluator{
		cache: cache,
		sess:  e.NewSession(cache.DurationFunc(e)),
		names: names,
	}
	// Mirror CostCache.Evaluate's key semantics: calibration and overlap
	// prefixes keep differently-costed evaluations of one plan from
	// aliasing. The prefix is fixed per evaluator, so it is built once.
	if ck := e.CalibrationKey(); ck != "" {
		ev.buf = append(ev.buf, "calib="...)
		ev.buf = append(ev.buf, ck...)
		ev.buf = append(ev.buf, '|')
	}
	if e.OverlapComm {
		ev.buf = append(ev.buf, "overlap|"...)
	}
	ev.fixed = len(ev.buf)
	return ev
}

// key appends the plan's canonical fingerprint (same encoding as
// core.Plan.Fingerprint) to the semantics prefix in the reusable buffer.
func (ev *planEvaluator) key(p *core.Plan) []byte {
	b := ev.buf[:ev.fixed]
	for _, name := range ev.names {
		b = append(b, name...)
		b = append(b, '=')
		if a, ok := p.Assign[name]; ok {
			b = a.AppendFingerprint(b)
		} else {
			b = append(b, '!')
		}
		b = append(b, ';')
	}
	ev.buf = b
	return b
}

// cost returns the plan's compact cost: served from the shared cache when
// any chain has scored this fingerprint, delta re-costed through the session
// otherwise. Errors are not cached, mirroring CostCache.Evaluate.
func (ev *planEvaluator) cost(p *core.Plan) (estimator.PlanCost, error) {
	key := ev.key(p)
	if pc, ok := ev.cache.planCost(key); ok {
		return pc, nil
	}
	pc, err := ev.sess.Evaluate(p)
	if err != nil {
		return estimator.PlanCost{}, err
	}
	ev.cache.storePlanCost(key, pc)
	return pc, nil
}
