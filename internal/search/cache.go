package search

import (
	"sync"
	"sync/atomic"

	"realhf/internal/core"
	"realhf/internal/estimator"
)

// CostCache memoizes the estimator at two granularities, safely shared by
// concurrent search chains:
//
//   - plan level: the full estimator.Result keyed by the plan's canonical
//     Fingerprint plus the estimator's schedule semantics (OverlapComm) and
//     profile calibration (CalibrationKey), so a plan revisited by any chain
//     is never re-simulated, and serialized, overlap-aware and calibrated
//     solves of one problem can share a cache without poisoning each
//     other's entries;
//   - node level: the duration of each augmented-graph node keyed by its
//     inputs — (call, mesh, strategy) for call nodes, (role/bytes, src, dst)
//     for transfer-style nodes — so even a brand-new plan only pays for the
//     assignments it actually changed.
//
// Cached Results are shared pointers and must be treated as immutable.
//
// A cache is scoped to one (problem, estimator) pair: node keys assume the
// problem's fixed mapping from call names to (role, workload, model) and the
// estimator's fixed cost tables. Never share one across different problems
// or estimators.
type CostCache struct {
	mu    sync.RWMutex
	plans map[string]*estimator.Result

	nodeMu sync.RWMutex
	nodes  map[string]float64

	// costs is the compact plan-cost index: the PlanCost summary of every
	// plan scored through the solvers' incremental sessions, keyed exactly
	// like plans (fingerprint plus semantics prefix). It is deliberately
	// separate from plans — the hot path never materializes timelines, and
	// full Results are only built for chosen plans — but both levels count
	// into the same hit/miss statistics.
	costMu sync.RWMutex
	costs  map[string]estimator.PlanCost

	hits, misses atomic.Int64
}

// NewCostCache allocates an empty cache.
func NewCostCache() *CostCache {
	return &CostCache{
		plans: make(map[string]*estimator.Result),
		nodes: make(map[string]float64),
		costs: make(map[string]estimator.PlanCost),
	}
}

// Hits and Misses report plan-level lookup counters.
func (c *CostCache) Hits() int64   { return c.hits.Load() }
func (c *CostCache) Misses() int64 { return c.misses.Load() }

// HitRate is plan-level hits over total lookups (0 when empty).
func (c *CostCache) HitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of cached plan evaluations.
func (c *CostCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.plans)
}

// appendNodeKey canonically encodes one augmented-graph node's cost inputs
// into b. Node durations depend only on these inputs (the estimator's
// NodeDuration is pure), so the key is safe across plans and chains within
// one problem. Call nodes additionally key on the call's current assignment
// (the plan varies underneath a stable name) and on the estimator's
// calibration key — profile feedback rescales call durations, so a
// calibrated estimator must never read (or write) the uncalibrated entries.
func appendNodeKey(b []byte, e *estimator.Estimator, p *core.Plan, n *core.AugNode) []byte {
	b = append(b, byte('0'+int(n.Kind)))
	b = append(b, '|')
	switch n.Kind {
	case core.KindCall:
		// Within one problem a call name fixes (role, type, workload); the
		// duration is iteration-independent, so iterations share entries.
		b = append(b, n.Call.Name...)
		if a, ok := p.AssignmentOf(n.Call); ok {
			b = append(b, '@')
			b = a.AppendFingerprint(b)
		}
		if ck := e.CalibrationKey(); ck != "" {
			b = append(b, "|calib="...)
			b = append(b, ck...)
		}
	default:
		b = append(b, string(n.Role)...)
		b = append(b, '#')
		b = appendInt64(b, n.Bytes)
		b = append(b, '#')
		b = n.Src.AppendFingerprint(b)
		b = append(b, '>')
		b = n.Dst.AppendFingerprint(b)
	}
	return b
}

func appendInt64(b []byte, v int64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// nodeDuration memoizes one node's duration, delegating to the estimator on
// miss.
func (c *CostCache) nodeDuration(e *estimator.Estimator, p *core.Plan, n *core.AugNode) (float64, error) {
	d, _, err := c.nodeDurationBuf(e, p, n, nil)
	return d, err
}

// nodeDurationBuf is nodeDuration with a caller-owned key buffer: the key is
// assembled in buf (grown as needed and returned for reuse), the lookup's
// string conversion does not allocate, and a string is only materialized
// when a computed duration is stored. Chain-local DurationFunc closures use
// it so steady-state lookups stay allocation-free.
func (c *CostCache) nodeDurationBuf(e *estimator.Estimator, p *core.Plan, n *core.AugNode, buf []byte) (float64, []byte, error) {
	buf = appendNodeKey(buf[:0], e, p, n)
	c.nodeMu.RLock()
	d, ok := c.nodes[string(buf)]
	c.nodeMu.RUnlock()
	if ok {
		return d, buf, nil
	}
	d, err := e.NodeDuration(p, n)
	if err != nil {
		return 0, buf, err
	}
	c.nodeMu.Lock()
	c.nodes[string(buf)] = d
	c.nodeMu.Unlock()
	return d, buf, nil
}

// planCost looks up the compact plan-cost index. The key is a byte slice so
// chain-local evaluators can assemble it in a reusable buffer; the map
// lookup's string conversion does not allocate. Counts into the plan-level
// hit/miss statistics.
func (c *CostCache) planCost(key []byte) (estimator.PlanCost, bool) {
	c.costMu.RLock()
	pc, ok := c.costs[string(key)]
	c.costMu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return pc, ok
}

// storePlanCost records a compact plan cost computed on miss. Concurrent
// chains may race to fill the same key; evaluation is deterministic, so the
// values are identical and the last write wins.
func (c *CostCache) storePlanCost(key []byte, pc estimator.PlanCost) {
	c.costMu.Lock()
	c.costs[string(key)] = pc
	c.costMu.Unlock()
}

// DurationFunc adapts the cache's node-level memo to the estimator's
// DurationFunc shape — the shared fallback incremental EvalSessions consult
// on session-local misses, so node durations cross chains and solver
// invocations exactly as they do on the full evaluation path (including
// CalibrationKey isolation for call nodes). The returned closure owns a key
// buffer and is therefore single-goroutine, like the session it backs; the
// cache underneath remains safely shared.
func (c *CostCache) DurationFunc(e *estimator.Estimator) estimator.DurationFunc {
	var buf []byte
	return func(p *core.Plan, n *core.AugNode) (float64, error) {
		d, b, err := c.nodeDurationBuf(e, p, n, buf)
		buf = b
		return d, err
	}
}

// Evaluate returns the memoized estimate of the plan, computing and caching
// it on miss. Concurrent callers may race to fill the same fingerprint; the
// evaluation is deterministic, so either result is identical and the last
// write wins. Errors (e.g. unassigned calls) are not cached.
func (c *CostCache) Evaluate(e *estimator.Estimator, p *core.Plan) (*estimator.Result, error) {
	// Node durations are schedule-independent, but the simulated makespan is
	// not: the overlapped engine gives comm nodes their own lane. Key the
	// plan-level entry by the semantics — and by the estimator's calibration,
	// which rescales call durations — so differently-costed evaluations of
	// one plan never alias.
	fp := p.Fingerprint()
	if e.OverlapComm {
		fp = "overlap|" + fp
	}
	if ck := e.CalibrationKey(); ck != "" {
		fp = "calib=" + ck + "|" + fp
	}
	c.mu.RLock()
	r, ok := c.plans[fp]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return r, nil
	}
	c.misses.Add(1)
	r, err := e.EvaluateWith(p, func(pl *core.Plan, n *core.AugNode) (float64, error) {
		return c.nodeDuration(e, pl, n)
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.plans[fp] = r
	c.mu.Unlock()
	return r, nil
}
