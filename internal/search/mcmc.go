package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"realhf/internal/core"
	"realhf/internal/estimator"
)

// seedStride derives per-chain RNG seeds from Options.Seed: chain i runs on
// Seed + i·seedStride (a large odd constant, so chains never share streams),
// and chain 0 uses Options.Seed verbatim — a one-chain parallel run is
// therefore bit-identical to the sequential walker.
const seedStride uint64 = 0x9E3779B97F4A7C15

func chainSeed(base int64, chain int) int64 {
	return base + int64(uint64(chain)*seedStride)
}

// chainState is one Metropolis–Hastings chain. Between exchange barriers a
// chain is touched by exactly one goroutine; barriers are the only points
// where state crosses chains.
type chainState struct {
	idx  int
	seed int64
	rng  *rand.Rand

	// cur is mutated in place by proposals (one assignment re-drawn, undone
	// on reject); best is a snapshot plan whose assignment map is overwritten
	// — never reallocated — on improvement. Costs are compact scalars; the
	// winner's full estimator.Result is materialized once per solve.
	cur      *core.Plan
	curCost  float64
	best     *core.Plan
	bestCost float64
	// curOOM/bestOOM track feasibility alongside the costs; under hardMem
	// (Options.OffloadSearch) best tracking, exchange and the final winner
	// reduction order candidates feasibility-first.
	curOOM  bool
	bestOOM bool
	hardMem bool

	ev *planEvaluator

	beta         float64
	adaptiveBeta bool

	step      int // proposals attempted (including failed evaluations)
	accepted  int
	trace     []ProgressPoint
	progress  func(ProgressPoint)
	done      bool
	cancelled bool
}

// betterUnderHardMem orders (OOM, cost) pairs with the memory ledger as a
// hard constraint: any feasible plan beats any infeasible one, and cost
// breaks ties within a feasibility class. The OOM-penalized cost almost
// always agrees, but the lexicographic order makes the guarantee absolute —
// a search that saw a fitting plan can never return an over-memory one.
func betterUnderHardMem(oom bool, cost float64, bestOOM bool, bestCost float64) bool {
	if oom != bestOOM {
		return !oom
	}
	return cost < bestCost
}

// copyAssign overwrites dst's assignments with src's without reallocating the
// map. Both plans of a chain share the same key set (the problem's call
// names), so no deletion pass is needed.
func copyAssign(dst, src *core.Plan) {
	for k, v := range src.Assign {
		dst.Assign[k] = v
	}
}

// record appends a trace point and streams it to the progress callback.
func (c *chainState) record(pt ProgressPoint) {
	c.trace = append(c.trace, pt)
	if c.progress != nil {
		c.progress(pt)
	}
}

// run advances the chain until its per-chain budget (opt.MaxSteps or
// opt.TimeLimit, matching the sequential walker's termination rule), the
// round boundary `until` (0 = none), or ctx cancellation. The proposal loop
// and RNG consumption order replicate the pre-Solver engine exactly — one
// Intn per call pick, one per candidate pick, one Float64 only when the
// Metropolis test is reached — so a fixed seed reproduces its plan bit for
// bit. Proposals mutate cur in place and undo on reject/error instead of
// cloning the plan per step.
func (c *chainState) run(ctx context.Context, sp *space, opt Options, start time.Time, until int) {
	for {
		step := c.step + 1
		if opt.MaxSteps > 0 && step > opt.MaxSteps {
			c.done = true
			return
		}
		//lint:realvet wallclock -- TimeLimit mode is wall-clock by design; deterministic runs pin MaxSteps
		if opt.MaxSteps == 0 && time.Since(start) > opt.TimeLimit {
			c.done = true
			return
		}
		if until > 0 && step > until {
			return
		}
		if ctx.Err() != nil {
			c.done, c.cancelled = true, true
			return
		}
		c.step = step
		// Propose: re-draw one call's assignment uniformly. With the offload
		// axis enabled, a quarter of the proposals on frozen-role calls are
		// dedicated single-offload-flip moves: they keep the layout and toggle
		// only the host-offload bit, the mutation the incremental evaluator
		// re-costs at a single augmented-graph node. (The gate draws RNG only
		// under OffloadSearch, so default solves keep their historical
		// streams.)
		ni := c.rng.Intn(len(sp.names))
		name := sp.names[ni]
		cands := sp.cands[ni]
		prev := c.cur.Assign[name]
		if opt.OffloadSearch && sp.frozen[ni] && c.rng.Intn(4) == 0 {
			next := prev
			next.Offload = !prev.Offload
			c.cur.Assign[name] = next
		} else {
			c.cur.Assign[name] = cands[c.rng.Intn(len(cands))]
		}
		pc, err := c.ev.cost(c.cur)
		if err != nil {
			c.cur.Assign[name] = prev
			continue
		}
		accept := pc.Cost <= c.curCost ||
			c.rng.Float64() < math.Exp(-c.beta*(pc.Cost-c.curCost))
		if accept {
			c.curCost = pc.Cost
			c.curOOM = pc.OOM
			c.accepted++
			better := pc.Cost < c.bestCost
			if c.hardMem {
				better = betterUnderHardMem(pc.OOM, pc.Cost, c.bestOOM, c.bestCost)
			}
			if better {
				c.bestCost = pc.Cost
				c.bestOOM = pc.OOM
				copyAssign(c.best, c.cur)
				if c.adaptiveBeta {
					// Keep the temperature matched to the current cost
					// scale: an OOM-penalized seed would otherwise leave β
					// so small that the chain random-walks forever.
					c.beta = 10 / math.Max(c.bestCost, 1e-9)
				}
				c.record(ProgressPoint{ //lint:realvet wallclock -- Elapsed is observability-only, excluded from fingerprints
					Elapsed: time.Since(start), Step: step, BestCost: c.bestCost,
				})
			}
		} else {
			c.cur.Assign[name] = prev
		}
		if step%opt.ProgressEvery == 0 {
			c.record(ProgressPoint{ //lint:realvet wallclock -- Elapsed is observability-only, excluded from fingerprints
				Elapsed: time.Since(start), Step: step, BestCost: c.bestCost,
			})
		}
	}
}

// startState resolves the shared initial plan: the caller-provided
// InitialPlan or the greedy seed (minimizing over the full pre-shortlist
// candidate sets, reusing the solver's enumeration), improved by any
// cheaper SeedCandidates. All seed evaluations route through the shared
// cost cache's compact index — a warm-started chain whose seed was already
// scored (by a previous solve or another solver) pays no re-evaluation.
// Seeds are Plan.Validated first: the compact path assumes individually
// legal assignments, and an illegal caller-provided plan must fail (for
// InitialPlan) or be skipped (for SeedCandidates) exactly as it did when
// the full evaluator re-validated every plan. Plans seeding a problem whose
// models carry OffloadWhenIdle hints get the hints folded onto their
// per-call offload bits (on clones — caller plans are never mutated), so
// legacy hinted inputs warm-start the search exactly where the fixed-input
// semantics would have pinned them.
func startState(ev *planEvaluator, e *estimator.Estimator,
	p *core.Plan, sp *space, opt Options) (*core.Plan, estimator.PlanCost, error) {
	applyHints := p.HasOffloadHints()
	var cur *core.Plan
	var err error
	if opt.InitialPlan != nil {
		cur = opt.InitialPlan.Clone()
		if applyHints {
			cur.ApplyOffloadHints()
		}
		if err := cur.Validate(); err != nil {
			return nil, estimator.PlanCost{}, err
		}
	} else {
		cur, err = greedyFromSets(e, p, sp.fullSets)
		if err != nil {
			return nil, estimator.PlanCost{}, err
		}
		if applyHints {
			cur.ApplyOffloadHints()
		}
	}
	curPC, err := ev.cost(cur)
	if err != nil {
		return nil, estimator.PlanCost{}, err
	}
	// Warm starts: adopt the cheapest of the greedy seed and any candidate
	// plans the caller supplies.
	for _, seed := range opt.SeedCandidates {
		if seed == nil {
			continue
		}
		s := seed
		if applyHints {
			s = seed.Clone()
			s.ApplyOffloadHints()
		}
		if err := s.Validate(); err != nil {
			continue
		}
		sr, err := ev.cost(s)
		if err != nil {
			continue
		}
		if sr.Cost < curPC.Cost {
			cur, curPC = s.Clone(), sr
		}
	}
	return cur, curPC, nil
}

// mcmcSolver is the sequential single-chain Metropolis–Hastings walker —
// the paper's §5.2 search engine.
type mcmcSolver struct{}

func (mcmcSolver) Name() string { return "mcmc" }

func (mcmcSolver) Solve(ctx context.Context, prob Problem, opt Options) (Solution, Stats, error) {
	return solveMCMC(ctx, prob, opt, 1)
}

// parallelMCMCSolver runs K independent chains across goroutines with
// periodic best-plan exchange at deterministic step boundaries, all sharing
// one memoized cost cache. The reduction is deterministic: lowest best cost
// wins, ties broken by chain index.
type parallelMCMCSolver struct{}

func (parallelMCMCSolver) Name() string { return "parallel-mcmc" }

func (parallelMCMCSolver) Solve(ctx context.Context, prob Problem, opt Options) (Solution, Stats, error) {
	k := opt.Chains
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	return solveMCMC(ctx, prob, opt, k)
}

// solveMCMC is the shared engine behind both MCMC solvers.
func solveMCMC(ctx context.Context, prob Problem, opt Options, chains int) (Solution, Stats, error) {
	opt = opt.withDefaults()
	start := time.Now() //lint:realvet wallclock -- anchors the TimeLimit budget and Elapsed trace, never plan content
	e, p := prob.estimator(), prob.Plan

	if err := ctx.Err(); err != nil {
		return Solution{}, Stats{}, fmt.Errorf("search: mcmc solve cancelled before candidate enumeration: %w", err)
	}
	sp, err := buildSpace(e, p, opt)
	if err != nil {
		return Solution{}, Stats{}, err
	}
	if err := ctx.Err(); err != nil {
		return Solution{}, Stats{}, fmt.Errorf("search: mcmc solve cancelled before the first proposal: %w", err)
	}
	cache := opt.Cache
	if cache == nil {
		cache = NewCostCache()
	}
	hits0, misses0 := cache.Hits(), cache.Misses()
	// One incremental evaluator per chain: sessions are single-goroutine,
	// and all cross-chain reuse flows through the shared cache.
	evs := make([]*planEvaluator, chains)
	for i := range evs {
		evs[i] = newPlanEvaluator(e, cache, p)
	}

	cur, curPC, err := startState(evs[0], e, p, sp, opt)
	if err != nil {
		return Solution{}, Stats{}, err
	}
	curCost := curPC.Cost

	// Serialize the caller's progress callback across chains: each chain
	// streams points as it records them, so WithProgress observers see the
	// search converge live without taking part in plan selection.
	progress := opt.Progress
	if progress != nil && chains > 1 {
		var pmu sync.Mutex
		cb := opt.Progress
		progress = func(pt ProgressPoint) {
			pmu.Lock()
			defer pmu.Unlock()
			cb(pt)
		}
	}

	cs := make([]*chainState, chains)
	for i := range cs {
		seed := chainSeed(opt.Seed, i)
		beta := opt.Beta
		if opt.Beta == 0 {
			beta = 10 / math.Max(curCost, 1e-9)
		}
		cs[i] = &chainState{
			idx: i, seed: seed, rng: rand.New(rand.NewSource(seed)),
			cur: cur.Clone(), curCost: curCost, curOOM: curPC.OOM,
			best: cur.Clone(), bestCost: curCost, bestOOM: curPC.OOM,
			hardMem: opt.OffloadSearch,
			ev:      evs[i],
			beta:    beta, adaptiveBeta: opt.Beta == 0,
			progress: progress,
		}
	}
	//lint:realvet wallclock -- Elapsed is observability-only, excluded from fingerprints
	initial := ProgressPoint{Elapsed: time.Since(start), Step: 0, BestCost: curCost}
	cs[0].record(initial)

	if chains == 1 {
		cs[0].run(ctx, sp, opt, start, 0)
	} else {
		runExchanging(ctx, cs, sp, opt, start)
	}

	// Cancellation is an error, not a truncated Solution: a caller that set
	// a deadline must not mistake a half-walked chain for a converged plan.
	// (Chains poll ctx every proposal, so this returns promptly.)
	for _, c := range cs {
		if c.cancelled {
			var steps int
			for _, cc := range cs {
				steps += cc.step
			}
			return Solution{}, Stats{}, fmt.Errorf("search: mcmc solve cancelled after %d proposals: %w",
				steps, context.Cause(ctx))
		}
	}

	// Deterministic reduction: best cost (feasibility-first under the
	// OffloadSearch hard memory constraint), ties broken by chain index.
	winner := cs[0]
	for _, c := range cs[1:] {
		if opt.OffloadSearch {
			if betterUnderHardMem(c.bestOOM, c.bestCost, winner.bestOOM, winner.bestCost) {
				winner = c
			}
		} else if c.bestCost < winner.bestCost {
			winner = c
		}
	}

	// The chains only ever tracked compact costs; materialize the winner's
	// full Result (timeline, call times) once. Its Cost is bit-identical to
	// the compact score the chain accepted on.
	winRes, err := cache.Evaluate(e, winner.best)
	if err != nil {
		return Solution{}, Stats{}, err
	}

	st := Stats{SpaceLog10: sp.spaceLog10,
		CacheHits:   cache.Hits() - hits0,
		CacheMisses: cache.Misses() - misses0,
	}
	for _, c := range cs {
		st.Steps += c.step
		st.Accepted += c.accepted
		st.Chains = append(st.Chains, ChainStats{
			Chain: c.idx, Seed: c.seed, Proposed: c.step,
			Accepted: c.accepted, BestCost: c.bestCost,
		})
	}
	if chains == 1 {
		st.Trace = cs[0].trace
	} else {
		//lint:realvet wallclock -- Elapsed is observability-only, excluded from fingerprints
		st.Trace = mergeTraces(cs, initial, winner.bestCost, time.Since(start))
	}
	return Solution{Plan: winner.best, Cost: winRes.Cost, Estimate: winRes}, st, nil
}

// runExchanging drives K chains in lockstep rounds of opt.ExchangeEvery
// steps: chains walk concurrently within a round, then meet at a barrier
// where laggards adopt the global best plan as their current state.
// Exchanges happen at deterministic step boundaries, so step-bounded runs
// remain reproducible regardless of goroutine scheduling.
func runExchanging(ctx context.Context, cs []*chainState,
	sp *space, opt Options, start time.Time) {
	for target := 0; ; {
		target += opt.ExchangeEvery
		var wg sync.WaitGroup
		live := 0
		for _, c := range cs {
			if c.done {
				continue
			}
			live++
			wg.Add(1)
			go func(c *chainState) {
				defer wg.Done()
				c.run(ctx, sp, opt, start, target)
			}(c)
		}
		wg.Wait()
		if live == 0 {
			return
		}
		exchangeBest(cs)
	}
}

// exchangeBest is the barrier body: the globally best plan (lowest cost,
// lowest chain index on ties; feasibility-first under the hard memory
// constraint) replaces the current state of any chain doing worse.
func exchangeBest(cs []*chainState) {
	hardMem := cs[0].hardMem
	g := cs[0]
	for _, c := range cs[1:] {
		if hardMem {
			if betterUnderHardMem(c.bestOOM, c.bestCost, g.bestOOM, g.bestCost) {
				g = c
			}
		} else if c.bestCost < g.bestCost {
			g = c
		}
	}
	for _, c := range cs {
		if c.done || c == g {
			continue
		}
		adopt := g.bestCost < c.curCost
		if hardMem {
			adopt = betterUnderHardMem(g.bestOOM, g.bestCost, c.curOOM, c.curCost)
		}
		if adopt {
			// The barrier is single-threaded, so adopting in place (no
			// clones) is safe: every chain goroutine has already joined.
			copyAssign(c.cur, g.best)
			c.curCost = g.bestCost
			c.curOOM = g.bestOOM
			// The adopted plan is the best this chain now knows: fold it
			// into the chain's best and rescale an adaptive temperature to
			// the new cost scale. Without the rescale a chain seeded at an
			// OOM-penalized cost keeps β ≈ 10/hugeCost ≈ 0 after adopting a
			// cheap plan and accepts nearly every uphill proposal for the
			// rest of the solve.
			fold := g.bestCost < c.bestCost
			if hardMem {
				fold = betterUnderHardMem(g.bestOOM, g.bestCost, c.bestOOM, c.bestCost)
			}
			if fold {
				copyAssign(c.best, g.best)
				c.bestCost = g.bestCost
				c.bestOOM = g.bestOOM
				if c.adaptiveBeta {
					c.beta = 10 / math.Max(c.bestCost, 1e-9)
				}
			}
		}
	}
}

// mergeTraces folds per-chain improvement points into one monotone
// global-best curve ordered by elapsed time. Points with equal elapsed
// times are tie-broken by (Step, BestCost, chain index) — a total order —
// so the merged curve is stable regardless of goroutine scheduling.
func mergeTraces(cs []*chainState, initial ProgressPoint, finalCost float64, elapsed time.Duration) []ProgressPoint {
	type chainPoint struct {
		pt    ProgressPoint
		chain int
	}
	var all []chainPoint
	for _, c := range cs {
		for _, pt := range c.trace {
			all = append(all, chainPoint{pt: pt, chain: c.idx})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.pt.Elapsed != b.pt.Elapsed {
			return a.pt.Elapsed < b.pt.Elapsed
		}
		if a.pt.Step != b.pt.Step {
			return a.pt.Step < b.pt.Step
		}
		if a.pt.BestCost != b.pt.BestCost {
			return a.pt.BestCost < b.pt.BestCost
		}
		return a.chain < b.chain
	})
	out := []ProgressPoint{initial}
	best := initial.BestCost
	for _, cp := range all {
		if cp.pt.BestCost < best {
			best = cp.pt.BestCost
			out = append(out, cp.pt)
		}
	}
	if best > finalCost || len(out) == 1 {
		out = append(out, ProgressPoint{Elapsed: elapsed, Step: out[len(out)-1].Step, BestCost: finalCost})
	}
	return out
}
