// Package search implements the paper's execution-plan search (§5.2) behind
// a pluggable Solver interface: a greedy per-call seeder, a sequential
// Metropolis–Hastings MCMC walker, a parallel multi-chain MCMC solver with
// periodic best-plan exchange, and a bounded exhaustive search used as the
// optimality reference of Fig. 15. All solvers share a concurrency-safe
// memoized cost cache keyed by canonical plan fingerprints, so no
// (mesh, strategy, call) cost is estimated twice across chains.
package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/memory"
	"realhf/internal/mesh"
	"realhf/internal/parallel"
)

// Problem bundles what every solver needs: the cost model and the plan
// template (cluster, graph, models; assignments may be empty).
type Problem struct {
	Est  *estimator.Estimator
	Plan *core.Plan
	// Overlap makes solvers score every candidate plan with the
	// overlapped-engine cost semantics (estimator.Estimator.OverlapComm):
	// Algorithm 1 then simulates a second per-device communication lane, the
	// schedule the runtime actually executes under realhf.DefaultRunOptions.
	// The default (false) keeps the historical fully-serialized objective,
	// so existing solves and golden plans are unchanged. The flag composes
	// with Est: an estimator that already has OverlapComm set keeps it.
	Overlap bool
}

// estimator resolves the cost model solvers must score candidates with:
// prob.Est as-is, or a copy with OverlapComm enabled when prob.Overlap asks
// for the overlapped objective. The copy shares the immutable cost tables,
// so it is as cheap and concurrency-safe as the original.
func (prob Problem) estimator() *estimator.Estimator {
	if !prob.Overlap || prob.Est == nil || prob.Est.OverlapComm {
		return prob.Est
	}
	e := *prob.Est
	e.OverlapComm = true
	return &e
}

// Solution is a solver's chosen plan with its estimate.
type Solution struct {
	Plan     *core.Plan
	Cost     float64
	Estimate *estimator.Result
}

// ChainStats reports one MCMC chain's work, for per-chain convergence
// reporting in cmd/realsearch.
type ChainStats struct {
	Chain    int
	Seed     int64
	Proposed int
	Accepted int
	BestCost float64
}

// Stats aggregates solver-side counters: step/acceptance totals, the
// convergence trace, the pruned-space size, cache effectiveness, and
// per-chain breakdowns for multi-chain solvers.
type Stats struct {
	// Steps counts solver steps. For the MCMC solvers it is the number of
	// proposals attempted, summed over chains — including proposals whose
	// evaluation failed — and always equals the sum of ChainStats.Proposed.
	// For the exhaustive solver it is the number of plans evaluated.
	Steps int
	// Accepted counts accepted Metropolis moves (summed over chains).
	Accepted int
	// Trace samples best-cost-so-far over search time. For multi-chain
	// solvers it is the merged global-best curve.
	Trace []ProgressPoint
	// SpaceLog10 is the log₁₀ size of the pruned joint candidate space.
	SpaceLog10 float64
	// CacheHits and CacheMisses count plan-level cost-cache lookups made
	// during this solve.
	CacheHits, CacheMisses int64
	// Chains carries per-chain counters for multi-chain solvers (one entry
	// for single-chain MCMC).
	Chains []ChainStats
}

// CacheHitRate is hits over total lookups (0 when no lookups happened).
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Solver finds an execution plan for a problem. Implementations must be
// deterministic for a fixed Options.Seed whenever the run is step-bounded
// (MaxSteps > 0): the same seed yields a byte-identical chosen plan.
type Solver interface {
	Name() string
	Solve(ctx context.Context, prob Problem, opt Options) (Solution, Stats, error)
}

// PruneLevel selects how aggressively the candidate space is cut before
// sampling (paper Fig. 14).
type PruneLevel int

const (
	// PruneNone keeps every legal mesh and factorization (tensor
	// parallelism is still capped at the node size — the paper prunes
	// cross-node TP unconditionally).
	PruneNone PruneLevel = iota
	// PruneModerate restricts multi-node meshes to power-of-two node spans
	// aligned to their size.
	PruneModerate
	// PruneAggressive additionally caps pipeline depth at 16 stages and
	// micro-batch counts at 8.
	PruneAggressive
)

// Options configures a search run.
type Options struct {
	// TimeLimit bounds wall-clock search time (default 5 s).
	TimeLimit time.Duration
	// MaxSteps bounds MCMC steps per chain (0 = unbounded; the time limit
	// governs).
	MaxSteps int
	// Beta is the sampling temperature β of P(p) ∝ exp(−β·cost). When 0 it
	// is auto-scaled to 10/cost(p₀) so relative cost differences matter
	// uniformly across problem sizes.
	Beta float64
	// Seed makes the chain deterministic. Multi-chain solvers derive each
	// chain's seed from it (chain 0 uses it verbatim, so a one-chain run
	// reproduces the sequential walker exactly).
	Seed int64
	// Prune selects the candidate-space pruning level.
	Prune PruneLevel
	// MaxCandidatesPerCall, when positive, shortlists each call's candidate
	// set to the N fastest individual assignments before sampling — the
	// knob behind the Fig. 14 pruning ablation (a cap of N yields a joint
	// space of ~N^calls plans). The exhaustive solver uses it as its
	// per-call shortlist width (default 6).
	MaxCandidatesPerCall int
	// ProgressEvery records a trace point every N steps (default 64).
	ProgressEvery int
	// Progress, when non-nil, streams every recorded ProgressPoint (periodic
	// samples and best-cost improvements) while the search runs — the hook
	// behind the public API's WithProgress option. Multi-chain solvers
	// serialize invocations, so the callback needs no locking of its own,
	// but it runs on the search's critical path and must be fast. Callback
	// order across chains is scheduling-dependent; the chosen plan is not.
	Progress func(ProgressPoint)
	// InitialPlan seeds the chain instead of the greedy plan. It must be
	// fully assigned.
	InitialPlan *core.Plan
	// SeedCandidates are additional fully-assigned plans evaluated alongside
	// the greedy seed; the chain starts from the cheapest. Warm-starting
	// from e.g. the symmetric heuristic lets short search budgets match the
	// paper's everywhere-better-than-baselines outcome.
	SeedCandidates []*core.Plan
	// RestrictCalls, when non-empty, limits MCMC moves to the named calls;
	// all other assignments stay frozen at the initial plan. Used by the
	// progressive-optimization breakdowns (paper Figs. 2 and 9).
	RestrictCalls []string
	// Chains is the number of parallel MCMC chains for the parallel-mcmc
	// solver: 0 means GOMAXPROCS-many, 1 runs a single chain (bit-identical
	// to the sequential walker), and the sequential solvers ignore it. The
	// legacy Search entry point upgrades to the parallel solver when
	// Chains > 1.
	Chains int
	// ExchangeEvery is the per-chain step interval between best-plan
	// exchanges in the parallel solver (default 256). Exchanges happen at
	// deterministic step boundaries so multi-chain runs stay reproducible.
	ExchangeEvery int
	// Cache optionally shares a cost cache across solver invocations (e.g.
	// re-planning the same problem with different solvers). When nil each
	// solve allocates its own. Plan-level entries are keyed by the cost
	// semantics in use, so one cache may safely serve both serialized and
	// overlap-aware (Problem.Overlap) solves of the same problem.
	Cache *CostCache
	// OffloadSearch makes host offload a searched plan dimension: candidate
	// enumeration emits an offloaded variant of every frozen-role assignment,
	// MCMC chains gain a dedicated offload-flip proposal move, and the
	// memory ledger becomes a hard constraint — a feasible plan beats any
	// infeasible one regardless of the OOM-penalized cost, so the search
	// cannot return an over-memory plan while a fitting one was seen. The
	// default (false) keeps offload fixed at the models' OffloadWhenIdle
	// hints, leaving existing solves, RNG streams and golden plans
	// byte-identical.
	OffloadSearch bool
}

func (o Options) withDefaults() Options {
	if o.TimeLimit == 0 {
		o.TimeLimit = 5 * time.Second
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 64
	}
	if o.ExchangeEvery == 0 {
		o.ExchangeEvery = 256
	}
	return o
}

// ProgressPoint is one sample of best-cost-so-far over search time.
type ProgressPoint struct {
	Elapsed  time.Duration
	Step     int
	BestCost float64
}

// Result is the legacy flat view of a solve, kept for the pre-Solver API:
// it promotes every Solution and Stats field, so existing callers keep
// reading res.Plan, res.Cost, res.Trace, res.Steps, … unchanged.
type Result struct {
	Solution
	Stats
}

func resultOf(sol Solution, st Stats) *Result { return &Result{Solution: sol, Stats: st} }

// --- solver registry ---

var solvers = map[string]func() Solver{
	"greedy":        func() Solver { return greedySolver{} },
	"mcmc":          func() Solver { return mcmcSolver{} },
	"parallel-mcmc": func() Solver { return parallelMCMCSolver{} },
	"exhaustive":    func() Solver { return exhaustiveSolver{} },
}

// Register adds a named solver factory. Registering an existing name
// replaces it.
func Register(name string, factory func() Solver) { solvers[name] = factory }

// New resolves a registered solver by name.
func New(name string) (Solver, error) {
	f, ok := solvers[name]
	if !ok {
		return nil, fmt.Errorf("search: unknown solver %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered solver names, sorted.
func Names() []string {
	out := make([]string, 0, len(solvers))
	for name := range solvers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Solve resolves a solver by name and runs it, returning the legacy flat
// Result view.
func Solve(ctx context.Context, name string, prob Problem, opt Options) (*Result, error) {
	s, err := New(name)
	if err != nil {
		return nil, err
	}
	sol, st, err := s.Solve(ctx, prob, opt)
	if err != nil {
		return nil, err
	}
	return resultOf(sol, st), nil
}

// --- legacy entry points (pre-Solver API), retained as thin wrappers ---

// Search runs Metropolis–Hastings from the greedy seed and returns the best
// plan observed. With opt.Chains > 1 it upgrades to the parallel multi-chain
// solver; otherwise it is exactly the sequential single-chain walker.
func Search(e *estimator.Estimator, p *core.Plan, opt Options) (*Result, error) {
	var s Solver = mcmcSolver{}
	if opt.Chains > 1 {
		s = parallelMCMCSolver{}
	}
	sol, st, err := s.Solve(context.Background(), Problem{Est: e, Plan: p}, opt)
	if err != nil {
		return nil, err
	}
	return resultOf(sol, st), nil
}

// BruteForce approximates the exhaustive optimum of Fig. 15 on small
// clusters via the exhaustive solver: topK is the per-call shortlist width.
func BruteForce(e *estimator.Estimator, p *core.Plan, topK int) (*Result, error) {
	sol, st, err := exhaustiveSolver{}.Solve(context.Background(),
		Problem{Est: e, Plan: p}, Options{MaxCandidatesPerCall: topK})
	if err != nil {
		return nil, err
	}
	return resultOf(sol, st), nil
}

// --- candidate space construction, shared by every solver ---

// space is a solver's prepared move set: per-call candidate assignments,
// the movable call names (sorted for determinism), and the joint-space size.
// fullSets keeps the pre-shortlist enumeration: the greedy seed minimizes
// over it (as the original engine did) even when sampling is shortlisted.
// cands mirrors sets indexed by position in names, so the proposal loop
// draws candidates without a map lookup per step.
type space struct {
	sets       map[string][]core.Assignment
	fullSets   map[string][]core.Assignment
	names      []string
	cands      [][]core.Assignment
	spaceLog10 float64
	// frozen marks (per names index) calls of non-trainable roles — the
	// calls whose host-offload bit the OffloadSearch flip move may toggle.
	frozen []bool
}

// buildSpace enumerates (and optionally shortlists) the candidate sets and
// resolves the movable call names under opt.
func buildSpace(e *estimator.Estimator, p *core.Plan, opt Options) (*space, error) {
	full, spaceLog10, err := candidateSets(p, opt.Prune, opt.OffloadSearch)
	if err != nil {
		return nil, err
	}
	sets := full
	if opt.MaxCandidatesPerCall > 0 {
		sets, spaceLog10, err = shortlist(e, p, full, opt.MaxCandidatesPerCall, false)
		if err != nil {
			return nil, err
		}
	}
	names := make([]string, 0, len(sets))
	for name := range sets {
		if len(opt.RestrictCalls) > 0 && !contains(opt.RestrictCalls, name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("search: no calls to search over")
	}
	cands := make([][]core.Assignment, len(names))
	frozen := make([]bool, len(names))
	byName := nodesByName(p)
	for i, name := range names {
		cands[i] = sets[name]
		if n := byName[name]; n != nil {
			frozen[i] = !p.Models[n.Role].Trainable
		}
	}
	return &space{sets: sets, fullSets: full, names: names, cands: cands, spaceLog10: spaceLog10, frozen: frozen}, nil
}

// enumMemo caches the pure enumeration helpers consulted while building
// candidate sets: parallel.Enumerate keyed by its (gpus, maxTP, maxPP)
// arguments and parallel.MicroBatchOptions keyed by the per-replica batch.
// Calls in one problem share meshes and mostly share model shapes, so the
// same enumerations recur across every (call, mesh) pair; memoizing them
// removes the bulk of candidate-set construction's allocations. A nil memo
// disables caching (each lookup recomputes).
type enumMemo struct {
	strategies map[[3]int][]parallel.Strategy
	microBatch map[int][]int
}

func newEnumMemo() *enumMemo {
	return &enumMemo{
		strategies: map[[3]int][]parallel.Strategy{},
		microBatch: map[int][]int{},
	}
}

func (m *enumMemo) enumerate(gpus, maxTP, maxPP int) []parallel.Strategy {
	if m == nil {
		return parallel.Enumerate(gpus, maxTP, maxPP)
	}
	key := [3]int{gpus, maxTP, maxPP}
	sts, ok := m.strategies[key]
	if !ok {
		sts = parallel.Enumerate(gpus, maxTP, maxPP)
		m.strategies[key] = sts
	}
	return sts
}

func (m *enumMemo) microBatchOptions(perDP int) []int {
	if m == nil {
		return parallel.MicroBatchOptions(perDP)
	}
	mbs, ok := m.microBatch[perDP]
	if !ok {
		mbs = parallel.MicroBatchOptions(perDP)
		m.microBatch[perDP] = mbs
	}
	return mbs
}

// candidates enumerates the legal assignments of one call under the pruning
// level. meshes is the cluster's mesh enumeration and memo caches the inner
// strategy/micro-batch enumerations; both are hoisted by the caller because
// they are identical (or heavily shared) across calls, and recomputing them
// per call dominated candidate-set construction.
//
// The offload axis: with offloadSearch set, every layout of a frozen role is
// emitted twice — device-resident and host-offloaded — so every solver
// (greedy seeding, MCMC redraws, the exhaustive cross product) explores the
// offload decision. Without it, calls of roles hinted OffloadWhenIdle emit
// only the offloaded variant, reproducing the historical fixed-input
// behavior; unhinted calls emit only the resident variant, keeping default
// solves byte-identical.
func candidates(p *core.Plan, call *dfg.Node, lvl PruneLevel, meshes []mesh.Mesh, memo *enumMemo, offloadSearch bool) []core.Assignment {
	ms := p.Models[call.Role]
	batch := call.Work.Batch
	if call.Type == dfg.Train && call.Work.MiniBatches > 1 {
		batch /= call.Work.MiniBatches
	}
	maxPP := ms.Cfg.NumLayers
	maxMB := 32
	if lvl >= PruneAggressive {
		if maxPP > 16 {
			maxPP = 16
		}
		maxMB = 8
	}
	var out []core.Assignment
	for _, m := range meshes {
		if lvl >= PruneModerate && m.Count > p.Cluster.GPUsPerNode {
			span := m.Count / p.Cluster.GPUsPerNode
			if span&(span-1) != 0 || m.FirstNode()%span != 0 {
				continue
			}
		}
		maxTP := p.Cluster.GPUsPerNode // the paper's unconditional TP prune
		if m.Count < maxTP {
			maxTP = m.Count
		}
		for _, st := range memo.enumerate(m.Count, maxTP, maxPP) {
			if batch > 0 && batch%st.DP != 0 {
				continue
			}
			perDP := batch / st.DP
			if perDP == 0 {
				perDP = 1
			}
			for _, mb := range memo.microBatchOptions(perDP) {
				if mb > maxMB {
					break
				}
				a := core.Assignment{Mesh: m, Strategy: st.WithMicroBatches(mb)}
				if err := a.Strategy.Validate(m, ms.Cfg, batch); err != nil {
					continue
				}
				// Drop candidates whose own working set cannot fit the
				// device even with nothing else resident: they can never be
				// part of a feasible plan.
				spec := gpumodel.CallSpec{
					Cfg: ms.Cfg, IsCritic: ms.IsCritic, Type: call.Type,
					Work: call.Work, Strategy: a.Strategy, Mesh: a.Mesh,
				}
				if memory.Active(spec) > p.Cluster.GPU.MemoryBytes {
					continue
				}
				switch {
				case offloadSearch && !ms.Trainable:
					out = append(out, a)
					a.Offload = true
					out = append(out, a)
				case ms.OffloadWhenIdle && !ms.Trainable:
					a.Offload = true
					out = append(out, a)
				default:
					out = append(out, a)
				}
			}
		}
	}
	return out
}

// candidateSets precomputes per-call candidate lists and the joint space
// size.
func candidateSets(p *core.Plan, lvl PruneLevel, offloadSearch bool) (map[string][]core.Assignment, float64, error) {
	sets := map[string][]core.Assignment{}
	var log10 float64
	meshes := mesh.Enumerate(p.Cluster)
	memo := newEnumMemo()
	for _, n := range p.Graph.Nodes {
		if _, ok := sets[n.Name]; ok {
			continue
		}
		c := candidates(p, n, lvl, meshes, memo, offloadSearch)
		if len(c) == 0 {
			return nil, 0, fmt.Errorf("search: call %q has no legal assignment", n.Name)
		}
		sets[n.Name] = c
		log10 += math.Log10(float64(len(c)))
	}
	return sets, log10, nil
}

// callTime estimates the standalone duration of one call under a candidate
// assignment, without constructing a full plan. Assignments whose working
// set cannot plausibly coexist with the role's static memory receive an
// infeasibility surcharge, so greedy seeding and shortlists prefer layouts
// that can actually run.
func callTime(e *estimator.Estimator, p *core.Plan, n *dfg.Node, a core.Assignment) (float64, error) {
	ms, ok := p.Models[n.Role]
	if !ok {
		return 0, fmt.Errorf("search: role %q has no model", n.Role)
	}
	mc, ok := e.Costers[n.Role]
	if !ok {
		return 0, fmt.Errorf("search: role %q has no coster", n.Role)
	}
	spec := gpumodel.CallSpec{
		Cfg: ms.Cfg, IsCritic: ms.IsCritic, Type: n.Type, Work: n.Work,
		Strategy: a.Strategy, Mesh: a.Mesh,
	}
	t := gpumodel.AssembleCall(mc, e.Comm, spec).Total()
	if a.Offload {
		// An offloaded call pays the PCIe reload of its parameter shard every
		// invocation — the time side of the memory it releases.
		t += e.Comm.OffloadTransfer(memory.ParamShardBytes(ms.Params(), a.Strategy))
	}
	static := memory.Static(ms.Params(), a.Strategy, memory.StaticOpts{
		Trainable: ms.Trainable, ShardOptimizerOverDP: true,
		OffloadParams: a.Offload && !ms.Trainable,
	})
	if memory.Active(spec)+static > p.Cluster.GPU.MemoryBytes {
		t *= estimator.OOMPenalty
	}
	return t, nil
}

// nodesByName returns a representative dfg node for each distinct call name.
func nodesByName(p *core.Plan) map[string]*dfg.Node {
	out := map[string]*dfg.Node{}
	for _, n := range p.Graph.Nodes {
		if _, ok := out[n.Name]; !ok {
			out[n.Name] = n
		}
	}
	return out
}

// shortlist keeps the topK individually fastest candidates of each call.
// With dedupeLayouts set, only the best micro-batch variant of each
// (mesh, dp, tp, pp) layout survives, so a small K still spans genuinely
// different memory/speed trade-offs — essential for the exhaustive search,
// where K same-layout variants would make every joint combination inherit
// the same static-memory footprint.
func shortlist(e *estimator.Estimator, p *core.Plan, sets map[string][]core.Assignment, topK int, dedupeLayouts bool) (map[string][]core.Assignment, float64, error) {
	byName := nodesByName(p)
	out := map[string][]core.Assignment{}
	var log10 float64
	names := make([]string, 0, len(sets))
	for name := range sets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cands := sets[name]
		n := byName[name]
		type scored struct {
			a core.Assignment
			t float64
		}
		all := make([]scored, 0, len(cands))
		for _, a := range cands {
			t, err := callTime(e, p, n, a)
			if err != nil {
				continue
			}
			all = append(all, scored{a, t})
		}
		if len(all) == 0 {
			return nil, 0, fmt.Errorf("search: no costable assignment for %q", name)
		}
		sort.Slice(all, func(x, y int) bool { return all[x].t < all[y].t })
		if dedupeLayouts {
			seen := map[core.Assignment]bool{}
			dedup := all[:0]
			for _, s := range all {
				key := s.a
				key.Strategy.MicroBatches = 0
				if seen[key] {
					continue
				}
				seen[key] = true
				dedup = append(dedup, s)
			}
			all = dedup
		}
		if topK > 0 && len(all) > topK {
			all = all[:topK]
		}
		list := make([]core.Assignment, len(all))
		for i, s := range all {
			list[i] = s.a
		}
		out[name] = list
		log10 += math.Log10(float64(len(list)))
	}
	return out, log10, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
