package search

import (
	"context"
	"fmt"
	"math"
	"time"

	"realhf/internal/core"
)

// exhaustiveSolver approximates the exhaustive optimum of Fig. 15 on small
// clusters: for every call it shortlists the topK fastest individual
// assignments (opt.MaxCandidatesPerCall, default 6), then evaluates the
// full cross product. (A literal exhaustive enumeration over all ~10¹⁵
// joint plans is infeasible even on 8 GPUs; the shortlist preserves the
// optimum whenever the best joint plan is composed of individually
// competitive assignments, which Fig. 15 shows holds in practice.)
type exhaustiveSolver struct{}

func (exhaustiveSolver) Name() string { return "exhaustive" }

func (exhaustiveSolver) Solve(ctx context.Context, prob Problem, opt Options) (Solution, Stats, error) {
	e, p := prob.estimator(), prob.Plan
	topK := opt.MaxCandidatesPerCall
	if topK <= 0 {
		topK = 6
	}
	sets, spaceLog10, err := candidateSets(p, PruneNone, opt.OffloadSearch)
	if err != nil {
		return Solution{}, Stats{}, err
	}
	listed, _, err := shortlist(e, p, sets, topK, true)
	if err != nil {
		return Solution{}, Stats{}, err
	}
	names := p.CallNames()
	short := make([][]core.Assignment, len(names))
	for i, name := range names {
		short[i] = listed[name]
	}

	cache := opt.Cache
	if cache == nil {
		cache = NewCostCache()
	}
	hits0, misses0 := cache.Hits(), cache.Misses()
	ev := newPlanEvaluator(e, cache, p)

	start := time.Now() //lint:realvet wallclock -- TimeLimit budget and Elapsed trace are wall-clock features; plan bytes never depend on them
	best := math.Inf(1)
	bestOOM := true
	var bestPlan *core.Plan
	// One trial plan, mutated in place per combination; it is cloned only
	// when it improves on the best seen so far.
	trial := p.Clone()
	idx := make([]int, len(names))
	steps := 0
	for {
		if err := ctx.Err(); err != nil {
			// A partial sweep must not masquerade as the exhaustive
			// optimum (Fig. 15 treats the result as ground truth).
			return Solution{}, Stats{}, fmt.Errorf("search: exhaustive sweep aborted after %d plans: %w", steps, err)
		}
		for i, name := range names {
			trial.Assign[name] = short[i][idx[i]]
		}
		if pc, err := ev.cost(trial); err == nil {
			steps++
			better := pc.Cost < best
			if opt.OffloadSearch {
				// Hard memory constraint: a feasible plan beats any
				// infeasible one before costs are compared.
				better = bestPlan == nil || betterUnderHardMem(pc.OOM, pc.Cost, bestOOM, best)
			}
			if better {
				best, bestOOM, bestPlan = pc.Cost, pc.OOM, trial.Clone()
				if opt.Progress != nil {
					//lint:realvet wallclock -- Elapsed is observability-only, excluded from fingerprints
					opt.Progress(ProgressPoint{Elapsed: time.Since(start), Step: steps, BestCost: best})
				}
			}
		}
		// Advance the mixed-radix counter.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(short[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	if bestPlan == nil {
		return Solution{}, Stats{}, fmt.Errorf("search: brute force found no feasible plan")
	}
	bestRes, err := cache.Evaluate(e, bestPlan)
	if err != nil {
		return Solution{}, Stats{}, err
	}
	st := Stats{
		Steps: steps, SpaceLog10: spaceLog10,
		CacheHits:   cache.Hits() - hits0,
		CacheMisses: cache.Misses() - misses0,
		Trace: []ProgressPoint{
			{Step: 0, BestCost: best},
			//lint:realvet wallclock -- Elapsed is observability-only, excluded from fingerprints
			{Elapsed: time.Since(start), Step: steps, BestCost: best},
		},
	}
	return Solution{Plan: bestPlan, Cost: best, Estimate: bestRes}, st, nil
}
