package search

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/model"
)

func testProblem(t *testing.T, nodes, batch int) Problem {
	t.Helper()
	p, e := newProblem(t, nodes, model.LLaMA7B, model.LLaMA7B, batch, 512, 512)
	return Problem{Est: e, Plan: p}
}

func TestRegistryResolvesAllSolvers(t *testing.T) {
	want := []string{"exhaustive", "greedy", "mcmc", "parallel-mcmc"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		s, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Errorf("solver %q reports Name() = %q", name, s.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown solver name must error")
	}
}

// TestSolverDeterminism: same Options.Seed ⇒ byte-identical chosen plan for
// every registered solver, including parallel-mcmc at Chains > 1.
func TestSolverDeterminism(t *testing.T) {
	cases := []struct {
		solver string
		opt    Options
	}{
		{"greedy", Options{Seed: 9}},
		{"mcmc", Options{Seed: 9, MaxSteps: 400}},
		{"exhaustive", Options{Seed: 9, MaxCandidatesPerCall: 3}},
		{"parallel-mcmc", Options{Seed: 9, MaxSteps: 300, Chains: 4, ExchangeEvery: 64}},
	}
	for _, tc := range cases {
		t.Run(tc.solver, func(t *testing.T) {
			prob := testProblem(t, 1, 128)
			s, err := New(tc.solver)
			if err != nil {
				t.Fatal(err)
			}
			solA, _, err := s.Solve(context.Background(), prob, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			solB, _, err := s.Solve(context.Background(), prob, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if solA.Cost != solB.Cost {
				t.Errorf("cost not reproducible: %v vs %v", solA.Cost, solB.Cost)
			}
			if a, b := solA.Plan.Fingerprint(), solB.Plan.Fingerprint(); a != b {
				t.Errorf("plan not byte-identical across runs:\n  %s\n  %s", a, b)
			}
		})
	}
}

// TestParallelOneChainMatchesSequential: the parallel solver at Chains=1 must
// reproduce the sequential walker bit for bit (same seed, same plan, same
// counters).
func TestParallelOneChainMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		prob := testProblem(t, 2, 256)
		opt := Options{Seed: seed, MaxSteps: 500}
		seq, seqSt, err := mcmcSolver{}.Solve(context.Background(), prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Chains = 1
		par, parSt, err := parallelMCMCSolver{}.Solve(context.Background(), prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Cost != par.Cost {
			t.Errorf("seed %d: cost %v (sequential) != %v (1-chain parallel)", seed, seq.Cost, par.Cost)
		}
		if a, b := seq.Plan.Fingerprint(), par.Plan.Fingerprint(); a != b {
			t.Errorf("seed %d: plans differ:\n  %s\n  %s", seed, a, b)
		}
		if seqSt.Steps != parSt.Steps || seqSt.Accepted != parSt.Accepted {
			t.Errorf("seed %d: counters differ: steps %d/%d accepted %d/%d",
				seed, seqSt.Steps, parSt.Steps, seqSt.Accepted, parSt.Accepted)
		}
	}
}

// TestGoldenSingleChainPlans pins the engine to the exact plans the
// pre-refactor sequential walker chose, guarding the refactor's
// bit-for-bit equivalence claim. The values depend on the cost model; update
// them deliberately if the estimator's numbers change.
func TestGoldenSingleChainPlans(t *testing.T) {
	golden := map[int64]string{
		1:  "ActorGen=0+16:8/2/1/1;ActorTrain=0+16:1/1/16/32;CriticInf=0+16:16/1/1/1;CriticTrain=0+16:1/1/16/32;RefInf=0+16:16/1/1/1;RewInf=0+16:16/1/1/1;",
		7:  "ActorGen=0+16:8/2/1/1;ActorTrain=0+16:1/1/16/32;CriticInf=0+16:2/4/2/32;CriticTrain=0+16:1/1/16/32;RefInf=0+16:16/1/1/1;RewInf=0+16:16/1/1/1;",
		42: "ActorGen=0+16:8/2/1/1;ActorTrain=0+16:1/1/16/32;CriticInf=0+16:16/1/1/1;CriticTrain=0+16:1/1/16/32;RefInf=0+16:16/1/1/1;RewInf=0+16:16/1/1/1;",
	}
	for seed, want := range golden {
		p, e := newProblem(t, 2, model.LLaMA7B, model.LLaMA7B, 256, 512, 512)
		res, err := Search(e, p, Options{MaxSteps: 600, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Plan.Fingerprint(); got != want {
			t.Errorf("seed %d: plan drifted from pre-refactor engine:\n  got  %s\n  want %s", seed, got, want)
		}
	}
}

// TestParallelChainsNotWorse: under the same per-chain step budget, the
// 4-chain solver's reduced best must never lose to the single chain — chain
// 0 shares the single chain's seed and start state, and the reduction takes
// the minimum over chains.
func TestParallelChainsNotWorse(t *testing.T) {
	for _, seed := range []int64{1, 4, 8, 10} {
		prob := testProblem(t, 2, 256)
		seq, _, err := mcmcSolver{}.Solve(context.Background(), prob, Options{Seed: seed, MaxSteps: 400})
		if err != nil {
			t.Fatal(err)
		}
		par, st, err := parallelMCMCSolver{}.Solve(context.Background(), prob,
			Options{Seed: seed, MaxSteps: 400, Chains: 4, ExchangeEvery: 100})
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Chains) != 4 {
			t.Fatalf("want 4 chain stats, got %d", len(st.Chains))
		}
		// Not a theorem (exchange perturbs chain 0 after the first barrier),
		// but with 4 chains and a shared warm start a regression beyond noise
		// indicates a bug; these seeds are verified stable.
		if par.Cost > seq.Cost*1.001 {
			t.Errorf("seed %d: 4 chains (%.4f) worse than single chain (%.4f)", seed, par.Cost, seq.Cost)
		}
	}
}

// TestParallelStatsConsistency checks per-chain counters add up and the
// winning chain's best cost matches the solution.
func TestParallelStatsConsistency(t *testing.T) {
	prob := testProblem(t, 1, 128)
	sol, st, err := parallelMCMCSolver{}.Solve(context.Background(), prob,
		Options{Seed: 5, MaxSteps: 300, Chains: 3, ExchangeEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	var steps, accepted int
	best := sol.Cost + 1
	for _, c := range st.Chains {
		steps += c.Proposed
		accepted += c.Accepted
		if c.BestCost < best {
			best = c.BestCost
		}
		if c.Proposed > 300 {
			t.Errorf("chain %d proposed %d steps, budget 300", c.Chain, c.Proposed)
		}
	}
	if best != sol.Cost {
		t.Errorf("solution cost %v != min chain best %v", sol.Cost, best)
	}
	if st.Steps != steps {
		t.Errorf("Stats.Steps %d != sum of ChainStats.Proposed %d", st.Steps, steps)
	}
	if st.Accepted != accepted {
		t.Errorf("Stats.Accepted %d != sum over chains %d", st.Accepted, accepted)
	}
	if st.CacheMisses == 0 {
		t.Error("expected cache misses to be counted")
	}
	for i := 1; i < len(st.Trace); i++ {
		if st.Trace[i].BestCost > st.Trace[i-1].BestCost {
			t.Fatalf("merged trace not monotone at %d", i)
		}
	}
	if st.Trace[len(st.Trace)-1].BestCost != sol.Cost {
		t.Error("merged trace must end at the solution cost")
	}
}

// TestCostCacheHitsAcrossChains: a revisited fingerprint must come from the
// cache, and the hit rate must be visible in Stats.
func TestCostCacheHitsAcrossChains(t *testing.T) {
	prob := testProblem(t, 1, 128)
	_, st, err := parallelMCMCSolver{}.Solve(context.Background(), prob,
		Options{Seed: 2, MaxSteps: 500, Chains: 4, ExchangeEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits == 0 {
		t.Error("4 chains walking one small space must revisit plans (0 cache hits)")
	}
	if r := st.CacheHitRate(); r <= 0 || r >= 1 {
		t.Errorf("hit rate %v outside (0,1)", r)
	}
}

// TestCostCacheConcurrentHammer drives one shared cache from many goroutines
// evaluating an overlapping set of plans — the -race guard for the shared
// memoization path.
func TestCostCacheConcurrentHammer(t *testing.T) {
	prob := testProblem(t, 1, 64)
	seed, err := Greedy(prob.Est, prob.Plan, PruneNone)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := buildSpace(prob.Est, prob.Plan, Options{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	// A pool of overlapping variants so goroutines collide on fingerprints.
	var variants []*core.Plan
	for _, name := range sp.names {
		for i, a := range sp.sets[name] {
			if i >= 4 {
				break
			}
			v := seed.Clone()
			v.Assign[name] = a
			variants = append(variants, v)
		}
	}
	cache := NewCostCache()
	want := make([]float64, len(variants))
	for i, v := range variants {
		r, err := prob.Est.Evaluate(v)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Cost
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, v := range variants {
					r, err := cache.Evaluate(prob.Est, v)
					if err != nil {
						errs <- err
						return
					}
					if r.Cost != want[i] {
						errs <- fmt.Errorf("goroutine %d: variant %d cost %v, want %v", g, i, r.Cost, want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cache.Hits() == 0 || cache.Len() == 0 {
		t.Error("hammer must produce cache hits")
	}
}

// TestCachedEvaluateMatchesDirect: the memoized path must reproduce the
// direct estimator exactly, including the per-node memoization layer.
func TestCachedEvaluateMatchesDirect(t *testing.T) {
	prob := testProblem(t, 2, 256)
	sp, err := buildSpace(prob.Est, prob.Plan, Options{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	seed, err := Greedy(prob.Est, prob.Plan, PruneNone)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCostCache()
	check := func(p *core.Plan) {
		t.Helper()
		direct, err := prob.Est.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		var cached *estimator.Result
		for i := 0; i < 2; i++ { // second round exercises both cache levels
			cached, err = cache.Evaluate(prob.Est, p)
			if err != nil {
				t.Fatal(err)
			}
		}
		if cached.Cost != direct.Cost || cached.TimeCost != direct.TimeCost || cached.MaxMem != direct.MaxMem {
			t.Fatalf("cached evaluate diverged: cost %v/%v time %v/%v mem %d/%d",
				cached.Cost, direct.Cost, cached.TimeCost, direct.TimeCost, cached.MaxMem, direct.MaxMem)
		}
	}
	check(seed)
	// Mutate one call at a time so node-level entries are shared across
	// plan-level misses.
	for _, name := range sp.names {
		v := seed.Clone()
		v.Assign[name] = sp.sets[name][len(sp.sets[name])/2]
		check(v)
	}
}

// TestSolveCancellation: ctx cancellation aborts a solve promptly with an
// error — a half-walked chain must not masquerade as a converged plan (the
// contract behind the public Planner.Plan context plumbing).
func TestSolveCancellation(t *testing.T) {
	prob := testProblem(t, 1, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, solver := range []string{"mcmc", "parallel-mcmc", "greedy"} {
		_, err := Solve(ctx, solver, prob, Options{Seed: 1, MaxSteps: 100000, Chains: 2})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled %s solve returned %v, want context.Canceled", solver, err)
		}
	}
	// The exhaustive solver must refuse to pass off a partial sweep as the
	// optimum: cancellation is an error, not a truncated Solution.
	if _, err := Solve(ctx, "exhaustive", prob, Options{MaxCandidatesPerCall: 3}); err == nil {
		t.Error("cancelled exhaustive sweep must return an error")
	}
}
