package search

import (
	"testing"
	"time"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

func newProblem(t *testing.T, nodes int, actor, critic model.Config, batch, prompt, gen int) (*core.Plan, *estimator.Estimator) {
	t.Helper()
	cluster := hardware.DefaultCluster(nodes)
	g := dfg.BuildPPO(dfg.Spec{Batch: batch, PromptLen: prompt, GenLen: gen, Iterations: 1})
	p := core.NewPlan(cluster, g, core.PPOModels(actor, critic))
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range p.Models {
		costers[role] = gpumodel.NewOracle(cluster, ms.Cfg)
	}
	return p, estimator.New(cluster, costers)
}

func TestGreedyProducesValidPlan(t *testing.T) {
	p, e := newProblem(t, 2, model.LLaMA7B, model.LLaMA7B, 256, 512, 512)
	seed, err := Greedy(e, p, PruneNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Validate(); err != nil {
		t.Fatalf("greedy plan invalid: %v", err)
	}
	if _, err := e.Evaluate(seed); err != nil {
		t.Fatalf("greedy plan unevaluable: %v", err)
	}
}

func TestSearchImprovesOnGreedy(t *testing.T) {
	p, e := newProblem(t, 2, model.LLaMA7B, model.LLaMA7B, 256, 512, 512)
	seed, err := Greedy(e, p, PruneNone)
	if err != nil {
		t.Fatal(err)
	}
	seedRes, err := e.Evaluate(seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(e, p, Options{MaxSteps: 1500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > seedRes.Cost {
		t.Errorf("search (%.3f) must never be worse than its seed (%.3f)", res.Cost, seedRes.Cost)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatalf("searched plan invalid: %v", err)
	}
	if res.Estimate.OOM {
		t.Error("searched plan should be memory-feasible when feasible plans exist")
	}
}

func TestSearchDeterministicWithSeed(t *testing.T) {
	p, e := newProblem(t, 1, model.LLaMA7B, model.LLaMA7B, 128, 256, 256)
	a, err := Search(e, p, Options{MaxSteps: 400, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(e, p, Options{MaxSteps: 400, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Plan.Signature() != b.Plan.Signature() {
		t.Error("same seed must reproduce the same search outcome")
	}
}

func TestSearchTraceMonotone(t *testing.T) {
	p, e := newProblem(t, 2, model.LLaMA7B, model.LLaMA7B, 256, 512, 512)
	res, err := Search(e, p, Options{MaxSteps: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty search trace")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].BestCost > res.Trace[i-1].BestCost+1e-12 {
			t.Fatalf("best cost increased along trace: %v -> %v",
				res.Trace[i-1].BestCost, res.Trace[i].BestCost)
		}
	}
	if res.Trace[len(res.Trace)-1].BestCost != res.Cost {
		t.Error("final trace point must match result cost")
	}
}

func TestSearchBeatsSymmetricHeuristic(t *testing.T) {
	// The headline claim: the searched plan outperforms a symmetric
	// full-cluster plan for a 7B+7B PPO iteration on 2 nodes.
	p, e := newProblem(t, 2, model.LLaMA7B, model.LLaMA7B, 512, 1024, 1024)
	sym := p.Clone()
	full := mesh.Full(p.Cluster)
	st := parallel.Strategy{DP: 2, TP: 8, PP: 1, MicroBatches: 4}
	for _, name := range sym.CallNames() {
		sym.Assign[name] = core.Assignment{Mesh: full, Strategy: st}
	}
	symRes, err := e.Evaluate(sym)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(e, p, Options{MaxSteps: 2500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= symRes.Cost {
		t.Errorf("searched plan (%.1fs) should beat the symmetric plan (%.1fs)",
			res.Cost, symRes.Cost)
	}
}

func TestCandidatesRespectPruning(t *testing.T) {
	p, _ := newProblem(t, 4, model.LLaMA7B, model.LLaMA7B, 256, 512, 512)
	var genNode *dfg.Node
	for _, n := range p.Graph.Nodes {
		if n.Name == "ActorGen" {
			genNode = n
		}
	}
	meshes := mesh.Enumerate(p.Cluster)
	none := candidates(p, genNode, PruneNone, meshes, nil, false)
	moderate := candidates(p, genNode, PruneModerate, meshes, nil, false)
	aggressive := candidates(p, genNode, PruneAggressive, meshes, nil, false)
	if len(moderate) >= len(none) {
		t.Errorf("moderate pruning did not shrink the space: %d vs %d", len(moderate), len(none))
	}
	if len(aggressive) >= len(moderate) {
		t.Errorf("aggressive pruning did not shrink further: %d vs %d", len(aggressive), len(moderate))
	}
	for _, a := range none {
		if a.Strategy.TP > p.Cluster.GPUsPerNode {
			t.Fatal("cross-node TP must always be pruned")
		}
	}
	for _, a := range moderate {
		if a.Mesh.Count > p.Cluster.GPUsPerNode {
			span := a.Mesh.Count / p.Cluster.GPUsPerNode
			if span&(span-1) != 0 {
				t.Fatalf("moderate pruning admitted non-power-of-two span %d", span)
			}
		}
	}
	for _, a := range aggressive {
		if a.Strategy.PP > 16 || a.Strategy.MicroBatches > 8 {
			t.Fatalf("aggressive pruning admitted %v", a.Strategy)
		}
	}
}

func TestShortlistCapsSpace(t *testing.T) {
	p, e := newProblem(t, 2, model.LLaMA7B, model.LLaMA7B, 256, 512, 512)
	res, err := Search(e, p, Options{MaxSteps: 200, Seed: 1, MaxCandidatesPerCall: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 6 calls × ≤10 candidates → log10 space ≤ 6.
	if res.SpaceLog10 > 6.001 {
		t.Errorf("capped space log10 = %.2f, want <= 6", res.SpaceLog10)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBruteForceFindsAtLeastSearchQuality(t *testing.T) {
	// On one node with a small workload, the shortlisted exhaustive search
	// must be at least as good as a short MCMC run (it is the Fig. 15
	// optimality reference).
	p, e := newProblem(t, 1, model.LLaMA7B, model.LLaMA7B, 64, 256, 256)
	bf, err := BruteForce(e, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Search(e, p, Options{MaxSteps: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Cost > mc.Cost*1.02 {
		t.Errorf("brute force (%.3f) should not lose to a short MCMC run (%.3f)", bf.Cost, mc.Cost)
	}
	if err := bf.Plan.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSearchTimeLimit(t *testing.T) {
	p, e := newProblem(t, 1, model.LLaMA7B, model.LLaMA7B, 64, 256, 256)
	start := time.Now()
	_, err := Search(e, p, Options{TimeLimit: 150 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("search ran %v, far beyond its 150ms budget", elapsed)
	}
}

func TestSearchedPlanUsesAsymmetry(t *testing.T) {
	// With similar-size actor and critic (paper Fig. 9, 7B+7B case), a good
	// plan separates actor and critic training onto disjoint resources or
	// at least differentiates assignments; verify the searched plan is not
	// fully symmetric.
	p, e := newProblem(t, 2, model.LLaMA7B, model.LLaMA7B, 512, 1024, 1024)
	res, err := Search(e, p, Options{MaxSteps: 3000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	assigns := map[string]bool{}
	for _, name := range res.Plan.CallNames() {
		a := res.Plan.Assign[name]
		assigns[a.String()] = true
	}
	if len(assigns) < 2 {
		t.Error("searched plan collapsed to a single symmetric assignment")
	}
}
