// Package search implements the paper's execution-plan search (§5.2): a
// Metropolis–Hastings MCMC walk over (device mesh, parallelization strategy)
// assignments, seeded with a greedy per-call minimizer, guided by the
// estimator's OOM-penalized cost, with the heuristic pruning of §8.2 for
// very large clusters and a bounded exhaustive search used as the optimality
// reference of Fig. 15.
package search

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/memory"
	"realhf/internal/mesh"
	"realhf/internal/parallel"
)

// PruneLevel selects how aggressively the candidate space is cut before
// sampling (paper Fig. 14).
type PruneLevel int

const (
	// PruneNone keeps every legal mesh and factorization (tensor
	// parallelism is still capped at the node size — the paper prunes
	// cross-node TP unconditionally).
	PruneNone PruneLevel = iota
	// PruneModerate restricts multi-node meshes to power-of-two node spans
	// aligned to their size.
	PruneModerate
	// PruneAggressive additionally caps pipeline depth at 16 stages and
	// micro-batch counts at 8.
	PruneAggressive
)

// Options configures a search run.
type Options struct {
	// TimeLimit bounds wall-clock search time (default 5 s).
	TimeLimit time.Duration
	// MaxSteps bounds MCMC steps (0 = unbounded; the time limit governs).
	MaxSteps int
	// Beta is the sampling temperature β of P(p) ∝ exp(−β·cost). When 0 it
	// is auto-scaled to 10/cost(p₀) so relative cost differences matter
	// uniformly across problem sizes.
	Beta float64
	// Seed makes the chain deterministic.
	Seed int64
	// Prune selects the candidate-space pruning level.
	Prune PruneLevel
	// MaxCandidatesPerCall, when positive, shortlists each call's candidate
	// set to the N fastest individual assignments before sampling — the
	// knob behind the Fig. 14 pruning ablation (a cap of N yields a joint
	// space of ~N^calls plans).
	MaxCandidatesPerCall int
	// ProgressEvery records a trace point every N steps (default 64).
	ProgressEvery int
	// InitialPlan seeds the chain instead of the greedy plan. It must be
	// fully assigned.
	InitialPlan *core.Plan
	// SeedCandidates are additional fully-assigned plans evaluated alongside
	// the greedy seed; the chain starts from the cheapest. Warm-starting
	// from e.g. the symmetric heuristic lets short search budgets match the
	// paper's everywhere-better-than-baselines outcome.
	SeedCandidates []*core.Plan
	// RestrictCalls, when non-empty, limits MCMC moves to the named calls;
	// all other assignments stay frozen at the initial plan. Used by the
	// progressive-optimization breakdowns (paper Figs. 2 and 9).
	RestrictCalls []string
}

func (o Options) withDefaults() Options {
	if o.TimeLimit == 0 {
		o.TimeLimit = 5 * time.Second
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 64
	}
	return o
}

// ProgressPoint is one sample of best-cost-so-far over search time.
type ProgressPoint struct {
	Elapsed  time.Duration
	Step     int
	BestCost float64
}

// Result is the outcome of a search.
type Result struct {
	Plan     *core.Plan
	Cost     float64
	Estimate *estimator.Result
	Trace    []ProgressPoint
	Steps    int
	Accepted int
	// SpaceLog10 is the log₁₀ size of the pruned joint candidate space.
	SpaceLog10 float64
}

// candidates enumerates the legal assignments of one call under the pruning
// level.
func candidates(p *core.Plan, call *dfg.Node, lvl PruneLevel) []core.Assignment {
	ms := p.Models[call.Role]
	batch := call.Work.Batch
	if call.Type == dfg.Train && call.Work.MiniBatches > 1 {
		batch /= call.Work.MiniBatches
	}
	maxPP := ms.Cfg.NumLayers
	maxMB := 32
	if lvl >= PruneAggressive {
		if maxPP > 16 {
			maxPP = 16
		}
		maxMB = 8
	}
	var out []core.Assignment
	for _, m := range mesh.Enumerate(p.Cluster) {
		if lvl >= PruneModerate && m.Count > p.Cluster.GPUsPerNode {
			span := m.Count / p.Cluster.GPUsPerNode
			if span&(span-1) != 0 || m.FirstNode()%span != 0 {
				continue
			}
		}
		maxTP := p.Cluster.GPUsPerNode // the paper's unconditional TP prune
		if m.Count < maxTP {
			maxTP = m.Count
		}
		for _, st := range parallel.Enumerate(m.Count, maxTP, maxPP) {
			if batch > 0 && batch%st.DP != 0 {
				continue
			}
			perDP := batch / st.DP
			if perDP == 0 {
				perDP = 1
			}
			for _, mb := range parallel.MicroBatchOptions(perDP) {
				if mb > maxMB {
					break
				}
				a := core.Assignment{Mesh: m, Strategy: st.WithMicroBatches(mb)}
				if err := a.Strategy.Validate(m, ms.Cfg, batch); err != nil {
					continue
				}
				// Drop candidates whose own working set cannot fit the
				// device even with nothing else resident: they can never be
				// part of a feasible plan.
				spec := gpumodel.CallSpec{
					Cfg: ms.Cfg, IsCritic: ms.IsCritic, Type: call.Type,
					Work: call.Work, Strategy: a.Strategy, Mesh: a.Mesh,
				}
				if memory.Active(spec) > p.Cluster.GPU.MemoryBytes {
					continue
				}
				out = append(out, a)
			}
		}
	}
	return out
}

// candidateSets precomputes per-call candidate lists and the joint space
// size.
func candidateSets(p *core.Plan, lvl PruneLevel) (map[string][]core.Assignment, float64, error) {
	sets := map[string][]core.Assignment{}
	var log10 float64
	for _, n := range p.Graph.Nodes {
		if _, ok := sets[n.Name]; ok {
			continue
		}
		c := candidates(p, n, lvl)
		if len(c) == 0 {
			return nil, 0, fmt.Errorf("search: call %q has no legal assignment", n.Name)
		}
		sets[n.Name] = c
		log10 += math.Log10(float64(len(c)))
	}
	return sets, log10, nil
}

// callTime estimates the standalone duration of one call under a candidate
// assignment, without constructing a full plan. Assignments whose working
// set cannot plausibly coexist with the role's static memory receive an
// infeasibility surcharge, so greedy seeding and shortlists prefer layouts
// that can actually run.
func callTime(e *estimator.Estimator, p *core.Plan, n *dfg.Node, a core.Assignment) (float64, error) {
	ms, ok := p.Models[n.Role]
	if !ok {
		return 0, fmt.Errorf("search: role %q has no model", n.Role)
	}
	mc, ok := e.Costers[n.Role]
	if !ok {
		return 0, fmt.Errorf("search: role %q has no coster", n.Role)
	}
	spec := gpumodel.CallSpec{
		Cfg: ms.Cfg, IsCritic: ms.IsCritic, Type: n.Type, Work: n.Work,
		Strategy: a.Strategy, Mesh: a.Mesh,
	}
	t := gpumodel.AssembleCall(mc, e.Comm, spec).Total()
	static := memory.Static(ms.Params(), a.Strategy, memory.StaticOpts{
		Trainable: ms.Trainable, ShardOptimizerOverDP: true,
	})
	if memory.Active(spec)+static > p.Cluster.GPU.MemoryBytes {
		t *= estimator.OOMPenalty
	}
	return t, nil
}

// nodeOfName returns a representative dfg node for each distinct call name.
func nodesByName(p *core.Plan) map[string]*dfg.Node {
	out := map[string]*dfg.Node{}
	for _, n := range p.Graph.Nodes {
		if _, ok := out[n.Name]; !ok {
			out[n.Name] = n
		}
	}
	return out
}

// shortlist keeps the topK individually fastest candidates of each call.
// With dedupeLayouts set, only the best micro-batch variant of each
// (mesh, dp, tp, pp) layout survives, so a small K still spans genuinely
// different memory/speed trade-offs — essential for the exhaustive search,
// where K same-layout variants would make every joint combination inherit
// the same static-memory footprint.
func shortlist(e *estimator.Estimator, p *core.Plan, sets map[string][]core.Assignment, topK int, dedupeLayouts bool) (map[string][]core.Assignment, float64, error) {
	byName := nodesByName(p)
	out := map[string][]core.Assignment{}
	var log10 float64
	for name, cands := range sets {
		n := byName[name]
		type scored struct {
			a core.Assignment
			t float64
		}
		all := make([]scored, 0, len(cands))
		for _, a := range cands {
			t, err := callTime(e, p, n, a)
			if err != nil {
				continue
			}
			all = append(all, scored{a, t})
		}
		if len(all) == 0 {
			return nil, 0, fmt.Errorf("search: no costable assignment for %q", name)
		}
		sort.Slice(all, func(x, y int) bool { return all[x].t < all[y].t })
		if dedupeLayouts {
			seen := map[core.Assignment]bool{}
			dedup := all[:0]
			for _, s := range all {
				key := s.a
				key.Strategy.MicroBatches = 0
				if seen[key] {
					continue
				}
				seen[key] = true
				dedup = append(dedup, s)
			}
			all = dedup
		}
		if topK > 0 && len(all) > topK {
			all = all[:topK]
		}
		list := make([]core.Assignment, len(all))
		for i, s := range all {
			list[i] = s.a
		}
		out[name] = list
		log10 += math.Log10(float64(len(list)))
	}
	return out, log10, nil
}

// Greedy builds the paper's seed plan p₀: every call independently takes the
// assignment minimizing its own estimated duration, ignoring overlap and
// memory (§5.2 notes this seed is usually sub-optimal for exactly those
// reasons).
func Greedy(e *estimator.Estimator, p *core.Plan, lvl PruneLevel) (*core.Plan, error) {
	sets, _, err := candidateSets(p, lvl)
	if err != nil {
		return nil, err
	}
	byName := nodesByName(p)
	out := p.Clone()
	for name, n := range byName {
		best := math.Inf(1)
		var bestA core.Assignment
		for _, a := range sets[name] {
			t, err := callTime(e, p, n, a)
			if err != nil {
				continue
			}
			if t < best {
				best, bestA = t, a
			}
		}
		if math.IsInf(best, 1) {
			return nil, fmt.Errorf("search: no costable assignment for %q", name)
		}
		out.Assign[name] = bestA
	}
	return out, nil
}

// Search runs Metropolis–Hastings from the greedy seed and returns the best
// plan observed along the chain.
func Search(e *estimator.Estimator, p *core.Plan, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	start := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))

	sets, spaceLog10, err := candidateSets(p, opt.Prune)
	if err != nil {
		return nil, err
	}
	if opt.MaxCandidatesPerCall > 0 {
		sets, spaceLog10, err = shortlist(e, p, sets, opt.MaxCandidatesPerCall, false)
		if err != nil {
			return nil, err
		}
	}
	names := make([]string, 0, len(sets))
	for name := range sets {
		if len(opt.RestrictCalls) > 0 && !contains(opt.RestrictCalls, name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("search: no calls to search over")
	}

	var cur *core.Plan
	if opt.InitialPlan != nil {
		cur = opt.InitialPlan.Clone()
	} else {
		cur, err = Greedy(e, p, opt.Prune)
		if err != nil {
			return nil, err
		}
	}
	curRes, err := e.Evaluate(cur)
	if err != nil {
		return nil, err
	}
	// Warm starts: adopt the cheapest of the greedy seed and any candidate
	// plans the caller supplies.
	for _, seed := range opt.SeedCandidates {
		if seed == nil {
			continue
		}
		sr, err := e.Evaluate(seed)
		if err != nil {
			continue
		}
		if sr.Cost < curRes.Cost {
			cur, curRes = seed.Clone(), sr
		}
	}
	adaptiveBeta := opt.Beta == 0
	beta := opt.Beta
	if adaptiveBeta {
		beta = 10 / math.Max(curRes.Cost, 1e-9)
	}

	best := cur.Clone()
	bestRes := curRes
	res := &Result{SpaceLog10: spaceLog10}
	res.Trace = append(res.Trace, ProgressPoint{Elapsed: time.Since(start), Step: 0, BestCost: bestRes.Cost})

	curCost := curRes.Cost
	for step := 1; ; step++ {
		if opt.MaxSteps > 0 && step > opt.MaxSteps {
			break
		}
		if opt.MaxSteps == 0 && time.Since(start) > opt.TimeLimit {
			break
		}
		// Propose: re-draw one call's assignment uniformly.
		name := names[rng.Intn(len(names))]
		cands := sets[name]
		next := cur.Clone()
		next.Assign[name] = cands[rng.Intn(len(cands))]
		nextRes, err := e.Evaluate(next)
		if err != nil {
			continue
		}
		res.Steps = step
		accept := nextRes.Cost <= curCost ||
			rng.Float64() < math.Exp(-beta*(nextRes.Cost-curCost))
		if accept {
			cur, curCost = next, nextRes.Cost
			res.Accepted++
			if nextRes.Cost < bestRes.Cost {
				best, bestRes = next, nextRes
				if adaptiveBeta {
					// Keep the temperature matched to the current cost
					// scale: an OOM-penalized seed would otherwise leave β
					// so small that the chain random-walks forever.
					beta = 10 / math.Max(bestRes.Cost, 1e-9)
				}
				res.Trace = append(res.Trace, ProgressPoint{
					Elapsed: time.Since(start), Step: step, BestCost: bestRes.Cost,
				})
			}
		}
		if step%opt.ProgressEvery == 0 {
			res.Trace = append(res.Trace, ProgressPoint{
				Elapsed: time.Since(start), Step: step, BestCost: bestRes.Cost,
			})
		}
	}
	res.Plan = best
	res.Cost = bestRes.Cost
	res.Estimate = bestRes
	return res, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// BruteForce approximates the exhaustive optimum of Fig. 15 on small
// clusters: for every call it shortlists the topK fastest individual
// assignments, then evaluates the full cross product. (A literal exhaustive
// enumeration over all ~10¹⁵ joint plans is infeasible even on 8 GPUs; the
// shortlist preserves the optimum whenever the best joint plan is composed
// of individually competitive assignments, which Fig. 15 shows holds in
// practice.)
func BruteForce(e *estimator.Estimator, p *core.Plan, topK int) (*Result, error) {
	if topK <= 0 {
		topK = 6
	}
	sets, spaceLog10, err := candidateSets(p, PruneNone)
	if err != nil {
		return nil, err
	}
	listed, _, err := shortlist(e, p, sets, topK, true)
	if err != nil {
		return nil, err
	}
	names := p.CallNames()
	short := make([][]core.Assignment, len(names))
	for i, name := range names {
		short[i] = listed[name]
	}

	best := math.Inf(1)
	var bestPlan *core.Plan
	var bestRes *estimator.Result
	idx := make([]int, len(names))
	steps := 0
	for {
		trial := p.Clone()
		for i, name := range names {
			trial.Assign[name] = short[i][idx[i]]
		}
		if r, err := e.Evaluate(trial); err == nil {
			steps++
			if r.Cost < best {
				best, bestPlan, bestRes = r.Cost, trial, r
			}
		}
		// Advance the mixed-radix counter.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(short[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	if bestPlan == nil {
		return nil, fmt.Errorf("search: brute force found no feasible plan")
	}
	return &Result{Plan: bestPlan, Cost: best, Estimate: bestRes, Steps: steps, SpaceLog10: spaceLog10}, nil
}
