package search

import (
	"context"
	"fmt"
	"math"

	"realhf/internal/core"
	"realhf/internal/estimator"
)

// Greedy builds the paper's seed plan p₀: every call independently takes the
// assignment minimizing its own estimated duration, ignoring overlap and
// memory (§5.2 notes this seed is usually sub-optimal for exactly those
// reasons).
func Greedy(e *estimator.Estimator, p *core.Plan, lvl PruneLevel) (*core.Plan, error) {
	sets, _, err := candidateSets(p, lvl, false)
	if err != nil {
		return nil, err
	}
	return greedyFromSets(e, p, sets)
}

// greedyFromSets is Greedy over precomputed candidate sets, so callers that
// already enumerated the space don't pay for it twice.
func greedyFromSets(e *estimator.Estimator, p *core.Plan, sets map[string][]core.Assignment) (*core.Plan, error) {
	byName := nodesByName(p)
	out := p.Clone()
	for name, n := range byName {
		best := math.Inf(1)
		var bestA core.Assignment
		for _, a := range sets[name] {
			t, err := callTime(e, p, n, a)
			if err != nil {
				continue
			}
			if t < best {
				best, bestA = t, a
			}
		}
		if math.IsInf(best, 1) {
			return nil, fmt.Errorf("search: no costable assignment for %q", name)
		}
		out.Assign[name] = bestA
	}
	return out, nil
}

// greedySolver wraps Greedy as a Solver: it builds the per-call minimizing
// seed plan and reports its estimate, with no sampling. Deterministic and
// seed-independent.
type greedySolver struct{}

func (greedySolver) Name() string { return "greedy" }

func (greedySolver) Solve(ctx context.Context, prob Problem, opt Options) (Solution, Stats, error) {
	opt = opt.withDefaults()
	if err := ctx.Err(); err != nil {
		return Solution{}, Stats{}, fmt.Errorf("search: greedy solve cancelled: %w", err)
	}
	e := prob.estimator()
	sets, spaceLog10, err := candidateSets(prob.Plan, opt.Prune, opt.OffloadSearch)
	if err != nil {
		return Solution{}, Stats{}, err
	}
	plan, err := greedyFromSets(e, prob.Plan, sets)
	if err != nil {
		return Solution{}, Stats{}, err
	}
	cache := opt.Cache
	if cache == nil {
		cache = NewCostCache()
	}
	hits0, misses0 := cache.Hits(), cache.Misses()
	res, err := cache.Evaluate(e, plan)
	if err != nil {
		return Solution{}, Stats{}, err
	}
	st := Stats{
		SpaceLog10:  spaceLog10,
		CacheHits:   cache.Hits() - hits0,
		CacheMisses: cache.Misses() - misses0,
		Trace:       []ProgressPoint{{Step: 0, BestCost: res.Cost}},
	}
	if opt.Progress != nil {
		opt.Progress(st.Trace[0])
	}
	return Solution{Plan: plan, Cost: res.Cost, Estimate: res}, st, nil
}
