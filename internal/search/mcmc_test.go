package search

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/mesh"
	"realhf/internal/parallel"
)

// oomSeedPlan assigns every call to a single GPU, so the model states can
// never fit and the estimator returns a heavily OOM-penalized cost.
func oomSeedPlan(t *testing.T, prob Problem, sp *space) (*core.Plan, *estimator.Result) {
	t.Helper()
	m, err := mesh.New(0, 1, prob.Plan.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	tiny := core.Assignment{Mesh: m, Strategy: parallel.Strategy{DP: 1, TP: 1, PP: 1, MicroBatches: 1}}
	p := prob.Plan.Clone()
	for _, name := range sp.names {
		p.Assign[name] = tiny
	}
	res, err := prob.Est.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Fatal("single-GPU seed plan must be OOM-penalized")
	}
	return p, res
}

// TestExchangeRescalesAdaptiveBeta: a chain seeded at an OOM-penalized cost
// carries β ≈ 10/hugeCost ≈ 0; when it adopts a far cheaper global-best
// plan at an exchange barrier, its temperature must be rescaled to the
// adopted cost scale — otherwise it accepts nearly every uphill proposal
// for the rest of the solve.
func TestExchangeRescalesAdaptiveBeta(t *testing.T) {
	prob := testProblem(t, 1, 64)
	opt := Options{Seed: 11, MaxSteps: 32, ExchangeEvery: 32}.withDefaults()
	sp, err := buildSpace(prob.Est, prob.Plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCostCache()
	ev := newPlanEvaluator(prob.Est, cache, prob.Plan)
	good, goodPC, err := startState(ev, prob.Est, prob.Plan, sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	goodCost := goodPC.Cost
	oom, oomRes := oomSeedPlan(t, prob, sp)

	mk := func(idx int, cur *core.Plan, cost float64) *chainState {
		seed := chainSeed(opt.Seed, idx)
		return &chainState{
			idx: idx, seed: seed, rng: rand.New(rand.NewSource(seed)),
			cur: cur.Clone(), curCost: cost,
			best: cur.Clone(), bestCost: cost,
			beta: 10 / math.Max(cost, 1e-9), adaptiveBeta: true,
		}
	}
	cs := []*chainState{mk(0, good, goodCost), mk(1, oom, oomRes.Cost)}
	staleBeta := cs[1].beta
	exchangeBest(cs)

	if cs[1].curCost != goodCost || cs[1].bestCost != goodCost {
		t.Fatalf("OOM-seeded chain did not adopt the global best (cur %v best %v, want %v)",
			cs[1].curCost, cs[1].bestCost, goodCost)
	}
	want := 10 / math.Max(goodCost, 1e-9)
	if cs[1].beta != want {
		t.Errorf("adopting chain kept β %v, want %v (rescaled to the adopted cost scale)", cs[1].beta, want)
	}
	if cs[1].beta <= staleBeta {
		t.Errorf("β %v did not grow past the stale OOM-scale value %v", cs[1].beta, staleBeta)
	}
	// With the rescaled temperature, a proposal ~10% uphill of the adopted
	// cost is no longer a near-certain accept: exp(−β·Δ) must be clearly
	// below 1 (with the stale β it is ≈ 1 − 1e-3).
	if p := math.Exp(-cs[1].beta * 0.1 * goodCost); p > 0.5 {
		t.Errorf("uphill acceptance probability %v still near-certain after adoption", p)
	}
}

// TestParallelSolveRecoversFromOOMSeed: end-to-end regression for the
// stale-β bug — a multi-chain solve seeded from an OOM-penalized plan must
// still converge to a feasible plan no worse than the sequential walker's.
func TestParallelSolveRecoversFromOOMSeed(t *testing.T) {
	prob := testProblem(t, 1, 64)
	sp, err := buildSpace(prob.Est, prob.Plan, Options{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	oom, _ := oomSeedPlan(t, prob, sp)
	sol, st, err := parallelMCMCSolver{}.Solve(context.Background(), prob, Options{
		Seed: 6, MaxSteps: 400, Chains: 3, ExchangeEvery: 32, InitialPlan: oom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Estimate.OOM {
		t.Error("solve seeded at an OOM plan must escape the infeasible region")
	}
	for _, c := range st.Chains {
		if c.BestCost >= estimator.OOMPenalty*sol.Cost {
			t.Errorf("chain %d never left the OOM cost scale (best %v)", c.Chain, c.BestCost)
		}
	}
}

// TestMergeTracesStableTieBreak: points with equal elapsed times must merge
// in a chain-order-independent way — the old sort keyed only on Elapsed and
// produced goroutine-dependent curves.
func TestMergeTracesStableTieBreak(t *testing.T) {
	at := 10 * time.Millisecond
	c0 := &chainState{idx: 0, trace: []ProgressPoint{
		{Elapsed: at, Step: 5, BestCost: 8},
		{Elapsed: 2 * at, Step: 9, BestCost: 6},
	}}
	c1 := &chainState{idx: 1, trace: []ProgressPoint{
		{Elapsed: at, Step: 5, BestCost: 7},
		{Elapsed: 2 * at, Step: 9, BestCost: 6.5},
	}}
	initial := ProgressPoint{Step: 0, BestCost: 9}
	a := mergeTraces([]*chainState{c0, c1}, initial, 6, 3*at)
	b := mergeTraces([]*chainState{c1, c0}, initial, 6, 3*at)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("merged trace depends on chain order:\n  %v\n  %v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i].BestCost >= a[i-1].BestCost {
			t.Fatalf("merged trace not strictly improving at %d: %v", i, a)
		}
	}
}

// TestTimeBoundedParallelSolveCrossesBarriers: a SearchTime-bounded
// parallel solve must keep exchanging until the clock runs out and then
// terminate cleanly at a barrier, with consistent counters.
func TestTimeBoundedParallelSolveCrossesBarriers(t *testing.T) {
	prob := testProblem(t, 1, 64)
	sol, st, err := parallelMCMCSolver{}.Solve(context.Background(), prob, Options{
		TimeLimit: 300 * time.Millisecond, Chains: 4, ExchangeEvery: 16, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Plan.Validate(); err != nil {
		t.Fatalf("time-bounded solve returned an invalid plan: %v", err)
	}
	var sum, maxProposed int
	for _, c := range st.Chains {
		sum += c.Proposed
		if c.Proposed > maxProposed {
			maxProposed = c.Proposed
		}
	}
	if maxProposed <= 16 {
		t.Errorf("no chain crossed an exchange barrier (max proposed %d, ExchangeEvery 16)", maxProposed)
	}
	if st.Steps != sum {
		t.Errorf("Stats.Steps %d != sum of ChainStats.Proposed %d", st.Steps, sum)
	}
}

// TestParallelCancellationMidBarrier: cancellation that lands while chains
// are walking between exchange barriers must abort the solve promptly with
// a wrapped context error, never a truncated Solution.
func TestParallelCancellationMidBarrier(t *testing.T) {
	prob := testProblem(t, 1, 64)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Solve(ctx, "parallel-mcmc", prob, Options{
		TimeLimit: 30 * time.Second, Chains: 4, ExchangeEvery: 8, Seed: 2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to land", elapsed)
	}
}

// realloHeavyPlan reshard's generation onto a half-cluster mesh so the plan
// carries parameter-reallocation traffic the overlapped schedule can hide.
func reallocHeavyPlan(t *testing.T, prob Problem) *core.Plan {
	t.Helper()
	seed, err := Greedy(prob.Est, prob.Plan, PruneNone)
	if err != nil {
		t.Fatal(err)
	}
	half := prob.Plan.Cluster.NumGPUs() / 2
	m, err := mesh.New(0, half, prob.Plan.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	seed.Assign["ActorGen"] = core.Assignment{
		Mesh:     m,
		Strategy: parallel.Strategy{DP: half / 2, TP: 2, PP: 1, MicroBatches: 1},
	}
	return seed
}

// TestCostCacheKeysBySchedule: one shared cache serving a serialized and an
// overlapped estimator must keep separate plan-level entries — before the
// semantics key, the second caller read the first caller's makespan
// (cache poisoning).
func TestCostCacheKeysBySchedule(t *testing.T) {
	prob := testProblem(t, 2, 256)
	plan := reallocHeavyPlan(t, prob)
	over := *prob.Est
	over.OverlapComm = true

	cache := NewCostCache()
	rs, err := cache.Evaluate(prob.Est, plan)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := cache.Evaluate(&over, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !(ro.TimeCost < rs.TimeCost) {
		t.Errorf("overlapped makespan %.6f not below serialized %.6f on a realloc-heavy plan",
			ro.TimeCost, rs.TimeCost)
	}
	// Re-lookups must hit their own semantics' entry.
	if again, _ := cache.Evaluate(prob.Est, plan); again != rs {
		t.Error("serialized entry not cached/stable")
	}
	if again, _ := cache.Evaluate(&over, plan); again != ro {
		t.Error("overlapped entry not cached/stable")
	}
	if cache.Hits() != 2 || cache.Misses() != 2 {
		t.Errorf("want 2 hits / 2 misses, got %d/%d", cache.Hits(), cache.Misses())
	}
}

// TestOverlapAwareSolveOptimizesOverlappedCost: with the serialized
// winner supplied as a warm start, the overlap-aware solve can never end
// with a worse overlapped cost than the serialized-searched plan scores
// under the overlapped semantics — search never returns worse than its
// seed.
func TestOverlapAwareSolveOptimizesOverlappedCost(t *testing.T) {
	prob := testProblem(t, 2, 256)
	serial, _, err := mcmcSolver{}.Solve(context.Background(), prob, Options{MaxSteps: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	overProb := Problem{Est: prob.Est, Plan: prob.Plan, Overlap: true}
	over, _, err := mcmcSolver{}.Solve(context.Background(), overProb, Options{
		MaxSteps: 400, Seed: 7, SeedCandidates: []*core.Plan{serial.Plan},
	})
	if err != nil {
		t.Fatal(err)
	}
	serialUnderOverlap, err := overProb.estimator().Evaluate(serial.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if over.Cost > serialUnderOverlap.Cost {
		t.Errorf("overlap-aware solve (%.6f) worse than its serialized warm start under overlapped costs (%.6f)",
			over.Cost, serialUnderOverlap.Cost)
	}
	// The solution's estimate must carry the overlapped semantics: never
	// above the same plan's serialized makespan.
	serialOfChosen, err := prob.Est.Evaluate(over.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if over.Estimate.TimeCost > serialOfChosen.TimeCost {
		t.Errorf("overlap-aware estimate %.6f exceeds the serialized makespan %.6f of the same plan",
			over.Estimate.TimeCost, serialOfChosen.TimeCost)
	}
}

// TestOverlapProblemDefaultUnchanged: Problem.Overlap = false must keep the
// historical serialized objective bit for bit.
func TestOverlapProblemDefaultUnchanged(t *testing.T) {
	prob := testProblem(t, 1, 128)
	a, _, err := mcmcSolver{}.Solve(context.Background(), prob, Options{MaxSteps: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := mcmcSolver{}.Solve(context.Background(),
		Problem{Est: prob.Est, Plan: prob.Plan, Overlap: false}, Options{MaxSteps: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Plan.Fingerprint() != b.Plan.Fingerprint() {
		t.Error("explicit Overlap=false drifted from the default solve")
	}
}
