package search

import (
	"context"
	"testing"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/model"
)

// offloadProblem builds a memory-constrained single-node PPO problem: 7B
// trainable actor/critic plus 34B frozen ref/reward on 4 GPUs (320 GB). The
// frozen resting copies alone (~34 GB/GPU on top of ~56 GB/GPU of training
// state) push every residency-fixed plan past the 80 GB HBM, while parking
// the frozen weights in host memory leaves room for the working copies.
func offloadProblem(t *testing.T, batch, prompt, gen int) (*core.Plan, *estimator.Estimator) {
	t.Helper()
	cluster := hardware.DefaultCluster(1)
	cluster.GPUsPerNode = 4
	g := dfg.BuildPPO(dfg.Spec{Batch: batch, PromptLen: prompt, GenLen: gen, Iterations: 1})
	models := core.PPOModels(model.LLaMA7B, model.LLaMA7B)
	ref := models[dfg.Ref]
	ref.Cfg = model.LLaMA34B
	models[dfg.Ref] = ref
	rw := models[dfg.Reward]
	rw.Cfg = model.LLaMA34B
	models[dfg.Reward] = rw
	p := core.NewPlan(cluster, g, models)
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range p.Models {
		costers[role] = gpumodel.NewOracle(cluster, ms.Cfg)
	}
	return p, estimator.New(cluster, costers)
}

func TestCandidatesEmitOffloadVariants(t *testing.T) {
	p, _ := newProblem(t, 1, model.LLaMA7B, model.LLaMA7B, 64, 256, 256)
	byName := nodesByName(p)

	sets, _, err := candidateSets(p, PruneNone, true)
	if err != nil {
		t.Fatal(err)
	}
	for name, cands := range sets {
		ms := p.Models[byName[name].Role]
		var resident, offloaded int
		for _, a := range cands {
			if a.Offload {
				offloaded++
			} else {
				resident++
			}
		}
		if ms.Trainable {
			if offloaded != 0 {
				t.Errorf("%s: %d offloaded candidates on a trainable role", name, offloaded)
			}
			continue
		}
		if offloaded == 0 || resident == 0 || offloaded != resident {
			t.Errorf("%s: frozen role must get both residency variants of every assignment, got %d resident / %d offloaded",
				name, resident, offloaded)
		}
	}

	// With offload search off, candidate enumeration keeps the legacy
	// fixed-input behavior: a hinted frozen role is offloaded everywhere,
	// everything else nowhere.
	ms := p.Models[dfg.Ref]
	ms.OffloadWhenIdle = true
	p.Models[dfg.Ref] = ms
	sets, _, err = candidateSets(p, PruneNone, false)
	if err != nil {
		t.Fatal(err)
	}
	for name, cands := range sets {
		role := byName[name].Role
		for _, a := range cands {
			if a.Offload != (role == dfg.Ref) {
				t.Fatalf("%s (role %s): offload=%v under fixed-input semantics", name, role, a.Offload)
			}
		}
	}
}

// TestCostCacheOffloadDistinct: plans differing only in one call's Offload
// bit are distinct cache entries — an infeasible residency-fixed plan must
// never be answered with (or poisoned by) its feasible offloaded twin.
func TestCostCacheOffloadDistinct(t *testing.T) {
	p, e := offloadProblem(t, 64, 256, 256)
	seed, err := Greedy(e, p, PruneNone)
	if err != nil {
		t.Fatal(err)
	}
	off := seed.Clone()
	for _, n := range off.Graph.Nodes {
		if !off.Models[n.Role].Trainable {
			a := off.Assign[n.Name]
			a.Offload = true
			off.Assign[n.Name] = a
		}
	}
	if seed.Fingerprint() == off.Fingerprint() {
		t.Fatal("offload-distinct plans share a fingerprint")
	}

	cache := NewCostCache()
	r1, err := cache.Evaluate(e, seed)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cache.Evaluate(e, off)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MaxMem >= r1.MaxMem {
		t.Errorf("offloading every frozen call did not reduce peak memory: %d vs %d", r2.MaxMem, r1.MaxMem)
	}
	again, err := cache.Evaluate(e, seed)
	if err != nil {
		t.Fatal(err)
	}
	if again != r1 || again.OOM != r1.OOM || again.MaxMem != r1.MaxMem {
		t.Error("re-evaluating the residency-fixed plan returned a different entry")
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d plan entries, want 2", cache.Len())
	}
}

// TestOffloadSearchFindsFeasiblePlan is the feature's core promise: on a
// problem where every residency-fixed plan overflows HBM, the default search
// can only return an infeasible optimum, while the offload-aware search
// finds a feasible plan by parking frozen weights in host memory.
func TestOffloadSearchFindsFeasiblePlan(t *testing.T) {
	p, e := offloadProblem(t, 64, 256, 256)
	prob := Problem{Est: e, Plan: p}
	solver, err := New("mcmc")
	if err != nil {
		t.Fatal(err)
	}

	def, _, err := solver.Solve(context.Background(), prob, Options{Seed: 1, MaxSteps: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !def.Estimate.OOM {
		t.Fatalf("default search found a feasible plan (max %d bytes/GPU); the problem is not memory-constrained enough",
			def.Estimate.MaxMem)
	}

	sol, _, err := solver.Solve(context.Background(), prob, Options{Seed: 1, MaxSteps: 400, OffloadSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Estimate.OOM {
		t.Fatalf("offload-aware search still infeasible: max %d bytes/GPU over %d HBM",
			sol.Estimate.MaxMem, p.Cluster.GPU.MemoryBytes)
	}
	offloaded := 0
	for _, n := range sol.Plan.Graph.Nodes {
		if sol.Plan.Assign[n.Name].Offload {
			if sol.Plan.Models[n.Role].Trainable {
				t.Fatalf("searched plan offloads trainable call %s", n.Name)
			}
			offloaded++
		}
	}
	if offloaded == 0 {
		t.Error("feasible plan uses no offload — the constraint should have forced it")
	}
	if err := sol.Plan.Validate(); err != nil {
		t.Errorf("searched plan invalid: %v", err)
	}
}

// TestOffloadSearchDeterministic: the offload-aware solve is seeded and
// step-bounded like every other, so equal seeds give byte-identical plans.
func TestOffloadSearchDeterministic(t *testing.T) {
	p, e := offloadProblem(t, 64, 256, 256)
	prob := Problem{Est: e, Plan: p}
	for _, name := range []string{"mcmc", "parallel-mcmc"} {
		solver, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Seed: 7, MaxSteps: 200, Chains: 2, OffloadSearch: true}
		a, _, err := solver.Solve(context.Background(), prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := solver.Solve(context.Background(), prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		if a.Plan.Fingerprint() != b.Plan.Fingerprint() {
			t.Errorf("%s: offload-aware solve not deterministic", name)
		}
	}
}
