package search

import (
	"math/rand"
	"sync"
	"testing"

	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/model"
)

// deltaVariants spans the cost-semantics matrix the incremental session must
// reproduce bit for bit: both overlap modes, with and without profile
// calibration.
func deltaVariants(t *testing.T, e *estimator.Estimator) map[string]*estimator.Estimator {
	t.Helper()
	calib := estimator.NewCalibration(map[string]float64{
		"ActorGen": 1.7, "CriticTrain": 0.8,
	})
	if calib == nil {
		t.Fatal("calibration unexpectedly nil")
	}
	out := map[string]*estimator.Estimator{}
	for _, overlap := range []bool{false, true} {
		for _, c := range []*estimator.Calibration{nil, calib} {
			ev := *e
			ev.OverlapComm = overlap
			ev.Calib = c
			name := "serial"
			if overlap {
				name = "overlap"
			}
			if c != nil {
				name += "+calib"
			}
			out[name] = &ev
		}
	}
	return out
}

// mutatePlans drives one (session, estimator) pair through a randomized
// mutation walk: random full re-assignments followed by runs of single-call
// mutations, asserting after every step that the incremental evaluation
// equals a from-scratch Estimator.Evaluate field for field, bit for bit.
// Failures are reported with Errorf (never FailNow), so the walk is safe to
// run from spawned goroutines.
func mutatePlans(t *testing.T, e *estimator.Estimator, sess *estimator.EvalSession,
	p *core.Plan, sets map[string][]core.Assignment, seed int64, trials, muts int) {
	t.Helper()
	names := p.CallNames()
	rng := rand.New(rand.NewSource(seed))
	plan := p.Clone()
	for trial := 0; trial < trials; trial++ {
		for _, n := range names {
			cs := sets[n]
			plan.Assign[n] = cs[rng.Intn(len(cs))]
		}
		for mut := 0; mut < muts; mut++ {
			if mut > 0 {
				n := names[rng.Intn(len(names))]
				cs := sets[n]
				plan.Assign[n] = cs[rng.Intn(len(cs))]
			}
			got, err := sess.Evaluate(plan)
			if err != nil {
				t.Errorf("trial %d mut %d: session: %v", trial, mut, err)
				return
			}
			full, err := e.Evaluate(plan)
			if err != nil {
				t.Errorf("trial %d mut %d: full: %v", trial, mut, err)
				return
			}
			if want := estimator.CostOf(full); got != want {
				t.Errorf("trial %d mut %d: delta re-costing diverged from full Evaluate:\n got %+v\nwant %+v\nplan %s",
					trial, mut, got, want, plan.Fingerprint())
				return
			}
		}
	}
}

// TestDeltaCostingMatchesFullEvaluate is the incremental-costing contract's
// differential property test: under every cost semantics, a session fed
// randomized plans and single-RPC mutations returns exactly what a
// from-scratch evaluation returns.
func TestDeltaCostingMatchesFullEvaluate(t *testing.T) {
	p, e := newProblem(t, 1, model.LLaMA7B, model.LLaMA7B, 64, 256, 256)
	sets, _, err := candidateSets(p, PruneNone, false)
	if err != nil {
		t.Fatal(err)
	}
	for name, ev := range deltaVariants(t, e) {
		t.Run(name, func(t *testing.T) {
			cache := NewCostCache()
			sess := ev.NewSession(cache.DurationFunc(ev))
			mutatePlans(t, ev, sess, p, sets, 11, 6, 20)
			if st := sess.Stats(); st.NodeRecosts >= st.NodeLookups {
				t.Errorf("session never reused a node duration: %+v", st)
			}
		})
	}
}

// TestDeltaCostingOffloadFlips extends the differential property to the
// offload axis: with offload-aware candidate sets the mutation walk flips
// per-call host offload on frozen roles (same mesh and strategy, toggled
// Offload), exercising the session's offload-node re-costing and the
// role-residency static-memory memo under every cost semantics.
func TestDeltaCostingOffloadFlips(t *testing.T) {
	p, e := newProblem(t, 1, model.LLaMA7B, model.LLaMA7B, 64, 256, 256)
	sets, _, err := candidateSets(p, PruneNone, true)
	if err != nil {
		t.Fatal(err)
	}
	offloaded := 0
	for _, cs := range sets {
		for _, a := range cs {
			if a.Offload {
				offloaded++
			}
		}
	}
	if offloaded == 0 {
		t.Fatal("offload-aware candidate sets contain no offloaded assignment")
	}
	for name, ev := range deltaVariants(t, e) {
		t.Run(name, func(t *testing.T) {
			cache := NewCostCache()
			sess := ev.NewSession(cache.DurationFunc(ev))
			mutatePlans(t, ev, sess, p, sets, 23, 6, 20)
		})
	}
}

// TestDeltaCostingDirectFallback covers the cache-free configuration: a
// session with a nil fallback (estimator.NodeDuration directly) must agree
// with full evaluation just the same.
func TestDeltaCostingDirectFallback(t *testing.T) {
	p, e := newProblem(t, 2, model.LLaMA7B, model.LLaMA7B, 128, 256, 256)
	sets, _, err := candidateSets(p, PruneAggressive, false)
	if err != nil {
		t.Fatal(err)
	}
	sess := e.NewSession(nil)
	mutatePlans(t, e, sess, p, sets, 5, 4, 15)
}

// TestDeltaCostingConcurrentSharedCache runs several sessions on concurrent
// goroutines against one shared CostCache — the parallel-mcmc topology —
// each verifying the differential property on its own mutation walk. Run
// under -race this checks the session/cache concurrency contract: sessions
// are chain-local, the cache underneath is shared.
func TestDeltaCostingConcurrentSharedCache(t *testing.T) {
	p, e := newProblem(t, 1, model.LLaMA7B, model.LLaMA7B, 64, 256, 256)
	sets, _, err := candidateSets(p, PruneModerate, false)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCostCache()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			sess := e.NewSession(cache.DurationFunc(e))
			mutatePlans(t, e, sess, p, sets, seed, 3, 15)
		}(int64(g + 1))
	}
	wg.Wait()
}
