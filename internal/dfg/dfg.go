// Package dfg implements the paper's dataflow graphs (§4): RLHF workflows
// decomposed into model function calls — generation, inference, and training
// tasks on independent LLMs — with data and parameter-version dependencies.
// Builders are provided for PPO (Fig. 4), DPO, GRPO, and ReMax (Fig. 16).
package dfg

import (
	"fmt"
	"sort"
)

// CallType classifies a model function call (paper §2.1).
type CallType int

const (
	// Generate is auto-regressive sampling: a prefill pass over the prompt
	// followed by one decoding step per generated token.
	Generate CallType = iota
	// Inference is a single forward pass over prompt+response.
	Inference
	// Train is a forward, backward and parameter update, possibly repeated
	// over several PPO mini-batches.
	Train
)

func (t CallType) String() string {
	switch t {
	case Generate:
		return "generate"
	case Inference:
		return "inference"
	case Train:
		return "train"
	}
	return fmt.Sprintf("calltype(%d)", int(t))
}

// Role identifies which LLM a call runs on. Models sharing a Role share
// parameters (and hence parameter-version dependencies across calls).
type Role string

// The four RLHF models of the PPO workflow.
const (
	Actor  Role = "actor"
	Critic Role = "critic"
	Ref    Role = "ref"
	Reward Role = "reward"
)

// Workload describes the data shape a call processes. Batch is the number of
// sequences entering the call on this iteration; PromptLen and GenLen are
// token counts per sequence. For Train calls, MiniBatches is the number of
// sequential PPO mini-batch updates (each over Batch/MiniBatches sequences).
type Workload struct {
	Batch       int
	PromptLen   int
	GenLen      int
	MiniBatches int
}

// SeqLen is the full sequence length the call touches.
func (w Workload) SeqLen() int { return w.PromptLen + w.GenLen }

// TotalTokens is Batch×SeqLen.
func (w Workload) TotalTokens() int64 { return int64(w.Batch) * int64(w.SeqLen()) }

// Node is one model function call v_i^t.
type Node struct {
	ID   int
	Name string // e.g. "ActorGen"
	Role Role
	Type CallType
	Iter int // training iteration t
	Work Workload
}

// Graph is a DAG of model function calls. Edges carry either data
// dependencies (within an iteration) or parameter-version dependencies
// (training at iteration t gates uses of the same Role at t+1).
type Graph struct {
	Nodes []*Node
	// Name of the algorithm ("ppo", "dpo", ...).
	Algo string

	parents  map[int][]int
	children map[int][]int
}

// NewGraph returns an empty graph for the named algorithm.
func NewGraph(algo string) *Graph {
	return &Graph{Algo: algo, parents: map[int][]int{}, children: map[int][]int{}}
}

// AddNode appends a call and returns it.
func (g *Graph) AddNode(name string, role Role, typ CallType, iter int, w Workload) *Node {
	n := &Node{ID: len(g.Nodes), Name: name, Role: role, Type: typ, Iter: iter, Work: w}
	g.Nodes = append(g.Nodes, n)
	return n
}

// AddEdge records a dependency from parent to child.
func (g *Graph) AddEdge(parent, child *Node) {
	g.children[parent.ID] = append(g.children[parent.ID], child.ID)
	g.parents[child.ID] = append(g.parents[child.ID], parent.ID)
}

// Parents returns the dependency parents of a node.
func (g *Graph) Parents(n *Node) []*Node { return g.resolve(g.parents[n.ID]) }

// Children returns the dependents of a node.
func (g *Graph) Children(n *Node) []*Node { return g.resolve(g.children[n.ID]) }

func (g *Graph) resolve(ids []int) []*Node {
	out := make([]*Node, len(ids))
	for i, id := range ids {
		out[i] = g.Nodes[id]
	}
	return out
}

// Sources returns nodes with no parents.
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if len(g.parents[n.ID]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Roles returns the distinct model roles appearing in the graph, sorted.
func (g *Graph) Roles() []Role {
	set := map[Role]bool{}
	for _, n := range g.Nodes {
		set[n.Role] = true
	}
	out := make([]Role, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CallsOfIter returns the nodes of iteration t in ID order.
func (g *Graph) CallsOfIter(t int) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Iter == t {
			out = append(out, n)
		}
	}
	return out
}

// TopoSort returns the nodes in a dependency-respecting order, or an error
// if the graph has a cycle.
func (g *Graph) TopoSort() ([]*Node, error) {
	indeg := make([]int, len(g.Nodes))
	for id := range g.Nodes {
		indeg[id] = len(g.parents[id])
	}
	var queue []int
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	var out []*Node
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		out = append(out, g.Nodes[id])
		for _, c := range g.children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(out) != len(g.Nodes) {
		return nil, fmt.Errorf("dfg: graph %q has a cycle", g.Algo)
	}
	return out, nil
}

// Validate checks the graph is a DAG with consistent edges.
func (g *Graph) Validate() error {
	_, err := g.TopoSort()
	return err
}

// Spec carries the algorithm-level knobs used by the builders.
type Spec struct {
	// Batch is the global number of prompts per iteration.
	Batch int
	// PromptLen and GenLen are per-sequence token counts. The paper's base
	// setting uses prompt 1024, generation 1024 (context 2048).
	PromptLen int
	GenLen    int
	// MiniBatches is the PPO mini-batch count (8 in the paper's base
	// setting, after InstructGPT).
	MiniBatches int
	// Iterations is how many consecutive RLHF iterations to concatenate.
	Iterations int
	// GroupSize is GRPO's per-prompt group size (8 in the paper).
	GroupSize int
}

func (s Spec) withDefaults() Spec {
	if s.MiniBatches == 0 {
		s.MiniBatches = 8
	}
	if s.Iterations == 0 {
		s.Iterations = 1
	}
	if s.GroupSize == 0 {
		s.GroupSize = 8
	}
	return s
}

// BuildPPO constructs the PPO dataflow graph of Fig. 4: per iteration,
// ActorGen → {RewInf, RefInf, CriticInf} → {ActorTrain, CriticTrain}, with
// parameter-version edges ActorTrain(t)→ActorGen(t+1) and
// CriticTrain(t)→CriticInf(t+1).
func BuildPPO(s Spec) *Graph {
	s = s.withDefaults()
	g := NewGraph("ppo")
	var prevActorTrain, prevCriticTrain *Node
	gen := Workload{Batch: s.Batch, PromptLen: s.PromptLen, GenLen: s.GenLen}
	inf := Workload{Batch: s.Batch, PromptLen: s.PromptLen, GenLen: s.GenLen}
	train := Workload{Batch: s.Batch, PromptLen: s.PromptLen, GenLen: s.GenLen, MiniBatches: s.MiniBatches}
	for t := 0; t < s.Iterations; t++ {
		actorGen := g.AddNode("ActorGen", Actor, Generate, t, gen)
		rewInf := g.AddNode("RewInf", Reward, Inference, t, inf)
		refInf := g.AddNode("RefInf", Ref, Inference, t, inf)
		criticInf := g.AddNode("CriticInf", Critic, Inference, t, inf)
		actorTrain := g.AddNode("ActorTrain", Actor, Train, t, train)
		criticTrain := g.AddNode("CriticTrain", Critic, Train, t, train)

		for _, infNode := range []*Node{rewInf, refInf, criticInf} {
			g.AddEdge(actorGen, infNode)
			g.AddEdge(infNode, actorTrain)
			g.AddEdge(infNode, criticTrain)
		}
		if prevActorTrain != nil {
			g.AddEdge(prevActorTrain, actorGen)
		}
		if prevCriticTrain != nil {
			g.AddEdge(prevCriticTrain, criticInf)
			g.AddEdge(prevCriticTrain, criticTrain)
		}
		prevActorTrain, prevCriticTrain = actorTrain, criticTrain
	}
	return g
}

// BuildDPO constructs the DPO graph of Fig. 16: RefInf → ActorTrain over
// preference pairs (no generation, no critic). The batch counts pairs; both
// chosen and rejected sequences pass through, which the workload expresses
// by doubling the batch.
func BuildDPO(s Spec) *Graph {
	s = s.withDefaults()
	g := NewGraph("dpo")
	w := Workload{Batch: 2 * s.Batch, PromptLen: s.PromptLen, GenLen: s.GenLen}
	train := w
	train.MiniBatches = 1
	var prevTrain *Node
	for t := 0; t < s.Iterations; t++ {
		refInf := g.AddNode("RefInf", Ref, Inference, t, w)
		actorTrain := g.AddNode("ActorTrain", Actor, Train, t, train)
		g.AddEdge(refInf, actorTrain)
		if prevTrain != nil {
			g.AddEdge(prevTrain, actorTrain)
		}
		prevTrain = actorTrain
	}
	return g
}

// BuildGRPO constructs the GRPO graph of Fig. 16: ActorGen (grouped: batch
// ×GroupSize sequences) → {RewInf, RefInf} → ActorTrain. GRPO has no critic;
// advantages are group-normalized rewards.
func BuildGRPO(s Spec) *Graph {
	s = s.withDefaults()
	g := NewGraph("grpo")
	grouped := Workload{Batch: s.Batch * s.GroupSize, PromptLen: s.PromptLen, GenLen: s.GenLen}
	train := grouped
	train.MiniBatches = s.MiniBatches
	var prevTrain *Node
	for t := 0; t < s.Iterations; t++ {
		gen := g.AddNode("ActorGen", Actor, Generate, t, grouped)
		rewInf := g.AddNode("RewInf", Reward, Inference, t, grouped)
		refInf := g.AddNode("RefInf", Ref, Inference, t, grouped)
		actorTrain := g.AddNode("ActorTrain", Actor, Train, t, train)
		g.AddEdge(gen, rewInf)
		g.AddEdge(gen, refInf)
		g.AddEdge(rewInf, actorTrain)
		g.AddEdge(refInf, actorTrain)
		if prevTrain != nil {
			g.AddEdge(prevTrain, gen)
		}
		prevTrain = actorTrain
	}
	return g
}

// BuildReMax constructs the ReMax graph of Fig. 16: two independent
// generations (sampled and greedy) feed two reward inferences; the training
// call consumes both (the greedy reward is the variance-reduction baseline).
// The two generation calls have no mutual dependency — the paper notes ReaL
// wins most on ReMax by running them concurrently.
func BuildReMax(s Spec) *Graph {
	s = s.withDefaults()
	g := NewGraph("remax")
	w := Workload{Batch: s.Batch, PromptLen: s.PromptLen, GenLen: s.GenLen}
	train := w
	train.MiniBatches = 1
	var prevTrain *Node
	for t := 0; t < s.Iterations; t++ {
		sampleGen := g.AddNode("SampleGen", Actor, Generate, t, w)
		greedyGen := g.AddNode("GreedyGen", Actor, Generate, t, w)
		sampleRew := g.AddNode("SampleRew", Reward, Inference, t, w)
		greedyRew := g.AddNode("GreedyRew", Reward, Inference, t, w)
		actorTrain := g.AddNode("ActorTrain", Actor, Train, t, train)
		g.AddEdge(sampleGen, sampleRew)
		g.AddEdge(greedyGen, greedyRew)
		g.AddEdge(sampleRew, actorTrain)
		g.AddEdge(greedyRew, actorTrain)
		if prevTrain != nil {
			g.AddEdge(prevTrain, sampleGen)
			g.AddEdge(prevTrain, greedyGen)
		}
		prevTrain = actorTrain
	}
	return g
}

// Build dispatches on the algorithm name.
func Build(algo string, s Spec) (*Graph, error) {
	switch algo {
	case "ppo":
		return BuildPPO(s), nil
	case "dpo":
		return BuildDPO(s), nil
	case "grpo":
		return BuildGRPO(s), nil
	case "remax":
		return BuildReMax(s), nil
	}
	return nil, fmt.Errorf("dfg: unknown algorithm %q", algo)
}
