package dfg

import (
	"testing"
	"testing/quick"
)

func baseSpec() Spec {
	return Spec{Batch: 512, PromptLen: 1024, GenLen: 1024, MiniBatches: 8, Iterations: 1}
}

func TestPPOShape(t *testing.T) {
	g := BuildPPO(baseSpec())
	if len(g.Nodes) != 6 {
		t.Fatalf("PPO iteration has %d calls, want 6", len(g.Nodes))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("PPO graph invalid: %v", err)
	}
	byName := map[string]*Node{}
	for _, n := range g.Nodes {
		byName[n.Name] = n
	}
	gen := byName["ActorGen"]
	if len(g.Parents(gen)) != 0 {
		t.Error("ActorGen of iteration 0 must be a source")
	}
	if len(g.Children(gen)) != 3 {
		t.Errorf("ActorGen feeds %d calls, want 3 inferences", len(g.Children(gen)))
	}
	at := byName["ActorTrain"]
	if len(g.Parents(at)) != 3 {
		t.Errorf("ActorTrain has %d parents, want 3", len(g.Parents(at)))
	}
	if at.Work.MiniBatches != 8 {
		t.Errorf("ActorTrain mini-batches = %d, want 8", at.Work.MiniBatches)
	}
}

func TestPPOMultiIterationVersionEdges(t *testing.T) {
	s := baseSpec()
	s.Iterations = 3
	g := BuildPPO(s)
	if len(g.Nodes) != 18 {
		t.Fatalf("3 iterations have %d calls, want 18", len(g.Nodes))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// ActorGen at iteration 1 must depend on ActorTrain at iteration 0.
	var gen1 *Node
	for _, n := range g.CallsOfIter(1) {
		if n.Name == "ActorGen" {
			gen1 = n
		}
	}
	found := false
	for _, p := range g.Parents(gen1) {
		if p.Name == "ActorTrain" && p.Iter == 0 {
			found = true
		}
	}
	if !found {
		t.Error("missing parameter-version edge ActorTrain(0) -> ActorGen(1)")
	}
}

func TestTopoSortRespectsDependencies(t *testing.T) {
	s := baseSpec()
	s.Iterations = 4
	g := BuildPPO(s)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, n := range order {
		pos[n.ID] = i
	}
	for _, n := range g.Nodes {
		for _, p := range g.Parents(n) {
			if pos[p.ID] >= pos[n.ID] {
				t.Fatalf("topo order violates edge %s(%d) -> %s(%d)", p.Name, p.Iter, n.Name, n.Iter)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewGraph("test")
	a := g.AddNode("A", Actor, Train, 0, Workload{Batch: 1})
	b := g.AddNode("B", Actor, Train, 0, Workload{Batch: 1})
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if err := g.Validate(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestDPOShape(t *testing.T) {
	g := BuildDPO(baseSpec())
	if len(g.Nodes) != 2 {
		t.Fatalf("DPO has %d calls, want 2", len(g.Nodes))
	}
	roles := g.Roles()
	if len(roles) != 2 || roles[0] != Actor || roles[1] != Ref {
		t.Errorf("DPO roles = %v, want [actor ref]", roles)
	}
	for _, n := range g.Nodes {
		if n.Type == Generate {
			t.Error("DPO has no generation call")
		}
		if n.Work.Batch != 2*512 {
			t.Errorf("DPO processes chosen+rejected: batch %d, want 1024", n.Work.Batch)
		}
	}
}

func TestGRPOShape(t *testing.T) {
	s := baseSpec()
	s.GroupSize = 8
	g := BuildGRPO(s)
	if len(g.Nodes) != 4 {
		t.Fatalf("GRPO has %d calls, want 4", len(g.Nodes))
	}
	for _, r := range g.Roles() {
		if r == Critic {
			t.Error("GRPO must not use a critic")
		}
	}
	for _, n := range g.Nodes {
		if n.Work.Batch != 512*8 {
			t.Errorf("GRPO grouped batch = %d, want 4096", n.Work.Batch)
		}
	}
}

func TestReMaxConcurrentGenerations(t *testing.T) {
	g := BuildReMax(baseSpec())
	if len(g.Nodes) != 5 {
		t.Fatalf("ReMax has %d calls, want 5", len(g.Nodes))
	}
	var gens []*Node
	for _, n := range g.Nodes {
		if n.Type == Generate {
			gens = append(gens, n)
		}
	}
	if len(gens) != 2 {
		t.Fatalf("ReMax has %d generation calls, want 2", len(gens))
	}
	// The two generations must be mutually independent (this is what lets
	// ReaL run them concurrently, the paper's biggest Fig. 16 win).
	for _, a := range gens {
		for _, b := range g.Children(a) {
			if b.Type == Generate {
				t.Error("generation calls must not depend on each other")
			}
		}
	}
	if len(g.Sources()) != 2 {
		t.Errorf("ReMax iteration 0 has %d sources, want the 2 generations", len(g.Sources()))
	}
}

func TestBuildDispatch(t *testing.T) {
	for _, algo := range []string{"ppo", "dpo", "grpo", "remax"} {
		g, err := Build(algo, baseSpec())
		if err != nil {
			t.Errorf("Build(%q): %v", algo, err)
			continue
		}
		if g.Algo != algo {
			t.Errorf("Build(%q).Algo = %q", algo, g.Algo)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Build(%q) invalid: %v", algo, err)
		}
	}
	if _, err := Build("a2c", baseSpec()); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestWorkloadArithmetic(t *testing.T) {
	w := Workload{Batch: 512, PromptLen: 1024, GenLen: 1024}
	if w.SeqLen() != 2048 {
		t.Errorf("SeqLen = %d", w.SeqLen())
	}
	if w.TotalTokens() != 512*2048 {
		t.Errorf("TotalTokens = %d", w.TotalTokens())
	}
}

// Property: all builders produce DAGs whose per-iteration call count is
// constant, for any iteration count.
func TestBuildersScaleWithIterations(t *testing.T) {
	perIter := map[string]int{"ppo": 6, "dpo": 2, "grpo": 4, "remax": 5}
	f := func(it uint8) bool {
		iters := int(it%5) + 1
		for algo, per := range perIter {
			s := baseSpec()
			s.Iterations = iters
			g, err := Build(algo, s)
			if err != nil || len(g.Nodes) != per*iters || g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCallTypeString(t *testing.T) {
	if Generate.String() != "generate" || Inference.String() != "inference" || Train.String() != "train" {
		t.Error("CallType strings wrong")
	}
}
