package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// CtxErrAnalyzer enforces the two serve-boundary contracts:
//
//  1. Loops: inside a function that accepts a context.Context, a
//     potentially unbounded loop (`for {}` or `for cond {}` — no init, no
//     post) must observe that context: select on ctx.Done(), poll
//     ctx.Err(), or pass ctx into a callee that does. A solver or serve
//     loop that ignores its context turns every client disconnect and
//     deadline into a leaked goroutine still burning CPU on an abandoned
//     request. Bounded three-clause and range loops are exempt.
//
//  2. Errors: in the error-boundary packages (internal/serve and the
//     realhf public surface), fmt.Errorf must %w-wrap — the taxonomy the
//     plan server maps onto HTTP statuses, and remote clients re-wrap into
//     errors.Is-able sentinels (ErrInvalidConfig, ErrInfeasibleMemory,
//     ErrSolveCanceled, ErrInvalidRunOptions), only survives the boundary
//     if every error constructed there chains to a sentinel. A bare
//     fmt.Errorf is invisible to errors.Is and surfaces as HTTP 500.
var CtxErrAnalyzer = &Analyzer{
	Name: "ctxerr",
	Doc:  "long-running loops in ctx-aware functions must observe ctx; serve-boundary fmt.Errorf must %w-wrap an exported sentinel",
	Run:  runCtxErr,
}

func runCtxErr(pass *Pass) error {
	// The fmt.Errorf rule self-scopes: boundary packages from the shared
	// config, plus analysistest fixtures (which live outside the module).
	boundary := inPackageScope(ErrorBoundaryPackages, pass.Path) ||
		!strings.HasPrefix(pass.Path, ModulePath)
	loops := inPackageScope(CtxErrScopes, pass.Path) ||
		!strings.HasPrefix(pass.Path, ModulePath)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if loops && v.Body != nil {
					checkCtxLoops(pass, v.Type, v.Body)
				}
			case *ast.FuncLit:
				if loops {
					checkCtxLoops(pass, v.Type, v.Body)
				}
			case *ast.CallExpr:
				if boundary {
					checkErrorfWrap(pass, v)
				}
			}
			return true
		})
	}
	return nil
}

// checkCtxLoops flags unbounded loops in fn that never observe any of its
// context parameters.
func checkCtxLoops(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ctxParams := map[types.Object]bool{}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						ctxParams[obj] = true
					}
				}
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Init != nil || fs.Post != nil {
			return true
		}
		observed := false
		if fs.Cond != nil && mentionsObjects(info, fs.Cond, ctxParams) {
			observed = true
		}
		if !observed && mentionsObjects(info, fs.Body, ctxParams) {
			observed = true
		}
		if !observed {
			pass.Report(Diagnostic{
				Analyzer: pass.Analyzer.Name,
				Pos:      pass.Fset.Position(fs.Pos()),
				Message:  "unbounded loop in a context-aware function never observes ctx; check ctx.Err() or select on ctx.Done() each iteration",
			})
		}
		return true
	})
}

// checkErrorfWrap flags fmt.Errorf calls whose format string has no %w
// verb.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgCall(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return // dynamic format string: out of static reach
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if strings.Contains(format, "%w") {
		return
	}
	pass.Report(Diagnostic{
		Analyzer: pass.Analyzer.Name,
		Pos:      pass.Fset.Position(call.Pos()),
		Message:  fmt.Sprintf("fmt.Errorf at the serve boundary does not %%w-wrap a sentinel (format %q); wrap ErrInvalidConfig, ErrInfeasibleMemory, ErrSolveCanceled, ErrInvalidRunOptions or ErrWorkerLost so errors.Is survives the boundary", format),
	})
}
