package analysis

// The analysistest harness: fixture packages under testdata/src/<name> are
// loaded and type-checked for real (LoadFixture), one analyzer runs over
// them (RunAnalyzer), and the diagnostics are checked line-by-line against
// `// want` comments in the fixture source, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	out = append(out, k) // want `map iteration over m appends to out`
//
// Each backquoted or double-quoted string after `want` is a regexp that
// must match the message of exactly one diagnostic reported on that line;
// any diagnostic with no matching want, and any want with no matching
// diagnostic, fails the test.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// runFixture applies one analyzer to testdata/src/<fixture> and checks the
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkg, err := LoadFixture(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("loading fixture %q: %v", fixture, err)
	}
	diags, err := RunAnalyzer(pkg, a)
	if err != nil {
		t.Fatalf("running %s on %q: %v", a.Name, fixture, err)
	}
	wants := collectWants(t, pkg)

	for _, d := range diags {
		if !wants.match(d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no %s diagnostic matched want `%s`", w.pos, a.Name, w.re)
		}
	}
}

// A want is one expectation parsed from a fixture comment.
type want struct {
	pos     string // file:line the expectation anchors to
	line    int
	file    string
	re      *regexp.Regexp
	matched bool
}

type wantSet []*want

// match consumes the first unmatched want on the diagnostic's line whose
// regexp matches its message.
func (ws wantSet) match(d Diagnostic) bool {
	for _, w := range ws {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantComment = regexp.MustCompile(`^//\s*want\s+(.+)$`)

// wantPattern extracts the quoted regexps: backquoted or double-quoted Go
// string literals.
var wantPattern = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, pkg *Package) wantSet {
	t.Helper()
	var ws wantSet
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantComment.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lits := wantPattern.FindAllString(m[1], -1)
				if len(lits) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern: %s", pos, c.Text)
				}
				for _, lit := range lits {
					src, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s: want pattern does not compile: %v", pos, err)
					}
					ws = append(ws, &want{
						pos:  fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line),
						line: pos.Line,
						file: pos.Filename,
						re:   re,
					})
				}
			}
		}
	}
	return ws
}

// assertNoDiagnostics is a helper for suites expected to come back clean.
func assertNoDiagnostics(t *testing.T, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d diagnostic(s) on a tree that must be clean", len(diags))
	}
}
