package analysis

import (
	"fmt"
)

// Run loads the module rooted at root, applies every analyzer to the
// packages matching patterns under the scopes declared in config.go,
// filters //lint:realvet suppressions, and returns the surviving
// diagnostics in stable position order.
func Run(root string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := LoadModule(root, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, ds...)
	}
	sortDiagnostics(all)
	return all, nil
}

func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	suppr := buildSuppressionIndex(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		files, enabled := scopeFor(a.Name, pkg.Path)
		if !enabled {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Path:      pkg.Path,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Packages:  pkg.all,
			Report: func(d Diagnostic) {
				if !inScope(files, d.Pos.Filename) {
					return
				}
				if suppr.suppressed(d) {
					return
				}
				out = append(out, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	return out, nil
}

// RunAnalyzer applies one analyzer to one loaded package with suppression
// filtering but without config scoping — the analysistest harness and
// fixture-driven tests use it directly.
func RunAnalyzer(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	suppr := buildSuppressionIndex(pkg.Fset, pkg.Files)
	var out []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Path:      pkg.Path,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.Info,
		Packages:  pkg.all,
		Report: func(d Diagnostic) {
			if suppr.suppressed(d) {
				return
			}
			out = append(out, d)
		},
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	sortDiagnostics(out)
	return out, nil
}
