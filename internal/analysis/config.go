package analysis

import (
	"path"
	"strings"
)

// This file is the suite's shared facts/config layer: one declaration of
// which packages carry which contracts, consumed by the runner (run.go)
// and by the analyzers that need cross-cutting knowledge (fieldcover's
// extra key-struct roots, ctxerr's boundary set). DESIGN.md's
// "Machine-checked invariants" section mirrors this table.

// ModulePath is the module all scopes are relative to.
const ModulePath = "realhf"

// A PackageScope selects a package, optionally narrowed to specific files.
type PackageScope struct {
	// Path is the import path relative to the module root ("" = the root
	// package itself).
	Path string
	// Files narrows the scope to these base names; nil covers the package.
	Files []string
}

func (s PackageScope) importPath() string {
	if s.Path == "" {
		return ModulePath
	}
	return ModulePath + "/" + s.Path
}

// DeterministicScopes lists the packages whose code must be
// byte-reproducible: plans, timelines, fingerprints and cache keys are all
// derived here, so a single unsorted map iteration or wall-clock read can
// poison the shared caches (DESIGN.md "Determinism contract"). maporder
// and wallclock apply to exactly this set. In the root package only the
// canonical codec and fingerprint files are deterministic surface — the
// planner/trainer session machinery legitimately measures wall time.
var DeterministicScopes = []PackageScope{
	{Path: "internal/core"},
	{Path: "internal/search"},
	{Path: "internal/estimator"},
	{Path: "internal/realloc"},
	{Path: "internal/runtime"},
	{Path: "", Files: []string{"wire.go", "planner.go"}},
}

// CtxErrScopes is where ctxerr's loop rule applies: long-running solver
// and serve loops must observe ctx.Done()/ctx.Err() so cancellation and
// deadlines propagate (DESIGN.md "Context plumbing").
var CtxErrScopes = []PackageScope{
	{Path: "internal/search"},
	{Path: "internal/serve"},
	{Path: ""},
}

// ErrorBoundaryPackages is where ctxerr's fmt.Errorf rule applies: every
// error constructed on a path that can cross the serve boundary must
// %w-wrap one of the exported sentinels (ErrInvalidConfig,
// ErrInfeasibleMemory, ErrSolveCanceled, ErrInvalidRunOptions,
// ErrWorkerLost) so errors.Is dispatch — and the HTTP status taxonomy
// built on it — keeps working remotely.
var ErrorBoundaryPackages = []PackageScope{
	{Path: "internal/serve"},
	{Path: ""},
}

// FieldCoverScopes is where fieldcover looks for cache-key structs: the
// root package (ExperimentConfig and the wire codec), internal/core
// (Plan/Assignment fingerprints) and internal/checkpoint (the campaign
// checkpoint codec — a State field missing from its marshal would be
// silently dropped on resume).
var FieldCoverScopes = []PackageScope{
	{Path: ""},
	{Path: "internal/core"},
	{Path: "internal/checkpoint"},
}

// canonicalMethodNames are the method names that mark a struct as a
// cache-key or wire-codec type: each such method must read every exported
// field of its receiver (fieldcover), so adding a field without extending
// the key is a realvet break instead of a cache-poisoning bug.
var canonicalMethodNames = map[string]bool{
	"Fingerprint":       true,
	"fingerprint":       true,
	"AppendFingerprint": true,
	"appendFingerprint": true,
	"MarshalJSON":       true,
	"MarshalPlan":       true,
}

// A FieldCoverExtra pins a struct that does not own a canonical method but
// is still part of a cache key, because a canonical method of another
// struct reads it field by field. The analyzer computes the Via method's
// closure and requires every exported field of Type to be read inside it.
type FieldCoverExtra struct {
	// Pkg is the package (relative path, "" = root) whose Via method is
	// the key root; the check runs while analyzing this package.
	Pkg string
	// ViaType and ViaMethod name the canonical method whose closure must
	// cover the target.
	ViaType   string
	ViaMethod string
	// TypePkg/TypeName identify the covered struct (TypePkg relative,
	// "" = root; may differ from Pkg for cross-package key components).
	TypePkg  string
	TypeName string
}

// FieldCoverExtras: the RPC list is part of ExperimentConfig's problem
// key, and mesh/strategy are the value payload of Assignment's
// fingerprint — adding a field to any of them without extending the
// corresponding encoder would alias distinct problems or plans in the
// shared caches.
var FieldCoverExtras = []FieldCoverExtra{
	{Pkg: "", ViaType: "ExperimentConfig", ViaMethod: "Fingerprint",
		TypePkg: "", TypeName: "ModelFunctionCallDef"},
	{Pkg: "internal/core", ViaType: "Assignment", ViaMethod: "AppendFingerprint",
		TypePkg: "internal/parallel", TypeName: "Strategy"},
	{Pkg: "internal/core", ViaType: "Assignment", ViaMethod: "AppendFingerprint",
		TypePkg: "internal/mesh", TypeName: "Mesh"},
	// Assignment is also the value payload of the plan wire codec: every
	// exported field (including the searched Offload decision) must reach
	// the serialized form, or a saved plan would silently drop plan
	// dimensions on the round trip.
	{Pkg: "internal/core", ViaType: "Plan", ViaMethod: "MarshalJSON",
		TypePkg: "internal/core", TypeName: "Assignment"},
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrderAnalyzer,
		WallClockAnalyzer,
		FieldCoverAnalyzer,
		CtxErrAnalyzer,
	}
}

// scopeFor returns the file scope (nil = whole package, empty = none) of
// an analyzer over an import path.
func scopeFor(analyzer, importPath string) (files []string, enabled bool) {
	var scopes []PackageScope
	switch analyzer {
	case "maporder", "wallclock":
		scopes = DeterministicScopes
	case "fieldcover":
		scopes = FieldCoverScopes
	case "ctxerr":
		// The runner enables ctxerr on the union of its two sub-scopes;
		// the analyzer narrows the fmt.Errorf rule itself.
		scopes = append(append([]PackageScope{}, CtxErrScopes...), ErrorBoundaryPackages...)
	default:
		return nil, false
	}
	for _, s := range scopes {
		if s.importPath() == importPath {
			if s.Files == nil {
				return nil, true
			}
			files = append(files, s.Files...)
			enabled = true
		}
	}
	return files, enabled
}

// inScope reports whether a diagnostic's file falls inside the scope's
// file narrowing.
func inScope(files []string, filename string) bool {
	if files == nil {
		return true
	}
	base := path.Base(strings.ReplaceAll(filename, "\\", "/"))
	for _, f := range files {
		if f == base {
			return true
		}
	}
	return false
}

// inPackageScope reports whether an import path is in a scope list
// (ignoring file narrowing) — used by analyzers that self-scope sub-rules.
func inPackageScope(scopes []PackageScope, importPath string) bool {
	for _, s := range scopes {
		if s.importPath() == importPath {
			return true
		}
	}
	return false
}
