// Package fieldcover exercises the realvet fieldcover analyzer: a struct
// with a canonical-encoding method must have every exported field read in
// that method's same-package call closure; whole-value escapes to
// reflective encoders count as full coverage, and declaration-level
// suppressions exempt fields, methods or whole structs.
package fieldcover

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Leaky's fingerprint reads A but not B: two values differing only in B
// alias under the same key.
type Leaky struct {
	A int
	B int
}

// Fingerprint covers A only.
func (l Leaky) Fingerprint() string { // want `Fingerprint does not cover exported field Leaky\.B`
	return fmt.Sprintf("a=%d", l.A)
}

// Full covers both of its exported fields directly; the unexported field
// is outside the contract.
type Full struct {
	A int
	B int
	c int
}

// Fingerprint reads every exported field.
func (f Full) Fingerprint() string {
	_ = f.c
	return fmt.Sprintf("a=%d;b=%d", f.A, f.B)
}

// Pair is covered across the method's same-package call closure: the root
// reads X, a helper reads Y.
type Pair struct {
	X int
	Y int
}

// Fingerprint reads X and delegates Y to rest.
func (p Pair) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d;", p.X)
	p.rest(&b)
	return b.String()
}

func (p Pair) rest(b *strings.Builder) {
	fmt.Fprintf(b, "y=%d;", p.Y)
}

// Escaped hands its whole value to a reflective encoder, which reads every
// field.
type Escaped struct {
	A int
	B int
}

// wireEscaped drops the methods so the stock encoding applies.
type wireEscaped Escaped

// MarshalJSON encodes through the conversion: full coverage by escape.
func (e Escaped) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireEscaped(e))
}

// Keyed audits B out of the key at the field declaration.
type Keyed struct {
	A int
	//lint:realvet fieldcover -- fixture: derived from A, never independently set
	B int
}

// Fingerprint covers A; B is exempt by suppression.
func (k Keyed) Fingerprint() string {
	return fmt.Sprintf("a=%d", k.A)
}

// Exempt's whole encoding is audited out at the struct declaration.
//
//lint:realvet fieldcover -- fixture: audited exception
type Exempt struct {
	A int
	B int
}

// Fingerprint covers nothing, but the struct is exempt.
func (e Exempt) Fingerprint() string {
	return "constant"
}
