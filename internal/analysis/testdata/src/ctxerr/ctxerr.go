// Package ctxerr exercises the realvet ctxerr analyzer: unbounded loops in
// context-aware functions must observe their context, and boundary
// fmt.Errorf calls must %w-wrap; polite loops, bounded loops, wrapped
// errors and audited suppressions are not flagged.
package ctxerr

import (
	"context"
	"errors"
	"fmt"
)

// ErrBad is the fixture's sentinel.
var ErrBad = errors.New("bad input")

// Spin never observes its context: a disconnect leaks the goroutine.
func Spin(ctx context.Context, work func() bool) {
	for work() { // want `unbounded loop in a context-aware function never observes ctx`
	}
}

// Polite polls ctx.Err each iteration.
func Polite(ctx context.Context, work func() bool) error {
	for work() {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Selective selects on ctx.Done.
func Selective(ctx context.Context, ch <-chan int) int {
	for {
		select {
		case <-ctx.Done():
			return 0
		case v := <-ch:
			if v > 0 {
				return v
			}
		}
	}
}

// Bounded three-clause loops terminate on their own and are exempt.
func Bounded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// NoCtx has no context parameter, so its loops are out of scope.
func NoCtx(work func() bool) {
	for work() {
	}
}

// AuditedSpin carries an explicit suppression and stays silent.
func AuditedSpin(ctx context.Context, work func() bool) {
	//lint:realvet ctxerr -- fixture: audited exception
	for work() {
	}
}

// Bare constructs an error invisible to errors.Is across the boundary.
func Bare(name string) error {
	return fmt.Errorf("unknown call %q", name) // want `does not %w-wrap a sentinel`
}

// Wrapped chains to a sentinel, so errors.Is survives the boundary.
func Wrapped(name string) error {
	return fmt.Errorf("unknown call %q: %w", name, ErrBad)
}

// AuditedBare carries an explicit suppression and stays silent.
func AuditedBare() error {
	//lint:realvet ctxerr -- fixture: audited exception
	return fmt.Errorf("audited")
}
