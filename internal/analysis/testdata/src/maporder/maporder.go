// Package maporder exercises the realvet maporder analyzer: map ranges
// feeding order-sensitive sinks (outer slices, builders, hashers, float
// accumulators) are flagged; collect-then-sort, per-key slots, integer
// accumulation, map-to-map copies and audited suppressions are not.
package maporder

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
)

// Keys leaks iteration order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration over m appends to out`
	}
	return out
}

// SortedKeys is the canonical collect-then-sort idiom: the collected order
// is re-canonicalized before use, so nothing is flagged.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Render streams map entries into an outer builder in iteration order.
func Render(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		b.WriteString(k)           // want `map iteration over m writes to b`
		fmt.Fprintf(&b, "=%d;", v) // want `map iteration over m streams into b`
	}
	return b.String()
}

// Digest hashes entries in iteration order.
func Digest(m map[string]int) []byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want `map iteration over m writes to h`
	}
	return h.Sum(nil)
}

// Total accumulates floating point in iteration order: addition is not
// associative, so the sum's low bits depend on the order.
func Total(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `map iteration over m accumulates floating-point into total`
	}
	return total
}

// Count is integer accumulation: associative, order-insensitive.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// GroupBy appends into per-key slots: each key owns its element, so
// iteration order cannot reorder any one slot.
func GroupBy(pairs map[string][]string) map[string][]string {
	out := map[string][]string{}
	for k, vs := range pairs {
		for _, v := range vs {
			out[k] = append(out[k], v)
		}
	}
	return out
}

// Mirror is a map-to-map copy: order-insensitive.
func Mirror(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Audited carries an explicit suppression and stays silent.
func Audited(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:realvet maporder -- fixture: audited exception
		out = append(out, k)
	}
	return out
}
