// Package wallclock exercises the realvet wallclock analyzer: wall-clock
// reads and the global math/rand source are flagged; explicitly seeded
// generators, methods on them, and audited suppressions are not.
package wallclock

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock twice.
func Elapsed() time.Duration {
	start := time.Now()      // want `wall-clock read time.Now`
	return time.Since(start) // want `wall-clock read time.Since`
}

// Draw samples the shared global source, whose sequence depends on
// unrelated goroutines and process history.
func Draw() int {
	return rand.Intn(10) // want `global math/rand call rand.Intn`
}

// Seeded builds and uses an explicitly seeded generator: replayable, so
// constructors and *rand.Rand methods are allowed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Audited carries an explicit suppression and stays silent.
func Audited() time.Time {
	//lint:realvet wallclock -- fixture: audited exception
	return time.Now()
}
