package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrderAnalyzer flags `for range` over a map whose body feeds an
// order-sensitive sink, in the deterministic packages. Go randomizes map
// iteration order per run, so any byte-stream, slice or floating-point
// accumulation built inside such a loop differs between two identical
// solves — which is exactly how an unsorted range poisons the fingerprint
// and cost caches the planner shares across tenants.
//
// Sinks:
//   - append to a slice declared outside the loop — unless the slice is
//     passed to sort.* / slices.Sort* after the loop in the same function
//     (the canonical collect-then-sort idiom);
//   - writes into a strings.Builder, bytes.Buffer or hash.Hash declared
//     outside the loop (method calls, fmt.Fprint*, or passing the sink to
//     any function) — no post-hoc sort can reorder an emitted stream;
//   - floating-point accumulation (+= -= *= /=) into a variable declared
//     outside the loop: float arithmetic is not associative, so the sum's
//     low bits depend on iteration order.
//
// Map-to-map copies, integer accumulation and per-key independent writes
// are order-insensitive and not flagged. The suggested fix rewrites the
// loop to iterate sorted keys.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration feeding order-sensitive sinks (slices, hashers, builders, float accumulators) in deterministic packages",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, f, rs)
			return true
		})
	}
	return nil
}

func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	reported := map[string]bool{}
	report := func(pos token.Pos, sink, kind string, fixable bool) {
		msg := fmt.Sprintf("map iteration over %s %s %s; iterate sorted keys so the result is byte-reproducible",
			exprString(pass.Fset, rs.X), kind, sink)
		if reported[msg] {
			return
		}
		reported[msg] = true
		d := Diagnostic{
			Analyzer: pass.Analyzer.Name,
			Pos:      pass.Fset.Position(pos),
			Message:  msg,
		}
		if fixable {
			if fix, ok := sortedKeysFix(pass, rs); ok {
				d.Fixes = append(d.Fixes, fix)
			}
		}
		pass.Report(d)
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			checkCallSink(pass, file, rs, v, report)
		case *ast.AssignStmt:
			checkFloatAccum(info, rs, v, report)
		}
		return true
	})
}

func checkCallSink(pass *Pass, file *ast.File, rs *ast.RangeStmt, call *ast.CallExpr, report func(token.Pos, string, string, bool)) {
	info := pass.TypesInfo

	// Builtin append whose destination slice outlives the loop. A
	// destination indexed by the loop variables (out[k] = append(out[k],
	// v)) is a per-key slot: each key owns its element, so iteration
	// order cannot reorder any one slot's contents.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(call.Args) > 0 {
			dst := baseObject(info, call.Args[0])
			if dst != nil && !declaredWithin(dst, rs) &&
				!indexedByLoopVar(info, rs, call.Args[0]) &&
				!sortedAfter(pass, file, rs, dst) {
				report(call.Pos(), dst.Name(), "appends to", true)
			}
			return
		}
	}

	// Method call on an order-sensitive writer (builder/buffer/hasher).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal && isOrderSensitiveWriter(s.Recv()) {
			recv := baseObject(info, sel.X)
			if recv != nil && !declaredWithin(recv, rs) {
				report(call.Pos(), recv.Name(), "writes to", false)
			}
			return
		}
	}

	// Any call handed an outer-scope builder/buffer/hasher (fmt.Fprintf,
	// helper(&b, ...)): the callee emits into an ordered stream.
	for _, arg := range call.Args {
		t := info.TypeOf(arg)
		if t == nil || !isOrderSensitiveWriter(t) {
			continue
		}
		obj := baseObject(info, arg)
		if obj != nil && !declaredWithin(obj, rs) {
			report(call.Pos(), obj.Name(), "streams into", false)
		}
	}
}

func checkFloatAccum(info *types.Info, rs *ast.RangeStmt, as *ast.AssignStmt, report func(token.Pos, string, string, bool)) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != 1 {
		return
	}
	t := info.TypeOf(as.Lhs[0])
	if t == nil {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
		return
	}
	obj := baseObject(info, as.Lhs[0])
	if obj != nil && !declaredWithin(obj, rs) && !indexedByLoopVar(info, rs, as.Lhs[0]) {
		report(as.Pos(), obj.Name(), "accumulates floating-point into", true)
	}
}

// indexedByLoopVar reports whether e is an index expression whose index
// involves the range statement's key or value variable — a per-key slot
// write, which map iteration order cannot perturb.
func indexedByLoopVar(info *types.Info, rs *ast.RangeStmt, e ast.Expr) bool {
	loopVars := map[types.Object]bool{}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	if len(loopVars) == 0 {
		return false
	}
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	return mentionsObjects(info, ix.Index, loopVars)
}

// isOrderSensitiveWriter reports whether t is a byte-stream sink whose
// content depends on write order: strings.Builder, bytes.Buffer, or any
// hash.Hash implementation (structurally: Write plus Sum([]byte) []byte).
func isOrderSensitiveWriter(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	pkg, name := n.Obj().Pkg().Path(), n.Obj().Name()
	if (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer") {
		return true
	}
	return hasMethod(t, "Write") && hasMethod(t, "Sum")
}

func hasMethod(t types.Type, name string) bool {
	// A pointer to an interface has an empty method set; only concrete
	// types need the pointerization to see pointer-receiver methods.
	if _, isIface := t.Underlying().(*types.Interface); !isIface {
		if _, ok := t.(*types.Pointer); !ok {
			t = types.NewPointer(t)
		}
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

// sortedAfter reports whether dst is passed to a sort call after the range
// loop, inside the same enclosing function — the collect-then-sort idiom
// that makes the collected order canonical again.
func sortedAfter(pass *Pass, file *ast.File, rs *ast.RangeStmt, dst types.Object) bool {
	body := enclosingFuncBody(file, rs.Pos())
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if !isSortCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			argObjs := map[types.Object]bool{dst: true}
			if mentionsObjects(pass.TypesInfo, arg, argObjs) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := pkgFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true // sort.Strings/Ints/Float64s/Slice/SliceStable/Sort/Stable...
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// sortedKeysFix builds the suggested rewrite of
//
//	for k, v := range m { ... }
//
// into
//
//	ks := make([]K, 0, len(m))
//	for k := range m {
//		ks = append(ks, k)
//	}
//	sort.Strings(ks)            // or sort.Ints / sort.Slice
//	for _, k := range ks {
//		v := m[k]
//		...
//
// It only fires for the simple forms the repo uses (identifier key over an
// addressable map expression); anything fancier gets the diagnostic
// without an edit.
func sortedKeysFix(pass *Pass, rs *ast.RangeStmt) (SuggestedFix, bool) {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Tok != token.DEFINE {
		return SuggestedFix{}, false
	}
	mt, ok := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map)
	if !ok {
		return SuggestedFix{}, false
	}
	keyType := mt.Key()
	var keyTypeStr, sortCall string
	ks := key.Name + "s"
	if b, ok := keyType.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 && types.Identical(keyType, types.Typ[types.String]) {
		keyTypeStr, sortCall = "string", fmt.Sprintf("sort.Strings(%s)", ks)
	} else if ok && b.Kind() == types.Int {
		keyTypeStr, sortCall = "int", fmt.Sprintf("sort.Ints(%s)", ks)
	} else {
		keyTypeStr = types.TypeString(keyType, types.RelativeTo(pass.Pkg))
		sortCall = fmt.Sprintf("sort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })", ks, ks, ks)
	}

	m := exprString(pass.Fset, rs.X)
	indent := strings.Repeat("\t", pass.Fset.Position(rs.Pos()).Column-1)
	var b strings.Builder
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", ks, keyTypeStr, m)
	fmt.Fprintf(&b, "%sfor %s := range %s {\n", indent, key.Name, m)
	fmt.Fprintf(&b, "%s\t%s = append(%s, %s)\n", indent, ks, ks, key.Name)
	fmt.Fprintf(&b, "%s}\n", indent)
	fmt.Fprintf(&b, "%s%s\n", indent, sortCall)
	fmt.Fprintf(&b, "%sfor _, %s := range %s {\n", indent, key.Name, ks)
	if val, ok := rs.Value.(*ast.Ident); ok && val.Name != "_" {
		fmt.Fprintf(&b, "%s\t%s := %s[%s]\n", indent, val.Name, m, key.Name)
	}

	return SuggestedFix{
		Message: "iterate the map's keys in sorted order (add \"sort\" to imports if missing)",
		TextEdits: []TextEdit{{
			Start:   pass.Fset.Position(rs.Pos()),
			End:     pass.Fset.Position(rs.Body.Lbrace + 1),
			NewText: strings.TrimSuffix(b.String(), "\n"),
		}},
	}, true
}
