// Package analysis is realvet: a stdlib-only static-analysis suite that
// machine-checks the contracts DESIGN.md otherwise enforces by review —
// byte-reproducible plans and timelines, fingerprint/wire field coverage on
// every struct that keys a shared cache, wall-clock- and global-rand-free
// solver paths, and context/sentinel discipline at the serve boundary.
//
// The package deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, SuggestedFix) so the analyzers could be
// ported to a real vettool unchanged, but it depends only on the standard
// library: the module is dependency-free and CI must be able to build the
// checker from the repo itself with no network. Packages are loaded and
// type-checked by the loader in load.go; cmd/realvet is the multichecker
// front end and run.go applies the per-analyzer scopes declared in
// config.go.
//
// Audited exceptions are suppressed in source with a comment of the form
//
//	//lint:realvet [analyzer...] [-- rationale]
//
// placed on the flagged line or the line directly above it. A suppression
// without analyzer names silences every analyzer on that line; naming one
// or more analyzers silences only those. The rationale after "--" is for
// the reviewer: a suppression is an audited, explained exception, not an
// opt-out.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one realvet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression comments.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run applies the analyzer to one type-checked package.
	Run func(*Pass) error
}

// A Pass is one analyzer applied to one package. Unlike x/tools passes it
// also exposes the whole loaded module (Packages), which stands in for the
// facts layer: fieldcover follows canonical-method closures into field
// declarations of sibling packages (e.g. mesh.Mesh fields read by
// core.Assignment's fingerprint).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Path      string // import path of the package under analysis
	Pkg       *types.Package
	TypesInfo *types.Info
	// Packages maps import path -> loaded package for the whole run.
	Packages map[string]*Package
	// Report delivers a diagnostic. The runner filters suppressions.
	Report func(Diagnostic)
}

// A TextEdit replaces the source in [Start, End) with NewText. Positions
// are fully resolved (filename/offset), so consumers need no FileSet.
type TextEdit struct {
	Start   token.Position
	End     token.Position
	NewText string
}

// A SuggestedFix is an edit set that would resolve the diagnostic, in the
// spirit of x/tools' suggested fixes: cmd/realvet prints it under the
// diagnostic (and applies it under -fix) so CI logs are actionable.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A Diagnostic is one reported contract violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fixes    []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (realvet %s)", d.Pos, d.Message, d.Analyzer)
}

// suppression is one parsed //lint:realvet comment.
type suppression struct {
	analyzers []string // empty = all analyzers
}

func (s suppression) matches(analyzer string) bool {
	if len(s.analyzers) == 0 {
		return true
	}
	for _, a := range s.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

const suppressionMarker = "lint:realvet"

// parseSuppression decodes a comment's text if it is a realvet suppression.
// Forms: "//lint:realvet", "//lint:realvet wallclock maporder",
// "//lint:realvet wallclock -- time-limited mode is wall-clock by design".
func parseSuppression(text string) (suppression, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, suppressionMarker) {
		return suppression{}, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, suppressionMarker))
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	var s suppression
	if rest != "" {
		s.analyzers = strings.Fields(rest)
	}
	return s, true
}

// suppressionIndex maps, per file, source lines to the suppressions that
// cover them: a suppression covers its own line and the line below it (so
// a comment directly above the flagged statement, or trailing it, works).
type suppressionIndex map[string]map[int][]suppression

func buildSuppressionIndex(fset *token.FileSet, files []*ast.File) suppressionIndex {
	idx := suppressionIndex{}
	add := func(file string, line int, s suppression) {
		m := idx[file]
		if m == nil {
			m = map[int][]suppression{}
			idx[file] = m
		}
		m[line] = append(m[line], s)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s, ok := parseSuppression(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				end := fset.Position(c.End())
				add(pos.Filename, pos.Line, s)
				add(pos.Filename, end.Line+1, s)
			}
		}
	}
	return idx
}

func (idx suppressionIndex) suppressed(d Diagnostic) bool {
	for _, s := range idx[d.Pos.Filename][d.Pos.Line] {
		if s.matches(d.Analyzer) {
			return true
		}
	}
	return false
}

// hasSuppression reports whether the comment group carries a suppression
// matching the analyzer — used for declaration-level exemptions (e.g. a
// struct field excluded from fieldcover), where the diagnostic does not
// anchor at the comment's line.
func hasSuppression(cg *ast.CommentGroup, analyzer string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if s, ok := parseSuppression(c.Text); ok && s.matches(analyzer) {
			return true
		}
	}
	return false
}

// sortDiagnostics orders diagnostics by position, then analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
