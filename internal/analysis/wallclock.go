package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// WallClockAnalyzer forbids wall-clock reads (time.Now, time.Since) and
// the global math/rand source in the deterministic packages. The solvers
// are seeded — every random draw must come through a *rand.Rand the chain
// owns (rand.New(rand.NewSource(seed))) so a fixed seed replays the plan
// bit for bit, and time must come through the virtual clocks and
// Options.TimeLimit plumbing the runtime and search already use. The
// explicitly nondeterministic wall-time features (the TimeLimit budget and
// ProgressPoint.Elapsed) carry audited //lint:realvet suppressions.
var WallClockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/time.Since and global math/rand in deterministic packages; solvers must use seeded RNGs and virtual clocks",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are seeded and fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					pass.Report(Diagnostic{
						Analyzer: pass.Analyzer.Name,
						Pos:      pass.Fset.Position(sel.Pos()),
						Message: fmt.Sprintf("wall-clock read time.%s in a deterministic package; thread a start time / virtual clock through instead",
							fn.Name()),
					})
				}
			case "math/rand", "math/rand/v2":
				// Constructors build explicitly seeded sources; everything
				// else draws from the shared global source, whose sequence
				// depends on unrelated goroutines and process history.
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Report(Diagnostic{
						Analyzer: pass.Analyzer.Name,
						Pos:      pass.Fset.Position(sel.Pos()),
						Message: fmt.Sprintf("global math/rand call rand.%s in a deterministic package; use the chain's seeded *rand.Rand",
							fn.Name()),
					})
				}
			}
			return true
		})
	}
	return nil
}
