package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// exprString renders an expression as source text (for messages).
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// baseObject resolves the root object of an expression: the x in x,
// x.F.G, x[i], *x or &x. It returns nil for anything not rooted in a
// plain identifier (calls, literals).
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return info.Uses[v]
		case *ast.SelectorExpr:
			// Only follow field chains; a package-qualified or method
			// selection has no storage root in this function.
			if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
				e = v.X
				continue
			}
			return nil
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil
			}
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object's declaration lies inside the
// node's source range.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// pkgFunc resolves a call to a package-level function (no receiver) and
// returns it, or nil.
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// isPkgCall reports whether a call targets pkgPath.name (a package-level
// function).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := pkgFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Alias:
			t = types.Unalias(v)
		case *types.Named:
			return v
		default:
			return nil
		}
	}
}

// structOf returns the struct underlying a (possibly pointer-to) named
// type, or nil.
func structOf(t types.Type) *types.Struct {
	n := namedOf(t)
	if n == nil {
		if s, ok := t.Underlying().(*types.Struct); ok {
			return s
		}
		return nil
	}
	s, _ := n.Underlying().(*types.Struct)
	return s
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// mentionsObjects reports whether the subtree references any of the given
// objects.
func mentionsObjects(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// enclosingFuncBody returns the innermost function body (FuncDecl or
// FuncLit) containing pos in the file.
func enclosingFuncBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				body = v.Body
			}
		case *ast.FuncLit:
			body = v.Body
		}
		return true
	})
	return body
}
