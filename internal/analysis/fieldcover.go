package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// FieldCoverAnalyzer enforces structural exhaustiveness on cache-key
// structs: any struct with a canonical-encoding method (Fingerprint,
// AppendFingerprint, MarshalJSON, MarshalPlan and their unexported twins)
// must have every exported field read somewhere in that method's
// same-package call closure. The fingerprint IS the identity of a plan or
// config in the shared plan/cost caches — a field the fingerprint does not
// cover is a field on which two distinct requests alias, which is a
// cross-tenant cache-poisoning bug. With this check, adding a field
// without extending the key is a realvet break at CI time instead.
//
// Passing (or converting) the whole struct value to a function outside the
// closure — e.g. json.Marshal(wire(c)) — counts as reading every field:
// reflective encoders do.
//
// Config-declared extras (FieldCoverExtras) pin structs that are key
// *components* without owning a canonical method themselves (the RPC defs
// inside ExperimentConfig's problem key; mesh and strategy inside
// Assignment's fingerprint), including across packages.
//
// Exemptions: a `//lint:realvet fieldcover` comment on a field declaration
// exempts that field everywhere; on a method declaration's doc it skips
// that method's check; on the struct type it skips the struct.
var FieldCoverAnalyzer = &Analyzer{
	Name: "fieldcover",
	Doc:  "every exported field of a cache-key struct must be covered by its Fingerprint/wire-codec methods",
	Run:  func(pass *Pass) error { return fieldCover(pass, FieldCoverExtras) },
}

func fieldCover(pass *Pass, extras []FieldCoverExtra) error {
	decls := packageFuncDecls(pass)

	// Primary mode: structs in this package owning canonical methods.
	for fn, decl := range decls {
		if decl.Recv == nil || !canonicalMethodNames[fn.Name()] {
			continue
		}
		if hasSuppression(decl.Doc, pass.Analyzer.Name) {
			continue
		}
		recv := fn.Type().(*types.Signature).Recv()
		named := namedOf(recv.Type())
		if named == nil || named.Obj().Pkg() != pass.Pkg {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		if structDeclSuppressed(pass, named) {
			continue
		}
		closure := methodClosure(pass, decls, fn)
		checkCoverage(pass, decls, closure, named, fn, decl)
	}

	// Extras: key-component structs covered through another struct's
	// canonical method.
	for _, ex := range extras {
		if ex.importPkg() != pass.Path {
			continue
		}
		via := lookupMethod(pass, ex.ViaType, ex.ViaMethod)
		if via == nil {
			pass.Report(Diagnostic{
				Analyzer: pass.Analyzer.Name,
				Pos:      pass.Fset.Position(pass.Files[0].Pos()),
				Message: fmt.Sprintf("fieldcover config names %s.%s as a key root, but it does not exist",
					ex.ViaType, ex.ViaMethod),
			})
			continue
		}
		target := lookupNamedStruct(pass, ex.typeImportPkg(), ex.TypeName)
		if target == nil {
			pass.Report(Diagnostic{
				Analyzer: pass.Analyzer.Name,
				Pos:      pass.Fset.Position(pass.Files[0].Pos()),
				Message: fmt.Sprintf("fieldcover config names struct %s/%s, but it does not exist",
					ex.typeImportPkg(), ex.TypeName),
			})
			continue
		}
		decl := decls[via]
		closure := methodClosure(pass, decls, via)
		checkCoverage(pass, decls, closure, target, via, decl)
	}
	return nil
}

func (ex FieldCoverExtra) importPkg() string {
	return PackageScope{Path: ex.Pkg}.importPath()
}

func (ex FieldCoverExtra) typeImportPkg() string {
	return PackageScope{Path: ex.TypePkg}.importPath()
}

// packageFuncDecls maps the package's function objects to their
// declarations.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// methodClosure is the set of same-package functions reachable from root
// through direct calls.
func methodClosure(pass *Pass, decls map[*types.Func]*ast.FuncDecl, root *types.Func) map[*types.Func]bool {
	closure := map[*types.Func]bool{root: true}
	work := []*types.Func{root}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		decl := decls[fn]
		if decl == nil || decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(pass.TypesInfo, call); callee != nil {
				if _, local := decls[callee]; local && !closure[callee] {
					closure[callee] = true
					work = append(work, callee)
				}
			}
			return true
		})
	}
	return closure
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkCoverage verifies that every exported, non-exempt field of target
// is either selector-read inside the closure or covered by a whole-value
// escape, and reports the missing ones anchored at the root method.
func checkCoverage(pass *Pass, decls map[*types.Func]*ast.FuncDecl, closure map[*types.Func]bool, target *types.Named, root *types.Func, rootDecl *ast.FuncDecl) {
	st, ok := target.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fieldObjs := map[types.Object]bool{}
	for i := 0; i < st.NumFields(); i++ {
		fieldObjs[st.Field(i)] = true
	}

	covered := map[string]bool{}
	escaped := false
	for fn := range closure {
		decl := decls[fn]
		if decl == nil || decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[v]; ok && sel.Kind() == types.FieldVal {
					if fieldObjs[sel.Obj()] {
						covered[sel.Obj().Name()] = true
					}
				}
			case *ast.CallExpr:
				if wholeValueEscape(pass, decls, closure, v, target) {
					escaped = true
				}
			}
			return true
		})
	}
	if escaped {
		return // handed whole to an external (reflective) consumer
	}

	pos := rootDecl.Name.Pos()
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() || field.Embedded() || covered[field.Name()] {
			continue
		}
		if fieldDeclSuppressed(pass, field) {
			continue
		}
		pass.Report(Diagnostic{
			Analyzer: pass.Analyzer.Name,
			Pos:      pass.Fset.Position(pos),
			Message: fmt.Sprintf("%s.%s does not cover exported field %s.%s: the encoding is not exhaustive, so configs differing only in %s alias in fingerprint-keyed caches; extend the encoding or exempt the field with //lint:realvet fieldcover",
				root.Type().(*types.Signature).Recv().Type().String(), root.Name(),
				target.Obj().Name(), field.Name(), field.Name()),
		})
	}
}

// wholeValueEscape reports whether the call consumes a whole value of the
// target type via an external callee — an argument (or conversion operand)
// typed as the target, handed to a function outside the closure.
func wholeValueEscape(pass *Pass, decls map[*types.Func]*ast.FuncDecl, closure map[*types.Func]bool, call *ast.CallExpr, target *types.Named) bool {
	// Builtins move values around without reading their fields.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return false
		}
	}
	// A call to a closure member is analyzed body-by-body, not treated as
	// an escape; a conversion (Fun is a type) or external callee is.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; !ok || !tv.IsType() {
		callee := calleeFunc(pass.TypesInfo, call)
		if callee != nil && closure[callee] {
			return false
		}
		if callee != nil {
			if _, local := decls[callee]; local {
				// Same-package callee outside the closure can only be
				// reached through a function we didn't traverse — treat
				// conservatively as an escape all the same.
				return argHasTargetType(pass, call, target)
			}
		}
	}
	return argHasTargetType(pass, call, target)
}

func argHasTargetType(pass *Pass, call *ast.CallExpr, target *types.Named) bool {
	for _, arg := range call.Args {
		if namedOf(pass.TypesInfo.TypeOf(arg)) == target {
			return true
		}
	}
	return false
}

// lookupMethod finds a method by receiver type name and method name in the
// package under analysis.
func lookupMethod(pass *Pass, typeName, methodName string) *types.Func {
	obj := pass.Pkg.Scope().Lookup(typeName)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == methodName {
			return m
		}
	}
	return nil
}

// lookupNamedStruct resolves a struct type in any loaded package.
func lookupNamedStruct(pass *Pass, pkgPath, typeName string) *types.Named {
	p := pass.Packages[pkgPath]
	if p == nil {
		return nil
	}
	tn, ok := p.Pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// structDeclSuppressed checks the struct's type declaration for a
// fieldcover suppression.
func structDeclSuppressed(pass *Pass, named *types.Named) bool {
	spec, _, doc := findTypeSpec(pass, named)
	if spec == nil {
		return false
	}
	return hasSuppression(spec.Doc, pass.Analyzer.Name) || hasSuppression(doc, pass.Analyzer.Name)
}

// fieldDeclSuppressed checks the field's declaration (possibly in another
// loaded package) for a fieldcover suppression in its doc or line comment.
func fieldDeclSuppressed(pass *Pass, field *types.Var) bool {
	if field.Pkg() == nil {
		return false
	}
	p := pass.Packages[field.Pkg().Path()]
	if p == nil {
		return false
	}
	for _, f := range p.Files {
		if f.Pos() <= field.Pos() && field.Pos() < f.End() {
			suppressed := false
			ast.Inspect(f, func(n ast.Node) bool {
				fl, ok := n.(*ast.Field)
				if !ok || fl.Pos() > field.Pos() || field.Pos() >= fl.End() {
					return !ok
				}
				if hasSuppression(fl.Doc, pass.Analyzer.Name) || hasSuppression(fl.Comment, pass.Analyzer.Name) {
					suppressed = true
				}
				return false
			})
			return suppressed
		}
	}
	return false
}

// findTypeSpec locates the AST TypeSpec for a named type in the pass's
// package, returning the spec, its file, and the enclosing GenDecl doc.
func findTypeSpec(pass *Pass, named *types.Named) (*ast.TypeSpec, *ast.File, *ast.CommentGroup) {
	pos := named.Obj().Pos()
	for _, f := range pass.Files {
		if f.Pos() > pos || pos >= f.End() {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Pos() == pos {
					return ts, f, gd.Doc
				}
			}
		}
	}
	return nil, nil, nil
}
