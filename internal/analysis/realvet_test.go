package analysis

import (
	"testing"
)

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, MapOrderAnalyzer, "maporder")
}

func TestWallClockFixture(t *testing.T) {
	runFixture(t, WallClockAnalyzer, "wallclock")
}

func TestCtxErrFixture(t *testing.T) {
	runFixture(t, CtxErrAnalyzer, "ctxerr")
}

func TestFieldCoverFixture(t *testing.T) {
	runFixture(t, FieldCoverAnalyzer, "fieldcover")
}

// TestRepoIsClean is the meta-test behind the CI gate: the full configured
// suite, run over the repository itself, must report nothing. A failure
// here reproduces exactly what `go run ./cmd/realvet ./...` would print.
func TestRepoIsClean(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	diags, err := Run(root, Analyzers(), "./...")
	if err != nil {
		t.Fatalf("running realvet on the repo: %v", err)
	}
	assertNoDiagnostics(t, diags)
}

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		matchAll bool
		matches  []string
		misses   []string
	}{
		{"// regular comment", false, false, nil, nil},
		{"//lint:realvet", true, true, []string{"maporder", "wallclock"}, nil},
		{"//lint:realvet wallclock", true, false, []string{"wallclock"}, []string{"maporder"}},
		{"//lint:realvet wallclock maporder", true, false, []string{"wallclock", "maporder"}, []string{"ctxerr"}},
		{"//lint:realvet wallclock -- budget is wall-clock by design", true, false, []string{"wallclock"}, []string{"maporder"}},
		{"//lint:realvet -- everything here is audited", true, true, []string{"ctxerr"}, nil},
	}
	for _, c := range cases {
		s, ok := parseSuppression(c.text)
		if ok != c.ok {
			t.Errorf("parseSuppression(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if got := len(s.analyzers) == 0; got != c.matchAll {
			t.Errorf("parseSuppression(%q) matches-all = %v, want %v", c.text, got, c.matchAll)
		}
		for _, a := range c.matches {
			if !s.matches(a) {
				t.Errorf("parseSuppression(%q) does not match %q", c.text, a)
			}
		}
		for _, a := range c.misses {
			if s.matches(a) {
				t.Errorf("parseSuppression(%q) unexpectedly matches %q", c.text, a)
			}
		}
	}
}

func TestAnalyzersStable(t *testing.T) {
	want := []string{"maporder", "wallclock", "fieldcover", "ctxerr"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	seen := map[string]bool{}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Doc or Run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
