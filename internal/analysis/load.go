package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked module package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// all is the full loaded package set of the run (import path -> pkg),
	// for cross-package lookups such as fieldcover's field-declaration
	// exemptions. The runner forwards it into every Pass.
	all map[string]*Package
}

// The loader is self-contained: it discovers the module's packages by
// walking the tree from go.mod, parses non-test files, topologically sorts
// intra-module imports and type-checks each package, delegating stdlib
// imports to go/importer's source importer (which needs no prebuilt export
// data, no GOPATH and no network — realvet must run in a bare CI container
// straight from the checkout).
//
// The fileset and the stdlib importer are process-global: source-importing
// the heavy stdlib packages costs ~2s once, and analysistest fixtures and
// the repo meta-test share the same warmed importer within one test binary.
var (
	loaderOnce sync.Once
	loaderFset *token.FileSet
	stdImp     types.Importer
)

func sharedImporter() (*token.FileSet, types.Importer) {
	loaderOnce.Do(func() {
		loaderFset = token.NewFileSet()
		stdImp = importer.ForCompiler(loaderFset, "source", nil)
	})
	return loaderFset, stdImp
}

// modImporter resolves module-internal imports from the loaded set and
// everything else through the stdlib source importer.
type modImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// ModuleRoot walks up from dir to the nearest go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// LoadModule loads and type-checks the module rooted at root. Patterns
// follow the go tool's shape loosely: "./..." (or no patterns) loads every
// package; "./x/y" or an import path loads that one package (plus whatever
// intra-module dependencies it needs, which are loaded but not returned).
// Test files and testdata/ trees are excluded: realvet checks shipping
// code.
func LoadModule(root string, patterns ...string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	pathOf := func(dir string) string {
		rel, _ := filepath.Rel(root, dir)
		if rel == "." {
			return modPath
		}
		return modPath + "/" + filepath.ToSlash(rel)
	}

	fset, std := sharedImporter()
	parsed := map[string]*parsedPkg{} // import path -> files
	for _, dir := range dirs {
		pp, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if pp == nil {
			continue
		}
		parsed[pathOf(dir)] = pp
	}

	order, err := topoOrder(modPath, parsed)
	if err != nil {
		return nil, err
	}

	imp := &modImporter{std: std, local: map[string]*types.Package{}}
	pkgs := map[string]*Package{}
	for _, path := range order {
		pp := parsed[path]
		p, err := typeCheck(fset, path, pp, imp)
		if err != nil {
			return nil, err
		}
		imp.local[path] = p.Pkg
		pkgs[path] = p
	}
	for _, p := range pkgs {
		p.Fset = fset
	}

	selected, err := selectPackages(root, modPath, pkgs, patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range selected {
		p.all = pkgs
	}
	return selected, nil
}

func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

type parsedPkg struct {
	dir   string
	name  string
	files []*ast.File
	names []string // file base names, parallel to files
}

// parseDir parses the non-test Go files of one directory (nil if none).
func parseDir(fset *token.FileSet, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pp := &parsedPkg{dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pp.files = append(pp.files, f)
		pp.names = append(pp.names, name)
		pp.name = f.Name.Name
	}
	if len(pp.files) == 0 {
		return nil, nil
	}
	return pp, nil
}

func imports(pp *parsedPkg) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range pp.files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoOrder sorts the parsed packages so every intra-module import is
// type-checked before its importers.
func topoOrder(modPath string, parsed map[string]*parsedPkg) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, dep := range imports(parsed[path]) {
			if _, ok := parsed[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(parsed))
	for path := range parsed {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

func typeCheck(fset *token.FileSet, path string, pp *parsedPkg, imp types.Importer) (*Package, error) {
	info := newInfo()
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, pp.files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: pp.dir, Files: pp.files, Pkg: tpkg, Info: info}, nil
}

func selectPackages(root, modPath string, pkgs map[string]*Package, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := map[string]*Package{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "..." || pat == modPath+"/...":
			for path, p := range pkgs {
				selected[path] = p
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			prefix = strings.TrimPrefix(prefix, "./")
			for path, p := range pkgs {
				rel := strings.TrimPrefix(path, modPath)
				rel = strings.TrimPrefix(rel, "/")
				if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					selected[path] = p
				}
			}
		default:
			path := pat
			if strings.HasPrefix(pat, "./") || pat == "." {
				rel := strings.TrimPrefix(pat, "./")
				if rel == "" || rel == "." {
					path = modPath
				} else {
					path = modPath + "/" + filepath.ToSlash(rel)
				}
			}
			p, ok := pkgs[path]
			if !ok {
				return nil, fmt.Errorf("analysis: package %q not found in module %s", pat, modPath)
			}
			selected[path] = p
		}
	}
	out := make([]*Package, 0, len(selected))
	for _, p := range selected {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadFixture loads one analysistest fixture package: dir's files are
// parsed and type-checked as package path == filepath.Base(dir). Imports
// resolve against sibling directories under the same testdata/src root
// first (so fixtures can model multi-package contracts), then the stdlib.
func LoadFixture(dir string) (*Package, error) {
	fset, std := sharedImporter()
	srcRoot := filepath.Dir(dir)
	imp := &fixtureImporter{std: std, root: srcRoot, fset: fset, loaded: map[string]*Package{}}
	p, err := imp.load(filepath.Base(dir))
	if err != nil {
		return nil, err
	}
	all := map[string]*Package{}
	for path, fp := range imp.loaded {
		all[path] = fp
	}
	p.all = all
	return p, nil
}

type fixtureImporter struct {
	std    types.Importer
	root   string
	fset   *token.FileSet
	loaded map[string]*Package
}

func (fi *fixtureImporter) load(path string) (*Package, error) {
	if p, ok := fi.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	pp, err := parseDir(fi.fset, dir)
	if err != nil {
		return nil, err
	}
	if pp == nil {
		return nil, fmt.Errorf("analysis: fixture %s has no Go files", dir)
	}
	p, err := typeCheck(fi.fset, path, pp, fi)
	if err != nil {
		return nil, err
	}
	p.Fset = fi.fset
	fi.loaded[path] = p
	return p, nil
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if info, err := os.Stat(filepath.Join(fi.root, filepath.FromSlash(path))); err == nil && info.IsDir() {
		p, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return fi.std.Import(path)
}
