package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/model"
	"realhf/internal/profiler"
	"realhf/internal/runtime"
	"realhf/internal/search"
)

// Fig12Point is one (estimated, measured) pair of the accuracy scatter.
type Fig12Point struct {
	Label    string
	Est      float64
	Real     float64
	RelError float64
}

// Fig12 regenerates the estimator study: (left) the profiling cost per model
// size and (right) estimated-vs-real times for searched and heuristic plans
// under both schedule semantics — serialized estimator vs serialized
// runtime, and overlapped estimator vs overlapped runtime — with the
// estimator driven by noisy interpolated profiles while the runtime uses
// ground truth (paper Fig. 12: errors stay under ~25% and the relative
// ordering of plans is preserved).
func Fig12(scales []int, steps int) ([]Fig12Point, string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 12 (left): profiler wall time per model"))
	hwProf := PaperSetting(2, model.LLaMA7B, model.LLaMA7B).Cluster()
	for _, cfg := range model.All() {
		tab, err := profiler.Profile(hwProf, cfg, profiler.Options{Seed: 1})
		if err != nil {
			return nil, "", err
		}
		fmt.Fprintf(&b, "  %-5s %8.1fs\n", cfg.Name, tab.ProfileCost)
	}

	var points []Fig12Point
	b.WriteString(header("Figure 12 (right): estimated vs real iteration times"))
	actorBy := map[int]model.Config{2: model.LLaMA7B, 4: model.LLaMA13B, 8: model.LLaMA34B, 16: model.LLaMA70B}
	for _, nodes := range scales {
		actor, ok := actorBy[nodes]
		if !ok {
			actor = model.LLaMA7B
		}
		s := PaperSetting(nodes, actor, model.LLaMA7B)
		pr, err := NewProblem(s)
		if err != nil {
			return nil, "", err
		}
		// Estimator driven by profiled (noisy, interpolated) tables.
		costers := map[dfg.Role]gpumodel.ModelCoster{}
		for role, ms := range pr.Models {
			tab, err := profiler.Profile(pr.Cluster, ms.Cfg, profiler.Options{Seed: int64(nodes)})
			if err != nil {
				return nil, "", err
			}
			costers[role] = tab
		}
		profEst := estimator.New(pr.Cluster, costers)

		heur, err := pr.HeuristicPlan()
		if err != nil {
			return nil, "", err
		}
		res, err := search.Solve(context.Background(), "mcmc",
			search.Problem{Est: profEst, Plan: pr.EmptyPlan()},
			search.Options{
				MaxSteps: steps, Seed: int64(nodes),
				SeedCandidates: []*core.Plan{heur},
			})
		if err != nil {
			return nil, "", err
		}
		// Overlapped twin of the profiled estimator: same noisy tables,
		// Algorithm 1 simulating the runtime's communication streams.
		ovEst := *profEst
		ovEst.OverlapComm = true
		for _, pl := range []struct {
			label string
			plan  *core.Plan
		}{{"heuristic", heur}, {"searched", res.Plan}} {
			// Both schedule semantics: the serialized estimator against the
			// serialized runtime, and the overlapped estimator against the
			// overlapped runtime, so the accuracy claim covers the engine
			// the system actually deploys (DefaultRunOptions overlaps).
			for _, sem := range []struct {
				name    string
				est     *estimator.Estimator
				overlap bool
			}{{"serial", profEst, false}, {"overlap", &ovEst, true}} {
				est, err := sem.est.Evaluate(pl.plan)
				if err != nil {
					return nil, "", err
				}
				rep, err := runtime.Run(pl.plan, runtime.Options{
					UseCUDAGraph: true, OverlapComm: sem.overlap,
				})
				if err != nil {
					return nil, "", err
				}
				rel := (est.TimeCost - rep.MakespanV) / rep.MakespanV
				if rel < 0 {
					rel = -rel
				}
				points = append(points, Fig12Point{
					Label:    fmt.Sprintf("%s-%dgpu-%s-%s", actor.Name, nodes*8, pl.label, sem.name),
					Est:      est.TimeCost,
					Real:     rep.MakespanV,
					RelError: rel,
				})
			}
		}
	}
	fmt.Fprintf(&b, "%-28s %10s %10s %8s\n", "Plan", "Est (s)", "Real (s)", "Err")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-28s %10.1f %10.1f %7.1f%%\n", pt.Label, pt.Est, pt.Real, 100*pt.RelError)
	}
	return points, b.String(), nil
}

// ConvergenceCurve is one line of the search-convergence figures: the best
// cost relative to the initial (greedy) cost as the search proceeds.
type ConvergenceCurve struct {
	Label      string
	SpaceLog10 float64
	// Points are (elapsed, improvement ratio) samples; the ratio is
	// best/initial, so lower is better and 1.0 is the seed plan.
	Points []ConvergencePoint
}

// ConvergencePoint is one sample of a convergence curve.
type ConvergencePoint struct {
	Elapsed time.Duration
	Step    int
	Ratio   float64
}

func curveFrom(label string, res *search.Result) ConvergenceCurve {
	c := ConvergenceCurve{Label: label, SpaceLog10: res.SpaceLog10}
	if len(res.Trace) == 0 {
		return c
	}
	initial := res.Trace[0].BestCost
	for _, pt := range res.Trace {
		c.Points = append(c.Points, ConvergencePoint{
			Elapsed: pt.Elapsed, Step: pt.Step, Ratio: pt.BestCost / initial,
		})
	}
	return c
}

// FinalRatio is the last improvement ratio of the curve.
func (c ConvergenceCurve) FinalRatio() float64 {
	if len(c.Points) == 0 {
		return 1
	}
	return c.Points[len(c.Points)-1].Ratio
}

// Fig13 regenerates the search-convergence study: improvement ratio over
// search progress for the four model scales at context lengths 2048 and 8192
// (paper Fig. 13).
func Fig13(steps int, ctxs []int) ([]ConvergenceCurve, string, error) {
	scales := []struct {
		nodes int
		actor model.Config
	}{
		{2, model.LLaMA7B}, {4, model.LLaMA13B}, {8, model.LLaMA34B}, {16, model.LLaMA70B},
	}
	var curves []ConvergenceCurve
	for _, ctx := range ctxs {
		for _, sc := range scales {
			s := PaperSetting(sc.nodes, sc.actor, model.LLaMA7B).WithContext(ctx)
			pr, err := NewProblem(s)
			if err != nil {
				return nil, "", err
			}
			res, err := pr.SearchPlan(steps, int64(ctx+sc.nodes))
			if err != nil {
				return nil, "", err
			}
			curves = append(curves, curveFrom(
				fmt.Sprintf("%s ctx%d", sc.actor.Name, ctx), res))
		}
	}
	var b strings.Builder
	b.WriteString(header("Figure 13: improvement ratio vs search progress"))
	fmt.Fprintf(&b, "%-16s %10s %12s\n", "Setting", "Final", "Space(log10)")
	for _, c := range curves {
		fmt.Fprintf(&b, "%-16s %10.3f %12.1f\n", c.Label, c.FinalRatio(), c.SpaceLog10)
	}
	return curves, b.String(), nil
}

// Fig14 regenerates the pruning ablation on a 1024-GPU cluster: MCMC over
// candidate spaces pruned to ~10^14, ~10^16 and ~10^18 plans (caps of 215,
// 464 and 1000 candidates per call across 6 calls). Smaller spaces converge
// faster (paper Fig. 14).
func Fig14(steps int, caps []int) ([]ConvergenceCurve, string, error) {
	if len(caps) == 0 {
		caps = []int{215, 464, 1000}
	}
	s := PaperSetting(128, model.LLaMA70B, model.LLaMA7B)
	pr, err := NewProblem(s)
	if err != nil {
		return nil, "", err
	}
	heur, err := pr.HeuristicPlan()
	if err != nil {
		return nil, "", err
	}
	var curves []ConvergenceCurve
	for _, cap := range caps {
		res, err := search.Solve(context.Background(), "mcmc", pr.SearchProblem(),
			search.Options{
				MaxSteps: steps, Seed: int64(cap),
				Prune: search.PruneModerate, MaxCandidatesPerCall: cap,
				SeedCandidates: []*core.Plan{heur},
			})
		if err != nil {
			return nil, "", err
		}
		curves = append(curves, curveFrom(fmt.Sprintf("cap=%d (~1e%.0f plans)", cap, res.SpaceLog10), res))
	}
	var b strings.Builder
	b.WriteString(header("Figure 14: MCMC with pruned search spaces, 1024 GPUs"))
	fmt.Fprintf(&b, "%-24s %10s\n", "Space", "FinalRatio")
	for _, c := range curves {
		fmt.Fprintf(&b, "%-24s %10.3f\n", c.Label, c.FinalRatio())
	}
	return curves, b.String(), nil
}

// Fig15Result compares MCMC against the bounded exhaustive optimum for one
// batch/seqlen setting on 8 GPUs.
type Fig15Result struct {
	Label       string
	OptimalCost float64
	MCMC        ConvergenceCurve
	MCMCBest    float64
}

// Fig15 regenerates the optimality study: on a single node with 7B models,
// MCMC reaches within a few percent of the brute-force optimum in seconds
// (paper Fig. 15).
func Fig15(steps, topK int) ([]Fig15Result, string, error) {
	settings := []struct {
		batch, seqLen int
	}{
		{512, 2048}, {1024, 1024}, {2048, 512},
	}
	var out []Fig15Result
	for _, cfg := range settings {
		s := Setting{
			Nodes: 1, Actor: model.LLaMA7B, Critic: model.LLaMA7B,
			Batch: cfg.batch, PromptLen: cfg.seqLen / 2, GenLen: cfg.seqLen / 2,
			MiniBatches: 8, Algo: "ppo", Iterations: 1,
		}
		pr, err := NewProblem(s)
		if err != nil {
			return nil, "", err
		}
		bf, err := search.Solve(context.Background(), "exhaustive", pr.SearchProblem(),
			search.Options{MaxCandidatesPerCall: topK})
		if err != nil {
			return nil, "", err
		}
		res, err := pr.SearchPlan(steps, int64(cfg.batch))
		if err != nil {
			return nil, "", err
		}
		out = append(out, Fig15Result{
			Label:       fmt.Sprintf("BS=%d SeqLen=%d", cfg.batch, cfg.seqLen),
			OptimalCost: bf.Cost,
			MCMC:        curveFrom("mcmc", res),
			MCMCBest:    res.Cost,
		})
	}
	var b strings.Builder
	b.WriteString(header("Figure 15: MCMC vs brute-force optimum, 7B+7B on 8 GPUs"))
	fmt.Fprintf(&b, "%-22s %12s %12s %10s\n", "Setting", "Optimal (s)", "MCMC (s)", "Gap")
	for _, r := range out {
		gap := (r.MCMCBest - r.OptimalCost) / r.OptimalCost
		fmt.Fprintf(&b, "%-22s %12.1f %12.1f %+9.1f%%\n", r.Label, r.OptimalCost, r.MCMCBest, 100*gap)
	}
	return out, b.String(), nil
}
