package experiments

import (
	"fmt"
	"strings"

	"realhf/internal/model"
)

// Fig16Row compares ReaL against the heuristic for one RLHF algorithm.
type Fig16Row struct {
	Algo        string
	RealPFLOPs  float64
	HeurPFLOPs  float64
	Improvement float64
}

// Fig16 regenerates the beyond-PPO comparison: DPO, GRPO, and ReMax with a
// 70B actor and 7B reward-size models on 16 nodes (paper Fig. 16). The
// paper's shape: ReMax gains most (its two generation calls run
// concurrently under ReaL), GRPO least (its grouped batch is
// compute-bounded).
func Fig16(nodes, steps int, actor, small model.Config) ([]Fig16Row, string, error) {
	var rows []Fig16Row
	for i, algo := range []string{"dpo", "grpo", "remax"} {
		s := PaperSetting(nodes, actor, small)
		s.Algo = algo
		// GRPO generates GroupSize=8 responses per prompt, multiplying the
		// effective batch 8× — the paper notes this makes its workload
		// compute-bounded and shrinks ReaL's relative gain.
		pr, err := NewProblem(s)
		if err != nil {
			return nil, "", err
		}
		heur, err := pr.HeuristicPlan()
		if err != nil {
			return nil, "", err
		}
		_, heurTP, err := pr.Measure(heur)
		if err != nil {
			return nil, "", err
		}
		res, err := pr.SearchPlan(steps, int64(1000+i))
		if err != nil {
			return nil, "", err
		}
		_, realTP, err := pr.Measure(res.Plan)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Fig16Row{
			Algo: algo, RealPFLOPs: realTP, HeurPFLOPs: heurTP,
			Improvement: (realTP - heurTP) / heurTP,
		})
	}
	var b strings.Builder
	b.WriteString(header("Figure 16: RLHF algorithms beyond PPO"))
	fmt.Fprintf(&b, "%-8s %14s %14s %12s\n", "Algo", "Heuristic PF/s", "ReaL PF/s", "Improvement")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %14.2f %14.2f %+11.1f%%\n",
			strings.ToUpper(r.Algo), r.HeurPFLOPs, r.RealPFLOPs, 100*r.Improvement)
	}
	return rows, b.String(), nil
}
