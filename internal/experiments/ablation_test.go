package experiments

import (
	"strings"
	"testing"

	"realhf/internal/model"
)

func TestAblationNoRealloc(t *testing.T) {
	rows, out, err := AblationNoRealloc(2, 900)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.FullPFLOPs <= 0 || r.ConstraintPFLOPs <= 0 {
			t.Errorf("%s: non-positive throughput", r.Setting)
		}
		// The full planner may never lose to its own restricted space.
		if r.Advantage < -0.02 {
			t.Errorf("%s: realloc-free plan beat the full search by %.0f%%",
				r.Setting, -100*r.Advantage)
		}
	}
	if !strings.Contains(out, "Ablation") {
		t.Error("missing report header")
	}
}

func TestAblationOverlapSearch(t *testing.T) {
	rows, out, err := AblationOverlapSearch(2, 900)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.SerialSearchedE2E <= 0 || r.OverlapSearchedE2E <= 0 {
			t.Errorf("%s: non-positive makespan", r.Setting)
		}
		// The acceptance bar: searched under the objective the runtime
		// executes, the plan can never run slower on that runtime than the
		// serialized-searched plan (the overlap-aware solve warm-starts
		// from it). The guarantee is exact in estimator space; the 1%
		// margin covers the estimator-vs-runtime disagreement.
		if r.OverlapSearchedE2E > r.SerialSearchedE2E*1.01 {
			t.Errorf("%s: overlap-aware searched plan slower on the overlapped runtime (%.2fs > %.2fs)",
				r.Setting, r.OverlapSearchedE2E, r.SerialSearchedE2E)
		}
	}
	if !strings.Contains(out, "overlap-aware search") {
		t.Error("missing report header")
	}
}

func TestAblationOffload(t *testing.T) {
	row, out, err := AblationOffload(400)
	if err != nil {
		t.Fatal(err)
	}
	if !row.DefaultOOM {
		t.Errorf("default search found a feasible plan (%.1f GB); the workload is not memory-constrained enough",
			row.DefaultMaxMemGB)
	}
	if row.OffloadOOM {
		t.Errorf("offload-aware search still infeasible at %.1f GB peak", row.OffloadMaxMemGB)
	}
	if row.OffloadedCalls == 0 {
		t.Error("feasible plan parks no calls in host memory")
	}
	if row.OffloadMaxMemGB >= row.DefaultMaxMemGB {
		t.Errorf("offload plan peak %.1f GB not below default's %.1f GB",
			row.OffloadMaxMemGB, row.DefaultMaxMemGB)
	}
	if row.E2E <= 0 {
		t.Errorf("feasible plan did not execute: E2E %.2fs", row.E2E)
	}
	if !strings.Contains(out, "searched plan dimension") {
		t.Error("missing report header")
	}
}

func TestAblationCrossIter(t *testing.T) {
	// A critic larger than the actor makes the critic-side tail spill past
	// the iteration boundary — the slack cross-iteration overlap exploits.
	s := PaperSetting(2, model.LLaMA7B, model.LLaMA13B)
	single, double, out, err := AblationCrossIter(s, 900)
	if err != nil {
		t.Fatal(err)
	}
	if double >= 2*single {
		t.Errorf("2 iterations (%.1fs) should beat 2×1 iteration (%.1fs): no overlap found",
			double, 2*single)
	}
	if double <= single {
		t.Errorf("2 iterations (%.1fs) cannot be faster than 1 (%.1fs)", double, single)
	}
	if !strings.Contains(out, "overlap") {
		t.Error("missing report body")
	}
}

func TestRoleCandidatesNonEmpty(t *testing.T) {
	pr, err := NewProblem(PaperSetting(1, model.LLaMA7B, model.LLaMA7B))
	if err != nil {
		t.Fatal(err)
	}
	for _, role := range []string{"actor", "critic", "ref", "reward"} {
		if got := len(RoleCandidates(pr, role)); got == 0 {
			t.Errorf("role %q has no shared candidates", role)
		}
	}
}

func TestEnumerateAssignmentsLegal(t *testing.T) {
	pr, err := NewProblem(PaperSetting(2, model.LLaMA7B, model.LLaMA7B))
	if err != nil {
		t.Fatal(err)
	}
	all := EnumerateAssignments(pr.Cluster)
	if len(all) == 0 {
		t.Fatal("no assignments enumerated")
	}
	for _, a := range all {
		if err := a.Mesh.Validate(); err != nil {
			t.Fatalf("illegal mesh in enumeration: %v", err)
		}
		if a.Strategy.WorldSize() != a.Mesh.NumGPUs() {
			t.Fatalf("strategy %v does not fill mesh %v", a.Strategy, a.Mesh)
		}
	}
}
