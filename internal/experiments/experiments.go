// Package experiments regenerates every table and figure of the paper's
// evaluation (§8) on the simulated cluster: end-to-end baseline comparisons,
// heuristic comparisons across context lengths, progressive-optimization
// breakdowns, kernel traces, GPU-time decompositions, estimator/profiler
// studies, search ablations, beyond-PPO algorithms, and strong scaling.
// DESIGN.md maps each experiment to its paper artifact; EXPERIMENTS.md
// records paper-vs-measured outcomes.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/model"
	"realhf/internal/runtime"
	"realhf/internal/search"
)

// Setting is one experiment instance: a cluster scale, a model pair, and a
// workload.
type Setting struct {
	Nodes       int
	Actor       model.Config
	Critic      model.Config
	Batch       int
	PromptLen   int
	GenLen      int
	MiniBatches int
	Algo        string // "ppo" (default), "dpo", "grpo", "remax"
	Iterations  int
}

// PaperSetting returns the paper's base configuration (Appendix A —
// InstructGPT-style: batch 512, prompt 1024, generation 1024, 8 PPO
// mini-batches) at the given scale. Weak-scaling settings scale the batch
// with the device count (512 per 16 GPUs).
func PaperSetting(nodes int, actor, critic model.Config) Setting {
	batch := 512 * nodes / 2
	if batch < 32 {
		batch = 32
	}
	return Setting{
		Nodes: nodes, Actor: actor, Critic: critic,
		Batch: batch, PromptLen: 1024, GenLen: 1024,
		MiniBatches: 8, Algo: "ppo", Iterations: 1,
	}
}

// WithContext rescales the setting to a different context length at a fixed
// token budget, as the paper does for the 8192-token experiments (batch
// shrinks by the same factor the context grows).
func (s Setting) WithContext(ctx int) Setting {
	oldCtx := s.PromptLen + s.GenLen
	s.Batch = s.Batch * oldCtx / ctx
	if s.Batch < 8 {
		s.Batch = 8
	}
	s.PromptLen = 1024
	s.GenLen = ctx - s.PromptLen
	return s
}

// Cluster returns the hardware model at this setting's scale.
func (s Setting) Cluster() hardware.Cluster { return hardware.DefaultCluster(s.Nodes) }

// Graph builds the setting's dataflow graph.
func (s Setting) Graph() (*dfg.Graph, error) {
	algo := s.Algo
	if algo == "" {
		algo = "ppo"
	}
	iters := s.Iterations
	if iters == 0 {
		iters = 1
	}
	return dfg.Build(algo, dfg.Spec{
		Batch: s.Batch, PromptLen: s.PromptLen, GenLen: s.GenLen,
		MiniBatches: s.MiniBatches, Iterations: iters,
	})
}

// Models returns the model cast for the setting's algorithm.
func (s Setting) Models() (map[dfg.Role]core.ModelSpec, error) {
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	return core.ModelsFor(g, s.Actor, s.Critic), nil
}

// Problem bundles everything needed to plan and run a setting.
type Problem struct {
	Setting Setting
	Cluster hardware.Cluster
	Graph   *dfg.Graph
	Models  map[dfg.Role]core.ModelSpec
	Est     *estimator.Estimator
}

// NewProblem materializes a setting with ground-truth (oracle) costers.
func NewProblem(s Setting) (*Problem, error) {
	hw := s.Cluster()
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	models := core.ModelsFor(g, s.Actor, s.Critic)
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range models {
		costers[role] = gpumodel.NewOracle(hw, ms.Cfg)
	}
	return &Problem{
		Setting: s, Cluster: hw, Graph: g, Models: models,
		Est: estimator.New(hw, costers),
	}, nil
}

// EmptyPlan returns an unassigned plan for the problem.
func (pr *Problem) EmptyPlan() *core.Plan {
	return core.NewPlan(pr.Cluster, pr.Graph, pr.Models)
}

// SearchProblem bundles the problem for the search package's Solver
// interface, under the historical serialized cost semantics.
func (pr *Problem) SearchProblem() search.Problem {
	return pr.SearchProblemFor(false)
}

// SearchProblemFor bundles the problem with an explicit cost semantics:
// overlap=true makes solvers score candidates with the overlapped-engine
// estimator (estimator.Estimator.OverlapComm) — the schedule the runtime
// executes with communication streams enabled — instead of the serialized
// one.
func (pr *Problem) SearchProblemFor(overlap bool) search.Problem {
	return search.Problem{Est: pr.Est, Plan: pr.EmptyPlan(), Overlap: overlap}
}

// WarmStarts builds the baseline placements (symmetric heuristic and the
// split-placement systems) used as SeedCandidates: all of them lie inside
// the search space, and starting from the cheapest lets the reduced step
// budgets of this reproduction match the paper's
// better-than-every-baseline outcome.
func (pr *Problem) WarmStarts() []*core.Plan {
	var seeds []*core.Plan
	for _, sys := range []baselines.System{baselines.Heuristic, baselines.NeMoAligner, baselines.OpenRLHF} {
		if p, err := baselines.Build(sys, pr.Cluster, pr.Graph, pr.Models); err == nil {
			seeds = append(seeds, p)
		}
	}
	return seeds
}

// SolveWith runs the named solver from the registry over this problem,
// warm-started with the baseline placements.
func (pr *Problem) SolveWith(solver string, opt search.Options) (*search.Result, error) {
	return pr.SolveFor(false, solver, opt)
}

// SolveFor is SolveWith under an explicit cost semantics (see
// SearchProblemFor).
func (pr *Problem) SolveFor(overlap bool, solver string, opt search.Options) (*search.Result, error) {
	if opt.SeedCandidates == nil {
		opt.SeedCandidates = pr.WarmStarts()
	}
	return search.Solve(context.Background(), solver, pr.SearchProblemFor(overlap), opt)
}

// SearchPlan runs the sequential MCMC planner with a fixed step budget and
// seed — the pre-Solver entry point, now routed through the solver
// registry.
func (pr *Problem) SearchPlan(steps int, seed int64) (*search.Result, error) {
	return pr.SolveWith("mcmc", search.Options{MaxSteps: steps, Seed: seed})
}

// SearchPlanFor is SearchPlan with the cost semantics chosen by the caller:
// overlap=true searches for the plan that minimizes the overlapped
// runtime's makespan.
func (pr *Problem) SearchPlanFor(overlap bool, steps int, seed int64) (*search.Result, error) {
	return pr.SolveFor(overlap, "mcmc", search.Options{MaxSteps: steps, Seed: seed})
}

// SearchPlanOverlapWarm is the canonical overlap-aware solve of the
// ±overlap-search comparisons (Table 6, the ablation, the CI benchmark):
// MCMC under the overlapped cost semantics, warm-started from the
// serialized winner on top of the shared baseline seeds — which guarantees
// the result's overlapped-cost estimate never exceeds the serialized
// plan's. Keeping the seeding policy in one place keeps that invariant
// identical across every artifact that pins it.
func (pr *Problem) SearchPlanOverlapWarm(steps int, seed int64, serialized *core.Plan) (*search.Result, error) {
	return pr.SolveFor(true, "mcmc", search.Options{
		MaxSteps: steps, Seed: seed,
		SeedCandidates: append(pr.WarmStarts(), serialized),
	})
}

// HeuristicPlan builds the REAL-Heuristic baseline plan.
func (pr *Problem) HeuristicPlan() (*core.Plan, error) {
	return baselines.BuildHeuristic(pr.Cluster, pr.Graph, pr.Models)
}

// Measure executes a plan on the simulated cluster and returns the run
// report plus its per-iteration throughput in PFLOP/s. Runs that hit OOM
// report zero throughput — the paper plots such configurations as failures.
// The schedule is the serialized baseline; MeasureWith exposes the ±overlap
// knob.
func (pr *Problem) Measure(p *core.Plan) (*runtime.Report, float64, error) {
	return pr.MeasureWith(p, runtime.Options{UseCUDAGraph: true})
}

// MeasureWith is Measure under explicit runtime options (e.g. OverlapComm
// for the overlapped engine of §6).
func (pr *Problem) MeasureWith(p *core.Plan, opts runtime.Options) (*runtime.Report, float64, error) {
	rep, err := runtime.Run(p, opts)
	if err != nil {
		return nil, 0, err
	}
	if rep.OOM {
		return rep, 0, nil
	}
	tp := estimator.Throughput(p, rep.MakespanV)
	return rep, tp, nil
}

// row formatting helpers shared by the figure reports.

func header(title string) string {
	line := strings.Repeat("=", len(title))
	return fmt.Sprintf("%s\n%s\n", title, line)
}

func gb(b int64) float64 { return float64(b) / (1 << 30) }
