package experiments

import (
	"strings"
	"testing"
)

func TestLimitationStudy(t *testing.T) {
	rows, out, err := LimitationStudy(2, 800, []float64{0, 0.5}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	// With no spread, the realized workload equals the planned one: the
	// estimate error must be small (just dispatch overhead).
	if rows[0].EstimateErr > 0.05 {
		t.Errorf("zero-spread estimate error %.1f%%, want <5%%", 100*rows[0].EstimateErr)
	}
	// With a large spread, the stale estimate degrades — the paper's §7
	// predictability limitation.
	if rows[1].EstimateErr <= rows[0].EstimateErr {
		t.Errorf("estimate error should grow with workload variance: %.3f vs %.3f",
			rows[1].EstimateErr, rows[0].EstimateErr)
	}
	// Re-planning can only help (up to search noise).
	if rows[1].Regret < -0.05 {
		t.Errorf("re-planned run slower than the stale plan by %.1f%%", -100*rows[1].Regret)
	}
	if !strings.Contains(out, "Limitation") {
		t.Error("missing report header")
	}
}
