package experiments

import (
	"strings"
	"testing"
)

// TestAblationGenLenDrift: the replanning campaign must beat the frozen
// plan on total makespan with the switch charges included, and the report
// must carry one row per iteration plus the totals.
func TestAblationGenLenDrift(t *testing.T) {
	rows, sum, out, err := AblationGenLenDrift(1, 600, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if rows[0].GenLen != 1024 || rows[3].GenLen != 128 {
		t.Fatalf("ramp endpoints wrong: %d..%d", rows[0].GenLen, rows[3].GenLen)
	}
	if rows[0].FrozenV != rows[0].ReplanV || rows[0].Switched {
		t.Fatalf("iteration 0 must execute the shared initial plan: %+v", rows[0])
	}
	if sum.Switches == 0 || sum.SwitchCostV <= 0 {
		t.Fatalf("the ramp must trigger adopted switches: %+v", sum)
	}
	if sum.ReplanTotalV >= sum.FrozenTotalV || sum.Gain <= 0 {
		t.Fatalf("replanning (%.2fs incl. %.3fs switches) must beat frozen (%.2fs)",
			sum.ReplanTotalV, sum.SwitchCostV, sum.FrozenTotalV)
	}
	var total float64
	for _, r := range rows {
		total += r.ReplanV + r.SwitchCost
	}
	if total != sum.ReplanTotalV {
		t.Fatalf("summary total %.4f != row sum %.4f", sum.ReplanTotalV, total)
	}
	if !strings.Contains(out, "GenLen drift") || !strings.Contains(out, "total") {
		t.Fatalf("report missing sections:\n%s", out)
	}
}
