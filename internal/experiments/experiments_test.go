package experiments

import (
	"strings"
	"testing"

	"realhf/internal/model"
)

func TestTable1Rendering(t *testing.T) {
	out := Table1()
	for _, want := range []string{"8030261248", "14001525760", "35321028608", "70553706496"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing exact param count %s", want)
		}
	}
}

func TestPaperSettingWeakScaling(t *testing.T) {
	s16 := PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	if s16.Batch != 512 {
		t.Errorf("16-GPU batch = %d, want 512", s16.Batch)
	}
	s128 := PaperSetting(16, model.LLaMA70B, model.LLaMA7B)
	if s128.Batch != 4096 {
		t.Errorf("128-GPU batch = %d, want 4096", s128.Batch)
	}
}

func TestWithContextKeepsTokenBudget(t *testing.T) {
	s := PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	long := s.WithContext(8192)
	if long.Batch != 512/4 {
		t.Errorf("8192-ctx batch = %d, want 128", long.Batch)
	}
	if long.PromptLen+long.GenLen != 8192 {
		t.Errorf("ctx = %d, want 8192", long.PromptLen+long.GenLen)
	}
	if got := long.Batch * (long.PromptLen + long.GenLen); got != s.Batch*(s.PromptLen+s.GenLen) {
		t.Errorf("token budget changed: %d", got)
	}
}

func TestFig7RealWinsAtSmallScale(t *testing.T) {
	rows, out, err := Fig7(model.LLaMA7B, []int{16}, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 7") {
		t.Error("missing report header")
	}
	var realTP float64
	best := 0.0
	for _, r := range rows {
		if r.System == "real" {
			realTP = r.PFLOPs
		} else if !r.OOM && r.PFLOPs > best {
			best = r.PFLOPs
		}
	}
	if realTP <= 0 {
		t.Fatal("ReaL row missing")
	}
	if realTP < best {
		t.Errorf("ReaL (%.2f PF/s) lost to a baseline (%.2f PF/s)", realTP, best)
	}
}

func TestFig8SearchBeatsHeuristic(t *testing.T) {
	combos := [][2]model.Config{{model.LLaMA7B, model.LLaMA7B}}
	rows, _, err := Fig8(combos, 2, []int{2048, 8192}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Improvement < 0 {
			t.Errorf("ctx %d: searched plan lost to heuristic by %.0f%%", r.CtxLen, -100*r.Improvement)
		}
	}
	// The paper's long-context claim: the gain grows at ctx 8192.
	if rows[1].Improvement < rows[0].Improvement {
		t.Logf("warning: ctx-8192 gain %.0f%% below ctx-2048 gain %.0f%% at this tiny scale",
			100*rows[1].Improvement, 100*rows[0].Improvement)
	}
}

func TestFig9ProgressiveMonotone(t *testing.T) {
	s := PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	stages, out, err := Fig9(s, 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 5 {
		t.Fatalf("got %d stages, want 5", len(stages))
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].WallTime > stages[i-1].WallTime*1.02 {
			t.Errorf("stage %q (%.1fs) regressed from %q (%.1fs)",
				stages[i].Name, stages[i].WallTime, stages[i-1].Name, stages[i-1].WallTime)
		}
	}
	if !strings.Contains(out, "CUDAGraph") {
		t.Error("missing CUDAGraph stage in report")
	}
}

func TestFig2Report(t *testing.T) {
	s := PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	out, err := Fig2(s, 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total") {
		t.Error("Fig 2 report missing total improvement")
	}
}

func TestTables2to6Quick(t *testing.T) {
	out, cases, err := Tables2to6(1200, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		// Searched end-to-end must not lose to the heuristic.
		if c.SearchedE2E[0] > c.HeuristicE2E[0] {
			t.Errorf("%s: searched %.1fs worse than heuristic %.1fs",
				c.Name, c.SearchedE2E[0], c.HeuristicE2E[0])
		}
		// Disabling CUDA graphs slows both down (Table 6's two bottom rows).
		if c.SearchedE2E[1] <= c.SearchedE2E[0] {
			t.Errorf("%s: no-CUDAGraph run should be slower", c.Name)
		}
	}
	for _, want := range []string{"Table 2", "Table 6", "End2End", "ActorGen"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFig10Traces(t *testing.T) {
	out := Fig10(16)
	for _, want := range []string{"TP=2", "TP=8", "All-Reduce", "Decoding"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 10 output missing %q", want)
		}
	}
}

func TestFig11ComputeFractionImproves(t *testing.T) {
	combos := [][2]model.Config{{model.LLaMA7B, model.LLaMA7B}}
	rows, _, err := Fig11(combos, 2, 1200)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Real.Compute < r.Heur.Compute {
		t.Errorf("ReaL compute fraction %.2f below heuristic %.2f", r.Real.Compute, r.Heur.Compute)
	}
}

func TestFig12EstimatorAccuracy(t *testing.T) {
	points, _, err := Fig12([]int{2}, 800)
	if err != nil {
		t.Fatal(err)
	}
	// (heuristic, searched) × (serial, overlap) semantics.
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for _, pt := range points {
		if pt.RelError > 0.25 {
			t.Errorf("%s: estimator off by %.0f%% (>25%%)", pt.Label, 100*pt.RelError)
		}
	}
	// Ordering preservation per semantics: if the estimator ranks searched
	// below heuristic, the real runs must agree. Points are ordered
	// heuristic-serial, heuristic-overlap, searched-serial, searched-overlap.
	for i := 0; i < 2; i++ {
		heur, searched := points[i], points[i+2]
		if searched.Est < heur.Est && searched.Real > heur.Real {
			t.Errorf("estimator inverted the plan ordering (%s vs %s)", searched.Label, heur.Label)
		}
	}
}

func TestFig13Converges(t *testing.T) {
	curves, _, err := Fig13(600, []int{2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("got %d curves, want 4", len(curves))
	}
	for _, c := range curves {
		if c.FinalRatio() > 1.0+1e-9 {
			t.Errorf("%s: search ended worse than its seed (ratio %.3f)", c.Label, c.FinalRatio())
		}
	}
}

func TestFig15NearOptimal(t *testing.T) {
	results, _, err := Fig15(2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		gap := (r.MCMCBest - r.OptimalCost) / r.OptimalCost
		if gap > 0.10 {
			t.Errorf("%s: MCMC %.1f%% above optimum (paper: <5%% in seconds)", r.Label, 100*gap)
		}
	}
}

func TestFig16AlgorithmsImprove(t *testing.T) {
	rows, out, err := Fig16(2, 1200, model.LLaMA13B, model.LLaMA7B)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byAlgo := map[string]Fig16Row{}
	for _, r := range rows {
		byAlgo[r.Algo] = r
		if r.Improvement < -0.02 {
			t.Errorf("%s: ReaL lost to heuristic by %.0f%%", r.Algo, -100*r.Improvement)
		}
	}
	if !strings.Contains(out, "REMAX") {
		t.Error("report missing ReMax row")
	}
	// The paper's shape: ReMax gains more than GRPO — ReaL runs ReMax's two
	// generation calls concurrently, while GRPO's 8× grouped batch is
	// compute-bounded with little overhead to remove. (The full-scale
	// ordering incl. DPO is exercised by BenchmarkFig16Algorithms.)
	if byAlgo["remax"].Improvement < byAlgo["grpo"].Improvement {
		t.Errorf("ReMax gain %.0f%% should exceed GRPO gain %.0f%%",
			100*byAlgo["remax"].Improvement, 100*byAlgo["grpo"].Improvement)
	}
}

func TestFig17StrongScaling(t *testing.T) {
	rows, _, err := Fig17([]model.Config{model.LLaMA7B}, []int{1, 2, 4}, 700)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// Throughput must grow with devices; static utilization must fall.
	for i := 1; i < len(rows); i++ {
		if rows[i].PFLOPs <= rows[i-1].PFLOPs {
			t.Errorf("throughput fell from %.2f to %.2f when scaling %d->%d GPUs",
				rows[i-1].PFLOPs, rows[i].PFLOPs, rows[i-1].GPUs, rows[i].GPUs)
		}
		if rows[i].StaticUtil >= rows[i-1].StaticUtil {
			t.Errorf("static utilization rose from %.2f to %.2f with more GPUs",
				rows[i-1].StaticUtil, rows[i].StaticUtil)
		}
	}
}
