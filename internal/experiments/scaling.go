package experiments

import (
	"fmt"
	"strings"

	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/model"
)

// estimatorModelState aliases the Fig. 17 metric for readability.
func estimatorModelState(p *core.Plan) float64 { return estimator.ModelStateUtilization(p) }

// Fig17Row is one point of the strong-scaling study.
type Fig17Row struct {
	ActorName  string
	GPUs       int
	PFLOPs     float64
	StaticUtil float64
}

// Fig17 regenerates the strong-scaling analysis: throughput and static
// memory utilization for fixed problem sizes (batch 512, ctx 2048) across
// increasing device counts (paper Fig. 17). The paper's shape: larger models
// scale super-linearly while memory is tight, small models plateau on
// generation overheads, and static-memory utilization below ~60% signals
// diminishing returns from more GPUs.
func Fig17(actors []model.Config, nodeCounts []int, steps int) ([]Fig17Row, string, error) {
	var rows []Fig17Row
	for _, actor := range actors {
		for _, nodes := range nodeCounts {
			s := PaperSetting(nodes, actor, model.LLaMA7B)
			s.Batch = 512 // strong scaling: fixed problem size
			pr, err := NewProblem(s)
			if err != nil {
				return nil, "", err
			}
			res, err := pr.SearchPlan(steps, int64(nodes*1000))
			if err != nil {
				return nil, "", err
			}
			if res.Estimate.OOM {
				// The problem does not fit at this scale; skip the point as
				// the paper does for infeasible configurations.
				continue
			}
			_, tp, err := pr.Measure(res.Plan)
			if err != nil {
				return nil, "", err
			}
			rows = append(rows, Fig17Row{
				ActorName:  actor.Name,
				GPUs:       nodes * 8,
				PFLOPs:     tp,
				StaticUtil: estimatorModelState(res.Plan),
			})
		}
	}
	var b strings.Builder
	b.WriteString(header("Figure 17: strong scaling (fixed batch 512, ctx 2048)"))
	fmt.Fprintf(&b, "%-7s %6s %12s %12s\n", "Actor", "GPUs", "PFLOP/s", "StaticUtil")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %6d %12.2f %11.0f%%\n", r.ActorName, r.GPUs, r.PFLOPs, 100*r.StaticUtil)
	}
	return rows, b.String(), nil
}
