package experiments

import (
	"fmt"
	"math"
	"strings"

	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/model"
	"realhf/internal/runtime"
	"realhf/internal/search"
)

// Fig7Row is one bar of the end-to-end comparison.
type Fig7Row struct {
	GPUs       int
	ActorName  string
	CriticName string
	System     string
	PFLOPs     float64
	OOM        bool
}

// weakScalingActor maps device counts to actor sizes as in the paper's weak
// scaling protocol (§8, Settings).
func weakScalingActor(gpus int) (model.Config, bool) {
	switch gpus {
	case 16:
		return model.LLaMA7B, true
	case 32:
		return model.LLaMA13B, true
	case 64:
		return model.LLaMA34B, true
	case 128:
		return model.LLaMA70B, true
	}
	return model.Config{}, false
}

// Fig7 regenerates the end-to-end throughput comparison against the baseline
// systems under weak scaling. gpuCounts selects the cluster sizes (paper:
// 16–128 with a 7B critic, 32–128 with a 13B critic). OOM rows model the
// paper's red crosses.
func Fig7(critic model.Config, gpuCounts []int, steps int) ([]Fig7Row, string, error) {
	var rows []Fig7Row
	for _, gpus := range gpuCounts {
		actor, ok := weakScalingActor(gpus)
		if !ok {
			return nil, "", fmt.Errorf("experiments: no weak-scaling actor for %d GPUs", gpus)
		}
		s := PaperSetting(gpus/8, actor, critic)
		pr, err := NewProblem(s)
		if err != nil {
			return nil, "", err
		}
		// Baseline systems.
		for _, sys := range baselines.All() {
			plan, _, err := baselines.Evaluate(sys, pr.Est, pr.Cluster, pr.Graph, pr.Models)
			if err != nil {
				rows = append(rows, Fig7Row{GPUs: gpus, ActorName: actor.Name,
					CriticName: critic.Name, System: string(sys), OOM: true})
				continue
			}
			rep, tp, err := pr.Measure(plan)
			if err != nil {
				return nil, "", err
			}
			rows = append(rows, Fig7Row{GPUs: gpus, ActorName: actor.Name,
				CriticName: critic.Name, System: string(sys), PFLOPs: tp, OOM: rep.OOM})
		}
		// ReaL.
		res, err := pr.SearchPlan(steps, int64(gpus))
		if err != nil {
			return nil, "", err
		}
		rep, tp, err := pr.Measure(res.Plan)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Fig7Row{GPUs: gpus, ActorName: actor.Name,
			CriticName: critic.Name, System: "real", PFLOPs: tp, OOM: rep.OOM})
	}

	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Figure 7: end-to-end throughput, scaling actor with %s critic", critic.Name)))
	fmt.Fprintf(&b, "%6s %7s %-16s %14s\n", "GPUs", "Actor", "System", "PFLOP/s")
	for _, r := range rows {
		val := fmt.Sprintf("%.2f", r.PFLOPs)
		if r.OOM {
			val = "X (OOM)"
		}
		fmt.Fprintf(&b, "%6d %7s %-16s %14s\n", r.GPUs, r.ActorName, r.System, val)
	}
	return rows, b.String(), nil
}

// Fig8Row compares ReaL's searched plan with the heuristic at one size combo
// and context length.
type Fig8Row struct {
	ActorName   string
	CriticName  string
	CtxLen      int
	RealPFLOPs  float64
	HeurPFLOPs  float64
	Improvement float64 // (real-heur)/heur
}

// Fig8Combos lists the paper's seven actor/critic size pairs.
func Fig8Combos() [][2]model.Config {
	return [][2]model.Config{
		{model.LLaMA7B, model.LLaMA7B},
		{model.LLaMA13B, model.LLaMA7B},
		{model.LLaMA13B, model.LLaMA13B},
		{model.LLaMA34B, model.LLaMA7B},
		{model.LLaMA34B, model.LLaMA13B},
		{model.LLaMA70B, model.LLaMA7B},
		{model.LLaMA70B, model.LLaMA13B},
	}
}

// Fig8 regenerates the searched-vs-heuristic throughput comparison at
// context lengths 2048 and 8192 on a 16-node cluster (or fewer nodes for
// quick runs). The paper's headline: +54% average at 2048, growing to +81%
// at 8192.
func Fig8(combos [][2]model.Config, nodes int, ctxs []int, steps int) ([]Fig8Row, string, error) {
	var rows []Fig8Row
	for _, combo := range combos {
		for _, ctx := range ctxs {
			s := PaperSetting(nodes, combo[0], combo[1]).WithContext(ctx)
			pr, err := NewProblem(s)
			if err != nil {
				return nil, "", err
			}
			heur, err := pr.HeuristicPlan()
			if err != nil {
				return nil, "", err
			}
			_, heurTP, err := pr.Measure(heur)
			if err != nil {
				return nil, "", err
			}
			res, err := pr.SearchPlan(steps, int64(ctx))
			if err != nil {
				return nil, "", err
			}
			_, realTP, err := pr.Measure(res.Plan)
			if err != nil {
				return nil, "", err
			}
			rows = append(rows, Fig8Row{
				ActorName: combo[0].Name, CriticName: combo[1].Name, CtxLen: ctx,
				RealPFLOPs: realTP, HeurPFLOPs: heurTP,
				Improvement: (realTP - heurTP) / heurTP,
			})
		}
	}
	var b strings.Builder
	b.WriteString(header("Figure 8: ReaL vs heuristic across model sizes and context lengths"))
	fmt.Fprintf(&b, "%-12s %6s %12s %12s %8s\n", "Actor/Critic", "Ctx", "ReaL PF/s", "Heur PF/s", "Gain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6d %12.2f %12.2f %+7.0f%%\n",
			r.ActorName+"/"+r.CriticName, r.CtxLen, r.RealPFLOPs, r.HeurPFLOPs, 100*r.Improvement)
	}
	return rows, b.String(), nil
}

// ProgressiveStage is one bar of the Fig. 9 / Fig. 2 style optimization
// walk.
type ProgressiveStage struct {
	Name     string
	WallTime float64
	Plan     *core.Plan
}

// Fig9 regenerates the progressive-optimization breakdown: starting from the
// heuristic plan without CUDA graphs, it applies, in order, CUDA-graph
// generation, generation parallelization, training parallelization with
// concurrent execution, and inference parallelization — measuring the wall
// time after each step (paper Fig. 9; the same walk with percentage gains is
// Fig. 2).
func Fig9(s Setting, steps int, seed int64) ([]ProgressiveStage, string, error) {
	pr, err := NewProblem(s)
	if err != nil {
		return nil, "", err
	}
	heur, err := pr.HeuristicPlan()
	if err != nil {
		return nil, "", err
	}
	measure := func(p *core.Plan, cudaGraph bool) (float64, error) {
		rep, err := runtime.Run(p, runtime.Options{UseCUDAGraph: cudaGraph})
		if err != nil {
			return 0, err
		}
		return rep.MakespanV, nil
	}

	var stages []ProgressiveStage
	t0, err := measure(heur, false)
	if err != nil {
		return nil, "", err
	}
	stages = append(stages, ProgressiveStage{Name: "Heuristic (no CUDAGraph)", WallTime: t0, Plan: heur})

	t1, err := measure(heur, true)
	if err != nil {
		return nil, "", err
	}
	stages = append(stages, ProgressiveStage{Name: "+ CUDAGraph generation", WallTime: t1, Plan: heur})

	// Groups of calls optimized cumulatively: generation, then training,
	// then inference.
	groups := [][]string{
		{"ActorGen", "SampleGen", "GreedyGen"},
		{"ActorTrain", "CriticTrain"},
		{"RewInf", "RefInf", "CriticInf", "SampleRew", "GreedyRew"},
	}
	groupNames := []string{"+ Generation opt.", "+ Training opt. & concurrency", "+ Inference opt. & concurrency"}
	cur := heur
	var unlocked []string
	for gi, group := range groups {
		for _, name := range group {
			if _, ok := cur.Assign[name]; ok {
				unlocked = append(unlocked, name)
			}
		}
		// Restricted chains explore a big per-call space with few free
		// calls; run a handful of independent chains and keep the best.
		best := cur
		bestCost := math.Inf(1)
		for chain := 0; chain < 3; chain++ {
			res, err := search.Search(pr.Est, pr.EmptyPlan(), search.Options{
				MaxSteps: steps, Seed: seed + int64(gi) + int64(100*chain),
				InitialPlan: cur, RestrictCalls: unlocked,
			})
			if err != nil {
				return nil, "", err
			}
			if res.Cost < bestCost {
				best, bestCost = res.Plan, res.Cost
			}
		}
		cur = best
		t, err := measure(cur, true)
		if err != nil {
			return nil, "", err
		}
		stages = append(stages, ProgressiveStage{Name: groupNames[gi], WallTime: t, Plan: cur})
	}

	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Figure 9: progressive optimization, %s actor + %s critic, %d GPUs",
		s.Actor.Name, s.Critic.Name, s.Nodes*8)))
	prev := stages[0].WallTime
	for i, st := range stages {
		delta := ""
		if i > 0 {
			delta = fmt.Sprintf("  (-%.1fs)", prev-st.WallTime)
			prev = st.WallTime
		}
		fmt.Fprintf(&b, "%-32s %8.1fs%s\n", st.Name, st.WallTime, delta)
	}
	return stages, b.String(), nil
}

// Fig2 reports the same walk as sequential percentage improvements over the
// heuristic plan (paper Fig. 2: +Opt.Inf, +Critic realloc, +Actor realloc).
func Fig2(s Setting, steps int, seed int64) (string, error) {
	stages, _, err := Fig9(s, steps, seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(header("Figure 2: optimization opportunity over the 3D-parallel heuristic"))
	base := stages[1].WallTime // with CUDA graphs, as the Fig. 2 baseline
	prev := base
	for _, st := range stages[2:] {
		gain := (prev - st.WallTime) / st.WallTime
		fmt.Fprintf(&b, "%-32s %+6.0f%%\n", st.Name, 100*gain)
		prev = st.WallTime
	}
	total := (base - prev) / prev
	fmt.Fprintf(&b, "%-32s %+6.0f%%\n", "total", 100*total)
	return b.String(), nil
}
