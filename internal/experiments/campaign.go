package experiments

import (
	"fmt"
	"strings"

	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/model"
	"realhf/internal/realloc"
	"realhf/internal/runtime"
	"realhf/internal/search"
)

// DriftRow is one iteration of the generation-length-drift campaign: the
// same workload executed under the frozen iteration-0 plan and under the
// replanning schedule.
type DriftRow struct {
	Iter   int
	GenLen int
	// FrozenV and ReplanV are the iteration makespans (virtual seconds) of
	// the two campaigns; SwitchCost is the §5-priced parameter-reallocation
	// charge the replanning campaign paid before this iteration (0 when the
	// incumbent plan was kept).
	FrozenV, ReplanV, SwitchCost float64
	// Switched reports the replanning campaign adopted a new plan.
	Switched bool
}

// DriftSummary totals a campaign comparison.
type DriftSummary struct {
	// FrozenTotalV and ReplanTotalV are whole-campaign virtual times; the
	// replanning total includes every switch charge.
	FrozenTotalV, ReplanTotalV float64
	// SwitchCostV is the reallocation charge alone; Switches counts adopted
	// plan changes.
	SwitchCostV float64
	Switches    int
	// Gain is (frozen − replan) / frozen.
	Gain float64
}

// driftGenLen is the §8 ramp the ablation executes: generation length
// halving from 1024 to 128 over the campaign (responses shortening as the
// policy sharpens). The iteration-0 plan stays memory-feasible throughout —
// pressure only decreases — but grows increasingly over-conservative, which
// is exactly the staleness replanning recovers.
func driftGenLen(iter int) int {
	g := 1024 >> iter
	if g < 128 {
		g = 128
	}
	return g
}

// AblationGenLenDrift quantifies the paper's §8 limitation from the
// system side: a plan chosen once is frozen forever even as the workload
// drifts. Both campaigns execute the same generation-length ramp over one
// persistent runtime.WorkerPool (reset between iterations, never rebuilt):
//
//   - frozen: the iteration-0 plan (searched at the initial length under
//     the overlapped cost semantics) executes every iteration;
//   - replanning: each time the scheduled length changes, the plan is
//     re-searched — warm-started from the incumbent re-attached to the new
//     workload, so the estimate never regresses — and adopted only when the
//     predicted gain covers the realloc.SwitchCost charged between
//     iterations.
//
// The returned summary includes the switch charges in the replanning total,
// so a positive Gain means replanning wins even after paying for every
// parameter move — the same accounting the public Trainer session applies
// and BenchmarkTrainerReplan gates in CI.
func AblationGenLenDrift(nodes, steps, iters int, seed int64) ([]DriftRow, DriftSummary, string, error) {
	base := Setting{
		Nodes: nodes, Actor: model.LLaMA7B, Critic: model.LLaMA7B,
		Batch: 128 * nodes, PromptLen: 256, GenLen: driftGenLen(0),
		MiniBatches: 8, Algo: "ppo", Iterations: 1,
	}
	pr0, err := NewProblem(base)
	if err != nil {
		return nil, DriftSummary{}, "", err
	}
	res0, err := pr0.SearchPlanFor(true, steps, seed)
	if err != nil {
		return nil, DriftSummary{}, "", err
	}
	frozen := res0.Plan

	pool := runtime.NewWorkerPool(pr0.Cluster.NumGPUs(), pr0.Cluster.GPU.MemoryBytes)
	defer pool.Close()
	runIteration := func(p *core.Plan) (*runtime.Report, error) {
		if err := pool.Reset(estimator.StaticPerGPU(p)); err != nil {
			return nil, err
		}
		return pool.Run(p, runtime.Options{UseCUDAGraph: true, OverlapComm: true})
	}

	incumbent := frozen
	var rows []DriftRow
	var sum DriftSummary
	for iter := 0; iter < iters; iter++ {
		realized := base
		realized.GenLen = driftGenLen(iter)
		pr, err := NewProblem(realized)
		if err != nil {
			return nil, DriftSummary{}, "", err
		}
		// Overlapped cost semantics throughout: the campaigns execute on the
		// overlapped engine, so estimates must predict that schedule.
		est := *pr.Est
		est.OverlapComm = true

		reattach := func(src *core.Plan) (*core.Plan, *estimator.Result, error) {
			p := pr.EmptyPlan()
			for name, a := range src.Assign {
				p.Assign[name] = a
			}
			if err := p.Validate(); err != nil {
				return nil, nil, err
			}
			r, err := est.Evaluate(p)
			return p, r, err
		}

		frozenPlan, _, err := reattach(frozen)
		if err != nil {
			return nil, DriftSummary{}, "", err
		}
		frozenRep, err := runIteration(frozenPlan)
		if err != nil {
			return nil, DriftSummary{}, "", err
		}

		row := DriftRow{Iter: iter, GenLen: realized.GenLen, FrozenV: frozenRep.MakespanV}
		stalePlan, staleRes, err := reattach(incumbent)
		if err != nil {
			return nil, DriftSummary{}, "", err
		}
		if iter > 0 && realized.GenLen != driftGenLen(iter-1) {
			fresh, err := pr.SolveFor(true, "mcmc", search.Options{
				MaxSteps: steps, Seed: seed,
				SeedCandidates: append(pr.WarmStarts(), stalePlan),
			})
			if err != nil {
				return nil, DriftSummary{}, "", err
			}
			cost := realloc.SwitchCost(stalePlan, fresh.Plan, pr.Cluster)
			if fresh.Plan.Fingerprint() != stalePlan.Fingerprint() &&
				fresh.Cost+cost < staleRes.Cost {
				incumbent, stalePlan = fresh.Plan, fresh.Plan
				row.SwitchCost, row.Switched = cost, true
				sum.SwitchCostV += cost
				sum.Switches++
			}
		}
		replanRep, err := runIteration(stalePlan)
		if err != nil {
			return nil, DriftSummary{}, "", err
		}
		row.ReplanV = replanRep.MakespanV
		sum.FrozenTotalV += row.FrozenV
		sum.ReplanTotalV += row.ReplanV + row.SwitchCost
		rows = append(rows, row)
	}
	if sum.FrozenTotalV > 0 {
		sum.Gain = (sum.FrozenTotalV - sum.ReplanTotalV) / sum.FrozenTotalV
	}

	var b strings.Builder
	b.WriteString(header("Ablation: GenLen drift — frozen plan vs replanning campaign (switch costs charged)"))
	fmt.Fprintf(&b, "%-6s %8s %11s %11s %11s %9s\n",
		"Iter", "GenLen", "Frozen(s)", "Replan(s)", "Switch(s)", "Switched")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %8d %11.2f %11.2f %11.3f %9v\n",
			r.Iter, r.GenLen, r.FrozenV, r.ReplanV, r.SwitchCost, r.Switched)
	}
	fmt.Fprintf(&b, "%-6s %8s %11.2f %11.2f %11.3f %8.1f%%\n",
		"total", "", sum.FrozenTotalV, sum.ReplanTotalV, sum.SwitchCostV, 100*sum.Gain)
	b.WriteString("\nReplanning pays for its parameter moves and still finishes the campaign\n")
	b.WriteString("sooner; the frozen plan leaves the short-generation iterations on a\n")
	b.WriteString("layout sized for the long ones (the §8 staleness the Trainer closes).\n")
	return rows, sum, b.String(), nil
}
