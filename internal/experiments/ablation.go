package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
	"realhf/internal/runtime"
	"realhf/internal/search"
)

// AblationRow compares the full planner against a constrained variant.
type AblationRow struct {
	Setting          string
	FullPFLOPs       float64
	ConstraintPFLOPs float64
	Advantage        float64 // (full-constrained)/constrained
}

// NoReallocSearch is the ablation the paper's Fig. 2 motivates but does not
// isolate: the best plan findable when every call of a model must use the
// model's single (mesh, strategy) assignment — i.e. parallelization can be
// tuned per model, calls of different models can run concurrently, but
// parameters are never reallocated between layouts. This is exactly the
// space prior asymmetric systems explore. The search is a role-level
// Metropolis–Hastings walk reusing the estimator.
func NoReallocSearch(pr *Problem, steps int, seed int64) (*core.Plan, float64, error) {
	// Role-level candidate sets: the intersection of each role's calls'
	// candidate spaces. We approximate by drawing from the first call's
	// space and validating the joint plan (invalid draws are rejected by
	// the estimator returning an error or by plan validation).
	roleCalls := map[string][]string{}
	for _, n := range pr.Graph.Nodes {
		role := string(n.Role)
		found := false
		for _, name := range roleCalls[role] {
			if name == n.Name {
				found = true
			}
		}
		if !found {
			roleCalls[role] = append(roleCalls[role], n.Name)
		}
	}

	heur, err := pr.HeuristicPlan()
	if err != nil {
		return nil, 0, err
	}
	// The symmetric heuristic is itself realloc-free (one assignment
	// everywhere), so it seeds the chain.
	cur := heur.Clone()
	curRes, err := pr.Est.Evaluate(cur)
	if err != nil {
		return nil, 0, err
	}
	best, bestCost := cur.Clone(), curRes.Cost
	rng := rand.New(rand.NewSource(seed))

	// Build per-role candidate lists from mesh×strategy enumeration via the
	// existing per-call candidate machinery: use the heuristic plan's graph
	// and collect candidates of one representative call per role, then
	// filter to assignments valid for every call of that role.
	roles := make([]string, 0, len(roleCalls))
	for r := range roleCalls {
		roles = append(roles, r)
	}
	// Deterministic order.
	for i := 1; i < len(roles); i++ {
		for j := i; j > 0 && roles[j] < roles[j-1]; j-- {
			roles[j], roles[j-1] = roles[j-1], roles[j]
		}
	}

	cands := map[string][]core.Assignment{}
	for _, role := range roles {
		list := RoleCandidates(pr, role)
		if len(list) == 0 {
			return nil, 0, fmt.Errorf("experiments: role %q has no shared assignment", role)
		}
		cands[role] = list
	}

	beta := 10 / math.Max(curRes.Cost, 1e-9)
	curCost := curRes.Cost
	for step := 0; step < steps; step++ {
		role := roles[rng.Intn(len(roles))]
		next := cur.Clone()
		a := cands[role][rng.Intn(len(cands[role]))]
		for _, name := range roleCalls[role] {
			next.Assign[name] = a
		}
		if err := next.Validate(); err != nil {
			continue
		}
		res, err := pr.Est.Evaluate(next)
		if err != nil {
			continue
		}
		if res.Cost <= curCost || rng.Float64() < math.Exp(-beta*(res.Cost-curCost)) {
			cur, curCost = next, res.Cost
			if res.Cost < bestCost {
				best, bestCost = next, res.Cost
				beta = 10 / math.Max(bestCost, 1e-9)
			}
		}
	}
	return best, bestCost, nil
}

// RoleCandidates enumerates assignments legal for every call of a role: an
// assignment qualifies if the plan still validates with it applied to all of
// the role's calls.
func RoleCandidates(pr *Problem, role string) []core.Assignment {
	base, err := pr.HeuristicPlan()
	if err != nil {
		return nil
	}
	var names []string
	seen := map[string]bool{}
	for _, n := range pr.Graph.Nodes {
		if string(n.Role) == role && !seen[n.Name] {
			seen[n.Name] = true
			names = append(names, n.Name)
		}
	}
	var out []core.Assignment
	for _, a := range EnumerateAssignments(pr.Cluster) {
		trial := base.Clone()
		for _, name := range names {
			trial.Assign[name] = a
		}
		if trial.Validate() == nil {
			out = append(out, a)
		}
	}
	return out
}

// EnumerateAssignments lists every legal (mesh, strategy, micro-batch)
// assignment of a cluster, independent of workload.
func EnumerateAssignments(hw hardware.Cluster) []core.Assignment {
	var out []core.Assignment
	for _, m := range mesh.Enumerate(hw) {
		maxTP := hw.GPUsPerNode
		if m.Count < maxTP {
			maxTP = m.Count
		}
		for _, st := range parallel.Enumerate(m.Count, maxTP, 64) {
			for _, mb := range []int{1, 2, 4, 8, 16} {
				out = append(out, core.Assignment{Mesh: m, Strategy: st.WithMicroBatches(mb)})
			}
		}
	}
	return out
}

// AblationNoRealloc quantifies parameter reallocation's contribution: the
// full search against the best realloc-free plan, across two representative
// settings.
func AblationNoRealloc(nodes, steps int) ([]AblationRow, string, error) {
	settings := []Setting{
		PaperSetting(nodes, model.LLaMA7B, model.LLaMA7B),
		PaperSetting(nodes, model.LLaMA13B, model.LLaMA7B),
	}
	var rows []AblationRow
	for i, s := range settings {
		pr, err := NewProblem(s)
		if err != nil {
			return nil, "", err
		}
		full, err := pr.SearchPlan(steps, int64(10+i))
		if err != nil {
			return nil, "", err
		}
		_, fullTP, err := pr.Measure(full.Plan)
		if err != nil {
			return nil, "", err
		}
		fixed, _, err := NoReallocSearch(pr, steps, int64(20+i))
		if err != nil {
			return nil, "", err
		}
		_, fixedTP, err := pr.Measure(fixed)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, AblationRow{
			Setting:          fmt.Sprintf("%s+%s/%dgpu", s.Actor.Name, s.Critic.Name, s.Nodes*8),
			FullPFLOPs:       fullTP,
			ConstraintPFLOPs: fixedTP,
			Advantage:        (fullTP - fixedTP) / fixedTP,
		})
	}
	var b strings.Builder
	b.WriteString(header("Ablation: parameter reallocation (full search vs one-layout-per-model)"))
	fmt.Fprintf(&b, "%-16s %12s %14s %10s\n", "Setting", "ReaL PF/s", "NoRealloc PF/s", "Advantage")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12.2f %14.2f %+9.0f%%\n",
			r.Setting, r.FullPFLOPs, r.ConstraintPFLOPs, 100*r.Advantage)
	}
	return rows, b.String(), nil
}

// OverlapRow is one row of the ±overlap runtime ablation.
type OverlapRow struct {
	Setting string
	Plan    string // "searched" or "split"
	// SerialE2E and OverlapE2E are the end-to-end virtual times with the
	// runtime's communication overlap off and on.
	SerialE2E, OverlapE2E float64
	// CommTimeV is the total reallocation/transfer/offload time spent.
	CommTimeV float64
	// HiddenFrac is the fraction of CommTimeV the overlapped engine hid
	// behind computation: (serial - overlap) / comm.
	HiddenFrac float64
}

// AblationOverlap quantifies the runtime engine's communication overlap
// (§6): for each setting it executes both a searched plan and the
// reallocation-heavy split placement with the comm stream disabled and
// enabled. The overlapped makespan can never exceed the serialized one, and
// on reallocation-heavy plans it is strictly lower — the Table-6-style
// ±overlap comparison.
func AblationOverlap(nodes, steps int) ([]OverlapRow, string, error) {
	settings := []Setting{
		PaperSetting(nodes, model.LLaMA7B, model.LLaMA7B),
		PaperSetting(nodes, model.LLaMA13B, model.LLaMA7B),
	}
	var rows []OverlapRow
	for i, s := range settings {
		pr, err := NewProblem(s)
		if err != nil {
			return nil, "", err
		}
		searched, err := pr.SearchPlan(steps, int64(30+i))
		if err != nil {
			return nil, "", err
		}
		split, err := splitPlan(pr)
		if err != nil {
			return nil, "", err
		}
		// Re-parallelize generation on its half so the split plan carries
		// real parameter-reallocation traffic (the role-uniform split only
		// moves activations).
		if a, ok := split.Assign["ActorGen"]; ok {
			gen := a
			gen.Strategy = parallel.Strategy{
				DP: a.Mesh.NumGPUs() / 2, TP: 2, PP: 1, MicroBatches: 1,
			}
			trial := split.Clone()
			trial.Assign["ActorGen"] = gen
			if trial.Validate() == nil {
				split = trial
			}
		}
		for _, cand := range []struct {
			name string
			plan *core.Plan
		}{{"searched", searched.Plan}, {"split", split}} {
			serial, err := runtime.RunDefault(cand.plan)
			if err != nil {
				return nil, "", err
			}
			over, err := runtime.RunOverlapped(cand.plan)
			if err != nil {
				return nil, "", err
			}
			row := OverlapRow{
				Setting:    fmt.Sprintf("%s+%s/%dgpu", s.Actor.Name, s.Critic.Name, s.Nodes*8),
				Plan:       cand.name,
				SerialE2E:  serial.MakespanV,
				OverlapE2E: over.MakespanV,
				CommTimeV:  serial.CommTimeV,
			}
			if row.CommTimeV > 0 {
				row.HiddenFrac = (row.SerialE2E - row.OverlapE2E) / row.CommTimeV
			}
			rows = append(rows, row)
		}
	}
	var b strings.Builder
	b.WriteString(header("Ablation: runtime communication overlap (±OverlapComm)"))
	fmt.Fprintf(&b, "%-16s %-9s %10s %10s %9s %8s\n",
		"Setting", "Plan", "Serial(s)", "Overlap(s)", "Comm(s)", "Hidden")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-9s %10.1f %10.1f %9.1f %7.0f%%\n",
			r.Setting, r.Plan, r.SerialE2E, r.OverlapE2E, r.CommTimeV, 100*r.HiddenFrac)
	}
	return rows, b.String(), nil
}

// splitPlan assigns actor-side calls (actor + ref) to the first half of the
// cluster and critic-side calls (critic + reward) to the second half — the
// layout whose cross-iteration overlap the concatenated graph can exploit:
// CriticTrain of iteration t runs concurrently with ActorGen of t+1.
func splitPlan(pr *Problem) (*core.Plan, error) {
	hw := pr.Cluster
	half := hw.NumGPUs() / 2
	m0, err := mesh.New(0, half, hw.GPUsPerNode)
	if err != nil {
		return nil, err
	}
	m1, err := mesh.New(half, hw.NumGPUs()-half, hw.GPUsPerNode)
	if err != nil {
		return nil, err
	}
	p := pr.EmptyPlan()
	for _, n := range pr.Graph.Nodes {
		if _, ok := p.Assign[n.Name]; ok {
			continue
		}
		m := m1
		if n.Role == "actor" || n.Role == "ref" {
			m = m0
		}
		tp := hw.GPUsPerNode
		if tp > m.NumGPUs() {
			tp = m.NumGPUs()
		}
		st := parallel.Strategy{DP: m.NumGPUs() / tp, TP: tp, PP: 1, MicroBatches: 4}
		p.Assign[n.Name] = core.Assignment{Mesh: m, Strategy: st}
	}
	return p, p.Validate()
}

// OverlapSearchRow is one row of the search-side ±overlap ablation: the
// same workload planned under serialized vs overlapped cost semantics, with
// both chosen plans executed on the overlapped runtime.
type OverlapSearchRow struct {
	Setting string
	// SerialSearchedE2E and OverlapSearchedE2E are the overlapped-runtime
	// makespans of the plan searched under serialized costs and of the plan
	// searched under overlapped costs.
	SerialSearchedE2E, OverlapSearchedE2E float64
	// SamePlan reports that both searches chose the identical plan — the
	// knob cannot help when the serialized optimum already overlaps best.
	SamePlan bool
	// Gain is (serial-searched − overlap-searched) / serial-searched.
	Gain float64
}

// AblationOverlapSearch quantifies the objective mismatch the
// PlanForOverlap knob closes: since PR 2 the runtime executes overlapped by
// default, yet a serialized-cost search minimizes the wrong makespan. For
// each setting it searches the plan space twice — once under each cost
// semantics, same seed and step budget — and executes both winners on the
// overlapped runtime. The overlap-aware solve warm-starts from the
// serialized winner (on top of the shared baseline seeds), so its
// overlapped-cost *estimate* can only match or beat the serialized
// winner's; on the paper workloads the overlapped runtime agrees.
func AblationOverlapSearch(nodes, steps int) ([]OverlapSearchRow, string, error) {
	settings := []Setting{
		PaperSetting(nodes, model.LLaMA7B, model.LLaMA7B),
		PaperSetting(nodes, model.LLaMA13B, model.LLaMA7B),
	}
	var rows []OverlapSearchRow
	for i, s := range settings {
		pr, err := NewProblem(s)
		if err != nil {
			return nil, "", err
		}
		seed := int64(50 + i)
		serial, err := pr.SearchPlanFor(false, steps, seed)
		if err != nil {
			return nil, "", err
		}
		over, err := pr.SearchPlanOverlapWarm(steps, seed, serial.Plan)
		if err != nil {
			return nil, "", err
		}
		sRep, err := runtime.RunOverlapped(serial.Plan)
		if err != nil {
			return nil, "", err
		}
		oRep, err := runtime.RunOverlapped(over.Plan)
		if err != nil {
			return nil, "", err
		}
		row := OverlapSearchRow{
			Setting:            fmt.Sprintf("%s+%s/%dgpu", s.Actor.Name, s.Critic.Name, s.Nodes*8),
			SerialSearchedE2E:  sRep.MakespanV,
			OverlapSearchedE2E: oRep.MakespanV,
			SamePlan:           serial.Plan.Fingerprint() == over.Plan.Fingerprint(),
		}
		if row.SerialSearchedE2E > 0 {
			row.Gain = (row.SerialSearchedE2E - row.OverlapSearchedE2E) / row.SerialSearchedE2E
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString(header("Ablation: overlap-aware search (plans searched under serialized vs overlapped costs, both run overlapped)"))
	fmt.Fprintf(&b, "%-16s %16s %16s %8s %9s\n",
		"Setting", "SerialSearch(s)", "OverlapSearch(s)", "Gain", "SamePlan")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %16.1f %16.1f %+7.1f%% %9v\n",
			r.Setting, r.SerialSearchedE2E, r.OverlapSearchedE2E, 100*r.Gain, r.SamePlan)
	}
	return rows, b.String(), nil
}

// OffloadSetting is the memory-constrained single-node workload of the
// offload ablation: 7B trainable actor/critic plus 34B frozen ref/reward on
// 1 node × 4 GPUs (320 GB HBM total). The training state alone costs
// ~56 GB/GPU; keeping the frozen resting copies on-device adds ~34 GB/GPU
// more, so every residency-fixed plan overflows the 80 GB devices — only a
// plan that parks the frozen weights in host memory can be feasible.
func OffloadSetting() Setting {
	return Setting{
		Nodes: 1, Actor: model.LLaMA7B, Critic: model.LLaMA7B,
		Batch: 64, PromptLen: 256, GenLen: 256,
		MiniBatches: 8, Algo: "ppo", Iterations: 1,
	}
}

// OffloadProblem materializes OffloadSetting with its non-standard cast
// (34B frozen ref/reward) and cluster shape (4 GPUs on the single node).
// Setting cannot express either, so the problem is assembled directly.
func OffloadProblem() (*Problem, error) {
	s := OffloadSetting()
	hw := hardware.DefaultCluster(1)
	hw.GPUsPerNode = 4
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	models := core.ModelsFor(g, s.Actor, s.Critic)
	ref := models["ref"]
	ref.Cfg = model.LLaMA34B
	models["ref"] = ref
	rw := models["reward"]
	rw.Cfg = model.LLaMA34B
	models["reward"] = rw
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range models {
		costers[role] = gpumodel.NewOracle(hw, ms.Cfg)
	}
	return &Problem{
		Setting: s, Cluster: hw, Graph: g, Models: models,
		Est: estimator.New(hw, costers),
	}, nil
}

// OffloadRow summarizes the offload ablation: the default (residency-fixed)
// search optimum vs the offload-aware one on the memory-constrained
// workload.
type OffloadRow struct {
	Setting string
	// DefaultMaxMemGB/OffloadMaxMemGB are the peak per-GPU demands of the
	// two chosen plans; DefaultOOM/OffloadOOM whether each fits HBM.
	DefaultMaxMemGB, OffloadMaxMemGB float64
	DefaultOOM, OffloadOOM           bool
	// OffloadedCalls counts calls the offload-aware plan parks in host
	// memory between uses.
	OffloadedCalls int
	// E2E is the offload-aware plan's makespan on the simulated runtime.
	E2E float64
}

// AblationOffload demonstrates the searched offload dimension end to end:
// on the OffloadProblem workload the default search can only return an
// infeasible optimum (every residency-fixed plan overflows HBM), while the
// offload-aware search — same seed, same step budget — finds a feasible
// plan and the runtime executes it. Both solves are step-bounded and
// seeded, so the report is byte-reproducible.
func AblationOffload(steps int) (OffloadRow, string, error) {
	pr, err := OffloadProblem()
	if err != nil {
		return OffloadRow{}, "", err
	}
	const seed = 60
	def, err := pr.SolveWith("mcmc", search.Options{MaxSteps: steps, Seed: seed})
	if err != nil {
		return OffloadRow{}, "", err
	}
	off, err := pr.SolveWith("mcmc", search.Options{MaxSteps: steps, Seed: seed, OffloadSearch: true})
	if err != nil {
		return OffloadRow{}, "", err
	}
	row := OffloadRow{
		Setting: fmt.Sprintf("%s+%s/ref+rw %s/%dgpu",
			pr.Setting.Actor.Name, pr.Setting.Critic.Name, pr.Models["ref"].Cfg.Name, pr.Cluster.NumGPUs()),
		DefaultMaxMemGB: gb(def.Estimate.MaxMem),
		OffloadMaxMemGB: gb(off.Estimate.MaxMem),
		DefaultOOM:      def.Estimate.OOM,
		OffloadOOM:      off.Estimate.OOM,
	}
	for _, a := range off.Plan.Assign {
		if a.Offload {
			row.OffloadedCalls++
		}
	}
	if !off.Estimate.OOM {
		rep, _, err := pr.Measure(off.Plan)
		if err != nil {
			return OffloadRow{}, "", err
		}
		row.E2E = rep.MakespanV
	}
	var b strings.Builder
	b.WriteString(header("Ablation: offload as a searched plan dimension (memory-constrained 4-GPU node)"))
	fmt.Fprintf(&b, "%-28s %14s %6s %14s %6s %9s %8s\n",
		"Setting", "DefaultMem(GB)", "OOM", "OffloadMem(GB)", "OOM", "Offloaded", "E2E(s)")
	fmt.Fprintf(&b, "%-28s %14.1f %6v %14.1f %6v %9d %8.1f\n",
		row.Setting, row.DefaultMaxMemGB, row.DefaultOOM,
		row.OffloadMaxMemGB, row.OffloadOOM, row.OffloadedCalls, row.E2E)
	return row, b.String(), nil
}

// AblationCrossIter quantifies the §4 remark that concatenating iterations
// in one dataflow graph lets independent work overlap across iteration
// boundaries: with actor and critic resources split, CriticTrain of
// iteration t overlaps ActorGen of iteration t+1, so a 2-iteration graph
// needs less than 2× the single-iteration time under the same plan.
func AblationCrossIter(s Setting, steps int) (single, double float64, report string, err error) {
	_ = steps
	s1 := s
	s1.Iterations = 1
	pr1, err := NewProblem(s1)
	if err != nil {
		return 0, 0, "", err
	}
	plan1, err := splitPlan(pr1)
	if err != nil {
		return 0, 0, "", err
	}
	rep1, err := runtime.RunDefault(plan1)
	if err != nil {
		return 0, 0, "", err
	}

	s2 := s
	s2.Iterations = 2
	pr2, err := NewProblem(s2)
	if err != nil {
		return 0, 0, "", err
	}
	plan2, err := splitPlan(pr2)
	if err != nil {
		return 0, 0, "", err
	}
	rep2, err := runtime.RunDefault(plan2)
	if err != nil {
		return 0, 0, "", err
	}

	single, double = rep1.MakespanV, rep2.MakespanV
	var b strings.Builder
	b.WriteString(header("Ablation: cross-iteration overlap on the concatenated graph"))
	fmt.Fprintf(&b, "1 iteration:   %8.1fs\n", single)
	fmt.Fprintf(&b, "2 iterations:  %8.1fs (%.2fx; overlap saves %.1fs)\n",
		double, double/single, 2*single-double)
	return single, double, b.String(), nil
}
