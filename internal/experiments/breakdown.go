package experiments

import (
	"fmt"
	"strings"

	"realhf/internal/model"
	"realhf/internal/parallel"
	"realhf/internal/trace"
)

// Fig10 regenerates the simplified kernel traces: a 70B decoding layer and a
// 70B training-forward layer, each under ReaL's preferred strategy and the
// heuristic's (paper Fig. 10).
func Fig10(nodes int) string {
	hw := PaperSetting(nodes, model.LLaMA70B, model.LLaMA7B).Cluster()
	var b strings.Builder
	b.WriteString(header("Figure 10: simplified kernel traces, 70B layer"))

	b.WriteString("Decoding phase (batch 2 per rank, position 2048):\n")
	low := trace.DecodeLayerTrace(hw, model.LLaMA70B, parallel.New(4, 2, 16), 2, 2048, true)
	high := trace.DecodeLayerTrace(hw, model.LLaMA70B, parallel.New(4, 8, 4), 2, 2048, true)
	fmt.Fprintf(&b, "  ReaL      TP=2 PP=16 : %s  (layer total %.0fus)\n", low, low.Total()*1e6)
	fmt.Fprintf(&b, "  Heuristic TP=8 PP=4  : %s  (layer total %.0fus)\n", high, high.Total()*1e6)

	b.WriteString("Training forward phase (16k tokens per micro-batch):\n")
	lowT := trace.TrainLayerTrace(hw, model.LLaMA70B, parallel.New(16, 2, 4), 16384, 1024)
	highT := trace.TrainLayerTrace(hw, model.LLaMA70B, parallel.New(4, 8, 4), 16384, 1024)
	fmt.Fprintf(&b, "  ReaL      TP=2 PP=4  : %s  (layer total %.1fms)\n", lowT, lowT.Total()*1e3)
	fmt.Fprintf(&b, "  Heuristic TP=8 PP=4  : %s  (layer total %.1fms)\n", highT, highT.Total()*1e3)
	return b.String()
}

// Fig11Row is one pair of stacked bars of the GPU-time decomposition.
type Fig11Row struct {
	Combo string
	Real  trace.Fractions
	Heur  trace.Fractions
}

// Fig11 regenerates the CUDA-kernel time statistics of an RLHF iteration for
// ReaL vs the heuristic across size combinations (paper Fig. 11): ReaL
// raises the compute fraction by cutting collective/P2P overhead and idle
// time.
func Fig11(combos [][2]model.Config, nodes, steps int) ([]Fig11Row, string, error) {
	var rows []Fig11Row
	for i, combo := range combos {
		s := PaperSetting(nodes, combo[0], combo[1])
		pr, err := NewProblem(s)
		if err != nil {
			return nil, "", err
		}
		heur, err := pr.HeuristicPlan()
		if err != nil {
			return nil, "", err
		}
		hres, err := pr.Est.Evaluate(heur)
		if err != nil {
			return nil, "", err
		}
		hf, err := trace.PlanFractions(pr.Est, heur, hres)
		if err != nil {
			return nil, "", err
		}
		res, err := pr.SearchPlan(steps, int64(100+i))
		if err != nil {
			return nil, "", err
		}
		rres, err := pr.Est.Evaluate(res.Plan)
		if err != nil {
			return nil, "", err
		}
		rf, err := trace.PlanFractions(pr.Est, res.Plan, rres)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Fig11Row{Combo: combo[0].Name + "+" + combo[1].Name, Real: rf, Heur: hf})
	}
	var b strings.Builder
	b.WriteString(header("Figure 11: GPU-time breakdown, ReaL vs heuristic"))
	fmt.Fprintf(&b, "%-12s %-44s %-44s\n", "Combo", "ReaL", "Heuristic")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-44s %-44s\n", r.Combo, r.Real, r.Heur)
	}
	return rows, b.String(), nil
}
