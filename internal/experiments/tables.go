package experiments

import (
	"fmt"
	"strings"

	"realhf/internal/core"
	"realhf/internal/model"
	"realhf/internal/runtime"
)

// Table1 renders the model-configuration table (paper Table 1), with the
// parameter counts computed — not transcribed — from the architecture.
func Table1() string {
	var b strings.Builder
	b.WriteString(header("Table 1: LLaMA-3 model configurations"))
	fmt.Fprintf(&b, "%-24s %12s %12s %12s %12s\n", "Identifier", "7B", "13B", "34B", "70B")
	rows := []struct {
		name string
		get  func(model.Config) int64
	}{
		{"HiddenSize", func(c model.Config) int64 { return int64(c.HiddenSize) }},
		{"IntermediateSize", func(c model.Config) int64 { return int64(c.IntermediateSize) }},
		{"NumLayers", func(c model.Config) int64 { return int64(c.NumLayers) }},
		{"NumAttentionHeads", func(c model.Config) int64 { return int64(c.NumAttentionHeads) }},
		{"NumKVHeads", func(c model.Config) int64 { return int64(c.NumKVHeads) }},
		{"VocabSize", func(c model.Config) int64 { return int64(c.VocabSize) }},
		{"MaxPositionEmbeddings", func(c model.Config) int64 { return int64(c.MaxPositionEmbeddings) }},
		{"TotalParamCount", model.Config.Params},
		{"ParamCount w/o OutEmbd", model.Config.ParamsNoOutputEmbedding},
	}
	all := model.All()
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s", r.name)
		for _, cfg := range all {
			fmt.Fprintf(&b, " %12d", r.get(cfg))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BreakdownCase is one column of Table 6: a setting with its searched and
// heuristic plans and their executed wall times.
type BreakdownCase struct {
	Name           string
	Searched       *core.Plan
	Heuristic      *core.Plan
	SearchedTimes  map[string]float64 // ±CUDAGraph call times
	HeuristicTimes map[string]float64
	SearchedE2E    [2]float64 // [with CUDAGraph, without]
	HeuristicE2E   [2]float64
	SearchedGen    [2]float64
	HeuristicGen   [2]float64
	// SearchedE2EOverlap / HeuristicE2EOverlap are the end-to-end times
	// with CUDA graphs on and the runtime's communication overlap enabled
	// (the ±overlap rows of the Table 6 analogue).
	SearchedE2EOverlap  float64
	HeuristicE2EOverlap float64
	// OverlapSearched is the plan found when the search itself scores
	// candidates under the overlapped cost semantics (same seed and step
	// budget as Searched, warm-started from it), and OverlapSearchedE2E its
	// overlapped-runtime end-to-end time — the search-side ±overlap row.
	OverlapSearched    *core.Plan
	OverlapSearchedE2E float64
}

// RunBreakdownCase searches and measures one Table 6 column.
func RunBreakdownCase(name string, s Setting, steps int, seed int64) (*BreakdownCase, error) {
	pr, err := NewProblem(s)
	if err != nil {
		return nil, err
	}
	res, err := pr.SearchPlan(steps, seed)
	if err != nil {
		return nil, err
	}
	heur, err := pr.HeuristicPlan()
	if err != nil {
		return nil, err
	}
	bc := &BreakdownCase{Name: name, Searched: res.Plan, Heuristic: heur}
	for i, graph := range []bool{true, false} {
		sRep, err := runtime.Run(res.Plan, runtime.Options{UseCUDAGraph: graph})
		if err != nil {
			return nil, err
		}
		hRep, err := runtime.Run(heur, runtime.Options{UseCUDAGraph: graph})
		if err != nil {
			return nil, err
		}
		bc.SearchedE2E[i] = sRep.MakespanV
		bc.HeuristicE2E[i] = hRep.MakespanV
		bc.SearchedGen[i] = sRep.CallTimes["ActorGen"]
		bc.HeuristicGen[i] = hRep.CallTimes["ActorGen"]
		if graph {
			bc.SearchedTimes = sRep.CallTimes
			bc.HeuristicTimes = hRep.CallTimes
		}
	}
	sOv, err := runtime.RunOverlapped(res.Plan)
	if err != nil {
		return nil, err
	}
	hOv, err := runtime.RunOverlapped(heur)
	if err != nil {
		return nil, err
	}
	bc.SearchedE2EOverlap = sOv.MakespanV
	bc.HeuristicE2EOverlap = hOv.MakespanV
	resOv, err := pr.SearchPlanOverlapWarm(steps, seed, res.Plan)
	if err != nil {
		return nil, err
	}
	oOv, err := runtime.RunOverlapped(resOv.Plan)
	if err != nil {
		return nil, err
	}
	bc.OverlapSearched = resOv.Plan
	bc.OverlapSearchedE2E = oOv.MakespanV
	return bc, nil
}

// Tables2to6 regenerates the plan listings of Tables 2–5 and the wall-time
// breakdown of Table 6 for the paper's two representative cases
// (7B actor + 7B critic on 2 nodes; 70B actor + 7B critic on 16 nodes).
// quick shrinks the large case to 4 nodes with a 34B actor so tests finish
// fast; the CLI uses quick=false.
func Tables2to6(steps int, quick bool) (string, []*BreakdownCase, error) {
	small := PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	bigNodes, bigActor := 16, model.LLaMA70B
	if quick {
		bigNodes, bigActor = 4, model.LLaMA34B
	}
	big := PaperSetting(bigNodes, bigActor, model.LLaMA7B)

	smallCase, err := RunBreakdownCase(fmt.Sprintf("%s+%s", small.Actor.Name, small.Critic.Name), small, steps, 1)
	if err != nil {
		return "", nil, err
	}
	bigCase, err := RunBreakdownCase(fmt.Sprintf("%s+%s", big.Actor.Name, big.Critic.Name), big, steps, 2)
	if err != nil {
		return "", nil, err
	}

	var b strings.Builder
	cases := []*BreakdownCase{bigCase, smallCase}
	tableNo := 2
	for _, c := range cases {
		b.WriteString(header(fmt.Sprintf("Table %d: %s searched plan", tableNo, c.Name)))
		b.WriteString(c.Searched.Table(c.SearchedTimes))
		b.WriteString("\n")
		tableNo++
		b.WriteString(header(fmt.Sprintf("Table %d: %s heuristic plan", tableNo, c.Name)))
		b.WriteString(c.Heuristic.Table(c.HeuristicTimes))
		b.WriteString("\n")
		tableNo++
	}
	b.WriteString(header("Table 6: RLHF wall-time breakdown (seconds)"))
	fmt.Fprintf(&b, "%-28s", "Time (s)")
	for _, c := range cases {
		fmt.Fprintf(&b, " %10s %10s", c.Name+" ReaL", "Heuristic")
	}
	b.WriteString("\n")
	callOrder := []string{"ActorGen", "RewInf", "RefInf", "CriticInf", "CriticTrain", "ActorTrain"}
	for _, call := range callOrder {
		fmt.Fprintf(&b, "%-28s", call)
		for _, c := range cases {
			fmt.Fprintf(&b, " %10.1f %10.1f", c.SearchedTimes[call], c.HeuristicTimes[call])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-28s", "ActorGen (w/o CUDAGraph)")
	for _, c := range cases {
		fmt.Fprintf(&b, " %10.1f %10.1f", c.SearchedGen[1], c.HeuristicGen[1])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-28s", "End2End (with CUDAGraph)")
	for _, c := range cases {
		fmt.Fprintf(&b, " %10.1f %10.1f", c.SearchedE2E[0], c.HeuristicE2E[0])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-28s", "End2End (w/o CUDAGraph)")
	for _, c := range cases {
		fmt.Fprintf(&b, " %10.1f %10.1f", c.SearchedE2E[1], c.HeuristicE2E[1])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-28s", "End2End (+OverlapComm)")
	for _, c := range cases {
		fmt.Fprintf(&b, " %10.1f %10.1f", c.SearchedE2EOverlap, c.HeuristicE2EOverlap)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-28s", "End2End (+OverlapSearch)")
	for _, c := range cases {
		// Searched under overlapped costs; the heuristic column repeats the
		// overlapped heuristic run (no search to make overlap-aware).
		fmt.Fprintf(&b, " %10.1f %10.1f", c.OverlapSearchedE2E, c.HeuristicE2EOverlap)
	}
	b.WriteString("\n")
	return b.String(), cases, nil
}
