package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"realhf/internal/model"
	"realhf/internal/runtime"
)

// LimitationRow is one point of the §7 predictability study.
type LimitationRow struct {
	// Spread is the half-width of the generation-length distribution as a
	// fraction of the mean (0 = the paper's fixed-length protocol).
	Spread float64
	// EstimateErr is |estimated − realized| / realized for the plan chosen
	// under the mean-length assumption.
	EstimateErr float64
	// Regret is how much slower the fixed-assumption plan runs than a plan
	// re-searched with knowledge of the realized lengths.
	Regret float64
}

// LimitationStudy quantifies the paper's stated limitation (§7): ReaL
// "requires predictable function calls", and generation lengths that vary
// during training violate the estimator's assumption. We search a plan under
// the mean generation length, then realize workloads whose length is drawn
// uniformly from mean·(1±spread), and measure (a) how wrong the estimate
// becomes and (b) how much performance the stale plan leaves behind compared
// to re-planning at the realized length.
func LimitationStudy(nodes, steps int, spreads []float64, seed int64) ([]LimitationRow, string, error) {
	base := PaperSetting(nodes, model.LLaMA7B, model.LLaMA7B)
	pr, err := NewProblem(base)
	if err != nil {
		return nil, "", err
	}
	res, err := pr.SearchPlan(steps, seed)
	if err != nil {
		return nil, "", err
	}
	est := res.Estimate.TimeCost

	rng := rand.New(rand.NewSource(seed))
	const draws = 3
	var rows []LimitationRow
	for _, spread := range spreads {
		var errSum, regretSum float64
		n := draws
		if spread == 0 {
			n = 1 // deterministic
		}
		for d := 0; d < n; d++ {
			// Realize a workload at a sampled generation length. Avoid
			// factors too close to 1 so each draw exercises the spread.
			u := 2*rng.Float64() - 1
			if u < 0 {
				u = -0.5 + u/2
			} else {
				u = 0.5 + u/2
			}
			factor := 1 + spread*u
			if spread == 0 {
				factor = 1
			}
			realized := base
			realized.GenLen = int(float64(base.GenLen) * factor)
			if realized.GenLen < 64 {
				realized.GenLen = 64
			}
			prReal, err := NewProblem(realized)
			if err != nil {
				return nil, "", err
			}
			// Execute the stale plan (searched under the mean length) on
			// the realized workload: same assignments, new graph.
			stale := prReal.EmptyPlan()
			for name, a := range res.Plan.Assign {
				stale.Assign[name] = a
			}
			if err := stale.Validate(); err != nil {
				return nil, "", err
			}
			staleRep, err := runtime.RunDefault(stale)
			if err != nil {
				return nil, "", err
			}
			// Re-plan with knowledge of the realized length.
			fresh, err := prReal.SearchPlan(steps, seed+int64(spread*1000)+int64(d))
			if err != nil {
				return nil, "", err
			}
			freshRep, err := runtime.RunDefault(fresh.Plan)
			if err != nil {
				return nil, "", err
			}
			errSum += math.Abs(est-staleRep.MakespanV) / staleRep.MakespanV
			regretSum += (staleRep.MakespanV - freshRep.MakespanV) / freshRep.MakespanV
		}
		rows = append(rows, LimitationRow{
			Spread:      spread,
			EstimateErr: errSum / float64(n),
			Regret:      regretSum / float64(n),
		})
	}

	var b strings.Builder
	b.WriteString(header("Limitation (§7): unpredictable generation lengths"))
	fmt.Fprintf(&b, "%-8s %14s %10s\n", "Spread", "EstimateErr", "Regret")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7.0f%% %13.1f%% %9.1f%%\n", 100*r.Spread, 100*r.EstimateErr, 100*r.Regret)
	}
	b.WriteString("\nAs the paper warns, the cost model degrades as workloads become dynamic;\n")
	b.WriteString("re-planning recovers the loss at the price of another search.\n")
	return rows, b.String(), nil
}
