// Package profiler reproduces the paper's profiling-assisted estimation
// front end (§5.1): it measures per-layer operation times on a grid of
// power-of-two input sizes and answers later queries by linear
// interpolation. In the paper the measurements come from short runs on real
// GPUs; here they come from the gpumodel oracle perturbed by deterministic
// measurement noise — preserving both the interface and the estimator's
// error structure (interpolation + noise, paper Fig. 12 right).
package profiler

import (
	"fmt"
	"math"
	"sort"

	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/model"
)

// Options configures a profiling run.
type Options struct {
	// MaxTokens bounds the token grid (defaults to 1<<20).
	MaxTokens int64
	// MaxTP bounds the profiled tensor-parallel degrees (defaults to the
	// node size).
	MaxTP int
	// NoiseFrac is the relative measurement noise (defaults to 0.03).
	NoiseFrac float64
	// Seed makes the noise deterministic per experiment.
	Seed int64
	// Repetitions per sample, as a real profiler would average (default 3).
	Repetitions int
	// PerSampleOverhead is the fixed setup/launch wall time of one
	// measurement (default 50 ms) — this dominates ProfileCost.
	PerSampleOverhead float64
}

func (o Options) withDefaults(hw hardware.Cluster) Options {
	if o.MaxTokens == 0 {
		// The paper profiles batch sizes up to 512 at sequence lengths up
		// to 1024 (Fig. 12): half a million tokens. Larger queries
		// extrapolate linearly.
		o.MaxTokens = 1 << 19
	}
	if o.MaxTP == 0 {
		o.MaxTP = hw.GPUsPerNode
	}
	if o.NoiseFrac == 0 {
		o.NoiseFrac = 0.03
	}
	if o.Repetitions == 0 {
		o.Repetitions = 2
	}
	if o.PerSampleOverhead == 0 {
		o.PerSampleOverhead = 0.03
	}
	return o
}

// curve is a piecewise-linear function sampled at sorted xs.
type curve struct {
	xs []float64
	ys []float64
}

// eval interpolates linearly, extrapolating from the boundary segments for
// out-of-range queries (the paper's rule for sizes outside the profiled
// set).
func (c curve) eval(x float64) float64 {
	n := len(c.xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return c.ys[0]
	}
	i := sort.SearchFloat64s(c.xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	x0, x1 := c.xs[i-1], c.xs[i]
	y0, y1 := c.ys[i-1], c.ys[i]
	y := y0 + (y1-y0)*(x-x0)/(x1-x0)
	if y < 0 {
		return 0
	}
	return y
}

// surface is a family of curves over a second axis (attention span or
// decode position), interpolated linearly between neighbours.
type surface struct {
	zs     []float64
	curves []curve
}

func (s surface) eval(x, z float64) float64 {
	n := len(s.zs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return s.curves[0].eval(x)
	}
	i := sort.SearchFloat64s(s.zs, z)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	z0, z1 := s.zs[i-1], s.zs[i]
	y0, y1 := s.curves[i-1].eval(x), s.curves[i].eval(x)
	y := y0 + (y1-y0)*(z-z0)/(z1-z0)
	if y < 0 {
		return 0
	}
	return y
}

// Table holds one model's profiled statistics and implements
// gpumodel.ModelCoster by interpolation.
type Table struct {
	Cfg model.Config
	// ProfileCost is the simulated wall time the profiling run took
	// (Fig. 12 left).
	ProfileCost float64

	fwd    map[int]surface // tp -> (tokens × span) surface
	bwd    map[int]surface
	decode map[int]surface // tp -> (batch × position) surface
	head   map[int]curve   // tp -> tokens curve
	optPer float64         // seconds per local parameter
}

var _ gpumodel.ModelCoster = (*Table)(nil)

// LayerFwd implements gpumodel.ModelCoster.
func (t *Table) LayerFwd(tp int, tokens int64, avgSpan float64) float64 {
	return t.fwd[clampTP(t.fwd, tp)].eval(float64(tokens), avgSpan)
}

// LayerBwd implements gpumodel.ModelCoster.
func (t *Table) LayerBwd(tp int, tokens int64, avgSpan float64) float64 {
	return t.bwd[clampTP(t.bwd, tp)].eval(float64(tokens), avgSpan)
}

// LayerDecode implements gpumodel.ModelCoster.
func (t *Table) LayerDecode(tp int, batchSeqs int, pos int) float64 {
	return t.decode[clampTP(t.decode, tp)].eval(float64(batchSeqs), float64(pos))
}

// HeadFwd implements gpumodel.ModelCoster.
func (t *Table) HeadFwd(tp int, tokens int64) float64 {
	return t.head[clampTPc(t.head, tp)].eval(float64(tokens))
}

// OptimStep implements gpumodel.ModelCoster.
func (t *Table) OptimStep(shardParams int64) float64 {
	return float64(shardParams) * t.optPer
}

func clampTP(m map[int]surface, tp int) int {
	best := 1
	for k := range m {
		if k <= tp && k > best {
			best = k
		}
	}
	return best
}

func clampTPc(m map[int]curve, tp int) int {
	best := 1
	for k := range m {
		if k <= tp && k > best {
			best = k
		}
	}
	return best
}

// splitmix64 produces the deterministic per-sample measurement noise.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func noisy(v float64, frac float64, seed uint64) float64 {
	u := float64(splitmix64(seed))/float64(math.MaxUint64)*2 - 1 // [-1, 1]
	return v * (1 + frac*u)
}

func pow2sUpTo(max int64, from int64) []float64 {
	var out []float64
	for v := from; v <= max; v *= 2 {
		out = append(out, float64(v))
	}
	return out
}

// Profile runs the synthetic profiler for one model on the cluster. It
// samples forward/backward times over a power-of-two (tokens × span) grid,
// decode times over a (batch × position) grid, head times over tokens, and
// the optimizer's per-parameter cost, and returns the interpolation table.
func Profile(hw hardware.Cluster, cfg model.Config, opt Options) (*Table, error) {
	if err := hw.Validate(); err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	opt = opt.withDefaults(hw)
	oracle := gpumodel.NewOracle(hw, cfg)

	t := &Table{
		Cfg:    cfg,
		fwd:    map[int]surface{},
		bwd:    map[int]surface{},
		decode: map[int]surface{},
		head:   map[int]curve{},
	}
	seed := uint64(opt.Seed)
	samples := 0
	var sampledTime float64
	sample := func(v float64, keys ...uint64) float64 {
		h := seed
		for _, k := range keys {
			h = splitmix64(h ^ k)
		}
		samples++
		sampledTime += v * float64(opt.Repetitions)
		return noisy(v, opt.NoiseFrac, h)
	}

	tokens := pow2sUpTo(opt.MaxTokens, 64)
	maxSpan := int64(2048)
	if int64(cfg.MaxPositionEmbeddings) < maxSpan {
		maxSpan = int64(cfg.MaxPositionEmbeddings)
	}
	spans := pow2sUpTo(maxSpan, 256)
	batches := pow2sUpTo(512, 1)
	positions := pow2sUpTo(int64(cfg.MaxPositionEmbeddings), 256)

	for tp := 1; tp <= opt.MaxTP; tp *= 2 {
		var fwdS, bwdS, decS surface
		for _, sp := range spans {
			var fc, bc curve
			for _, tok := range tokens {
				fc.xs = append(fc.xs, tok)
				fc.ys = append(fc.ys, sample(oracle.LayerFwd(tp, int64(tok), sp), 1, uint64(tp), uint64(tok), uint64(sp)))
				bc.xs = append(bc.xs, tok)
				bc.ys = append(bc.ys, sample(oracle.LayerBwd(tp, int64(tok), sp), 2, uint64(tp), uint64(tok), uint64(sp)))
			}
			fwdS.zs = append(fwdS.zs, sp)
			fwdS.curves = append(fwdS.curves, fc)
			bwdS.zs = append(bwdS.zs, sp)
			bwdS.curves = append(bwdS.curves, bc)
		}
		for _, pos := range positions {
			var dc curve
			for _, b := range batches {
				dc.xs = append(dc.xs, b)
				dc.ys = append(dc.ys, sample(oracle.LayerDecode(tp, int(b), int(pos)), 3, uint64(tp), uint64(b), uint64(pos)))
			}
			decS.zs = append(decS.zs, pos)
			decS.curves = append(decS.curves, dc)
		}
		var hc curve
		for _, tok := range tokens {
			hc.xs = append(hc.xs, tok)
			hc.ys = append(hc.ys, sample(oracle.HeadFwd(tp, int64(tok)), 4, uint64(tp), uint64(tok)))
		}
		t.fwd[tp] = fwdS
		t.bwd[tp] = bwdS
		t.decode[tp] = decS
		t.head[tp] = hc
	}

	const optProbe = 1 << 26
	t.optPer = sample(oracle.OptimStep(optProbe), 5) / optProbe

	t.ProfileCost = sampledTime + float64(samples)*opt.PerSampleOverhead
	return t, nil
}
