package profiler

import (
	"math"
	"testing"
	"testing/quick"

	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/model"
)

func profile7B(t *testing.T) (*Table, *gpumodel.Oracle) {
	t.Helper()
	hw := hardware.DefaultCluster(2)
	tab, err := Profile(hw, model.LLaMA7B, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tab, gpumodel.NewOracle(hw, model.LLaMA7B)
}

func TestProfileGridMatchesOracleWithinNoise(t *testing.T) {
	tab, oracle := profile7B(t)
	// On grid points the table must match the oracle within the 3% noise.
	for _, tp := range []int{1, 2, 4, 8} {
		for _, tok := range []int64{64, 1024, 65536} {
			got := tab.LayerFwd(tp, tok, 1024)
			want := oracle.LayerFwd(tp, tok, 1024)
			if rel := math.Abs(got-want) / want; rel > 0.035 {
				t.Errorf("tp=%d tokens=%d: grid point off by %.1f%%", tp, tok, 100*rel)
			}
		}
	}
}

// TestInterpolationAccuracy reproduces the Fig. 12 (right) claim: estimates
// at arbitrary (off-grid) sizes stay within ~25% of ground truth.
func TestInterpolationAccuracy(t *testing.T) {
	tab, oracle := profile7B(t)
	points := []struct {
		tp     int
		tokens int64
		span   float64
	}{
		{1, 100, 300}, {2, 3000, 700}, {4, 50000, 1500},
		{8, 200000, 4000}, {2, 777, 2048}, {8, 123456, 1024},
	}
	for _, p := range points {
		got := tab.LayerFwd(p.tp, p.tokens, p.span)
		want := oracle.LayerFwd(p.tp, p.tokens, p.span)
		if rel := math.Abs(got-want) / want; rel > 0.25 {
			t.Errorf("LayerFwd(tp=%d, tok=%d, span=%.0f): off by %.1f%% (>25%%)",
				p.tp, p.tokens, p.span, 100*rel)
		}
		gotB := tab.LayerBwd(p.tp, p.tokens, p.span)
		wantB := oracle.LayerBwd(p.tp, p.tokens, p.span)
		if rel := math.Abs(gotB-wantB) / wantB; rel > 0.25 {
			t.Errorf("LayerBwd(tp=%d, tok=%d): off by %.1f%%", p.tp, p.tokens, 100*rel)
		}
	}
}

func TestDecodeInterpolation(t *testing.T) {
	tab, oracle := profile7B(t)
	for _, tc := range []struct{ tp, batch, pos int }{
		{2, 3, 500}, {8, 48, 1536}, {1, 200, 3000},
	} {
		got := tab.LayerDecode(tc.tp, tc.batch, tc.pos)
		want := oracle.LayerDecode(tc.tp, tc.batch, tc.pos)
		if rel := math.Abs(got-want) / want; rel > 0.25 {
			t.Errorf("LayerDecode(%+v): off by %.1f%%", tc, 100*rel)
		}
	}
}

func TestExtrapolationBeyondGrid(t *testing.T) {
	tab, oracle := profile7B(t)
	// 2M tokens exceeds the 1M profiling cap; linear extrapolation should
	// still land near the oracle (compute is ~linear in tokens out there).
	got := tab.LayerFwd(2, 2<<20, 1024)
	want := oracle.LayerFwd(2, 2<<20, 1024)
	if rel := math.Abs(got-want) / want; rel > 0.3 {
		t.Errorf("extrapolated LayerFwd off by %.1f%%", 100*rel)
	}
	if tab.LayerFwd(2, 1, 128) < 0 {
		t.Error("extrapolation below grid must not go negative")
	}
}

func TestHeadAndOptimizer(t *testing.T) {
	tab, oracle := profile7B(t)
	if got, want := tab.HeadFwd(4, 10000), oracle.HeadFwd(4, 10000); math.Abs(got-want)/want > 0.25 {
		t.Errorf("HeadFwd off: %g vs %g", got, want)
	}
	if got, want := tab.OptimStep(1<<28), oracle.OptimStep(1<<28); math.Abs(got-want)/want > 0.1 {
		t.Errorf("OptimStep off: %g vs %g", got, want)
	}
}

// TestProfileCostScalesWithModel reproduces Fig. 12 (left): profiling a
// larger model costs more wall time, but stays within minutes.
func TestProfileCostScalesWithModel(t *testing.T) {
	hw := hardware.DefaultCluster(2)
	var prev float64
	for _, cfg := range model.All() {
		tab, err := Profile(hw, cfg, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if tab.ProfileCost <= prev {
			t.Errorf("%s: profile cost %.1fs not increasing (prev %.1fs)",
				cfg.Name, tab.ProfileCost, prev)
		}
		if tab.ProfileCost > 600 {
			t.Errorf("%s: profile cost %.1fs exceeds minutes-scale budget", cfg.Name, tab.ProfileCost)
		}
		prev = tab.ProfileCost
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	hw := hardware.DefaultCluster(2)
	a, _ := Profile(hw, model.LLaMA7B, Options{Seed: 7})
	b, _ := Profile(hw, model.LLaMA7B, Options{Seed: 7})
	c, _ := Profile(hw, model.LLaMA7B, Options{Seed: 8})
	if a.LayerFwd(2, 1000, 512) != b.LayerFwd(2, 1000, 512) {
		t.Error("same seed must reproduce identical tables")
	}
	if a.LayerFwd(2, 1000, 512) == c.LayerFwd(2, 1000, 512) {
		t.Error("different seeds should perturb measurements differently")
	}
}

func TestTPClamping(t *testing.T) {
	tab, _ := profile7B(t)
	// Queries at unprofiled TP degrees fall back to the nearest profiled
	// lower degree rather than failing.
	if got := tab.LayerFwd(16, 1024, 512); got <= 0 {
		t.Errorf("tp=16 query returned %g", got)
	}
	if got := tab.LayerFwd(3, 1024, 512); got != tab.LayerFwd(2, 1024, 512) {
		t.Error("tp=3 should clamp to the tp=2 table")
	}
}

// Property: interpolated times are non-negative and monotone non-decreasing
// in tokens at fixed span.
func TestInterpolationMonotoneProperty(t *testing.T) {
	tab, _ := profile7B(t)
	f := func(a, b uint16) bool {
		x, y := int64(a)+1, int64(b)+1
		if x > y {
			x, y = y, x
		}
		fx := tab.LayerFwd(2, x*64, 1024)
		fy := tab.LayerFwd(2, y*64, 1024)
		return fx >= 0 && fy+1e-12 >= fx*0.9 // allow small noise wiggle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProfileRejectsBadCluster(t *testing.T) {
	bad := hardware.Cluster{}
	if _, err := Profile(bad, model.LLaMA7B, Options{}); err == nil {
		t.Error("invalid cluster must fail profiling")
	}
}
