package realloc

import (
	"sort"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
)

// Op is one broadcast of the redistribution schedule: SrcGPU sends Bytes
// (the tensor chunk [ChunkLo, ChunkHi)/ChunkDen of layers [LayerLo, LayerHi))
// to DstGPUs in a single pipelined broadcast.
type Op struct {
	SrcGPU  int
	DstGPUs []int
	Bytes   int64

	LayerLo, LayerHi           int
	ChunkLo, ChunkHi, ChunkDen int
}

// Schedule is the full set of broadcasts realizing one redistribution. Ops
// from distinct sources proceed in parallel; ops sharing a source serialize.
type Schedule struct {
	Ops []Op
	// LocalBytes counts payload already resident on its destination (no
	// communication needed).
	LocalBytes int64
}

// TotalBytes is the communication volume of the schedule.
func (s Schedule) TotalBytes() int64 {
	var b int64
	for _, op := range s.Ops {
		b += op.Bytes * int64(len(op.DstGPUs))
	}
	return b
}

// BusyPerGPU returns each device's busy time under the schedule: a GPU
// accumulates the cost of every broadcast it sends or receives. The runtime
// engine charges these per-device durations to each worker's communication
// stream, so a redistribution only occupies the GPUs it actually touches.
func (s Schedule) BusyPerGPU(hw hardware.Cluster) map[int]float64 {
	comm := gpumodel.Comm{HW: hw}
	busy := map[int]float64{}
	for _, op := range s.Ops {
		cross := false
		srcNode := op.SrcGPU / hw.GPUsPerNode
		for _, d := range op.DstGPUs {
			if d/hw.GPUsPerNode != srcNode {
				cross = true
				break
			}
		}
		t := comm.Broadcast(op.Bytes, cross)
		busy[op.SrcGPU] += t
		for _, d := range op.DstGPUs {
			busy[d] += t
		}
	}
	return busy
}

// Cost estimates the schedule's wall time on a cluster: the schedule
// finishes when the busiest GPU does — sources broadcast in parallel, as in
// the paper. Busy times accumulate exactly as in BusyPerGPU (same op order,
// same additions), into a flat per-GPU array rather than a map: Cost sits on
// the plan search's node-costing hot path, where the map dominated the
// allocation profile.
func (s Schedule) Cost(hw hardware.Cluster) float64 {
	comm := gpumodel.Comm{HW: hw}
	busy := make([]float64, hw.NumGPUs())
	for _, op := range s.Ops {
		cross := false
		srcNode := op.SrcGPU / hw.GPUsPerNode
		for _, d := range op.DstGPUs {
			if d/hw.GPUsPerNode != srcNode {
				cross = true
				break
			}
		}
		t := comm.Broadcast(op.Bytes, cross)
		busy[op.SrcGPU] += t
		for _, d := range op.DstGPUs {
			busy[d] += t
		}
	}
	var max float64
	for _, t := range busy {
		if t > max {
			max = t
		}
	}
	return max
}

// nodeOf returns the host index of a GPU.
func nodeOf(gpu, gpusPerNode int) int { return gpu / gpusPerNode }

// srcDst is one destination GPU's choice of source replica.
type srcDst struct{ src, dst int }

// pairScratch holds the per-cell working storage of the matching loops. The
// planners allocate one per schedule and reuse it across every (tp, tp) or
// (dp, dp) cell, replacing the per-cell slice+map+sort churn that dominated
// the estimator's allocation profile.
type pairScratch struct {
	srcs  []int
	dstg  []int
	pairs []srcDst
}

func (ps *pairScratch) reset(nsrcs, ndsts int) {
	if cap(ps.srcs) < nsrcs {
		ps.srcs = make([]int, nsrcs)
	}
	ps.srcs = ps.srcs[:nsrcs]
	if cap(ps.dstg) < ndsts {
		ps.dstg = make([]int, ndsts)
	}
	ps.dstg = ps.dstg[:ndsts]
	ps.pairs = ps.pairs[:0]
}

// chooseSources runs one cell's matching: every destination GPU in dstg
// picks its cheapest source replica from srcs (resident ≺ same node ≺
// remote, first minimum wins); non-local choices are collected as sorted
// (src, dst) pairs and destinations already holding the piece are counted
// as local.
func (ps *pairScratch) chooseSources(gpusPerNode int) (local int) {
	for _, dgpu := range ps.dstg {
		best, bestCost := ps.srcs[0], commCost(ps.srcs[0], dgpu, gpusPerNode)
		for _, s := range ps.srcs[1:] {
			if c := commCost(s, dgpu, gpusPerNode); c < bestCost {
				best, bestCost = s, c
			}
		}
		if best == dgpu {
			local++
			continue
		}
		ps.pairs = append(ps.pairs, srcDst{src: best, dst: dgpu})
	}
	ps.sortPairs()
	return local
}

// sortPairs orders (src, dst) pairs lexicographically — the same order the
// map-based matching produced via sorted source keys and sorted destination
// lists. Pairs are distinct (each destination GPU appears once per cell), so
// insertion sort is deterministic; it is used over sort.Slice to keep the
// hot path comparison-closure and allocation free.
func (ps *pairScratch) sortPairs() {
	pairs := ps.pairs
	for i := 1; i < len(pairs); i++ {
		p := pairs[i]
		j := i - 1
		for j >= 0 && (pairs[j].src > p.src || (pairs[j].src == p.src && pairs[j].dst > p.dst)) {
			pairs[j+1] = pairs[j]
			j--
		}
		pairs[j+1] = p
	}
}

// emitOps appends one broadcast per run of pairs sharing a source. Pairs
// must already be sorted by (src, dst).
func (ps *pairScratch) emitOps(sched *Schedule, pieceBytes int64, lo, hi, cLo, cHi, den int) {
	pairs := ps.pairs
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].src == pairs[i].src {
			j++
		}
		dsts := make([]int, 0, j-i)
		for _, pr := range pairs[i:j] {
			dsts = append(dsts, pr.dst)
		}
		sched.Ops = append(sched.Ops, Op{
			SrcGPU: pairs[i].src, DstGPUs: dsts, Bytes: pieceBytes,
			LayerLo: lo, LayerHi: hi,
			ChunkLo: cLo, ChunkHi: cHi, ChunkDen: den,
		})
		i = j
	}
}

// accumBusy charges one cell's broadcasts directly to per-GPU busy time,
// mirroring emitOps followed by Schedule.Cost: one broadcast per run of
// pairs sharing a source, costed cross-node when any destination lives on a
// different host, added to the source and every destination in op order.
// Pairs must already be sorted by (src, dst).
func (ps *pairScratch) accumBusy(busy []float64, comm gpumodel.Comm, pieceBytes int64, gpusPerNode int) {
	pairs := ps.pairs
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].src == pairs[i].src {
			j++
		}
		src := pairs[i].src
		cross := false
		srcNode := src / gpusPerNode
		for _, pr := range pairs[i:j] {
			if pr.dst/gpusPerNode != srcNode {
				cross = true
				break
			}
		}
		t := comm.Broadcast(pieceBytes, cross)
		busy[src] += t
		for _, pr := range pairs[i:j] {
			busy[pr.dst] += t
		}
		i = j
	}
}

// commCost ranks candidate sources for a destination: resident (same GPU) ≺
// same node ≺ remote.
func commCost(src, dst, gpusPerNode int) int {
	switch {
	case src == dst:
		return 0
	case nodeOf(src, gpusPerNode) == nodeOf(dst, gpusPerNode):
		return 1
	default:
		return 2
	}
}

// PlanParams builds the broadcast schedule that rematerializes a model of
// `layers` layers (layerBytes bf16 bytes each) from layout src to layout dst
// (paper Fig. 6).
func PlanParams(layers int, layerBytes int64, src, dst core.Assignment, gpusPerNode int) Schedule {
	var sched Schedule
	var scratch pairScratch
	ss, ds := src.Strategy, dst.Strategy

	// Outer loop: pipeline stage pairs with intersecting layer ranges.
	for j := 0; j < ds.PP; j++ {
		dLo, dHi := StageLayers(layers, ds, j)
		if dLo >= dHi {
			continue
		}
		for i := 0; i < ss.PP; i++ {
			sLo, sHi := StageLayers(layers, ss, i)
			lo, hi := maxInt(dLo, sLo), minInt(dHi, sHi)
			if lo >= hi {
				continue
			}
			planStagePair(&sched, &scratch, src, dst, i, j, lo, hi, layerBytes, gpusPerNode)
		}
	}
	return sched
}

// planStagePair is the inner loop: remap the (dp×tp) grid of source stage i
// onto destination stage j for the common layers [lo, hi).
func planStagePair(sched *Schedule, scratch *pairScratch, src, dst core.Assignment, i, j, lo, hi int, layerBytes int64, gpusPerNode int) {
	ss, ds := src.Strategy, dst.Strategy
	den := lcm(ss.TP, ds.TP)
	sw := den / ss.TP // sub-chunks per source partition
	dw := den / ds.TP // sub-chunks per destination partition
	bytesPerChunk := int64(hi-lo) * layerBytes / int64(den)

	// For every (source tp rank, destination tp rank) pair with overlapping
	// tensor chunks, each destination GPU picks its cheapest source replica;
	// destinations sharing a chosen source coalesce into one broadcast.
	for dtp := 0; dtp < ds.TP; dtp++ {
		dChunkLo, dChunkHi := dtp*dw, (dtp+1)*dw
		for stp := 0; stp < ss.TP; stp++ {
			cLo, cHi := maxInt(dChunkLo, stp*sw), minInt(dChunkHi, (stp+1)*sw)
			if cLo >= cHi {
				continue
			}
			pieceBytes := bytesPerChunk * int64(cHi-cLo)
			local := matchParamsCell(scratch, src, dst, i, j, stp, dtp, gpusPerNode)
			sched.LocalBytes += int64(local) * pieceBytes
			scratch.emitOps(sched, pieceBytes, lo, hi, cLo, cHi, den)
		}
	}
}

// matchParamsCell fills scratch with one (stp, dtp) cell's matching for a
// parameter reallocation: sources are the DP replicas of (source stage i,
// tp rank stp), destinations the DP replicas of (destination stage j, tp
// rank dtp). Returns the number of destinations already holding the piece.
func matchParamsCell(scratch *pairScratch, src, dst core.Assignment, i, j, stp, dtp, gpusPerNode int) int {
	ss, ds := src.Strategy, dst.Strategy
	scratch.reset(ss.DP, ds.DP)
	for sdp := 0; sdp < ss.DP; sdp++ {
		scratch.srcs[sdp] = GPUOf(src.Mesh, ss, i, sdp, stp)
	}
	for ddp := 0; ddp < ds.DP; ddp++ {
		scratch.dstg[ddp] = GPUOf(dst.Mesh, ds, j, ddp, dtp)
	}
	return scratch.chooseSources(gpusPerNode)
}

// PlanData builds the broadcast schedule moving intermediate data between
// two calls. Function calls produce data partitioned along DP and replicated
// along TP — the mirror of the parameter layout — so the same matching runs
// with TP and DP roles swapped (paper §6): source partitions are the DP
// ranks of the producer's last stage; destinations are the DP ranks of the
// consumer's first stage, replicated across its TP group.
func PlanData(totalBytes int64, src, dst core.Assignment, gpusPerNode int) Schedule {
	var sched Schedule
	var scratch pairScratch
	ss, ds := src.Strategy, dst.Strategy
	den := lcm(ss.DP, ds.DP)
	sw := den / ss.DP
	dw := den / ds.DP
	bytesPerChunk := totalBytes / int64(den)

	for ddp := 0; ddp < ds.DP; ddp++ {
		dChunkLo, dChunkHi := ddp*dw, (ddp+1)*dw
		for sdp := 0; sdp < ss.DP; sdp++ {
			cLo, cHi := maxInt(dChunkLo, sdp*sw), minInt(dChunkHi, (sdp+1)*sw)
			if cLo >= cHi {
				continue
			}
			pieceBytes := bytesPerChunk * int64(cHi-cLo)
			local := matchDataCell(&scratch, src, dst, sdp, ddp, gpusPerNode)
			sched.LocalBytes += int64(local) * pieceBytes
			scratch.emitOps(&sched, pieceBytes, 0, 0, cLo, cHi, den)
		}
	}
	return sched
}

// matchDataCell fills scratch with one (sdp, ddp) cell's matching for a
// data transfer: sources are the TP replicas of the producer's last stage
// at dp rank sdp (function outputs are DP-partitioned and TP-replicated),
// destinations the TP group of the consumer's first stage at dp rank ddp.
// Returns the number of destinations already holding the piece.
func matchDataCell(scratch *pairScratch, src, dst core.Assignment, sdp, ddp, gpusPerNode int) int {
	ss, ds := src.Strategy, dst.Strategy
	scratch.reset(ss.TP, ds.TP)
	for stp := 0; stp < ss.TP; stp++ {
		scratch.srcs[stp] = GPUOf(src.Mesh, ss, ss.PP-1, sdp, stp)
	}
	for dtp := 0; dtp < ds.TP; dtp++ {
		scratch.dstg[dtp] = GPUOf(dst.Mesh, ds, 0, ddp, dtp)
	}
	return scratch.chooseSources(gpusPerNode)
}

// CostScratch is the reusable working storage of the cost-only planners.
// The zero value is ready to use; callers on the estimator's hot path keep
// one alive across calls so steady-state costing does not allocate.
type CostScratch struct {
	pair pairScratch
	busy []float64
}

func (cs *CostScratch) resetBusy(n int) {
	if cap(cs.busy) < n {
		cs.busy = make([]float64, n)
		return
	}
	cs.busy = cs.busy[:n]
	for i := range cs.busy {
		cs.busy[i] = 0
	}
}

func maxBusy(busy []float64) float64 {
	var max float64
	for _, t := range busy {
		if t > max {
			max = t
		}
	}
	return max
}

// ParamsCost returns PlanParams(...).Cost(hw) without materializing the
// schedule: it runs the same stage-pair matching and charges each broadcast
// to per-GPU busy time directly (identical arithmetic in identical order,
// so the result is bit-equal). The estimator costs every candidate
// reallocation this way; the op list is only built when a schedule is
// actually executed or inspected.
func ParamsCost(cs *CostScratch, layers int, layerBytes int64, src, dst core.Assignment, hw hardware.Cluster) float64 {
	cs.resetBusy(hw.NumGPUs())
	comm := gpumodel.Comm{HW: hw}
	ss, ds := src.Strategy, dst.Strategy
	for j := 0; j < ds.PP; j++ {
		dLo, dHi := StageLayers(layers, ds, j)
		if dLo >= dHi {
			continue
		}
		for i := 0; i < ss.PP; i++ {
			sLo, sHi := StageLayers(layers, ss, i)
			lo, hi := maxInt(dLo, sLo), minInt(dHi, sHi)
			if lo >= hi {
				continue
			}
			den := lcm(ss.TP, ds.TP)
			sw := den / ss.TP
			dw := den / ds.TP
			bytesPerChunk := int64(hi-lo) * layerBytes / int64(den)
			for dtp := 0; dtp < ds.TP; dtp++ {
				dChunkLo, dChunkHi := dtp*dw, (dtp+1)*dw
				for stp := 0; stp < ss.TP; stp++ {
					cLo, cHi := maxInt(dChunkLo, stp*sw), minInt(dChunkHi, (stp+1)*sw)
					if cLo >= cHi {
						continue
					}
					pieceBytes := bytesPerChunk * int64(cHi-cLo)
					matchParamsCell(&cs.pair, src, dst, i, j, stp, dtp, hw.GPUsPerNode)
					cs.pair.accumBusy(cs.busy, comm, pieceBytes, hw.GPUsPerNode)
				}
			}
		}
	}
	return maxBusy(cs.busy)
}

// DataCost returns PlanData(...).Cost(hw) without materializing the
// schedule, exactly as ParamsCost mirrors PlanParams.
func DataCost(cs *CostScratch, totalBytes int64, src, dst core.Assignment, hw hardware.Cluster) float64 {
	cs.resetBusy(hw.NumGPUs())
	comm := gpumodel.Comm{HW: hw}
	ss, ds := src.Strategy, dst.Strategy
	den := lcm(ss.DP, ds.DP)
	sw := den / ss.DP
	dw := den / ds.DP
	bytesPerChunk := totalBytes / int64(den)
	for ddp := 0; ddp < ds.DP; ddp++ {
		dChunkLo, dChunkHi := ddp*dw, (ddp+1)*dw
		for sdp := 0; sdp < ss.DP; sdp++ {
			cLo, cHi := maxInt(dChunkLo, sdp*sw), minInt(dChunkHi, (sdp+1)*sw)
			if cLo >= cHi {
				continue
			}
			pieceBytes := bytesPerChunk * int64(cHi-cLo)
			matchDataCell(&cs.pair, src, dst, sdp, ddp, hw.GPUsPerNode)
			cs.pair.accumBusy(cs.busy, comm, pieceBytes, hw.GPUsPerNode)
		}
	}
	return maxBusy(cs.busy)
}

// SwitchCost prices a whole-plan switch exactly as §5 prices parameter
// reallocation: for every model whose home layout changes between the two
// plans, the broadcast schedule moving its parameters from the old home to
// the new one is built (PlanParams), per-GPU busy times are merged across
// models (all reallocations proceed in parallel), and the busiest GPU
// bounds the wall time. hw must span both plans' meshes — for an elastic
// resize, the larger of the two clusters. Shared by the public Trainer's
// replan charging and the experiments' drift ablation.
func SwitchCost(old, next *core.Plan, hw hardware.Cluster) float64 {
	busy := map[int]float64{}
	roles := make([]dfg.Role, 0, len(old.Models))
	for role := range old.Models {
		roles = append(roles, role)
	}
	sort.Slice(roles, func(i, j int) bool { return roles[i] < roles[j] })
	for _, role := range roles {
		ms := old.Models[role]
		oldHome, ok := old.HomeOf(role)
		if !ok {
			continue
		}
		newHome, ok := next.HomeOf(role)
		if !ok || oldHome.Equal(newHome) {
			continue
		}
		sched := PlanParams(ms.Cfg.NumLayers, ms.Cfg.LayerParamBytes(),
			oldHome, newHome, hw.GPUsPerNode)
		for gpu, d := range sched.BusyPerGPU(hw) {
			busy[gpu] += d
		}
	}
	var max float64
	for _, d := range busy {
		if d > max {
			max = d
		}
	}
	return max
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
