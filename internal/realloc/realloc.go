package realloc

import (
	"sort"

	"realhf/internal/core"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
)

// Op is one broadcast of the redistribution schedule: SrcGPU sends Bytes
// (the tensor chunk [ChunkLo, ChunkHi)/ChunkDen of layers [LayerLo, LayerHi))
// to DstGPUs in a single pipelined broadcast.
type Op struct {
	SrcGPU  int
	DstGPUs []int
	Bytes   int64

	LayerLo, LayerHi           int
	ChunkLo, ChunkHi, ChunkDen int
}

// Schedule is the full set of broadcasts realizing one redistribution. Ops
// from distinct sources proceed in parallel; ops sharing a source serialize.
type Schedule struct {
	Ops []Op
	// LocalBytes counts payload already resident on its destination (no
	// communication needed).
	LocalBytes int64
}

// TotalBytes is the communication volume of the schedule.
func (s Schedule) TotalBytes() int64 {
	var b int64
	for _, op := range s.Ops {
		b += op.Bytes * int64(len(op.DstGPUs))
	}
	return b
}

// BusyPerGPU returns each device's busy time under the schedule: a GPU
// accumulates the cost of every broadcast it sends or receives. The runtime
// engine charges these per-device durations to each worker's communication
// stream, so a redistribution only occupies the GPUs it actually touches.
func (s Schedule) BusyPerGPU(hw hardware.Cluster) map[int]float64 {
	comm := gpumodel.Comm{HW: hw}
	busy := map[int]float64{}
	for _, op := range s.Ops {
		cross := false
		srcNode := op.SrcGPU / hw.GPUsPerNode
		for _, d := range op.DstGPUs {
			if d/hw.GPUsPerNode != srcNode {
				cross = true
				break
			}
		}
		t := comm.Broadcast(op.Bytes, cross)
		busy[op.SrcGPU] += t
		for _, d := range op.DstGPUs {
			busy[d] += t
		}
	}
	return busy
}

// Cost estimates the schedule's wall time on a cluster: the schedule
// finishes when the busiest GPU does — sources broadcast in parallel, as in
// the paper.
func (s Schedule) Cost(hw hardware.Cluster) float64 {
	var max float64
	for _, t := range s.BusyPerGPU(hw) {
		if t > max {
			max = t
		}
	}
	return max
}

// nodeOf returns the host index of a GPU.
func nodeOf(gpu, gpusPerNode int) int { return gpu / gpusPerNode }

// commCost ranks candidate sources for a destination: resident (same GPU) ≺
// same node ≺ remote.
func commCost(src, dst, gpusPerNode int) int {
	switch {
	case src == dst:
		return 0
	case nodeOf(src, gpusPerNode) == nodeOf(dst, gpusPerNode):
		return 1
	default:
		return 2
	}
}

// PlanParams builds the broadcast schedule that rematerializes a model of
// `layers` layers (layerBytes bf16 bytes each) from layout src to layout dst
// (paper Fig. 6).
func PlanParams(layers int, layerBytes int64, src, dst core.Assignment, gpusPerNode int) Schedule {
	var sched Schedule
	ss, ds := src.Strategy, dst.Strategy

	// Outer loop: pipeline stage pairs with intersecting layer ranges.
	for j := 0; j < ds.PP; j++ {
		dLo, dHi := StageLayers(layers, ds, j)
		if dLo >= dHi {
			continue
		}
		for i := 0; i < ss.PP; i++ {
			sLo, sHi := StageLayers(layers, ss, i)
			lo, hi := maxInt(dLo, sLo), minInt(dHi, sHi)
			if lo >= hi {
				continue
			}
			planStagePair(&sched, src, dst, i, j, lo, hi, layerBytes, gpusPerNode)
		}
	}
	return sched
}

// planStagePair is the inner loop: remap the (dp×tp) grid of source stage i
// onto destination stage j for the common layers [lo, hi).
func planStagePair(sched *Schedule, src, dst core.Assignment, i, j, lo, hi int, layerBytes int64, gpusPerNode int) {
	ss, ds := src.Strategy, dst.Strategy
	den := lcm(ss.TP, ds.TP)
	sw := den / ss.TP // sub-chunks per source partition
	dw := den / ds.TP // sub-chunks per destination partition
	bytesPerChunk := int64(hi-lo) * layerBytes / int64(den)

	// For every (source tp rank, destination tp rank) pair with overlapping
	// tensor chunks, each destination GPU picks its cheapest source replica;
	// destinations sharing a chosen source coalesce into one broadcast.
	for dtp := 0; dtp < ds.TP; dtp++ {
		dChunkLo, dChunkHi := dtp*dw, (dtp+1)*dw
		for stp := 0; stp < ss.TP; stp++ {
			cLo, cHi := maxInt(dChunkLo, stp*sw), minInt(dChunkHi, (stp+1)*sw)
			if cLo >= cHi {
				continue
			}
			pieceBytes := bytesPerChunk * int64(cHi-cLo)

			// Candidate sources: the DP replicas of (stage i, tp stp).
			srcs := make([]int, ss.DP)
			for sdp := 0; sdp < ss.DP; sdp++ {
				srcs[sdp] = GPUOf(src.Mesh, ss, i, sdp, stp)
			}

			// Each destination replica picks the cheapest source.
			bySrc := map[int][]int{}
			for ddp := 0; ddp < ds.DP; ddp++ {
				dgpu := GPUOf(dst.Mesh, ds, j, ddp, dtp)
				best, bestCost := srcs[0], commCost(srcs[0], dgpu, gpusPerNode)
				for _, s := range srcs[1:] {
					if c := commCost(s, dgpu, gpusPerNode); c < bestCost {
						best, bestCost = s, c
					}
				}
				if best == dgpu {
					sched.LocalBytes += pieceBytes
					continue
				}
				bySrc[best] = append(bySrc[best], dgpu)
			}
			srcOrder := make([]int, 0, len(bySrc))
			for s := range bySrc {
				srcOrder = append(srcOrder, s)
			}
			sort.Ints(srcOrder)
			for _, s := range srcOrder {
				dsts := bySrc[s]
				sort.Ints(dsts)
				sched.Ops = append(sched.Ops, Op{
					SrcGPU: s, DstGPUs: dsts, Bytes: pieceBytes,
					LayerLo: lo, LayerHi: hi,
					ChunkLo: cLo, ChunkHi: cHi, ChunkDen: den,
				})
			}
		}
	}
}

// PlanData builds the broadcast schedule moving intermediate data between
// two calls. Function calls produce data partitioned along DP and replicated
// along TP — the mirror of the parameter layout — so the same matching runs
// with TP and DP roles swapped (paper §6): source partitions are the DP
// ranks of the producer's last stage; destinations are the DP ranks of the
// consumer's first stage, replicated across its TP group.
func PlanData(totalBytes int64, src, dst core.Assignment, gpusPerNode int) Schedule {
	var sched Schedule
	ss, ds := src.Strategy, dst.Strategy
	den := lcm(ss.DP, ds.DP)
	sw := den / ss.DP
	dw := den / ds.DP
	bytesPerChunk := totalBytes / int64(den)

	for ddp := 0; ddp < ds.DP; ddp++ {
		dChunkLo, dChunkHi := ddp*dw, (ddp+1)*dw
		for sdp := 0; sdp < ss.DP; sdp++ {
			cLo, cHi := maxInt(dChunkLo, sdp*sw), minInt(dChunkHi, (sdp+1)*sw)
			if cLo >= cHi {
				continue
			}
			pieceBytes := bytesPerChunk * int64(cHi-cLo)
			// Candidate sources: TP replicas of the producer's last stage.
			srcs := make([]int, ss.TP)
			for stp := 0; stp < ss.TP; stp++ {
				srcs[stp] = GPUOf(src.Mesh, ss, ss.PP-1, sdp, stp)
			}
			bySrc := map[int][]int{}
			for dtp := 0; dtp < ds.TP; dtp++ {
				dgpu := GPUOf(dst.Mesh, ds, 0, ddp, dtp)
				best, bestCost := srcs[0], commCost(srcs[0], dgpu, gpusPerNode)
				for _, s := range srcs[1:] {
					if c := commCost(s, dgpu, gpusPerNode); c < bestCost {
						best, bestCost = s, c
					}
				}
				if best == dgpu {
					sched.LocalBytes += pieceBytes
					continue
				}
				bySrc[best] = append(bySrc[best], dgpu)
			}
			srcOrder := make([]int, 0, len(bySrc))
			for s := range bySrc {
				srcOrder = append(srcOrder, s)
			}
			sort.Ints(srcOrder)
			for _, s := range srcOrder {
				dsts := bySrc[s]
				sort.Ints(dsts)
				sched.Ops = append(sched.Ops, Op{
					SrcGPU: s, DstGPUs: dsts, Bytes: pieceBytes,
					ChunkLo: cLo, ChunkHi: cHi, ChunkDen: den,
				})
			}
		}
	}
	return sched
}

// SwitchCost prices a whole-plan switch exactly as §5 prices parameter
// reallocation: for every model whose home layout changes between the two
// plans, the broadcast schedule moving its parameters from the old home to
// the new one is built (PlanParams), per-GPU busy times are merged across
// models (all reallocations proceed in parallel), and the busiest GPU
// bounds the wall time. hw must span both plans' meshes — for an elastic
// resize, the larger of the two clusters. Shared by the public Trainer's
// replan charging and the experiments' drift ablation.
func SwitchCost(old, next *core.Plan, hw hardware.Cluster) float64 {
	busy := map[int]float64{}
	for role, ms := range old.Models {
		oldHome, ok := old.HomeOf(role)
		if !ok {
			continue
		}
		newHome, ok := next.HomeOf(role)
		if !ok || oldHome.Equal(newHome) {
			continue
		}
		sched := PlanParams(ms.Cfg.NumLayers, ms.Cfg.LayerParamBytes(),
			oldHome, newHome, hw.GPUsPerNode)
		for gpu, d := range sched.BusyPerGPU(hw) {
			busy[gpu] += d
		}
	}
	var max float64
	for _, d := range busy {
		if d > max {
			max = d
		}
	}
	return max
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
