// Package realloc implements the paper's parameter reallocation (§6,
// Fig. 6): redistributing a model's parameters from one (mesh, 3D-strategy)
// layout to another. The outer loop pairs pipeline stages with intersecting
// layer ranges; the inner loop remaps (dp×tp) grids by assigning every
// destination GPU the cheapest source holding its required tensor partition
// and broadcasting from all chosen sources in parallel. Data transfers
// between dependent calls reuse the same machinery with the TP/DP roles
// reversed.
package realloc

import (
	"realhf/internal/core"
	"realhf/internal/mesh"
	"realhf/internal/parallel"
)

// Coords decomposes a mesh-local rank into (pp, dp, tp) coordinates under
// the tp-innermost / dp-middle / pp-outermost mapping used by Megatron-style
// runtimes: consecutive GPUs form TP groups, TP groups form DP replicas,
// and whole (dp·tp) blocks form pipeline stages.
func Coords(s parallel.Strategy, rank int) (pp, dp, tp int) {
	tp = rank % s.TP
	dp = (rank / s.TP) % s.DP
	pp = rank / (s.TP * s.DP)
	return
}

// RankOf is the inverse of Coords.
func RankOf(s parallel.Strategy, pp, dp, tp int) int {
	return pp*(s.TP*s.DP) + dp*s.TP + tp
}

// GPUOf maps (pp, dp, tp) coordinates to a global GPU index on the mesh.
func GPUOf(m mesh.Mesh, s parallel.Strategy, pp, dp, tp int) int {
	return m.First + RankOf(s, pp, dp, tp)
}

// StageLayers returns the [lo, hi) layer range of pipeline stage `stage`
// when `layers` layers are split into s.PP stages (earlier stages take the
// ceiling share).
func StageLayers(layers int, s parallel.Strategy, stage int) (lo, hi int) {
	per := (layers + s.PP - 1) / s.PP
	lo = stage * per
	hi = lo + per
	if hi > layers {
		hi = layers
	}
	if lo > layers {
		lo = layers
	}
	return
}

// Shard identifies the model fragment one GPU holds: a layer range and a
// tensor partition [Num, Num+1)/Den of each of those layers.
type Shard struct {
	GPU      int
	LayerLo  int
	LayerHi  int
	Num, Den int
}

// ShardsOf enumerates the parameter shards of every GPU of an assignment.
// DP replicas hold identical shards.
func ShardsOf(a core.Assignment, layers int) []Shard {
	s := a.Strategy
	var out []Shard
	for pp := 0; pp < s.PP; pp++ {
		lo, hi := StageLayers(layers, s, pp)
		for dp := 0; dp < s.DP; dp++ {
			for tp := 0; tp < s.TP; tp++ {
				out = append(out, Shard{
					GPU:     GPUOf(a.Mesh, s, pp, dp, tp),
					LayerLo: lo,
					LayerHi: hi,
					Num:     tp,
					Den:     s.TP,
				})
			}
		}
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
