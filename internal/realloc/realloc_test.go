package realloc

import (
	"testing"
	"testing/quick"

	"realhf/internal/core"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/parallel"
)

func asgn(t *testing.T, first, count, M int, st parallel.Strategy) core.Assignment {
	t.Helper()
	m, err := mesh.New(first, count, M)
	if err != nil {
		t.Fatal(err)
	}
	if st.WorldSize() != count {
		t.Fatalf("strategy %v does not fill mesh of %d", st, count)
	}
	return core.Assignment{Mesh: m, Strategy: st}
}

func TestCoordsRankRoundTrip(t *testing.T) {
	s := parallel.Strategy{DP: 3, TP: 4, PP: 2, MicroBatches: 1}
	f := func(r uint8) bool {
		rank := int(r) % s.WorldSize()
		pp, dp, tp := Coords(s, rank)
		return RankOf(s, pp, dp, tp) == rank &&
			tp < s.TP && dp < s.DP && pp < s.PP
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStageLayersPartition(t *testing.T) {
	s := parallel.Strategy{DP: 1, TP: 1, PP: 3, MicroBatches: 1}
	covered := map[int]int{}
	for st := 0; st < 3; st++ {
		lo, hi := StageLayers(32, s, st)
		for l := lo; l < hi; l++ {
			covered[l]++
		}
	}
	for l := 0; l < 32; l++ {
		if covered[l] != 1 {
			t.Fatalf("layer %d covered %d times", l, covered[l])
		}
	}
}

// verifyCoverage checks the central invariant of Fig. 6: after running the
// schedule, every destination GPU holds exactly its required shard — pieces
// it received plus pieces already resident under the source layout.
func verifyCoverage(t *testing.T, layers int, src, dst core.Assignment, sched Schedule) {
	t.Helper()
	den := lcm(src.Strategy.TP, dst.Strategy.TP)

	type piece struct{ layer, chunk int }
	have := map[int]map[piece]int{} // dst gpu -> piece -> count
	mark := func(gpu, layerLo, layerHi, cLo, cHi, opDen int) {
		scale := den / opDen
		if have[gpu] == nil {
			have[gpu] = map[piece]int{}
		}
		for l := layerLo; l < layerHi; l++ {
			for c := cLo * scale; c < cHi*scale; c++ {
				have[gpu][piece{l, c}]++
			}
		}
	}

	// Pieces already resident: the destination GPU also appears in the
	// source layout holding an overlapping fragment.
	srcShards := ShardsOf(src, layers)
	for _, dsh := range ShardsOf(dst, layers) {
		for _, ssh := range srcShards {
			if ssh.GPU != dsh.GPU {
				continue
			}
			lLo, lHi := maxInt(dsh.LayerLo, ssh.LayerLo), minInt(dsh.LayerHi, ssh.LayerHi)
			if lLo >= lHi {
				continue
			}
			cLo := maxInt(dsh.Num*(den/dsh.Den), ssh.Num*(den/ssh.Den))
			cHi := minInt((dsh.Num+1)*(den/dsh.Den), (ssh.Num+1)*(den/ssh.Den))
			if cLo >= cHi {
				continue
			}
			mark(dsh.GPU, lLo, lHi, cLo, cHi, den)
		}
	}
	for _, op := range sched.Ops {
		for _, d := range op.DstGPUs {
			mark(d, op.LayerLo, op.LayerHi, op.ChunkLo, op.ChunkHi, op.ChunkDen)
		}
		if op.Bytes <= 0 {
			t.Errorf("op with non-positive payload: %+v", op)
		}
		for _, d := range op.DstGPUs {
			if d == op.SrcGPU {
				t.Errorf("op broadcasts to its own source GPU %d", d)
			}
		}
	}

	for _, dsh := range ShardsOf(dst, layers) {
		w := den / dsh.Den
		for l := dsh.LayerLo; l < dsh.LayerHi; l++ {
			for c := dsh.Num * w; c < (dsh.Num+1)*w; c++ {
				got := have[dsh.GPU][piece{l, c}]
				if got != 1 {
					t.Fatalf("dst GPU %d piece (layer %d, chunk %d/%d) covered %d times, want 1",
						dsh.GPU, l, c, den, got)
				}
			}
		}
	}
}

func TestPlanParamsIdentityIsFree(t *testing.T) {
	a := asgn(t, 0, 16, 8, parallel.Strategy{DP: 2, TP: 2, PP: 4, MicroBatches: 1})
	sched := PlanParams(32, 1<<20, a, a, 8)
	if len(sched.Ops) != 0 {
		t.Errorf("identity redistribution issued %d ops, want 0", len(sched.Ops))
	}
	if sched.Cost(hardware.DefaultCluster(2)) != 0 {
		t.Error("identity redistribution must be free")
	}
}

func TestPlanParamsCoverageAcrossLayouts(t *testing.T) {
	cases := []struct {
		name     string
		layers   int
		src, dst core.Assignment
	}{
		{"tp-split", 32,
			asgn(t, 0, 8, 8, parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1}),
			asgn(t, 0, 8, 8, parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 1})},
		{"tp-merge", 32,
			asgn(t, 0, 8, 8, parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 1}),
			asgn(t, 0, 8, 8, parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1})},
		{"pp-reshape", 80,
			asgn(t, 0, 16, 8, parallel.Strategy{DP: 1, TP: 2, PP: 8, MicroBatches: 1}),
			asgn(t, 0, 16, 8, parallel.Strategy{DP: 2, TP: 4, PP: 2, MicroBatches: 1})},
		{"disjoint-meshes", 32,
			asgn(t, 0, 8, 8, parallel.Strategy{DP: 2, TP: 4, PP: 1, MicroBatches: 1}),
			asgn(t, 8, 8, 8, parallel.Strategy{DP: 1, TP: 2, PP: 4, MicroBatches: 1})},
		{"shrink-mesh", 32,
			asgn(t, 0, 16, 8, parallel.Strategy{DP: 2, TP: 8, PP: 1, MicroBatches: 1}),
			asgn(t, 0, 4, 8, parallel.Strategy{DP: 1, TP: 4, PP: 1, MicroBatches: 1})},
		{"grow-mesh", 32,
			asgn(t, 0, 4, 8, parallel.Strategy{DP: 1, TP: 4, PP: 1, MicroBatches: 1}),
			asgn(t, 0, 16, 8, parallel.Strategy{DP: 2, TP: 8, PP: 1, MicroBatches: 1})},
		{"uneven-pp", 30, // 30 layers over pp=4: stages of 8,8,8,6
			asgn(t, 0, 8, 8, parallel.Strategy{DP: 2, TP: 1, PP: 4, MicroBatches: 1}),
			asgn(t, 0, 8, 8, parallel.Strategy{DP: 1, TP: 4, PP: 2, MicroBatches: 1})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched := PlanParams(tc.layers, 1<<22, tc.src, tc.dst, 8)
			verifyCoverage(t, tc.layers, tc.src, tc.dst, sched)
		})
	}
}

func TestCheapestSourcePreference(t *testing.T) {
	// Source: dp=2 replicas on nodes 0 and 1 (tp=8 each). Destination on
	// node 1 must fetch from the node-1 replica.
	src := asgn(t, 0, 16, 8, parallel.Strategy{DP: 2, TP: 8, PP: 1, MicroBatches: 1})
	dst := asgn(t, 8, 8, 8, parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 1})
	sched := PlanParams(32, 1<<22, src, dst, 8)
	for _, op := range sched.Ops {
		if op.SrcGPU < 8 {
			t.Errorf("op from node-0 GPU %d; node-1 replica was cheaper", op.SrcGPU)
		}
	}
	// In fact the node-1 replica IS the destination layout: no ops at all.
	if len(sched.Ops) != 0 {
		t.Errorf("expected fully local redistribution, got %d ops", len(sched.Ops))
	}
	if sched.LocalBytes <= 0 {
		t.Error("local bytes should be accounted")
	}
}

func TestCostOrdering(t *testing.T) {
	hw := hardware.DefaultCluster(4)
	src := asgn(t, 0, 8, 8, parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 1})
	dstNear := asgn(t, 0, 8, 8, parallel.Strategy{DP: 2, TP: 4, PP: 1, MicroBatches: 1})
	dstFar := asgn(t, 24, 8, 8, parallel.Strategy{DP: 2, TP: 4, PP: 1, MicroBatches: 1})
	near := PlanParams(32, 1<<22, src, dstNear, 8).Cost(hw)
	far := PlanParams(32, 1<<22, src, dstFar, 8).Cost(hw)
	if near <= 0 || far <= 0 {
		t.Fatal("redistribution across layouts must cost time")
	}
	if far <= near {
		t.Errorf("cross-node realloc (%.6fs) should cost more than intra-node (%.6fs)", far, near)
	}
}

func TestReallocCostSmallVsCompute(t *testing.T) {
	// The paper (Fig. 11) finds reallocation negligible next to compute.
	// Moving a 7B model across nodes should take well under a second.
	hw := hardware.DefaultCluster(2)
	layerBytes := int64(218112000 * 2) // 7B per-layer params × bf16
	src := asgn(t, 0, 8, 8, parallel.Strategy{DP: 1, TP: 4, PP: 2, MicroBatches: 1})
	dst := asgn(t, 8, 8, 8, parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1})
	cost := PlanParams(32, layerBytes, src, dst, 8).Cost(hw)
	if cost <= 0 || cost > 1.0 {
		t.Errorf("7B cross-node realloc cost = %.3fs, want (0, 1s]", cost)
	}
}

func TestPlanDataCoverage(t *testing.T) {
	src := asgn(t, 0, 8, 8, parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1})
	dst := asgn(t, 8, 8, 8, parallel.Strategy{DP: 2, TP: 2, PP: 2, MicroBatches: 1})
	total := int64(1 << 20)
	sched := PlanData(total, src, dst, 8)

	den := lcm(src.Strategy.DP, dst.Strategy.DP)
	have := map[int]map[int]int{}
	for _, op := range sched.Ops {
		for _, d := range op.DstGPUs {
			if have[d] == nil {
				have[d] = map[int]int{}
			}
			for c := op.ChunkLo; c < op.ChunkHi; c++ {
				have[d][c]++
			}
		}
	}
	// Every (first-stage) destination GPU must receive its DP chunk once.
	ds := dst.Strategy
	for ddp := 0; ddp < ds.DP; ddp++ {
		w := den / ds.DP
		for dtp := 0; dtp < ds.TP; dtp++ {
			g := GPUOf(dst.Mesh, ds, 0, ddp, dtp)
			for c := ddp * w; c < (ddp+1)*w; c++ {
				if have[g][c] != 1 {
					t.Errorf("data chunk %d/%d covered %d times on GPU %d", c, den, have[g][c], g)
				}
			}
		}
	}
}

func TestPlanDataSameLayoutLocal(t *testing.T) {
	a := asgn(t, 0, 8, 8, parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1})
	sched := PlanData(1<<20, a, a, 8)
	if len(sched.Ops) != 0 {
		t.Errorf("same-layout data transfer issued %d ops", len(sched.Ops))
	}
}

func TestScheduleTotalBytes(t *testing.T) {
	s := Schedule{Ops: []Op{
		{SrcGPU: 0, DstGPUs: []int{1, 2}, Bytes: 100},
		{SrcGPU: 3, DstGPUs: []int{4}, Bytes: 50},
	}}
	if got := s.TotalBytes(); got != 250 {
		t.Errorf("TotalBytes = %d, want 250", got)
	}
}

// Property: the cost-only planners are bit-equal to building the full
// schedule and costing it — the contract that lets the estimator's hot path
// skip materializing op lists.
func TestCostOnlyPlannersMatchSchedules(t *testing.T) {
	layouts := []core.Assignment{
		asgn(t, 0, 8, 8, parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1}),
		asgn(t, 0, 8, 8, parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 1}),
		asgn(t, 0, 8, 8, parallel.Strategy{DP: 1, TP: 2, PP: 4, MicroBatches: 1}),
		asgn(t, 8, 8, 8, parallel.Strategy{DP: 2, TP: 2, PP: 2, MicroBatches: 1}),
		asgn(t, 0, 16, 8, parallel.Strategy{DP: 2, TP: 4, PP: 2, MicroBatches: 1}),
		asgn(t, 0, 4, 8, parallel.Strategy{DP: 2, TP: 2, PP: 1, MicroBatches: 1}),
		asgn(t, 4, 4, 8, parallel.Strategy{DP: 1, TP: 4, PP: 1, MicroBatches: 1}),
	}
	hw := hardware.DefaultCluster(2)
	var cs CostScratch
	f := func(i, j, l uint8) bool {
		src := layouts[int(i)%len(layouts)]
		dst := layouts[int(j)%len(layouts)]
		layers := 8 * (int(l)%4 + 1)
		wantP := PlanParams(layers, 1<<20, src, dst, hw.GPUsPerNode).Cost(hw)
		if got := ParamsCost(&cs, layers, 1<<20, src, dst, hw); got != wantP {
			t.Errorf("ParamsCost(%v->%v, %d layers) = %v, schedule cost %v", src, dst, layers, got, wantP)
			return false
		}
		total := int64(layers) * (1 << 18)
		wantD := PlanData(total, src, dst, hw.GPUsPerNode).Cost(hw)
		if got := DataCost(&cs, total, src, dst, hw); got != wantD {
			t.Errorf("DataCost(%v->%v, %d bytes) = %v, schedule cost %v", src, dst, total, got, wantD)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: redistribution coverage holds for random legal layout pairs on
// a 2-node cluster.
func TestPlanParamsCoverageProperty(t *testing.T) {
	layouts := []core.Assignment{
		asgn(t, 0, 8, 8, parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1}),
		asgn(t, 0, 8, 8, parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 1}),
		asgn(t, 0, 8, 8, parallel.Strategy{DP: 1, TP: 2, PP: 4, MicroBatches: 1}),
		asgn(t, 8, 8, 8, parallel.Strategy{DP: 2, TP: 2, PP: 2, MicroBatches: 1}),
		asgn(t, 0, 16, 8, parallel.Strategy{DP: 2, TP: 4, PP: 2, MicroBatches: 1}),
		asgn(t, 0, 4, 8, parallel.Strategy{DP: 2, TP: 2, PP: 1, MicroBatches: 1}),
		asgn(t, 4, 4, 8, parallel.Strategy{DP: 1, TP: 4, PP: 1, MicroBatches: 1}),
	}
	f := func(i, j, l uint8) bool {
		src := layouts[int(i)%len(layouts)]
		dst := layouts[int(j)%len(layouts)]
		layers := 8 * (int(l)%4 + 1) // 8..32
		sched := PlanParams(layers, 1<<20, src, dst, 8)
		sub := &testing.T{}
		verifyCoverage(sub, layers, src, dst, sched)
		return !sub.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
