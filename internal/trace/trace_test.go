package trace

import (
	"math"
	"strings"
	"testing"

	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

func TestDecodeLayerTraceShape(t *testing.T) {
	hw := hardware.DefaultCluster(16)
	// The Fig. 10 comparison: TP=2/PP=16 vs TP=8/PP=4 for a 70B decode
	// layer at batch 2.
	lowTP := DecodeLayerTrace(hw, model.LLaMA70B, parallel.New(4, 2, 16), 2, 2048, true)
	highTP := DecodeLayerTrace(hw, model.LLaMA70B, parallel.New(4, 8, 4), 2, 2048, true)
	if len(lowTP) != 3 || len(highTP) != 3 {
		t.Fatalf("expected 3 segments, got %d and %d", len(lowTP), len(highTP))
	}
	// TP=8 computes each layer faster...
	if highTP[0].Duration >= lowTP[0].Duration {
		t.Error("TP=8 should slice layer compute thinner than TP=2")
	}
	// ...but pays more for its all-reduce.
	if highTP[1].Duration <= lowTP[1].Duration {
		t.Error("TP=8 all-reduce must cost more than TP=2's")
	}
	// And the speedup is far from linear (the paper's observation).
	if ratio := lowTP[0].Duration / highTP[0].Duration; ratio > 3.5 {
		t.Errorf("TP=8 decode speedup %.1f× vs TP=2; should be ≪4×", ratio)
	}
}

func TestTrainLayerTraceShape(t *testing.T) {
	hw := hardware.DefaultCluster(16)
	lo := TrainLayerTrace(hw, model.LLaMA70B, parallel.New(16, 2, 4), 32768, 1024)
	hi := TrainLayerTrace(hw, model.LLaMA70B, parallel.New(4, 8, 4), 32768, 1024)
	if hi[1].Duration <= lo[1].Duration {
		t.Error("TP=8 collective must cost more than TP=2's")
	}
	if hi[0].Duration >= lo[0].Duration {
		t.Error("TP=8 should compute faster per layer")
	}
}

func TestSegmentsStringAndTotal(t *testing.T) {
	s := Segments{{Name: "a", Duration: 1e-3}, {Name: "b", Duration: 2e-3}}
	if math.Abs(s.Total()-3e-3) > 1e-12 {
		t.Errorf("Total = %g", s.Total())
	}
	if str := s.String(); !strings.Contains(str, "a 1000us") || !strings.Contains(str, "|") {
		t.Errorf("String() = %q", str)
	}
}

func TestPlanFractionsSumToOne(t *testing.T) {
	hw := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 1})
	models := core.PPOModels(model.LLaMA7B, model.LLaMA7B)
	p, err := baselines.BuildHeuristic(hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range models {
		costers[role] = gpumodel.NewOracle(hw, ms.Cfg)
	}
	e := estimator.New(hw, costers)
	res, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	f, err := PlanFractions(e, p, res)
	if err != nil {
		t.Fatal(err)
	}
	sum := f.Compute + f.P2PComm + f.CollComm + f.Idle
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %.6f, want 1", sum)
	}
	if f.Compute <= 0 {
		t.Error("compute fraction must be positive")
	}
	if f.Compute >= 1 {
		t.Error("compute cannot be all of GPU time")
	}
}

// TestReaLReducesOverheadFractions reproduces the Fig. 11 claim: a plan with
// disjoint concurrent meshes and tailored strategies spends a larger
// fraction of GPU time computing than the symmetric heuristic.
func TestReaLReducesOverheadFractions(t *testing.T) {
	hw := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 512, PromptLen: 1024, GenLen: 1024, Iterations: 1})
	models := core.PPOModels(model.LLaMA7B, model.LLaMA7B)
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range models {
		costers[role] = gpumodel.NewOracle(hw, ms.Cfg)
	}
	e := estimator.New(hw, costers)

	heur, err := baselines.BuildHeuristic(hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := e.Evaluate(heur)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := PlanFractions(e, heur, hres)
	if err != nil {
		t.Fatal(err)
	}

	// A hand-built ReaL-style plan: generation resharded to low TP.
	real := heur.Clone()
	genMesh := heur.Assign["ActorGen"].Mesh
	real.Assign["ActorGen"] = core.Assignment{Mesh: genMesh,
		Strategy: parallel.Strategy{DP: 8, TP: 2, PP: 1, MicroBatches: 1}}
	hres2, err := e.Evaluate(real)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := PlanFractions(e, real, hres2)
	if err != nil {
		t.Fatal(err)
	}
	if rf.CollComm >= hf.CollComm {
		t.Errorf("lower-TP generation should reduce the collective fraction: %.3f vs %.3f",
			rf.CollComm, hf.CollComm)
	}
}
