package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
	"realhf/internal/runtime"
)

type chromeDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Phase string         `json:"ph"`
		TS    int64          `json:"ts"`
		Dur   int64          `json:"dur"`
		TID   int            `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestExportChromeTrace(t *testing.T) {
	hw := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 1})
	models := core.PPOModels(model.LLaMA7B, model.LLaMA7B)
	plan, err := baselines.BuildHeuristic(hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runtime.RunDefault(plan)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := ExportChromeTrace(rep, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete, meta int
	lastTS := int64(-1)
	for i, e := range doc.TraceEvents {
		switch e.Phase {
		case "X":
			complete++
			if e.Dur < 0 || e.TS < 0 {
				t.Errorf("bad event %d: %+v", i, e)
			}
			if e.TS < lastTS {
				t.Error("complete events must be sorted by start time")
			}
			lastTS = e.TS
		case "M":
			meta++
			if e.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	if complete != len(rep.Timeline) {
		t.Errorf("%d complete events, want %d", complete, len(rep.Timeline))
	}
	if meta == 0 {
		t.Error("trace must name its lanes with thread_name metadata")
	}
}

// TestChromeTraceStreamLanes: an overlapped run with reallocation places
// comm spans on per-device comm lanes (odd tids), named distinctly from the
// compute lanes.
func TestChromeTraceStreamLanes(t *testing.T) {
	hw := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 1})
	p := core.NewPlan(hw, g, core.PPOModels(model.LLaMA7B, model.LLaMA7B))
	m0, _ := mesh.New(0, 8, 8)
	m1, _ := mesh.New(8, 8, 8)
	st := parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 2}
	stGen := parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1}
	p.Assign["ActorGen"] = core.Assignment{Mesh: m0, Strategy: stGen}
	p.Assign["RefInf"] = core.Assignment{Mesh: m0, Strategy: st}
	p.Assign["ActorTrain"] = core.Assignment{Mesh: m0, Strategy: st}
	p.Assign["RewInf"] = core.Assignment{Mesh: m1, Strategy: st}
	p.Assign["CriticInf"] = core.Assignment{Mesh: m1, Strategy: st}
	p.Assign["CriticTrain"] = core.Assignment{Mesh: m1, Strategy: st}

	rep, err := runtime.RunOverlapped(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := ExportChromeTrace(rep, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var commLane, computeLane, commNames int
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "X":
			if e.Cat == "call" {
				if e.TID%runtime.NumStreams != int(runtime.StreamCompute) {
					t.Errorf("call %q on tid %d, want a compute lane", e.Name, e.TID)
				}
				computeLane++
			} else {
				if e.TID%runtime.NumStreams != int(runtime.StreamComm) {
					t.Errorf("comm node %q on tid %d, want a comm lane", e.Name, e.TID)
				}
				commLane++
			}
		case "M":
			if name, _ := e.Args["name"].(string); strings.HasSuffix(name, " comm") {
				commNames++
			}
		}
	}
	if commLane == 0 || computeLane == 0 {
		t.Fatalf("want both lane kinds populated, got %d comm / %d compute", commLane, computeLane)
	}
	if commNames == 0 {
		t.Error("comm lanes must be named 'gpu N comm'")
	}
}
