package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/hardware"
	"realhf/internal/model"
	"realhf/internal/runtime"
)

func TestExportChromeTrace(t *testing.T) {
	hw := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 1})
	models := core.PPOModels(model.LLaMA7B, model.LLaMA7B)
	plan, err := baselines.BuildHeuristic(hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runtime.RunDefault(plan)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := ExportChromeTrace(rep, plan, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    int64  `json:"ts"`
			Dur   int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(rep.Timeline) {
		t.Errorf("%d events, want %d", len(doc.TraceEvents), len(rep.Timeline))
	}
	for i, e := range doc.TraceEvents {
		if e.Phase != "X" || e.Dur < 0 || e.TS < 0 {
			t.Errorf("bad event %d: %+v", i, e)
		}
		if i > 0 && e.TS < doc.TraceEvents[i-1].TS {
			t.Error("events must be sorted by start time")
		}
	}
}
