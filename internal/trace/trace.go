// Package trace produces the kernel-level views of the paper's breakdown
// analysis: simplified per-layer kernel traces (Fig. 10) and the GPU-time
// decomposition into compute, P2P communication, collective communication,
// and idle/bubble time (Fig. 11).
package trace

import (
	"fmt"
	"strings"

	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

// Segment is one labeled span of a simplified kernel trace.
type Segment struct {
	Name     string
	Duration float64 // seconds
}

// Segments is an ordered kernel trace.
type Segments []Segment

// Total sums the trace.
func (s Segments) Total() float64 {
	var t float64
	for _, seg := range s {
		t += seg.Duration
	}
	return t
}

// String renders the trace in the style of Fig. 10.
func (s Segments) String() string {
	var b strings.Builder
	for i, seg := range s {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%s %.0fus", seg.Name, seg.Duration*1e6)
	}
	return b.String()
}

// DecodeLayerTrace reproduces the Fig. 10 (top) view: the per-layer spans of
// one decoding step under a given strategy — the sliced attention+MLP
// forward, the tensor-parallel all-reduce, and the pipeline send/recv and
// synchronization overhead.
func DecodeLayerTrace(hw hardware.Cluster, cfg model.Config, st parallel.Strategy, batch, pos int, cudaGraph bool) Segments {
	o := gpumodel.NewOracle(hw, cfg)
	o.UseCUDAGraph = cudaGraph
	comm := gpumodel.Comm{HW: hw}
	fwd := o.LayerDecode(st.TP, batch, pos)
	arBytes := int64(batch) * int64(cfg.HiddenSize) * model.BytesPerParam
	ar := comm.AllReduce(arBytes, st.TP, false) + 25e-6*float64(st.TP)
	var pp float64
	if st.PP > 1 {
		pp = comm.P2P(arBytes, true) + hw.Net.CollectiveSyncOverhead*float64(st.PP)
	}
	out := Segments{
		{Name: fmt.Sprintf("1/%d Attn+MLP Fwd", st.TP), Duration: fwd},
		{Name: fmt.Sprintf("TP=%d All-Reduce", st.TP), Duration: ar},
	}
	if st.PP > 1 {
		out = append(out, Segment{Name: "PP Send/Recv & Sync", Duration: pp})
	}
	return out
}

// TrainLayerTrace reproduces the Fig. 10 (bottom) view: per-layer spans of a
// training forward pass over `tokens` tokens per micro-batch.
func TrainLayerTrace(hw hardware.Cluster, cfg model.Config, st parallel.Strategy, tokens int64, span float64) Segments {
	o := gpumodel.NewOracle(hw, cfg)
	comm := gpumodel.Comm{HW: hw}
	fwd := o.LayerFwd(st.TP, tokens, span)
	arBytes := tokens * int64(cfg.HiddenSize) * model.BytesPerParam
	ar := comm.AllReduce(arBytes, st.TP, false)
	out := Segments{
		{Name: fmt.Sprintf("1/%d Attn+MLP Fwd", st.TP), Duration: fwd},
		{Name: fmt.Sprintf("TP=%d Scatter-Reduce/All-Gather", st.TP), Duration: ar},
	}
	if st.PP > 1 {
		out = append(out, Segment{Name: "PP Send/Recv", Duration: comm.P2P(arBytes, true)})
	}
	return out
}

// Fractions is the Fig. 11 decomposition of an iteration's total GPU time.
// The four components sum to 1.
type Fractions struct {
	Compute  float64
	P2PComm  float64
	CollComm float64
	Idle     float64
}

func (f Fractions) String() string {
	return fmt.Sprintf("compute %.0f%% | p2p %.0f%% | coll %.0f%% | idle %.0f%%",
		100*f.Compute, 100*f.P2PComm, 100*f.CollComm, 100*f.Idle)
}

// PlanFractions decomposes a plan's estimated iteration into the Fig. 11
// kernel categories. Bubble time inside calls and gaps between calls both
// count as idle; data transfer and parameter reallocation count as
// collective communication (the paper observes they are negligible and
// omits them from the figure).
func PlanFractions(e *estimator.Estimator, p *core.Plan, res *estimator.Result) (Fractions, error) {
	var compute, p2p, coll, busy float64
	for _, sn := range res.Timeline {
		gpus := 0
		for _, m := range sn.Node.Meshes {
			gpus += m.NumGPUs()
		}
		g := float64(gpus)
		switch sn.Node.Kind {
		case core.KindCall:
			bd, err := e.CallBreakdown(p, sn.Node.Call)
			if err != nil {
				return Fractions{}, err
			}
			compute += bd.Compute * g
			p2p += bd.PPComm * g
			coll += (bd.TPComm + bd.DPComm) * g
			busy += (bd.Compute + bd.PPComm + bd.TPComm + bd.DPComm) * g
		default:
			coll += sn.Duration * g
			busy += sn.Duration * g
		}
	}
	total := res.TimeCost * float64(p.Cluster.NumGPUs())
	if total <= 0 {
		return Fractions{}, fmt.Errorf("trace: empty timeline")
	}
	idle := total - busy
	if idle < 0 {
		idle = 0
	}
	norm := compute + p2p + coll + idle
	return Fractions{
		Compute:  compute / norm,
		P2PComm:  p2p / norm,
		CollComm: coll / norm,
		Idle:     idle / norm,
	}, nil
}
