package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"realhf/internal/core"
	"realhf/internal/runtime"
)

// chromeEvent is one entry of the Chrome/Perfetto trace-event format
// ("X" complete events with microsecond timestamps).
type chromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`  // start, microseconds
	Dur   int64  `json:"dur"` // duration, microseconds
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
}

// ExportChromeTrace writes a runtime report's timeline as a Chrome
// trace-event JSON file (load it in chrome://tracing or Perfetto). Each
// executed node becomes one complete event; the "thread" lane is the first
// GPU of the node's mesh, so concurrent calls on disjoint meshes render as
// parallel tracks.
func ExportChromeTrace(rep *runtime.Report, plan *core.Plan, path string) error {
	var events []chromeEvent
	for _, span := range rep.Timeline {
		lane := 0
		if span.Kind == core.KindCall {
			// Place call spans on their mesh's first GPU lane.
			name := span.Label
			for callName, a := range plan.Assign {
				if len(name) >= len(callName) && name[:len(callName)] == callName {
					lane = a.Mesh.First
					break
				}
			}
		}
		events = append(events, chromeEvent{
			Name:  span.Label,
			Cat:   span.Kind.String(),
			Phase: "X",
			TS:    int64(span.StartV * 1e6),
			Dur:   int64((span.EndV - span.StartV) * 1e6),
			PID:   1,
			TID:   lane,
		})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	data, err := json.MarshalIndent(map[string]any{"traceEvents": events}, "", " ")
	if err != nil {
		return fmt.Errorf("trace: marshal chrome trace: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}
