package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"realhf/internal/runtime"
)

// chromeEvent is one entry of the Chrome/Perfetto trace-event format
// ("X" complete events with microsecond timestamps, "M" metadata).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`            // start, microseconds
	Dur   int64          `json:"dur,omitempty"` // duration, microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// ExportChromeTrace writes a runtime report's timeline as a Chrome
// trace-event JSON file (load it in chrome://tracing or Perfetto). Each
// executed node becomes one complete event. Every device contributes two
// trace lanes — a compute lane and a communication lane — so overlapped
// parameter reallocation renders as a parallel track under its device
// rather than interleaving with the calls it hides behind. Lanes are named
// with thread-metadata events ("gpu N compute" / "gpu N comm").
func ExportChromeTrace(rep *runtime.Report, path string) error {
	var events []chromeEvent
	lanes := map[int]runtime.Stream{}
	for _, span := range rep.Timeline {
		tid := span.Lane*runtime.NumStreams + int(span.Stream)
		lanes[tid] = span.Stream
		events = append(events, chromeEvent{
			Name:  span.Label,
			Cat:   span.Kind.String(),
			Phase: "X",
			TS:    int64(span.StartV * 1e6),
			Dur:   int64((span.EndV - span.StartV) * 1e6),
			PID:   1,
			TID:   tid,
		})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].TID < events[j].TID
	})
	meta := make([]chromeEvent, 0, len(lanes))
	for tid, stream := range lanes {
		meta = append(meta, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   tid,
			Args:  map[string]any{"name": fmt.Sprintf("gpu %d %s", tid/runtime.NumStreams, stream)},
		})
	}
	sort.Slice(meta, func(i, j int) bool { return meta[i].TID < meta[j].TID })
	events = append(meta, events...)
	data, err := json.MarshalIndent(map[string]any{"traceEvents": events}, "", " ")
	if err != nil {
		return fmt.Errorf("trace: marshal chrome trace: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}
