// Package parallel implements 3D parallelization strategies (data, tensor,
// pipeline) and micro-batching, the S_i component of an execution plan.
package parallel

import (
	"fmt"

	"realhf/internal/mesh"
	"realhf/internal/model"
)

// Strategy is a 3D parallelization degree assignment plus the number of
// micro-batches mbs_i data is split into (paper §4, Search Space).
//
// ZeRO3 marks DeepSpeed-style fully-sharded data parallelism: parameters,
// gradients and optimizer states are sharded across the DP group and every
// layer is all-gathered on the fly. ReaL's own plans never use it; the
// DeepSpeed-Chat and OpenRLHF baselines do (paper §8.1).
type Strategy struct {
	DP, TP, PP   int
	MicroBatches int
	ZeRO3        bool
}

// New builds a strategy with one micro-batch.
func New(dp, tp, pp int) Strategy { return Strategy{DP: dp, TP: tp, PP: pp, MicroBatches: 1} }

// WorldSize is the number of GPUs the strategy occupies: dp·tp·pp.
func (s Strategy) WorldSize() int { return s.DP * s.TP * s.PP }

// WithMicroBatches returns a copy with the micro-batch count replaced.
func (s Strategy) WithMicroBatches(n int) Strategy {
	s.MicroBatches = n
	return s
}

// Validate checks the strategy against a model, mesh, and batch size.
// Rules:
//   - dp·tp·pp must equal the mesh size (plans never idle part of a mesh);
//   - pp must not exceed the layer count;
//   - tp must not exceed the head count (tensor slicing granularity);
//   - the batch must split evenly into dp shards of at least one sequence,
//     and each shard into MicroBatches micro-batches.
func (s Strategy) Validate(m mesh.Mesh, cfg model.Config, batch int) error {
	if s.DP < 1 || s.TP < 1 || s.PP < 1 || s.MicroBatches < 1 {
		return fmt.Errorf("parallel: degrees must be >=1: %v", s)
	}
	if s.ZeRO3 && (s.TP > 1 || s.PP > 1) {
		return fmt.Errorf("parallel: ZeRO-3 composes with pure data parallelism only: %v", s)
	}
	if s.WorldSize() != m.NumGPUs() {
		return fmt.Errorf("parallel: dp*tp*pp = %d does not fill mesh of %d GPUs", s.WorldSize(), m.NumGPUs())
	}
	if s.PP > cfg.NumLayers {
		return fmt.Errorf("parallel: pp=%d exceeds %d layers", s.PP, cfg.NumLayers)
	}
	if s.TP > cfg.NumKVHeads && s.TP > cfg.NumAttentionHeads {
		return fmt.Errorf("parallel: tp=%d exceeds attention heads", s.TP)
	}
	if batch > 0 {
		// Uneven batch sharding is legal (ZeRO-style systems run dp > batch
		// with idle replicas) but each rank's share must still cover the
		// micro-batch count.
		perDP := (batch + s.DP - 1) / s.DP
		if perDP < s.MicroBatches {
			return fmt.Errorf("parallel: %d sequences per dp rank cannot form %d micro-batches", perDP, s.MicroBatches)
		}
	}
	return nil
}

// TPCrossesNode reports whether the tensor-parallel group would span hosts.
// TP ranks are mapped innermost (consecutive GPUs), so this happens exactly
// when tp exceeds the node size or the mesh itself is a sub-node slice
// smaller than tp (impossible by Validate). The paper prunes such plans.
func (s Strategy) TPCrossesNode(m mesh.Mesh) bool {
	gpusPerNode := m.M
	if m.NumGPUs() < gpusPerNode {
		gpusPerNode = m.NumGPUs()
	}
	return s.TP > gpusPerNode
}

// DPCrossesNode reports whether data-parallel peers span hosts under the
// tp-innermost, dp-middle, pp-outermost rank mapping.
func (s Strategy) DPCrossesNode(m mesh.Mesh) bool {
	gpusPerNode := m.M
	if m.NumGPUs() < gpusPerNode {
		gpusPerNode = m.NumGPUs()
	}
	return s.TP*s.DP > gpusPerNode
}

// PPCrossesNode reports whether adjacent pipeline stages live on different
// hosts.
func (s Strategy) PPCrossesNode(m mesh.Mesh) bool {
	if s.PP == 1 {
		return false
	}
	gpusPerNode := m.M
	if m.NumGPUs() < gpusPerNode {
		gpusPerNode = m.NumGPUs()
	}
	return s.TP*s.DP >= gpusPerNode && m.CrossNode()
}

// LayersPerStage returns ceil(layers/pp), the depth of the deepest stage.
func (s Strategy) LayersPerStage(cfg model.Config) int {
	return (cfg.NumLayers + s.PP - 1) / s.PP
}

func (s Strategy) String() string {
	return fmt.Sprintf("(dp=%d,tp=%d,pp=%d,mbs=%d)", s.DP, s.TP, s.PP, s.MicroBatches)
}

// Enumerate lists every (dp,tp,pp) factorization of n GPUs that satisfies the
// structural caps: tp ≤ maxTP and pp ≤ maxPP. Micro-batch counts are left at
// 1; callers enumerate them separately with MicroBatchOptions.
func Enumerate(n, maxTP, maxPP int) []Strategy {
	var out []Strategy
	for tp := 1; tp <= n && tp <= maxTP; tp *= 2 {
		if n%tp != 0 {
			continue
		}
		rest := n / tp
		for pp := 1; pp <= rest && pp <= maxPP; pp++ {
			if rest%pp != 0 {
				continue
			}
			out = append(out, Strategy{DP: rest / pp, TP: tp, PP: pp, MicroBatches: 1})
		}
	}
	return out
}

// MicroBatchOptions lists the candidate micro-batch counts for a dp shard of
// perDP sequences: powers of two from 1 up to perDP (capped at 64 to bound
// the search space, as real systems do).
func MicroBatchOptions(perDP int) []int {
	var out []int
	for n := 1; n <= perDP && n <= 64; n *= 2 {
		out = append(out, n)
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// EnumerateWithMicroBatches expands Enumerate with all legal micro-batch
// counts for the given global batch size.
func EnumerateWithMicroBatches(n, maxTP, maxPP, batch int) []Strategy {
	var out []Strategy
	for _, s := range Enumerate(n, maxTP, maxPP) {
		if batch%s.DP != 0 {
			continue
		}
		for _, mb := range MicroBatchOptions(batch / s.DP) {
			out = append(out, s.WithMicroBatches(mb))
		}
	}
	return out
}
