package parallel

import (
	"testing"
	"testing/quick"

	"realhf/internal/mesh"
	"realhf/internal/model"
)

func mustMesh(t *testing.T, first, count, m int) mesh.Mesh {
	t.Helper()
	ms, err := mesh.New(first, count, m)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestValidateFillsMesh(t *testing.T) {
	m := mustMesh(t, 0, 16, 8)
	ok := Strategy{DP: 2, TP: 2, PP: 4, MicroBatches: 1}
	if err := ok.Validate(m, model.LLaMA7B, 512); err != nil {
		t.Errorf("valid strategy rejected: %v", err)
	}
	underfill := Strategy{DP: 2, TP: 2, PP: 2, MicroBatches: 1}
	if err := underfill.Validate(m, model.LLaMA7B, 512); err == nil {
		t.Error("strategy with 8 ranks on 16-GPU mesh should be rejected")
	}
}

func TestValidateStructuralCaps(t *testing.T) {
	m := mustMesh(t, 0, 64, 8)
	tooDeep := Strategy{DP: 1, TP: 1, PP: 64, MicroBatches: 1}
	if err := tooDeep.Validate(m, model.LLaMA7B, 512); err == nil {
		t.Error("pp=64 > 32 layers should be rejected")
	}
	deepOK := Strategy{DP: 1, TP: 1, PP: 64, MicroBatches: 1}
	if err := deepOK.Validate(m, model.LLaMA70B, 512); err != nil {
		t.Errorf("pp=64 on 80 layers should be accepted: %v", err)
	}
}

func TestValidateBatchConstraints(t *testing.T) {
	m := mustMesh(t, 0, 8, 8)
	s := Strategy{DP: 8, TP: 1, PP: 1, MicroBatches: 1}
	// Uneven sharding is tolerated (ZeRO-style baselines rely on it)...
	if err := s.Validate(m, model.LLaMA7B, 100); err != nil {
		t.Errorf("batch 100 with dp=8 should be tolerated: %v", err)
	}
	if err := s.Validate(m, model.LLaMA7B, 128); err != nil {
		t.Errorf("batch 128 with dp=8 should be accepted: %v", err)
	}
	// ...but micro-batches beyond the per-rank share are not.
	tiny := Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 8}
	if err := tiny.Validate(m, model.LLaMA7B, 16); err == nil {
		t.Error("4 sequences per dp rank cannot form 8 micro-batches")
	}
}

func TestValidateZeRO3(t *testing.T) {
	m := mustMesh(t, 0, 8, 8)
	ok := Strategy{DP: 8, TP: 1, PP: 1, MicroBatches: 1, ZeRO3: true}
	if err := ok.Validate(m, model.LLaMA7B, 64); err != nil {
		t.Errorf("pure-DP ZeRO-3 should validate: %v", err)
	}
	bad := Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1, ZeRO3: true}
	if err := bad.Validate(m, model.LLaMA7B, 64); err == nil {
		t.Error("ZeRO-3 with tensor parallelism must be rejected")
	}
}

func TestEnumerateFactorizations(t *testing.T) {
	for _, s := range Enumerate(16, 8, 16) {
		if s.WorldSize() != 16 {
			t.Errorf("Enumerate(16) produced %v with world size %d", s, s.WorldSize())
		}
		if s.TP > 8 {
			t.Errorf("tp cap violated: %v", s)
		}
	}
	// n=8, maxTP=8, maxPP=8: tp in {1,2,4,8}; per tp, pp over divisors of 8/tp.
	// tp=1: pp in {1,2,4,8} (4); tp=2: {1,2,4} (3); tp=4: {1,2} (2); tp=8: {1}.
	if got := len(Enumerate(8, 8, 8)); got != 10 {
		t.Errorf("len(Enumerate(8,8,8)) = %d, want 10", got)
	}
}

func TestEnumerateRespectsMaxPP(t *testing.T) {
	for _, s := range Enumerate(64, 8, 4) {
		if s.PP > 4 {
			t.Errorf("pp cap violated: %v", s)
		}
	}
}

func TestCrossNodePredicates(t *testing.T) {
	m16 := mustMesh(t, 0, 16, 8)
	s := Strategy{DP: 2, TP: 8, PP: 1, MicroBatches: 1}
	if s.TPCrossesNode(m16) {
		t.Error("tp=8 fits inside an 8-GPU node")
	}
	if !s.DPCrossesNode(m16) {
		t.Error("dp=2 with tp=8 must span the two nodes")
	}
	sTP16 := Strategy{DP: 1, TP: 16, PP: 1, MicroBatches: 1}
	if !sTP16.TPCrossesNode(m16) {
		t.Error("tp=16 must cross nodes on 8-GPU hosts")
	}
	sub := mustMesh(t, 0, 4, 8)
	s41 := Strategy{DP: 2, TP: 2, PP: 1, MicroBatches: 1}
	if s41.TPCrossesNode(sub) || s41.DPCrossesNode(sub) {
		t.Error("everything fits inside a sub-node mesh")
	}
}

func TestPPCrossesNode(t *testing.T) {
	m := mustMesh(t, 0, 32, 8)
	deep := Strategy{DP: 1, TP: 8, PP: 4, MicroBatches: 1}
	if !deep.PPCrossesNode(m) {
		t.Error("tp=8 stages on 4 nodes: stage boundaries cross nodes")
	}
	shallow := Strategy{DP: 4, TP: 2, PP: 4, MicroBatches: 1} // 4 stages inside... tp*dp=8 -> stage spans node
	_ = shallow
	single := Strategy{DP: 32, TP: 1, PP: 1, MicroBatches: 1}
	if single.PPCrossesNode(m) {
		t.Error("pp=1 never crosses nodes")
	}
}

func TestLayersPerStage(t *testing.T) {
	s := Strategy{DP: 1, TP: 1, PP: 3, MicroBatches: 1}
	if got := s.LayersPerStage(model.LLaMA7B); got != 11 {
		t.Errorf("ceil(32/3) = %d, want 11", got)
	}
	s4 := Strategy{DP: 1, TP: 1, PP: 4, MicroBatches: 1}
	if got := s4.LayersPerStage(model.LLaMA70B); got != 20 {
		t.Errorf("80/4 = %d, want 20", got)
	}
}

func TestMicroBatchOptions(t *testing.T) {
	got := MicroBatchOptions(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("MicroBatchOptions(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MicroBatchOptions(8) = %v, want %v", got, want)
		}
	}
	if got := MicroBatchOptions(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("MicroBatchOptions(0) = %v, want [1]", got)
	}
	for _, n := range MicroBatchOptions(1 << 20) {
		if n > 64 {
			t.Errorf("micro-batch option %d exceeds cap 64", n)
		}
	}
}

func TestEnumerateWithMicroBatchesAllValid(t *testing.T) {
	c := 16
	m := mustMesh(t, 0, c, 8)
	for _, s := range EnumerateWithMicroBatches(c, 8, 16, 512) {
		if err := s.Validate(m, model.LLaMA70B, 512); err != nil {
			t.Errorf("enumerated strategy invalid: %v: %v", s, err)
		}
	}
}

// Property: every enumerated factorization multiplies back to n.
func TestEnumerateProperty(t *testing.T) {
	f := func(k uint8) bool {
		n := 1 << (k % 8) // 1..128
		for _, s := range Enumerate(n, 8, 64) {
			if s.WorldSize() != n || s.TP > 8 || s.PP > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
