package estimator

import (
	"fmt"
	"sort"
	"strings"
)

// Calibration layers profile feedback over the pure cost model: a set of
// per-call multipliers derived from observed runtime durations
// (observed / estimated), applied on top of the analytic tables. The pure
// cost model stays untouched — CallBreakdown and the gpumodel oracles are
// never scaled — so a nil Calibration reproduces the historical estimates
// byte for byte. A Calibration is immutable after construction; deriving an
// updated one (With) allocates a new value, which keeps concurrent
// estimator users race-free and lets caches key entries by Key.
type Calibration struct {
	factors map[string]float64
	key     string
}

// NewCalibration builds a calibration from per-call multipliers. Factors
// that are exactly 1 (no correction) are dropped, so a map of unit factors
// is equivalent to no calibration at all. Non-positive factors are invalid
// and rejected by returning nil (a calibration can speed a call up or slow
// it down, never erase or negate it).
func NewCalibration(factors map[string]float64) *Calibration {
	clean := make(map[string]float64, len(factors))
	for name, f := range factors {
		if f <= 0 || f != f { // non-positive or NaN
			return nil
		}
		if f == 1 {
			continue
		}
		clean[name] = f
	}
	if len(clean) == 0 {
		return nil
	}
	return &Calibration{factors: clean, key: calibKey(clean)}
}

// calibKey canonically encodes the factor set: sorted call names with
// fixed-precision factors, so two calibrations that would produce the same
// estimates share a key.
func calibKey(factors map[string]float64) string {
	names := make([]string, 0, len(factors))
	for name := range factors {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%d:%s=%.6g;", len(name), name, factors[name])
	}
	return b.String()
}

// With derives a calibration with one call's factor replaced, preserving
// immutability. The receiver may be nil (the uncalibrated base).
func (c *Calibration) With(call string, factor float64) *Calibration {
	merged := map[string]float64{}
	if c != nil {
		for name, f := range c.factors {
			merged[name] = f
		}
	}
	merged[call] = factor
	return NewCalibration(merged)
}

// Factor returns the multiplier for a call (1 when uncalibrated). A nil
// receiver is the identity calibration.
func (c *Calibration) Factor(call string) float64 {
	if c == nil {
		return 1
	}
	if f, ok := c.factors[call]; ok {
		return f
	}
	return 1
}

// Factors returns a copy of the non-unit factor map (nil when empty).
func (c *Calibration) Factors() map[string]float64 {
	if c == nil || len(c.factors) == 0 {
		return nil
	}
	out := make(map[string]float64, len(c.factors))
	for name, f := range c.factors {
		out[name] = f
	}
	return out
}

// Key returns the calibration's canonical fingerprint ("" for nil): the
// token caches and planner sessions append to their problem and plan keys so
// calibrated estimates never alias uncalibrated (or differently calibrated)
// ones.
func (c *Calibration) Key() string {
	if c == nil {
		return ""
	}
	return c.key
}

// CalibrationKey is the estimator's attached-calibration fingerprint (""
// when none) — the cache-isolation token mirrored by search.CostCache.
func (e *Estimator) CalibrationKey() string { return e.Calib.Key() }
