package estimator

import (
	"testing"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

func calibPlan(t *testing.T) (*core.Plan, *Estimator) {
	t.Helper()
	cluster := hardware.DefaultCluster(1)
	g := dfg.BuildPPO(dfg.Spec{Batch: 64, PromptLen: 256, GenLen: 256, Iterations: 1})
	p := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA7B, model.LLaMA7B))
	full := mesh.Full(cluster)
	st := parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 1}
	for _, name := range p.CallNames() {
		p.Assign[name] = core.Assignment{Mesh: full, Strategy: st}
	}
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range p.Models {
		costers[role] = gpumodel.NewOracle(cluster, ms.Cfg)
	}
	return p, New(cluster, costers)
}

// TestCalibrationIdentity: a nil calibration, a unit-factor calibration and
// the historical estimator agree byte for byte.
func TestCalibrationIdentity(t *testing.T) {
	p, e := calibPlan(t)
	base, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if c := NewCalibration(map[string]float64{"ActorGen": 1}); c != nil {
		t.Fatalf("unit-factor calibration must collapse to nil, got %v", c.Factors())
	}
	e.Calib = NewCalibration(nil)
	calibrated, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if calibrated.TimeCost != base.TimeCost || calibrated.Cost != base.Cost {
		t.Fatalf("nil calibration changed the estimate: %v vs %v", calibrated.TimeCost, base.TimeCost)
	}
	if e.CalibrationKey() != "" {
		t.Fatalf("nil calibration key = %q, want empty", e.CalibrationKey())
	}
}

// TestCalibrationScalesCallDurations: a per-call factor rescales exactly that
// call's duration and flows into the simulated makespan.
func TestCalibrationScalesCallDurations(t *testing.T) {
	p, e := calibPlan(t)
	base, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	e.Calib = NewCalibration(map[string]float64{"ActorGen": 2})
	scaled, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	wantGen := 2 * base.CallTimes["ActorGen"]
	if got := scaled.CallTimes["ActorGen"]; got < wantGen*0.999 || got > wantGen*1.001 {
		t.Fatalf("ActorGen duration = %v, want %v", got, wantGen)
	}
	if scaled.CallTimes["RefInf"] != base.CallTimes["RefInf"] {
		t.Fatalf("uncalibrated call rescaled: %v vs %v",
			scaled.CallTimes["RefInf"], base.CallTimes["RefInf"])
	}
	if scaled.TimeCost <= base.TimeCost {
		t.Fatalf("slowing generation must slow the plan: %v vs %v", scaled.TimeCost, base.TimeCost)
	}
}

// TestCalibrationKeyCanonical: key is order-independent, distinguishes
// factor sets, and With derives immutably.
func TestCalibrationKeyCanonical(t *testing.T) {
	a := NewCalibration(map[string]float64{"A": 1.5, "B": 0.5})
	b := NewCalibration(map[string]float64{"B": 0.5, "A": 1.5})
	if a.Key() != b.Key() || a.Key() == "" {
		t.Fatalf("equal factor sets must share a key: %q vs %q", a.Key(), b.Key())
	}
	c := a.With("A", 1.25)
	if c.Key() == a.Key() {
		t.Fatal("changed factor must change the key")
	}
	if a.Factor("A") != 1.5 {
		t.Fatalf("With mutated the receiver: Factor(A) = %v", a.Factor("A"))
	}
	if got := c.Factor("Z"); got != 1 {
		t.Fatalf("unknown call factor = %v, want 1", got)
	}
	if NewCalibration(map[string]float64{"A": -1}) != nil {
		t.Fatal("negative factor must be rejected")
	}
}
