package estimator

import (
	"fmt"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/memory"
)

// PlanCost is the scalar slice of a Result that plan search needs to accept
// or reject a proposal: the simulated makespan, the peak device memory, and
// the OOM-penalized search objective. Unlike Result it carries no timeline
// or per-call breakdown, so it is cheap to compute, copy and cache by value.
type PlanCost struct {
	// TimeCost is TimeCost(Gp): the simulated makespan (seconds).
	TimeCost float64
	// MaxMem is the peak bytes of the most loaded device.
	MaxMem int64
	// OOM reports whether MaxMem exceeds device capacity.
	OOM bool
	// Cost is the search objective: TimeCost, ×OOMPenalty·overflow when
	// infeasible — bit-identical to Result.Cost.
	Cost float64
}

// CostOf extracts the PlanCost summary of a full Result.
func CostOf(r *Result) PlanCost {
	return PlanCost{TimeCost: r.TimeCost, MaxMem: r.MaxMem, OOM: r.OOM, Cost: r.Cost}
}

// SessionStats reports an EvalSession's incremental-evaluation counters.
type SessionStats struct {
	// Evals counts Evaluate calls answered.
	Evals int64
	// NodeLookups counts augmented-graph node costings across all evals.
	NodeLookups int64
	// NodeRecosts counts lookups that missed the session-local duration memo
	// and had to be recomputed (or fetched from the shared fallback). After a
	// single-call mutation only the nodes whose inputs changed recost.
	NodeRecosts int64
}

// callDurKey identifies a call node's duration inputs: within one problem a
// call name fixes (role, type, workload, model), so the duration varies only
// with the assignment. The session is bound to one estimator, so the
// calibration is fixed and needs no key component (the shared CostCache,
// which outlives estimators, keys it explicitly).
type callDurKey struct {
	name string
	a    core.Assignment
}

// commDurKey identifies a transfer-style node's duration inputs, mirroring
// search.CostCache's node keys: (kind, role, bytes, src, dst). The role pins
// the model config a realloc schedule depends on; data transfers leave it
// empty, exactly like the augmented-graph builder.
type commDurKey struct {
	kind     core.Kind
	role     dfg.Role
	bytes    int64
	src, dst core.Assignment
}

// canonCommAssignment canonicalizes a transfer endpoint for memoization:
// communication schedules (realloc.PlanParams, realloc.PlanData) and offload
// reload times are pure functions of the endpoint meshes and the DP/TP/PP
// grid — MicroBatches and ZeRO3 never enter them (an offload's strategy-
// dependent shard size is already folded into the node's Bytes). Dropping
// the two fields collapses the endpoint-pair space by the number of
// micro-batch variants per layout, which is what lets the session's comm
// memo saturate during a search instead of recosting a fresh pair on nearly
// every proposal. Offload is likewise dropped: an offload node's cost is a
// pure function of its Bytes (already in the key), and realloc/data
// endpoints never carry it into their schedules. The resulting durations are
// bit-identical by construction; the differential delta-vs-full test
// enforces it.
func canonCommAssignment(a core.Assignment) core.Assignment {
	a.Strategy.MicroBatches = 0
	a.Strategy.ZeRO3 = false
	a.Offload = false
	return a
}

// nodeSig is the full duration signature of one arena slot: every input the
// node's duration depends on, in one comparable struct. Call nodes carry
// (name, assignment) in (name, src); transfer-style nodes carry (kind, role,
// bytes, canonical endpoints). Equal signatures imply equal durations, so a
// slot whose signature survives a rebuild reuses its duration with a single
// struct comparison — no map hashing. The signature alone determines the
// value even when a structural change shifts arena slots; a stale slot
// simply misses and falls back to the memo maps.
type nodeSig struct {
	kind     core.Kind
	name     string
	role     dfg.Role
	bytes    int64
	src, dst core.Assignment
}

// staticKey identifies one role's resting-memory inputs. off is the plan's
// RoleOffloaded verdict: a flip on any of the role's calls — not just the
// home call — moves the resting bf16 copy in or out of host memory, so the
// (role, home) pair alone would go stale under single-offload-flip
// mutations.
type staticKey struct {
	role dfg.Role
	home core.Assignment
	off  bool
}

// activeSigEntry caches one call's last active-bytes computation for the
// maxMem fast path.
type activeSigEntry struct {
	a, home core.Assignment
	act     int64
	ok      bool
}

// activeKey identifies one call's transient-memory inputs: the footprint
// depends on the call (name fixes role/type/workload), its assignment, and
// the role's home (resident weights are discounted at home).
type activeKey struct {
	name    string
	a, home core.Assignment
}

// EvalSession is a reusable, allocation-free incremental evaluator for one
// (problem, estimator) pair. It answers the same question as
// Estimator.Evaluate — TimeCost, MaxMem, OOM and Cost are bit-identical —
// but re-uses everything a single-call mutation cannot have changed:
//
//   - the dataflow topology (topo order, parents, home calls) is prepared
//     once per graph;
//   - the augmented graph is rebuilt into a node arena with the exact
//     construction order of core.BuildAugGraph (so Algorithm 1's heap
//     tie-breaks, and therefore golden plans, are unchanged) without
//     allocating nodes, labels or edge slices;
//   - node durations and per-role memory terms are memoized in session-local
//     maps keyed by value types, so a proposal that moves one RPC only
//     recosts the mutated call and its induced realloc/transfer neighbors;
//   - the Algorithm 1 simulation runs over scratch buffers.
//
// A session is single-goroutine state (each search chain owns one). Cross-
// chain sharing happens through the fallback DurationFunc, typically
// search.CostCache's memoized node coster, which the session consults on
// local misses.
//
// Contract: evaluated plans must assign every call an individually legal
// (mesh, strategy) — the solver candidate sets guarantee this — because the
// session skips the per-node Plan.Validate that full Evaluate re-runs on
// every proposal. Mesh/cluster bounds are still checked, since the simulation
// indexes per-device lanes. Callers outside the solver loop (warm starts,
// caller-provided seeds) must Plan.Validate first.
type EvalSession struct {
	e        *Estimator
	fallback DurationFunc

	// Prepared topology, fixed for one dataflow graph.
	graph       *dfg.Graph
	topo        []*dfg.Node
	parents     [][]*dfg.Node
	homeCall    map[dfg.Role]string
	roleCalls   map[dfg.Role][]string
	firstByName []*dfg.Node
	numGPUs     int

	// Augmented-graph arena, rebuilt in place per Evaluate.
	arena   []*core.AugNode
	used    int
	callIdx []int // dfg node ID -> arena index of its call node

	durations []float64
	sim       simScratch

	// Per-arena-slot duration fast path: the signature and duration each slot
	// held after its last successful costing. Between consecutive evaluations
	// of single-call mutations most slots rebuild with identical signatures,
	// so the common case is one struct compare per node instead of a memo-map
	// lookup.
	sigs      []nodeSig
	sigDur    []float64
	sigFilled []bool

	// Session-local memos (single-goroutine, lock-free).
	callDur   map[callDurKey]float64
	commDur   map[commDurKey]float64
	staticMem map[staticKey]int64
	activeMem map[activeKey]int64
	static    []int64
	peak      []int64

	// Per-call active-bytes fast path, indexed by firstByName position (the
	// memory pass's fixed iteration order): like sigs/sigDur, one struct
	// compare replaces a memo-map hash when the call's assignment and its
	// role's home are unchanged.
	activeSig []activeSigEntry

	stats SessionStats
}

// NewSession builds an incremental evaluation session over the estimator.
// fallback, when non-nil, is consulted on session-local duration misses —
// pass search.CostCache's node coster to share durations across chains; nil
// uses the estimator's NodeDuration directly.
func (e *Estimator) NewSession(fallback DurationFunc) *EvalSession {
	if fallback == nil {
		fallback = e.NodeDuration
	}
	// The memo maps are pre-sized for a search-length solve: growing them
	// from empty re-hashes thousands of large value-type keys per solve,
	// which showed up as double-digit percentages of search profiles.
	return &EvalSession{
		e:        e,
		fallback: fallback,
		callDur:  make(map[callDurKey]float64, 2048),
		commDur:  make(map[commDurKey]float64, 4096),

		staticMem: make(map[staticKey]int64, 256),
		activeMem: make(map[activeKey]int64, 2048),
	}
}

// Stats returns the session's counters.
func (s *EvalSession) Stats() SessionStats { return s.stats }

// Evaluate scores the plan incrementally. The returned PlanCost matches
// Estimator.Evaluate's Result field-for-field, bit for bit.
func (s *EvalSession) Evaluate(p *core.Plan) (PlanCost, error) {
	if err := s.prepare(p); err != nil {
		return PlanCost{}, err
	}
	if err := s.build(p); err != nil {
		return PlanCost{}, err
	}
	nodes := s.arena[:s.used]
	s.durations = growFloats(s.durations, len(nodes))
	for len(s.sigs) < len(nodes) {
		s.sigs = append(s.sigs, nodeSig{})
		s.sigDur = append(s.sigDur, 0)
		s.sigFilled = append(s.sigFilled, false)
	}
	for i, n := range nodes {
		s.stats.NodeLookups++
		sig := sigOf(p, n)
		if s.sigFilled[i] && s.sigs[i] == sig {
			s.durations[i] = s.sigDur[i]
			continue
		}
		d, err := s.duration(p, n, sig)
		if err != nil {
			return PlanCost{}, err
		}
		s.durations[i] = d
		s.sigs[i], s.sigDur[i], s.sigFilled[i] = sig, d, true
	}
	makespan := s.sim.run(nodes, s.durations, s.numGPUs, s.e.OverlapComm, nil)
	maxMem := s.maxMem(p)
	pc := PlanCost{TimeCost: makespan, MaxMem: maxMem, OOM: maxMem > s.e.HW.GPU.MemoryBytes}
	pc.Cost = pc.TimeCost
	if pc.OOM {
		// Same overflow-scaled penalty as Evaluate: the chain keeps a
		// gradient towards feasibility deep inside the infeasible region.
		over := float64(pc.MaxMem) / float64(s.e.HW.GPU.MemoryBytes)
		pc.Cost *= OOMPenalty * over
	}
	s.stats.Evals++
	return pc, nil
}

// prepare (re)binds the session to the plan's dataflow graph, precomputing
// everything assignment-independent: topo order, parent lists (Graph.Parents
// allocates per call), the name of each role's home call, and the first node
// of each distinct call name (the memory pass's dedup order).
func (s *EvalSession) prepare(p *core.Plan) error {
	if s.graph == p.Graph {
		return nil
	}
	topo, err := p.Graph.TopoSort()
	if err != nil {
		return err
	}
	s.graph = p.Graph
	s.topo = topo
	s.numGPUs = p.Cluster.NumGPUs()
	s.parents = make([][]*dfg.Node, len(p.Graph.Nodes))
	for _, d := range p.Graph.Nodes {
		s.parents[d.ID] = p.Graph.Parents(d)
	}
	// Home call per role, mirroring Plan.HomeOf on fully-assigned plans: the
	// role's first Train-typed call in Nodes order, else its first call.
	s.homeCall = make(map[dfg.Role]string, 4)
	homeTrain := make(map[dfg.Role]bool, 4)
	for _, n := range p.Graph.Nodes {
		if _, ok := s.homeCall[n.Role]; !ok {
			s.homeCall[n.Role] = n.Name
			homeTrain[n.Role] = n.Type == dfg.Train
		} else if !homeTrain[n.Role] && n.Type == dfg.Train {
			s.homeCall[n.Role] = n.Name
			homeTrain[n.Role] = true
		}
	}
	s.firstByName = s.firstByName[:0]
	seen := make(map[string]bool, len(p.Graph.Nodes))
	s.roleCalls = make(map[dfg.Role][]string, 4)
	for _, n := range p.Graph.Nodes {
		if !seen[n.Name] {
			seen[n.Name] = true
			s.firstByName = append(s.firstByName, n)
			s.roleCalls[n.Role] = append(s.roleCalls[n.Role], n.Name)
		}
	}
	s.activeSig = make([]activeSigEntry, len(s.firstByName))
	if len(s.callIdx) < len(p.Graph.Nodes) {
		s.callIdx = make([]int, len(p.Graph.Nodes))
	}
	// The memos key on (name, assignment) and (role, home) — both fixed by
	// the graph+models pair — so a graph change must drop them, along with
	// the per-slot signature fast path.
	clear(s.callDur)
	clear(s.commDur)
	clear(s.staticMem)
	clear(s.activeMem)
	for i := range s.sigFilled {
		s.sigFilled[i] = false
	}
	return nil
}

// node takes the next arena slot, recycling its slices.
func (s *EvalSession) node(k core.Kind) *core.AugNode {
	if s.used == len(s.arena) {
		s.arena = append(s.arena, &core.AugNode{})
	}
	n := s.arena[s.used]
	*n = core.AugNode{
		ID:       s.used,
		Kind:     k,
		Meshes:   n.Meshes[:0],
		Parents:  n.Parents[:0],
		Children: n.Children[:0],
	}
	s.used++
	return n
}

func (s *EvalSession) edge(parent, child *core.AugNode) {
	parent.Children = append(parent.Children, child.ID)
	child.Parents = append(child.Parents, parent.ID)
}

// build expands the plan into the arena, replicating core.BuildAugGraph's
// construction order exactly (node IDs, edge order) minus labels and the
// per-node strategy validation the session contract waives.
func (s *EvalSession) build(p *core.Plan) error {
	s.used = 0
	for _, d := range s.topo {
		a, ok := p.Assign[d.Name]
		if !ok {
			return fmt.Errorf("estimator: call %q unassigned", d.Name)
		}
		if _, ok := p.Models[d.Role]; !ok {
			return fmt.Errorf("estimator: role %q has no model", d.Role)
		}
		cn := s.node(core.KindCall)
		cn.Call, cn.Role = d, d.Role
		cn.Meshes = append(cn.Meshes, a.Mesh)
		s.callIdx[d.ID] = cn.ID
	}

	for _, d := range s.topo {
		cn := s.arena[s.callIdx[d.ID]]
		a := p.Assign[d.Name]
		ms := p.Models[d.Role]
		home := p.Assign[s.homeCall[d.Role]]

		switch {
		case a.Offload && !ms.Trainable:
			off := s.node(core.KindOffload)
			off.Role = d.Role
			off.Meshes = append(off.Meshes, a.Mesh)
			off.Bytes = memory.ParamShardBytes(ms.Params(), a.Strategy) * int64(a.Mesh.NumGPUs())
			off.Dst = a
			for _, par := range s.parents[d.ID] {
				if par.Role == d.Role {
					s.edge(s.arena[s.callIdx[par.ID]], off)
				}
			}
			s.edge(off, cn)
		case !a.Equal(home):
			re := s.node(core.KindParamRealloc)
			re.Role = d.Role
			re.Meshes = append(re.Meshes, home.Mesh, a.Mesh)
			re.Bytes = ms.Params() * 2
			re.Src, re.Dst = home, a
			for _, par := range s.parents[d.ID] {
				if par.Role == d.Role {
					s.edge(s.arena[s.callIdx[par.ID]], re)
				}
			}
			s.edge(re, cn)
		}

		for _, par := range s.parents[d.ID] {
			pn := s.arena[s.callIdx[par.ID]]
			pa := p.Assign[par.Name]
			if par.Role == d.Role && par.Type == dfg.Train {
				// Pure version dependency: the realloc/offload node (or the
				// call itself) already waits on it.
				s.edge(pn, cn)
				continue
			}
			if pa.Equal(a) {
				s.edge(pn, cn)
				continue
			}
			x := s.node(core.KindDataTransfer)
			x.Meshes = append(x.Meshes, pa.Mesh, a.Mesh)
			x.Bytes = par.Work.TotalTokens() * core.DataBytesPerToken
			x.Src, x.Dst = pa, a
			s.edge(pn, x)
			s.edge(x, cn)
		}
	}

	// Same guard as Estimator.validateMeshes: the simulation indexes
	// per-device lanes by global GPU, so out-of-cluster meshes must error
	// rather than silently under-cost.
	for _, n := range s.arena[:s.used] {
		for _, m := range n.Meshes {
			if m.First < 0 || m.First+m.Count > s.numGPUs {
				return fmt.Errorf("estimator: %s node occupies GPUs [%d,%d) outside the %d-GPU cluster",
					n.Kind, m.First, m.First+m.Count, s.numGPUs)
			}
		}
	}
	return nil
}

// sigOf assembles one arena node's duration signature. Call nodes use their
// (name, assignment) with Offload cleared — a call's compute duration does
// not depend on how its weights arrived, so a single offload flip re-costs
// only the appearing/disappearing offload node, not the call — and
// transfer-style nodes their (kind, role, bytes) and canonicalized
// endpoints.
func sigOf(p *core.Plan, n *core.AugNode) nodeSig {
	if n.Kind == core.KindCall {
		a := p.Assign[n.Call.Name]
		a.Offload = false
		return nodeSig{kind: core.KindCall, name: n.Call.Name, src: a}
	}
	return nodeSig{
		kind: n.Kind, role: n.Role, bytes: n.Bytes,
		src: canonCommAssignment(n.Src), dst: canonCommAssignment(n.Dst),
	}
}

// duration memoizes one arena node's duration in the session-local maps,
// consulting the shared fallback only on a local miss. The keys mirror
// search.CostCache's node keys, so an entry is invalidated exactly when a
// mutation changes the node's cost inputs: a call node by its assignment, a
// transfer-style node by its (kind, role, bytes, endpoints). sig must be
// sigOf(p, n); its fields double as the map keys.
func (s *EvalSession) duration(p *core.Plan, n *core.AugNode, sig nodeSig) (float64, error) {
	if n.Kind == core.KindCall {
		k := callDurKey{name: sig.name, a: sig.src}
		if d, ok := s.callDur[k]; ok {
			return d, nil
		}
		s.stats.NodeRecosts++
		d, err := s.fallback(p, n)
		if err != nil {
			return 0, err
		}
		s.callDur[k] = d
		return d, nil
	}
	k := commDurKey{kind: sig.kind, role: sig.role, bytes: sig.bytes, src: sig.src, dst: sig.dst}
	if d, ok := s.commDur[k]; ok {
		return d, nil
	}
	s.stats.NodeRecosts++
	d, err := s.fallback(p, n)
	if err != nil {
		return 0, err
	}
	s.commDur[k] = d
	return d, nil
}

// roleOffloaded mirrors core.Plan.RoleOffloaded over the prepared per-role
// call lists: true iff the role has calls and every one offloads.
func (s *EvalSession) roleOffloaded(p *core.Plan, role dfg.Role) bool {
	names := s.roleCalls[role]
	if len(names) == 0 {
		return false
	}
	for _, name := range names {
		if !p.Assign[name].Offload {
			return false
		}
	}
	return true
}

// maxMem computes MaxMem(Gp) with the same arithmetic as Estimator.memory,
// memoizing the per-role static footprint and per-call active footprint.
func (s *EvalSession) maxMem(p *core.Plan) int64 {
	n := s.numGPUs
	if cap(s.static) < n {
		s.static = make([]int64, n)
		s.peak = make([]int64, n)
	}
	static, peak := s.static[:n], s.peak[:n]
	for i := range static {
		static[i], peak[i] = 0, 0
	}

	for role, ms := range p.Models {
		homeName, ok := s.homeCall[role]
		if !ok {
			continue // role not in the graph, as HomeOf reports
		}
		home := p.Assign[homeName]
		off := s.roleOffloaded(p, role)
		k := staticKey{role: role, home: home, off: off}
		b, ok := s.staticMem[k]
		if !ok {
			b = memory.Static(ms.Params(), home.Strategy, memory.StaticOpts{
				Trainable:            ms.Trainable,
				ShardOptimizerOverDP: true,
				OffloadParams:        off,
			})
			s.staticMem[k] = b
		}
		for gpu := home.Mesh.First; gpu < home.Mesh.First+home.Mesh.Count; gpu++ {
			static[gpu] += b
		}
	}

	for i, node := range s.firstByName {
		a := p.Assign[node.Name]
		home := p.Assign[s.homeCall[node.Role]]
		sg := &s.activeSig[i]
		var act int64
		if sg.ok && sg.a == a && sg.home == home {
			act = sg.act
		} else {
			k := activeKey{name: node.Name, a: a, home: home}
			var hit bool
			act, hit = s.activeMem[k]
			if !hit {
				act = CallActiveBytes(p, node)
				s.activeMem[k] = act
			}
			*sg = activeSigEntry{a: a, home: home, act: act, ok: true}
		}
		for gpu := a.Mesh.First; gpu < a.Mesh.First+a.Mesh.Count; gpu++ {
			if act > peak[gpu] {
				peak[gpu] = act
			}
		}
	}

	var maxMem int64
	for gpu := 0; gpu < n; gpu++ {
		if m := static[gpu] + peak[gpu]; m > maxMem {
			maxMem = m
		}
	}
	return maxMem
}
