// Package estimator implements the paper's lightweight runtime estimator
// (§5.1 and Algorithm 1): given an execution plan, it predicts the plan's
// iteration time — scheduling the augmented dataflow graph with a priority
// queue under the constraint that nodes on overlapping device meshes never
// run concurrently — and its peak per-device memory. The cost function
// multiplies the time by a large penalty when the plan would not fit
// (§5.2).
package estimator

import (
	"fmt"
	"math"
	"sync"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/memory"
	"realhf/internal/realloc"
)

// OOMPenalty is the paper's α: plans that exceed device memory keep a finite
// but strongly discouraged cost so the MCMC chain can traverse them.
const OOMPenalty = 100.0

// Estimator predicts execution-plan cost from per-model cost tables.
type Estimator struct {
	HW hardware.Cluster
	// Costers maps each model role to its per-layer cost source — profiled
	// tables in the real pipeline, or the oracle directly for ground truth.
	Costers map[dfg.Role]gpumodel.ModelCoster
	Comm    gpumodel.Comm
	// OverlapComm mirrors the runtime engine's option of the same name:
	// when set, Algorithm 1's simulation gives every device a second lane
	// for communication nodes (core.Kind.CommLike), so parameter
	// reallocation, data transfer and offload overlap with computation
	// instead of serializing on the device. The default (false) keeps the
	// historical fully-serialized schedule, so search results and golden
	// plans are unaffected unless a caller opts in.
	OverlapComm bool
	// Calib layers profile feedback over the pure cost model: NodeDuration
	// multiplies each call node's analytic duration by the calibration's
	// per-call factor. nil (the default) is the identity — existing
	// estimates, searches and golden plans are byte-identical. Caches keyed
	// on estimates must fold CalibrationKey into their keys (search.CostCache
	// does), so calibrated problems never poison uncalibrated ones.
	Calib *Calibration
}

// New builds an estimator over the given per-role cost sources.
func New(hw hardware.Cluster, costers map[dfg.Role]gpumodel.ModelCoster) *Estimator {
	return &Estimator{HW: hw, Costers: costers, Comm: gpumodel.Comm{HW: hw}}
}

// CallSpecOf resolves the gpumodel.CallSpec of a dfg node under a plan.
func CallSpecOf(p *core.Plan, n *dfg.Node) (gpumodel.CallSpec, error) {
	a, ok := p.AssignmentOf(n)
	if !ok {
		return gpumodel.CallSpec{}, fmt.Errorf("estimator: call %q unassigned", n.Name)
	}
	ms, ok := p.Models[n.Role]
	if !ok {
		return gpumodel.CallSpec{}, fmt.Errorf("estimator: role %q has no model", n.Role)
	}
	return gpumodel.CallSpec{
		Cfg: ms.Cfg, IsCritic: ms.IsCritic, Type: n.Type, Work: n.Work,
		Strategy: a.Strategy, Mesh: a.Mesh,
	}, nil
}

// CallBreakdown estimates the duration and kernel-category breakdown of one
// call.
func (e *Estimator) CallBreakdown(p *core.Plan, n *dfg.Node) (gpumodel.Breakdown, error) {
	spec, err := CallSpecOf(p, n)
	if err != nil {
		return gpumodel.Breakdown{}, err
	}
	mc, ok := e.Costers[n.Role]
	if !ok {
		return gpumodel.Breakdown{}, fmt.Errorf("estimator: no coster for role %q", n.Role)
	}
	return gpumodel.AssembleCall(mc, e.Comm, spec), nil
}

// DurationFunc costs one augmented-graph node under a plan. Implementations
// must be pure with respect to the plan and node (no retained references, no
// mutation) so that Evaluate stays safe for concurrent use.
type DurationFunc func(p *core.Plan, n *core.AugNode) (float64, error)

// NodeDuration estimates one augmented-graph node. It is the estimator's
// default DurationFunc: a pure function of the plan and node that touches
// only immutable estimator state (cost tables, hardware model), so it is
// safe to call from concurrent search chains. The search layer wraps it
// with a memoizing cache keyed by (call, mesh, strategy).
func (e *Estimator) NodeDuration(p *core.Plan, n *core.AugNode) (float64, error) {
	switch n.Kind {
	case core.KindCall:
		b, err := e.CallBreakdown(p, n.Call)
		if err != nil {
			return 0, err
		}
		return b.Total() * e.Calib.Factor(n.Call.Name), nil
	case core.KindParamRealloc:
		// The cost-only planner is bit-equal to PlanParams(...).Cost(hw) but
		// skips materializing the op list, which otherwise dominates the
		// search hot path's allocations. The scratch is pooled because this
		// method must stay safe for concurrent chains.
		ms := p.Models[n.Role]
		cs := costScratchPool.Get().(*realloc.CostScratch)
		d := realloc.ParamsCost(cs, ms.Cfg.NumLayers, ms.Cfg.LayerParamBytes(),
			n.Src, n.Dst, e.HW)
		costScratchPool.Put(cs)
		return d, nil
	case core.KindDataTransfer:
		cs := costScratchPool.Get().(*realloc.CostScratch)
		d := realloc.DataCost(cs, n.Bytes, n.Src, n.Dst, e.HW)
		costScratchPool.Put(cs)
		return d, nil
	case core.KindOffload:
		perGPU := n.Bytes / int64(n.Dst.Mesh.NumGPUs())
		return e.Comm.OffloadTransfer(perGPU), nil
	}
	return 0, fmt.Errorf("estimator: unknown node kind %v", n.Kind)
}

// costScratchPool recycles the cost-only planners' working storage across
// NodeDuration calls from concurrent search chains.
var costScratchPool = sync.Pool{New: func() any { return new(realloc.CostScratch) }}

// ScheduledNode is one entry of the simulated timeline.
type ScheduledNode struct {
	Node     *core.AugNode
	Start    float64
	End      float64
	Duration float64
}

// Result carries the estimate of one plan.
type Result struct {
	// TimeCost is TimeCost(Gp): the simulated makespan of the augmented
	// graph (seconds).
	TimeCost float64
	// MaxMem is the peak bytes of the most loaded device.
	MaxMem int64
	// OOM reports whether MaxMem exceeds device capacity.
	OOM bool
	// Cost is the search objective: TimeCost, ×OOMPenalty when infeasible.
	Cost float64
	// Timeline is the full simulated schedule.
	Timeline []ScheduledNode
	// CallTimes maps call names to their (iteration-0) durations, for
	// Tables 2–5 rendering.
	CallTimes map[string]float64
	// StaticBytesTotal is the summed resting memory across devices, used by
	// the paper's static-memory-utilization heuristic (Fig. 17 right).
	StaticBytesTotal int64
}

// StaticUtilization is total static memory over total cluster HBM.
func (r *Result) StaticUtilization(hw hardware.Cluster) float64 {
	return float64(r.StaticBytesTotal) / (float64(hw.GPU.MemoryBytes) * float64(hw.NumGPUs()))
}

// ModelStateUtilization is the paper's Fig. 17 heuristic metric: the
// essential model state of the experiment (weights, gradients and optimizer
// states, without data-parallel replication) as a fraction of total cluster
// HBM. It falls as devices are added at a fixed problem size; below ~60% the
// paper observes diminishing returns from further GPUs.
func ModelStateUtilization(p *core.Plan) float64 {
	var state int64
	for _, ms := range p.Models {
		if ms.Trainable {
			state += ms.Params() * 16 // bf16 weights+grads, fp32 master+moments
		} else {
			state += ms.Params() * 2
		}
	}
	total := float64(p.Cluster.GPU.MemoryBytes) * float64(p.Cluster.NumGPUs())
	return float64(state) / total
}

// readyQueue orders nodes by ReadyTime (Algorithm 1's priority queue). The
// sift operations replicate container/heap's up/down exactly — same strict
// comparisons, same swap order — so equal-ready ties pop in the identical
// order the historical heap produced, keeping golden plans byte-stable. The
// hand-rolled form exists to avoid container/heap's interface boxing, which
// allocated on every push and pop in the search hot loop.
type readyItem struct {
	id    int
	ready float64
}

type readyQueue []readyItem

func (q *readyQueue) push(it readyItem) {
	*q = append(*q, it)
	s := *q
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].ready < s[i].ready) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (q *readyQueue) pop() readyItem {
	s := *q
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].ready < s[j].ready {
			j = j2
		}
		if !(s[j].ready < s[i].ready) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*q = s[:n]
	return it
}

// Evaluate estimates a plan: it builds the augmented graph, runs Algorithm 1
// to obtain TimeCost(Gp), computes MaxMem(Gp), and combines them into the
// search cost. It is pure and race-free: concurrent Evaluate calls on
// distinct plan clones never interfere.
func (e *Estimator) Evaluate(p *core.Plan) (*Result, error) {
	return e.EvaluateWith(p, e.NodeDuration)
}

// EvaluateWith is Evaluate with an injected node coster — the hook the
// search layer's shared cost cache uses to memoize per-call durations
// across chains. The returned Result must be treated as immutable by
// callers: the cache hands the same pointer to every chain that revisits a
// plan fingerprint.
func (e *Estimator) EvaluateWith(p *core.Plan, dur DurationFunc) (*Result, error) {
	g, err := p.BuildAugGraph()
	if err != nil {
		return nil, err
	}
	if err := e.validateMeshes(g); err != nil {
		return nil, err
	}
	durations := make([]float64, len(g.Nodes))
	for _, n := range g.Nodes {
		d, err := dur(p, n)
		if err != nil {
			return nil, err
		}
		durations[n.ID] = d
	}

	timeline, makespan := simulate(g, durations, e.HW.NumGPUs(), e.OverlapComm)

	maxMem, staticTotal := e.memory(p)
	res := &Result{
		TimeCost:         makespan,
		MaxMem:           maxMem,
		OOM:              maxMem > e.HW.GPU.MemoryBytes,
		Timeline:         timeline,
		CallTimes:        map[string]float64{},
		StaticBytesTotal: staticTotal,
	}
	res.Cost = res.TimeCost
	if res.OOM {
		// Scale the penalty by the overflow so the chain keeps a gradient
		// towards feasibility even deep inside the infeasible region.
		over := float64(res.MaxMem) / float64(e.HW.GPU.MemoryBytes)
		res.Cost *= OOMPenalty * over
	}
	for _, sn := range timeline {
		if sn.Node.Kind == core.KindCall && sn.Node.Call.Iter == 0 {
			res.CallTimes[sn.Node.Call.Name] = sn.Duration
		}
	}
	return res, nil
}

// validateMeshes rejects augmented graphs whose nodes occupy devices outside
// the cluster. simulate indexes its per-device lanes by global GPU, so a
// mesh extending past the cluster would otherwise cost nothing on the
// missing devices and silently under-cost the plan.
func (e *Estimator) validateMeshes(g *core.AugGraph) error {
	numGPUs := e.HW.NumGPUs()
	for _, n := range g.Nodes {
		for _, m := range n.Meshes {
			if m.First < 0 || m.First+m.Count > numGPUs {
				return fmt.Errorf("estimator: node %q occupies GPUs [%d,%d) outside the %d-GPU cluster",
					n.Label, m.First, m.First+m.Count, numGPUs)
			}
		}
	}
	return nil
}

// simulate is Algorithm 1: nodes become ready when all parents finish; the
// earliest-ready node starts at max(ready, last end time of any device lane
// it occupies); devices record the node's end. The makespan is the max end
// time.
//
// With overlap disabled each device is a single lane and the schedule is
// bit-identical to the historical simulation. With overlap enabled each
// device has a compute lane and a communication lane: communication nodes
// (core.Kind.CommLike) only serialize against other communication on the
// same device, mirroring the runtime engine's per-worker streams.
func simulate(g *core.AugGraph, durations []float64, numGPUs int, overlap bool) ([]ScheduledNode, float64) {
	var sc simScratch
	timeline := make([]ScheduledNode, 0, len(g.Nodes))
	makespan := sc.run(g.Nodes, durations, numGPUs, overlap, &timeline)
	return timeline, makespan
}

// simScratch holds the backing arrays of one Algorithm 1 run so repeated
// simulations (the incremental EvalSession's hot loop) reuse them instead of
// reallocating per evaluation. A scratch is single-goroutine state.
type simScratch struct {
	indeg   []int
	readyAt []float64
	lastEnd []float64
	q       readyQueue
}

// run executes Algorithm 1 over nodes (indexed by dense node IDs) and returns
// the makespan. When timeline is non-nil the full schedule is appended to it.
// The scheduling order — heap tie-breaks included — is byte-identical to the
// historical simulate.
func (sc *simScratch) run(nodes []*core.AugNode, durations []float64, numGPUs int, overlap bool, timeline *[]ScheduledNode) float64 {
	sc.indeg = growInts(sc.indeg, len(nodes))
	sc.readyAt = growFloats(sc.readyAt, len(nodes))
	for _, n := range nodes {
		// Node IDs are dense, so this writes every indeg slot; readyAt must
		// be cleared explicitly.
		sc.indeg[n.ID] = len(n.Parents)
		sc.readyAt[n.ID] = 0
	}
	lanes := 1
	if overlap {
		lanes = 2
	}
	sc.lastEnd = growFloats(sc.lastEnd, numGPUs*lanes)
	for i := range sc.lastEnd {
		sc.lastEnd[i] = 0
	}
	indeg, readyAt, lastEnd := sc.indeg, sc.readyAt, sc.lastEnd

	q := sc.q[:0]
	for _, n := range nodes {
		if indeg[n.ID] == 0 {
			q.push(readyItem{id: n.ID, ready: 0})
		}
	}
	var makespan float64
	for len(q) > 0 {
		it := q.pop()
		n := nodes[it.id]
		lane := 0
		if overlap && n.Kind.CommLike() {
			lane = 1
		}
		start := it.ready
		// Mesh bounds were validated against the cluster when the augmented
		// graph was built, so the lane indexing needs no clamp.
		for _, m := range n.Meshes {
			for gpu := m.First; gpu < m.First+m.Count; gpu++ {
				if lastEnd[gpu*lanes+lane] > start {
					start = lastEnd[gpu*lanes+lane]
				}
			}
		}
		end := start + durations[it.id]
		for _, m := range n.Meshes {
			for gpu := m.First; gpu < m.First+m.Count; gpu++ {
				lastEnd[gpu*lanes+lane] = end
			}
		}
		if timeline != nil {
			*timeline = append(*timeline, ScheduledNode{Node: n, Start: start, End: end, Duration: durations[it.id]})
		}
		if end > makespan {
			makespan = end
		}
		for _, c := range n.Children {
			if readyAt[c] < end {
				readyAt[c] = end
			}
			indeg[c]--
			if indeg[c] == 0 {
				q.push(readyItem{id: c, ready: readyAt[c]})
			}
		}
	}
	sc.q = q[:0]
	return makespan
}

// growInts and growFloats return s resized to n, reusing the backing array
// when it is large enough. Contents are unspecified; callers overwrite.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// StaticPerGPU returns each device's resting memory: the static footprint of
// every model homed on it. Shared by the estimator's MaxMem computation and
// the runtime engine's worker initialization.
func StaticPerGPU(p *core.Plan) []int64 {
	static := make([]int64, p.Cluster.NumGPUs())
	for role, ms := range p.Models {
		home, ok := p.HomeOf(role)
		if !ok {
			continue
		}
		b := memory.Static(ms.Params(), home.Strategy, memory.StaticOpts{
			Trainable:            ms.Trainable,
			ShardOptimizerOverDP: true,
			OffloadParams:        p.RoleOffloaded(role),
		})
		for gpu := home.Mesh.First; gpu < home.Mesh.First+home.Mesh.Count; gpu++ {
			static[gpu] += b
		}
	}
	return static
}

// CallActiveBytes returns the transient per-GPU bytes of one call,
// discounting weights already resident in the role's static home allocation.
func CallActiveBytes(p *core.Plan, node *dfg.Node) int64 {
	spec, err := CallSpecOf(p, node)
	if err != nil {
		return 0
	}
	act := memory.Active(spec)
	a := p.Assign[node.Name]
	home, _ := p.HomeOf(node.Role)
	// The discount applies only when the call reuses the device-resident home
	// copy: an offloaded call sources its weights from host memory, so the
	// working copy is genuinely extra bytes even at home.
	if a.Equal(home) && !a.Offload {
		ms := p.Models[node.Role]
		shard := memory.ParamShardBytes(ms.Params(), a.Strategy)
		if a.Strategy.ZeRO3 {
			shard = ms.Params() / int64(a.Strategy.DP) * 2
		}
		act -= shard
		if act < 0 {
			act = 0
		}
	}
	return act
}

// memory computes MaxMem(Gp): per device, the resting (static) memory of
// every model homed there plus the largest active footprint among the calls
// scheduled on it.
func (e *Estimator) memory(p *core.Plan) (maxMem, staticTotal int64) {
	n := p.Cluster.NumGPUs()
	static := StaticPerGPU(p)
	peakActive := make([]int64, n)
	for _, b := range static {
		staticTotal += b
	}

	seen := map[string]bool{}
	for _, node := range p.Graph.Nodes {
		if seen[node.Name] {
			continue
		}
		seen[node.Name] = true
		act := CallActiveBytes(p, node)
		a := p.Assign[node.Name]
		for gpu := a.Mesh.First; gpu < a.Mesh.First+a.Mesh.Count; gpu++ {
			if act > peakActive[gpu] {
				peakActive[gpu] = act
			}
		}
	}

	for gpu := 0; gpu < n; gpu++ {
		if m := static[gpu] + peakActive[gpu]; m > maxMem {
			maxMem = m
		}
	}
	return maxMem, staticTotal
}

// Throughput converts a plan's iteration FLOPs and estimated time into the
// paper's PFLOP/s metric.
func Throughput(p *core.Plan, timeCost float64) float64 {
	if timeCost <= 0 {
		return 0
	}
	var flops float64
	iters := 0
	for _, n := range p.Graph.Nodes {
		if n.Iter+1 > iters {
			iters = n.Iter + 1
		}
		spec, err := CallSpecOf(p, n)
		if err != nil {
			continue
		}
		flops += gpumodel.CallFLOPs(spec)
	}
	if iters > 0 {
		// Report per-iteration throughput (time already spans all iters).
		_ = iters
	}
	return flops / timeCost / 1e15
}

// GPUSeconds sums busy GPU time over the timeline — the denominator of
// utilization breakdowns.
func GPUSeconds(timeline []ScheduledNode) float64 {
	var s float64
	for _, sn := range timeline {
		gpus := 0
		for _, m := range sn.Node.Meshes {
			gpus += m.NumGPUs()
		}
		s += sn.Duration * float64(gpus)
	}
	return s
}

// Makespan returns the end of the last node, guarding empty timelines.
func Makespan(timeline []ScheduledNode) float64 {
	var m float64
	for _, sn := range timeline {
		m = math.Max(m, sn.End)
	}
	return m
}
