package estimator

import (
	"math"
	"strings"
	"testing"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

// oracleCosters builds ground-truth costers for every role of a plan.
func oracleCosters(hw hardware.Cluster, models map[dfg.Role]core.ModelSpec) map[dfg.Role]gpumodel.ModelCoster {
	out := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range models {
		out[role] = gpumodel.NewOracle(hw, ms.Cfg)
	}
	return out
}

func symmetricPlan(t *testing.T, nodes int, actor, critic model.Config) *core.Plan {
	t.Helper()
	cluster := hardware.DefaultCluster(nodes)
	g := dfg.BuildPPO(dfg.Spec{Batch: 512, PromptLen: 1024, GenLen: 1024, Iterations: 1})
	p := core.NewPlan(cluster, g, core.PPOModels(actor, critic))
	full := mesh.Full(cluster)
	st := parallel.Strategy{DP: cluster.NumGPUs() / 8, TP: 8, PP: 1, MicroBatches: 4}
	for _, name := range p.CallNames() {
		p.Assign[name] = core.Assignment{Mesh: full, Strategy: st}
	}
	return p
}

func newEstimator(p *core.Plan) *Estimator {
	return New(p.Cluster, oracleCosters(p.Cluster, p.Models))
}

func TestEvaluateSymmetricPlan(t *testing.T) {
	p := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B)
	e := newEstimator(p)
	res, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeCost <= 0 {
		t.Fatal("TimeCost must be positive")
	}
	if len(res.CallTimes) != 6 {
		t.Errorf("CallTimes has %d entries, want 6", len(res.CallTimes))
	}
	// Everything shares the full mesh: the makespan is the sum of all node
	// durations.
	var sum float64
	for _, sn := range res.Timeline {
		sum += sn.Duration
	}
	if math.Abs(sum-res.TimeCost) > 1e-9*sum {
		t.Errorf("symmetric plan should serialize: sum %.3f vs makespan %.3f", sum, res.TimeCost)
	}
}

func TestConcurrentDisjointMeshes(t *testing.T) {
	// Assign critic-side calls to node 1, actor-side to node 0: independent
	// calls should overlap and beat the symmetric makespan structure.
	cluster := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 1})
	p := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA7B, model.LLaMA7B))
	m0, _ := mesh.New(0, 8, 8)
	m1, _ := mesh.New(8, 8, 8)
	st := parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 2}
	for name, m := range map[string]mesh.Mesh{
		"ActorGen": m0, "RefInf": m0, "ActorTrain": m0,
		"RewInf": m1, "CriticInf": m1, "CriticTrain": m1,
	} {
		p.Assign[name] = core.Assignment{Mesh: m, Strategy: st}
	}
	e := newEstimator(p)
	res, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, sn := range res.Timeline {
		sum += sn.Duration
	}
	if res.TimeCost >= sum {
		t.Errorf("disjoint meshes should overlap: makespan %.3f !< serial %.3f", res.TimeCost, sum)
	}
	// RewInf and RefInf are independent and on disjoint meshes: they must
	// actually overlap in the timeline.
	var rew, ref ScheduledNode
	for _, sn := range res.Timeline {
		if sn.Node.Kind != core.KindCall {
			continue
		}
		switch sn.Node.Call.Name {
		case "RewInf":
			rew = sn
		case "RefInf":
			ref = sn
		}
	}
	if rew.End <= ref.Start || ref.End <= rew.Start {
		t.Error("independent inferences on disjoint meshes did not overlap")
	}
}

func TestTimelineRespectsDependencies(t *testing.T) {
	p := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B)
	e := newEstimator(p)
	res, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	endOf := map[int]float64{}
	for _, sn := range res.Timeline {
		endOf[sn.Node.ID] = sn.End
	}
	for _, sn := range res.Timeline {
		for _, pid := range sn.Node.Parents {
			if sn.Start < endOf[pid]-1e-12 {
				t.Fatalf("node %q starts at %.3f before parent ends at %.3f",
					sn.Node.Label, sn.Start, endOf[pid])
			}
		}
	}
}

func TestMeshExclusionInvariant(t *testing.T) {
	// Property over the timeline: nodes occupying overlapping meshes never
	// run concurrently (Algorithm 1's core constraint).
	cluster := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 2})
	p := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA7B, model.LLaMA7B))
	m0, _ := mesh.New(0, 8, 8)
	m1, _ := mesh.New(8, 8, 8)
	full := mesh.Full(cluster)
	st8 := parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 2}
	st16 := parallel.Strategy{DP: 2, TP: 8, PP: 1, MicroBatches: 2}
	p.Assign["ActorGen"] = core.Assignment{Mesh: full, Strategy: st16}
	p.Assign["RefInf"] = core.Assignment{Mesh: m0, Strategy: st8}
	p.Assign["RewInf"] = core.Assignment{Mesh: m1, Strategy: st8}
	p.Assign["CriticInf"] = core.Assignment{Mesh: m1, Strategy: st8}
	p.Assign["ActorTrain"] = core.Assignment{Mesh: m0, Strategy: st8}
	p.Assign["CriticTrain"] = core.Assignment{Mesh: m1, Strategy: st8}
	e := newEstimator(p)
	res, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Timeline {
		for _, b := range res.Timeline[i+1:] {
			if !a.Node.Overlaps(b.Node) {
				continue
			}
			if a.Start < b.End-1e-12 && b.Start < a.End-1e-12 && a.Duration > 0 && b.Duration > 0 {
				t.Fatalf("nodes %q [%0.3f,%0.3f) and %q [%0.3f,%0.3f) share GPUs but overlap in time",
					a.Node.Label, a.Start, a.End, b.Node.Label, b.Start, b.End)
			}
		}
	}
	if res.TimeCost != Makespan(res.Timeline) {
		t.Error("TimeCost must equal timeline makespan")
	}
}

func TestOOMPenalty(t *testing.T) {
	// 70B with pure data parallelism cannot fit 80 GB.
	cluster := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 512, PromptLen: 1024, GenLen: 1024, Iterations: 1})
	p := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA70B, model.LLaMA7B))
	full := mesh.Full(cluster)
	st := parallel.Strategy{DP: 16, TP: 1, PP: 1, MicroBatches: 4}
	for _, name := range p.CallNames() {
		p.Assign[name] = core.Assignment{Mesh: full, Strategy: st}
	}
	e := newEstimator(p)
	res, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Fatalf("70B pure-DP must OOM (MaxMem=%d)", res.MaxMem)
	}
	over := float64(res.MaxMem) / float64(p.Cluster.GPU.MemoryBytes)
	want := res.TimeCost * OOMPenalty * over
	if math.Abs(res.Cost-want) > 1e-9*res.Cost {
		t.Errorf("OOM cost %.3f, want TimeCost×α×overflow = %.3f", res.Cost, want)
	}
	if res.Cost < res.TimeCost*OOMPenalty {
		t.Error("OOM cost must be at least TimeCost×α")
	}
}

func TestFeasiblePlanNoPenalty(t *testing.T) {
	p := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B)
	e := newEstimator(p)
	res, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatalf("7B symmetric plan should fit (MaxMem=%.1f GB)", float64(res.MaxMem)/(1<<30))
	}
	if res.Cost != res.TimeCost {
		t.Error("feasible plan cost must equal its time")
	}
}

func TestReallocNodesAppearAndCost(t *testing.T) {
	p := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B)
	genMesh, _ := mesh.New(0, 8, 8)
	p.Assign["ActorGen"] = core.Assignment{
		Mesh:     genMesh,
		Strategy: parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1},
	}
	e := newEstimator(p)
	res, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	foundRealloc := false
	for _, sn := range res.Timeline {
		if sn.Node.Kind == core.KindParamRealloc {
			foundRealloc = true
			if sn.Duration <= 0 {
				t.Error("cross-layout realloc should take time")
			}
			if sn.Duration > 1 {
				t.Errorf("7B realloc took %.3fs; should be sub-second", sn.Duration)
			}
		}
	}
	if !foundRealloc {
		t.Error("expected a parameter reallocation node in the timeline")
	}
}

func TestThroughputMetric(t *testing.T) {
	p := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B)
	e := newEstimator(p)
	res, _ := e.Evaluate(p)
	tp := Throughput(p, res.TimeCost)
	if tp <= 0 {
		t.Fatal("throughput must be positive")
	}
	// Sanity: cannot exceed the cluster's peak compute.
	peak := p.Cluster.GPU.PeakFLOPs * float64(p.Cluster.NumGPUs()) / 1e15
	if tp >= peak {
		t.Errorf("throughput %.2f PFLOP/s exceeds hardware peak %.2f", tp, peak)
	}
	if Throughput(p, 0) != 0 {
		t.Error("zero time must yield zero throughput")
	}
}

func TestStaticUtilization(t *testing.T) {
	p := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B)
	e := newEstimator(p)
	res, _ := e.Evaluate(p)
	u := res.StaticUtilization(p.Cluster)
	if u <= 0 || u >= 1 {
		t.Errorf("static utilization = %.3f, want in (0,1)", u)
	}
}

func TestGPUSeconds(t *testing.T) {
	p := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B)
	e := newEstimator(p)
	res, _ := e.Evaluate(p)
	busy := GPUSeconds(res.Timeline)
	wall := res.TimeCost * float64(p.Cluster.NumGPUs())
	if busy <= 0 || busy > wall+1e-9 {
		t.Errorf("GPU-seconds %.1f outside (0, wall %.1f]", busy, wall)
	}
}

func TestEvaluateUnassignedPlanFails(t *testing.T) {
	p := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B)
	delete(p.Assign, "ActorGen")
	e := newEstimator(p)
	if _, err := e.Evaluate(p); err == nil {
		t.Error("unassigned plan must fail evaluation")
	}
}

// TestEvaluateRejectsMeshBeyondCluster: a plan whose meshes extend past the
// *estimator's* cluster must surface an error instead of silently costing
// nothing on the missing GPUs. (Plan.Validate catches meshes beyond the
// plan's own cluster; the hole was a plan built for a larger cluster handed
// to a smaller estimator — the old simulate clamp under-costed it.)
func TestEvaluateRejectsMeshBeyondCluster(t *testing.T) {
	p := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B) // meshes span 16 GPUs
	small := hardware.DefaultCluster(1)                    // estimator models 8
	e := New(small, oracleCosters(small, p.Models))
	if _, err := e.Evaluate(p); err == nil {
		t.Fatal("mesh beyond the estimator's cluster must fail evaluation, not under-cost")
	} else if !strings.Contains(err.Error(), "outside") {
		t.Fatalf("want a mesh-bounds error, got: %v", err)
	}
}

// overlapTestPlan builds a plan with reallocation traffic: the generation
// call runs on a sub-mesh with a different strategy.
func overlapTestPlan(t *testing.T) *core.Plan {
	t.Helper()
	p := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B)
	genMesh, _ := mesh.New(0, 8, 8)
	p.Assign["ActorGen"] = core.Assignment{
		Mesh:     genMesh,
		Strategy: parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1},
	}
	return p
}

// TestOverlapLowersTimeCost: the overlap-aware simulation gives comm nodes
// their own device lane, so a realloc-heavy plan costs strictly less than
// under the serialized schedule, and no plan ever costs more.
func TestOverlapLowersTimeCost(t *testing.T) {
	p := overlapTestPlan(t)
	serial := newEstimator(p)
	over := newEstimator(p)
	over.OverlapComm = true
	sres, err := serial.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	ores, err := over.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if ores.TimeCost >= sres.TimeCost {
		t.Errorf("overlap estimate %.4fs must be strictly below serialized %.4fs",
			ores.TimeCost, sres.TimeCost)
	}

	sym := symmetricPlan(t, 2, model.LLaMA7B, model.LLaMA7B)
	se := newEstimator(sym)
	oe := newEstimator(sym)
	oe.OverlapComm = true
	s2, err := se.Evaluate(sym)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := oe.Evaluate(sym)
	if err != nil {
		t.Fatal(err)
	}
	// No comm nodes: the two schedules are identical.
	if o2.TimeCost != s2.TimeCost {
		t.Errorf("symmetric plan: overlap %.6f != serialized %.6f", o2.TimeCost, s2.TimeCost)
	}
}

// TestOverlapDefaultOffPreservesSchedule: the zero-value Estimator keeps the
// historical fully-serialized simulation — the schedule byte-matches a
// second serialized estimator, and comm nodes still exclude calls on their
// devices.
func TestOverlapDefaultOffPreservesSchedule(t *testing.T) {
	p := overlapTestPlan(t)
	a, err := newEstimator(p).Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newEstimator(p).Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeCost != b.TimeCost || len(a.Timeline) != len(b.Timeline) {
		t.Fatal("serialized evaluation must be reproducible")
	}
	for i := range a.Timeline {
		if a.Timeline[i].Start != b.Timeline[i].Start || a.Timeline[i].End != b.Timeline[i].End {
			t.Fatalf("timeline entry %d drifted", i)
		}
	}
}

// TestOverlapKeepsMeshExclusionWithinStream: even with overlap on, two comm
// nodes sharing a device never run concurrently — only the cross-stream
// pairing (call vs comm) may intersect in time.
func TestOverlapKeepsMeshExclusionWithinStream(t *testing.T) {
	p := overlapTestPlan(t)
	e := newEstimator(p)
	e.OverlapComm = true
	res, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	type span struct {
		n          *core.AugNode
		start, end float64
	}
	var comm []span
	for _, sn := range res.Timeline {
		if sn.Node.Kind.CommLike() {
			comm = append(comm, span{sn.Node, sn.Start, sn.End})
		}
	}
	if len(comm) < 2 {
		t.Skip("plan produced fewer than two comm nodes")
	}
	for i := 0; i < len(comm); i++ {
		for j := i + 1; j < len(comm); j++ {
			if !comm[i].n.Overlaps(comm[j].n) {
				continue
			}
			if comm[i].start < comm[j].end-1e-12 && comm[j].start < comm[i].end-1e-12 {
				if comm[i].end-comm[i].start > 0 && comm[j].end-comm[j].start > 0 {
					t.Errorf("comm nodes %q and %q overlap in time on a shared device",
						comm[i].n.Label, comm[j].n.Label)
				}
			}
		}
	}
}
