package runtime

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

// reallocHeavyPlan builds the asymmetric split placement: actor-side and
// critic-side calls on disjoint halves, with a differently-parallelized
// generation call so every iteration reallocates actor parameters and moves
// data across meshes.
func reallocHeavyPlan(t testing.TB, iters int) *core.Plan {
	t.Helper()
	cluster := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: iters})
	p := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA7B, model.LLaMA7B))
	m0, err := mesh.New(0, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := mesh.New(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 2}
	stGen := parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1}
	// Assignments are per call name and cover every iteration of the graph.
	p.Assign["ActorGen"] = core.Assignment{Mesh: m0, Strategy: stGen}
	p.Assign["RefInf"] = core.Assignment{Mesh: m0, Strategy: st}
	p.Assign["ActorTrain"] = core.Assignment{Mesh: m0, Strategy: st}
	p.Assign["RewInf"] = core.Assignment{Mesh: m1, Strategy: st}
	p.Assign["CriticInf"] = core.Assignment{Mesh: m1, Strategy: st}
	p.Assign["CriticTrain"] = core.Assignment{Mesh: m1, Strategy: st}
	return p
}

// TestOverlapHidesCommTime: on a reallocation-heavy plan the overlapped
// engine must beat the serialized baseline strictly, and it cannot save
// more than the total communication time it hides.
func TestOverlapHidesCommTime(t *testing.T) {
	p := reallocHeavyPlan(t, 1)
	serial, err := RunDefault(p)
	if err != nil {
		t.Fatal(err)
	}
	over, err := RunOverlapped(p)
	if err != nil {
		t.Fatal(err)
	}
	if serial.CommTimeV <= 0 {
		t.Fatal("realloc-heavy plan must spend comm time")
	}
	if over.MakespanV >= serial.MakespanV {
		t.Errorf("overlap (%.4fs) must be strictly below serialized (%.4fs)",
			over.MakespanV, serial.MakespanV)
	}
	saved := serial.MakespanV - over.MakespanV
	if saved > serial.CommTimeV+1e-9 {
		t.Errorf("overlap saved %.4fs, more than total comm time %.4fs", saved, serial.CommTimeV)
	}
	// The comm bill itself is mode-independent.
	if math.Abs(over.CommTimeV-serial.CommTimeV) > 1e-12 {
		t.Errorf("CommTimeV changed across modes: %.6f vs %.6f", over.CommTimeV, serial.CommTimeV)
	}
	if !over.OverlapComm || serial.OverlapComm {
		t.Error("reports must echo the OverlapComm option")
	}
}

// TestOverlapNeverHurts: for any plan (including symmetric ones with no
// comm nodes) the overlapped makespan is never above the serialized one.
func TestOverlapNeverHurts(t *testing.T) {
	sym := ppoPlan(t, 2, 1, model.LLaMA7B, model.LLaMA7B)
	for _, p := range []*core.Plan{sym, reallocHeavyPlan(t, 2)} {
		serial, err := RunDefault(p)
		if err != nil {
			t.Fatal(err)
		}
		over, err := RunOverlapped(p)
		if err != nil {
			t.Fatal(err)
		}
		if over.MakespanV > serial.MakespanV+1e-9 {
			t.Errorf("overlap (%.4fs) worse than serialized (%.4fs)", over.MakespanV, serial.MakespanV)
		}
	}
}

// TestRunDeterministicTimeline: the concurrent engine must be byte-
// reproducible in virtual time — identical MakespanV, CallTimes and
// Timeline across repeated runs, in both overlap modes and under -race
// scheduling noise.
func TestRunDeterministicTimeline(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		p := reallocHeavyPlan(t, 3)
		base, err := Run(p, Options{UseCUDAGraph: true, OverlapComm: overlap})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 4; rep++ {
			r, err := Run(p, Options{UseCUDAGraph: true, OverlapComm: overlap})
			if err != nil {
				t.Fatal(err)
			}
			if r.MakespanV != base.MakespanV {
				t.Fatalf("overlap=%v run %d: makespan %.9f != %.9f", overlap, rep, r.MakespanV, base.MakespanV)
			}
			if len(r.Timeline) != len(base.Timeline) {
				t.Fatalf("overlap=%v run %d: timeline length %d != %d", overlap, rep, len(r.Timeline), len(base.Timeline))
			}
			for i := range r.Timeline {
				if r.Timeline[i] != base.Timeline[i] {
					t.Fatalf("overlap=%v run %d: timeline[%d] = %+v != %+v",
						overlap, rep, i, r.Timeline[i], base.Timeline[i])
				}
			}
			for name, d := range base.CallTimes {
				if r.CallTimes[name] != d {
					t.Fatalf("overlap=%v run %d: CallTimes[%s] drifted", overlap, rep, name)
				}
			}
		}
	}
}

// TestOverlapDeterministicOverTCP: the transport is a carrier, not a model —
// the overlapped schedule must produce identical virtual timing over TCP
// sockets and in-process channels.
func TestOverlapDeterministicOverTCP(t *testing.T) {
	p := reallocHeavyPlan(t, 1)
	static := estimator.StaticPerGPU(p)
	workers := make([]*ModelWorker, p.Cluster.NumGPUs())
	for i := range workers {
		workers[i] = NewModelWorker(i, p.Cluster.GPU.MemoryBytes)
		workers[i].StaticBytes = static[i]
	}
	addr, stop, err := ServeWorkersTCP(workers)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	tr, err := NewTCPTransport(addr, len(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tcpRep, err := Run(p, Options{UseCUDAGraph: true, OverlapComm: true, Transport: tr, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	chanRep, err := RunOverlapped(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tcpRep.MakespanV-chanRep.MakespanV) > 1e-9 {
		t.Errorf("TCP makespan %.6f != chan makespan %.6f", tcpRep.MakespanV, chanRep.MakespanV)
	}
}

// TestOverlapConsistentWithEstimator: with matching OverlapComm settings the
// runtime stays within the Fig. 12 band of the estimator's priority-queue
// simulation on the realloc-heavy config.
func TestOverlapConsistentWithEstimator(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		p := reallocHeavyPlan(t, 1)
		costers := map[dfg.Role]gpumodel.ModelCoster{}
		for role, ms := range p.Models {
			costers[role] = gpumodel.NewOracle(p.Cluster, ms.Cfg)
		}
		e := estimator.New(p.Cluster, costers)
		e.OverlapComm = overlap
		est, err := e.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(p, Options{UseCUDAGraph: true, OverlapComm: overlap})
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(rep.MakespanV-est.TimeCost) / est.TimeCost
		if rel > 0.25 {
			t.Errorf("overlap=%v: runtime %.3fs vs estimate %.3fs: %.1f%% apart (>25%%)",
				overlap, rep.MakespanV, est.TimeCost, 100*rel)
		}
	}
}

// TestWorkerStreamsOverlap: requests on different streams of one worker
// advance independent clocks; requests sharing a stream serialize.
func TestWorkerStreamsOverlap(t *testing.T) {
	w := NewModelWorker(0, 1<<40)
	call := w.Handle(Request{ID: 1, Stream: StreamCompute, ReadyV: 0, DurV: 10})
	comm := w.Handle(Request{ID: 2, Stream: StreamComm, ReadyV: 0, DurV: 1})
	if comm.EndV >= call.EndV {
		t.Errorf("comm stream (end %.4f) must overlap the busy compute stream (end %.4f)",
			comm.EndV, call.EndV)
	}
	comm2 := w.Handle(Request{ID: 3, Stream: StreamComm, ReadyV: 0, DurV: 1})
	if comm2.StartV < comm.EndV {
		t.Error("same-stream requests must serialize")
	}
	if w.Clock() != call.EndV {
		t.Errorf("Clock() = %.4f, want the furthest stream %.4f", w.Clock(), call.EndV)
	}
	if w.StreamClock(StreamComm) != comm2.EndV {
		t.Error("StreamClock(comm) must track the comm lane")
	}
}

// --- error paths ---

// TestCustomTransportRequiresWorkers: a custom Transport without the worker
// set must fail fast instead of silently reporting zero peak memory.
func TestCustomTransportRequiresWorkers(t *testing.T) {
	p := ppoPlan(t, 1, 1, model.LLaMA7B, model.LLaMA7B)
	workers := make([]*ModelWorker, p.Cluster.NumGPUs())
	for i := range workers {
		workers[i] = NewModelWorker(i, p.Cluster.GPU.MemoryBytes)
	}
	tr := NewChanTransport(workers)
	defer tr.Close()
	if _, err := Run(p, Options{UseCUDAGraph: true, Transport: tr}); err == nil {
		t.Fatal("custom Transport without Options.Workers must error")
	}
}

// TestRunCancelled: a cancelled context aborts the dispatch loop, returning
// the partial report alongside the context error.
func TestRunCancelled(t *testing.T) {
	p := ppoPlan(t, 1, 4, model.LLaMA7B, model.LLaMA7B)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(p, Options{UseCUDAGraph: true, Context: ctx})
	if err == nil {
		t.Fatal("cancelled run must return an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error must wrap context.Canceled, got %v", err)
	}
	if rep == nil {
		t.Fatal("cancelled run must still return the partial report")
	}
	if len(rep.Timeline) >= 4*12 {
		t.Errorf("cancelled run completed %d nodes, expected a partial timeline", len(rep.Timeline))
	}
}

// closedTransport hands back a closed reply channel — the shape of a worker
// fleet that died mid-run.
type closedTransport struct{ replies chan Reply }

func (c *closedTransport) Send(gpu int, req Request) error { return nil }
func (c *closedTransport) Replies() <-chan Reply           { return c.replies }
func (c *closedTransport) Close() error                    { return nil }

// TestTransportClosedMidRun: a reply channel that closes with nodes in
// flight is an error, not a hang or a fabricated report.
func TestTransportClosedMidRun(t *testing.T) {
	p := ppoPlan(t, 1, 1, model.LLaMA7B, model.LLaMA7B)
	ct := &closedTransport{replies: make(chan Reply)}
	close(ct.replies)
	workers := []*ModelWorker{NewModelWorker(0, 1)}
	_, err := Run(p, Options{UseCUDAGraph: true, Transport: ct, Workers: workers})
	if err == nil {
		t.Fatal("closed transport must surface an error")
	}
	if !strings.Contains(err.Error(), "transport closed") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestOOMErrorsPropagateSorted: every worker OOM message lands in
// Report.Errors, deterministically ordered, in both overlap modes.
func TestOOMErrorsPropagateSorted(t *testing.T) {
	cluster := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 1})
	p := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA70B, model.LLaMA7B))
	full := mesh.Full(cluster)
	st := parallel.Strategy{DP: 16, TP: 1, PP: 1, MicroBatches: 1}
	for _, name := range p.CallNames() {
		p.Assign[name] = core.Assignment{Mesh: full, Strategy: st}
	}
	for _, overlap := range []bool{false, true} {
		rep, err := Run(p, Options{UseCUDAGraph: true, OverlapComm: overlap})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OOM || len(rep.Errors) == 0 {
			t.Fatalf("overlap=%v: 70B pure-DP run must OOM with messages", overlap)
		}
		for i := 1; i < len(rep.Errors); i++ {
			if rep.Errors[i] < rep.Errors[i-1] {
				t.Fatalf("overlap=%v: Errors not sorted at %d", overlap, i)
			}
		}
	}
}

// TestPipelinedIterationsNoBarrier: back-to-back iterations are driven by
// graph dependencies alone — the engine adds no synchronization barrier at
// iteration boundaries (a 2-iteration run never exceeds two sequential
// single-iteration runs), and the comm stream keeps hiding reallocation
// across the whole multi-iteration pipeline.
func TestPipelinedIterationsNoBarrier(t *testing.T) {
	one, err := RunOverlapped(reallocHeavyPlan(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunOverlapped(reallocHeavyPlan(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if two.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2", two.Iterations)
	}
	if two.MakespanV > 2*one.MakespanV+1e-9 {
		t.Errorf("2 iterations (%.2fs) paid a barrier penalty over 2x single (%.2fs)",
			two.MakespanV, 2*one.MakespanV)
	}
	twoSerial, err := RunDefault(reallocHeavyPlan(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if two.MakespanV >= twoSerial.MakespanV {
		t.Errorf("multi-iteration overlap (%.2fs) must stay strictly below serialized (%.2fs)",
			two.MakespanV, twoSerial.MakespanV)
	}
}
