package runtime

import (
	"context"
	"strings"
	"sync"
	"testing"

	"realhf/internal/estimator"
	"realhf/internal/model"
)

// TestWorkerPoolReuseAcrossIterations: one pool executes several iterations
// back to back with Reset between them; every iteration reproduces the
// one-shot Run path byte for byte, proving reuse leaks no clock or memory
// state across iterations.
func TestWorkerPoolReuseAcrossIterations(t *testing.T) {
	plan := reallocHeavyPlan(t, 1)
	oneShot, err := RunOverlapped(plan)
	if err != nil {
		t.Fatal(err)
	}

	wp := NewWorkerPool(plan.Cluster.NumGPUs(), plan.Cluster.GPU.MemoryBytes)
	defer wp.Close()
	static := estimator.StaticPerGPU(plan)
	for iter := 0; iter < 3; iter++ {
		if err := wp.Reset(static); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		rep, err := wp.Run(plan, Options{UseCUDAGraph: true, OverlapComm: true})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if rep.MakespanV != oneShot.MakespanV {
			t.Fatalf("iter %d: pooled makespan %v != one-shot %v", iter, rep.MakespanV, oneShot.MakespanV)
		}
		if rep.PeakBytes != oneShot.PeakBytes {
			t.Fatalf("iter %d: pooled peak %d != one-shot %d", iter, rep.PeakBytes, oneShot.PeakBytes)
		}
	}
	// Without Reset the worker clocks keep running and the second iteration
	// must start late — reuse is only sound through the reset protocol.
	if _, err := wp.Run(plan, Options{UseCUDAGraph: true, OverlapComm: true}); err != nil {
		t.Fatal(err)
	}
	rep, err := wp.Run(plan, Options{UseCUDAGraph: true, OverlapComm: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanV <= oneShot.MakespanV {
		t.Fatalf("un-reset rerun makespan %v should exceed a fresh run's %v", rep.MakespanV, oneShot.MakespanV)
	}
}

// TestWorkerPoolReuseOverTCP: the same reuse protocol over real sockets —
// fences and resets flow through the gob transport, and the virtual timings
// match the in-process transport exactly.
func TestWorkerPoolReuseOverTCP(t *testing.T) {
	plan := reallocHeavyPlan(t, 1)
	oneShot, err := RunOverlapped(plan)
	if err != nil {
		t.Fatal(err)
	}

	workers := make([]*ModelWorker, plan.Cluster.NumGPUs())
	for i := range workers {
		workers[i] = NewModelWorker(i, plan.Cluster.GPU.MemoryBytes)
	}
	addr, stop, err := ServeWorkersTCP(workers)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	tr, err := NewTCPTransport(addr, len(workers))
	if err != nil {
		t.Fatal(err)
	}
	wp := NewWorkerPoolWith(workers, tr)
	defer wp.Close()

	static := estimator.StaticPerGPU(plan)
	for iter := 0; iter < 2; iter++ {
		if err := wp.Reset(static); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		rep, err := wp.Run(plan, Options{UseCUDAGraph: true, OverlapComm: true})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if rep.MakespanV != oneShot.MakespanV {
			t.Fatalf("iter %d: TCP pooled makespan %v != one-shot %v", iter, rep.MakespanV, oneShot.MakespanV)
		}
	}
	if err := wp.Resize(4, 1); err == nil {
		t.Fatal("resize over an adopted transport must be rejected")
	}
}

// TestWorkerPoolResize: resizing swaps the fleet; runs before and after use
// the respective device counts and stay correct.
func TestWorkerPoolResize(t *testing.T) {
	small := ppoPlan(t, 1, 1, model.LLaMA7B, model.LLaMA7B)
	big := ppoPlan(t, 2, 1, model.LLaMA7B, model.LLaMA7B)

	wp := NewWorkerPool(small.Cluster.NumGPUs(), small.Cluster.GPU.MemoryBytes)
	defer wp.Close()
	if err := wp.Reset(estimator.StaticPerGPU(small)); err != nil {
		t.Fatal(err)
	}
	if _, err := wp.Run(small, Options{UseCUDAGraph: true}); err != nil {
		t.Fatal(err)
	}

	if err := wp.Resize(big.Cluster.NumGPUs(), big.Cluster.GPU.MemoryBytes); err != nil {
		t.Fatal(err)
	}
	if wp.Size() != big.Cluster.NumGPUs() {
		t.Fatalf("Size = %d after resize, want %d", wp.Size(), big.Cluster.NumGPUs())
	}
	if err := wp.Reset(estimator.StaticPerGPU(big)); err != nil {
		t.Fatal(err)
	}
	rep, err := wp.Run(big, Options{UseCUDAGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := RunDefault(big)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanV != oneShot.MakespanV {
		t.Fatalf("post-resize makespan %v != one-shot %v", rep.MakespanV, oneShot.MakespanV)
	}
}

// TestSendAfterStopPromptError: Send on a closed transport returns an
// explicit error immediately — no panic on a closed queue, no hang — over
// both transports. Concurrent senders racing Close stay race-free.
func TestSendAfterStopPromptError(t *testing.T) {
	workers := []*ModelWorker{NewModelWorker(0, 1<<30)}
	ct := NewChanTransport(workers)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Few enough fences that worker replies fit the reply buffer:
			// nobody consumes replies here, and a full buffer would wedge
			// the workers mid-test.
			for j := 0; j < 4; j++ {
				if err := ct.Send(0, Request{ID: fenceID(0, StreamCompute), Kind: ReqFence}); err != nil {
					if !strings.Contains(err.Error(), "transport closed") {
						t.Errorf("unexpected send error: %v", err)
					}
					return
				}
			}
		}()
	}
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := ct.Send(0, Request{Kind: ReqFence}); err == nil || !strings.Contains(err.Error(), "transport closed") {
		t.Fatalf("chan send after Close = %v, want prompt transport-closed error", err)
	}

	tcpWorkers := []*ModelWorker{NewModelWorker(0, 1<<30)}
	addr, stop, err := ServeWorkersTCP(tcpWorkers)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	tr, err := NewTCPTransport(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(0, Request{Kind: ReqFence}); err == nil || !strings.Contains(err.Error(), "transport closed") {
		t.Fatalf("tcp send after Close = %v, want prompt transport-closed error", err)
	}
}

// TestTCPCloseMidIteration: closing the TCP transport while a run is in
// flight surfaces an error from Run promptly instead of hanging the
// dispatch loop.
func TestTCPCloseMidIteration(t *testing.T) {
	plan := reallocHeavyPlan(t, 4)
	workers := make([]*ModelWorker, plan.Cluster.NumGPUs())
	static := estimator.StaticPerGPU(plan)
	for i := range workers {
		workers[i] = NewModelWorker(i, plan.Cluster.GPU.MemoryBytes)
		workers[i].StaticBytes = static[i]
	}
	addr, stop, err := ServeWorkersTCP(workers)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	tr, err := NewTCPTransport(addr, len(workers))
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := Run(plan, Options{UseCUDAGraph: true, OverlapComm: true, Transport: tr, Workers: workers})
		errc <- err
	}()
	tr.Close()
	if err := <-errc; err == nil {
		t.Fatal("run over a transport closed mid-iteration must error")
	}
}

// limitedTransport executes requests against real workers but stops
// replying after `limit` requests, cancelling the run's context instead —
// a deterministic way to produce a partial report mid-iteration (the
// master's dispatch sequence is deterministic, so the same nodes complete
// every run).
type limitedTransport struct {
	workers []*ModelWorker
	replies chan Reply
	cancel  context.CancelFunc
	limit   int

	mu      sync.Mutex
	handled int
}

func (lt *limitedTransport) Send(gpu int, req Request) error {
	lt.mu.Lock()
	lt.handled++
	over := lt.handled > lt.limit
	lt.mu.Unlock()
	if over {
		lt.cancel() // swallow the request: the node never completes
		return nil
	}
	lt.replies <- lt.workers[gpu].Handle(req)
	return nil
}

func (lt *limitedTransport) Replies() <-chan Reply { return lt.replies }
func (lt *limitedTransport) Close() error          { return nil }

// TestIterTimePartialReportClamps is the regression test for the historical
// bug where IterTime divided a cancelled run's partial makespan by the full
// configured iteration count. A run cancelled before any iteration
// completes must report IterTime == MakespanV (clamped to completed
// iterations), while the configured span is still visible in Iterations.
func TestIterTimePartialReportClamps(t *testing.T) {
	plan := ppoPlan(t, 1, 2, model.LLaMA7B, model.LLaMA7B)
	static := estimator.StaticPerGPU(plan)
	workers := make([]*ModelWorker, plan.Cluster.NumGPUs())
	for i := range workers {
		workers[i] = NewModelWorker(i, plan.Cluster.GPU.MemoryBytes)
		workers[i].StaticBytes = static[i]
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Two full nodes' worth of replies, then silence + cancellation: the run
	// ends with iteration 0 partially executed.
	lt := &limitedTransport{
		workers: workers,
		replies: make(chan Reply, 4096),
		cancel:  cancel,
		limit:   2 * plan.Cluster.NumGPUs(),
	}
	rep, err := Run(plan, Options{UseCUDAGraph: true, Context: ctx, Transport: lt, Workers: workers})
	if err == nil {
		t.Fatal("cancelled run must return an error")
	}
	if rep.Iterations != 2 {
		t.Fatalf("Iterations = %d, want the configured 2", rep.Iterations)
	}
	if rep.CompletedIterations != 0 {
		t.Fatalf("CompletedIterations = %d for a run cancelled mid-iteration-0, want 0", rep.CompletedIterations)
	}
	if rep.MakespanV <= 0 {
		t.Fatal("partial report must still carry the executed makespan")
	}
	if rep.IterTime() != rep.MakespanV {
		t.Fatalf("partial IterTime = %v, want clamp to MakespanV %v (not /%d)",
			rep.IterTime(), rep.MakespanV, rep.Iterations)
	}

	// A completed multi-iteration run still averages over every iteration.
	full, err := Run(plan, Options{UseCUDAGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.CompletedIterations != 2 {
		t.Fatalf("CompletedIterations = %d for a finished run, want 2", full.CompletedIterations)
	}
	if full.IterTime() != full.MakespanV/2 {
		t.Fatalf("full-run IterTime = %v, want %v", full.IterTime(), full.MakespanV/2)
	}
}
