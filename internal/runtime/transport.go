package runtime

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// ChanTransport runs each model worker as a goroutine fed by a buffered
// channel — the in-process transport used by tests, benchmarks and the
// default Run path.
type ChanTransport struct {
	queues  []chan Request
	replies chan Reply
	wg      sync.WaitGroup
	once    sync.Once
}

// NewChanTransport starts one worker goroutine per device.
func NewChanTransport(workers []*ModelWorker) *ChanTransport {
	t := &ChanTransport{
		queues:  make([]chan Request, len(workers)),
		replies: make(chan Reply, 4*len(workers)),
	}
	for i, w := range workers {
		q := make(chan Request, 64)
		t.queues[i] = q
		t.wg.Add(1)
		go func(w *ModelWorker, q chan Request) {
			defer t.wg.Done()
			for req := range q {
				if req.Kind == ReqShutdown {
					return
				}
				t.replies <- w.Handle(req)
			}
		}(w, q)
	}
	return t
}

// Send implements Transport.
func (t *ChanTransport) Send(gpu int, req Request) error {
	if gpu < 0 || gpu >= len(t.queues) {
		return fmt.Errorf("runtime: no worker for gpu %d", gpu)
	}
	t.queues[gpu] <- req
	return nil
}

// Replies implements Transport.
func (t *ChanTransport) Replies() <-chan Reply { return t.replies }

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.once.Do(func() {
		for _, q := range t.queues {
			q <- Request{Kind: ReqShutdown}
			close(q)
		}
		t.wg.Wait()
	})
	return nil
}

// TCPTransport serves model workers over real TCP sockets with gob-encoded
// messages — the cross-process deployment shape of the paper's runtime
// engine. The master dials one connection per worker.
type TCPTransport struct {
	conns   []net.Conn
	encs    []*gob.Encoder
	encMu   []sync.Mutex
	replies chan Reply
	ln      net.Listener
	wg      sync.WaitGroup
	once    sync.Once
}

// ServeWorkersTCP starts a TCP listener and one worker loop per device; the
// returned address is what NewTCPTransport dials. Worker i identifies itself
// by sending its GPU index on connect.
func ServeWorkersTCP(workers []*ModelWorker) (addr string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-done:
					return
				default:
					return
				}
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				var gpu int
				if err := dec.Decode(&gpu); err != nil {
					return
				}
				if gpu < 0 || gpu >= len(workers) {
					return
				}
				w := workers[gpu]
				for {
					var req Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					if req.Kind == ReqShutdown {
						return
					}
					if err := enc.Encode(w.Handle(req)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() {
		close(done)
		ln.Close()
		wg.Wait()
	}, nil
}

// NewTCPTransport connects the master to a worker server for n devices.
func NewTCPTransport(addr string, n int) (*TCPTransport, error) {
	t := &TCPTransport{
		conns:   make([]net.Conn, n),
		encs:    make([]*gob.Encoder, n),
		encMu:   make([]sync.Mutex, n),
		replies: make(chan Reply, 4*n),
	}
	for i := 0; i < n; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("runtime: dial worker %d: %w", i, err)
		}
		t.conns[i] = conn
		enc := gob.NewEncoder(conn)
		t.encs[i] = enc
		if err := enc.Encode(i); err != nil {
			t.Close()
			return nil, fmt.Errorf("runtime: handshake worker %d: %w", i, err)
		}
		dec := gob.NewDecoder(conn)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for {
				var rep Reply
				if err := dec.Decode(&rep); err != nil {
					return
				}
				t.replies <- rep
			}
		}()
	}
	return t, nil
}

// Send implements Transport.
func (t *TCPTransport) Send(gpu int, req Request) error {
	if gpu < 0 || gpu >= len(t.conns) || t.conns[gpu] == nil {
		return fmt.Errorf("runtime: no connection for gpu %d", gpu)
	}
	t.encMu[gpu].Lock()
	defer t.encMu[gpu].Unlock()
	return t.encs[gpu].Encode(req)
}

// Replies implements Transport.
func (t *TCPTransport) Replies() <-chan Reply { return t.replies }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		for gpu, conn := range t.conns {
			if conn == nil {
				continue
			}
			t.encMu[gpu].Lock()
			_ = t.encs[gpu].Encode(Request{Kind: ReqShutdown})
			t.encMu[gpu].Unlock()
			conn.Close()
		}
		t.wg.Wait()
	})
	return nil
}
