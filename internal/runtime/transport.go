package runtime

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// ChanTransport runs each model worker as a pair of stream goroutines fed by
// buffered channels — the in-process transport used by tests, benchmarks and
// the default Run path. One goroutine per (worker, stream) keeps requests on
// a stream in FIFO order while compute and communication requests for the
// same worker execute concurrently.
type ChanTransport struct {
	queues  [][]chan Request // [gpu][stream]
	replies chan Reply
	wg      sync.WaitGroup
	once    sync.Once

	// mu guards the closed flag against concurrent Send/Close: a send may
	// not race the queue close, or it would panic instead of returning the
	// prompt "transport closed" error long-lived sessions rely on.
	mu     sync.RWMutex
	closed bool
}

// NewChanTransport starts one goroutine per device stream.
func NewChanTransport(workers []*ModelWorker) *ChanTransport {
	t := &ChanTransport{
		queues:  make([][]chan Request, len(workers)),
		replies: make(chan Reply, 4*NumStreams*len(workers)+16),
	}
	for i, w := range workers {
		lanes := make([]chan Request, NumStreams)
		for s := range lanes {
			q := make(chan Request, 256)
			lanes[s] = q
			t.wg.Add(1)
			go func(w *ModelWorker, q chan Request) {
				defer t.wg.Done()
				for req := range q {
					if req.Kind == ReqShutdown {
						return
					}
					t.replies <- w.Handle(req)
				}
			}(w, q)
		}
		t.queues[i] = lanes
	}
	return t
}

// Send implements Transport. Sending on a closed transport returns a prompt
// error instead of panicking on the closed queue or hanging.
func (t *ChanTransport) Send(gpu int, req Request) error {
	if gpu < 0 || gpu >= len(t.queues) {
		return fmt.Errorf("runtime: no worker for gpu %d", gpu)
	}
	s := req.Stream
	if s < 0 || int(s) >= NumStreams {
		s = StreamCompute
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return fmt.Errorf("runtime: send to gpu %d: transport closed", gpu)
	}
	t.queues[gpu][s] <- req
	return nil
}

// Replies implements Transport.
func (t *ChanTransport) Replies() <-chan Reply { return t.replies }

// Close implements Transport. It drains straggler replies (e.g. after a
// cancelled run) so worker goroutines blocked on the reply channel can
// exit.
func (t *ChanTransport) Close() error {
	t.once.Do(func() {
		t.mu.Lock()
		t.closed = true
		for _, lanes := range t.queues {
			for _, q := range lanes {
				q <- Request{Kind: ReqShutdown}
				close(q)
			}
		}
		t.mu.Unlock()
		done := make(chan struct{})
		go func() {
			t.wg.Wait()
			close(done)
		}()
		for {
			select {
			case <-t.replies: // discard
			case <-done:
				return
			}
		}
	})
	return nil
}

// TCPTransport serves model workers over real TCP sockets with gob-encoded
// messages — the cross-process deployment shape of the paper's runtime
// engine. The master dials one connection per worker; the worker process
// multiplexes its streams behind the connection (requests still carry their
// Stream, and the worker's per-stream clocks provide the virtual overlap).
type TCPTransport struct {
	conns   []net.Conn
	encs    []*gob.Encoder
	encMu   []sync.Mutex
	replies chan Reply
	wg      sync.WaitGroup
	once    sync.Once

	mu     sync.RWMutex
	closed bool
}

// ServeWorkersTCP starts a TCP listener and one worker loop per device; the
// returned address is what NewTCPTransport dials. Worker i identifies itself
// by sending its GPU index on connect.
func ServeWorkersTCP(workers []*ModelWorker) (addr string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				// Either stop() closed the listener or the socket died;
				// both end the accept loop.
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				var gpu int
				if err := dec.Decode(&gpu); err != nil {
					return
				}
				if gpu < 0 || gpu >= len(workers) {
					return
				}
				w := workers[gpu]
				for {
					var req Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					if req.Kind == ReqShutdown {
						return
					}
					if err := enc.Encode(w.Handle(req)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		wg.Wait()
	}, nil
}

// NewTCPTransport connects the master to a worker server for n devices.
func NewTCPTransport(addr string, n int) (*TCPTransport, error) {
	t := &TCPTransport{
		conns:   make([]net.Conn, n),
		encs:    make([]*gob.Encoder, n),
		encMu:   make([]sync.Mutex, n),
		replies: make(chan Reply, 4*NumStreams*n+16),
	}
	for i := 0; i < n; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("runtime: dial worker %d: %w", i, err)
		}
		t.conns[i] = conn
		enc := gob.NewEncoder(conn)
		t.encs[i] = enc
		if err := enc.Encode(i); err != nil {
			t.Close()
			return nil, fmt.Errorf("runtime: handshake worker %d: %w", i, err)
		}
		dec := gob.NewDecoder(conn)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for {
				var rep Reply
				if err := dec.Decode(&rep); err != nil {
					return
				}
				t.replies <- rep
			}
		}()
	}
	return t, nil
}

// Send implements Transport. Like ChanTransport.Send, sending on a closed
// transport returns a prompt, explicit error (rather than surfacing the
// underlying closed-socket write failure).
func (t *TCPTransport) Send(gpu int, req Request) error {
	if gpu < 0 || gpu >= len(t.conns) || t.conns[gpu] == nil {
		return fmt.Errorf("runtime: no connection for gpu %d", gpu)
	}
	// Hold the read lock across the encode: releasing it first would let a
	// concurrent Close slip in and surface as a raw closed-socket gob error
	// instead of the explicit transport-closed error promised here.
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return fmt.Errorf("runtime: send to gpu %d: transport closed", gpu)
	}
	t.encMu[gpu].Lock()
	defer t.encMu[gpu].Unlock()
	return t.encs[gpu].Encode(req)
}

// Replies implements Transport.
func (t *TCPTransport) Replies() <-chan Reply { return t.replies }

// Close implements Transport. Like ChanTransport.Close it drains straggler
// replies so reader goroutines blocked on the reply channel can exit.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		t.mu.Lock()
		t.closed = true
		t.mu.Unlock()
		for gpu, conn := range t.conns {
			if conn == nil {
				continue
			}
			t.encMu[gpu].Lock()
			_ = t.encs[gpu].Encode(Request{Kind: ReqShutdown})
			t.encMu[gpu].Unlock()
			conn.Close()
		}
		done := make(chan struct{})
		go func() {
			t.wg.Wait()
			close(done)
		}()
		for {
			select {
			case <-t.replies: // discard
			case <-done:
				return
			}
		}
	})
	return nil
}
