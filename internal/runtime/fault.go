package runtime

import (
	"fmt"
	"sync"
)

// ErrWorkerLost reports a dead or unresponsive worker, identified by its
// GPU index. It is the typed failure the fence protocol (WorkerPool.Reset)
// and the master's dispatch loop surface instead of hanging when a worker
// stops answering: callers recover it with errors.As and decide whether to
// shrink onto the survivors (realhf.Trainer does) or abort. The public API
// additionally wraps it in the realhf.ErrWorkerLost sentinel so errors.Is
// dispatch — and the serve taxonomy built on it — works across the
// boundary.
type ErrWorkerLost struct {
	// GPU is the lost device's index. When several workers are
	// unaccounted for at detection time, the smallest index is reported;
	// recovery proceeds one loss at a time.
	GPU int
}

func (e *ErrWorkerLost) Error() string {
	return fmt.Sprintf("worker gpu %d lost", e.GPU)
}

// FaultKind classifies an injected worker failure.
type FaultKind int

const (
	// FaultKill simulates a crashed worker process: every subsequent Send
	// to the device fails with *ErrWorkerLost, and replies already in
	// flight from it are discarded (a dead process answers nothing).
	FaultKill FaultKind = iota
	// FaultDrop simulates a wedged worker: Sends are silently swallowed,
	// so the stream stops making progress without any error — the failure
	// mode only a fence timeout can detect.
	FaultDrop
	// FaultDelay simulates a stalled network path: requests are delivered
	// but the worker's replies are withheld until Heal releases them.
	FaultDelay
)

func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	}
	return "fault?"
}

// FaultyTransport wraps any Transport with deterministic fault injection —
// the chaos hook the resilience tests (and realrun -kill-worker-at) use to
// kill, wedge or stall a single worker mid-iteration without touching the
// inner transport's machinery. Faults are keyed by GPU index; devices
// without an active fault pass through untouched, and per-stream FIFO
// order is preserved for them (a single pump goroutine forwards replies in
// arrival order).
type FaultyTransport struct {
	inner   Transport
	replies chan Reply
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once

	mu      sync.Mutex
	faults  map[int]FaultKind
	armed   map[int]*armedFault
	delayed []Reply
}

// armedFault is a scheduled injection: kind trips on the sends-th
// subsequent Send to the device.
type armedFault struct {
	sends int
	kind  FaultKind
}

// NewFaultyTransport wraps inner. The wrapper owns inner's teardown:
// closing the FaultyTransport closes the inner transport too.
func NewFaultyTransport(inner Transport) *FaultyTransport {
	f := &FaultyTransport{
		inner:   inner,
		replies: make(chan Reply, 256),
		stop:    make(chan struct{}),
		faults:  map[int]FaultKind{},
		armed:   map[int]*armedFault{},
	}
	f.wg.Add(1)
	go f.pump()
	return f
}

// pump forwards inner replies to the outer channel, filtering by the fault
// state of the answering device: killed devices' replies are discarded,
// delayed devices' replies are parked until Heal.
func (f *FaultyTransport) pump() {
	defer f.wg.Done()
	for {
		select {
		case <-f.stop:
			return
		case rep := <-f.inner.Replies():
			f.mu.Lock()
			kind, faulted := f.faults[rep.GPU]
			if faulted && kind == FaultDelay {
				f.delayed = append(f.delayed, rep)
				f.mu.Unlock()
				continue
			}
			f.mu.Unlock()
			if faulted && kind == FaultKill {
				continue
			}
			select {
			case f.replies <- rep:
			case <-f.stop:
				return
			}
		}
	}
}

// Fail activates a fault on the device immediately.
func (f *FaultyTransport) Fail(gpu int, kind FaultKind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.armed, gpu)
	f.faults[gpu] = kind
}

// InjectAfter arms a fault that trips on the sends-th subsequent Send to
// the device (sends <= 1 trips on the very next one) — the deterministic
// way to lose a worker mid-iteration: the master's dispatch sequence is
// deterministic, so the same send count always lands at the same point of
// the run.
func (f *FaultyTransport) InjectAfter(gpu, sends int, kind FaultKind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed[gpu] = &armedFault{sends: sends, kind: kind}
}

// Heal clears the device's fault (and any armed injection). Replies a
// FaultDelay withheld are released in their original arrival order. Heal
// is meant for quiet points — between iterations, after a failed Reset —
// where no fresh replies from the device race the released backlog.
func (f *FaultyTransport) Heal(gpu int) {
	f.mu.Lock()
	delete(f.faults, gpu)
	delete(f.armed, gpu)
	var keep, flush []Reply
	for _, rep := range f.delayed {
		if rep.GPU == gpu {
			flush = append(flush, rep)
		} else {
			keep = append(keep, rep)
		}
	}
	f.delayed = keep
	f.mu.Unlock()
	for _, rep := range flush {
		select {
		case f.replies <- rep:
		case <-f.stop:
			return
		}
	}
}

// Send implements Transport. A killed device fails the send with
// *ErrWorkerLost; a dropped device swallows it silently; a delayed device
// delivers it (only the replies stall).
func (f *FaultyTransport) Send(gpu int, req Request) error {
	f.mu.Lock()
	if a, ok := f.armed[gpu]; ok {
		a.sends--
		if a.sends <= 0 {
			delete(f.armed, gpu)
			f.faults[gpu] = a.kind
		}
	}
	kind, faulted := f.faults[gpu]
	f.mu.Unlock()
	if faulted {
		switch kind {
		case FaultKill:
			return &ErrWorkerLost{GPU: gpu}
		case FaultDrop:
			return nil
		}
	}
	return f.inner.Send(gpu, req)
}

// Replies implements Transport.
func (f *FaultyTransport) Replies() <-chan Reply { return f.replies }

// Close implements Transport: it stops the pump and closes the inner
// transport. Idempotent.
func (f *FaultyTransport) Close() error {
	var err error
	f.once.Do(func() {
		close(f.stop)
		err = f.inner.Close()
		f.wg.Wait()
	})
	return err
}
