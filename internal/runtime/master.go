package runtime

import (
	"fmt"
	"sort"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/realloc"
)

// Options configures a run.
type Options struct {
	// UseCUDAGraph enables CUDA-graph capture for decoding kernels
	// (Table 6's ±CUDAGraph comparison). Default true.
	UseCUDAGraph bool
	// Transport overrides the default in-process transport. When set, the
	// caller owns worker setup and teardown; StaticBytes must already be
	// populated on the workers.
	Transport Transport
	// Workers must accompany a custom Transport (for peak reporting).
	Workers []*ModelWorker
}

// NodeSpan is one executed node of the run timeline.
type NodeSpan struct {
	Label  string
	Kind   core.Kind
	StartV float64
	EndV   float64
}

// Report is the outcome of executing a plan on the simulated cluster.
type Report struct {
	// MakespanV is the virtual wall time of the whole (possibly
	// multi-iteration) run.
	MakespanV float64
	// Iterations is the number of RLHF iterations the graph spanned.
	Iterations int
	// CallTimes maps call names to their iteration-0 virtual durations
	// (Table 6 rows).
	CallTimes map[string]float64
	// CallBreakdowns carries the kernel-category split per call (Fig. 11).
	CallBreakdowns map[string]gpumodel.Breakdown
	// CommTimeV totals parameter reallocation + data transfer + offload
	// time across the run.
	CommTimeV float64
	// Timeline lists every executed node.
	Timeline []NodeSpan
	// OOM reports whether any worker ran out of memory; Errors carries the
	// worker messages.
	OOM    bool
	Errors []string
	// PeakBytes is the max observed memory over all workers.
	PeakBytes int64
}

// IterTime is the average virtual time per RLHF iteration.
func (r *Report) IterTime() float64 {
	if r.Iterations == 0 {
		return r.MakespanV
	}
	return r.MakespanV / float64(r.Iterations)
}

// Master is the centralized controller of §6: it owns the augmented graph,
// resolves dependencies, and drives model workers through a Transport.
type Master struct {
	plan    *core.Plan
	hw      hardware.Cluster
	oracles map[dfg.Role]*gpumodel.Oracle
	comm    gpumodel.Comm
	opts    Options
}

// NewMaster prepares a master for one plan.
func NewMaster(p *core.Plan, opts Options) *Master {
	oracles := map[dfg.Role]*gpumodel.Oracle{}
	for role, ms := range p.Models {
		o := gpumodel.NewOracle(p.Cluster, ms.Cfg)
		o.UseCUDAGraph = opts.UseCUDAGraph
		oracles[role] = o
	}
	return &Master{
		plan:    p,
		hw:      p.Cluster,
		oracles: oracles,
		comm:    gpumodel.Comm{HW: p.Cluster},
		opts:    opts,
	}
}

// Run executes the plan: it validates and expands it into the augmented
// graph, spawns (or adopts) model workers, and runs the dependency-resolving
// dispatch loop until every node completes.
func Run(p *core.Plan, opts Options) (*Report, error) {
	m := NewMaster(p, opts)
	return m.Run()
}

// RunDefault executes the plan with CUDA graphs enabled over the in-process
// transport.
func RunDefault(p *core.Plan) (*Report, error) {
	return Run(p, Options{UseCUDAGraph: true})
}

// nodeWork is the master's precomputed knowledge about one augmented node.
type nodeWork struct {
	node *core.AugNode
	// gpus are the devices the node occupies (deduplicated, sorted).
	gpus []int
	// durByGPU gives each device's busy time; nil means uniform `dur`.
	durByGPU map[int]float64
	dur      float64
	alloc    int64
	// breakdown is set for call nodes.
	breakdown gpumodel.Breakdown
}

func (m *Master) prepare(g *core.AugGraph) ([]nodeWork, error) {
	works := make([]nodeWork, len(g.Nodes))
	for _, n := range g.Nodes {
		w := nodeWork{node: n}
		set := map[int]bool{}
		for _, ms := range n.Meshes {
			for _, gpu := range ms.GPUs() {
				set[gpu] = true
			}
		}
		for gpu := range set {
			w.gpus = append(w.gpus, gpu)
		}
		sort.Ints(w.gpus)

		switch n.Kind {
		case core.KindCall:
			spec, err := estimator.CallSpecOf(m.plan, n.Call)
			if err != nil {
				return nil, err
			}
			oracle, ok := m.oracles[n.Call.Role]
			if !ok {
				return nil, fmt.Errorf("runtime: no oracle for role %q", n.Call.Role)
			}
			w.breakdown = gpumodel.AssembleCall(oracle, m.comm, spec)
			w.dur = w.breakdown.Total()
			w.alloc = estimator.CallActiveBytes(m.plan, n.Call)
		case core.KindParamRealloc:
			ms := m.plan.Models[n.Role]
			sched := realloc.PlanParams(ms.Cfg.NumLayers, ms.Cfg.LayerParamBytes(),
				n.Src, n.Dst, m.hw.GPUsPerNode)
			w.durByGPU = m.scheduleBusy(sched)
			w.dur = sched.Cost(m.hw)
		case core.KindDataTransfer:
			sched := realloc.PlanData(n.Bytes, n.Src, n.Dst, m.hw.GPUsPerNode)
			w.durByGPU = m.scheduleBusy(sched)
			w.dur = sched.Cost(m.hw)
		case core.KindOffload:
			perGPU := n.Bytes / int64(n.Dst.Mesh.NumGPUs())
			w.dur = m.comm.Offload(perGPU)
		}
		works[n.ID] = w
	}
	return works, nil
}

// scheduleBusy converts a broadcast schedule into per-GPU busy durations.
func (m *Master) scheduleBusy(s realloc.Schedule) map[int]float64 {
	busy := map[int]float64{}
	for _, op := range s.Ops {
		cross := false
		srcNode := op.SrcGPU / m.hw.GPUsPerNode
		for _, d := range op.DstGPUs {
			if d/m.hw.GPUsPerNode != srcNode {
				cross = true
				break
			}
		}
		t := m.comm.Broadcast(op.Bytes, cross)
		busy[op.SrcGPU] += t
		for _, d := range op.DstGPUs {
			busy[d] += t
		}
	}
	return busy
}

// Run drives the dispatch loop.
func (m *Master) Run() (*Report, error) {
	g, err := m.plan.BuildAugGraph()
	if err != nil {
		return nil, err
	}
	works, err := m.prepare(g)
	if err != nil {
		return nil, err
	}

	var workers []*ModelWorker
	transport := m.opts.Transport
	if transport == nil {
		static := estimator.StaticPerGPU(m.plan)
		workers = make([]*ModelWorker, m.hw.NumGPUs())
		for i := range workers {
			workers[i] = NewModelWorker(i, m.hw.GPU.MemoryBytes)
			workers[i].StaticBytes = static[i]
		}
		ct := NewChanTransport(workers)
		defer ct.Close()
		transport = ct
	} else {
		workers = m.opts.Workers
	}

	report := &Report{
		CallTimes:      map[string]float64{},
		CallBreakdowns: map[string]gpumodel.Breakdown{},
	}

	pending := make([]int, len(g.Nodes)) // outstanding parent count
	readyV := make([]float64, len(g.Nodes))
	outstanding := make([]int, len(g.Nodes)) // replies still expected
	startV := make([]float64, len(g.Nodes))
	endV := make([]float64, len(g.Nodes))
	for i := range startV {
		startV[i] = -1
	}

	dispatch := func(id int) error {
		w := works[id]
		for _, gpu := range w.gpus {
			dur := w.dur
			if w.durByGPU != nil {
				dur = w.durByGPU[gpu]
			}
			req := Request{
				ID: id, Kind: ReqRunCall, NodeID: id, Label: w.node.Label,
				Handle: string(w.node.Role), ReadyV: readyV[id], DurV: dur,
				AllocBytes: w.alloc,
			}
			if w.node.Kind != core.KindCall {
				req.Kind = ReqComm
				req.AllocBytes = 0
			}
			if err := transport.Send(gpu, req); err != nil {
				return err
			}
		}
		outstanding[id] = len(w.gpus)
		return nil
	}

	inFlight := 0
	for _, n := range g.Nodes {
		pending[n.ID] = len(n.Parents)
	}
	for _, n := range g.Nodes {
		if pending[n.ID] == 0 {
			if err := dispatch(n.ID); err != nil {
				return nil, err
			}
			inFlight++
		}
	}

	iters := 0
	for inFlight > 0 {
		rep, ok := <-transport.Replies()
		if !ok {
			return nil, fmt.Errorf("runtime: transport closed with %d nodes in flight", inFlight)
		}
		if rep.OOM {
			report.OOM = true
			report.Errors = append(report.Errors, rep.Error)
		}
		id := rep.ID
		if rep.EndV > endV[id] {
			endV[id] = rep.EndV
		}
		outstanding[id]--
		if outstanding[id] > 0 {
			continue
		}
		// Node complete.
		inFlight--
		n := g.Nodes[id]
		w := works[id]
		report.Timeline = append(report.Timeline, NodeSpan{
			Label: n.Label, Kind: n.Kind, StartV: endV[id] - w.dur, EndV: endV[id],
		})
		if endV[id] > report.MakespanV {
			report.MakespanV = endV[id]
		}
		switch n.Kind {
		case core.KindCall:
			if n.Call.Iter+1 > iters {
				iters = n.Call.Iter + 1
			}
			if n.Call.Iter == 0 {
				report.CallTimes[n.Call.Name] = w.dur
				report.CallBreakdowns[n.Call.Name] = w.breakdown
			}
		default:
			report.CommTimeV += w.dur
		}
		for _, c := range n.Children {
			if endV[id] > readyV[c] {
				readyV[c] = endV[id]
			}
			pending[c]--
			if pending[c] == 0 {
				if err := dispatch(c); err != nil {
					return nil, err
				}
				inFlight++
			}
		}
	}
	report.Iterations = iters
	for _, w := range workers {
		if w != nil && w.Peak() > report.PeakBytes {
			report.PeakBytes = w.Peak()
		}
	}
	sort.Slice(report.Timeline, func(i, j int) bool {
		return report.Timeline[i].StartV < report.Timeline[j].StartV
	})
	return report, nil
}
