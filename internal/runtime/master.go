package runtime

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/realloc"
)

// Options configures a run.
type Options struct {
	// UseCUDAGraph enables CUDA-graph capture for decoding kernels
	// (Table 6's ±CUDAGraph comparison). Default true.
	UseCUDAGraph bool
	// OverlapComm routes parameter-reallocation, data-transfer and offload
	// nodes to each worker's communication stream, so they execute
	// concurrently with model function calls on the compute stream (§6's
	// overlapped runtime). When false, every node shares the compute stream
	// and the schedule is fully serialized per device — the baseline side of
	// the ±overlap ablation.
	OverlapComm bool
	// Context, when set, cancels an in-flight run: Run returns the partial
	// report accumulated so far together with a wrapping error.
	Context context.Context
	// WorkerTimeout bounds how long the dispatch loop waits for the next
	// worker reply while nodes are in flight. When it expires, the run is
	// abandoned with a partial report and an error chaining a typed
	// *ErrWorkerLost naming the smallest device that still owes a reply —
	// the failure-detection half of the resilience contract (a dead worker
	// must surface as a typed error, never as a hang). Zero disables the
	// timeout (the historical behavior).
	WorkerTimeout time.Duration
	// Transport overrides the default in-process transport. When set, the
	// caller owns worker setup and teardown; StaticBytes must already be
	// populated on the workers, and Workers must be provided for memory
	// reporting.
	Transport Transport
	// Workers must accompany a custom Transport (for peak reporting).
	Workers []*ModelWorker
}

// NodeSpan is one executed node of the run timeline.
type NodeSpan struct {
	Label string
	Kind  core.Kind
	// Stream is the worker lane the node executed on.
	Stream Stream
	// Lane is the first GPU of the node's meshes — the track the Chrome
	// trace exporter places the span on.
	Lane   int
	StartV float64
	EndV   float64
}

// Report is the outcome of executing a plan on the simulated cluster.
type Report struct {
	// MakespanV is the virtual wall time of the whole (possibly
	// multi-iteration) run.
	MakespanV float64
	// Iterations is the number of RLHF iterations the graph spanned (the
	// configured count, whether or not the run finished them).
	Iterations int
	// CompletedIterations counts iterations whose every model function call
	// finished. It equals Iterations for a run that completed; a cancelled
	// run reports fewer, and IterTime divides by this count.
	CompletedIterations int
	// OverlapComm echoes the option the run executed under.
	OverlapComm bool
	// CallTimes maps call names to their iteration-0 virtual durations
	// (Table 6 rows).
	CallTimes map[string]float64
	// CallBreakdowns carries the kernel-category split per call (Fig. 11).
	CallBreakdowns map[string]gpumodel.Breakdown
	// CommTimeV totals parameter reallocation + data transfer + offload
	// time across the run (independent of whether it was overlapped).
	CommTimeV float64
	// Timeline lists every executed node.
	Timeline []NodeSpan
	// OOM reports whether any worker ran out of memory; Errors carries the
	// worker messages (sorted for reproducibility).
	OOM    bool
	Errors []string
	// PeakBytes is the max observed memory over all workers.
	PeakBytes int64
}

// IterTime is the average virtual time per fully completed RLHF iteration.
// It divides by the iterations the run actually completed, clamped to the
// configured count — a partial report from a cancelled run is not averaged
// over work that never happened. When nothing completed (or on a hand-built
// report without iteration counts) it degrades to the raw makespan.
func (r *Report) IterTime() float64 {
	iters := r.Iterations
	if r.CompletedIterations < iters {
		iters = r.CompletedIterations
	}
	if iters <= 0 {
		return r.MakespanV
	}
	return r.MakespanV / float64(iters)
}

// Master is the centralized controller of §6: it owns the augmented graph,
// resolves dependencies with an event-driven ready-queue scheduler, and
// drives model workers through a Transport. Workers execute concurrently on
// their own goroutines; the master's conservative dispatch gate (see Run)
// keeps every per-stream request sequence deterministic, so the virtual
// timeline is byte-reproducible run to run regardless of goroutine
// scheduling.
type Master struct {
	plan    *core.Plan
	hw      hardware.Cluster
	oracles map[dfg.Role]*gpumodel.Oracle
	comm    gpumodel.Comm
	opts    Options
}

// NewMaster prepares a master for one plan.
func NewMaster(p *core.Plan, opts Options) *Master {
	oracles := map[dfg.Role]*gpumodel.Oracle{}
	for role, ms := range p.Models {
		o := gpumodel.NewOracle(p.Cluster, ms.Cfg)
		o.UseCUDAGraph = opts.UseCUDAGraph
		oracles[role] = o
	}
	return &Master{
		plan:    p,
		hw:      p.Cluster,
		oracles: oracles,
		comm:    gpumodel.Comm{HW: p.Cluster},
		opts:    opts,
	}
}

// Run executes the plan: it validates and expands it into the augmented
// graph, spawns (or adopts) model workers, and runs the event-driven
// dispatch loop until every node completes.
func Run(p *core.Plan, opts Options) (*Report, error) {
	m := NewMaster(p, opts)
	return m.Run()
}

// RunDefault executes the plan with CUDA graphs enabled and communication
// overlap disabled over the in-process transport — the serialized reference
// schedule (the historical default, and the baseline of the ±overlap
// ablation).
func RunDefault(p *core.Plan) (*Report, error) {
	return Run(p, Options{UseCUDAGraph: true})
}

// RunOverlapped executes the plan with CUDA graphs and communication
// overlap both enabled — the paper's full runtime configuration.
func RunOverlapped(p *core.Plan) (*Report, error) {
	return Run(p, Options{UseCUDAGraph: true, OverlapComm: true})
}

// nodeWork is the master's precomputed knowledge about one augmented node.
type nodeWork struct {
	node *core.AugNode
	// gpus are the devices the node occupies (deduplicated, sorted).
	gpus []int
	// durByGPU gives each device's busy time; nil means uniform `dur`.
	durByGPU map[int]float64
	dur      float64
	alloc    int64
	// breakdown is set for call nodes.
	breakdown gpumodel.Breakdown
}

func (m *Master) prepare(g *core.AugGraph) ([]nodeWork, error) {
	works := make([]nodeWork, len(g.Nodes))
	for _, n := range g.Nodes {
		w := nodeWork{node: n}
		set := map[int]bool{}
		for _, ms := range n.Meshes {
			for _, gpu := range ms.GPUs() {
				set[gpu] = true
			}
		}
		for gpu := range set {
			w.gpus = append(w.gpus, gpu)
		}
		sort.Ints(w.gpus)

		switch n.Kind {
		case core.KindCall:
			spec, err := estimator.CallSpecOf(m.plan, n.Call)
			if err != nil {
				return nil, err
			}
			oracle, ok := m.oracles[n.Call.Role]
			if !ok {
				return nil, fmt.Errorf("runtime: no oracle for role %q", n.Call.Role)
			}
			w.breakdown = gpumodel.AssembleCall(oracle, m.comm, spec)
			w.dur = w.breakdown.Total()
			w.alloc = estimator.CallActiveBytes(m.plan, n.Call)
		case core.KindParamRealloc:
			ms := m.plan.Models[n.Role]
			sched := realloc.PlanParams(ms.Cfg.NumLayers, ms.Cfg.LayerParamBytes(),
				n.Src, n.Dst, m.hw.GPUsPerNode)
			w.durByGPU = sched.BusyPerGPU(m.hw)
			w.dur = maxBusy(w.durByGPU)
		case core.KindDataTransfer:
			sched := realloc.PlanData(n.Bytes, n.Src, n.Dst, m.hw.GPUsPerNode)
			w.durByGPU = sched.BusyPerGPU(m.hw)
			w.dur = maxBusy(w.durByGPU)
		case core.KindOffload:
			perGPU := n.Bytes / int64(n.Dst.Mesh.NumGPUs())
			w.dur = m.comm.OffloadTransfer(perGPU)
		}
		works[n.ID] = w
	}
	return works, nil
}

// maxBusy is Schedule.Cost over an already-computed busy map.
func maxBusy(busy map[int]float64) float64 {
	var max float64
	for _, t := range busy {
		if t > max {
			max = t
		}
	}
	return max
}

// readyItem orders the master's dispatch queue by (ready time, comm-first,
// node ID) — a total, deterministic order. Communication nodes win ready
// ties: a transfer is cheap and unblocks a remote mesh, so queueing it
// behind an equally-ready long call on its source mesh would stall the
// destination pipeline for the call's whole duration (the estimator's
// schedule and the paper's engine both let transfers slip in first).
type readyItem struct {
	ready float64
	comm  bool
	id    int
}

type readyHeap []readyItem

func (q readyHeap) Len() int { return len(q) }
func (q readyHeap) Less(i, j int) bool {
	if q[i].ready != q[j].ready {
		return q[i].ready < q[j].ready
	}
	if q[i].comm != q[j].comm {
		return q[i].comm
	}
	return q[i].id < q[j].id
}
func (q readyHeap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *readyHeap) Push(x any)   { *q = append(*q, x.(readyItem)) }
func (q *readyHeap) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Run drives the event-driven dispatch loop.
//
// Determinism: workers run concurrently, and replies arrive in arbitrary
// physical order, but the virtual timeline they produce is a pure function
// of the per-(worker, stream) request order — which the master keeps
// deterministic with a conservative gate. A ready node (all parents
// complete) is dispatched only when its ready time is strictly below every
// in-flight node's earliest possible completion (readyV + dispatch
// overhead): since any future node's ready time is at least that bound, the
// global dispatch sequence is exactly the (ready time, node ID)-sorted
// order, independent of goroutine scheduling and reply arrival order.
func (m *Master) Run() (*Report, error) {
	ctx := m.opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if m.opts.Transport != nil && len(m.opts.Workers) == 0 {
		return nil, fmt.Errorf("runtime: custom Transport requires Options.Workers (memory accounting needs the worker set)")
	}
	g, err := m.plan.BuildAugGraph()
	if err != nil {
		return nil, err
	}
	works, err := m.prepare(g)
	if err != nil {
		return nil, err
	}

	var workers []*ModelWorker
	transport := m.opts.Transport
	if transport == nil {
		static := estimator.StaticPerGPU(m.plan)
		workers = make([]*ModelWorker, m.hw.NumGPUs())
		for i := range workers {
			workers[i] = NewModelWorker(i, m.hw.GPU.MemoryBytes)
			workers[i].StaticBytes = static[i]
		}
		ct := NewChanTransport(workers)
		defer ct.Close()
		transport = ct
	} else {
		workers = m.opts.Workers
	}

	report := &Report{
		OverlapComm:    m.opts.OverlapComm,
		CallTimes:      map[string]float64{},
		CallBreakdowns: map[string]gpumodel.Breakdown{},
	}

	total := len(g.Nodes)
	pending := make([]int, total) // outstanding parent count
	readyV := make([]float64, total)
	outstanding := make([]int, total) // replies still expected
	startV := make([]float64, total)  // min start over the node's replies
	endV := make([]float64, total)    // max end over the node's replies
	done := make([]bool, total)
	for i := range startV {
		startV[i] = math.MaxFloat64
	}

	streamFor := func(k core.Kind) Stream {
		if m.opts.OverlapComm {
			return StreamOf(k)
		}
		return StreamCompute
	}

	var ready readyHeap
	inflight := map[int]float64{}            // id -> lower bound on completion time
	owedByGPU := make([]int, m.hw.NumGPUs()) // replies each device still owes

	// minInflightBound is the earliest virtual time any in-flight node can
	// complete — the dispatch gate. Map iteration order does not matter:
	// min is order-independent.
	minInflightBound := func() (float64, bool) {
		if len(inflight) == 0 {
			return 0, false
		}
		min := math.MaxFloat64
		for _, b := range inflight {
			if b < min {
				min = b
			}
		}
		return min, true
	}

	dispatch := func(id int) error {
		w := works[id]
		s := streamFor(w.node.Kind)
		for _, gpu := range w.gpus {
			dur := w.dur
			if w.durByGPU != nil {
				dur = w.durByGPU[gpu]
			}
			req := Request{
				ID: id, Kind: ReqRunCall, NodeID: id, Stream: s,
				Label: w.node.Label, Handle: string(w.node.Role),
				ReadyV: readyV[id], DurV: dur, AllocBytes: w.alloc,
			}
			if w.node.Kind != core.KindCall {
				req.Kind = ReqComm
				req.AllocBytes = 0
			}
			if err := transport.Send(gpu, req); err != nil {
				return fmt.Errorf("runtime: dispatch %q to gpu %d: %w", w.node.Label, gpu, err)
			}
			owedByGPU[gpu]++
		}
		outstanding[id] = len(w.gpus)
		inflight[id] = readyV[id] + dispatchOverheadV
		return nil
	}

	completed := 0
	handleReply := func(rep Reply) {
		if rep.OOM {
			report.OOM = true
			report.Errors = append(report.Errors, rep.Error)
		}
		id := rep.ID
		if rep.EndV > endV[id] {
			endV[id] = rep.EndV
		}
		if rep.StartV < startV[id] {
			startV[id] = rep.StartV
		}
		if rep.GPU >= 0 && rep.GPU < len(owedByGPU) {
			owedByGPU[rep.GPU]--
		}
		outstanding[id]--
		if outstanding[id] > 0 {
			return
		}
		// Node complete: release the gate and unlock children.
		done[id] = true
		completed++
		delete(inflight, id)
		for _, c := range g.Nodes[id].Children {
			if endV[id] > readyV[c] {
				readyV[c] = endV[id]
			}
			pending[c]--
			if pending[c] == 0 {
				heap.Push(&ready, readyItem{ready: readyV[c], comm: g.Nodes[c].Kind.CommLike(), id: c})
			}
		}
	}

	// finish assembles the deterministic report from per-node results,
	// independent of reply arrival order: nodes are folded in ID order and
	// the error list is sorted.
	finish := func() {
		// Iteration accounting distinguishes the configured span (every call
		// node, done or not) from what actually completed: an iteration
		// counts as completed only when all of its calls finished, so a
		// cancelled run's IterTime is never averaged over phantom work.
		iters := 0
		callsPerIter := map[int]int{}
		donePerIter := map[int]int{}
		for _, n := range g.Nodes {
			if n.Kind == core.KindCall {
				if n.Call.Iter+1 > iters {
					iters = n.Call.Iter + 1
				}
				callsPerIter[n.Call.Iter]++
				if done[n.ID] {
					donePerIter[n.Call.Iter]++
				}
			}
			if !done[n.ID] {
				continue
			}
			w := works[n.ID]
			report.Timeline = append(report.Timeline, NodeSpan{
				Label: n.Label, Kind: n.Kind, Stream: streamFor(n.Kind),
				Lane: w.gpus[0], StartV: startV[n.ID], EndV: endV[n.ID],
			})
			if endV[n.ID] > report.MakespanV {
				report.MakespanV = endV[n.ID]
			}
			switch n.Kind {
			case core.KindCall:
				if n.Call.Iter == 0 {
					report.CallTimes[n.Call.Name] = w.dur
					report.CallBreakdowns[n.Call.Name] = w.breakdown
				}
			default:
				report.CommTimeV += w.dur
			}
		}
		report.Iterations = iters
		for it, total := range callsPerIter {
			if donePerIter[it] == total {
				report.CompletedIterations++
			}
		}
		for _, w := range workers {
			if w != nil && w.Peak() > report.PeakBytes {
				report.PeakBytes = w.Peak()
			}
		}
		sort.Strings(report.Errors)
		sort.SliceStable(report.Timeline, func(i, j int) bool {
			return report.Timeline[i].StartV < report.Timeline[j].StartV
		})
	}

	for _, n := range g.Nodes {
		pending[n.ID] = len(n.Parents)
	}
	for _, n := range g.Nodes {
		if pending[n.ID] == 0 {
			heap.Push(&ready, readyItem{ready: 0, comm: n.Kind.CommLike(), id: n.ID})
		}
	}

	// A run that dies mid-flight — lost worker, closed transport, stalled
	// scheduler — still returns the partial report assembled from every
	// node that did complete, exactly like a context cancellation: the
	// caller's accounting (CompletedIterations, IterTime's partial-run
	// clamp) must not depend on *why* the run ended early.
	var timer *time.Timer
	if m.opts.WorkerTimeout > 0 {
		timer = time.NewTimer(m.opts.WorkerTimeout)
		defer timer.Stop()
	}
	for completed < total {
		// Dispatch every node the gate admits, draining replies
		// opportunistically so queues never back up. Handling a reply
		// early never changes the dispatch sequence — the gate already
		// forbids any pop the extra knowledge could reorder.
		for ready.Len() > 0 {
			if bound, ok := minInflightBound(); ok && ready[0].ready >= bound {
				break
			}
			it := heap.Pop(&ready).(readyItem)
			if err := dispatch(it.id); err != nil {
				finish()
				return report, err
			}
			for drained := false; !drained; {
				select {
				case rep, ok := <-transport.Replies():
					if !ok {
						finish()
						return report, fmt.Errorf("runtime: transport closed with %d nodes in flight", len(inflight))
					}
					handleReply(rep)
				default:
					drained = true
				}
			}
		}
		if completed == total {
			break
		}
		if len(inflight) == 0 {
			finish()
			return report, fmt.Errorf("runtime: scheduler stalled with %d/%d nodes complete", completed, total)
		}
		// Re-arm the liveness timer for this wait: a timeout means no
		// worker answered for a full WorkerTimeout while replies were owed.
		var timeoutC <-chan time.Time
		if timer != nil {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(m.opts.WorkerTimeout)
			timeoutC = timer.C
		}
		select {
		case <-ctx.Done():
			finish()
			return report, fmt.Errorf("runtime: run cancelled with %d/%d nodes complete: %w",
				completed, total, ctx.Err())
		case <-timeoutC:
			finish()
			lost := -1
			for gpu, owed := range owedByGPU {
				if owed > 0 {
					lost = gpu
					break
				}
			}
			return report, fmt.Errorf("runtime: no worker reply within %v with %d/%d nodes complete: %w",
				m.opts.WorkerTimeout, completed, total, &ErrWorkerLost{GPU: lost})
		case rep, ok := <-transport.Replies():
			if !ok {
				finish()
				return report, fmt.Errorf("runtime: transport closed with %d nodes in flight", len(inflight))
			}
			handleReply(rep)
		}
	}
	finish()
	return report, nil
}
