package runtime

import (
	"fmt"
	"sync"
)

// dispatchOverheadV is the virtual per-request master->worker dispatch
// latency (socket round trip plus queue polling). It is one of the runtime
// effects the lightweight estimator does not model, contributing to the
// estimated-vs-real gap of Fig. 12.
const dispatchOverheadV = 200e-6

// ModelWorker simulates one GPU's worker process: it executes requests in
// per-stream FIFO order, advancing one virtual clock per stream and
// enforcing the device memory limit. The two streams model a device's
// compute and copy engines: requests on different streams overlap in
// virtual time, requests on the same stream serialize.
//
// Handle is safe for concurrent use: the in-process transport runs one
// goroutine per stream against the same worker.
type ModelWorker struct {
	GPU int
	// MemoryBytes is the device capacity.
	MemoryBytes int64
	// StaticBytes is the resting memory of models homed on this GPU.
	StaticBytes int64

	mu     sync.Mutex
	clockV [NumStreams]float64
	// peakBytes tracks the high-water mark for reporting.
	peakBytes int64
}

// NewModelWorker builds a worker for one device.
func NewModelWorker(gpu int, memoryBytes int64) *ModelWorker {
	return &ModelWorker{GPU: gpu, MemoryBytes: memoryBytes}
}

// Clock returns the worker's current virtual time: the furthest-advanced
// stream clock.
func (w *ModelWorker) Clock() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	c := w.clockV[0]
	for _, v := range w.clockV[1:] {
		if v > c {
			c = v
		}
	}
	return c
}

// StreamClock returns one stream's virtual time.
func (w *ModelWorker) StreamClock(s Stream) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.clockV[s]
}

// Peak returns the observed memory high-water mark.
func (w *ModelWorker) Peak() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.peakBytes
}

// Reset returns the worker to its initial state for the next iteration of a
// long-lived session: stream clocks and the memory high-water mark go back
// to zero and the resting memory is replaced (the plan — and with it each
// device's static footprint — may have changed between iterations). Callers
// must quiesce the worker first (WorkerPool.Reset fences every stream);
// resetting with requests in flight would interleave old virtual times into
// the new iteration.
func (w *ModelWorker) Reset(staticBytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for s := range w.clockV {
		w.clockV[s] = 0
	}
	w.peakBytes = 0
	w.StaticBytes = staticBytes
}

// Handle executes one request against the simulated device and returns the
// reply the worker would send. Shutdown and fence requests return a marker
// Reply without advancing clocks or touching the memory ledger.
func (w *ModelWorker) Handle(req Request) Reply {
	if req.Kind == ReqShutdown || req.Kind == ReqFence {
		return Reply{ID: req.ID, GPU: w.GPU}
	}
	s := req.Stream
	if s < 0 || int(s) >= NumStreams {
		s = StreamCompute
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	start := req.ReadyV
	if w.clockV[s] > start {
		start = w.clockV[s]
	}
	start += dispatchOverheadV

	need := w.StaticBytes + req.AllocBytes
	if need > w.peakBytes {
		w.peakBytes = need
	}
	if need > w.MemoryBytes {
		w.clockV[s] = start
		return Reply{
			ID: req.ID, GPU: w.GPU, StartV: start, EndV: start, OOM: true,
			Error: fmt.Sprintf("gpu %d: CUDA out of memory: %d + %d > %d",
				w.GPU, w.StaticBytes, req.AllocBytes, w.MemoryBytes),
		}
	}
	end := start + req.DurV
	w.clockV[s] = end
	return Reply{ID: req.ID, GPU: w.GPU, StartV: start, EndV: end}
}
