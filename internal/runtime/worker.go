package runtime

import "fmt"

// dispatchOverheadV is the virtual per-request master->worker dispatch
// latency (socket round trip plus queue polling). It is one of the runtime
// effects the lightweight estimator does not model, contributing to the
// estimated-vs-real gap of Fig. 12.
const dispatchOverheadV = 200e-6

// ModelWorker simulates one GPU's worker process: it executes requests in
// FIFO order, advancing a virtual clock and enforcing the device memory
// limit.
type ModelWorker struct {
	GPU int
	// MemoryBytes is the device capacity.
	MemoryBytes int64
	// StaticBytes is the resting memory of models homed on this GPU.
	StaticBytes int64

	clockV float64
	// peakBytes tracks the high-water mark for reporting.
	peakBytes int64
}

// NewModelWorker builds a worker for one device.
func NewModelWorker(gpu int, memoryBytes int64) *ModelWorker {
	return &ModelWorker{GPU: gpu, MemoryBytes: memoryBytes}
}

// Clock returns the worker's current virtual time.
func (w *ModelWorker) Clock() float64 { return w.clockV }

// Peak returns the observed memory high-water mark.
func (w *ModelWorker) Peak() int64 { return w.peakBytes }

// Handle executes one request against the simulated device and returns the
// reply the worker would send. Shutdown requests return a zero Reply.
func (w *ModelWorker) Handle(req Request) Reply {
	if req.Kind == ReqShutdown {
		return Reply{ID: req.ID, GPU: w.GPU}
	}
	start := req.ReadyV
	if w.clockV > start {
		start = w.clockV
	}
	start += dispatchOverheadV

	need := w.StaticBytes + req.AllocBytes
	if need > w.peakBytes {
		w.peakBytes = need
	}
	if need > w.MemoryBytes {
		w.clockV = start
		return Reply{
			ID: req.ID, GPU: w.GPU, EndV: start, OOM: true,
			Error: fmt.Sprintf("gpu %d: CUDA out of memory: %d + %d > %d",
				w.GPU, w.StaticBytes, req.AllocBytes, w.MemoryBytes),
		}
	}
	end := start + req.DurV
	w.clockV = end
	return Reply{ID: req.ID, GPU: w.GPU, EndV: end}
}
