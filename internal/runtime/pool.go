package runtime

import (
	"fmt"
	"sync"
	"time"

	"realhf/internal/core"
)

// WorkerPool owns a set of model workers and the transport that drives them,
// both persisting across runs — the execution-side state a long-lived
// training session reuses every iteration, where the one-shot Run path
// rebuilds workers and transport per call. Between iterations the pool is
// Reset: every stream is fenced and drained to quiescence, stream clocks and
// memory ledgers return to zero, and each device's static footprint is
// replaced (the next iteration may execute a different plan). Resize swaps
// the fleet for a different device count mid-session (elastic cluster
// changes).
//
// A pool serializes its own operations; run one iteration at a time.
type WorkerPool struct {
	mu           sync.Mutex
	workers      []*ModelWorker
	transport    Transport
	memoryBytes  int64
	fenceTimeout time.Duration
	ownTransport bool
	closed       bool
}

// NewWorkerPool starts a pool of numGPUs workers with the given device
// memory over the in-process channel transport.
func NewWorkerPool(numGPUs int, memoryBytes int64) *WorkerPool {
	workers := make([]*ModelWorker, numGPUs)
	for i := range workers {
		workers[i] = NewModelWorker(i, memoryBytes)
	}
	return &WorkerPool{
		workers:      workers,
		transport:    NewChanTransport(workers),
		memoryBytes:  memoryBytes,
		ownTransport: true,
	}
}

// NewWorkerPoolWith adopts caller-owned workers and transport (e.g. a TCP
// fleet served by ServeWorkersTCP). The caller keeps teardown responsibility
// for the transport's far side; Close still closes the transport itself.
func NewWorkerPoolWith(workers []*ModelWorker, tr Transport) *WorkerPool {
	var mem int64
	if len(workers) > 0 {
		mem = workers[0].MemoryBytes
	}
	return &WorkerPool{workers: workers, transport: tr, memoryBytes: mem}
}

// Size is the pool's device count.
func (wp *WorkerPool) Size() int {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	return len(wp.workers)
}

// Workers exposes the live fleet (for memory reporting and tests).
func (wp *WorkerPool) Workers() []*ModelWorker {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	return wp.workers
}

// SetFenceTimeout bounds how long Reset waits for the fleet to quiesce:
// when the fences are not all answered within d, Reset gives up and
// reports the smallest unaccounted-for device as a typed *ErrWorkerLost
// instead of hanging on a dead or wedged worker. Zero (the default)
// restores the unbounded wait.
func (wp *WorkerPool) SetFenceTimeout(d time.Duration) {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	wp.fenceTimeout = d
}

// fenceID maps a (gpu, stream) pair to a reserved negative request ID, so
// fence replies can never collide with the master's node IDs (>= 0).
func fenceID(gpu int, s Stream) int { return -(1 + gpu*NumStreams + int(s)) }

// fenceGPU inverts fenceID.
func fenceGPU(id int) int { return (-id - 1) / NumStreams }

// Reset quiesces and reinitializes the fleet for the next iteration:
//
//  1. a fence is sent down every (worker, stream) queue and its reply
//     awaited — per-stream FIFO order plus the reply channel's own FIFO
//     guarantee that once all fences are back, every straggler reply from a
//     previous (possibly cancelled) run has been received and discarded;
//  2. each worker's stream clocks and peak-memory ledger are zeroed and its
//     resting memory replaced by static[i].
//
// static must have one entry per worker (estimator.StaticPerGPU of the next
// plan).
func (wp *WorkerPool) Reset(static []int64) error {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if wp.closed {
		return fmt.Errorf("runtime: worker pool closed")
	}
	if len(static) != len(wp.workers) {
		return fmt.Errorf("runtime: Reset with %d static entries for %d workers", len(static), len(wp.workers))
	}
	if err := wp.drainLocked(); err != nil {
		return err
	}
	for i, w := range wp.workers {
		w.Reset(static[i])
	}
	return nil
}

// drainLocked runs the fence protocol over the pool's transport. A dead
// worker surfaces here in one of two ways, both as a typed *ErrWorkerLost
// in the returned chain: the fence send itself fails (a killed transport
// lane), or the fences stop coming back and the fence timeout expires (a
// wedged or silently dropped stream).
func (wp *WorkerPool) drainLocked() error {
	want := make(map[int]bool, len(wp.workers)*NumStreams)
	for gpu := range wp.workers {
		for s := Stream(0); s < NumStreams; s++ {
			id := fenceID(gpu, s)
			want[id] = true
			if err := wp.transport.Send(gpu, Request{ID: id, Kind: ReqFence, Stream: s}); err != nil {
				return fmt.Errorf("runtime: fence gpu %d: %w", gpu, err)
			}
		}
	}
	var timeout <-chan time.Time
	if wp.fenceTimeout > 0 {
		timer := time.NewTimer(wp.fenceTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	for len(want) > 0 {
		select {
		case rep, ok := <-wp.transport.Replies():
			if !ok {
				return fmt.Errorf("runtime: transport closed with %d fences outstanding", len(want))
			}
			delete(want, rep.ID) // non-fence IDs are stragglers; discard
		case <-timeout:
			// Deterministic blame: the smallest device with an outstanding
			// fence (min over a map is iteration-order independent).
			lost := -1
			for id := range want {
				if gpu := fenceGPU(id); lost < 0 || gpu < lost {
					lost = gpu
				}
			}
			return fmt.Errorf("runtime: fence timeout after %v with %d fences outstanding: %w",
				wp.fenceTimeout, len(want), &ErrWorkerLost{GPU: lost})
		}
	}
	return nil
}

// Run executes one plan over the pool's persistent workers and transport.
// The caller is responsible for Reset between iterations (and for setting
// the static footprints the plan implies); Run itself never rebuilds or
// reclocks the fleet, which is the point of the pool.
func (wp *WorkerPool) Run(p *core.Plan, opts Options) (*Report, error) {
	wp.mu.Lock()
	if wp.closed {
		wp.mu.Unlock()
		return nil, fmt.Errorf("runtime: worker pool closed")
	}
	opts.Transport = wp.transport
	opts.Workers = wp.workers
	wp.mu.Unlock()
	return Run(p, opts)
}

// Resize replaces the fleet with numGPUs workers of the given memory — the
// elastic mid-session cluster change. Only pools that own their transport
// (NewWorkerPool) can resize; adopted fleets have caller-owned lifecycles.
func (wp *WorkerPool) Resize(numGPUs int, memoryBytes int64) error {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if wp.closed {
		return fmt.Errorf("runtime: worker pool closed")
	}
	if !wp.ownTransport {
		return fmt.Errorf("runtime: cannot resize a pool over an adopted transport")
	}
	if numGPUs <= 0 {
		return fmt.Errorf("runtime: resize to %d workers", numGPUs)
	}
	if memoryBytes <= 0 {
		memoryBytes = wp.memoryBytes
	}
	if err := wp.transport.Close(); err != nil {
		return err
	}
	workers := make([]*ModelWorker, numGPUs)
	for i := range workers {
		workers[i] = NewModelWorker(i, memoryBytes)
	}
	wp.workers = workers
	wp.transport = NewChanTransport(workers)
	wp.memoryBytes = memoryBytes
	return nil
}

// Close tears the pool down. Idempotent.
func (wp *WorkerPool) Close() error {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if wp.closed {
		return nil
	}
	wp.closed = true
	return wp.transport.Close()
}
