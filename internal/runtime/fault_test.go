package runtime

import (
	"errors"
	"testing"
	"time"

	"realhf/internal/estimator"
)

// faultyPool builds a worker pool whose chan transport is wrapped in a
// FaultyTransport — the in-process chaos rig the resilience tests use.
func faultyPool(numGPUs int, mem int64) (*WorkerPool, *FaultyTransport, []*ModelWorker) {
	workers := make([]*ModelWorker, numGPUs)
	for i := range workers {
		workers[i] = NewModelWorker(i, mem)
	}
	ft := NewFaultyTransport(NewChanTransport(workers))
	return NewWorkerPoolWith(workers, ft), ft, workers
}

// TestFaultKillFailsReset: a killed worker fails the fence protocol with a
// typed *ErrWorkerLost naming the device, via the send-error path (no
// timeout needed — a dead transport lane answers immediately).
func TestFaultKillFailsReset(t *testing.T) {
	plan := reallocHeavyPlan(t, 1)
	wp, ft, _ := faultyPool(plan.Cluster.NumGPUs(), plan.Cluster.GPU.MemoryBytes)
	defer wp.Close()
	ft.Fail(3, FaultKill)
	err := wp.Reset(estimator.StaticPerGPU(plan))
	var lost *ErrWorkerLost
	if !errors.As(err, &lost) {
		t.Fatalf("Reset with a killed worker returned %v, want *ErrWorkerLost", err)
	}
	if lost.GPU != 3 {
		t.Fatalf("lost gpu %d, want 3", lost.GPU)
	}
}

// TestFenceTimeoutOnDroppedStream: a wedged worker (requests silently
// swallowed, no error) is only detectable by the fence timeout, which must
// blame exactly the wedged device.
func TestFenceTimeoutOnDroppedStream(t *testing.T) {
	plan := reallocHeavyPlan(t, 1)
	wp, ft, _ := faultyPool(plan.Cluster.NumGPUs(), plan.Cluster.GPU.MemoryBytes)
	defer wp.Close()
	wp.SetFenceTimeout(100 * time.Millisecond)
	ft.Fail(5, FaultDrop)
	err := wp.Reset(estimator.StaticPerGPU(plan))
	var lost *ErrWorkerLost
	if !errors.As(err, &lost) {
		t.Fatalf("Reset with a wedged worker returned %v, want *ErrWorkerLost", err)
	}
	if lost.GPU != 5 {
		t.Fatalf("lost gpu %d, want 5", lost.GPU)
	}
}

// TestFaultDelayHealRecovers: a stalled reply path times the fence out,
// but after Heal releases the backlog the pool quiesces and executes the
// plan bit-identically to a fresh one-shot run — transient faults do not
// poison the session.
func TestFaultDelayHealRecovers(t *testing.T) {
	plan := reallocHeavyPlan(t, 1)
	oneShot, err := RunOverlapped(plan)
	if err != nil {
		t.Fatal(err)
	}
	wp, ft, _ := faultyPool(plan.Cluster.NumGPUs(), plan.Cluster.GPU.MemoryBytes)
	defer wp.Close()
	wp.SetFenceTimeout(100 * time.Millisecond)
	static := estimator.StaticPerGPU(plan)

	ft.Fail(2, FaultDelay)
	err = wp.Reset(static)
	var lost *ErrWorkerLost
	if !errors.As(err, &lost) || lost.GPU != 2 {
		t.Fatalf("Reset with a delayed worker returned %v, want *ErrWorkerLost on gpu 2", err)
	}

	ft.Heal(2)
	if err := wp.Reset(static); err != nil {
		t.Fatalf("Reset after Heal: %v", err)
	}
	rep, err := wp.Run(plan, Options{UseCUDAGraph: true, OverlapComm: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanV != oneShot.MakespanV {
		t.Fatalf("post-heal makespan %v != one-shot %v", rep.MakespanV, oneShot.MakespanV)
	}
}

// TestRunWorkerTimeoutPartialReport: losing a worker mid-run surfaces a
// typed *ErrWorkerLost through Options.WorkerTimeout instead of hanging,
// and the partial report still accounts the nodes that completed.
func TestRunWorkerTimeoutPartialReport(t *testing.T) {
	plan := reallocHeavyPlan(t, 2)
	static := estimator.StaticPerGPU(plan)
	workers := make([]*ModelWorker, plan.Cluster.NumGPUs())
	for i := range workers {
		workers[i] = NewModelWorker(i, plan.Cluster.GPU.MemoryBytes)
		workers[i].StaticBytes = static[i]
	}
	ft := NewFaultyTransport(NewChanTransport(workers))
	defer ft.Close()
	// The third request delivered to gpu 0 finds the worker dead: from
	// then on its replies vanish and fresh sends to it fail.
	ft.InjectAfter(0, 3, FaultKill)

	rep, err := Run(plan, Options{
		UseCUDAGraph: true, OverlapComm: true,
		Transport: ft, Workers: workers,
		WorkerTimeout: 200 * time.Millisecond,
	})
	var lost *ErrWorkerLost
	if !errors.As(err, &lost) {
		t.Fatalf("Run with a killed worker returned %v, want *ErrWorkerLost", err)
	}
	if lost.GPU != 0 {
		t.Fatalf("lost gpu %d, want 0", lost.GPU)
	}
	if rep == nil {
		t.Fatal("worker loss must still return the partial report")
	}
	if rep.Iterations != 2 {
		t.Fatalf("partial report Iterations = %d, want the configured 2", rep.Iterations)
	}
	if rep.CompletedIterations >= rep.Iterations {
		t.Fatalf("CompletedIterations = %d with a worker lost mid-run, want < %d",
			rep.CompletedIterations, rep.Iterations)
	}
}

// TestFaultFreePassThroughIsBitIdentical: with no fault armed the wrapper
// is invisible — the pooled run over a FaultyTransport reproduces the
// one-shot timeline byte for byte (determinism survives the extra hop).
func TestFaultFreePassThroughIsBitIdentical(t *testing.T) {
	plan := reallocHeavyPlan(t, 1)
	oneShot, err := RunOverlapped(plan)
	if err != nil {
		t.Fatal(err)
	}
	wp, _, _ := faultyPool(plan.Cluster.NumGPUs(), plan.Cluster.GPU.MemoryBytes)
	defer wp.Close()
	if err := wp.Reset(estimator.StaticPerGPU(plan)); err != nil {
		t.Fatal(err)
	}
	rep, err := wp.Run(plan, Options{UseCUDAGraph: true, OverlapComm: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanV != oneShot.MakespanV || rep.PeakBytes != oneShot.PeakBytes {
		t.Fatalf("faulty-transport run (%v, %d) != one-shot (%v, %d)",
			rep.MakespanV, rep.PeakBytes, oneShot.MakespanV, oneShot.PeakBytes)
	}
}
