package runtime

import (
	"math"
	"testing"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

func ppoPlan(t *testing.T, nodes, iters int, actor, critic model.Config) *core.Plan {
	t.Helper()
	cluster := hardware.DefaultCluster(nodes)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: iters})
	p := core.NewPlan(cluster, g, core.PPOModels(actor, critic))
	full := mesh.Full(cluster)
	st := parallel.Strategy{DP: cluster.NumGPUs() / 8, TP: 8, PP: 1, MicroBatches: 2}
	for _, name := range p.CallNames() {
		p.Assign[name] = core.Assignment{Mesh: full, Strategy: st}
	}
	return p
}

func TestRunSymmetricPlan(t *testing.T) {
	p := ppoPlan(t, 2, 1, model.LLaMA7B, model.LLaMA7B)
	rep, err := RunDefault(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOM {
		t.Fatalf("unexpected OOM: %v", rep.Errors)
	}
	if rep.MakespanV <= 0 {
		t.Fatal("makespan must be positive")
	}
	if len(rep.CallTimes) != 6 {
		t.Errorf("CallTimes has %d entries, want 6", len(rep.CallTimes))
	}
	if rep.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", rep.Iterations)
	}
	for name, d := range rep.CallTimes {
		if d <= 0 {
			t.Errorf("call %s has non-positive duration", name)
		}
	}
}

func TestRunMatchesEstimatorClosely(t *testing.T) {
	// The paper's Fig. 12 (right): the estimator stays within ~25% of real
	// runs. Our estimator uses the same oracle here, so agreement should be
	// tight (the residual is dispatch overhead).
	p := ppoPlan(t, 2, 1, model.LLaMA7B, model.LLaMA7B)
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range p.Models {
		costers[role] = gpumodel.NewOracle(p.Cluster, ms.Cfg)
	}
	e := estimator.New(p.Cluster, costers)
	est, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunDefault(p)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(rep.MakespanV-est.TimeCost) / est.TimeCost
	if rel > 0.25 {
		t.Errorf("runtime %.3fs vs estimate %.3fs: %.1f%% apart (>25%%)",
			rep.MakespanV, est.TimeCost, 100*rel)
	}
	// The runtime includes dispatch overheads the estimator ignores, so the
	// real run is never faster.
	if rep.MakespanV < est.TimeCost {
		t.Errorf("runtime (%.4fs) should not beat the estimate (%.4fs)", rep.MakespanV, est.TimeCost)
	}
}

func TestMultiIterationAmortization(t *testing.T) {
	p1 := ppoPlan(t, 1, 1, model.LLaMA7B, model.LLaMA7B)
	p3 := ppoPlan(t, 1, 3, model.LLaMA7B, model.LLaMA7B)
	r1, err := RunDefault(p1)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := RunDefault(p3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Iterations != 3 {
		t.Fatalf("Iterations = %d, want 3", r3.Iterations)
	}
	perIter := r3.IterTime()
	if math.Abs(perIter-r1.MakespanV)/r1.MakespanV > 0.35 {
		t.Errorf("per-iteration time %.2fs far from single-iteration %.2fs", perIter, r1.MakespanV)
	}
}

func TestRunReportsOOM(t *testing.T) {
	cluster := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 1})
	p := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA70B, model.LLaMA7B))
	full := mesh.Full(cluster)
	st := parallel.Strategy{DP: 16, TP: 1, PP: 1, MicroBatches: 1}
	for _, name := range p.CallNames() {
		p.Assign[name] = core.Assignment{Mesh: full, Strategy: st}
	}
	rep, err := RunDefault(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OOM {
		t.Error("70B pure-DP run must report OOM")
	}
	if len(rep.Errors) == 0 {
		t.Error("OOM must carry worker error messages")
	}
}

func TestAsymmetricPlanOverlapsAndReallocates(t *testing.T) {
	cluster := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 1})
	p := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA7B, model.LLaMA7B))
	m0, _ := mesh.New(0, 8, 8)
	m1, _ := mesh.New(8, 8, 8)
	st := parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 2}
	stGen := parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1}
	p.Assign["ActorGen"] = core.Assignment{Mesh: m0, Strategy: stGen}
	p.Assign["RefInf"] = core.Assignment{Mesh: m0, Strategy: st}
	p.Assign["ActorTrain"] = core.Assignment{Mesh: m0, Strategy: st}
	p.Assign["RewInf"] = core.Assignment{Mesh: m1, Strategy: st}
	p.Assign["CriticInf"] = core.Assignment{Mesh: m1, Strategy: st}
	p.Assign["CriticTrain"] = core.Assignment{Mesh: m1, Strategy: st}

	rep, err := RunDefault(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOM {
		t.Fatalf("plan OOMed: %v", rep.Errors)
	}
	if rep.CommTimeV <= 0 {
		t.Error("asymmetric plan must spend time on realloc/data transfer")
	}
	// Actor and critic training are independent and disjoint: their spans
	// must overlap.
	var at, ct NodeSpan
	for _, span := range rep.Timeline {
		switch span.Label {
		case "ActorTrain@0":
			at = span
		case "CriticTrain@0":
			ct = span
		}
	}
	if at.EndV <= ct.StartV || ct.EndV <= at.StartV {
		t.Error("disjoint actor/critic training did not overlap in virtual time")
	}
}

func TestWorkerFIFOAndClock(t *testing.T) {
	w := NewModelWorker(0, 1<<30)
	r1 := w.Handle(Request{ID: 1, ReadyV: 0, DurV: 1.0})
	r2 := w.Handle(Request{ID: 2, ReadyV: 0, DurV: 0.5})
	if r2.EndV <= r1.EndV {
		t.Error("FIFO execution must serialize on the worker clock")
	}
	r3 := w.Handle(Request{ID: 3, ReadyV: 10, DurV: 0.5})
	if r3.EndV < 10.5 {
		t.Error("worker must wait for data readiness")
	}
}

func TestWorkerOOM(t *testing.T) {
	w := NewModelWorker(3, 1000)
	w.StaticBytes = 900
	rep := w.Handle(Request{ID: 1, DurV: 1, AllocBytes: 200})
	if !rep.OOM {
		t.Error("allocation beyond capacity must OOM")
	}
	ok := w.Handle(Request{ID: 2, DurV: 1, AllocBytes: 50})
	if ok.OOM {
		t.Error("allocation within capacity must succeed")
	}
	if w.Peak() != 1100 {
		t.Errorf("peak = %d, want 1100", w.Peak())
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	p := ppoPlan(t, 1, 1, model.LLaMA7B, model.LLaMA7B)
	static := estimator.StaticPerGPU(p)
	workers := make([]*ModelWorker, p.Cluster.NumGPUs())
	for i := range workers {
		workers[i] = NewModelWorker(i, p.Cluster.GPU.MemoryBytes)
		workers[i].StaticBytes = static[i]
	}
	addr, stop, err := ServeWorkersTCP(workers)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	tr, err := NewTCPTransport(addr, len(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	rep, err := Run(p, Options{UseCUDAGraph: true, Transport: tr, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOM {
		t.Fatalf("unexpected OOM over TCP: %v", rep.Errors)
	}
	// The same plan over the in-process transport must give identical
	// virtual timing: the transport is a carrier, not a model.
	rep2, err := RunDefault(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MakespanV-rep2.MakespanV) > 1e-9 {
		t.Errorf("TCP makespan %.6f != chan makespan %.6f", rep.MakespanV, rep2.MakespanV)
	}
}

func TestCUDAGraphFlagChangesGeneration(t *testing.T) {
	p := ppoPlan(t, 1, 1, model.LLaMA7B, model.LLaMA7B)
	on, err := Run(p, Options{UseCUDAGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(p, Options{UseCUDAGraph: false})
	if err != nil {
		t.Fatal(err)
	}
	if off.CallTimes["ActorGen"] <= on.CallTimes["ActorGen"] {
		t.Error("disabling CUDA graphs must slow generation (Table 6)")
	}
	if math.Abs(off.CallTimes["ActorTrain"]-on.CallTimes["ActorTrain"]) > 1e-9 {
		t.Error("CUDA graphs must not affect training time")
	}
}

func TestTimelineDependenciesHold(t *testing.T) {
	p := ppoPlan(t, 2, 2, model.LLaMA7B, model.LLaMA7B)
	rep, err := RunDefault(p)
	if err != nil {
		t.Fatal(err)
	}
	// ActorGen@1 must start after ActorTrain@0 completes (parameter
	// version dependency).
	var train0End, gen1Start float64 = -1, -1
	for _, s := range rep.Timeline {
		if s.Label == "ActorTrain@0" {
			train0End = s.EndV
		}
		if s.Label == "ActorGen@1" {
			gen1Start = s.StartV
		}
	}
	if train0End < 0 || gen1Start < 0 {
		t.Fatal("missing expected timeline spans")
	}
	if gen1Start < train0End-1e-9 {
		t.Errorf("ActorGen@1 started at %.3f before ActorTrain@0 ended at %.3f",
			gen1Start, train0End)
	}
}
