// Package runtime implements the paper's runtime engine (§6): a centralized
// master worker that resolves the dependencies of the augmented dataflow
// graph and dispatches requests to per-GPU model workers, which execute them
// in stream order and reply with completion information. Requests carry no
// tensor data — data stays resident on worker GPUs and the master only
// communicates locations and timing, exactly as in the paper.
//
// Since no physical GPUs exist here (DESIGN.md §2), workers execute against
// a simulated device: each worker owns one virtual clock per stream and a
// memory ledger, and request durations come from the gpumodel oracle.
// Everything else — the event-driven dependency engine, the dispatch
// protocol, the per-GPU per-stream queues, parameter reallocation and
// data-transfer scheduling — runs for real, over either in-process channels
// or TCP sockets with gob encoding.
//
// Each worker exposes two streams, mirroring a CUDA device's compute and
// copy engines: model function calls execute on StreamCompute; parameter
// reallocation, data transfer and offload traffic execute on StreamComm.
// With Options.OverlapComm enabled the two streams advance independently, so
// reallocation latency hides behind computation (the paper's §6 overlap);
// with it disabled the master routes every request to StreamCompute,
// recovering the fully serialized baseline schedule (the ±overlap ablation).
package runtime

import "realhf/internal/core"

// RequestKind classifies master->worker requests.
type RequestKind int

const (
	// ReqRunCall executes one model function call slice on the worker.
	ReqRunCall RequestKind = iota
	// ReqComm executes the worker's share of a parameter reallocation, data
	// transfer, or offload.
	ReqComm
	// ReqShutdown stops the worker loop.
	ReqShutdown
	// ReqFence is a synchronization marker: the worker answers it without
	// touching its clocks or memory ledger. Because every transport keeps
	// per-stream FIFO order, receiving a fence's reply proves every request
	// enqueued before it on that stream has been handled — the primitive
	// WorkerPool.Reset uses to quiesce workers between iterations.
	ReqFence
)

func (k RequestKind) String() string {
	switch k {
	case ReqRunCall:
		return "run"
	case ReqComm:
		return "comm"
	case ReqShutdown:
		return "shutdown"
	case ReqFence:
		return "fence"
	}
	return "unknown"
}

// Stream identifies one of a worker's execution lanes.
type Stream int

const (
	// StreamCompute runs model function calls (and, with overlap disabled,
	// everything else too).
	StreamCompute Stream = iota
	// StreamComm runs parameter-reallocation, data-transfer and offload
	// requests when Options.OverlapComm is set.
	StreamComm
	// NumStreams is the number of lanes per worker.
	NumStreams = 2
)

func (s Stream) String() string {
	switch s {
	case StreamCompute:
		return "compute"
	case StreamComm:
		return "comm"
	}
	return "stream?"
}

// StreamOf maps an augmented-graph node kind to the stream it executes on
// when overlapped execution is enabled. The estimator's overlap-aware
// simulation uses the same core.Kind.CommLike classification, keeping both
// sides of the Fig. 12 comparison on one semantics.
func StreamOf(k core.Kind) Stream {
	if k.CommLike() {
		return StreamComm
	}
	return StreamCompute
}

// Request is one master->worker message. The master pre-computes the virtual
// duration of the worker's share of the node; the worker applies its local
// stream clock, checks memory, and answers with its start and end times.
type Request struct {
	ID     int
	Kind   RequestKind
	NodeID int
	// Stream selects the worker lane the request executes on. Requests on
	// different streams overlap in virtual time; requests sharing a stream
	// serialize in arrival order.
	Stream Stream
	// Label is the augmented-graph node label (diagnostics).
	Label string
	// Handle is the local LLM handle the request addresses (e.g. "actor").
	Handle string
	// ReadyV is the virtual time at which the node's inputs are available
	// (max end time over dependency parents).
	ReadyV float64
	// DurV is the worker's virtual busy time for this node.
	DurV float64
	// AllocBytes is the transient device memory the node needs while it
	// runs (activations, KV cache, logits, reallocated parameters).
	AllocBytes int64
}

// Reply is one worker->master message.
type Reply struct {
	ID     int
	GPU    int
	StartV float64
	EndV   float64
	OOM    bool
	Error  string
}

// Transport moves requests and replies between the master and workers.
type Transport interface {
	// Send enqueues a request on the given worker's stream FIFO queue.
	Send(gpu int, req Request) error
	// Replies yields worker replies in arrival order.
	Replies() <-chan Reply
	// Close tears the transport down.
	Close() error
}
