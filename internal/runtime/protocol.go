// Package runtime implements the paper's runtime engine (§6): a centralized
// master worker that resolves the dependencies of the augmented dataflow
// graph and dispatches requests to per-GPU model workers, which execute them
// in FIFO order and reply with completion information. Requests carry no
// tensor data — data stays resident on worker GPUs and the master only
// communicates locations and timing, exactly as in the paper.
//
// Since no physical GPUs exist here (DESIGN.md §2), workers execute against
// a simulated device: each worker owns a virtual clock and a memory ledger,
// and request durations come from the gpumodel oracle. Everything else — the
// dependency engine, the dispatch protocol, the per-GPU queues, parameter
// reallocation and data-transfer scheduling — runs for real, over either
// in-process channels or TCP sockets with gob encoding.
package runtime

// RequestKind classifies master->worker requests.
type RequestKind int

const (
	// ReqRunCall executes one model function call slice on the worker.
	ReqRunCall RequestKind = iota
	// ReqComm executes the worker's share of a parameter reallocation, data
	// transfer, or offload.
	ReqComm
	// ReqShutdown stops the worker loop.
	ReqShutdown
)

func (k RequestKind) String() string {
	switch k {
	case ReqRunCall:
		return "run"
	case ReqComm:
		return "comm"
	case ReqShutdown:
		return "shutdown"
	}
	return "unknown"
}

// Request is one master->worker message. The master pre-computes the virtual
// duration of the worker's share of the node; the worker applies its local
// clock, checks memory, and answers with its end time.
type Request struct {
	ID     int
	Kind   RequestKind
	NodeID int
	// Label is the augmented-graph node label (diagnostics).
	Label string
	// Handle is the local LLM handle the request addresses (e.g. "actor").
	Handle string
	// ReadyV is the virtual time at which the node's inputs are available
	// (max end time over dependency parents).
	ReadyV float64
	// DurV is the worker's virtual busy time for this node.
	DurV float64
	// AllocBytes is the transient device memory the node needs while it
	// runs (activations, KV cache, logits, reallocated parameters).
	AllocBytes int64
}

// Reply is one worker->master message.
type Reply struct {
	ID    int
	GPU   int
	EndV  float64
	OOM   bool
	Error string
}

// Transport moves requests and replies between the master and workers.
type Transport interface {
	// Send enqueues a request on the given worker's FIFO queue.
	Send(gpu int, req Request) error
	// Replies yields worker replies in arrival order.
	Replies() <-chan Reply
	// Close tears the transport down.
	Close() error
}
