package model

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTable1ExactParamCounts reproduces the TotalParamCount and
// "ParamCount w./o. Output Embedding" columns of paper Table 1 exactly.
func TestTable1ExactParamCounts(t *testing.T) {
	cases := []struct {
		cfg          Config
		total        int64
		noOutputEmbd int64
	}{
		{LLaMA7B, 8030261248, 7504924672},
		{LLaMA13B, 14001525760, 13344855040},
		{LLaMA34B, 35321028608, 34270355456},
		{LLaMA70B, 70553706496, 69503033344},
	}
	for _, tc := range cases {
		if got := tc.cfg.Params(); got != tc.total {
			t.Errorf("%s: Params() = %d, want %d (Table 1)", tc.cfg.Name, got, tc.total)
		}
		if got := tc.cfg.ParamsNoOutputEmbedding(); got != tc.noOutputEmbd {
			t.Errorf("%s: ParamsNoOutputEmbedding() = %d, want %d (Table 1)", tc.cfg.Name, got, tc.noOutputEmbd)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"7b", "13b", "34b", "70b"} {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if cfg.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, cfg.Name)
		}
	}
	if _, err := ByName("175b"); err == nil {
		t.Error("ByName(175b) should fail")
	}
}

func TestAllOrderedBySize(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("All() returned %d configs, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Params() <= all[i-1].Params() {
			t.Errorf("All() not ascending: %s (%d) after %s (%d)",
				all[i].Name, all[i].Params(), all[i-1].Name, all[i-1].Params())
		}
	}
}

func TestHeadAndKVDims(t *testing.T) {
	if d := LLaMA7B.HeadDim(); d != 128 {
		t.Errorf("7B head dim = %d, want 128", d)
	}
	if kv := LLaMA7B.KVHiddenSize(); kv != 1024 {
		t.Errorf("7B kv hidden = %d, want 1024 (GQA 8 heads)", kv)
	}
	// 13B uses full multi-head attention (NumKVHeads == NumAttentionHeads).
	if kv := LLaMA13B.KVHiddenSize(); kv != LLaMA13B.HiddenSize {
		t.Errorf("13B kv hidden = %d, want %d (MHA)", kv, LLaMA13B.HiddenSize)
	}
}

func TestCriticParams(t *testing.T) {
	for _, cfg := range All() {
		got := cfg.CriticParams()
		want := cfg.ParamsNoOutputEmbedding() + int64(cfg.HiddenSize)
		if got != want {
			t.Errorf("%s: CriticParams() = %d, want %d", cfg.Name, got, want)
		}
		if got >= cfg.Params() {
			t.Errorf("%s: critic should be smaller than the actor", cfg.Name)
		}
	}
}

func TestFLOPsScaleLinearlyInTokens(t *testing.T) {
	cfg := LLaMA7B
	f1 := cfg.LayerFwdFLOPs(1024, 512)
	f2 := cfg.LayerFwdFLOPs(2048, 512)
	if math.Abs(f2-2*f1) > 1e-6*f2 {
		t.Errorf("layer FLOPs not linear in tokens: f(2T)=%g, 2·f(T)=%g", f2, 2*f1)
	}
}

func TestTrainFLOPsIsTripleForward(t *testing.T) {
	cfg := LLaMA34B
	fwd := cfg.FwdFLOPs(4096, 1024, true)
	train := cfg.TrainFLOPs(4096, 1024, true)
	if math.Abs(train-3*fwd) > 1e-9*train {
		t.Errorf("TrainFLOPs = %g, want 3×FwdFLOPs = %g", train, 3*fwd)
	}
}

// TestFwdFLOPsApproximates6ND sanity-checks the analytic layer FLOPs against
// the standard 2·N·T estimate for a forward pass (N = non-embedding params):
// for short spans the two should agree within ~15%.
func TestFwdFLOPsApproximates6ND(t *testing.T) {
	for _, cfg := range All() {
		tokens := int64(8192)
		got := cfg.FwdFLOPs(tokens, 128, true)
		approx := 2 * float64(cfg.ParamsNoOutputEmbedding()+cfg.EmbedParams()) * float64(tokens)
		ratio := got / approx
		if ratio < 0.85 || ratio > 1.2 {
			t.Errorf("%s: FwdFLOPs/2NT = %.3f, want within [0.85, 1.2]", cfg.Name, ratio)
		}
	}
}

// Property: parameter counts are positive, monotone in layer count, and the
// total decomposes exactly into embeddings + layers + final norm.
func TestParamDecompositionProperty(t *testing.T) {
	f := func(layers8 uint8) bool {
		layers := int(layers8%96) + 1
		cfg := LLaMA7B
		cfg.NumLayers = layers
		want := 2*cfg.EmbedParams() + int64(layers)*cfg.LayerParams() + int64(cfg.HiddenSize)
		return cfg.Params() == want && cfg.Params() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: KV bytes per token are positive and scale with KV heads.
func TestKVBytesProperty(t *testing.T) {
	f := func(kvHeads8 uint8) bool {
		kv := int(kvHeads8%32) + 1
		cfg := LLaMA7B
		cfg.NumKVHeads = kv
		return cfg.KVBytesPerTokenPerLayer() == int64(2*kv*cfg.HeadDim()*BytesPerParam)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayerFwdFLOPsSpanTerm(t *testing.T) {
	cfg := LLaMA7B
	base := cfg.LayerFwdFLOPs(1000, 0)
	withSpan := cfg.LayerFwdFLOPs(1000, 2048)
	attn := withSpan - base
	want := 4 * 1000.0 * 2048 * float64(cfg.HiddenSize)
	if math.Abs(attn-want) > 1e-6*want {
		t.Errorf("attention span FLOPs = %g, want %g", attn, want)
	}
}
