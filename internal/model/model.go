// Package model defines the LLaMA-style transformer architectures used in the
// ReaL paper (Table 1) together with exact parameter counting and analytic
// FLOP/byte arithmetic. Everything downstream — the cost oracle, the memory
// model, the profiler and the estimator — consumes these numbers rather than
// real weights: for planning purposes a model *is* its shape.
package model

import "fmt"

// BytesPerParam is the storage size of one parameter or activation element in
// the mixed-precision regime the paper assumes (bf16).
const BytesPerParam = 2

// Config describes a GPT-like (LLaMA-3) transformer. The fields mirror
// Table 1 of the paper exactly.
type Config struct {
	Name                  string
	HiddenSize            int
	IntermediateSize      int
	NumLayers             int
	NumAttentionHeads     int
	NumKVHeads            int
	VocabSize             int
	MaxPositionEmbeddings int
}

// The four model sizes evaluated in the paper (Table 1).
var (
	LLaMA7B = Config{
		Name:                  "7b",
		HiddenSize:            4096,
		IntermediateSize:      14336,
		NumLayers:             32,
		NumAttentionHeads:     32,
		NumKVHeads:            8,
		VocabSize:             128256,
		MaxPositionEmbeddings: 8192,
	}
	LLaMA13B = Config{
		Name:                  "13b",
		HiddenSize:            5120,
		IntermediateSize:      13824,
		NumLayers:             40,
		NumAttentionHeads:     40,
		NumKVHeads:            40,
		VocabSize:             128256,
		MaxPositionEmbeddings: 8192,
	}
	LLaMA34B = Config{
		Name:                  "34b",
		HiddenSize:            8192,
		IntermediateSize:      22016,
		NumLayers:             48,
		NumAttentionHeads:     64,
		NumKVHeads:            8,
		VocabSize:             128256,
		MaxPositionEmbeddings: 8192,
	}
	LLaMA70B = Config{
		Name:                  "70b",
		HiddenSize:            8192,
		IntermediateSize:      28672,
		NumLayers:             80,
		NumAttentionHeads:     64,
		NumKVHeads:            8,
		VocabSize:             128256,
		MaxPositionEmbeddings: 8192,
	}
)

// ByName returns the named paper configuration ("7b", "13b", "34b", "70b").
func ByName(name string) (Config, error) {
	switch name {
	case "7b":
		return LLaMA7B, nil
	case "13b":
		return LLaMA13B, nil
	case "34b":
		return LLaMA34B, nil
	case "70b":
		return LLaMA70B, nil
	}
	return Config{}, fmt.Errorf("model: unknown config %q", name)
}

// All returns the paper's model family in ascending size order.
func All() []Config {
	return []Config{LLaMA7B, LLaMA13B, LLaMA34B, LLaMA70B}
}

// HeadDim is the per-head dimension of the attention projections.
func (c Config) HeadDim() int { return c.HiddenSize / c.NumAttentionHeads }

// KVHiddenSize is the total width of the key (or value) projection under
// grouped-query attention.
func (c Config) KVHiddenSize() int { return c.HeadDim() * c.NumKVHeads }

// LayerParams is the exact parameter count of one transformer layer:
// fused QKV projection, attention output projection, SwiGLU MLP (gate, up,
// down), and the two RMSNorm weights.
func (c Config) LayerParams() int64 {
	h := int64(c.HiddenSize)
	i := int64(c.IntermediateSize)
	kv := int64(c.KVHiddenSize())
	qkv := h * (h + 2*kv)
	attnOut := h * h
	mlp := 3 * h * i
	norms := 2 * h
	return qkv + attnOut + mlp + norms
}

// EmbedParams is the parameter count of one (input or output) embedding.
func (c Config) EmbedParams() int64 {
	return int64(c.VocabSize) * int64(c.HiddenSize)
}

// Params is the exact total parameter count including both embeddings and the
// final RMSNorm. For the configurations in Table 1 this reproduces the
// paper's TotalParamCount column digit-for-digit.
func (c Config) Params() int64 {
	return 2*c.EmbedParams() + int64(c.NumLayers)*c.LayerParams() + int64(c.HiddenSize)
}

// ParamsNoOutputEmbedding reproduces the paper's "ParamCount w./o. Output
// Embedding" column: the total minus one embedding matrix. The paper uses it
// as the size identifier for critic/reward models, whose output head maps to
// a scalar instead of the vocabulary.
func (c Config) ParamsNoOutputEmbedding() int64 {
	return c.Params() - c.EmbedParams()
}

// CriticParams is the parameter count of the critic/reward variant: the
// output embedding is replaced by a single scalar head of width HiddenSize.
func (c Config) CriticParams() int64 {
	return c.ParamsNoOutputEmbedding() + int64(c.HiddenSize)
}

// ParamBytes returns the bf16 byte footprint of the full parameter set.
func (c Config) ParamBytes() int64 { return c.Params() * BytesPerParam }

// LayerParamBytes returns the bf16 byte footprint of one transformer layer.
func (c Config) LayerParamBytes() int64 { return c.LayerParams() * BytesPerParam }

// KVBytesPerTokenPerLayer is the KV-cache footprint of one token in one
// layer: a key and a value vector of KVHiddenSize each.
func (c Config) KVBytesPerTokenPerLayer() int64 {
	return 2 * int64(c.KVHiddenSize()) * BytesPerParam
}

// LayerFwdFLOPs returns the dense-compute FLOPs of a forward pass through a
// single transformer layer over `tokens` tokens whose average attention span
// is avgSpan (prefill over sequences of length s has avgSpan s/2; scoring a
// full sequence likewise; decoding at position p has avgSpan p).
//
// Matmul terms (multiply-accumulate counted as 2 FLOPs):
//
//	QKV projection:  2·T·h·(h+2·h_kv)
//	attention out:   2·T·h·h
//	QKᵀ and AV:      2·(2·T·span·h)
//	SwiGLU MLP:      3 matmuls of 2·T·h·i
func (c Config) LayerFwdFLOPs(tokens int64, avgSpan float64) float64 {
	h := float64(c.HiddenSize)
	i := float64(c.IntermediateSize)
	kv := float64(c.KVHiddenSize())
	t := float64(tokens)
	lin := 2*t*h*(h+2*kv) + 2*t*h*h + 6*t*h*i
	attn := 4 * t * avgSpan * h
	return lin + attn
}

// HeadFLOPs returns the FLOPs of the output head (logits) over tokens.
// Critic-style scalar heads are ~vocab× cheaper and are treated as free.
func (c Config) HeadFLOPs(tokens int64) float64 {
	return 2 * float64(tokens) * float64(c.HiddenSize) * float64(c.VocabSize)
}

// FwdFLOPs returns the FLOPs of a full forward pass (all layers plus output
// head) over tokens with the given average attention span. withHead selects
// whether the vocabulary projection is included (actors) or not (critics,
// reward models, and intermediate pipeline stages).
func (c Config) FwdFLOPs(tokens int64, avgSpan float64, withHead bool) float64 {
	f := float64(c.NumLayers) * c.LayerFwdFLOPs(tokens, avgSpan)
	if withHead {
		f += c.HeadFLOPs(tokens)
	}
	return f
}

// TrainFLOPs returns the FLOPs of one forward+backward pass: the backward
// pass costs ~2× the forward matmuls.
func (c Config) TrainFLOPs(tokens int64, avgSpan float64, withHead bool) float64 {
	return 3 * c.FwdFLOPs(tokens, avgSpan, withHead)
}

func (c Config) String() string {
	return fmt.Sprintf("llama-%s(h=%d,L=%d)", c.Name, c.HiddenSize, c.NumLayers)
}
