package core

import (
	"path/filepath"
	"strings"
	"testing"

	"realhf/internal/dfg"
	"realhf/internal/model"
)

func TestPlanSaveLoadRoundTrip(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	ms := p.Models[dfg.Ref]
	ms.OffloadWhenIdle = true
	p.Models[dfg.Ref] = ms

	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SavePlan(p, path); err != nil {
		t.Fatal(err)
	}
	g := dfg.BuildPPO(dfg.Spec{Batch: 512, PromptLen: 1024, GenLen: 1024, Iterations: 1})
	q, err := LoadPlan(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if q.Signature() != p.Signature() {
		t.Errorf("round trip changed assignments:\n%s\nvs\n%s", p.Signature(), q.Signature())
	}
	if q.Cluster.Nodes != 2 || q.Cluster.GPUsPerNode != 8 {
		t.Errorf("cluster shape lost: %+v", q.Cluster)
	}
	if !q.Models[dfg.Ref].OffloadWhenIdle {
		t.Error("offload hint lost in round trip")
	}
	// Plans carrying only the legacy model-level hint get it mapped onto
	// every call of the hinted frozen role at load time.
	if !q.RoleOffloaded(dfg.Ref) {
		t.Error("legacy OffloadWhenIdle hint not mapped onto per-call Offload at load")
	}
	if !q.Models[dfg.Actor].Trainable || q.Models[dfg.Reward].Trainable {
		t.Error("trainability lost in round trip")
	}
	if q.Models[dfg.Critic].Cfg.Name != "7b" || !q.Models[dfg.Critic].IsCritic {
		t.Error("critic model spec lost in round trip")
	}
}

func TestPlanRoundTripPerCallOffload(t *testing.T) {
	// A per-call Offload decision (no model-level hint) must survive the
	// save/load cycle and reappear on exactly the calls that carried it.
	p := ppoPlan(t, 2, 1)
	a := p.Assign["RefInf"]
	a.Offload = true
	p.Assign["RefInf"] = a

	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SavePlan(p, path); err != nil {
		t.Fatal(err)
	}
	g := dfg.BuildPPO(dfg.Spec{Batch: 512, PromptLen: 1024, GenLen: 1024, Iterations: 1})
	q, err := LoadPlan(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Assign["RefInf"].Offload {
		t.Error("per-call Offload lost in round trip")
	}
	if q.Assign["ActorGen"].Offload {
		t.Error("Offload leaked onto a call that never carried it")
	}
	if q.Fingerprint() != p.Fingerprint() {
		t.Errorf("round trip changed fingerprint:\n%s\nvs\n%s", p.Fingerprint(), q.Fingerprint())
	}
}

func TestLoadPlanRejectsOffloadedTrainable(t *testing.T) {
	// A stored plan that offloads a trainable role is invalid: optimizer
	// state pins trainable parameters on-device.
	p := ppoPlan(t, 2, 1)
	a := p.Assign["ActorTrain"]
	a.Offload = true
	p.Assign["ActorTrain"] = a
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SavePlan(p, path); err != nil {
		t.Fatal(err)
	}
	g := dfg.BuildPPO(dfg.Spec{Batch: 512, PromptLen: 1024, GenLen: 1024, Iterations: 1})
	if _, err := LoadPlan(path, g); err == nil {
		t.Error("loading a plan that offloads a trainable role must fail")
	}
}

func TestLoadPlanRejectsMismatchedGraph(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SavePlan(p, path); err != nil {
		t.Fatal(err)
	}
	// A DPO graph has different call names: validation must fail.
	g := dfg.BuildDPO(dfg.Spec{Batch: 512, PromptLen: 1024, GenLen: 1024})
	if _, err := LoadPlan(path, g); err == nil {
		t.Error("loading a PPO plan onto a DPO graph must fail")
	}
}

func TestLoadPlanRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := SavePlan(ppoPlan(t, 2, 1), bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json"), nil); err == nil {
		t.Error("missing file must fail")
	}
}

func TestMarshalIsHumanReadable(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"\"version\": 1", "ActorGen", "\"tp\"", "\"arch\": \"7b\""} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized plan missing %q", want)
		}
	}
	_ = model.LLaMA7B
}
