package core

import (
	"strings"
	"testing"

	"realhf/internal/dfg"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

func ppoPlan(t *testing.T, nodes, iters int) *Plan {
	t.Helper()
	cluster := hardware.DefaultCluster(nodes)
	g := dfg.BuildPPO(dfg.Spec{Batch: 512, PromptLen: 1024, GenLen: 1024, Iterations: iters})
	p := NewPlan(cluster, g, PPOModels(model.LLaMA7B, model.LLaMA7B))
	full := mesh.Full(cluster)
	st := parallel.Strategy{DP: cluster.NumGPUs() / 8, TP: 8, PP: 1, MicroBatches: 4}
	for _, name := range []string{"ActorGen", "RewInf", "RefInf", "CriticInf", "ActorTrain", "CriticTrain"} {
		p.Assign[name] = Assignment{Mesh: full, Strategy: st}
	}
	return p
}

func TestPlanValidateSymmetric(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	if err := p.Validate(); err != nil {
		t.Fatalf("symmetric plan invalid: %v", err)
	}
}

func TestPlanValidateMissingAssignment(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	delete(p.Assign, "RefInf")
	if err := p.Validate(); err == nil {
		t.Error("missing assignment must fail validation")
	}
}

func TestPlanValidateMeshExceedsCluster(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	big, _ := mesh.New(0, 32, 8) // 4 nodes on a 2-node cluster
	a := p.Assign["RefInf"]
	a.Mesh = big
	a.Strategy = parallel.Strategy{DP: 4, TP: 8, PP: 1, MicroBatches: 1}
	p.Assign["RefInf"] = a
	if err := p.Validate(); err == nil {
		t.Error("mesh beyond cluster must fail validation")
	}
}

func TestPlanValidateStrategyMismatch(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	a := p.Assign["RefInf"]
	a.Strategy = parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 1} // 8 ranks on 16 GPUs
	p.Assign["RefInf"] = a
	if err := p.Validate(); err == nil {
		t.Error("strategy not filling mesh must fail validation")
	}
}

func TestHomeOfTrainable(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	small, _ := mesh.New(0, 8, 8)
	p.Assign["ActorTrain"] = Assignment{Mesh: small, Strategy: parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 2}}
	home, ok := p.HomeOf(dfg.Actor)
	if !ok || !home.Mesh.Equal(small) {
		t.Errorf("actor home = %v, want train mesh", home)
	}
	// Frozen models are homed at their (only) inference call.
	refHome, ok := p.HomeOf(dfg.Ref)
	if !ok || !refHome.Mesh.Equal(mesh.Full(p.Cluster)) {
		t.Errorf("ref home = %v, want its inference mesh", refHome)
	}
}

func TestSymmetricPlanHasNoTransferNodes(t *testing.T) {
	p := ppoPlan(t, 2, 2)
	g, err := p.BuildAugGraph()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if n.Kind != KindCall {
			t.Errorf("symmetric plan produced %v node %q", n.Kind, n.Label)
		}
	}
	if len(g.Nodes) != 12 {
		t.Errorf("2 PPO iterations = %d call nodes, want 12", len(g.Nodes))
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestAsymmetricPlanInsertsRealloc(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	genMesh, _ := mesh.New(0, 8, 8)
	p.Assign["ActorGen"] = Assignment{
		Mesh:     genMesh,
		Strategy: parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1},
	}
	g, err := p.BuildAugGraph()
	if err != nil {
		t.Fatal(err)
	}
	var reallocs, xfers int
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindParamRealloc:
			reallocs++
			if n.Role != dfg.Actor {
				t.Errorf("realloc for role %q, want actor", n.Role)
			}
			if n.Bytes != model.LLaMA7B.Params()*2 {
				t.Errorf("realloc payload %d, want full bf16 params", n.Bytes)
			}
			if len(n.Meshes) != 2 {
				t.Error("realloc must occupy source and destination meshes")
			}
		case KindDataTransfer:
			xfers++
		}
	}
	if reallocs != 1 {
		t.Errorf("%d realloc nodes, want 1 (ActorGen differs from actor home)", reallocs)
	}
	// ActorGen's outputs cross to the three inference calls on the full mesh.
	if xfers != 3 {
		t.Errorf("%d data transfer nodes, want 3", xfers)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReallocGatedByVersionParent(t *testing.T) {
	p := ppoPlan(t, 2, 2)
	genMesh, _ := mesh.New(0, 8, 8)
	p.Assign["ActorGen"] = Assignment{
		Mesh:     genMesh,
		Strategy: parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1},
	}
	g, err := p.BuildAugGraph()
	if err != nil {
		t.Fatal(err)
	}
	// The iteration-1 realloc must wait for iteration-0 ActorTrain.
	for _, n := range g.Nodes {
		if n.Kind != KindParamRealloc || !strings.Contains(n.Label, "@1") {
			continue
		}
		found := false
		for _, pid := range n.Parents {
			par := g.Nodes[pid]
			if par.Kind == KindCall && par.Call.Name == "ActorTrain" && par.Call.Iter == 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("realloc %q lacks version parent ActorTrain@0", n.Label)
		}
	}
}

func TestOffloadNodes(t *testing.T) {
	// Offload is a per-call plan decision; the model-level OffloadWhenIdle
	// flag is only a warm-start hint that ApplyOffloadHints folds onto the
	// assignments. Exercise exactly that path.
	p := ppoPlan(t, 2, 1)
	ms := p.Models[dfg.Ref]
	ms.OffloadWhenIdle = true
	p.Models[dfg.Ref] = ms
	if !p.HasOffloadHints() {
		t.Fatal("hinted frozen role not reported by HasOffloadHints")
	}
	p.ApplyOffloadHints()
	if !p.RoleOffloaded(dfg.Ref) {
		t.Fatal("ApplyOffloadHints did not offload every Ref call")
	}
	g, err := p.BuildAugGraph()
	if err != nil {
		t.Fatal(err)
	}
	offloads := 0
	for _, n := range g.Nodes {
		if n.Kind == KindOffload {
			offloads++
			if n.Role != dfg.Ref {
				t.Errorf("offload role = %q", n.Role)
			}
			if n.Bytes <= 0 {
				t.Error("offload payload must be positive")
			}
		}
	}
	if offloads != 1 {
		t.Errorf("%d offload nodes, want 1", offloads)
	}
}

func TestCloneIsolation(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	q := p.Clone()
	a := q.Assign["ActorGen"]
	a.Strategy.TP = 1
	a.Strategy.DP = 16
	q.Assign["ActorGen"] = a
	if p.Assign["ActorGen"].Strategy.TP != 8 {
		t.Error("mutating clone leaked into original")
	}
	if p.Signature() == q.Signature() {
		t.Error("different assignments must yield different signatures")
	}
}

func TestOverlapSemantics(t *testing.T) {
	m1, _ := mesh.New(0, 8, 8)
	m2, _ := mesh.New(8, 8, 8)
	a := &AugNode{Meshes: []mesh.Mesh{m1}}
	b := &AugNode{Meshes: []mesh.Mesh{m2}}
	c := &AugNode{Meshes: []mesh.Mesh{m1, m2}}
	if a.Overlaps(b) {
		t.Error("disjoint meshes must not overlap")
	}
	if !a.Overlaps(c) || !b.Overlaps(c) {
		t.Error("transfer node spanning both meshes must overlap each")
	}
	if !a.OccupiesGPU(3) || a.OccupiesGPU(9) {
		t.Error("OccupiesGPU wrong")
	}
}

func TestTableRendering(t *testing.T) {
	p := ppoPlan(t, 2, 1)
	out := p.Table(map[string]float64{"ActorGen": 16.3})
	if !strings.Contains(out, "ActorGen") || !strings.Contains(out, "16.3s") {
		t.Errorf("Table output missing rows:\n%s", out)
	}
	if !strings.Contains(out, "trainer[01-02]") {
		t.Errorf("Table output missing mesh names:\n%s", out)
	}
}

func TestModelsFor(t *testing.T) {
	g := dfg.BuildGRPO(dfg.Spec{Batch: 64, PromptLen: 128, GenLen: 128})
	ms := ModelsFor(g, model.LLaMA7B, model.LLaMA7B)
	if _, ok := ms[dfg.Critic]; ok {
		t.Error("GRPO cast must not include a critic")
	}
	for _, r := range []dfg.Role{dfg.Actor, dfg.Ref, dfg.Reward} {
		if _, ok := ms[r]; !ok {
			t.Errorf("GRPO cast missing %q", r)
		}
	}
}

func TestFingerprintCanonical(t *testing.T) {
	a := ppoPlan(t, 2, 1)
	b := ppoPlan(t, 2, 1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical plans must share a fingerprint")
	}
	b.Assign["ActorGen"] = Assignment{
		Mesh:     b.Assign["ActorGen"].Mesh,
		Strategy: parallel.Strategy{DP: 4, TP: 4, PP: 1, MicroBatches: 2},
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("differing assignments must change the fingerprint")
	}
}

func TestFingerprintDistinguishesZeRO3(t *testing.T) {
	// Signature historically dropped the ZeRO3 flag; the fingerprint used as
	// the cost-cache key must not conflate a ZeRO-3 layout with plain DP.
	a := ppoPlan(t, 2, 1)
	b := a.Clone()
	st := a.Assign["ActorTrain"].Strategy
	st.ZeRO3 = true
	st.TP, st.PP = 1, 1
	st.DP = a.Assign["ActorTrain"].Mesh.NumGPUs()
	plain := st
	plain.ZeRO3 = false
	a.Assign["ActorTrain"] = Assignment{Mesh: a.Assign["ActorTrain"].Mesh, Strategy: plain}
	b.Assign["ActorTrain"] = Assignment{Mesh: b.Assign["ActorTrain"].Mesh, Strategy: st}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("ZeRO3 flag must be part of the fingerprint")
	}
}

func TestFingerprintUnassignedCalls(t *testing.T) {
	a := ppoPlan(t, 2, 1)
	b := a.Clone()
	delete(b.Assign, "ActorGen")
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("an unassigned call must not collide with an assigned one")
	}
	if av, bv := a.Assign["RefInf"].Fingerprint(), b.Assign["RefInf"].Fingerprint(); av != bv {
		t.Fatalf("assignment fingerprints diverged: %s vs %s", av, bv)
	}
}
