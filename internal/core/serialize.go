package core

import (
	"encoding/json"
	"fmt"
	"os"

	"realhf/internal/dfg"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

// planJSON is the on-disk representation of an execution plan. It carries
// the cluster shape, the model cast, and the per-call assignments — enough
// to rebuild the plan against a freshly constructed dataflow graph.
type planJSON struct {
	Version     int                       `json:"version"`
	Nodes       int                       `json:"nodes"`
	GPUsPerNode int                       `json:"gpus_per_node"`
	Algo        string                    `json:"algo"`
	Models      []modelJSON               `json:"models"`
	Assignments map[string]assignmentJSON `json:"assignments"`
}

type modelJSON struct {
	Role      string `json:"role"`
	Arch      string `json:"arch"`
	IsCritic  bool   `json:"is_critic,omitempty"`
	Trainable bool   `json:"trainable,omitempty"`
	Offload   bool   `json:"offload_when_idle,omitempty"`
}

type assignmentJSON struct {
	MeshFirst    int  `json:"mesh_first"`
	MeshCount    int  `json:"mesh_count"`
	DP           int  `json:"dp"`
	TP           int  `json:"tp"`
	PP           int  `json:"pp"`
	MicroBatches int  `json:"micro_batches"`
	ZeRO3        bool `json:"zero3,omitempty"`
	Offload      bool `json:"offload,omitempty"`
}

// MarshalJSON encodes the plan for storage; the dataflow graph itself is not
// serialized (it is reconstructed from the experiment configuration).
func (p *Plan) MarshalJSON() ([]byte, error) {
	out := planJSON{
		Version:     1,
		Nodes:       p.Cluster.Nodes,
		GPUsPerNode: p.Cluster.GPUsPerNode,
		Algo:        p.Graph.Algo,
		Assignments: map[string]assignmentJSON{},
	}
	for _, role := range p.Graph.Roles() {
		ms := p.Models[role]
		out.Models = append(out.Models, modelJSON{
			Role: string(role), Arch: ms.Cfg.Name, IsCritic: ms.IsCritic,
			Trainable: ms.Trainable, Offload: ms.OffloadWhenIdle,
		})
	}
	for name, a := range p.Assign {
		out.Assignments[name] = assignmentJSON{
			MeshFirst: a.Mesh.First, MeshCount: a.Mesh.Count,
			DP: a.Strategy.DP, TP: a.Strategy.TP, PP: a.Strategy.PP,
			MicroBatches: a.Strategy.MicroBatches, ZeRO3: a.Strategy.ZeRO3,
			Offload: a.Offload,
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// SavePlan writes the plan to a file.
func SavePlan(p *Plan, path string) error {
	data, err := p.MarshalJSON()
	if err != nil {
		return fmt.Errorf("core: marshal plan: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadPlan reads a serialized plan and attaches it to the given dataflow
// graph, validating the result. The graph's call names must match the
// stored assignments.
func LoadPlan(path string, g *dfg.Graph) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read plan: %w", err)
	}
	return UnmarshalPlan(data, g)
}

// UnmarshalPlan decodes a plan serialized by Plan.MarshalJSON (the SavePlan
// format) and attaches it to the given dataflow graph — the in-memory twin
// of LoadPlan, used by callers that carry plans over the wire instead of
// the filesystem.
func UnmarshalPlan(data []byte, g *dfg.Graph) (*Plan, error) {
	var in planJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: parse plan: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("core: unsupported plan version %d", in.Version)
	}
	cluster := hardware.DefaultCluster(in.Nodes)
	if in.GPUsPerNode > 0 {
		cluster.GPUsPerNode = in.GPUsPerNode
	}
	models := map[dfg.Role]ModelSpec{}
	for _, mj := range in.Models {
		cfg, err := model.ByName(mj.Arch)
		if err != nil {
			return nil, fmt.Errorf("core: plan references %w", err)
		}
		models[dfg.Role(mj.Role)] = ModelSpec{
			Role: dfg.Role(mj.Role), Cfg: cfg, IsCritic: mj.IsCritic,
			Trainable: mj.Trainable, OffloadWhenIdle: mj.Offload,
		}
	}
	p := NewPlan(cluster, g, models)
	roleOf := map[string]dfg.Role{}
	for _, n := range g.Nodes {
		roleOf[n.Name] = n.Role
	}
	for name, aj := range in.Assignments {
		role, known := roleOf[name]
		if !known {
			return nil, fmt.Errorf("core: stored plan assigns call %q, which the graph does not contain", name)
		}
		// Plans written before Offload was a per-call decision carried only
		// the model-level OffloadWhenIdle flag; map it onto every call of the
		// hinted frozen role so old plan files keep their offload semantics.
		ms := models[role]
		offload := aj.Offload || (ms.OffloadWhenIdle && !ms.Trainable)
		p.Assign[name] = Assignment{
			Mesh: mesh.Mesh{First: aj.MeshFirst, Count: aj.MeshCount, M: cluster.GPUsPerNode},
			Strategy: parallel.Strategy{
				DP: aj.DP, TP: aj.TP, PP: aj.PP,
				MicroBatches: aj.MicroBatches, ZeRO3: aj.ZeRO3,
			},
			Offload: offload,
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: loaded plan invalid: %w", err)
	}
	return p, nil
}
