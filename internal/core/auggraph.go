package core

import (
	"fmt"

	"realhf/internal/dfg"
	"realhf/internal/memory"
	"realhf/internal/mesh"
)

// Kind classifies augmented-graph nodes (paper Fig. 5: model function call
// nodes plus the rounded-square transfer nodes).
type Kind int

const (
	// KindCall is a model function call.
	KindCall Kind = iota
	// KindParamRealloc redistributes a model's parameters from its home
	// layout to the layout of an upcoming call.
	KindParamRealloc
	// KindDataTransfer moves intermediate data (sequences, log-probs,
	// rewards) between the meshes of dependent calls.
	KindDataTransfer
	// KindOffload reloads parameters parked in host memory onto the call's
	// mesh over PCIe.
	KindOffload
)

func (k Kind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindParamRealloc:
		return "realloc"
	case KindDataTransfer:
		return "xfer"
	case KindOffload:
		return "offload"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// CommLike reports whether the node kind is a communication node of the
// augmented graph (parameter reallocation, data transfer, offload) rather
// than a model function call. The runtime engine and the estimator share
// this classification: with overlapped execution enabled, comm-like nodes
// run on a device's communication stream, concurrent with the compute
// stream.
func (k Kind) CommLike() bool { return k != KindCall }

// AugNode is one node of the augmented dataflow graph Gp. Transfer-style
// nodes occupy both endpoint meshes; call nodes occupy exactly their
// assignment's mesh.
type AugNode struct {
	ID    int
	Kind  Kind
	Label string
	// Call is set for KindCall.
	Call *dfg.Node
	// Role owning the payload for realloc/offload nodes.
	Role dfg.Role
	// Meshes are the device meshes this node occupies while executing.
	Meshes []mesh.Mesh
	// Bytes is the payload size for transfer-style nodes.
	Bytes int64
	// Src and Dst are the endpoint assignments of transfer-style nodes.
	Src, Dst Assignment

	Parents  []int
	Children []int
}

// OccupiesGPU reports whether the node uses the given global GPU index.
func (n *AugNode) OccupiesGPU(g int) bool {
	for _, m := range n.Meshes {
		if m.Contains(g) {
			return true
		}
	}
	return false
}

// Overlaps reports whether two nodes contend for any device.
func (n *AugNode) Overlaps(o *AugNode) bool {
	for _, a := range n.Meshes {
		for _, b := range o.Meshes {
			if a.Overlaps(b) {
				return true
			}
		}
	}
	return false
}

// AugGraph is Gp: the plan's calls plus induced communication nodes.
type AugGraph struct {
	Plan  *Plan
	Nodes []*AugNode
}

func (g *AugGraph) addNode(n *AugNode) *AugNode {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n
}

func (g *AugGraph) addEdge(parent, child *AugNode) {
	parent.Children = append(parent.Children, child.ID)
	child.Parents = append(child.Parents, parent.ID)
}

// CallNode returns the augmented node wrapping the given dfg node.
func (g *AugGraph) CallNode(d *dfg.Node) *AugNode {
	for _, n := range g.Nodes {
		if n.Kind == KindCall && n.Call == d {
			return n
		}
	}
	return nil
}

// DataBytesPerToken approximates the per-token payload moved between calls:
// token ids, log-probs, rewards/values — a few scalars per position. The
// paper observes this traffic is negligible next to parameter reallocation,
// which our cost model reproduces. Exported so the estimator's incremental
// session can rebuild transfer nodes with byte-identical payload sizes.
const DataBytesPerToken = 8

// BuildAugGraph expands the plan into its augmented dataflow graph:
//
//   - every dfg node becomes a call node on its assigned mesh;
//   - a KindParamRealloc node precedes any call whose assignment differs
//     from the role's home (the bf16 weights are broadcast from the home
//     layout to the call layout, Fig. 6), gated by the call's same-role
//     parameter-version parents;
//   - a KindOffload node precedes any call whose assignment sources its
//     parameters from host memory (Assignment.Offload);
//   - a KindDataTransfer node replaces each data edge whose endpoints have
//     different assignments.
func (p *Plan) BuildAugGraph() (*AugGraph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &AugGraph{Plan: p}
	order, err := p.Graph.TopoSort()
	if err != nil {
		return nil, err
	}

	callNodes := make(map[int]*AugNode, len(order))
	for _, d := range order {
		a := p.Assign[d.Name]
		callNodes[d.ID] = g.addNode(&AugNode{
			Kind:  KindCall,
			Label: fmt.Sprintf("%s@%d", d.Name, d.Iter),
			Call:  d,
			Role:  d.Role,
			Meshes: []mesh.Mesh{
				a.Mesh,
			},
		})
	}

	for _, d := range order {
		cn := callNodes[d.ID]
		a := p.Assign[d.Name]
		ms := p.Models[d.Role]
		home, _ := p.HomeOf(d.Role)

		// Parameter-version parents: same-role calls feeding this one.
		var versionParents []*AugNode
		for _, par := range p.Graph.Parents(d) {
			if par.Role == d.Role {
				versionParents = append(versionParents, callNodes[par.ID])
			}
		}

		switch {
		case a.Offload && !ms.Trainable:
			// Reload weights from host memory onto the call mesh.
			off := g.addNode(&AugNode{
				Kind:   KindOffload,
				Label:  fmt.Sprintf("offload:%s@%d", d.Name, d.Iter),
				Role:   d.Role,
				Meshes: []mesh.Mesh{a.Mesh},
				Bytes:  memory.ParamShardBytes(ms.Params(), a.Strategy) * int64(a.Mesh.NumGPUs()),
				Dst:    a,
			})
			for _, vp := range versionParents {
				g.addEdge(vp, off)
			}
			g.addEdge(off, cn)
		case !a.Equal(home):
			// Reallocate parameters home layout -> call layout.
			re := g.addNode(&AugNode{
				Kind:   KindParamRealloc,
				Label:  fmt.Sprintf("realloc:%s@%d", d.Name, d.Iter),
				Role:   d.Role,
				Meshes: []mesh.Mesh{home.Mesh, a.Mesh},
				Bytes:  ms.Params() * 2,
				Src:    home,
				Dst:    a,
			})
			for _, vp := range versionParents {
				g.addEdge(vp, re)
			}
			g.addEdge(re, cn)
		}

		// Data edges from parents.
		for _, par := range p.Graph.Parents(d) {
			pn := callNodes[par.ID]
			pa := p.Assign[par.Name]
			if par.Role == d.Role && par.Type == dfg.Train {
				// Pure version dependency: the realloc/offload node (or the
				// call itself) already waits on it.
				g.addEdge(pn, cn)
				continue
			}
			if pa.Equal(a) {
				g.addEdge(pn, cn)
				continue
			}
			xfer := g.addNode(&AugNode{
				Kind:   KindDataTransfer,
				Label:  fmt.Sprintf("xfer:%s->%s@%d", par.Name, d.Name, d.Iter),
				Meshes: []mesh.Mesh{pa.Mesh, a.Mesh},
				Bytes:  par.Work.TotalTokens() * DataBytesPerToken,
				Src:    pa,
				Dst:    a,
			})
			g.addEdge(pn, xfer)
			g.addEdge(xfer, cn)
		}
	}
	return g, nil
}

// Sources returns augmented nodes with no parents.
func (g *AugGraph) Sources() []*AugNode {
	var out []*AugNode
	for _, n := range g.Nodes {
		if len(n.Parents) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks the augmented graph is a DAG.
func (g *AugGraph) Validate() error {
	indeg := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		indeg[n.ID] = len(n.Parents)
	}
	var queue []int
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, c := range g.Nodes[id].Children {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if seen != len(g.Nodes) {
		return fmt.Errorf("core: augmented graph has a cycle")
	}
	return nil
}
