// Package core implements the paper's central abstraction: the execution
// plan (§4). A plan assigns every model function call of an RLHF dataflow
// graph a device mesh D_i and a parallelization strategy S_i, and expands
// into an augmented dataflow graph Gp whose extra nodes are the parameter
// reallocations, data transfers and offload operations the assignment
// implies (Fig. 5).
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"realhf/internal/dfg"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

// Assignment binds a model function call to a device mesh and a strategy,
// plus the per-call host-offload decision: whether the role's parameters are
// parked in host memory between calls and reloaded over PCIe for this one.
type Assignment struct {
	Mesh     mesh.Mesh
	Strategy parallel.Strategy
	// Offload sources this call's parameters from host memory instead of
	// device-resident weights: a KindOffload reload node precedes the call,
	// and the role's resting bf16 copy leaves the static ledger. It is a
	// searched plan dimension (ROADMAP "offload-aware planning"), only legal
	// on frozen roles — trainable roles keep optimizer state on-device.
	Offload bool
}

// Equal reports whether two assignments place the call identically: same
// mesh and same strategy. Offload is deliberately excluded — it decides how
// the parameters reach the mesh (host reload vs device-resident), not where
// the call runs, so it must not fabricate realloc or data-transfer nodes
// between calls that share a layout.
func (a Assignment) Equal(b Assignment) bool {
	return a.Mesh.Equal(b.Mesh) && a.Strategy == b.Strategy
}

func (a Assignment) String() string {
	s := fmt.Sprintf("%s %s", a.Mesh, a.Strategy)
	if a.Offload {
		s += " offload"
	}
	return s
}

// ModelSpec describes one of the plan's LLMs.
type ModelSpec struct {
	Role dfg.Role
	Cfg  model.Config
	// IsCritic marks scalar-head models (critic, reward).
	IsCritic bool
	// Trainable models keep gradients and optimizer state at their home.
	Trainable bool
	// OffloadWhenIdle is a warm-start hint: seed the search with this frozen
	// role's calls offloaded to host memory. The decision itself lives on the
	// plan (Assignment.Offload); the hint only shapes initial candidates and
	// is rejected on trainable roles at validation time.
	OffloadWhenIdle bool
}

// Params is the model's parameter count, respecting the head variant.
func (ms ModelSpec) Params() int64 {
	if ms.IsCritic {
		return ms.Cfg.CriticParams()
	}
	return ms.Cfg.Params()
}

// PPOModels builds the standard four-model RLHF cast: a trainable actor and
// critic plus frozen reference and reward models (critic-sized).
func PPOModels(actor, critic model.Config) map[dfg.Role]ModelSpec {
	return map[dfg.Role]ModelSpec{
		dfg.Actor:  {Role: dfg.Actor, Cfg: actor, Trainable: true},
		dfg.Critic: {Role: dfg.Critic, Cfg: critic, IsCritic: true, Trainable: true},
		dfg.Ref:    {Role: dfg.Ref, Cfg: actor},
		dfg.Reward: {Role: dfg.Reward, Cfg: critic, IsCritic: true},
	}
}

// ModelsFor builds the model cast needed by the given algorithm's graph.
func ModelsFor(g *dfg.Graph, actor, critic model.Config) map[dfg.Role]ModelSpec {
	all := PPOModels(actor, critic)
	out := map[dfg.Role]ModelSpec{}
	for _, r := range g.Roles() {
		ms, ok := all[r]
		if !ok {
			ms = ModelSpec{Role: r, Cfg: actor}
		}
		out[r] = ms
	}
	return out
}

// Plan is an execution plan p: per-call assignments over a cluster for a
// dataflow graph. Assignments are keyed by call name; the same call repeats
// with the same assignment every iteration, as in the paper's plans
// (Tables 2–5).
type Plan struct {
	// Cluster and Models are problem inputs, not solver decisions: the
	// fingerprint covers them indirectly through the problem key that the
	// cache composes with it, so the plan fingerprint itself hashes only
	// the graph shape and the assignments.
	//lint:realvet fieldcover -- problem input; covered by the cache's problem key, not the plan fingerprint
	Cluster hardware.Cluster
	Graph   *dfg.Graph
	//lint:realvet fieldcover -- problem input; covered by the cache's problem key, not the plan fingerprint
	Models map[dfg.Role]ModelSpec
	Assign map[string]Assignment
}

// NewPlan allocates an empty plan for the graph.
func NewPlan(cluster hardware.Cluster, g *dfg.Graph, models map[dfg.Role]ModelSpec) *Plan {
	return &Plan{Cluster: cluster, Graph: g, Models: models, Assign: map[string]Assignment{}}
}

// Clone deep-copies the plan (graph and models are shared, assignments are
// copied) — the search engine mutates clones.
func (p *Plan) Clone() *Plan {
	a := make(map[string]Assignment, len(p.Assign))
	for k, v := range p.Assign {
		a[k] = v
	}
	return &Plan{Cluster: p.Cluster, Graph: p.Graph, Models: p.Models, Assign: a}
}

// CallNames returns the distinct call names of the graph in first-appearance
// order.
func (p *Plan) CallNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range p.Graph.Nodes {
		if !seen[n.Name] {
			seen[n.Name] = true
			out = append(out, n.Name)
		}
	}
	return out
}

// AssignmentOf returns the assignment of a call node.
func (p *Plan) AssignmentOf(n *dfg.Node) (Assignment, bool) {
	a, ok := p.Assign[n.Name]
	return a, ok
}

// Validate checks that every call is assigned a legal mesh and a strategy
// valid for its model and workload.
func (p *Plan) Validate() error {
	if err := p.Cluster.Validate(); err != nil {
		return err
	}
	for _, n := range p.Graph.Nodes {
		a, ok := p.Assign[n.Name]
		if !ok {
			return fmt.Errorf("core: call %q has no assignment", n.Name)
		}
		if err := a.Mesh.Validate(); err != nil {
			return fmt.Errorf("core: call %q: %w", n.Name, err)
		}
		if a.Mesh.First+a.Mesh.Count > p.Cluster.NumGPUs() {
			return fmt.Errorf("core: call %q mesh %v exceeds cluster of %d GPUs", n.Name, a.Mesh, p.Cluster.NumGPUs())
		}
		if a.Mesh.M != p.Cluster.GPUsPerNode {
			return fmt.Errorf("core: call %q mesh node size %d != cluster %d", n.Name, a.Mesh.M, p.Cluster.GPUsPerNode)
		}
		ms, ok := p.Models[n.Role]
		if !ok {
			return fmt.Errorf("core: no model spec for role %q", n.Role)
		}
		if ms.Trainable && ms.OffloadWhenIdle {
			return fmt.Errorf("core: role %q is trainable but hints OffloadWhenIdle: optimizer state pins trainable parameters on-device", n.Role)
		}
		if a.Offload && ms.Trainable {
			return fmt.Errorf("core: call %q offloads trainable role %q: optimizer state pins trainable parameters on-device", n.Name, n.Role)
		}
		batch := n.Work.Batch
		if n.Type == dfg.Train && n.Work.MiniBatches > 1 {
			batch /= n.Work.MiniBatches
		}
		if err := a.Strategy.Validate(a.Mesh, ms.Cfg, batch); err != nil {
			return fmt.Errorf("core: call %q: %w", n.Name, err)
		}
	}
	return nil
}

// HomeOf returns the assignment where a role's parameters (and, for
// trainable roles, gradients and optimizer states) rest: the role's training
// call if it has one, otherwise its first call.
func (p *Plan) HomeOf(role dfg.Role) (Assignment, bool) {
	var first Assignment
	found := false
	for _, n := range p.Graph.Nodes {
		if n.Role != role {
			continue
		}
		a, ok := p.Assign[n.Name]
		if !ok {
			continue
		}
		if n.Type == dfg.Train {
			return a, true
		}
		if !found {
			first, found = a, true
		}
	}
	return first, found
}

// RoleOffloaded reports whether the role's parameters rest in host memory
// under this plan: every one of its assigned calls sources parameters
// through a host reload (Assignment.Offload). A partially offloaded role
// still needs its device-resident copy between the non-offloaded calls, so
// only the all-calls case releases the static ledger.
func (p *Plan) RoleOffloaded(role dfg.Role) bool {
	found := false
	for _, n := range p.Graph.Nodes {
		if n.Role != role {
			continue
		}
		a, ok := p.Assign[n.Name]
		if !ok || !a.Offload {
			return false
		}
		found = true
	}
	return found
}

// HasOffloadHints reports whether any frozen role carries the
// OffloadWhenIdle warm-start hint — the search seeds such problems with the
// hinted calls offloaded.
func (p *Plan) HasOffloadHints() bool {
	for _, ms := range p.Models {
		if ms.OffloadWhenIdle && !ms.Trainable {
			return true
		}
	}
	return false
}

// ApplyOffloadHints sets Assignment.Offload on every assigned call of every
// hinted frozen role, in place — how a legacy OffloadWhenIdle input becomes
// a warm-start plan state.
func (p *Plan) ApplyOffloadHints() {
	for _, n := range p.Graph.Nodes {
		ms := p.Models[n.Role]
		if !ms.OffloadWhenIdle || ms.Trainable {
			continue
		}
		if a, ok := p.Assign[n.Name]; ok && !a.Offload {
			a.Offload = true
			p.Assign[n.Name] = a
		}
	}
}

// Signature returns a canonical string identifying the plan's assignments,
// used by the search engine to deduplicate visited states.
func (p *Plan) Signature() string {
	names := p.CallNames()
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		a := p.Assign[name]
		fmt.Fprintf(&b, "%s:%d+%d:%d/%d/%d/%d;", name,
			a.Mesh.First, a.Mesh.Count,
			a.Strategy.DP, a.Strategy.TP, a.Strategy.PP, a.Strategy.MicroBatches)
	}
	return b.String()
}

// appendFingerprint appends the assignment's canonical encoding: mesh
// extent plus every strategy field, including ZeRO3 (which Signature
// historically omitted — two baseline seeds differing only in ZeRO3 must
// not collide in a memoization map).
func (a Assignment) appendFingerprint(b []byte) []byte {
	b = strconv.AppendInt(b, int64(a.Mesh.First), 10)
	b = append(b, '+')
	b = strconv.AppendInt(b, int64(a.Mesh.Count), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(a.Strategy.DP), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(a.Strategy.TP), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(a.Strategy.PP), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(a.Strategy.MicroBatches), 10)
	if a.Strategy.ZeRO3 {
		b = append(b, 'z')
	}
	if a.Offload {
		b = append(b, 'o')
	}
	return b
}

// AppendFingerprint appends the assignment's canonical encoding to b and
// returns the extended slice — the allocation-free form of Fingerprint for
// callers that assemble composite cache keys in reusable buffers.
func (a Assignment) AppendFingerprint(b []byte) []byte {
	return a.appendFingerprint(b)
}

// Fingerprint returns a compact canonical key identifying the assignment,
// for memoization maps keyed by (call, mesh, strategy).
func (a Assignment) Fingerprint() string {
	return string(a.appendFingerprint(make([]byte, 0, 24)))
}

// Fingerprint returns a canonical key identifying the plan's assignments.
// Two plans over the same problem (cluster, graph, models) have equal
// fingerprints iff every call carries an identical assignment, so the key
// is safe for cost-cache lookups shared across concurrent search chains.
// Unassigned calls are encoded explicitly and so never collide with
// assigned ones.
func (p *Plan) Fingerprint() string {
	names := p.CallNames()
	sort.Strings(names)
	b := make([]byte, 0, 32*len(names))
	for _, name := range names {
		b = append(b, name...)
		b = append(b, '=')
		if a, ok := p.Assign[name]; ok {
			b = a.appendFingerprint(b)
		} else {
			b = append(b, '!')
		}
		b = append(b, ';')
	}
	return string(b)
}

// Table renders the plan in the format of paper Tables 2–5. Durations (if
// provided, keyed by call name, in seconds) fill the Time column.
func (p *Plan) Table(times map[string]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-16s %4s %4s %4s %8s %10s\n",
		"Call", "DeviceMesh", "TP", "PP", "DP", "#Micro", "Time")
	for _, name := range p.CallNames() {
		a := p.Assign[name]
		timeStr := "-"
		if times != nil {
			if t, ok := times[name]; ok {
				timeStr = fmt.Sprintf("%.1fs", t)
			}
		}
		fmt.Fprintf(&b, "%-12s %-16s %4d %4d %4d %8d %10s\n",
			name, a.Mesh, a.Strategy.TP, a.Strategy.PP, a.Strategy.DP,
			a.Strategy.MicroBatches, timeStr)
	}
	return b.String()
}
