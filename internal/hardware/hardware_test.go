package hardware

import "testing"

func TestDefaultClusterShape(t *testing.T) {
	c := DefaultCluster(16)
	if got := c.NumGPUs(); got != 128 {
		t.Errorf("NumGPUs = %d, want 128", got)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default cluster invalid: %v", err)
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	cases := []Cluster{
		{Nodes: 0, GPUsPerNode: 8, GPU: DefaultH100(), Net: DefaultInterconnect()},
		{Nodes: 2, GPUsPerNode: 0, GPU: DefaultH100(), Net: DefaultInterconnect()},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
	bad := DefaultCluster(2)
	bad.GPU.PeakFLOPs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero peak FLOPs should fail validation")
	}
	bad2 := DefaultCluster(2)
	bad2.Net.InterNodeBandwidth = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero fabric bandwidth should fail validation")
	}
}

func TestBandwidthHierarchy(t *testing.T) {
	c := DefaultCluster(4)
	if c.Bandwidth(false) <= c.Bandwidth(true) {
		t.Error("intra-node bandwidth should exceed inter-node bandwidth")
	}
	if c.Latency(false) >= c.Latency(true) {
		t.Error("intra-node latency should be below inter-node latency")
	}
}

func TestCUDAGraphReducesLaunchCost(t *testing.T) {
	g := DefaultH100()
	if g.CUDAGraphLaunchFactor >= 1 || g.CUDAGraphLaunchFactor <= 0 {
		t.Errorf("CUDAGraphLaunchFactor = %v, want in (0,1)", g.CUDAGraphLaunchFactor)
	}
}

func TestH100Memory(t *testing.T) {
	if got := DefaultH100().MemoryBytes; got != 80<<30 {
		t.Errorf("H100 memory = %d, want 80 GiB", got)
	}
}
