// Package hardware models the GPU cluster of the paper's testbed: H100
// devices connected by NVLink inside a node and a 3.2 Tbps RoCE fabric
// between nodes. The paper measures this hardware; we parameterize it.
// Every constant lives here so the whole reproduction can be re-calibrated
// from one place.
package hardware

import "fmt"

// GPU describes a single accelerator.
type GPU struct {
	Name string
	// MemoryBytes is the device HBM capacity (mem_d in the paper's cost
	// function).
	MemoryBytes int64
	// PeakFLOPs is the dense bf16 peak in FLOP/s.
	PeakFLOPs float64
	// HBMBandwidth is the device memory bandwidth in bytes/s. Decoding is
	// bound by this number.
	HBMBandwidth float64
	// KernelLaunchOverhead is the fixed host-side cost of one kernel
	// invocation in seconds. Auto-regressive decoding launches thousands of
	// tiny kernels, making this term significant (paper Fig. 10).
	KernelLaunchOverhead float64
	// CUDAGraphLaunchFactor scales KernelLaunchOverhead when decode kernels
	// are captured into a CUDA graph (Table 6 "with CUDAGraph" rows).
	CUDAGraphLaunchFactor float64
	// MaxMatmulEfficiency is the fraction of peak a large, well-shaped GEMM
	// achieves.
	MaxMatmulEfficiency float64
	// EfficiencyHalfTokens is the per-GPU token count at which matmul
	// efficiency reaches half of MaxMatmulEfficiency. Small per-GPU shards
	// (over-parallelization) fall down this curve — the core inefficiency
	// the paper attributes to symmetric plans.
	EfficiencyHalfTokens float64
}

// Interconnect describes the communication fabric.
type Interconnect struct {
	// IntraNodeBandwidth is the per-GPU NVLink bandwidth in bytes/s.
	IntraNodeBandwidth float64
	// InterNodeBandwidth is the per-GPU share of the RoCE fabric in bytes/s.
	InterNodeBandwidth float64
	// IntraNodeLatency and InterNodeLatency are per-hop latencies in seconds.
	IntraNodeLatency float64
	InterNodeLatency float64
	// CollectiveSyncOverhead is the per-participant straggler/sync cost of a
	// collective in seconds. It dominates latency-bound decode all-reduces
	// (the large "All-Reduce" bars of Fig. 10).
	CollectiveSyncOverhead float64
	// PCIeBandwidth is the host<->device bandwidth used by offloading.
	PCIeBandwidth float64
	// PCIeLatency is the fixed per-transfer setup cost of a host<->device
	// copy in seconds (DMA ring submission plus the first-descriptor fetch).
	// Offload reloads are few and large, so this term is small next to the
	// bandwidth term, but it keeps tiny-shard reloads from costing zero.
	PCIeLatency float64
}

// Cluster is a homogeneous (N, M) device grid, the paper's cluster device
// mesh.
type Cluster struct {
	Nodes       int
	GPUsPerNode int
	GPU         GPU
	Net         Interconnect
}

// DefaultH100 returns the device model used throughout the reproduction,
// calibrated to public H100-SXM numbers.
func DefaultH100() GPU {
	return GPU{
		Name:                  "H100-80GB",
		MemoryBytes:           80 << 30,
		PeakFLOPs:             989e12,
		HBMBandwidth:          3.35e12,
		KernelLaunchOverhead:  6e-6,
		CUDAGraphLaunchFactor: 0.25,
		MaxMatmulEfficiency:   0.62,
		EfficiencyHalfTokens:  96,
	}
}

// DefaultInterconnect returns NVLink + 3.2 Tbps RoCE (per 8-GPU node) as in
// the paper's testbed.
func DefaultInterconnect() Interconnect {
	return Interconnect{
		IntraNodeBandwidth:     450e9,
		InterNodeBandwidth:     50e9, // 3.2 Tbps / 8 GPUs
		IntraNodeLatency:       3e-6,
		InterNodeLatency:       12e-6,
		CollectiveSyncOverhead: 9e-6,
		PCIeBandwidth:          55e9,
		PCIeLatency:            10e-6,
	}
}

// DefaultCluster returns an (nodes, 8) H100 cluster.
func DefaultCluster(nodes int) Cluster {
	return Cluster{
		Nodes:       nodes,
		GPUsPerNode: 8,
		GPU:         DefaultH100(),
		Net:         DefaultInterconnect(),
	}
}

// NumGPUs is the total device count.
func (c Cluster) NumGPUs() int { return c.Nodes * c.GPUsPerNode }

// Validate reports configuration errors.
func (c Cluster) Validate() error {
	if c.Nodes <= 0 || c.GPUsPerNode <= 0 {
		return fmt.Errorf("hardware: cluster shape (%d,%d) invalid", c.Nodes, c.GPUsPerNode)
	}
	if c.GPU.MemoryBytes <= 0 || c.GPU.PeakFLOPs <= 0 || c.GPU.HBMBandwidth <= 0 {
		return fmt.Errorf("hardware: GPU %q has non-positive capability", c.GPU.Name)
	}
	if c.Net.IntraNodeBandwidth <= 0 || c.Net.InterNodeBandwidth <= 0 {
		return fmt.Errorf("hardware: interconnect bandwidth must be positive")
	}
	return nil
}

// Bandwidth returns the per-GPU bandwidth of a communication group: NVLink
// if it stays inside one node, the RoCE share otherwise.
func (c Cluster) Bandwidth(crossNode bool) float64 {
	if crossNode {
		return c.Net.InterNodeBandwidth
	}
	return c.Net.IntraNodeBandwidth
}

// Latency returns the per-hop message latency of a group.
func (c Cluster) Latency(crossNode bool) float64 {
	if crossNode {
		return c.Net.InterNodeLatency
	}
	return c.Net.IntraNodeLatency
}

func (c Cluster) String() string {
	return fmt.Sprintf("cluster(%d×%d %s)", c.Nodes, c.GPUsPerNode, c.GPU.Name)
}
