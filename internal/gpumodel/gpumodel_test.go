package gpumodel

import (
	"math"
	"testing"

	"realhf/internal/dfg"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

func testCluster(nodes int) hardware.Cluster { return hardware.DefaultCluster(nodes) }

func fullMesh(t *testing.T, nodes int) mesh.Mesh {
	t.Helper()
	return mesh.Full(testCluster(nodes))
}

func TestLayerFwdMonotoneInTokens(t *testing.T) {
	o := NewOracle(testCluster(1), model.LLaMA7B)
	prev := 0.0
	for _, tok := range []int64{128, 512, 2048, 8192, 32768} {
		got := o.LayerFwd(2, tok, 512)
		if got <= prev {
			t.Errorf("LayerFwd(%d tokens) = %g not increasing", tok, got)
		}
		prev = got
	}
}

func TestTPSpeedsUpLargeLayers(t *testing.T) {
	o := NewOracle(testCluster(1), model.LLaMA70B)
	t1 := o.LayerFwd(1, 16384, 1024)
	t8 := o.LayerFwd(8, 16384, 1024)
	if t8 >= t1 {
		t.Errorf("tp=8 (%g) should beat tp=1 (%g) on big shards", t8, t1)
	}
	// But the speedup must be sub-linear (efficiency loss).
	if t8 < t1/8 {
		t.Errorf("tp=8 speedup %.2f× is super-linear; efficiency model broken", t1/t8)
	}
}

func TestDecodeIsMemoryBound(t *testing.T) {
	o := NewOracle(testCluster(1), model.LLaMA70B)
	// Doubling the batch at small batch should barely change the step time
	// (weight traffic dominates).
	t2 := o.LayerDecode(8, 2, 1024)
	t4 := o.LayerDecode(8, 4, 1024)
	if t4 > 1.5*t2 {
		t.Errorf("decode time doubled with batch: %g -> %g; should be weight-IO bound", t2, t4)
	}
}

func TestCUDAGraphSpeedsUpDecode(t *testing.T) {
	on := NewOracle(testCluster(1), model.LLaMA7B)
	off := NewOracle(testCluster(1), model.LLaMA7B)
	off.UseCUDAGraph = false
	if a, b := on.LayerDecode(2, 4, 512), off.LayerDecode(2, 4, 512); a >= b {
		t.Errorf("CUDA graph decode %g should beat eager %g", a, b)
	}
	// Forward passes are unaffected.
	if a, b := on.LayerFwd(2, 4096, 512), off.LayerFwd(2, 4096, 512); a != b {
		t.Errorf("CUDA graph must not change prefill: %g vs %g", a, b)
	}
}

func TestAllReduceProperties(t *testing.T) {
	c := Comm{HW: testCluster(2)}
	if got := c.AllReduce(1<<20, 1, false); got != 0 {
		t.Errorf("single-rank all-reduce = %g, want 0", got)
	}
	small := c.AllReduce(1<<10, 4, false)
	big := c.AllReduce(1<<30, 4, false)
	if big <= small {
		t.Error("all-reduce not monotone in bytes")
	}
	intra := c.AllReduce(1<<26, 8, false)
	inter := c.AllReduce(1<<26, 8, true)
	if inter <= intra {
		t.Error("cross-node all-reduce should be slower")
	}
	// Tiny messages are latency/sync bound: cost grows with participants.
	if c.AllReduce(1<<10, 8, false) <= c.AllReduce(1<<10, 2, false) {
		t.Error("latency-bound all-reduce should grow with group size")
	}
}

func TestReduceScatterCheaperThanAllReduce(t *testing.T) {
	c := Comm{HW: testCluster(2)}
	if c.ReduceScatter(1<<28, 8, false) >= c.AllReduce(1<<28, 8, false) {
		t.Error("reduce-scatter moves half the all-reduce volume")
	}
}

func TestP2PAndBroadcast(t *testing.T) {
	c := Comm{HW: testCluster(2)}
	if c.P2P(1<<20, true) <= c.P2P(1<<20, false) {
		t.Error("cross-node P2P should be slower")
	}
	if c.Broadcast(0, false) <= 0 {
		t.Error("broadcast has a latency floor")
	}
	if c.Offload(1<<30) <= 0 {
		t.Error("offload must take time")
	}
}

func genSpec(cfg model.Config, st parallel.Strategy, m mesh.Mesh) CallSpec {
	return CallSpec{
		Cfg: cfg, Type: dfg.Generate,
		Work:     dfg.Workload{Batch: 512, PromptLen: 1024, GenLen: 1024},
		Strategy: st, Mesh: m,
	}
}

func trainSpec(cfg model.Config, st parallel.Strategy, m mesh.Mesh) CallSpec {
	return CallSpec{
		Cfg: cfg, Type: dfg.Train,
		Work:     dfg.Workload{Batch: 512, PromptLen: 1024, GenLen: 1024, MiniBatches: 8},
		Strategy: st, Mesh: m,
	}
}

func TestAssembleBreakdownTotals(t *testing.T) {
	hw := testCluster(16)
	o := NewOracle(hw, model.LLaMA70B)
	comm := Comm{HW: hw}
	m := fullMesh(t, 16)
	st := parallel.Strategy{DP: 4, TP: 8, PP: 4, MicroBatches: 8}
	for _, spec := range []CallSpec{genSpec(model.LLaMA70B, st, m), trainSpec(model.LLaMA70B, st, m)} {
		b := AssembleCall(o, comm, spec)
		sum := b.Compute + b.TPComm + b.PPComm + b.DPComm + b.Bubble
		if math.Abs(b.Total()-sum) > 1e-12 {
			t.Errorf("Total() = %g, sum = %g", b.Total(), sum)
		}
		if b.Total() <= 0 {
			t.Errorf("%v call has non-positive cost", spec.Type)
		}
		if b.Compute <= 0 {
			t.Errorf("%v call has no compute", spec.Type)
		}
	}
}

// TestDecodePrefersModerateTPOverDeepPP reproduces the Fig. 10 (top) shape:
// for 70B decoding, TP=8/PP=4 with its latency-bound all-reduces loses to
// a plan with lower TP, more DP.
func TestDecodePrefersLowerTP(t *testing.T) {
	hw := testCluster(16)
	o := NewOracle(hw, model.LLaMA70B)
	comm := Comm{HW: hw}
	m := fullMesh(t, 16)
	heuristic := genSpec(model.LLaMA70B, parallel.Strategy{DP: 4, TP: 8, PP: 4, MicroBatches: 8}, m)
	searched := genSpec(model.LLaMA70B, parallel.Strategy{DP: 16, TP: 2, PP: 4, MicroBatches: 4}, m)
	th := AssembleCall(o, comm, heuristic).Total()
	ts := AssembleCall(o, comm, searched).Total()
	if ts >= th {
		t.Errorf("searched decode strategy (%.1fs) should beat heuristic (%.1fs)", ts, th)
	}
}

// TestTrainingMicroBatchesReduceBubble checks the pipeline model: with pp>1,
// more micro-batches shrink the relative bubble.
func TestTrainingMicroBatchesReduceBubble(t *testing.T) {
	hw := testCluster(16)
	o := NewOracle(hw, model.LLaMA70B)
	comm := Comm{HW: hw}
	m := fullMesh(t, 16)
	st1 := parallel.Strategy{DP: 4, TP: 2, PP: 16, MicroBatches: 1}
	st8 := parallel.Strategy{DP: 4, TP: 2, PP: 16, MicroBatches: 8}
	b1 := AssembleCall(o, comm, trainSpec(model.LLaMA70B, st1, m))
	b8 := AssembleCall(o, comm, trainSpec(model.LLaMA70B, st8, m))
	r1 := b1.Bubble / b1.Total()
	r8 := b8.Bubble / b8.Total()
	if r8 >= r1 {
		t.Errorf("bubble fraction should fall with micro-batches: mbs=1 %.2f, mbs=8 %.2f", r1, r8)
	}
}

// TestOverParallelizationPenalty reproduces the paper's core observation:
// running a small model's inference across the whole cluster is barely
// faster (or slower) than on a fraction of it, because per-GPU shards
// shrink and comm overheads grow.
func TestOverParallelizationPenalty(t *testing.T) {
	hw := testCluster(16)
	o := NewOracle(hw, model.LLaMA7B)
	comm := Comm{HW: hw}
	work := dfg.Workload{Batch: 512, PromptLen: 1024, GenLen: 1024}

	wide := CallSpec{Cfg: model.LLaMA7B, Type: dfg.Inference, Work: work,
		Strategy: parallel.Strategy{DP: 16, TP: 8, PP: 1, MicroBatches: 1}, Mesh: fullMesh(t, 16)}
	narrowMesh, _ := mesh.New(0, 16, 8)
	narrow := CallSpec{Cfg: model.LLaMA7B, Type: dfg.Inference, Work: work,
		Strategy: parallel.Strategy{DP: 8, TP: 2, PP: 1, MicroBatches: 1}, Mesh: narrowMesh}

	tWide := AssembleCall(o, comm, wide).Total()
	tNarrow := AssembleCall(o, comm, narrow).Total()
	// 8× more GPUs must yield clearly less than 8× speedup.
	if tNarrow/tWide > 6 {
		t.Errorf("scaling 16→128 GPUs gave %.1f× speedup; over-parallelization penalty missing", tNarrow/tWide)
	}
	// And decode over-parallelizes much worse than a forward pass: the same
	// GPU scaling on generation yields a smaller speedup than on inference.
	wideGen, narrowGen := wide, narrow
	wideGen.Type, narrowGen.Type = dfg.Generate, dfg.Generate
	genRatio := AssembleCall(o, comm, narrowGen).Total() / AssembleCall(o, comm, wideGen).Total()
	if genRatio >= tNarrow/tWide {
		t.Errorf("generation speedup %.1f× should trail inference speedup %.1f×", genRatio, tNarrow/tWide)
	}
}

func TestCallFLOPs(t *testing.T) {
	m := fullMesh(t, 2)
	st := parallel.Strategy{DP: 2, TP: 8, PP: 1, MicroBatches: 1}
	inf := CallSpec{Cfg: model.LLaMA7B, Type: dfg.Inference,
		Work: dfg.Workload{Batch: 512, PromptLen: 1024, GenLen: 1024}, Strategy: st, Mesh: m}
	tr := inf
	tr.Type = dfg.Train
	fi, ft := CallFLOPs(inf), CallFLOPs(tr)
	if fi <= 0 || ft <= 0 {
		t.Fatal("FLOPs must be positive")
	}
	if math.Abs(ft-3*fi) > 1e-9*ft {
		t.Errorf("train FLOPs %g, want 3× inference %g", ft, 3*fi)
	}
	gen := inf
	gen.Type = dfg.Generate
	if CallFLOPs(gen) <= 0 {
		t.Error("generation FLOPs must be positive")
	}
}

func TestBreakdownScaleAdd(t *testing.T) {
	b := Breakdown{Compute: 1, TPComm: 2, PPComm: 3, DPComm: 4, Bubble: 5}
	s := b.Scale(2)
	if s.Total() != 30 {
		t.Errorf("Scale(2).Total = %g, want 30", s.Total())
	}
	var acc Breakdown
	acc.Add(b)
	acc.Add(b)
	if acc.Total() != 30 {
		t.Errorf("Add twice Total = %g, want 30", acc.Total())
	}
}

// TestMiniBatchesMultiplyFixedCosts: PPO mini-batches repeat the gradient
// sync and optimizer step, so 8 mini-batches cost more than 1 at equal
// total tokens.
func TestMiniBatchesMultiplyFixedCosts(t *testing.T) {
	hw := testCluster(16)
	o := NewOracle(hw, model.LLaMA70B)
	comm := Comm{HW: hw}
	m := fullMesh(t, 16)
	st := parallel.Strategy{DP: 4, TP: 8, PP: 4, MicroBatches: 4}
	one := trainSpec(model.LLaMA70B, st, m)
	one.Work.MiniBatches = 1
	eight := trainSpec(model.LLaMA70B, st, m)
	eight.Work.MiniBatches = 8
	t1 := AssembleCall(o, comm, one).Total()
	t8 := AssembleCall(o, comm, eight).Total()
	if t8 <= t1 {
		t.Errorf("8 mini-batches (%.1fs) should cost more than 1 (%.1fs)", t8, t1)
	}
}

func TestHeadFwdCriticFree(t *testing.T) {
	hw := testCluster(1)
	o := NewOracle(hw, model.LLaMA7B)
	comm := Comm{HW: hw}
	m, _ := mesh.New(0, 8, 8)
	st := parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1}
	actor := CallSpec{Cfg: model.LLaMA7B, Type: dfg.Inference,
		Work: dfg.Workload{Batch: 256, PromptLen: 1024, GenLen: 1024}, Strategy: st, Mesh: m}
	critic := actor
	critic.IsCritic = true
	if AssembleCall(o, comm, critic).Total() >= AssembleCall(o, comm, actor).Total() {
		t.Error("critic inference skips the 128k-vocab head and should be cheaper")
	}
}
