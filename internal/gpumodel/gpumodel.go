// Package gpumodel is the analytic kernel-cost oracle that substitutes for
// the paper's real H100 kernels (see DESIGN.md §2). It answers two kinds of
// question:
//
//   - per-layer primitive costs (forward, backward, decode step, head,
//     optimizer step) through the ModelCoster interface, implemented here by
//     the ground-truth Oracle and in internal/profiler by interpolated,
//     noisy profiles — exactly the split the paper has between real kernels
//     and its profiling-assisted estimator;
//   - communication primitive costs (all-reduce, P2P, broadcast, offload),
//     which both the paper's estimator and ours compute analytically from
//     data size and bandwidth (§5.1).
//
// On top of the primitives, AssembleCall composes the full cost and category
// breakdown of one model function call under a (mesh, strategy) assignment:
// micro-batched 1F1B pipelines for training, single-pass pipelines for
// inference, and prefill+decode for generation.
package gpumodel

import (
	"math"

	"realhf/internal/dfg"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
)

// kernelsPerLayer is the number of kernel launches a fused transformer layer
// issues (qkv, rope, core attention, out proj, 3 MLP matmuls, 2 norms).
const kernelsPerLayer = 9

// decodeIOBaseEfficiency is the fraction of peak HBM bandwidth that small
// auto-regressive decoding kernels achieve at TP=1. Real decode kernels are
// far from the roofline, and slicing weights across TP ranks degrades the
// achieved bandwidth further (paper Fig. 10: TP=8 is only ~2× faster per
// layer than TP=2). decodeIOTPDegrade controls that degradation.
const (
	decodeIOBaseEfficiency = 0.30
	decodeIOTPDegrade      = 0.18
	// decodeARSyncPerRank is the extra per-participant synchronization cost
	// of the tiny all-reduces issued between decode kernels: with one
	// collective every few hundred microseconds, launch serialization and
	// stragglers dominate (the large all-reduce bars of Fig. 10).
	decodeARSyncPerRank = 25e-6
)

func decodeIOEfficiency(tp int) float64 {
	return decodeIOBaseEfficiency / (1 + decodeIOTPDegrade*float64(tp-1))
}

// ModelCoster yields per-layer primitive times (seconds) for one model
// architecture at a given tensor-parallel degree. tokens are per micro-batch
// per data-parallel rank; avgSpan is the mean attention span.
type ModelCoster interface {
	// LayerFwd is one transformer layer's forward time.
	LayerFwd(tp int, tokens int64, avgSpan float64) float64
	// LayerBwd is one transformer layer's backward time.
	LayerBwd(tp int, tokens int64, avgSpan float64) float64
	// LayerDecode is one layer's time for a single decoding step over
	// batchSeqs sequences whose current length is pos.
	LayerDecode(tp int, batchSeqs int, pos int) float64
	// HeadFwd is the output-head (logits) forward time over tokens.
	HeadFwd(tp int, tokens int64) float64
	// OptimStep is the optimizer update time for a local shard of params.
	OptimStep(shardParams int64) float64
}

// Oracle is the ground-truth ModelCoster backed by the hardware model.
type Oracle struct {
	HW  hardware.Cluster
	Cfg model.Config
	// UseCUDAGraph captures decode kernels into a CUDA graph, shrinking the
	// per-kernel launch overhead (Table 6's ±CUDAGraph rows).
	UseCUDAGraph bool
}

// NewOracle binds the hardware model to one architecture.
func NewOracle(hw hardware.Cluster, cfg model.Config) *Oracle {
	return &Oracle{HW: hw, Cfg: cfg, UseCUDAGraph: true}
}

// matmulEfficiency is the achieved fraction of peak FLOPs for a GEMM whose
// per-GPU row count is tokens: a saturating curve that penalizes the small
// shards produced by over-parallelization, plus a mild thin-matrix penalty
// as TP slices weight matrices.
func (o *Oracle) matmulEfficiency(tokens int64, tp int) float64 {
	g := o.HW.GPU
	t := float64(tokens)
	sat := t / (t + g.EfficiencyHalfTokens)
	thin := 1.0 / (1.0 + 0.09*math.Log2(float64(tp)))
	return g.MaxMatmulEfficiency * sat * thin
}

func (o *Oracle) launch(kernels float64, decode bool) float64 {
	ov := o.HW.GPU.KernelLaunchOverhead
	if decode && o.UseCUDAGraph {
		ov *= o.HW.GPU.CUDAGraphLaunchFactor
	}
	return kernels * ov
}

// LayerFwd implements the roofline: max(compute, weight+KV traffic) plus
// launch overhead.
func (o *Oracle) LayerFwd(tp int, tokens int64, avgSpan float64) float64 {
	g := o.HW.GPU
	flops := o.Cfg.LayerFwdFLOPs(tokens, avgSpan) / float64(tp)
	compute := flops / (g.PeakFLOPs * o.matmulEfficiency(tokens, tp))
	io := float64(o.Cfg.LayerParamBytes()/int64(tp)) / g.HBMBandwidth
	kvIO := float64(tokens*o.Cfg.KVBytesPerTokenPerLayer()/int64(tp)) / g.HBMBandwidth
	return math.Max(compute, io+kvIO) + o.launch(kernelsPerLayer, false)
}

// LayerBwd costs ~2× the forward matmuls with doubled weight traffic.
func (o *Oracle) LayerBwd(tp int, tokens int64, avgSpan float64) float64 {
	g := o.HW.GPU
	flops := 2 * o.Cfg.LayerFwdFLOPs(tokens, avgSpan) / float64(tp)
	compute := flops / (g.PeakFLOPs * o.matmulEfficiency(tokens, tp))
	io := 2 * float64(o.Cfg.LayerParamBytes()/int64(tp)) / g.HBMBandwidth
	return math.Max(compute, io) + o.launch(1.5*kernelsPerLayer, false)
}

// LayerDecode is memory-bound: every step reads the full local weight shard
// and the KV cache of all batched sequences.
func (o *Oracle) LayerDecode(tp int, batchSeqs int, pos int) float64 {
	g := o.HW.GPU
	eff := decodeIOEfficiency(tp)
	weightIO := float64(o.Cfg.LayerParamBytes()/int64(tp)) / (g.HBMBandwidth * eff)
	kvIO := float64(int64(batchSeqs)*int64(pos)*o.Cfg.KVBytesPerTokenPerLayer()/int64(tp)) /
		(g.HBMBandwidth * eff)
	flops := o.Cfg.LayerFwdFLOPs(int64(batchSeqs), float64(pos)) / float64(tp)
	compute := flops / (g.PeakFLOPs * o.matmulEfficiency(int64(batchSeqs), tp))
	return math.Max(compute, weightIO+kvIO) + o.launch(kernelsPerLayer, true)
}

// HeadFwd is the logits GEMM plus the (huge, 128k-vocab) logit traffic.
func (o *Oracle) HeadFwd(tp int, tokens int64) float64 {
	g := o.HW.GPU
	flops := o.Cfg.HeadFLOPs(tokens) / float64(tp)
	compute := flops / (g.PeakFLOPs * o.matmulEfficiency(tokens, tp))
	logitBytes := float64(tokens) * float64(o.Cfg.VocabSize) * model.BytesPerParam / float64(tp)
	weightBytes := float64(o.Cfg.EmbedParams()) * model.BytesPerParam / float64(tp)
	io := (3*logitBytes + weightBytes) / g.HBMBandwidth // write + softmax read/write
	return math.Max(compute, io) + o.launch(3, false)
}

// OptimStep models a fused Adam update: ~16 bytes of state traffic per local
// parameter (bf16 weight+grad, fp32 master+moments, read+write).
func (o *Oracle) OptimStep(shardParams int64) float64 {
	return float64(shardParams) * 16 / o.HW.GPU.HBMBandwidth
}

// Comm computes communication primitive costs analytically, as the paper's
// estimator does ("we approximate the time with the data size and the
// bandwidth instead of running a real NCCL operation").
type Comm struct {
	HW hardware.Cluster
}

// AllReduce is a ring all-reduce over n ranks: 2(n-1)/n volume factor, a
// per-hop latency term and a per-participant synchronization overhead. The
// sync term dominates the tiny all-reduces of decoding (paper Fig. 10).
func (c Comm) AllReduce(bytes int64, n int, crossNode bool) float64 {
	if n <= 1 {
		return 0
	}
	bw := c.HW.Bandwidth(crossNode)
	vol := 2 * float64(n-1) / float64(n) * float64(bytes) / bw
	lat := float64(n-1) * c.HW.Latency(crossNode)
	sync := float64(n) * c.HW.Net.CollectiveSyncOverhead
	return vol + lat + sync
}

// ReduceScatter (or AllGather) moves half the all-reduce volume.
func (c Comm) ReduceScatter(bytes int64, n int, crossNode bool) float64 {
	if n <= 1 {
		return 0
	}
	bw := c.HW.Bandwidth(crossNode)
	vol := float64(n-1) / float64(n) * float64(bytes) / bw
	lat := float64(n-1) * c.HW.Latency(crossNode)
	sync := float64(n) * c.HW.Net.CollectiveSyncOverhead
	return vol + lat + sync
}

// P2P is a point-to-point activation transfer between pipeline stages.
func (c Comm) P2P(bytes int64, crossNode bool) float64 {
	return float64(bytes)/c.HW.Bandwidth(crossNode) + c.HW.Latency(crossNode)
}

// Broadcast sends bytes from one source to a set of destinations; ring/tree
// pipelining makes the cost roughly size/bw plus latency.
func (c Comm) Broadcast(bytes int64, crossNode bool) float64 {
	return float64(bytes)/c.HW.Bandwidth(crossNode) + c.HW.Latency(crossNode)
}

// Offload is a host<->device copy over PCIe.
func (c Comm) Offload(bytes int64) float64 {
	return float64(bytes) / c.HW.Net.PCIeBandwidth
}

// OffloadTransfer is the host<->device lane cost of one offload/reload node:
// the PCIe bandwidth term of Offload plus the fixed per-transfer setup
// latency. The estimator and the runtime master share this formula so
// planned and executed offload timelines agree bit for bit.
func (c Comm) OffloadTransfer(bytes int64) float64 {
	return float64(bytes)/c.HW.Net.PCIeBandwidth + c.HW.Net.PCIeLatency
}

// CallSpec identifies one model function call to be costed.
type CallSpec struct {
	Cfg      model.Config
	IsCritic bool // scalar value head instead of the vocab head
	Type     dfg.CallType
	Work     dfg.Workload
	Strategy parallel.Strategy
	Mesh     mesh.Mesh
}

// Breakdown partitions a call's per-GPU wall time into the CUDA-kernel
// categories of paper Fig. 11. Total() is the call's wall-clock duration.
type Breakdown struct {
	Compute float64 // GEMM/attention/optimizer kernels incl. launch
	TPComm  float64 // tensor-parallel collectives
	PPComm  float64 // pipeline P2P sends/recvs
	DPComm  float64 // gradient collectives
	Bubble  float64 // pipeline bubbles + sync idle
}

// Total is the wall-clock duration of the call.
func (b Breakdown) Total() float64 {
	return b.Compute + b.TPComm + b.PPComm + b.DPComm + b.Bubble
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Compute += o.Compute
	b.TPComm += o.TPComm
	b.PPComm += o.PPComm
	b.DPComm += o.DPComm
	b.Bubble += o.Bubble
}

// Scale multiplies every component.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		Compute: b.Compute * f, TPComm: b.TPComm * f, PPComm: b.PPComm * f,
		DPComm: b.DPComm * f, Bubble: b.Bubble * f,
	}
}

// AssembleCall composes the per-layer primitives of mc and the comm model
// into the full cost of one model function call under spec.
func AssembleCall(mc ModelCoster, comm Comm, spec CallSpec) Breakdown {
	switch spec.Type {
	case dfg.Train:
		return assembleTrain(mc, comm, spec)
	case dfg.Inference:
		return assembleForward(mc, comm, spec, spec.Work.SeqLen())
	case dfg.Generate:
		prefill := assembleForward(mc, comm, spec, spec.Work.PromptLen)
		decode := assembleDecode(mc, comm, spec)
		prefill.Add(decode)
		return prefill
	}
	return Breakdown{}
}

// shape is the resolved data decomposition of a call.
type shape struct {
	seqsPerDP    int
	mbs          int // effective micro-batch count
	seqsPerMicro int
	lps          int // layers per pipeline stage
	tpCross      bool
	ppCross      bool
	dpCross      bool
}

func resolveShape(spec CallSpec, batch int) shape {
	s := spec.Strategy
	perDP := (batch + s.DP - 1) / s.DP
	if perDP < 1 {
		perDP = 1
	}
	mbs := s.MicroBatches
	if mbs > perDP {
		mbs = perDP
	}
	if mbs < 1 {
		mbs = 1
	}
	perMicro := (perDP + mbs - 1) / mbs
	return shape{
		seqsPerDP:    perDP,
		mbs:          mbs,
		seqsPerMicro: perMicro,
		lps:          s.LayersPerStage(spec.Cfg),
		tpCross:      s.TPCrossesNode(spec.Mesh),
		ppCross:      s.PPCrossesNode(spec.Mesh),
		dpCross:      s.DPCrossesNode(spec.Mesh),
	}
}

// assembleForward costs a single forward pass (inference, or the prefill
// phase of generation) over seqLen tokens per sequence, pipelined over
// micro-batches: wall = (mbs + pp - 1) × stage period.
func assembleForward(mc ModelCoster, comm Comm, spec CallSpec, seqLen int) Breakdown {
	s := spec.Strategy
	sh := resolveShape(spec, spec.Work.Batch)
	tokensMicro := int64(sh.seqsPerMicro) * int64(seqLen)
	span := float64(seqLen) / 2

	layerFwd := mc.LayerFwd(s.TP, tokensMicro, span)
	arBytes := tokensMicro * int64(spec.Cfg.HiddenSize) * model.BytesPerParam
	layerAR := comm.AllReduce(arBytes, s.TP, sh.tpCross)

	stageCompute := float64(sh.lps) * layerFwd
	stageTP := float64(sh.lps) * layerAR
	var head float64
	if !spec.IsCritic {
		head = mc.HeadFwd(s.TP, tokensMicro) / float64(s.PP)
	}
	stageCompute += head

	var stageDP float64
	if s.ZeRO3 {
		// Every layer's weights are all-gathered across the DP group before
		// use.
		cross := spec.Mesh.CrossNode()
		stageDP = float64(sh.lps) * comm.ReduceScatter(spec.Cfg.LayerParamBytes(), s.DP, cross)
	}

	var stagePP float64
	if s.PP > 1 {
		stagePP = comm.P2P(arBytes, sh.ppCross)
	}
	period := stageCompute + stageTP + stagePP + stageDP
	waves := float64(sh.mbs + s.PP - 1)

	return Breakdown{
		Compute: float64(sh.mbs) * stageCompute,
		TPComm:  float64(sh.mbs) * stageTP,
		PPComm:  float64(sh.mbs) * stagePP,
		DPComm:  float64(sh.mbs) * stageDP,
		Bubble:  (waves - float64(sh.mbs)) * period,
	}
}

// assembleTrain costs one training call: MiniBatches sequential PPO updates,
// each a 1F1B pipeline over its share of the batch followed by a gradient
// all-reduce across DP peers and an optimizer step.
func assembleTrain(mc ModelCoster, comm Comm, spec CallSpec) Breakdown {
	s := spec.Strategy
	mini := spec.Work.MiniBatches
	if mini < 1 {
		mini = 1
	}
	perMini := spec.Work.Batch / mini
	if perMini < 1 {
		perMini = 1
	}
	sh := resolveShape(spec, perMini)
	seqLen := spec.Work.SeqLen()
	tokensMicro := int64(sh.seqsPerMicro) * int64(seqLen)
	span := float64(seqLen) / 2

	layerFwd := mc.LayerFwd(s.TP, tokensMicro, span)
	layerBwd := mc.LayerBwd(s.TP, tokensMicro, span)
	arBytes := tokensMicro * int64(spec.Cfg.HiddenSize) * model.BytesPerParam
	layerAR := comm.AllReduce(arBytes, s.TP, sh.tpCross)

	stageCompute := float64(sh.lps) * (layerFwd + layerBwd)
	stageTP := float64(sh.lps) * 4 * layerAR // 2 fwd + 2 bwd all-reduces per layer
	if !spec.IsCritic {
		stageCompute += 3 * mc.HeadFwd(s.TP, tokensMicro) / float64(s.PP)
	}
	var stagePP float64
	if s.PP > 1 {
		stagePP = 2 * comm.P2P(arBytes, sh.ppCross) // activations fwd + grads bwd
	}
	period := stageCompute + stageTP + stagePP
	waves := float64(sh.mbs + s.PP - 1)

	params := spec.Cfg.Params()
	if spec.IsCritic {
		params = spec.Cfg.CriticParams()
	}
	shardParams := params / int64(s.TP*s.PP)
	gradBytes := shardParams * model.BytesPerParam
	var dpSync, stageDP float64
	if s.ZeRO3 {
		// Per-layer all-gathers in forward and backward plus a per-layer
		// gradient reduce-scatter replace the end-of-step all-reduce.
		cross := spec.Mesh.CrossNode()
		stageDP = float64(sh.lps) * 3 * comm.ReduceScatter(spec.Cfg.LayerParamBytes(), s.DP, cross)
		shardParams = params / int64(s.DP)
	} else {
		dpSync = comm.AllReduce(gradBytes, s.DP, sh.dpCross)
	}
	opt := mc.OptimStep(shardParams)
	period += stageDP

	perUpdate := Breakdown{
		Compute: float64(sh.mbs)*stageCompute + opt,
		TPComm:  float64(sh.mbs) * stageTP,
		PPComm:  float64(sh.mbs) * stagePP,
		DPComm:  dpSync + float64(sh.mbs)*stageDP,
		Bubble:  (waves - float64(sh.mbs)) * period,
	}
	return perUpdate.Scale(float64(mini))
}

// assembleDecode costs the auto-regressive decoding phase: GenLen sequential
// steps; within a step, micro-batches pipeline across stages, so the step
// wall time is max(mbs, pp) stage periods (steady state).
func assembleDecode(mc ModelCoster, comm Comm, spec CallSpec) Breakdown {
	s := spec.Strategy
	sh := resolveShape(spec, spec.Work.Batch)
	steps := spec.Work.GenLen
	if steps <= 0 {
		return Breakdown{}
	}
	avgPos := spec.Work.PromptLen + steps/2

	layerDec := mc.LayerDecode(s.TP, sh.seqsPerMicro, avgPos)
	arBytes := int64(sh.seqsPerMicro) * int64(spec.Cfg.HiddenSize) * model.BytesPerParam
	layerAR := comm.AllReduce(arBytes, s.TP, sh.tpCross)
	if s.TP > 1 {
		layerAR += decodeARSyncPerRank * float64(s.TP)
	}

	stageCompute := float64(sh.lps) * layerDec
	stageTP := float64(sh.lps) * layerAR
	head := mc.HeadFwd(s.TP, int64(sh.seqsPerMicro)) / float64(s.PP)
	stageCompute += head

	var stagePP float64
	if s.PP > 1 {
		stagePP = comm.P2P(arBytes, sh.ppCross) + comm.HW.Net.CollectiveSyncOverhead*float64(s.PP)
	}
	period := stageCompute + stageTP + stagePP
	waves := math.Max(float64(sh.mbs), float64(s.PP))

	perStep := Breakdown{
		Compute: float64(sh.mbs) * stageCompute,
		TPComm:  float64(sh.mbs) * stageTP,
		PPComm:  float64(sh.mbs) * stagePP,
		Bubble:  (waves - float64(sh.mbs)) * period,
	}
	return perStep.Scale(float64(steps))
}

// CallFLOPs returns the model FLOPs a call performs — the numerator of the
// paper's throughput metric (PFLOP/s). It is hardware-independent.
func CallFLOPs(spec CallSpec) float64 {
	cfg := spec.Cfg
	w := spec.Work
	withHead := !spec.IsCritic
	switch spec.Type {
	case dfg.Train:
		return cfg.TrainFLOPs(w.TotalTokens(), float64(w.SeqLen())/2, withHead)
	case dfg.Inference:
		return cfg.FwdFLOPs(w.TotalTokens(), float64(w.SeqLen())/2, withHead)
	case dfg.Generate:
		prompt := cfg.FwdFLOPs(int64(w.Batch)*int64(w.PromptLen), float64(w.PromptLen)/2, withHead)
		decode := cfg.FwdFLOPs(int64(w.Batch)*int64(w.GenLen), float64(w.PromptLen+w.GenLen/2), withHead)
		return prompt + decode
	}
	return 0
}
