// Package checkpoint serializes a training campaign's durable state — the
// incumbent plan (via the SavePlan codec), the profile-feedback
// calibration factors, and the session's iteration/replan counters — so a
// killed process resumes exactly where it stopped (realhf.Trainer.Checkpoint
// / realhf.Planner.ResumeTrain).
//
// The wire format follows the same canonical-codec contract as the root
// package's wire.go: a versioned JSON document, written with a canonical
// field-by-field marshal (realvet's fieldcover proves every exported State
// field reaches the bytes), decoded strictly (unknown fields and version
// skew are errors, never silent drops), and byte-deterministic — two
// checkpoints of identical state are identical files, and a round trip is
// bit-stable. Save writes through a temp file and an atomic rename, so a
// crash mid-checkpoint leaves the previous checkpoint intact rather than a
// torn file.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Version is the current checkpoint wire version. Decoders reject other
// versions outright: campaign state is too entangled for silent best-effort
// migration, and a versioned hard failure is the contract wire.go set.
const Version = 1

// State is a campaign snapshot — everything a Trainer needs beyond its
// (caller-re-supplied) config and options to resume bit-exactly: the next
// iteration's replan decision is a pure function of these fields plus the
// config, so restoring them replays the uninterrupted session.
type State struct {
	// Version is the wire version (see Version).
	Version int
	// Iteration is the number of iterations fully executed (the next Step
	// runs iteration Iteration).
	Iteration int
	// Replans and Switches are the session counters: replan attempts and
	// adopted plan changes (including shrink-replans and resizes).
	Replans  int
	Switches int
	// WorkerFailures counts workers lost (and survived) so far.
	WorkerFailures int
	// SwitchCostV and TotalMakespanV mirror the campaign accounting:
	// charged §5 reallocation total and virtual campaign wall time.
	SwitchCostV    float64
	TotalMakespanV float64
	// PendingSwitchCostV is reallocation charged but not yet reported (a
	// switch adopted after the last executed iteration).
	PendingSwitchCostV float64
	// Drifted records that profile feedback demanded a replan before the
	// next iteration.
	Drifted bool
	// Nodes is the cluster scale the campaign currently runs at (shrinks
	// and resizes applied) — it overrides the resuming config's Nodes.
	Nodes int
	// PlannedGenLen is the generation length the incumbent plan was last
	// (re)considered at; resuming restores it so the next Step's replan
	// trigger fires exactly as it would have.
	PlannedGenLen int
	// Plan is the incumbent plan in the SavePlan wire format.
	Plan json.RawMessage
	// PlanFingerprint is the incumbent's canonical fingerprint, checked on
	// resume: a checkpoint whose plan bytes decode to a different plan than
	// the one that was saved is corrupt.
	PlanFingerprint string
	// Calibration is the profile-feedback state: per-call
	// observed/predicted multipliers (empty when uncalibrated).
	Calibration map[string]float64
}

// stateJSON is the wire shadow of State. Field order here is the canonical
// byte order of the checkpoint file.
type stateJSON struct {
	Version            int                `json:"version"`
	Iteration          int                `json:"iteration"`
	Replans            int                `json:"replans"`
	Switches           int                `json:"switches"`
	WorkerFailures     int                `json:"worker_failures"`
	SwitchCostV        float64            `json:"switch_cost_v"`
	TotalMakespanV     float64            `json:"total_makespan_v"`
	PendingSwitchCostV float64            `json:"pending_switch_cost_v"`
	Drifted            bool               `json:"drifted,omitempty"`
	Nodes              int                `json:"nodes"`
	PlannedGenLen      int                `json:"planned_gen_len"`
	Plan               json.RawMessage    `json:"plan"`
	PlanFingerprint    string             `json:"plan_fingerprint"`
	Calibration        map[string]float64 `json:"calibration,omitempty"`
}

// MarshalJSON is the canonical checkpoint encoding: every exported State
// field, stable field order, deterministic bytes (encoding/json sorts the
// calibration map's keys). It is the fieldcover-checked canonical method —
// adding a State field without extending this marshal is a realvet break,
// not a silently-dropped-on-resume bug.
func (s *State) MarshalJSON() ([]byte, error) {
	out := stateJSON{
		Version:            s.Version,
		Iteration:          s.Iteration,
		Replans:            s.Replans,
		Switches:           s.Switches,
		WorkerFailures:     s.WorkerFailures,
		SwitchCostV:        s.SwitchCostV,
		TotalMakespanV:     s.TotalMakespanV,
		PendingSwitchCostV: s.PendingSwitchCostV,
		Drifted:            s.Drifted,
		Nodes:              s.Nodes,
		PlannedGenLen:      s.PlannedGenLen,
		Plan:               s.Plan,
		PlanFingerprint:    s.PlanFingerprint,
		Calibration:        s.Calibration,
	}
	return json.MarshalIndent(out, "", "  ")
}

// Write encodes the state to w in the canonical format.
func Write(w io.Writer, s *State) error {
	// An unset version means "current"; stamp a copy, never the caller's
	// value.
	if s.Version == 0 {
		tmp := *s
		tmp.Version = Version
		s = &tmp
	}
	if s.Version != Version {
		return fmt.Errorf("checkpoint: cannot write version %d (this build writes %d)", s.Version, Version)
	}
	data, err := s.MarshalJSON()
	if err != nil {
		return fmt.Errorf("checkpoint: marshal: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	return nil
}

// Read strictly decodes a checkpoint: unknown fields are an error (a field
// this build does not understand cannot be silently dropped from campaign
// state), and a version other than Version is rejected.
func Read(r io.Reader) (*State, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in stateJSON
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if in.Version != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (this build reads %d)", in.Version, Version)
	}
	return &State{
		Version:            in.Version,
		Iteration:          in.Iteration,
		Replans:            in.Replans,
		Switches:           in.Switches,
		WorkerFailures:     in.WorkerFailures,
		SwitchCostV:        in.SwitchCostV,
		TotalMakespanV:     in.TotalMakespanV,
		PendingSwitchCostV: in.PendingSwitchCostV,
		Drifted:            in.Drifted,
		Nodes:              in.Nodes,
		PlannedGenLen:      in.PlannedGenLen,
		Plan:               in.Plan,
		PlanFingerprint:    in.PlanFingerprint,
		Calibration:        in.Calibration,
	}, nil
}

// Save writes the checkpoint durably: the bytes go to a temp file in the
// destination directory, are fsynced, and replace path with an atomic
// rename — a crash mid-save leaves the previous checkpoint readable, never
// a torn half-file.
func Save(path string, s *State) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmp := f.Name()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(buf.Bytes()); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	return nil
}

// Load reads a checkpoint saved by Save.
func Load(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open: %w", err)
	}
	defer f.Close()
	return Read(f)
}
