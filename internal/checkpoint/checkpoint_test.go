package checkpoint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleState() *State {
	return &State{
		Iteration:          7,
		Replans:            3,
		Switches:           2,
		WorkerFailures:     1,
		SwitchCostV:        12.25,
		TotalMakespanV:     480.5,
		PendingSwitchCostV: 1.5,
		Drifted:            true,
		Nodes:              2,
		PlannedGenLen:      768,
		Plan:               json.RawMessage(`{"version":1,"nodes":2}`),
		PlanFingerprint:    "deadbeefcafe",
		Calibration:        map[string]float64{"ActorGen": 1.25, "RewInf": 0.9},
	}
}

// TestRoundTripBitStable: encode → decode → encode reproduces the exact
// bytes, and the decoded state equals the original — the same contract
// wire.go proves for plan requests.
func TestRoundTripBitStable(t *testing.T) {
	s := sampleState()
	var first bytes.Buffer
	if err := Write(&first, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := sampleState()
	want.Version = Version
	// The encoder re-indents the embedded plan document; its JSON value —
	// not its whitespace — is the round-trip contract.
	var gotPlan, wantPlan bytes.Buffer
	if err := json.Compact(&gotPlan, got.Plan); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&wantPlan, want.Plan); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPlan.Bytes(), wantPlan.Bytes()) {
		t.Fatalf("round trip changed the plan payload: %s vs %s", &gotPlan, &wantPlan)
	}
	var second bytes.Buffer
	if err := Write(&second, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-encoding is not bit-stable:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
	}
	got.Plan, want.Plan = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed state:\n got %+v\nwant %+v", got, want)
	}
}

// TestWriteIsDeterministic: two writes of equal state are byte-identical
// (the calibration map must not leak Go's randomized iteration order).
func TestWriteIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Write(&a, sampleState()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, sampleState()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of equal state differ")
	}
}

// TestReadRejectsUnknownFields: strict decode — campaign state written by
// a future build must fail loudly, not lose fields silently.
func TestReadRejectsUnknownFields(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleState()); err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(buf.String(), `"iteration"`, `"iteration_count"`, 1)
	if _, err := Read(strings.NewReader(mutated)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
}

// TestVersionSkewRejected on both sides: Read refuses other versions, and
// Write refuses to emit a version this build does not produce.
func TestVersionSkewRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleState()); err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(buf.String(), `"version": 1`, `"version": 99`, 1)
	if _, err := Read(strings.NewReader(mutated)); err == nil {
		t.Fatal("version skew must be rejected")
	}
	bad := sampleState()
	bad.Version = 2
	if err := Write(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("writing a foreign version must be rejected")
	}
}

// TestSaveAtomicReplace: Save lands the full new state (via rename), keeps
// no temp litter, and Load round-trips it.
func TestSaveAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.ckpt")
	old := sampleState()
	if err := Save(path, old); err != nil {
		t.Fatal(err)
	}
	next := sampleState()
	next.Iteration = 8
	next.Drifted = false
	if err := Save(path, next); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 8 || got.Drifted {
		t.Fatalf("Load returned stale state: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("Save left temp litter: %v", entries)
	}
}
