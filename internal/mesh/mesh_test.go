package mesh

import (
	"testing"
	"testing/quick"

	"realhf/internal/hardware"
)

func TestValidateLegalMeshes(t *testing.T) {
	legal := []Mesh{
		{First: 0, Count: 1, M: 8},
		{First: 2, Count: 2, M: 8},
		{First: 4, Count: 4, M: 8},
		{First: 0, Count: 8, M: 8},
		{First: 8, Count: 16, M: 8},
		{First: 0, Count: 64, M: 8},
	}
	for _, m := range legal {
		if err := m.Validate(); err != nil {
			t.Errorf("mesh %+v should be legal: %v", m, err)
		}
	}
}

func TestValidateIllegalMeshes(t *testing.T) {
	illegal := []Mesh{
		{First: 0, Count: 3, M: 8},  // 3 does not divide 8
		{First: 1, Count: 2, M: 8},  // misaligned slice
		{First: 6, Count: 4, M: 8},  // crosses node boundary via misalignment
		{First: 0, Count: 12, M: 8}, // not whole nodes
		{First: 4, Count: 8, M: 8},  // full-node size but not node-aligned
		{First: 0, Count: 0, M: 8},  // empty
		{First: -8, Count: 8, M: 8}, // negative start
	}
	for _, m := range illegal {
		if err := m.Validate(); err == nil {
			t.Errorf("mesh %+v should be illegal", m)
		}
	}
}

func TestOverlapSymmetric(t *testing.T) {
	a := Mesh{First: 0, Count: 8, M: 8}
	b := Mesh{First: 4, Count: 4, M: 8}
	c := Mesh{First: 8, Count: 8, M: 8}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b share GPUs 4-7, should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("a and c are disjoint")
	}
}

func TestNumNodesAndCrossNode(t *testing.T) {
	cases := []struct {
		m     Mesh
		nodes int
		cross bool
	}{
		{Mesh{First: 0, Count: 4, M: 8}, 1, false},
		{Mesh{First: 0, Count: 8, M: 8}, 1, false},
		{Mesh{First: 8, Count: 16, M: 8}, 2, true},
		{Mesh{First: 0, Count: 128, M: 8}, 16, true},
	}
	for _, tc := range cases {
		if got := tc.m.NumNodes(); got != tc.nodes {
			t.Errorf("%+v NumNodes = %d, want %d", tc.m, got, tc.nodes)
		}
		if got := tc.m.CrossNode(); got != tc.cross {
			t.Errorf("%+v CrossNode = %v, want %v", tc.m, got, tc.cross)
		}
	}
}

func TestEnumerateAllLegal(t *testing.T) {
	c := hardware.DefaultCluster(2)
	for _, m := range Enumerate(c) {
		if err := m.Validate(); err != nil {
			t.Errorf("Enumerate produced illegal mesh %+v: %v", m, err)
		}
		if m.First+m.Count > c.NumGPUs() {
			t.Errorf("mesh %+v exceeds cluster", m)
		}
	}
}

func TestEnumerateCountSmallCluster(t *testing.T) {
	// One node of 8: slices of size 1 (8), 2 (4), 4 (2) plus the full node.
	c := hardware.DefaultCluster(1)
	got := len(Enumerate(c))
	if got != 8+4+2+1 {
		t.Errorf("Enumerate(1 node) = %d meshes, want 15", got)
	}
}

func TestEnumerateSized(t *testing.T) {
	c := hardware.DefaultCluster(4)
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		for _, m := range EnumerateSized(c, n) {
			if m.Count != n {
				t.Errorf("EnumerateSized(%d) returned mesh of %d GPUs", n, m.Count)
			}
		}
	}
	if len(EnumerateSized(c, 3)) != 0 {
		t.Error("size-3 meshes must not exist on 8-GPU nodes")
	}
	if got := len(EnumerateSized(c, 8)); got != 4 {
		t.Errorf("4-node cluster has %d full-node meshes, want 4", got)
	}
}

func TestFullCoversCluster(t *testing.T) {
	c := hardware.DefaultCluster(16)
	f := Full(c)
	if f.Count != 128 || f.First != 0 {
		t.Errorf("Full = %+v", f)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("full mesh invalid: %v", err)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		m    Mesh
		want string
	}{
		{Mesh{First: 0, Count: 128, M: 8}, "trainer[01-16]"},
		{Mesh{First: 0, Count: 8, M: 8}, "trainer01"},
		{Mesh{First: 8, Count: 8, M: 8}, "trainer02"},
		{Mesh{First: 2, Count: 2, M: 8}, "trainer01:g2-3"},
	}
	for _, tc := range cases {
		if got := tc.m.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.m, got, tc.want)
		}
	}
}

// Property: overlap is symmetric and consistent with GPU set intersection.
func TestOverlapMatchesSetIntersection(t *testing.T) {
	c := hardware.DefaultCluster(2)
	meshes := Enumerate(c)
	f := func(i, j uint16) bool {
		a := meshes[int(i)%len(meshes)]
		b := meshes[int(j)%len(meshes)]
		set := map[int]bool{}
		for _, g := range a.GPUs() {
			set[g] = true
		}
		shared := false
		for _, g := range b.GPUs() {
			if set[g] {
				shared = true
				break
			}
		}
		return a.Overlaps(b) == shared && a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: disjoint equal-size siblings tile the cluster exactly.
func TestSiblingsTileCluster(t *testing.T) {
	c := hardware.DefaultCluster(2)
	for _, n := range Sizes(c) {
		ms := EnumerateSized(c, n)
		covered := map[int]int{}
		for _, m := range ms {
			// Count only the canonical tiling (aligned, non-overlapping
			// partition): every mesh from EnumerateSized is aligned, so the
			// partition at stride n is exactly those with First%n == 0.
			if m.First%n == 0 {
				for _, g := range m.GPUs() {
					covered[g]++
				}
			}
		}
		for g := 0; g < c.NumGPUs(); g++ {
			if covered[g] != 1 {
				t.Fatalf("size-%d tiling covers GPU %d %d times", n, g, covered[g])
			}
		}
	}
}

func TestNewRejectsIllegal(t *testing.T) {
	if _, err := New(1, 2, 8); err == nil {
		t.Error("New(1,2,8) should fail: misaligned")
	}
	if m, err := New(0, 16, 8); err != nil || m.NumNodes() != 2 {
		t.Errorf("New(0,16,8) = %+v, %v", m, err)
	}
}
