// Package mesh implements the paper's device meshes: contiguous rectangles
// of GPUs on which a model function call executes. Following §4, a legal
// mesh either (a) covers one or more entire hosts, or (b) covers a
// consecutive, aligned slice of a single host whose size divides the number
// of devices per host. This guarantees that disjoint meshes can tile the
// cluster exactly, eliminating plans with permanently idle GPUs.
package mesh

import (
	"fmt"

	"realhf/internal/hardware"
)

// Mesh is a contiguous range of global GPU indices [First, First+Count)
// inside a cluster with M GPUs per node. The zero Mesh is empty.
type Mesh struct {
	First int // global index of the first GPU
	Count int // number of GPUs
	// M is fixed by the cluster geometry, which the cache's problem key
	// already covers; two assignments on the same cluster cannot differ
	// only in M.
	//lint:realvet fieldcover -- cluster geometry; covered by the problem key, not the assignment fingerprint
	M int // GPUs per node of the owning cluster
}

// New builds a mesh and validates it against the §4 placement rule.
func New(first, count, gpusPerNode int) (Mesh, error) {
	m := Mesh{First: first, Count: count, M: gpusPerNode}
	if err := m.Validate(); err != nil {
		return Mesh{}, err
	}
	return m, nil
}

// Validate checks the §4 legality rule.
func (m Mesh) Validate() error {
	if m.M <= 0 {
		return fmt.Errorf("mesh: gpusPerNode %d invalid", m.M)
	}
	if m.Count <= 0 || m.First < 0 {
		return fmt.Errorf("mesh: range [%d,+%d) invalid", m.First, m.Count)
	}
	if m.Count >= m.M {
		// Whole-host mesh: k full nodes, aligned to a node boundary.
		if m.Count%m.M != 0 {
			return fmt.Errorf("mesh: multi-node mesh of %d GPUs is not a whole number of %d-GPU nodes", m.Count, m.M)
		}
		if m.First%m.M != 0 {
			return fmt.Errorf("mesh: multi-node mesh must start on a node boundary (first=%d, M=%d)", m.First, m.M)
		}
		return nil
	}
	// Sub-node mesh: size divides M and the slice is aligned to its size,
	// so that equal slices tile the host.
	if m.M%m.Count != 0 {
		return fmt.Errorf("mesh: sub-node mesh of %d GPUs does not divide node size %d", m.Count, m.M)
	}
	if m.First%m.Count != 0 {
		return fmt.Errorf("mesh: sub-node mesh must be aligned to its size (first=%d, count=%d)", m.First, m.Count)
	}
	if m.First/m.M != (m.First+m.Count-1)/m.M {
		return fmt.Errorf("mesh: sub-node mesh crosses a node boundary")
	}
	return nil
}

// NumGPUs returns the device count of the mesh.
func (m Mesh) NumGPUs() int { return m.Count }

// NumNodes returns how many distinct hosts the mesh touches.
func (m Mesh) NumNodes() int {
	if m.Count == 0 {
		return 0
	}
	firstNode := m.First / m.M
	lastNode := (m.First + m.Count - 1) / m.M
	return lastNode - firstNode + 1
}

// FirstNode returns the host index of the first GPU.
func (m Mesh) FirstNode() int { return m.First / m.M }

// CrossNode reports whether the mesh spans more than one host.
func (m Mesh) CrossNode() bool { return m.NumNodes() > 1 }

// Contains reports whether a global GPU index belongs to the mesh.
func (m Mesh) Contains(gpu int) bool {
	return gpu >= m.First && gpu < m.First+m.Count
}

// Overlaps reports whether two meshes share any GPU. Meshes are contiguous
// index ranges, so this is interval intersection.
func (m Mesh) Overlaps(o Mesh) bool {
	return m.First < o.First+o.Count && o.First < m.First+m.Count
}

// GPUs returns the global GPU indices of the mesh in order.
func (m Mesh) GPUs() []int {
	g := make([]int, m.Count)
	for i := range g {
		g[i] = m.First + i
	}
	return g
}

// Equal reports whether two meshes denote the same device range.
func (m Mesh) Equal(o Mesh) bool { return m.First == o.First && m.Count == o.Count && m.M == o.M }

// String renders the mesh in the paper's host-list style, e.g.
// "trainer[01-04]" for whole-node meshes or "trainer01:g2-3" for slices.
func (m Mesh) String() string {
	if m.Count >= m.M {
		first := m.FirstNode() + 1
		last := first + m.NumNodes() - 1
		if first == last {
			return fmt.Sprintf("trainer%02d", first)
		}
		return fmt.Sprintf("trainer[%02d-%02d]", first, last)
	}
	node := m.FirstNode() + 1
	g0 := m.First % m.M
	return fmt.Sprintf("trainer%02d:g%d-%d", node, g0, g0+m.Count-1)
}

// Enumerate returns every legal mesh of the cluster: all aligned power-of-two
// sub-node slices and all spans of consecutive whole nodes.
func Enumerate(c hardware.Cluster) []Mesh {
	var out []Mesh
	M := c.GPUsPerNode
	// Sub-node slices: sizes that divide M, aligned.
	for size := 1; size < M; size++ {
		if M%size != 0 {
			continue
		}
		for node := 0; node < c.Nodes; node++ {
			for off := 0; off+size <= M; off += size {
				out = append(out, Mesh{First: node*M + off, Count: size, M: M})
			}
		}
	}
	// Whole-node spans of any consecutive length.
	for span := 1; span <= c.Nodes; span++ {
		for node := 0; node+span <= c.Nodes; node++ {
			out = append(out, Mesh{First: node * M, Count: span * M, M: M})
		}
	}
	return out
}

// EnumerateSized returns every legal mesh with exactly n GPUs.
func EnumerateSized(c hardware.Cluster, n int) []Mesh {
	var out []Mesh
	for _, m := range Enumerate(c) {
		if m.Count == n {
			out = append(out, m)
		}
	}
	return out
}

// Full returns the mesh covering the entire cluster.
func Full(c hardware.Cluster) Mesh {
	return Mesh{First: 0, Count: c.NumGPUs(), M: c.GPUsPerNode}
}

// Sizes returns the distinct legal mesh sizes of the cluster in ascending
// order (1, 2, ..., M, 2M, ..., N·M for M a power of two).
func Sizes(c hardware.Cluster) []int {
	var out []int
	for size := 1; size < c.GPUsPerNode; size++ {
		if c.GPUsPerNode%size == 0 {
			out = append(out, size)
		}
	}
	for span := 1; span <= c.Nodes; span++ {
		out = append(out, span*c.GPUsPerNode)
	}
	return out
}
