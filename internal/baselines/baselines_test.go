package baselines

import (
	"testing"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/model"
)

func setup(t *testing.T, nodes int, actor, critic model.Config) (hardware.Cluster, *dfg.Graph, map[dfg.Role]core.ModelSpec, *estimator.Estimator) {
	t.Helper()
	hw := hardware.DefaultCluster(nodes)
	g := dfg.BuildPPO(dfg.Spec{Batch: 512, PromptLen: 1024, GenLen: 1024, Iterations: 1})
	models := core.PPOModels(actor, critic)
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range models {
		costers[role] = gpumodel.NewOracle(hw, ms.Cfg)
	}
	return hw, g, models, estimator.New(hw, costers)
}

func TestHeuristicMatchesPaperTable3(t *testing.T) {
	// 70B on 16 nodes: the pre-training heuristic must select the Table 3
	// strategy (dp=4, tp=8, pp=4).
	hw, g, models, _ := setup(t, 16, model.LLaMA70B, model.LLaMA7B)
	p, err := BuildHeuristic(hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Assign["ActorTrain"].Strategy
	if st.TP != 8 || st.PP != 4 || st.DP != 4 {
		t.Errorf("70B heuristic strategy = %v, want (dp=4,tp=8,pp=4) as in Table 3", st)
	}
}

func TestHeuristicMatchesPaperTable5(t *testing.T) {
	// 7B on 2 nodes: Table 5's heuristic is (dp=2, tp=8, pp=1).
	hw, g, models, _ := setup(t, 2, model.LLaMA7B, model.LLaMA7B)
	p, err := BuildHeuristic(hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Assign["ActorTrain"].Strategy
	if st.TP != 8 || st.PP != 1 || st.DP != 2 {
		t.Errorf("7B heuristic strategy = %v, want (dp=2,tp=8,pp=1) as in Table 5", st)
	}
}

func TestAllBaselinesProduceValidPlans(t *testing.T) {
	hw, g, models, e := setup(t, 4, model.LLaMA13B, model.LLaMA7B)
	for _, sys := range []System{Heuristic, DeepSpeed, OpenRLHF, NeMoAligner} {
		p, err := Build(sys, hw, g, models)
		if err != nil {
			t.Errorf("%s: %v", sys, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s plan invalid: %v", sys, err)
		}
		if _, err := e.Evaluate(p); err != nil {
			t.Errorf("%s plan unevaluable: %v", sys, err)
		}
	}
}

func TestDeepSpeedChatUsesZeRO3AndHybridEngine(t *testing.T) {
	hw, g, models, _ := setup(t, 2, model.LLaMA7B, model.LLaMA7B)
	p, err := BuildDeepSpeedChat(hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Assign["ActorTrain"].Strategy; !st.ZeRO3 || st.DP != 16 {
		t.Errorf("DSChat training strategy = %v, want full-cluster ZeRO-3", st)
	}
	if st := p.Assign["ActorGen"].Strategy; st.ZeRO3 || st.TP != 8 {
		t.Errorf("DSChat generation strategy = %v, want HybridEngine TP=8", st)
	}
}

func TestDeepSpeedChatOOMsAtLargeScale(t *testing.T) {
	// Fig. 7's red crosses: DSChat cannot train 70B under our memory model.
	hw, g, models, e := setup(t, 16, model.LLaMA70B, model.LLaMA13B)
	p, err := BuildDeepSpeedChat(hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Skip("70B ZeRO-3 unexpectedly fits; memory model changed")
	}
}

func TestOpenRLHFGroupsAreDisjoint(t *testing.T) {
	hw, g, models, _ := setup(t, 4, model.LLaMA13B, model.LLaMA7B)
	p, err := BuildOpenRLHF(hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	gen := p.Assign["ActorGen"].Mesh
	train := p.Assign["ActorTrain"].Mesh
	crit := p.Assign["CriticTrain"].Mesh
	if gen.Overlaps(train) || gen.Overlaps(crit) || train.Overlaps(crit) {
		t.Error("OpenRLHF groups must be pairwise disjoint")
	}
	if !p.Assign["ActorTrain"].Strategy.ZeRO3 {
		t.Error("OpenRLHF trains with DeepSpeed ZeRO-3")
	}
	// Actor and critic training may overlap in time (disjoint groups), which
	// is OpenRLHF's one concurrency win.
	if p.Assign["RefInf"].Mesh.Overlaps(crit) {
		t.Error("ref model belongs to the actor group")
	}
}

func TestNeMoAlignerColocatesActorTrainAndGen(t *testing.T) {
	hw, g, models, _ := setup(t, 4, model.LLaMA13B, model.LLaMA7B)
	p, err := BuildNeMoAligner(hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	gen := p.Assign["ActorGen"].Mesh
	train := p.Assign["ActorTrain"].Mesh
	if !gen.Equal(train) {
		t.Errorf("NeMo-Aligner colocates generation (%v) and training (%v)", gen, train)
	}
	if gen.Overlaps(p.Assign["CriticTrain"].Mesh) {
		t.Error("critic group must be disjoint from the actor group")
	}
}

func TestVeRLPicksBestPlacement(t *testing.T) {
	hw, g, models, e := setup(t, 2, model.LLaMA7B, model.LLaMA7B)
	p, err := BuildVeRL(e, hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := e.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{Heuristic, DeepSpeed, OpenRLHF, NeMoAligner} {
		bp, err := Build(sys, hw, g, models)
		if err != nil {
			continue
		}
		bres, err := e.Evaluate(bp)
		if err != nil {
			continue
		}
		if vres.Cost > bres.Cost*1.0001 {
			t.Errorf("veRL (%.2f) must be at least as good as %s (%.2f)", vres.Cost, sys, bres.Cost)
		}
	}
}

func TestHeuristicBeatsNaiveBaselinesAt70B(t *testing.T) {
	// At 70B scale the symmetric Megatron heuristic should beat OpenRLHF's
	// static three-way split (which idles half the cluster during training).
	hw, g, models, e := setup(t, 16, model.LLaMA70B, model.LLaMA7B)
	_, hres, err := Evaluate(Heuristic, e, hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	_, ores, err := Evaluate(OpenRLHF, e, hw, g, models)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Cost >= ores.Cost {
		t.Errorf("heuristic (%.1fs) should beat OpenRLHF (%.1fs) at 70B", hres.Cost, ores.Cost)
	}
}

func TestEvaluateAllSystems(t *testing.T) {
	hw, g, models, e := setup(t, 2, model.LLaMA7B, model.LLaMA7B)
	for _, sys := range All() {
		_, res, err := Evaluate(sys, e, hw, g, models)
		if err != nil {
			t.Errorf("%s: %v", sys, err)
			continue
		}
		if res.TimeCost <= 0 {
			t.Errorf("%s: non-positive time", sys)
		}
	}
}
