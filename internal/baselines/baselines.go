// Package baselines encodes the placement and parallelization policies of
// the systems ReaL is compared against (paper §8.1 and Appendix D) as
// execution plans in our plan language:
//
//   - ReaL-Heuristic: pre-training-style symmetric 3D parallelism — intra-
//     node TP, inter-node PP, DP maximized within memory.
//   - DeepSpeed-Chat: symmetric ZeRO-3 data parallelism everywhere, with a
//     HybridEngine that reshards to TP for the generation task.
//   - OpenRLHF: three disjoint GPU groups (actor/ref, critic/reward, vLLM
//     generation); groups idle while they wait on each other.
//   - NeMo-Aligner: two disjoint groups; actor training and generation are
//     colocated on the larger group, critic and reward on the smaller.
//   - veRL (HybridFlow): supports colocated and split placements subsuming
//     the above; modeled as the best of the other baselines per setting.
package baselines

import (
	"fmt"
	"math"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/hardware"
	"realhf/internal/memory"
	"realhf/internal/mesh"
	"realhf/internal/parallel"
)

// System names the baseline builders.
type System string

// The compared systems of Fig. 7.
const (
	Heuristic   System = "real-heuristic"
	DeepSpeed   System = "dschat"
	OpenRLHF    System = "openrlhf"
	NeMoAligner System = "nemo-aligner"
	VeRL        System = "verl"
)

// All lists the baseline systems in the order Fig. 7 plots them.
func All() []System {
	return []System{DeepSpeed, OpenRLHF, NeMoAligner, VeRL, Heuristic}
}

// maxDPStrategy returns the symmetric 3D strategy for n GPUs that keeps TP
// within a node and maximizes DP subject to the trainable models fitting in
// device memory — the paper's REAL-Heuristic rule.
func maxDPStrategy(hw hardware.Cluster, n int, models []core.ModelSpec, batch int) (parallel.Strategy, error) {
	tp := hw.GPUsPerNode
	if tp > n {
		tp = n
	}
	maxLayers := math.MaxInt32
	for _, ms := range models {
		if ms.Cfg.NumLayers < maxLayers {
			maxLayers = ms.Cfg.NumLayers
		}
	}
	rest := n / tp
	for pp := 1; pp <= rest && pp <= maxLayers; pp++ {
		if rest%pp != 0 {
			continue
		}
		dp := rest / pp
		st := parallel.Strategy{DP: dp, TP: tp, PP: pp, MicroBatches: 1}
		fits := true
		for _, ms := range models {
			if !ms.Trainable {
				continue
			}
			// The heuristic sizes memory the way Megatron pre-training
			// defaults do — optimizer states replicated across DP, with
			// headroom reserved for activations. For a 70B model on 128
			// GPUs this selects (dp=4, tp=8, pp=4), matching paper Table 3;
			// for 7B on 16 GPUs it selects (dp=2, tp=8, pp=1) as in
			// Table 5.
			static := memory.Static(ms.Params(), st, memory.StaticOpts{Trainable: true})
			if static > hw.GPU.MemoryBytes*3/4 {
				fits = false
				break
			}
		}
		if fits {
			mbs := 4
			if pp >= 4 {
				mbs = 8
			}
			if perDP := batch / dp; mbs > perDP {
				mbs = perDP
			}
			if mbs < 1 {
				mbs = 1
			}
			return st.WithMicroBatches(mbs), nil
		}
	}
	return parallel.Strategy{}, fmt.Errorf("baselines: no symmetric strategy fits %d GPUs", n)
}

// BuildHeuristic produces the REAL-Heuristic plan: one symmetric 3D strategy
// across the full cluster for every call.
func BuildHeuristic(hw hardware.Cluster, g *dfg.Graph, models map[dfg.Role]core.ModelSpec) (*core.Plan, error) {
	p := core.NewPlan(hw, g, models)
	full := mesh.Full(hw)
	var trainable []core.ModelSpec
	for _, ms := range models {
		if ms.Trainable {
			trainable = append(trainable, ms)
		}
	}
	batch := minTrainBatch(g)
	st, err := maxDPStrategy(hw, hw.NumGPUs(), trainable, batch)
	if err != nil {
		return nil, err
	}
	for _, name := range p.CallNames() {
		p.Assign[name] = core.Assignment{Mesh: full, Strategy: st}
	}
	p = fitMemory(p)
	return p, p.Validate()
}

// minTrainBatch returns the smallest per-update batch among the graph's
// calls (train calls divide the global batch into PPO mini-batches), so a
// shared symmetric strategy divides every call's data evenly.
func minTrainBatch(g *dfg.Graph) int {
	min := math.MaxInt32
	for _, n := range g.Nodes {
		b := n.Work.Batch
		if n.Type == dfg.Train && n.Work.MiniBatches > 1 {
			b /= n.Work.MiniBatches
		}
		if b < min {
			min = b
		}
	}
	if min == math.MaxInt32 {
		return 1
	}
	return min
}

// BuildDeepSpeedChat produces the DeepSpeed-Chat plan: ZeRO-3 DP across the
// whole cluster for training and inference; the HybridEngine reshards the
// actor to intra-node TP for generation.
func BuildDeepSpeedChat(hw hardware.Cluster, g *dfg.Graph, models map[dfg.Role]core.ModelSpec) (*core.Plan, error) {
	p := core.NewPlan(hw, g, models)
	full := mesh.Full(hw)
	n := hw.NumGPUs()
	zero3 := parallel.Strategy{DP: n, TP: 1, PP: 1, MicroBatches: 1, ZeRO3: true}
	tp := hw.GPUsPerNode
	if tp > n {
		tp = n
	}
	hybrid := parallel.Strategy{DP: n / tp, TP: tp, PP: 1, MicroBatches: 1}
	for _, node := range g.Nodes {
		if _, ok := p.Assign[node.Name]; ok {
			continue
		}
		st := zero3
		if node.Type == dfg.Generate {
			st = hybrid
		}
		batch := node.Work.Batch
		if node.Type == dfg.Train && node.Work.MiniBatches > 1 {
			batch /= node.Work.MiniBatches
		}
		st = fitMicroBatches(st, batch)
		p.Assign[node.Name] = core.Assignment{Mesh: full, Strategy: st}
	}
	p = fitMemory(p)
	return p, p.Validate()
}

// fitMicroBatches clamps the micro-batch count to the per-rank batch share.
func fitMicroBatches(st parallel.Strategy, batch int) parallel.Strategy {
	perDP := (batch + st.DP - 1) / st.DP
	if perDP > 0 && st.MicroBatches > perDP {
		st.MicroBatches = perDP
	}
	if st.MicroBatches < 1 {
		st.MicroBatches = 1
	}
	return st
}

// fitMemory post-processes a baseline plan the way real systems handle
// activation pressure: it doubles a call's micro-batch count until the
// call's active memory fits next to the static allocations on its devices
// (gradient accumulation / sequential micro-batching). Calls that still do
// not fit are left as-is and will OOM at runtime, which is the paper's
// red-cross outcome.
func fitMemory(p *core.Plan) *core.Plan {
	static := estimator.StaticPerGPU(p)
	cap := p.Cluster.GPU.MemoryBytes
	seen := map[string]bool{}
	for _, node := range p.Graph.Nodes {
		if seen[node.Name] {
			continue
		}
		seen[node.Name] = true
		a := p.Assign[node.Name]
		var maxStatic int64
		for gpu := a.Mesh.First; gpu < a.Mesh.First+a.Mesh.Count; gpu++ {
			if static[gpu] > maxStatic {
				maxStatic = static[gpu]
			}
		}
		batch := node.Work.Batch
		if node.Type == dfg.Train && node.Work.MiniBatches > 1 {
			batch /= node.Work.MiniBatches
		}
		perDP := (batch + a.Strategy.DP - 1) / a.Strategy.DP
		for estimator.CallActiveBytes(p, node)+maxStatic > cap &&
			a.Strategy.MicroBatches*2 <= perDP && a.Strategy.MicroBatches < 256 {
			a.Strategy.MicroBatches *= 2
			p.Assign[node.Name] = a
		}
	}
	return p
}

// groupMeshes splits the cluster into consecutive whole-node groups with the
// given GPU counts (which must sum to the cluster size).
func groupMeshes(hw hardware.Cluster, counts ...int) ([]mesh.Mesh, error) {
	var out []mesh.Mesh
	first := 0
	for _, c := range counts {
		m, err := mesh.New(first, c, hw.GPUsPerNode)
		if err != nil {
			return nil, fmt.Errorf("baselines: group split %v: %w", counts, err)
		}
		out = append(out, m)
		first += c
	}
	if first != hw.NumGPUs() {
		return nil, fmt.Errorf("baselines: groups %v do not cover %d GPUs", counts, hw.NumGPUs())
	}
	return out, nil
}

// BuildOpenRLHF produces the OpenRLHF plan: the cluster splits into a vLLM
// generation group (half), an actor/ref group (quarter) and a critic/reward
// group (quarter). Training uses ZeRO-3 (DeepSpeed backend); generation uses
// intra-node TP (vLLM). The groups never share devices, so each idles while
// the others work — the Fig. 1 (middle) pattern.
func BuildOpenRLHF(hw hardware.Cluster, g *dfg.Graph, models map[dfg.Role]core.ModelSpec) (*core.Plan, error) {
	n := hw.NumGPUs()
	if n < 4 {
		return nil, fmt.Errorf("baselines: OpenRLHF needs at least 4 GPUs, have %d", n)
	}
	genN, actorN := n/2, n/4
	criticN := n - genN - actorN
	meshes, err := groupMeshes(hw, genN, actorN, criticN)
	if err != nil {
		return nil, err
	}
	genMesh, actorMesh, criticMesh := meshes[0], meshes[1], meshes[2]

	p := core.NewPlan(hw, g, models)
	for _, node := range g.Nodes {
		if _, ok := p.Assign[node.Name]; ok {
			continue
		}
		var m mesh.Mesh
		var st parallel.Strategy
		batch := node.Work.Batch
		if node.Type == dfg.Train && node.Work.MiniBatches > 1 {
			batch /= node.Work.MiniBatches
		}
		switch {
		case node.Type == dfg.Generate:
			m = genMesh
			tp := hw.GPUsPerNode
			if tp > m.NumGPUs() {
				tp = m.NumGPUs()
			}
			st = parallel.Strategy{DP: m.NumGPUs() / tp, TP: tp, PP: 1, MicroBatches: 1}
		case node.Role == dfg.Actor || node.Role == dfg.Ref:
			m = actorMesh
			st = parallel.Strategy{DP: m.NumGPUs(), TP: 1, PP: 1, MicroBatches: 1, ZeRO3: true}
		default:
			m = criticMesh
			st = parallel.Strategy{DP: m.NumGPUs(), TP: 1, PP: 1, MicroBatches: 1, ZeRO3: true}
		}
		st = fitMicroBatches(st, batch)
		p.Assign[node.Name] = core.Assignment{Mesh: m, Strategy: st}
	}
	p = fitMemory(p)
	return p, p.Validate()
}

// BuildNeMoAligner produces the NeMo-Aligner plan: two disjoint groups; the
// larger colocates actor training and generation (Megatron 3D + TRT-LLM
// resharding), the smaller holds critic and reward.
func BuildNeMoAligner(hw hardware.Cluster, g *dfg.Graph, models map[dfg.Role]core.ModelSpec) (*core.Plan, error) {
	n := hw.NumGPUs()
	if n < 2 {
		return nil, fmt.Errorf("baselines: NeMo-Aligner needs at least 2 GPUs")
	}
	actorN := n * 3 / 4
	if actorN == 0 || actorN%hw.GPUsPerNode != 0 && n > hw.GPUsPerNode {
		actorN = n / 2
	}
	if actorN < 1 {
		actorN = 1
	}
	meshes, err := groupMeshes(hw, actorN, n-actorN)
	if err != nil {
		// Fall back to a half/half split on node boundaries.
		meshes, err = groupMeshes(hw, n/2, n-n/2)
		if err != nil {
			return nil, err
		}
	}
	actorMesh, criticMesh := meshes[0], meshes[1]

	p := core.NewPlan(hw, g, models)
	for _, node := range g.Nodes {
		if _, ok := p.Assign[node.Name]; ok {
			continue
		}
		m := criticMesh
		if node.Role == dfg.Actor || node.Role == dfg.Ref {
			m = actorMesh
		}
		batch := node.Work.Batch
		if node.Type == dfg.Train && node.Work.MiniBatches > 1 {
			batch /= node.Work.MiniBatches
		}
		ms := models[node.Role]
		st, err := maxDPStrategy(hw, m.NumGPUs(), []core.ModelSpec{ms}, batch)
		if err != nil {
			return nil, err
		}
		if node.Type == dfg.Generate {
			// TRT-LLM reshards to pure TP within the node for generation.
			tp := hw.GPUsPerNode
			if tp > m.NumGPUs() {
				tp = m.NumGPUs()
			}
			st = parallel.Strategy{DP: m.NumGPUs() / tp, TP: tp, PP: 1, MicroBatches: 1}
			st = fitMicroBatches(st, batch)
		}
		p.Assign[node.Name] = core.Assignment{Mesh: m, Strategy: st}
	}
	p = fitMemory(p)
	return p, p.Validate()
}

// Build constructs the named baseline plan.
func Build(sys System, hw hardware.Cluster, g *dfg.Graph, models map[dfg.Role]core.ModelSpec) (*core.Plan, error) {
	switch sys {
	case Heuristic:
		return BuildHeuristic(hw, g, models)
	case DeepSpeed:
		return BuildDeepSpeedChat(hw, g, models)
	case OpenRLHF:
		return BuildOpenRLHF(hw, g, models)
	case NeMoAligner:
		return BuildNeMoAligner(hw, g, models)
	case VeRL:
		return nil, fmt.Errorf("baselines: veRL requires an estimator; use BuildVeRL")
	}
	return nil, fmt.Errorf("baselines: unknown system %q", sys)
}

// BuildVeRL models veRL's flexible placement: it evaluates the colocated and
// split placements the other baselines embody and returns the best one.
func BuildVeRL(e *estimator.Estimator, hw hardware.Cluster, g *dfg.Graph, models map[dfg.Role]core.ModelSpec) (*core.Plan, error) {
	var best *core.Plan
	bestCost := math.Inf(1)
	for _, sys := range []System{Heuristic, DeepSpeed, OpenRLHF, NeMoAligner} {
		p, err := Build(sys, hw, g, models)
		if err != nil {
			continue
		}
		res, err := e.Evaluate(p)
		if err != nil {
			continue
		}
		if res.Cost < bestCost {
			best, bestCost = p, res.Cost
		}
	}
	if best == nil {
		return nil, fmt.Errorf("baselines: no veRL placement is feasible")
	}
	return best, nil
}

// Evaluate builds and estimates a baseline in one step, returning the plan
// and its estimate. OOM plans are returned with their penalized cost — the
// caller decides whether to plot them as failures (the paper's red crosses).
func Evaluate(sys System, e *estimator.Estimator, hw hardware.Cluster, g *dfg.Graph, models map[dfg.Role]core.ModelSpec) (*core.Plan, *estimator.Result, error) {
	var p *core.Plan
	var err error
	if sys == VeRL {
		p, err = BuildVeRL(e, hw, g, models)
	} else {
		p, err = Build(sys, hw, g, models)
	}
	if err != nil {
		return nil, nil, err
	}
	res, err := e.Evaluate(p)
	if err != nil {
		return nil, nil, err
	}
	return p, res, nil
}
