// Package serve is the plan service: a multi-tenant HTTP/JSON frontend over
// a shared realhf.Planner. Identical in-flight requests are coalesced via
// singleflight on the canonical config fingerprint (one solve fans out to
// every waiter), cross-tenant plan and cost caches are shared while
// per-tenant calibration stays isolated under its calibration key, and a
// bounded admission queue applies backpressure (429 + Retry-After) so the
// server never queues unboundedly. Server is the embeddable core behind
// cmd/realserve; Client is the typed counterpart that maps HTTP statuses
// back onto the realhf error taxonomy.
package serve

import (
	"encoding/json"

	"realhf"
)

// Wire paths of the HTTP API.
const (
	// PathPlan accepts POST PlanRequest and answers PlanResponse.
	PathPlan = "/v1/plan"
	// PathStats answers GET with StatsResponse.
	PathStats = "/v1/stats"
	// PathHealth answers GET with 200 while serving and 503 while draining.
	PathHealth = "/v1/healthz"
)

// PlanRequest is the body of POST /v1/plan.
type PlanRequest struct {
	// Config is the experiment to plan, in the canonical realhf wire codec.
	// Zero Nodes/GPUsPerNode inherit the server session's cluster defaults.
	Config realhf.ExperimentConfig `json:"config"`

	// Algo optionally replaces an empty Config.RPCs with a workflow preset
	// ("ppo", "dpo", "grpo", "remax") over ActorType/CriticType — the curl
	// shorthand for the realhf.AlgoRPCs presets.
	Algo       string `json:"algo,omitempty"`
	ActorType  string `json:"actor_type,omitempty"`
	CriticType string `json:"critic_type,omitempty"`

	// Tenant optionally names the requesting tenant. It is observability
	// metadata only: isolation is decided by Calibration content, never by
	// name, so two tenants asking for the same uncalibrated plan share one
	// solve and one cache entry.
	Tenant string `json:"tenant,omitempty"`
	// Calibration layers the tenant's per-call duration multipliers
	// (observed/predicted, e.g. exported from a Trainer campaign) over the
	// pure cost model. Calibrated requests join the coalescing and cache
	// keys through the calibration fingerprint, so they can never poison —
	// or be answered from — another tenant's differently-calibrated entries.
	Calibration map[string]float64 `json:"calibration,omitempty"`
	// DeadlineMillis bounds this request's wall time (capped by the
	// server's MaxDeadline; 0 means the server's DefaultDeadline). When
	// every waiter on a solve has disconnected or timed out, the solve
	// itself is canceled through the planner's context plumbing.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// Estimate is the wire form of the planner's prediction for the chosen
// plan.
type Estimate struct {
	// TimeCostSeconds is the predicted iteration makespan under the
	// config's cost semantics (serialized, or overlapped with
	// plan_for_overlap).
	TimeCostSeconds float64 `json:"time_cost_s"`
	// Cost is the search objective (TimeCostSeconds, OOM-penalized when
	// infeasible — though infeasible best plans are answered with 422, not
	// a response).
	Cost float64 `json:"cost"`
	// MaxMemBytes is the peak demand of the most loaded device.
	MaxMemBytes int64 `json:"max_mem_bytes"`
	// CallTimes are the predicted per-call durations (iteration 0).
	CallTimes map[string]float64 `json:"call_times,omitempty"`
}

// PlanResponse is the body of a 200 plan answer.
type PlanResponse struct {
	// Config is the canonical, defaults-applied config the server planned —
	// the request config after session defaults and preset expansion.
	// Replaying it (or any config with the same fingerprint) hits the plan
	// cache.
	Config realhf.ExperimentConfig `json:"config"`
	// Fingerprint identifies the chosen plan's assignments
	// (core.Plan.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Plan is the execution plan in the SavePlan serialization — feed it to
	// realhf.Planner.LoadExperimentBytes (or Client.Experiment) to rebuild
	// a runnable Experiment. Byte-identical to MarshalPlan of a direct
	// Planner.Plan for the same request.
	Plan json.RawMessage `json:"plan"`
	// Estimate is the planner's prediction for the plan.
	Estimate Estimate `json:"estimate"`
	// Cached reports the request was answered from the planner's plan cache
	// without a solve; Coalesced that it joined another request's in-flight
	// solve. Both false means this request's solve ran for it alone.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
}

// Error codes carried by ErrorResponse.Code.
const (
	CodeInvalidConfig    = "invalid_config"    // 400, realhf.ErrInvalidConfig
	CodeInfeasibleMemory = "infeasible_memory" // 422, realhf.ErrInfeasibleMemory
	CodeOverloaded       = "overloaded"        // 429, ErrOverloaded
	CodeCanceled         = "solve_canceled"    // 499, realhf.ErrSolveCanceled
	CodeDeadline         = "deadline_exceeded" // 504, context.DeadlineExceeded
	CodeDraining         = "draining"          // 503, ErrDraining
	CodeWorkerLost       = "worker_lost"       // 503, realhf.ErrWorkerLost
	CodeInternal         = "internal"          // 500
)

// ErrorResponse is the body of every non-200 answer.
type ErrorResponse struct {
	// Code is the machine-readable error class (Code* constants).
	Code string `json:"code"`
	// Error is the human-readable message from the error chain.
	Error string `json:"error"`
	// RetryAfterSeconds accompanies overload (429) and drain (503)
	// rejections: the server's estimate of when capacity frees up, also
	// sent as the Retry-After header.
	RetryAfterSeconds int64 `json:"retry_after_s,omitempty"`
}

// ServerStats snapshots the server's counters; /v1/stats returns it next to
// the shared planner's realhf.PlannerStats.
type ServerStats struct {
	// Requests counts decoded plan requests (rejected decodes count under
	// Invalid only).
	Requests int64 `json:"requests"`
	// CacheHits counts requests answered inline from the planner's plan
	// cache — the admission-free fast path.
	CacheHits int64 `json:"cache_hits"`
	// Solves counts singleflight flights opened (each runs at most one
	// planner solve); SolveErrors the flights that failed; SolvesCanceled
	// the flights canceled because every waiter disconnected or timed out.
	Solves         int64 `json:"solves"`
	SolveErrors    int64 `json:"solve_errors"`
	SolvesCanceled int64 `json:"solves_canceled"`
	// Coalesced counts requests that joined an already-in-flight identical
	// solve instead of starting their own.
	Coalesced int64 `json:"coalesced"`
	// Rejected counts 429 backpressure rejections; Invalid 400s;
	// Infeasible 422s.
	Rejected   int64 `json:"rejected"`
	Invalid    int64 `json:"invalid"`
	Infeasible int64 `json:"infeasible"`
	// InFlight is the current number of open flights (queued + solving);
	// Queued the flights waiting for a solve slot; QueueHighWater the
	// largest Queued ever observed (bounded by QueueDepth by construction).
	InFlight       int64 `json:"in_flight"`
	Queued         int64 `json:"queued"`
	QueueHighWater int64 `json:"queue_high_water"`
	// Draining reports a shutdown in progress: new requests are rejected
	// with 503 while in-flight solves finish.
	Draining bool `json:"draining"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Server  ServerStats         `json:"server"`
	Planner realhf.PlannerStats `json:"planner"`
}
