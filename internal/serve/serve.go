package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"realhf"
	"realhf/internal/estimator"
)

// StatusClientClosedRequest is the non-standard 499 status (after nginx)
// the server answers when a solve was abandoned because its waiters
// disconnected — there is no standard code for "the client hung up", and
// 499 is what fleet dashboards already aggregate.
const StatusClientClosedRequest = 499

// maxRequestBytes bounds a plan request body; a config is a few KB, so 1
// MiB is generous without letting a client balloon server memory.
const maxRequestBytes = 1 << 20

// Config configures a Server.
type Config struct {
	// Planner is the shared planning session every request routes through.
	// Its plan and cost caches are the cross-tenant shared state; its
	// calibration keying is the per-tenant isolation. Required.
	Planner *realhf.Planner

	// MaxConcurrentSolves bounds planner solves running at once (default
	// 2). Each solve may itself be multi-chain (SearchParallelism), so this
	// is deliberately small.
	MaxConcurrentSolves int
	// QueueDepth bounds how many admitted solves may wait for a slot
	// (default 16). Beyond it the server answers 429 with Retry-After —
	// backpressure instead of an unbounded queue.
	QueueDepth int
	// DefaultDeadline bounds requests that carry no deadline_ms (default
	// 60s); MaxDeadline caps client-supplied deadlines (default 5m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentSolves <= 0 {
		c.MaxConcurrentSolves = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	return c
}

// flight is one in-flight solve shared by every request whose coalescing
// key matches: the leader's goroutine runs the solve, waiters select on
// done, and the last waiter to leave cancels ctx so an abandoned solve
// stops burning CPU mid-search.
type flight struct {
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// exp/err are written once by runFlight before done closes; after that
	// they are read-only (Experiment marshaling is concurrency-safe for
	// readers).
	exp *realhf.Experiment
	err error

	// waiters is guarded by the server mutex.
	waiters int
}

// Server is the embeddable plan service core: an http.Handler speaking the
// wire types over a shared Planner, with singleflight coalescing, bounded
// admission, and graceful drain. Create with New, expose via Handler, stop
// with Shutdown.
type Server struct {
	cfg     Config
	planner *realhf.Planner
	mux     *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	flights  map[string]*flight
	queued   int64 // flights waiting for a solve slot
	draining bool

	inflight sync.WaitGroup // open flights

	sem chan struct{} // solve-concurrency tokens

	requests, cacheHits, solves         atomic.Int64
	solveErrors, solvesCanceled         atomic.Int64
	coalesced, rejected                 atomic.Int64
	invalid, infeasible, queueHighWater atomic.Int64
	ewmaSolveSecs                       atomic.Uint64 // float64 bits

	// hookBeforeSolve, when set (tests only), runs on the flight goroutine
	// after the solve slot is acquired and counted, immediately before
	// Planner.Plan — a deterministic window in which waiters can pile onto
	// the flight or abandon it.
	hookBeforeSolve func(key string)
	// hookWaiterJoined, when set (tests only), runs under the server mutex
	// each time a request coalesces onto an existing flight, with the
	// flight's count of joined waiters (excluding the leader).
	hookWaiterJoined func(joined int)
}

// New creates a Server over cfg.Planner.
func New(cfg Config) (*Server, error) {
	if cfg.Planner == nil {
		return nil, fmt.Errorf("serve: Config.Planner is required: %w", realhf.ErrInvalidConfig)
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		planner:    cfg.Planner,
		baseCtx:    ctx,
		baseCancel: cancel,
		flights:    map[string]*flight{},
		sem:        make(chan struct{}, cfg.MaxConcurrentSolves),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(PathPlan, s.handlePlan)
	s.mux.HandleFunc(PathStats, s.handleStats)
	s.mux.HandleFunc(PathHealth, s.handleHealth)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: new requests are rejected with 503 while
// in-flight solves run to completion. If ctx expires first, the remaining
// solves are force-canceled (their waiters get 499) and Shutdown returns
// ctx's error once they have unwound.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	inFlight := int64(len(s.flights))
	queued := s.queued
	draining := s.draining
	s.mu.Unlock()
	return ServerStats{
		Requests:       s.requests.Load(),
		CacheHits:      s.cacheHits.Load(),
		Solves:         s.solves.Load(),
		SolveErrors:    s.solveErrors.Load(),
		SolvesCanceled: s.solvesCanceled.Load(),
		Coalesced:      s.coalesced.Load(),
		Rejected:       s.rejected.Load(),
		Invalid:        s.invalid.Load(),
		Infeasible:     s.infeasible.Load(),
		InFlight:       inFlight,
		Queued:         queued,
		QueueHighWater: s.queueHighWater.Load(),
		Draining:       draining,
	}
}

// --- HTTP handlers ---

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, &ErrorResponse{
			Code: CodeInvalidConfig, Error: "POST required"})
		return
	}
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, &ErrorResponse{
			Code: CodeDraining, Error: "server is draining",
			RetryAfterSeconds: 1})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req PlanRequest
	if err := dec.Decode(&req); err != nil {
		s.invalid.Add(1)
		s.writeError(w, http.StatusBadRequest, &ErrorResponse{
			Code: CodeInvalidConfig, Error: "decode plan request: " + err.Error()})
		return
	}
	resp, status, errResp := s.plan(r.Context(), &req)
	if errResp != nil {
		s.writeError(w, status, errResp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, &ErrorResponse{
			Code: CodeInvalidConfig, Error: "GET required"})
		return
	}
	s.writeJSON(w, http.StatusOK, &StatsResponse{
		Server:  s.Stats(),
		Planner: s.planner.Stats(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, &ErrorResponse{
			Code: CodeDraining, Error: "server is draining"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// --- request flow ---

// plan answers one decoded request: preset expansion, canonicalization,
// cache fast path, then singleflight solve with admission control.
func (s *Server) plan(ctx context.Context, req *PlanRequest) (*PlanResponse, int, *ErrorResponse) {
	cfg := req.Config
	if len(cfg.RPCs) == 0 && req.Algo != "" {
		rpcs, err := realhf.AlgoRPCs(req.Algo, req.ActorType, req.CriticType)
		if err != nil {
			s.invalid.Add(1)
			return nil, http.StatusBadRequest, &ErrorResponse{Code: CodeInvalidConfig, Error: err.Error()}
		}
		cfg.RPCs = rpcs
	}
	for name, f := range req.Calibration {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			s.invalid.Add(1)
			return nil, http.StatusBadRequest, &ErrorResponse{
				Code:  CodeInvalidConfig,
				Error: fmt.Sprintf("calibration factor %q = %v must be a positive finite multiplier", name, f),
			}
		}
	}
	cfg = s.planner.Canonicalize(cfg)
	var opts []realhf.AutoOption
	if len(req.Calibration) > 0 {
		opts = append(opts, realhf.WithCalibrationFactors(req.Calibration))
	}
	s.requests.Add(1)

	// Per-request deadline: joins the request context, so a disconnect and
	// a timeout travel the same cancellation path into the solve.
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMillis > 0 {
		deadline = time.Duration(req.DeadlineMillis) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()

	// Fast path: an equivalent deterministic request solved before is
	// answered from the planner's plan cache without touching admission —
	// cached traffic never queues behind running solves.
	if exp, ok := s.planner.PlanCached(cfg, opts...); ok {
		s.cacheHits.Add(1)
		return s.respond(exp, false)
	}

	key := cfg.Fingerprint() + calibrationToken(req.Calibration)
	f, joined, errResp := s.joinFlight(key, cfg, opts)
	if errResp != nil {
		return nil, http.StatusTooManyRequests, errResp
	}
	select {
	case <-f.done:
		if f.err != nil {
			return s.flightError(ctx, f.err)
		}
		return s.respond(f.exp, joined)
	case <-ctx.Done():
		s.abandonFlight(f)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, http.StatusGatewayTimeout, &ErrorResponse{
				Code: CodeDeadline, Error: "plan request deadline exceeded"}
		}
		return nil, StatusClientClosedRequest, &ErrorResponse{
			Code: CodeCanceled, Error: "client closed request"}
	}
}

// joinFlight coalesces onto an existing flight for key or opens a new one,
// applying admission control to new flights. joined reports coalescing;
// a non-nil ErrorResponse is a 429 rejection.
func (s *Server) joinFlight(key string, cfg realhf.ExperimentConfig, opts []realhf.AutoOption) (*flight, bool, *ErrorResponse) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.flights[key]; ok {
		f.waiters++
		s.coalesced.Add(1)
		if s.hookWaiterJoined != nil {
			s.hookWaiterJoined(f.waiters - 1)
		}
		return f, true, nil
	}
	if s.queued >= int64(s.cfg.QueueDepth) {
		s.rejected.Add(1)
		retry := s.retryAfterLocked()
		return nil, false, &ErrorResponse{
			Code:              CodeOverloaded,
			Error:             fmt.Sprintf("admission queue full (%d solves waiting)", s.queued),
			RetryAfterSeconds: retry,
		}
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	f := &flight{ctx: ctx, cancel: cancel, done: make(chan struct{}), waiters: 1}
	s.flights[key] = f
	s.queued++
	if hw := s.queued; hw > s.queueHighWater.Load() {
		s.queueHighWater.Store(hw)
	}
	s.inflight.Add(1)
	go s.runFlight(f, key, cfg, opts)
	return f, false, nil
}

// abandonFlight deregisters one waiter; the last waiter out cancels the
// solve (the planner surfaces it as a wrapped ErrSolveCanceled, which
// runFlight counts as a canceled — not failed — solve).
func (s *Server) abandonFlight(f *flight) {
	s.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	s.mu.Unlock()
	if last {
		f.cancel()
	}
}

// runFlight is the flight goroutine: wait for a solve slot (bounded by the
// admission queue), run the shared solve, publish the result, and retire
// the flight so later identical requests hit the plan cache instead.
func (s *Server) runFlight(f *flight, key string, cfg realhf.ExperimentConfig, opts []realhf.AutoOption) {
	defer s.inflight.Done()
	acquired := false
	select {
	case s.sem <- struct{}{}:
		acquired = true
	case <-f.ctx.Done():
	}
	s.mu.Lock()
	s.queued--
	s.mu.Unlock()
	if acquired {
		s.solves.Add(1)
		if s.hookBeforeSolve != nil {
			s.hookBeforeSolve(key)
		}
		start := time.Now()
		f.exp, f.err = s.planner.Plan(f.ctx, cfg, opts...)
		if f.err == nil {
			s.observeSolveTime(time.Since(start))
		}
		<-s.sem
	} else {
		f.err = fmt.Errorf("serve: solve abandoned before it started: %w: %w",
			realhf.ErrSolveCanceled, f.ctx.Err())
	}
	if f.err != nil {
		if errors.Is(f.err, realhf.ErrSolveCanceled) {
			s.solvesCanceled.Add(1)
		} else {
			s.solveErrors.Add(1)
		}
	}
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
	f.cancel()
}

// respond converts a planned experiment into the wire response, mapping a
// memory-infeasible optimum to 422.
func (s *Server) respond(exp *realhf.Experiment, coalesced bool) (*PlanResponse, int, *ErrorResponse) {
	if err := exp.FeasibleMemory(); err != nil {
		s.infeasible.Add(1)
		return nil, http.StatusUnprocessableEntity, &ErrorResponse{
			Code: CodeInfeasibleMemory, Error: err.Error()}
	}
	planBytes, err := exp.MarshalPlan()
	if err != nil {
		s.solveErrors.Add(1)
		return nil, http.StatusInternalServerError, &ErrorResponse{
			Code: CodeInternal, Error: "marshal plan: " + err.Error()}
	}
	resp := &PlanResponse{
		Config:      exp.Config,
		Fingerprint: exp.Plan.Fingerprint(),
		Plan:        planBytes,
		Cached:      exp.Cached,
		Coalesced:   coalesced,
	}
	if est := exp.Estimate; est != nil {
		resp.Estimate = Estimate{
			TimeCostSeconds: est.TimeCost,
			Cost:            est.Cost,
			MaxMemBytes:     est.MaxMem,
			CallTimes:       est.CallTimes,
		}
	}
	return resp, http.StatusOK, nil
}

// flightError maps a failed shared solve onto a per-waiter HTTP error.
func (s *Server) flightError(ctx context.Context, err error) (*PlanResponse, int, *ErrorResponse) {
	switch {
	case errors.Is(err, realhf.ErrInvalidConfig):
		s.invalid.Add(1)
		return nil, http.StatusBadRequest, &ErrorResponse{Code: CodeInvalidConfig, Error: err.Error()}
	case errors.Is(err, realhf.ErrInfeasibleMemory):
		s.infeasible.Add(1)
		return nil, http.StatusUnprocessableEntity, &ErrorResponse{Code: CodeInfeasibleMemory, Error: err.Error()}
	case errors.Is(err, realhf.ErrSolveCanceled):
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, http.StatusGatewayTimeout, &ErrorResponse{Code: CodeDeadline, Error: err.Error()}
		}
		return nil, StatusClientClosedRequest, &ErrorResponse{Code: CodeCanceled, Error: err.Error()}
	case errors.Is(err, realhf.ErrWorkerLost):
		// An unrecoverable worker loss is a capacity problem, not a request
		// problem: 503 tells the caller to retry once capacity returns.
		return nil, http.StatusServiceUnavailable, &ErrorResponse{Code: CodeWorkerLost, Error: err.Error()}
	}
	return nil, http.StatusInternalServerError, &ErrorResponse{Code: CodeInternal, Error: err.Error()}
}

// --- helpers ---

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// observeSolveTime folds a completed solve's wall time into the EWMA behind
// Retry-After estimates.
func (s *Server) observeSolveTime(d time.Duration) {
	const alpha = 0.3
	for {
		oldBits := s.ewmaSolveSecs.Load()
		old := math.Float64frombits(oldBits)
		next := d.Seconds()
		if old > 0 {
			next = alpha*next + (1-alpha)*old
		}
		if s.ewmaSolveSecs.CompareAndSwap(oldBits, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterLocked estimates (under the server mutex) how long a rejected
// client should back off: the queue ahead of it times the average solve,
// divided across the solve slots.
func (s *Server) retryAfterLocked() int64 {
	ewma := math.Float64frombits(s.ewmaSolveSecs.Load())
	if ewma <= 0 {
		ewma = 1
	}
	secs := int64(math.Ceil(ewma * float64(s.queued+1) / float64(s.cfg.MaxConcurrentSolves)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// No SetIndent: re-indenting would rewrite the embedded raw plan bytes,
	// breaking the byte-identity contract with Experiment.MarshalPlan.
	_ = json.NewEncoder(w).Encode(v) // a failed write means the client is gone
}

func (s *Server) writeError(w http.ResponseWriter, status int, e *ErrorResponse) {
	if e.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(e.RetryAfterSeconds, 10))
	}
	s.writeJSON(w, status, e)
}

// calibrationToken extends the coalescing key with the calibration
// fingerprint, mirroring the planner's problem/plan-cache keying: identical
// factor sets (from any tenant) coalesce and share caches; different sets
// never do.
func calibrationToken(factors map[string]float64) string {
	if k := estimator.NewCalibration(factors).Key(); k != "" {
		return ";calib=" + k
	}
	return ""
}
