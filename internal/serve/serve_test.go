package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"realhf"
)

// testConfig mirrors the root package's small planning workload: 7B PPO on
// one node, short deterministic search. Seed is part of the fingerprint, so
// distinct seeds are distinct coalescing keys.
func testConfig(seed int64, steps int) realhf.ExperimentConfig {
	return realhf.ExperimentConfig{
		Nodes: 1, BatchSize: 64, PromptLen: 256, GenLen: 256,
		RPCs:        realhf.PPORPCs("llama7b", "llama7b-critic"),
		SearchSteps: steps, Seed: seed,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	if cfg.Planner == nil {
		cfg.Planner = realhf.NewPlanner(realhf.ClusterConfig{Nodes: 1})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, NewClient(hs.URL)
}

func waitFor(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", desc)
}

// TestCoalescingSingleSolve is the singleflight contract: K identical
// concurrent requests run exactly one planner solve, every waiter gets a
// 200, and each response's plan bytes are byte-identical to what a direct
// Planner.Plan on a fresh session returns for the same request.
func TestCoalescingSingleSolve(t *testing.T) {
	srv, _, client := newTestServer(t, Config{})
	release := make(chan struct{})
	srv.hookBeforeSolve = func(string) { <-release }

	const k = 6
	cfg := testConfig(3, 400)
	resps := make([]*PlanResponse, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = client.Plan(context.Background(), cfg, nil)
		}(i)
	}
	// The leader is blocked inside the solve hook; once the other k-1
	// requests have joined its flight, let it run.
	waitFor(t, "waiters to coalesce", func() bool { return srv.Stats().Coalesced == k-1 })
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.Solves != 1 {
		t.Errorf("%d identical requests ran %d solves, want exactly 1", k, st.Solves)
	}
	if st.Coalesced != k-1 || st.CacheHits != 0 || st.Requests != k {
		t.Errorf("stats = %+v, want coalesced=%d cacheHits=0 requests=%d", st, k-1, k)
	}
	leaders := 0
	for i, r := range resps {
		if !r.Coalesced && !r.Cached {
			leaders++
		}
		if r.Cached {
			t.Errorf("response %d claims a cache hit on a cold cache", i)
		}
		if r.Fingerprint != resps[0].Fingerprint {
			t.Errorf("response %d fingerprint %q != %q", i, r.Fingerprint, resps[0].Fingerprint)
		}
		if !bytes.Equal(r.Plan, resps[0].Plan) {
			t.Errorf("response %d plan bytes differ from response 0", i)
		}
	}
	if leaders != 1 {
		t.Errorf("%d responses claim to be the solving leader, want exactly 1", leaders)
	}

	// Byte-identical to a direct library call on an equivalent session.
	direct, err := realhf.NewPlanner(realhf.ClusterConfig{Nodes: 1}).Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	directBytes, err := direct.MarshalPlan()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(directBytes, resps[0].Plan) {
		t.Error("served plan bytes differ from a direct Planner.Plan of the same request")
	}

	// A replay is answered from the plan cache without another solve.
	replay, err := client.Plan(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Cached || replay.Coalesced {
		t.Errorf("replay: cached=%v coalesced=%v, want cached-only", replay.Cached, replay.Coalesced)
	}
	if got := srv.Stats().Solves; got != 1 {
		t.Errorf("replay ran a solve (total %d), want cache hit", got)
	}
	if !bytes.Equal(replay.Plan, resps[0].Plan) {
		t.Error("cached replay plan bytes differ from the solved plan")
	}
}

// TestTenantCalibrationIsolation: isolation follows calibration content,
// never tenant names. A calibrated request can neither be answered from an
// uncalibrated tenant's cache entry nor poison it, while two tenants with
// identical calibration share one entry.
func TestTenantCalibrationIsolation(t *testing.T) {
	srv, hs, client := newTestServer(t, Config{})
	ctx := context.Background()
	cfg := testConfig(3, 300)

	base, err := client.Plan(ctx, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	calib := map[string]float64{"actor/GENERATE": 2}
	calibrated, err := NewClient(hs.URL, WithTenant("team-a")).Plan(ctx, cfg, calib)
	if err != nil {
		t.Fatal(err)
	}
	if calibrated.Cached || calibrated.Coalesced {
		t.Fatalf("calibrated request answered from uncalibrated state: cached=%v coalesced=%v",
			calibrated.Cached, calibrated.Coalesced)
	}
	if got := srv.Stats().Solves; got != 2 {
		t.Fatalf("calibrated request must run its own solve: solves = %d, want 2", got)
	}

	// Same calibration content, different tenant name: shared cache entry.
	sameCalib, err := NewClient(hs.URL, WithTenant("team-b")).Plan(ctx, cfg, calib)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCalib.Cached {
		t.Error("identical calibration from another tenant must share the cache entry")
	}
	if !bytes.Equal(sameCalib.Plan, calibrated.Plan) {
		t.Error("shared calibrated entry returned different plan bytes")
	}

	// The calibrated solve must not have displaced the uncalibrated entry.
	baseAgain, err := NewClient(hs.URL, WithTenant("team-b")).Plan(ctx, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !baseAgain.Cached || baseAgain.Fingerprint != base.Fingerprint {
		t.Errorf("uncalibrated replay: cached=%v fingerprint match=%v, want cached original",
			baseAgain.Cached, baseAgain.Fingerprint == base.Fingerprint)
	}
	if got := srv.Stats().Solves; got != 2 {
		t.Errorf("replays ran solves: total %d, want 2", got)
	}
}

// TestClientDisconnectCancelsSolve: when a solve's only waiter hangs up
// mid-request, the solve itself is canceled through the planner's context
// plumbing instead of burning CPU to completion.
func TestClientDisconnectCancelsSolve(t *testing.T) {
	srv, _, client := newTestServer(t, Config{})
	started := make(chan struct{})
	srv.hookBeforeSolve = func(string) { close(started) }

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := client.Plan(ctx, testConfig(9, 10_000_000), nil)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled client got %v, want context.Canceled", err)
	}
	waitFor(t, "the abandoned solve to cancel", func() bool {
		return srv.Stats().SolvesCanceled == 1
	})
	st := srv.Stats()
	if st.Solves != 1 || st.SolveErrors != 0 {
		t.Errorf("stats = %+v, want 1 solve counted canceled, not failed", st)
	}
	waitFor(t, "the flight to retire", func() bool { return srv.Stats().InFlight == 0 })
}

// TestOverloadBackpressure: with one solve slot and a one-deep queue, a
// third distinct request is rejected with 429 + Retry-After instead of
// queueing unboundedly.
func TestOverloadBackpressure(t *testing.T) {
	srv, _, client := newTestServer(t, Config{MaxConcurrentSolves: 1, QueueDepth: 1})
	release := make(chan struct{})
	srv.hookBeforeSolve = func(string) { <-release }
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = client.Plan(ctx, testConfig(1, 300), nil) }()
	waitFor(t, "the first solve to occupy the slot", func() bool {
		st := srv.Stats()
		return st.Solves == 1 && st.Queued == 0
	})
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = client.Plan(ctx, testConfig(2, 300), nil) }()
	waitFor(t, "the second request to queue", func() bool { return srv.Stats().Queued == 1 })

	_, err := client.Plan(ctx, testConfig(3, 300), nil)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("overloaded request returned %v, want *ServerError", err)
	}
	if se.StatusCode != http.StatusTooManyRequests || !errors.Is(err, ErrOverloaded) {
		t.Errorf("got HTTP %d (%v), want 429 wrapping ErrOverloaded", se.StatusCode, err)
	}
	if se.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want at least 1s of backoff", se.RetryAfter)
	}

	close(release)
	wg.Wait()
	st := srv.Stats()
	if st.Rejected != 1 || st.QueueHighWater != 1 || st.Solves != 2 {
		t.Errorf("stats = %+v, want rejected=1 queueHighWater=1 solves=2", st)
	}
}

// TestGracefulDrain: Shutdown lets the in-flight solve finish and answer
// 200 while new plan and health requests are refused with 503/draining.
func TestGracefulDrain(t *testing.T) {
	srv, _, client := newTestServer(t, Config{})
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	srv.hookBeforeSolve = func(string) { once.Do(func() { close(started) }); <-release }
	ctx := context.Background()

	type result struct {
		resp *PlanResponse
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := client.Plan(ctx, testConfig(4, 300), nil)
		resCh <- result{resp, err}
	}()
	<-started

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	waitFor(t, "the server to start draining", func() bool { return srv.Stats().Draining })

	if _, err := client.Plan(ctx, testConfig(5, 300), nil); !errors.Is(err, ErrDraining) {
		t.Errorf("plan during drain returned %v, want ErrDraining", err)
	}
	if err := client.Health(ctx); !errors.Is(err, ErrDraining) {
		t.Errorf("health during drain returned %v, want ErrDraining", err)
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight request during drain: %v", r.err)
	}
	if r.resp.Fingerprint == "" || len(r.resp.Plan) == 0 {
		t.Error("in-flight request drained without a full response")
	}
}

// TestOffloadSearchOverTheWire: on a memory-constrained workload the
// default request 422s (no residency-fixed plan fits HBM) while the same
// config with offload_search set plans feasibly — the knob rides the
// canonical config codec end to end and the two requests never share a
// cache entry.
func TestOffloadSearchOverTheWire(t *testing.T) {
	_, _, client := newTestServer(t, Config{})
	ctx := context.Background()

	rpcs := realhf.PPORPCs("llama7b", "llama7b-critic")
	for i := range rpcs {
		switch rpcs[i].ModelName {
		case "ref":
			rpcs[i].ModelType = "llama34b"
		case "reward":
			rpcs[i].ModelType = "llama34b-critic"
		}
	}
	cfg := realhf.ExperimentConfig{
		Nodes: 1, GPUsPerNode: 4, BatchSize: 64, PromptLen: 256, GenLen: 256,
		MiniBatches: 8, RPCs: rpcs, SearchSteps: 400, Seed: 5,
	}

	if _, err := client.Plan(ctx, cfg, nil); !errors.Is(err, realhf.ErrInfeasibleMemory) {
		t.Fatalf("default request: %v, want 422 wrapping ErrInfeasibleMemory", err)
	}

	cfg.OffloadSearch = true
	resp, err := client.Plan(ctx, cfg, nil)
	if err != nil {
		t.Fatalf("offload-aware request: %v", err)
	}
	if resp.Estimate.Cost != resp.Estimate.TimeCostSeconds {
		t.Error("offload-aware response carries an OOM-penalized cost")
	}
	if !resp.Config.OffloadSearch {
		t.Error("canonical config in the response lost offload_search")
	}
	if len(resp.Plan) == 0 || resp.Fingerprint == "" {
		t.Error("offload-aware response missing plan payload")
	}
}

// TestErrorTaxonomyMapping: each class in the error taxonomy surfaces as
// its HTTP status and maps back onto the realhf sentinel through the typed
// client, with no string matching anywhere.
func TestErrorTaxonomyMapping(t *testing.T) {
	srv, hs, client := newTestServer(t, Config{})
	ctx := context.Background()

	status := func(err error) int {
		t.Helper()
		var se *ServerError
		if !errors.As(err, &se) {
			t.Fatalf("got %v, want *ServerError", err)
		}
		return se.StatusCode
	}

	// Malformed body and unknown config fields are strict-decode 400s.
	for _, body := range []string{`{nope`, `{"config":{"bogus_knob":1}}`} {
		resp, err := http.Post(hs.URL+PathPlan, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var wire ErrorResponse
		err = json.NewDecoder(resp.Body).Decode(&wire)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusBadRequest || wire.Code != CodeInvalidConfig {
			t.Errorf("body %q: HTTP %d code %q (decode err %v), want 400 %s",
				body, resp.StatusCode, wire.Code, err, CodeInvalidConfig)
		}
	}

	// Unknown algo preset.
	if _, err := client.Do(ctx, &PlanRequest{Algo: "alignprop"}); !errors.Is(err, realhf.ErrInvalidConfig) || status(err) != http.StatusBadRequest {
		t.Errorf("unknown algo: %v, want 400 wrapping ErrInvalidConfig", err)
	}
	// Non-positive calibration factor.
	if _, err := client.Plan(ctx, testConfig(6, 200), map[string]float64{"actor/GENERATE": -1}); !errors.Is(err, realhf.ErrInvalidConfig) {
		t.Errorf("negative calibration factor: %v, want ErrInvalidConfig", err)
	}

	// A 70B cast on one node has no memory-feasible plan: 422.
	oom := realhf.ExperimentConfig{
		Nodes: 1, BatchSize: 64, PromptLen: 256, GenLen: 256,
		RPCs:        realhf.PPORPCs("llama70b", "llama70b-critic"),
		SearchSteps: 100, Seed: 3, Solver: "greedy",
	}
	if _, err := client.Plan(ctx, oom, nil); !errors.Is(err, realhf.ErrInfeasibleMemory) || status(err) != http.StatusUnprocessableEntity {
		t.Errorf("infeasible cast: %v, want 422 wrapping ErrInfeasibleMemory", err)
	}

	// A request deadline that expires mid-solve is a 504, and the abandoned
	// solve is canceled.
	_, err := client.Do(ctx, &PlanRequest{Config: testConfig(11, 10_000_000), DeadlineMillis: 50})
	if !errors.Is(err, context.DeadlineExceeded) || status(err) != http.StatusGatewayTimeout {
		t.Errorf("expired deadline: %v, want 504 wrapping context.DeadlineExceeded", err)
	}
	waitFor(t, "the timed-out solve to cancel", func() bool {
		return srv.Stats().SolvesCanceled == 1
	})

	// Wrong method.
	resp, err := http.Get(hs.URL + PathPlan)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET %s: HTTP %d, want 405", PathPlan, resp.StatusCode)
	}

	st := srv.Stats()
	if st.Invalid < 4 || st.Infeasible != 1 {
		t.Errorf("stats = %+v, want >=4 invalid and exactly 1 infeasible", st)
	}
}

// TestStatsEndpoint: /v1/stats serves both counter families and the
// health endpoint answers 200 while serving.
func TestStatsEndpoint(t *testing.T) {
	_, _, client := newTestServer(t, Config{})
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	if _, err := client.Plan(ctx, testConfig(7, 200), nil); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server.Requests != 1 || stats.Server.Solves != 1 {
		t.Errorf("server stats = %+v, want 1 request and 1 solve", stats.Server)
	}
	if stats.Planner.PlanRequests != 1 {
		t.Errorf("planner stats = %+v, want the shared session's counters", stats.Planner)
	}
}

// TestFlightErrorTaxonomyTable: the sentinel→HTTP mapping, one row per
// taxonomy class, including the capacity class (ErrWorkerLost → 503) no
// plan request can organically produce, and the client's inverse mapping:
// unwrapping a ServerError carrying each code restores the sentinel a
// local call would have returned.
func TestFlightErrorTaxonomyTable(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{})
	ctx := context.Background()
	cases := []struct {
		name     string
		err      error
		status   int
		code     string
		sentinel error
	}{
		{"invalid config", fmt.Errorf("bad: %w", realhf.ErrInvalidConfig),
			http.StatusBadRequest, CodeInvalidConfig, realhf.ErrInvalidConfig},
		{"infeasible memory", fmt.Errorf("oom: %w", realhf.ErrInfeasibleMemory),
			http.StatusUnprocessableEntity, CodeInfeasibleMemory, realhf.ErrInfeasibleMemory},
		{"solve canceled", fmt.Errorf("gone: %w", realhf.ErrSolveCanceled),
			StatusClientClosedRequest, CodeCanceled, realhf.ErrSolveCanceled},
		{"worker lost", fmt.Errorf("campaign: gpu 3: %w", realhf.ErrWorkerLost),
			http.StatusServiceUnavailable, CodeWorkerLost, realhf.ErrWorkerLost},
		{"internal", errors.New("disk on fire"),
			http.StatusInternalServerError, CodeInternal, nil},
	}
	for _, tc := range cases {
		_, status, wire := srv.flightError(ctx, tc.err)
		if status != tc.status || wire == nil || wire.Code != tc.code {
			t.Errorf("%s: mapped to HTTP %d code %q, want %d %q", tc.name, status, wire.Code, tc.status, tc.code)
			continue
		}
		if tc.sentinel == nil {
			continue
		}
		se := &ServerError{StatusCode: status, Code: wire.Code, Message: wire.Error}
		if !errors.Is(se, tc.sentinel) {
			t.Errorf("%s: client does not unwrap code %q back to the sentinel", tc.name, wire.Code)
		}
	}
}
