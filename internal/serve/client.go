package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"realhf"
)

// Errors the client maps overload and drain rejections onto; the rest of
// the taxonomy maps back to the realhf sentinels (see ServerError.Unwrap).
var (
	// ErrOverloaded is a 429: the server's admission queue is full. Back
	// off for the ServerError's RetryAfter and retry.
	ErrOverloaded = errors.New("plan server overloaded")
	// ErrDraining is a 503: the server is shutting down gracefully.
	ErrDraining = errors.New("plan server draining")
)

// ServerError is a non-200 answer from the plan server, preserving the
// machine-readable code and mapping it back onto the realhf error taxonomy
// so callers use errors.Is exactly as they would against a local Planner.
type ServerError struct {
	// StatusCode is the HTTP status; Code the wire error class (Code*
	// constants); Message the human-readable chain from the server.
	StatusCode int
	Code       string
	Message    string
	// RetryAfter is the server's backoff hint on overload/drain rejections
	// (zero when it sent none).
	RetryAfter time.Duration
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("plan server: %s (%s, HTTP %d)", e.Message, e.Code, e.StatusCode)
}

// Unwrap maps the wire code onto the sentinel a local Planner call would
// have returned, so errors.Is(err, realhf.ErrInvalidConfig) etc. hold
// across the wire.
func (e *ServerError) Unwrap() error {
	switch e.Code {
	case CodeInvalidConfig:
		return realhf.ErrInvalidConfig
	case CodeInfeasibleMemory:
		return realhf.ErrInfeasibleMemory
	case CodeCanceled:
		return realhf.ErrSolveCanceled
	case CodeDeadline:
		return context.DeadlineExceeded
	case CodeOverloaded:
		return ErrOverloaded
	case CodeDraining:
		return ErrDraining
	case CodeWorkerLost:
		return realhf.ErrWorkerLost
	}
	return nil
}

// Client is the typed client for a plan server.
type Client struct {
	base   string
	hc     *http.Client
	tenant string
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom transport,
// TLS, tracing).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithTenant stamps every request with a tenant name. Observability only —
// isolation follows calibration content, not names.
func WithTenant(name string) ClientOption {
	return func(c *Client) { c.tenant = name }
}

// NewClient returns a client for the plan server at baseURL (e.g.
// "http://127.0.0.1:7799").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base: trimTrailingSlash(baseURL),
		hc:   &http.Client{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func trimTrailingSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// Plan requests a plan for cfg — the remote counterpart of Planner.Plan.
// A ctx deadline travels to the server as the request deadline, and ctx
// cancellation aborts the HTTP request (deregistering this client from the
// coalesced solve server-side). Calibration factors ride along as the
// tenant's cost-model multipliers.
func (c *Client) Plan(ctx context.Context, cfg realhf.ExperimentConfig, calibration map[string]float64) (*PlanResponse, error) {
	return c.Do(ctx, &PlanRequest{Config: cfg, Calibration: calibration})
}

// Do sends a fully specified PlanRequest. The client's tenant is applied
// when the request names none, and a ctx deadline overrides a zero
// DeadlineMillis.
func (c *Client) Do(ctx context.Context, req *PlanRequest) (*PlanResponse, error) {
	r := *req
	if r.Tenant == "" {
		r.Tenant = c.tenant
	}
	if r.DeadlineMillis == 0 {
		if dl, ok := ctx.Deadline(); ok {
			if ms := int64(time.Until(dl) / time.Millisecond); ms > 0 {
				r.DeadlineMillis = ms
			}
		}
	}
	body, err := json.Marshal(&r)
	if err != nil {
		return nil, fmt.Errorf("serve: encode plan request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+PathPlan, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decode plan response: %w", err)
	}
	// Embedding compacted the plan in transit; re-indenting restores the
	// exact Experiment.MarshalPlan / SavePlan bytes (MarshalIndent is
	// Marshal followed by Indent), keeping served plans byte-identical to
	// a direct Planner.Plan of the same request.
	var plan bytes.Buffer
	if err := json.Indent(&plan, out.Plan, "", "  "); err == nil {
		out.Plan = plan.Bytes()
	}
	return &out, nil
}

// Stats fetches the server and planner counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathStats, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decode stats response: %w", err)
	}
	return &out, nil
}

// Health reports whether the server is accepting work (nil), draining
// (ErrDraining via ServerError), or unreachable.
func (c *Client) Health(ctx context.Context) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathHealth, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Experiment rebuilds a runnable realhf.Experiment from the response's
// plan bytes against a local planning session — the remote counterpart of
// Planner.LoadExperiment. The local planner must describe the same cluster
// the server planned for.
func (r *PlanResponse) Experiment(p *realhf.Planner) (*realhf.Experiment, error) {
	return p.LoadExperimentBytes(r.Plan, r.Config)
}

// decodeError converts a non-200 answer into a *ServerError, tolerating
// non-JSON bodies from intermediaries.
func decodeError(resp *http.Response) error {
	se := &ServerError{StatusCode: resp.StatusCode, Code: CodeInternal}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	var wire ErrorResponse
	if err := json.Unmarshal(body, &wire); err == nil && wire.Code != "" {
		se.Code = wire.Code
		se.Message = wire.Error
		se.RetryAfter = time.Duration(wire.RetryAfterSeconds) * time.Second
	} else {
		se.Message = string(body)
	}
	if se.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}
