package serve

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"realhf"
)

// BenchmarkServerCoalescedQPS measures one full service burst over the
// real HTTP stack: a cold solve fanned out to a fixed pool of coalesced
// waiters, followed by the same pool replayed against the plan cache.
// ns/op is the machine-dependent wall time of the burst (cold + coalesced
// + cached QPS folds out of it and the request counters); the custom
// metrics are exact counters — deterministic by construction, as the CI
// benchmark gate requires — proving the coalescing contract: every burst
// is 1 solve, waiters-1 coalesced fan-outs, and a 100% cached replay.
func BenchmarkServerCoalescedQPS(b *testing.B) {
	const waiters = 8
	ctx := context.Background()
	cfg := testConfig(3, 400)
	b.ReportAllocs()

	var solves, coalesced, cacheHits, requests int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		planner := realhf.NewPlanner(realhf.ClusterConfig{Nodes: 1})
		srv, err := New(Config{Planner: planner})
		if err != nil {
			b.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		client := NewClient(hs.URL)
		// The leader blocks at the solve hook until every other waiter has
		// deterministically joined its flight — no polling, no racy split
		// between coalesced joins and cache hits.
		release := make(chan struct{})
		allJoined := make(chan struct{})
		srv.hookBeforeSolve = func(string) { <-release }
		srv.hookWaiterJoined = func(joined int) {
			if joined == waiters-1 {
				close(allJoined)
			}
		}
		b.StartTimer()

		var wg sync.WaitGroup
		for k := 0; k < waiters; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := client.Plan(ctx, cfg, nil); err != nil {
					b.Error(err)
				}
			}()
		}
		<-allJoined
		close(release)
		wg.Wait()

		for k := 0; k < waiters; k++ {
			resp, err := client.Plan(ctx, cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("replay missed the plan cache")
			}
		}

		b.StopTimer()
		st := srv.Stats()
		solves += st.Solves
		coalesced += st.Coalesced
		cacheHits += st.CacheHits
		requests += st.Requests
		hs.Close()
	}

	n := float64(b.N)
	b.ReportMetric(float64(solves)/n, "solves-per-burst")
	b.ReportMetric(float64(coalesced)/n, "coalesced-per-solve")
	b.ReportMetric(float64(cacheHits)/n, "cached-hits-per-burst")
	b.ReportMetric(float64(requests)/n, "requests-per-burst")
}
