package realhf

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// rampSchedule is the §8 drift scenario used across the trainer tests: the
// generation length halves every iteration, 1024 → 128 over 4 iterations
// (responses shortening as the policy sharpens). The long-generation plan
// the campaign starts from stays memory-feasible throughout, but is
// increasingly over-conservative at the short end — the staleness a
// replanning session recovers.
func rampSchedule(iter int) int {
	g := 1024 >> iter
	if g < 128 {
		g = 128
	}
	return g
}

func trainerConfig() ExperimentConfig {
	return ExperimentConfig{
		Nodes: 1, BatchSize: 128, PromptLen: 256, GenLen: 256,
		RPCs: PPORPCs("llama7b", "llama7b-critic"), SearchSteps: 800, Seed: 1,
	}
}

// TestTrainerReplansUnderGenLenRamp: under a generation-length ramp the
// replanning Trainer must beat the frozen-plan baseline on total campaign
// makespan even after paying every plan-switch reallocation it charges.
func TestTrainerReplansUnderGenLenRamp(t *testing.T) {
	const iters = 4
	ctx := context.Background()
	planner := NewPlanner(ClusterConfig{})

	frozenTr, err := planner.Train(ctx, trainerConfig(),
		WithGenLenSchedule(rampSchedule), WithFrozenPlan())
	if err != nil {
		t.Fatal(err)
	}
	defer frozenTr.Close()
	frozen, err := frozenTr.Campaign(ctx, iters)
	if err != nil {
		t.Fatal(err)
	}

	var streamed []IterationReport
	var replanTr *Trainer
	replanTr, err = planner.Train(ctx, trainerConfig(),
		WithGenLenSchedule(rampSchedule),
		WithIterationProgress(func(r IterationReport) {
			streamed = append(streamed, r)
			// Progress callbacks run with the session unlocked: calling back
			// into the Trainer must not deadlock (regression guard).
			_ = replanTr.Stats()
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer replanTr.Close()
	replan, err := replanTr.Campaign(ctx, iters)
	if err != nil {
		t.Fatal(err)
	}

	if frozen.Replans != 0 || frozen.SwitchCostV != 0 {
		t.Fatalf("frozen campaign replanned: %+v", frozen)
	}
	if replan.Replans == 0 || replan.Switches == 0 {
		t.Fatalf("ramp campaign did not replan/switch: replans=%d switches=%d",
			replan.Replans, replan.Switches)
	}
	if replan.SwitchCostV <= 0 {
		t.Fatal("adopted switches must charge a positive reallocation cost")
	}
	if replan.TotalMakespanV >= frozen.TotalMakespanV {
		t.Fatalf("replanning campaign (%.2fs incl. %.2fs switches) must beat frozen (%.2fs)",
			replan.TotalMakespanV, replan.SwitchCostV, frozen.TotalMakespanV)
	}

	// Reports stream in order, one per iteration, workload following the
	// schedule, and fingerprints change across an adopted switch.
	if len(streamed) != iters {
		t.Fatalf("streamed %d reports, want %d", len(streamed), iters)
	}
	fingerprints := map[string]bool{}
	for i, r := range streamed {
		if r.Iter != i {
			t.Fatalf("report %d carries Iter %d", i, r.Iter)
		}
		if r.GenLen != rampSchedule(i) {
			t.Fatalf("iter %d GenLen = %d, want %d", i, r.GenLen, rampSchedule(i))
		}
		if r.MakespanV <= 0 || len(r.CallTimes) == 0 || len(r.EstCallTimes) == 0 {
			t.Fatalf("iter %d report incomplete: %+v", i, r)
		}
		fingerprints[r.PlanFingerprint] = true
	}
	if len(fingerprints) < 2 {
		t.Fatal("an adopted switch must change the executed plan fingerprint")
	}

	// The campaign totals mirror the per-iteration accounting.
	var sum float64
	for _, r := range replan.Iterations {
		sum += r.MakespanV + r.ReallocSwitchCost
	}
	if sum != replan.TotalMakespanV {
		t.Fatalf("campaign total %.4f != per-iteration sum %.4f", replan.TotalMakespanV, sum)
	}
	st := replanTr.Stats()
	if st.Iterations != iters || st.TotalMakespanV != replan.TotalMakespanV {
		t.Fatalf("stats disagree with campaign: %+v vs %+v", st, replan)
	}
}

// TestTrainerProfileFeedbackCalibration: executing under run options the
// estimator does not model (CUDA graphs disabled) produces real
// estimate-vs-observed drift at a fixed workload; the session folds it into
// calibration multipliers, replans once, and converges — later iterations
// drift within the threshold and replanning stops.
func TestTrainerProfileFeedbackCalibration(t *testing.T) {
	ctx := context.Background()
	planner := NewPlanner(ClusterConfig{})
	opts := DefaultRunOptions()
	opts.UseCUDAGraph = false

	tr, err := planner.Train(ctx, trainerConfig(),
		WithTrainRunOptions(opts), WithReplanThreshold(0.05))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	first, err := tr.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first.Replanned {
		t.Fatal("iteration 0 has no feedback yet and must not replan")
	}
	if first.Drift <= 0.05 {
		t.Fatalf("graph-less decode must drift beyond 5%%, got %.3f", first.Drift)
	}
	second, err := tr.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Replanned {
		t.Fatal("drift beyond the threshold must trigger a replan")
	}
	if second.Drift > first.Drift/2 {
		t.Fatalf("calibration should collapse drift: %.3f -> %.3f", first.Drift, second.Drift)
	}
	third, err := tr.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if third.Replanned {
		t.Fatal("a converged session must stop replanning")
	}

	factors := tr.Stats().CalibrationFactors
	if len(factors) == 0 {
		t.Fatal("profile feedback must materialize calibration factors")
	}
	gen, ok := factors["actor/GENERATE"]
	if !ok || gen <= 1 {
		t.Fatalf("generation without CUDA graphs must calibrate slower than the model: %v", factors)
	}
}

// TestTrainerCalibrationCacheIsolation: a calibrated campaign must not
// poison the planner's default caches — an identical uncalibrated request
// before and after the campaign returns byte-identical (and cached)
// results, while the calibrated twin problems appear alongside.
func TestTrainerCalibrationCacheIsolation(t *testing.T) {
	ctx := context.Background()
	planner := NewPlanner(ClusterConfig{})
	cfg := trainerConfig()

	before, err := planner.Plan(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	problemsBefore := planner.Stats().Problems

	opts := DefaultRunOptions()
	opts.UseCUDAGraph = false
	tr, err := planner.Train(ctx, cfg, WithTrainRunOptions(opts), WithReplanThreshold(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Campaign(ctx, 3); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if len(tr.Stats().CalibrationFactors) == 0 {
		t.Fatal("campaign should have calibrated (precondition)")
	}

	after, err := planner.Plan(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Cached {
		t.Fatal("uncalibrated request must still hit the plan cache")
	}
	if after.Estimate.Cost != before.Estimate.Cost ||
		after.Plan.Fingerprint() != before.Plan.Fingerprint() {
		t.Fatalf("calibrated campaign poisoned the default caches: cost %v->%v",
			before.Estimate.Cost, after.Estimate.Cost)
	}
	if got := planner.Stats().Problems; got <= problemsBefore {
		t.Fatalf("calibrated replans must own twin problems: %d -> %d", problemsBefore, got)
	}
}

// TestTrainerResize: an elastic mid-campaign resize replans onto the new
// mesh, charges the reallocation into it, swaps the fleet, and the campaign
// continues at the new scale.
func TestTrainerResize(t *testing.T) {
	ctx := context.Background()
	planner := NewPlanner(ClusterConfig{})
	tr, err := planner.Train(ctx, trainerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	small, err := tr.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if small.Nodes != 1 {
		t.Fatalf("iteration 0 Nodes = %d, want 1", small.Nodes)
	}
	if err := tr.Resize(ctx, 2); err != nil {
		t.Fatal(err)
	}
	big, err := tr.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if big.Nodes != 2 {
		t.Fatalf("post-resize Nodes = %d, want 2", big.Nodes)
	}
	if big.ReallocSwitchCost <= 0 {
		t.Fatal("resizing must charge the reallocation into the new mesh")
	}
	if big.MakespanV >= small.MakespanV {
		t.Fatalf("doubling the cluster should speed the iteration: %.2fs -> %.2fs",
			small.MakespanV, big.MakespanV)
	}
	st := tr.Stats()
	if st.Nodes != 2 || st.Switches == 0 {
		t.Fatalf("stats after resize: %+v", st)
	}
	// Resizing to the current scale is a no-op.
	if err := tr.Resize(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Replans != st.Replans {
		t.Fatal("no-op resize must not replan")
	}
}

// TestTrainerLifecycle: closed sessions reject work; cancelled contexts
// surface wrapped errors with the completed prefix; bad options are
// rejected up front with the shared RunOptions checker.
func TestTrainerLifecycle(t *testing.T) {
	ctx := context.Background()
	planner := NewPlanner(ClusterConfig{})

	if _, err := planner.Train(ctx, trainerConfig(), WithReplanThreshold(-1)); err == nil {
		t.Fatal("negative replan threshold must be rejected")
	}
	if _, err := planner.Train(ctx, trainerConfig(),
		WithTrainRunOptions(RunOptions{BandwidthScale: -2})); !errors.Is(err, ErrInvalidRunOptions) {
		t.Fatalf("Train must share RunOptions validation, got %v", err)
	}
	if _, err := planner.Train(ctx, trainerConfig(),
		WithGenLenSchedule(func(int) int { return 0 })); err == nil {
		t.Fatal("a schedule returning 0 tokens must be rejected")
	}

	tr, err := planner.Train(ctx, trainerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(ctx); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	rep, err := tr.Campaign(cancelled, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign error = %v, want context.Canceled", err)
	}
	if len(rep.Iterations) != 0 {
		t.Fatalf("cancelled-before-start campaign reported %d iterations", len(rep.Iterations))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	if _, err := tr.Step(ctx); err == nil {
		t.Fatal("Step on a closed trainer must error")
	}
	if err := tr.Resize(ctx, 2); err == nil {
		t.Fatal("Resize on a closed trainer must error")
	}
}

// TestTrainerConcurrentUse: Step/Stats from many goroutines serialize
// safely (run under -race in CI); every iteration is executed exactly once.
func TestTrainerConcurrentUse(t *testing.T) {
	ctx := context.Background()
	planner := NewPlanner(ClusterConfig{})
	tr, err := planner.Train(ctx, trainerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	const goroutines, perG = 4, 2
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := tr.Step(ctx); err != nil {
					errs <- err
				}
				_ = tr.Stats()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := tr.Stats().Iterations; got != goroutines*perG {
		t.Fatalf("executed %d iterations, want %d", got, goroutines*perG)
	}
}
