// Command realprofile runs the (synthetic) per-layer profiler for one model
// family and reports the measured statistics and the profiling cost
// (paper Fig. 12 left).
//
// Usage:
//
//	realprofile -model 70b
package main

import (
	"flag"
	"fmt"
	"log"

	"realhf/internal/hardware"
	"realhf/internal/model"
	"realhf/internal/profiler"
)

func main() {
	log.SetFlags(0)
	name := flag.String("model", "7b", "model size (7b, 13b, 34b, 70b)")
	nodes := flag.Int("nodes", 2, "cluster nodes (sets profiled TP degrees)")
	seed := flag.Int64("seed", 1, "measurement-noise seed")
	flag.Parse()

	cfg, err := model.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	hw := hardware.DefaultCluster(*nodes)
	tab, err := profiler.Profile(hw, cfg, profiler.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Profiled %s on %s\n", cfg, hw)
	fmt.Printf("Profiling wall time: %.1fs\n\n", tab.ProfileCost)

	fmt.Println("Sample interpolated per-layer forward times (ms):")
	fmt.Printf("%8s", "tokens")
	for _, tp := range []int{1, 2, 4, 8} {
		fmt.Printf(" %10s", fmt.Sprintf("tp=%d", tp))
	}
	fmt.Println()
	for _, tokens := range []int64{512, 4096, 32768, 262144} {
		fmt.Printf("%8d", tokens)
		for _, tp := range []int{1, 2, 4, 8} {
			fmt.Printf(" %10.3f", tab.LayerFwd(tp, tokens, 1024)*1e3)
		}
		fmt.Println()
	}

	fmt.Println("\nSample decode step times (us, batch x position):")
	fmt.Printf("%14s", "")
	for _, tp := range []int{1, 2, 4, 8} {
		fmt.Printf(" %10s", fmt.Sprintf("tp=%d", tp))
	}
	fmt.Println()
	for _, bs := range []int{1, 8, 64} {
		fmt.Printf("%6dx%7d", bs, 2048)
		for _, tp := range []int{1, 2, 4, 8} {
			fmt.Printf(" %10.0f", tab.LayerDecode(tp, bs, 2048)*1e6)
		}
		fmt.Println()
	}
}
