// Command realrun executes an RLHF execution plan on the simulated cluster
// through the runtime engine (master worker + per-GPU model workers) and
// prints a Table 6-style wall-time breakdown.
//
// Planning goes through the public realhf.Planner session (searched plans,
// the symmetric heuristic, and plans saved by realsearch -save); only the
// split-placement baseline systems of Fig. 7 still reach into the internal
// baselines package, since they are not part of the public API.
//
// With -iters > 1 realrun drives a multi-iteration training campaign
// through a long-lived realhf.Trainer session instead of a one-shot run:
// persistent model workers, per-iteration reports, profile-feedback
// replanning under a -genlen-ramp, and an elastic -resize-at mid-campaign
// cluster change. -kill-worker-at injects a worker death (the Trainer
// shrink-replans onto the survivors), and -checkpoint makes the campaign
// durable: the session checkpoints after every iteration, and rerunning
// the same command resumes from the file instead of starting over — kill
// the process mid-campaign and run it again to watch it pick up exactly
// where it died.
//
// Usage:
//
//	realrun -actor 70b -critic 7b -nodes 16 -system real
//	realrun -actor 7b -critic 7b -nodes 2 -system openrlhf -cudagraph=false
//	realrun -actor 7b -critic 7b -plan plan.json
//	realrun -actor 7b -critic 7b -nodes 1 -iters 4 -genlen-ramp 1024:128
//	realrun -actor 7b -critic 7b -nodes 1 -iters 6 -resize-at 3:2
//	realrun -actor 7b -critic 7b -nodes 2 -iters 4 -kill-worker-at 2:5
//	realrun -actor 7b -critic 7b -nodes 1 -iters 8 -checkpoint run.ckpt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"realhf"
	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/experiments"
	"realhf/internal/hardware"
	"realhf/internal/model"
	"realhf/internal/runtime"
	"realhf/internal/trace"
)

func main() {
	log.SetFlags(0)
	actor := flag.String("actor", "7b", "actor model size (7b, 13b, 34b, 70b)")
	critic := flag.String("critic", "7b", "critic/reward model size")
	nodes := flag.Int("nodes", 2, "number of 8-GPU nodes")
	batch := flag.Int("batch", 0, "global batch size (default: 512 per 16 GPUs)")
	algo := flag.String("algo", "ppo", "RLHF algorithm: ppo, dpo, grpo, remax")
	system := flag.String("system", "real",
		"plan source: real, real-heuristic, dschat, openrlhf, nemo-aligner, verl")
	steps := flag.Int("steps", 4000, "MCMC search steps (system=real)")
	seed := flag.Int64("seed", 1, "search seed")
	cudaGraph := flag.Bool("cudagraph", true, "capture decode kernels into CUDA graphs")
	overlap := flag.Bool("overlap", true,
		"overlap parameter reallocation/data transfer with computation on per-worker comm streams")
	tcp := flag.Bool("tcp", false, "drive model workers over TCP sockets instead of channels")
	planFile := flag.String("plan", "", "load a plan saved by realsearch -save instead of planning")
	chromeTrace := flag.String("chrometrace", "", "write the execution timeline as a Chrome trace JSON")
	iters := flag.Int("iters", 1,
		"iterations to train; > 1 runs a Trainer campaign with profile-feedback replanning (system=real)")
	genLenRamp := flag.String("genlen-ramp", "",
		"linear generation-length ramp start:end across the campaign (e.g. 1024:128; campaign mode)")
	resizeAt := flag.String("resize-at", "",
		"elastic resize iter:nodes — before iteration iter, replan onto nodes hosts (campaign mode)")
	frozen := flag.Bool("frozen", false, "pin the iteration-0 plan for the whole campaign (the no-replanning baseline)")
	checkpointFile := flag.String("checkpoint", "",
		"checkpoint the campaign to this file after every iteration, and resume from it when it exists (campaign mode)")
	killAt := flag.String("kill-worker-at", "",
		"fault injection iter:gpu — before iteration iter, kill worker gpu and shrink-replan onto the survivors (campaign mode)")
	flag.Parse()

	cfg, err := realhf.PaperExperiment(*algo, "llama"+*actor, "llama"+*critic+"-critic", *nodes, *batch)
	if err != nil {
		log.Fatal(err)
	}
	cfg.SearchSteps, cfg.Seed = *steps, *seed

	if *iters > 1 {
		if *system != "real" || *planFile != "" {
			log.Fatal("realrun: campaign mode (-iters > 1) requires -system real without -plan")
		}
		// Reject rather than silently ignore options the Trainer session
		// does not plumb through: its pool is in-process, and per-iteration
		// timelines are not exported as one trace.
		if *tcp || *chromeTrace != "" {
			log.Fatal("realrun: campaign mode does not support -tcp or -chrometrace")
		}
		runCampaign(cfg, *iters, *genLenRamp, *resizeAt, *checkpointFile, *killAt, *frozen, realhf.RunOptions{
			UseCUDAGraph: *cudaGraph, OverlapComm: *overlap,
		})
		return
	}
	if *checkpointFile != "" || *killAt != "" {
		log.Fatal("realrun: -checkpoint and -kill-worker-at require campaign mode (-iters > 1)")
	}

	planner := realhf.NewPlanner(realhf.ClusterConfig{})
	var plan *core.Plan
	var cluster hardware.Cluster
	switch {
	case *planFile != "":
		exp, err := planner.LoadExperiment(*planFile, cfg)
		if err != nil {
			log.Fatal(err)
		}
		plan, cluster = exp.Plan, exp.Cluster
	case *system == "real":
		exp, err := planner.Plan(context.Background(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		plan, cluster = exp.Plan, exp.Cluster
	case *system == "real-heuristic":
		exp, err := planner.Heuristic(cfg)
		if err != nil {
			log.Fatal(err)
		}
		plan, cluster = exp.Plan, exp.Cluster
	default:
		// The split-placement baseline systems live below the public API.
		actorCfg, err := model.ByName(*actor)
		if err != nil {
			log.Fatal(err)
		}
		criticCfg, err := model.ByName(*critic)
		if err != nil {
			log.Fatal(err)
		}
		s := experiments.PaperSetting(*nodes, actorCfg, criticCfg)
		s.Algo = *algo
		if *batch > 0 {
			s.Batch = *batch
		}
		pr, err := experiments.NewProblem(s)
		if err != nil {
			log.Fatal(err)
		}
		plan, _, err = baselines.Evaluate(baselines.System(*system), pr.Est, pr.Cluster, pr.Graph, pr.Models)
		if err != nil {
			log.Fatal(err)
		}
		cluster = pr.Cluster
	}

	opts := runtime.Options{UseCUDAGraph: *cudaGraph, OverlapComm: *overlap}
	if *tcp {
		static := estimator.StaticPerGPU(plan)
		workers := make([]*runtime.ModelWorker, cluster.NumGPUs())
		for i := range workers {
			workers[i] = runtime.NewModelWorker(i, cluster.GPU.MemoryBytes)
			workers[i].StaticBytes = static[i]
		}
		addr, stop, err := runtime.ServeWorkersTCP(workers)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		tr, err := runtime.NewTCPTransport(addr, len(workers))
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		opts.Transport = tr
		opts.Workers = workers
		fmt.Printf("workers serving on %s\n", addr)
	}

	rep, err := runtime.Run(plan, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *chromeTrace != "" {
		if err := trace.ExportChromeTrace(rep, *chromeTrace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline written to %s (open in chrome://tracing)\n", *chromeTrace)
	}

	fmt.Printf("Plan (%s) for %s+%s on %d GPUs:\n\n", *system, *actor, *critic, cluster.NumGPUs())
	fmt.Print(plan.Table(rep.CallTimes))
	fmt.Println()

	names := make([]string, 0, len(rep.CallTimes))
	for name := range rep.CallTimes {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("Wall-time breakdown:")
	for _, name := range names {
		fmt.Printf("  %-14s %8.1fs\n", name, rep.CallTimes[name])
	}
	fmt.Printf("  %-14s %8.1fs\n", "comm (realloc)", rep.CommTimeV)
	fmt.Printf("  %-14s %8.1fs\n", "end-to-end", rep.MakespanV)
	fmt.Printf("\nThroughput: %.2f PFLOP/s   Peak memory: %.1f GB   OOM: %v   OverlapComm: %v\n",
		estimator.Throughput(plan, rep.MakespanV), float64(rep.PeakBytes)/(1<<30), rep.OOM, rep.OverlapComm)
	for _, e := range rep.Errors {
		fmt.Println("  worker error:", e)
	}

	// ±overlap comparison (Table-6-style ablation row): re-execute the same
	// plan with the opposite overlap setting over fresh in-process workers.
	// OOM runs carry truncated timings, so no ablation is printed for them.
	if !*tcp && !rep.OOM && rep.CommTimeV > 0 {
		other, err := runtime.Run(plan, runtime.Options{UseCUDAGraph: *cudaGraph, OverlapComm: !*overlap})
		if err != nil {
			log.Fatal(err)
		}
		serial, overlapped := rep.MakespanV, other.MakespanV
		if *overlap {
			serial, overlapped = other.MakespanV, rep.MakespanV
		}
		hidden := serial - overlapped
		fmt.Printf("Overlap ablation: serialized %.1fs -> overlapped %.1fs (comm %.1fs, %.0f%% hidden)\n",
			serial, overlapped, rep.CommTimeV, 100*hidden/rep.CommTimeV)
	}
}

// faultRig builds the -kill-worker-at worker fleets: in-process channel
// workers with a runtime.FaultyTransport wrapped around the transport, the
// latest fleet's wrapper kept so the progress callback can kill a device on
// whatever fleet the session currently runs.
type faultRig struct {
	mu sync.Mutex
	ft *runtime.FaultyTransport
}

func (r *faultRig) factory(numGPUs int, memoryBytes int64) (*runtime.WorkerPool, error) {
	workers := make([]*runtime.ModelWorker, numGPUs)
	for i := range workers {
		workers[i] = runtime.NewModelWorker(i, memoryBytes)
	}
	ft := runtime.NewFaultyTransport(runtime.NewChanTransport(workers))
	r.mu.Lock()
	r.ft = ft
	r.mu.Unlock()
	return runtime.NewWorkerPoolWith(workers, ft), nil
}

func (r *faultRig) transport() *runtime.FaultyTransport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ft
}

// parsePair parses "a:b" into two ints.
func parsePair(s, what string) (int, int, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("realrun: %s must look like a:b, got %q", what, s)
	}
	a, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("realrun: bad %s %q: %v", what, s, err)
	}
	b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("realrun: bad %s %q: %v", what, s, err)
	}
	return a, b, nil
}

// runCampaign drives a multi-iteration Trainer session: per-iteration
// reports stream as they complete, an optional linear GenLen ramp exercises
// the §8 drift scenario, an optional -resize-at splits the campaign around
// an elastic cluster change, -kill-worker-at injects a worker death the
// session survives by shrink-replanning, and -checkpoint makes the whole
// campaign durable (checkpoint after every iteration, resume from the file
// when it exists).
func runCampaign(cfg realhf.ExperimentConfig, iters int, ramp, resize, checkpointFile, killAt string, frozen bool, runOpts realhf.RunOptions) {
	ctx := context.Background()
	// tr is assigned below; the progress callback captures it so the
	// per-iteration checkpoint and the fault injection can reach the
	// session (callbacks run with the session unlocked).
	var tr *realhf.Trainer
	killIter, killGPU := -1, -1
	var rig *faultRig
	if killAt != "" {
		var err error
		killIter, killGPU, err = parsePair(killAt, "-kill-worker-at")
		if err != nil {
			log.Fatal(err)
		}
		if killIter <= 0 || killIter >= iters {
			log.Fatalf("realrun: -kill-worker-at iteration %d outside campaign (1..%d)", killIter, iters-1)
		}
		if killGPU < 0 {
			log.Fatalf("realrun: -kill-worker-at gpu %d must be >= 0", killGPU)
		}
		rig = &faultRig{}
	}
	opts := []realhf.TrainOption{
		realhf.WithTrainRunOptions(runOpts),
		realhf.WithIterationProgress(func(r realhf.IterationReport) {
			mark := " "
			switch {
			case r.WorkerLost:
				mark = "X" // lost a worker, shrink-replanned onto the survivors
			case r.Switched:
				mark = "S" // replanned and switched plans
			case r.Replanned:
				mark = "r" // replanned, kept the incumbent
			}
			fmt.Printf("iter %2d %s gen=%-5d nodes=%d  %8.2fs (est %8.2fs, drift %4.1f%%)  switch %6.3fs  plan %.12s\n",
				r.Iter, mark, r.GenLen, r.Nodes, r.MakespanV, r.EstMakespanV, 100*r.Drift,
				r.ReallocSwitchCost, r.PlanFingerprint)
			if r.WorkerLost {
				fmt.Printf("-- worker gpu %v lost; campaign shrunk to %d nodes --\n", r.LostGPUs, r.Nodes)
			}
			if rig != nil && r.Iter == killIter-1 {
				fmt.Printf("-- killing worker gpu %d --\n", killGPU)
				rig.transport().Fail(killGPU, runtime.FaultKill)
			}
			if checkpointFile != "" {
				if err := tr.CheckpointFile(checkpointFile); err != nil {
					log.Fatal(err)
				}
			}
		}),
	}
	if rig != nil {
		opts = append(opts, realhf.WithWorkerPoolFactory(rig.factory))
	}
	if frozen {
		opts = append(opts, realhf.WithFrozenPlan())
	}
	if ramp != "" {
		start, end, err := parsePair(ramp, "-genlen-ramp")
		if err != nil {
			log.Fatal(err)
		}
		if start <= 0 || end <= 0 {
			log.Fatal("realrun: -genlen-ramp lengths must be positive")
		}
		opts = append(opts, realhf.WithGenLenSchedule(func(iter int) int {
			if iters <= 1 {
				return start
			}
			return start + (end-start)*iter/(iters-1)
		}))
	}
	resizeIter, resizeNodes := -1, 0
	if resize != "" {
		var err error
		resizeIter, resizeNodes, err = parsePair(resize, "-resize-at")
		if err != nil {
			log.Fatal(err)
		}
		if resizeIter <= 0 || resizeIter >= iters {
			log.Fatalf("realrun: -resize-at iteration %d outside campaign (1..%d)", resizeIter, iters-1)
		}
	}

	planner := realhf.NewPlanner(realhf.ClusterConfig{})
	var err error
	if checkpointFile != "" {
		if _, statErr := os.Stat(checkpointFile); statErr == nil {
			tr, err = planner.ResumeTrainFile(ctx, checkpointFile, cfg, opts...)
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	resumedAt := 0
	if tr == nil {
		tr, err = planner.Train(ctx, cfg, opts...)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		resumedAt = tr.Stats().Iterations
	}
	defer tr.Close()

	mode := "replanning"
	if frozen {
		mode = "frozen-plan"
	}
	if resumedAt > 0 {
		fmt.Printf("Training campaign (%s): resumed from %s at iteration %d of %d, on %d nodes\n\n",
			mode, checkpointFile, resumedAt, iters, tr.Stats().Nodes)
	} else {
		fmt.Printf("Training campaign (%s): %d iterations on %d nodes\n\n", mode, iters, cfg.Nodes)
	}
	if resumedAt >= iters {
		fmt.Println("campaign already complete; delete the checkpoint to start over")
		return
	}

	// Only the makespan/iteration totals come from the chunked campaign
	// reports; replan/switch/realloc counters are read from Stats at the
	// end, which also covers the Resize between chunks.
	var totalV float64
	ranIters := 0
	accumulate := func(rep *realhf.CampaignReport) {
		ranIters += rep.CompletedIterations
		totalV += rep.TotalMakespanV
	}
	if resizeIter > resumedAt {
		rep, err := tr.Campaign(ctx, resizeIter-resumedAt)
		if err != nil {
			log.Fatal(err)
		}
		accumulate(rep)
		fmt.Printf("-- resizing campaign to %d nodes --\n", resizeNodes)
		if err := tr.Resize(ctx, resizeNodes); err != nil {
			log.Fatal(err)
		}
		rep, err = tr.Campaign(ctx, iters-resizeIter)
		if err != nil {
			log.Fatal(err)
		}
		accumulate(rep)
	} else {
		rep, err := tr.Campaign(ctx, iters-resumedAt)
		if err != nil {
			log.Fatal(err)
		}
		accumulate(rep)
	}

	st := tr.Stats()
	fmt.Printf("\nCampaign total: %.2fs over %d iterations (replans %d, switches %d, realloc charged %.3fs, workers lost %d)\n",
		totalV, ranIters, st.Replans, st.Switches, st.SwitchCostV, st.WorkerFailures)
	if factors := st.CalibrationFactors; len(factors) > 0 {
		names := make([]string, 0, len(factors))
		for name := range factors {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("Calibration (observed/predicted):")
		for _, name := range names {
			fmt.Printf("  %-16s %.3f\n", name, factors[name])
		}
	}
}
