// Command realrun executes an RLHF execution plan on the simulated cluster
// through the runtime engine (master worker + per-GPU model workers) and
// prints a Table 6-style wall-time breakdown.
//
// Planning goes through the public realhf.Planner session (searched plans,
// the symmetric heuristic, and plans saved by realsearch -save); only the
// split-placement baseline systems of Fig. 7 still reach into the internal
// baselines package, since they are not part of the public API.
//
// Usage:
//
//	realrun -actor 70b -critic 7b -nodes 16 -system real
//	realrun -actor 7b -critic 7b -nodes 2 -system openrlhf -cudagraph=false
//	realrun -actor 7b -critic 7b -plan plan.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"realhf"
	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/experiments"
	"realhf/internal/hardware"
	"realhf/internal/model"
	"realhf/internal/runtime"
	"realhf/internal/trace"
)

func main() {
	log.SetFlags(0)
	actor := flag.String("actor", "7b", "actor model size (7b, 13b, 34b, 70b)")
	critic := flag.String("critic", "7b", "critic/reward model size")
	nodes := flag.Int("nodes", 2, "number of 8-GPU nodes")
	batch := flag.Int("batch", 0, "global batch size (default: 512 per 16 GPUs)")
	algo := flag.String("algo", "ppo", "RLHF algorithm: ppo, dpo, grpo, remax")
	system := flag.String("system", "real",
		"plan source: real, real-heuristic, dschat, openrlhf, nemo-aligner, verl")
	steps := flag.Int("steps", 4000, "MCMC search steps (system=real)")
	seed := flag.Int64("seed", 1, "search seed")
	cudaGraph := flag.Bool("cudagraph", true, "capture decode kernels into CUDA graphs")
	overlap := flag.Bool("overlap", true,
		"overlap parameter reallocation/data transfer with computation on per-worker comm streams")
	tcp := flag.Bool("tcp", false, "drive model workers over TCP sockets instead of channels")
	planFile := flag.String("plan", "", "load a plan saved by realsearch -save instead of planning")
	chromeTrace := flag.String("chrometrace", "", "write the execution timeline as a Chrome trace JSON")
	flag.Parse()

	cfg, err := realhf.PaperExperiment(*algo, "llama"+*actor, "llama"+*critic+"-critic", *nodes, *batch)
	if err != nil {
		log.Fatal(err)
	}
	cfg.SearchSteps, cfg.Seed = *steps, *seed

	planner := realhf.NewPlanner(realhf.ClusterConfig{})
	var plan *core.Plan
	var cluster hardware.Cluster
	switch {
	case *planFile != "":
		exp, err := planner.LoadExperiment(*planFile, cfg)
		if err != nil {
			log.Fatal(err)
		}
		plan, cluster = exp.Plan, exp.Cluster
	case *system == "real":
		exp, err := planner.Plan(context.Background(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		plan, cluster = exp.Plan, exp.Cluster
	case *system == "real-heuristic":
		exp, err := planner.Heuristic(cfg)
		if err != nil {
			log.Fatal(err)
		}
		plan, cluster = exp.Plan, exp.Cluster
	default:
		// The split-placement baseline systems live below the public API.
		actorCfg, err := model.ByName(*actor)
		if err != nil {
			log.Fatal(err)
		}
		criticCfg, err := model.ByName(*critic)
		if err != nil {
			log.Fatal(err)
		}
		s := experiments.PaperSetting(*nodes, actorCfg, criticCfg)
		s.Algo = *algo
		if *batch > 0 {
			s.Batch = *batch
		}
		pr, err := experiments.NewProblem(s)
		if err != nil {
			log.Fatal(err)
		}
		plan, _, err = baselines.Evaluate(baselines.System(*system), pr.Est, pr.Cluster, pr.Graph, pr.Models)
		if err != nil {
			log.Fatal(err)
		}
		cluster = pr.Cluster
	}

	opts := runtime.Options{UseCUDAGraph: *cudaGraph, OverlapComm: *overlap}
	if *tcp {
		static := estimator.StaticPerGPU(plan)
		workers := make([]*runtime.ModelWorker, cluster.NumGPUs())
		for i := range workers {
			workers[i] = runtime.NewModelWorker(i, cluster.GPU.MemoryBytes)
			workers[i].StaticBytes = static[i]
		}
		addr, stop, err := runtime.ServeWorkersTCP(workers)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		tr, err := runtime.NewTCPTransport(addr, len(workers))
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		opts.Transport = tr
		opts.Workers = workers
		fmt.Printf("workers serving on %s\n", addr)
	}

	rep, err := runtime.Run(plan, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *chromeTrace != "" {
		if err := trace.ExportChromeTrace(rep, *chromeTrace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline written to %s (open in chrome://tracing)\n", *chromeTrace)
	}

	fmt.Printf("Plan (%s) for %s+%s on %d GPUs:\n\n", *system, *actor, *critic, cluster.NumGPUs())
	fmt.Print(plan.Table(rep.CallTimes))
	fmt.Println()

	names := make([]string, 0, len(rep.CallTimes))
	for name := range rep.CallTimes {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("Wall-time breakdown:")
	for _, name := range names {
		fmt.Printf("  %-14s %8.1fs\n", name, rep.CallTimes[name])
	}
	fmt.Printf("  %-14s %8.1fs\n", "comm (realloc)", rep.CommTimeV)
	fmt.Printf("  %-14s %8.1fs\n", "end-to-end", rep.MakespanV)
	fmt.Printf("\nThroughput: %.2f PFLOP/s   Peak memory: %.1f GB   OOM: %v   OverlapComm: %v\n",
		estimator.Throughput(plan, rep.MakespanV), float64(rep.PeakBytes)/(1<<30), rep.OOM, rep.OverlapComm)
	for _, e := range rep.Errors {
		fmt.Println("  worker error:", e)
	}

	// ±overlap comparison (Table-6-style ablation row): re-execute the same
	// plan with the opposite overlap setting over fresh in-process workers.
	// OOM runs carry truncated timings, so no ablation is printed for them.
	if !*tcp && !rep.OOM && rep.CommTimeV > 0 {
		other, err := runtime.Run(plan, runtime.Options{UseCUDAGraph: *cudaGraph, OverlapComm: !*overlap})
		if err != nil {
			log.Fatal(err)
		}
		serial, overlapped := rep.MakespanV, other.MakespanV
		if *overlap {
			serial, overlapped = other.MakespanV, rep.MakespanV
		}
		hidden := serial - overlapped
		fmt.Printf("Overlap ablation: serialized %.1fs -> overlapped %.1fs (comm %.1fs, %.0f%% hidden)\n",
			serial, overlapped, rep.CommTimeV, 100*hidden/rep.CommTimeV)
	}
}
