// Command realsearch searches for an execution plan for one RLHF experiment
// and prints it in the format of paper Tables 2–5, together with the
// estimator's prediction and the solver's efficiency counters (cache
// hit-rate, per-chain accepted/proposed steps).
//
// It is a thin shell over the public realhf.Planner session — the same code
// path as library callers, with no command-only planning logic.
//
// Usage:
//
//	realsearch -actor 70b -critic 7b -nodes 16 -batch 4096 -steps 4000
//	realsearch -actor 7b -critic 7b -solver parallel-mcmc -chains 8
//	realsearch -actor 7b -critic 7b -algo remax -progress -save plan.json
//	realsearch -actor 7b -critic 7b -overlap-cost
//	realsearch -actor 7b -critic 34b -nodes 1 -offload-search
//	realsearch -actor 7b -critic 7b -steps 20000 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"realhf"
	"realhf/internal/search"
)

func main() {
	os.Exit(run())
}

// run is main's body with a normal return, so the deferred profile writers
// run even when the chosen plan is infeasible and the command exits non-zero.
func run() int {
	log.SetFlags(0)
	actor := flag.String("actor", "7b", "actor model size (7b, 13b, 34b, 70b)")
	critic := flag.String("critic", "7b", "critic/reward model size")
	nodes := flag.Int("nodes", 2, "number of 8-GPU nodes")
	batch := flag.Int("batch", 0, "global batch size (default: 512 per 16 GPUs)")
	prompt := flag.Int("prompt", 1024, "prompt length in tokens")
	gen := flag.Int("gen", 1024, "generated tokens per sequence")
	algo := flag.String("algo", "ppo", "RLHF algorithm: ppo, dpo, grpo, remax")
	solver := flag.String("solver", "",
		"planning engine: "+strings.Join(search.Names(), ", ")+
			" (default mcmc; parallel-mcmc when -chains > 1)")
	chains := flag.Int("chains", 0, "parallel MCMC chains (0 = solver default)")
	steps := flag.Int("steps", 4000, "MCMC search steps (per chain)")
	seed := flag.Int64("seed", 1, "search seed")
	overlapCost := flag.Bool("overlap-cost", false,
		"search under the overlapped-engine cost semantics (optimize the makespan the overlapped runtime achieves)")
	offloadSearch := flag.Bool("offload-search", false,
		"search per-call host offload of frozen models as a plan dimension, with device memory as a hard constraint")
	heuristic := flag.Bool("heuristic", false, "print the heuristic plan instead of searching")
	progress := flag.Bool("progress", false, "stream best-cost improvements while searching")
	save := flag.String("save", "", "write the resulting plan to this JSON file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the solve to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile after the solve to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	cfg, err := realhf.PaperExperiment(*algo, "llama"+*actor, "llama"+*critic+"-critic", *nodes, *batch)
	if err != nil {
		log.Fatal(err)
	}
	cfg.PromptLen, cfg.GenLen = *prompt, *gen
	cfg.SearchSteps, cfg.Seed = *steps, *seed
	cfg.Solver, cfg.SearchParallelism = *solver, *chains
	cfg.PlanForOverlap = *overlapCost
	cfg.OffloadSearch = *offloadSearch
	if *chains > 1 && cfg.Solver == "mcmc" {
		// An explicit -solver mcmc with -chains N has always meant the
		// multi-chain engine (chain 0 reproduces the sequential walker).
		cfg.Solver = "parallel-mcmc"
	}

	planner := realhf.NewPlanner(realhf.ClusterConfig{})

	if *heuristic {
		exp, err := planner.Heuristic(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Heuristic plan for %s actor + %s critic on %d GPUs (%s):\n\n",
			*actor, *critic, exp.Cluster.NumGPUs(), *algo)
		fmt.Print(exp.PlanTable())
		printEstimate(exp)
		return 0
	}

	// Ctrl-C cancels the search mid-flight through the Planner's context
	// plumbing instead of killing the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var opts []realhf.AutoOption
	if *progress {
		opts = append(opts, realhf.WithProgress(func(pt search.ProgressPoint) {
			fmt.Printf("  step %6d  best %.2fs  (t=%s)\n",
				pt.Step, pt.BestCost, pt.Elapsed.Round(1e6))
		}))
	}
	exp, err := planner.Plan(ctx, cfg, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *save != "" {
		if err := exp.SavePlan(*save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan written to %s (re-run it with realrun -plan %s)\n", *save, *save)
	}
	fmt.Printf("Searched plan for %s actor + %s critic on %d GPUs (%s, solver=%s, %d steps):\n\n",
		*actor, *critic, exp.Cluster.NumGPUs(), *algo, exp.Config.Solver, exp.SearchStats.Steps)
	fmt.Print(exp.PlanTable())
	printEstimate(exp)
	st := exp.SearchStats
	fmt.Printf("Search space: ~1e%.0f plans, accepted %d/%d moves\n",
		st.SpaceLog10, st.Accepted, st.Steps)
	fmt.Printf("Cost cache: %d hits / %d misses (%.1f%% hit rate)\n",
		st.CacheHits, st.CacheMisses, 100*st.CacheHitRate())
	if len(st.Chains) > 1 {
		fmt.Printf("\n%-6s %-22s %10s %10s %12s\n", "Chain", "Seed", "Proposed", "Accepted", "BestCost")
		for _, c := range st.Chains {
			fmt.Printf("%-6d %-22d %10d %10d %11.1fs\n",
				c.Chain, c.Seed, c.Proposed, c.Accepted, c.BestCost)
		}
	}
	if exp.Estimate.OOM {
		return 1
	}
	return 0
}

func printEstimate(exp *realhf.Experiment) {
	sem := "serialized"
	if exp.Config.PlanForOverlap {
		sem = "overlapped"
	}
	fmt.Printf("\nEstimated iteration time (%s schedule): %.1fs   MaxMem: %.1f GB   OOM: %v\n",
		sem, exp.Estimate.TimeCost, float64(exp.Estimate.MaxMem)/(1<<30), exp.Estimate.OOM)
}
