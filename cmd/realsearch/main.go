// Command realsearch searches for an execution plan for one RLHF experiment
// and prints it in the format of paper Tables 2–5, together with the
// estimator's prediction and the solver's efficiency counters (cache
// hit-rate, per-chain accepted/proposed steps).
//
// Usage:
//
//	realsearch -actor 70b -critic 7b -nodes 16 -batch 4096 -steps 4000
//	realsearch -actor 7b -critic 7b -solver parallel-mcmc -chains 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/experiments"
	"realhf/internal/model"
	"realhf/internal/search"
)

func main() {
	log.SetFlags(0)
	actor := flag.String("actor", "7b", "actor model size (7b, 13b, 34b, 70b)")
	critic := flag.String("critic", "7b", "critic/reward model size")
	nodes := flag.Int("nodes", 2, "number of 8-GPU nodes")
	batch := flag.Int("batch", 0, "global batch size (default: 512 per 16 GPUs)")
	prompt := flag.Int("prompt", 1024, "prompt length in tokens")
	gen := flag.Int("gen", 1024, "generated tokens per sequence")
	algo := flag.String("algo", "ppo", "RLHF algorithm: ppo, dpo, grpo, remax")
	solver := flag.String("solver", "mcmc",
		"planning engine: "+strings.Join(search.Names(), ", "))
	chains := flag.Int("chains", 0,
		"parallel MCMC chains (implies -solver parallel-mcmc when > 1; 0 = solver default)")
	steps := flag.Int("steps", 4000, "MCMC search steps (per chain)")
	seed := flag.Int64("seed", 1, "search seed")
	heuristic := flag.Bool("heuristic", false, "print the heuristic plan instead of searching")
	save := flag.String("save", "", "write the resulting plan to this JSON file")
	flag.Parse()

	actorCfg, err := model.ByName(*actor)
	if err != nil {
		log.Fatal(err)
	}
	criticCfg, err := model.ByName(*critic)
	if err != nil {
		log.Fatal(err)
	}
	s := experiments.PaperSetting(*nodes, actorCfg, criticCfg)
	s.PromptLen, s.GenLen, s.Algo = *prompt, *gen, *algo
	if *batch > 0 {
		s.Batch = *batch
	}
	pr, err := experiments.NewProblem(s)
	if err != nil {
		log.Fatal(err)
	}

	if *heuristic {
		plan, err := baselines.BuildHeuristic(pr.Cluster, pr.Graph, pr.Models)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pr.Est.Evaluate(plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Heuristic plan for %s actor + %s critic on %d GPUs (%s):\n\n",
			*actor, *critic, pr.Cluster.NumGPUs(), *algo)
		fmt.Print(plan.Table(res.CallTimes))
		fmt.Printf("\nEstimated iteration time: %.1fs   MaxMem: %.1f GB   OOM: %v\n",
			res.TimeCost, float64(res.MaxMem)/(1<<30), res.OOM)
		return
	}

	name := *solver
	if *chains > 1 && name == "mcmc" {
		name = "parallel-mcmc"
	}
	res, err := pr.SolveWith(name, search.Options{
		MaxSteps: *steps, Seed: *seed, Chains: *chains,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *save != "" {
		if err := core.SavePlan(res.Plan, *save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan written to %s\n", *save)
	}
	fmt.Printf("Searched plan for %s actor + %s critic on %d GPUs (%s, solver=%s, %d steps):\n\n",
		*actor, *critic, pr.Cluster.NumGPUs(), *algo, name, res.Steps)
	fmt.Print(res.Plan.Table(res.Estimate.CallTimes))
	fmt.Printf("\nEstimated iteration time: %.1fs   MaxMem: %.1f GB   OOM: %v\n",
		res.Estimate.TimeCost, float64(res.Estimate.MaxMem)/(1<<30), res.Estimate.OOM)
	fmt.Printf("Search space: ~1e%.0f plans, accepted %d/%d moves\n",
		res.SpaceLog10, res.Accepted, res.Steps)
	fmt.Printf("Cost cache: %d hits / %d misses (%.1f%% hit rate)\n",
		res.CacheHits, res.CacheMisses, 100*res.CacheHitRate())
	if len(res.Chains) > 1 {
		fmt.Printf("\n%-6s %-22s %10s %10s %12s\n", "Chain", "Seed", "Proposed", "Accepted", "BestCost")
		for _, c := range res.Chains {
			fmt.Printf("%-6d %-22d %10d %10d %11.1fs\n",
				c.Chain, c.Seed, c.Proposed, c.Accepted, c.BestCost)
		}
	}
	if res.Estimate.OOM {
		os.Exit(1)
	}
}
