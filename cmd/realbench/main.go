// Command realbench regenerates the paper's tables and figures on the
// simulated cluster. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the comparison against the published
// numbers.
//
// Usage:
//
//	realbench -exp all          # everything at paper scale (minutes)
//	realbench -exp fig7 -quick  # one experiment, reduced scale
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"realhf"
	"realhf/internal/experiments"
	"realhf/internal/model"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all",
		"experiment: table1, plans (tables 2-6), fig2, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, ablation, overlap, overlap-search, offload, limitation, drift, all")
	quick := flag.Bool("quick", false, "reduced scale for fast runs")
	steps := flag.Int("steps", 0, "override MCMC search steps")
	flag.Parse()

	searchSteps := 6000
	nodes := 16
	if *quick {
		searchSteps = 1500
		nodes = 2
	}
	if *steps > 0 {
		searchSteps = *steps
	}

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
	}

	run("table1", func() (string, error) { return experiments.Table1(), nil })

	run("plans", func() (string, error) {
		out, _, err := experiments.Tables2to6(searchSteps, *quick)
		return out, err
	})

	run("fig2", func() (string, error) {
		s := experiments.PaperSetting(nodes, bigActor(*quick), model.LLaMA7B)
		return experiments.Fig2(s, searchSteps, 2)
	})

	run("fig7", func() (string, error) {
		var b strings.Builder
		counts7 := []int{16, 32, 64, 128}
		counts13 := []int{32, 64, 128}
		if *quick {
			counts7, counts13 = []int{16, 32}, []int{32}
		}
		_, out, err := experiments.Fig7(model.LLaMA7B, counts7, searchSteps)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
		_, out, err = experiments.Fig7(model.LLaMA13B, counts13, searchSteps)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
		return b.String(), nil
	})

	run("fig8", func() (string, error) {
		combos := experiments.Fig8Combos()
		if *quick {
			combos = combos[:2]
		}
		_, out, err := experiments.Fig8(combos, nodes, []int{2048, 8192}, searchSteps)
		return out, err
	})

	run("fig9", func() (string, error) {
		var b strings.Builder
		small := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
		_, out, err := experiments.Fig9(small, searchSteps, 1)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
		big := experiments.PaperSetting(nodes, bigActor(*quick), model.LLaMA7B)
		_, out, err = experiments.Fig9(big, searchSteps, 2)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
		return b.String(), nil
	})

	run("fig10", func() (string, error) { return experiments.Fig10(16), nil })

	run("fig11", func() (string, error) {
		combos := experiments.Fig8Combos()
		if *quick {
			combos = combos[:2]
		}
		_, out, err := experiments.Fig11(combos, nodes, searchSteps)
		return out, err
	})

	run("fig12", func() (string, error) {
		scales := []int{2, 4, 8, 16}
		if *quick {
			scales = []int{2, 4}
		}
		_, out, err := experiments.Fig12(scales, searchSteps)
		return out, err
	})

	run("fig13", func() (string, error) {
		_, out, err := experiments.Fig13(searchSteps, []int{2048, 8192})
		return out, err
	})

	run("fig14", func() (string, error) {
		caps := []int{215, 464, 1000}
		steps := searchSteps
		if *quick {
			caps = []int{100, 300}
			steps = 600
		}
		_, out, err := experiments.Fig14(steps, caps)
		return out, err
	})

	run("fig15", func() (string, error) {
		topK := 6
		if *quick {
			topK = 4
		}
		_, out, err := experiments.Fig15(searchSteps, topK)
		return out, err
	})

	run("fig16", func() (string, error) {
		return fig16(nodes, searchSteps, bigActor(*quick), model.LLaMA7B)
	})

	run("fig17", func() (string, error) {
		actors := []model.Config{model.LLaMA7B, model.LLaMA13B, model.LLaMA34B}
		counts := []int{1, 2, 4, 8, 12, 16}
		if *quick {
			actors = actors[:1]
			counts = []int{1, 2, 4}
		}
		_, out, err := experiments.Fig17(actors, counts, searchSteps)
		return out, err
	})

	run("ablation", func() (string, error) {
		var b strings.Builder
		ablNodes := 4
		if *quick {
			ablNodes = 2
		}
		_, out, err := experiments.AblationNoRealloc(ablNodes, searchSteps)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
		b.WriteString("\n")
		s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA13B)
		_, _, out, err = experiments.AblationCrossIter(s, searchSteps)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
		return b.String(), nil
	})

	run("overlap", func() (string, error) {
		ovNodes := 4
		if *quick {
			ovNodes = 2
		}
		_, out, err := experiments.AblationOverlap(ovNodes, searchSteps)
		return out, err
	})

	run("overlap-search", func() (string, error) {
		ovNodes := 4
		if *quick {
			ovNodes = 2
		}
		_, out, err := experiments.AblationOverlapSearch(ovNodes, searchSteps)
		return out, err
	})

	run("offload", func() (string, error) {
		offSteps := searchSteps
		if offSteps > 1500 {
			// The 4-GPU problem is small; the solve converges well within
			// the quick budget.
			offSteps = 1500
		}
		_, out, err := experiments.AblationOffload(offSteps)
		return out, err
	})

	run("limitation", func() (string, error) {
		_, out, err := experiments.LimitationStudy(2, searchSteps, []float64{0, 0.25, 0.5, 0.75}, 9)
		return out, err
	})

	run("drift", func() (string, error) {
		driftNodes := 2
		if *quick {
			driftNodes = 1
		}
		_, _, out, err := experiments.AblationGenLenDrift(driftNodes, searchSteps, 4, 1)
		return out, err
	})
}

func bigActor(quick bool) model.Config {
	if quick {
		return model.LLaMA13B
	}
	return model.LLaMA70B
}

// fig16 regenerates the beyond-PPO comparison (paper Fig. 16) through the
// public realhf.Planner session and the public DPO/GRPO/ReMax presets — the
// same path library users take — instead of the internal experiments
// plumbing. One session plans all three algorithms, so the DPO, GRPO and
// ReMax solves share the planner's per-model costers, and the trailing
// stats line shows the session-level cache reuse.
func fig16(nodes, steps int, actor, small model.Config) (string, error) {
	planner := realhf.NewPlanner(realhf.ClusterConfig{Nodes: nodes})
	var b strings.Builder
	b.WriteString("Figure 16: RLHF algorithms beyond PPO\n")
	b.WriteString("=====================================\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %12s\n", "Algo", "Heuristic PF/s", "ReaL PF/s", "Improvement")
	for i, algo := range []string{"dpo", "grpo", "remax"} {
		cfg, err := realhf.PaperExperiment(algo, "llama"+actor.Name, "llama"+small.Name+"-critic", nodes, 0)
		if err != nil {
			return "", err
		}
		cfg.SearchSteps, cfg.Seed = steps, int64(1000+i)
		exp, err := planner.Plan(context.Background(), cfg)
		if err != nil {
			return "", err
		}
		rep, err := exp.Run()
		if err != nil {
			return "", err
		}
		heur, err := planner.Heuristic(cfg)
		if err != nil {
			return "", err
		}
		hrep, err := heur.Run()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8s %14.2f %14.2f %+11.1f%%\n",
			strings.ToUpper(algo), hrep.ThroughputPFLOPs, rep.ThroughputPFLOPs,
			100*(rep.ThroughputPFLOPs-hrep.ThroughputPFLOPs)/hrep.ThroughputPFLOPs)
	}
	st := planner.Stats()
	fmt.Fprintf(&b, "\nPlanner session: %d solves over %d problems, cost cache %d hits / %d misses\n",
		st.PlanCacheMisses, st.Problems, st.CostCacheHits, st.CostCacheMisses)
	return b.String(), nil
}
