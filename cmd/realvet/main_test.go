package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"realhf/internal/analysis"
)

func sampleDiagnostics(file string) []analysis.Diagnostic {
	return []analysis.Diagnostic{{
		Analyzer: "maporder",
		Pos:      token.Position{Filename: file, Line: 2, Column: 2},
		Message:  "map iteration over m appends to out; iterate sorted keys so the result is byte-reproducible",
		Fixes: []analysis.SuggestedFix{{
			Message: "iterate the map's keys in sorted order",
			TextEdits: []analysis.TextEdit{{
				Start:   token.Position{Filename: file, Offset: 10},
				End:     token.Position{Filename: file, Offset: 20},
				NewText: "SORTED",
			}},
		}},
	}}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, sampleDiagnostics("x.go")); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var out []jsonDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(out))
	}
	d := out[0]
	if d.Analyzer != "maporder" || d.File != "x.go" || d.Line != 2 || d.Column != 2 {
		t.Errorf("wrong position fields: %+v", d)
	}
	if len(d.Fixes) != 1 || len(d.Fixes[0].Edits) != 1 {
		t.Fatalf("suggested fixes not carried through: %+v", d)
	}
	e := d.Fixes[0].Edits[0]
	if e.Start != 10 || e.End != 20 || e.NewText != "SORTED" {
		t.Errorf("wrong edit: %+v", e)
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	if got := string(bytes.TrimSpace(buf.Bytes())); got != "[]" {
		t.Errorf("empty report = %q, want []", got)
	}
}

func TestApplyFixes(t *testing.T) {
	file := filepath.Join(t.TempDir(), "x.go")
	if err := os.WriteFile(file, []byte("0123456789abcdefghij-tail"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := applyFixes(sampleDiagnostics(file)); err != nil {
		t.Fatalf("applyFixes: %v", err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(data), "0123456789SORTED-tail"; got != want {
		t.Errorf("rewritten file = %q, want %q", got, want)
	}
}

func TestApplyFixesRejectsOverlap(t *testing.T) {
	file := filepath.Join(t.TempDir(), "x.go")
	if err := os.WriteFile(file, []byte("0123456789abcdefghij"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := sampleDiagnostics(file)
	diags = append(diags, sampleDiagnostics(file)...)
	diags[1].Fixes[0].TextEdits[0].Start.Offset = 15
	diags[1].Fixes[0].TextEdits[0].End.Offset = 20
	if err := applyFixes(diags); err == nil {
		t.Fatal("overlapping edits must be rejected")
	}
}

func TestApplyFixesRejectsOutOfRange(t *testing.T) {
	file := filepath.Join(t.TempDir(), "x.go")
	if err := os.WriteFile(file, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := applyFixes(sampleDiagnostics(file)); err == nil {
		t.Fatal("out-of-range edit must be rejected")
	}
}
