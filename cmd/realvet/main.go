// Command realvet machine-checks the repo's determinism, fingerprint and
// context contracts: a multichecker over the internal/analysis suite
// (maporder, wallclock, fieldcover, ctxerr), built only on the standard
// library so CI can compile it from the checkout with no network and run
// it as a blocking gate.
//
// Usage:
//
//	realvet [-json] [-fix] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit status
// is 0 when the tree is clean, 1 when any diagnostic survives the
// //lint:realvet suppressions, 2 on tool failure. -json emits a machine-
// readable report (one object per diagnostic, including suggested fixes);
// -fix applies available suggested edits (the maporder sorted-keys
// rewrite) in place — run gofmt and re-run realvet afterwards.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"realhf/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	fix := flag.Bool("fix", false, "apply suggested fixes in place")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "realvet:", err)
		return 2
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "realvet:", err)
		return 2
	}

	diags, err := analysis.Run(root, analyzers, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "realvet:", err)
		return 2
	}

	if *fix {
		if err := applyFixes(diags); err != nil {
			fmt.Fprintln(os.Stderr, "realvet: applying fixes:", err)
			return 2
		}
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "realvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			for _, f := range d.Fixes {
				fmt.Printf("\tsuggested fix: %s\n", f.Message)
				for _, e := range f.TextEdits {
					fmt.Printf("\t\treplace with:\n%s\n", indent(e.NewText, "\t\t| "))
				}
			}
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "realvet: %d contract violation(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// jsonDiagnostic is the -json wire shape: flat, stable field names, so CI
// log scrapers and editors can consume it without knowing the internal
// types.
type jsonDiagnostic struct {
	Analyzer string    `json:"analyzer"`
	File     string    `json:"file"`
	Line     int       `json:"line"`
	Column   int       `json:"column"`
	Message  string    `json:"message"`
	Fixes    []jsonFix `json:"suggested_fixes,omitempty"`
}

type jsonFix struct {
	Message string     `json:"message"`
	Edits   []jsonEdit `json:"edits"`
}

type jsonEdit struct {
	// Offsets are byte offsets into the file of the half-open replaced
	// range.
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		jd := jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		}
		for _, f := range d.Fixes {
			jf := jsonFix{Message: f.Message}
			for _, e := range f.TextEdits {
				jf.Edits = append(jf.Edits, jsonEdit{
					Start:   e.Start.Offset,
					End:     e.End.Offset,
					NewText: e.NewText,
				})
			}
			jd.Fixes = append(jd.Fixes, jf)
		}
		out = append(out, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// applyFixes rewrites files with every suggested edit, back to front per
// file so earlier offsets stay valid.
func applyFixes(diags []analysis.Diagnostic) error {
	type edit struct {
		start, end int
		newText    string
	}
	perFile := map[string][]edit{}
	for _, d := range diags {
		for _, f := range d.Fixes {
			for _, e := range f.TextEdits {
				perFile[e.Start.Filename] = append(perFile[e.Start.Filename], edit{
					start:   e.Start.Offset,
					end:     e.End.Offset,
					newText: e.NewText,
				})
			}
		}
	}
	for file, edits := range perFile {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i, e := range edits {
			if i > 0 && e.end > edits[i-1].start {
				return fmt.Errorf("%s: overlapping suggested edits; fix manually", file)
			}
			if e.start < 0 || e.end > len(data) {
				return fmt.Errorf("%s: suggested edit out of range", file)
			}
			data = append(data[:e.start], append([]byte(e.newText), data[e.end:]...)...)
		}
		if err := os.WriteFile(file, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("realvet: rewrote %s (%d fix(es)); run gofmt and re-run realvet\n", file, len(edits))
	}
	return nil
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	return out
}
