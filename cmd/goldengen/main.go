// Command goldengen regenerates testdata/golden_plans.txt: the pinned
// fingerprints of the seed-fixed, step-bounded MCMC solver plus the
// runtime engine's virtual timings (serialized and overlapped) for those
// plans and for a fixed reallocation-heavy placement. A second section pins
// the same solves under the overlap-aware cost semantics
// (search.Problem.Overlap), so both search objectives are regression-gated.
//
// The file is a committed artifact. CI re-runs this tool and fails via
// `git diff --exit-code` if any fingerprint or virtual timing changed —
// plan-search and runtime regressions surface as diffs, and deliberate
// cost-model changes are recorded by regenerating the file in the same
// commit.
//
// Usage:
//
//	go run ./cmd/goldengen -out testdata/golden_plans.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"strings"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
	"realhf/internal/runtime"
	"realhf/internal/search"
)

// goldenProblem mirrors the search tests' 2-node 7B+7B problem, so the
// fingerprints here cross-check TestGoldenSingleChainPlans.
func goldenProblem() (*core.Plan, *estimator.Estimator) {
	cluster := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 1})
	p := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA7B, model.LLaMA7B))
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range p.Models {
		costers[role] = gpumodel.NewOracle(cluster, ms.Cfg)
	}
	return p, estimator.New(cluster, costers)
}

// offloadProblem is the memory-constrained single-node problem of the
// offload-aware section: 7B trainable actor/critic with 34B frozen
// ref/reward on 4 GPUs, where only plans that park the frozen weights in
// host memory fit HBM (mirrors TestOffloadSearchFindsFeasiblePlan).
func offloadProblem() (*core.Plan, *estimator.Estimator) {
	cluster := hardware.DefaultCluster(1)
	cluster.GPUsPerNode = 4
	g := dfg.BuildPPO(dfg.Spec{Batch: 64, PromptLen: 256, GenLen: 256, Iterations: 1})
	models := core.PPOModels(model.LLaMA7B, model.LLaMA7B)
	ref := models[dfg.Ref]
	ref.Cfg = model.LLaMA34B
	models[dfg.Ref] = ref
	rw := models[dfg.Reward]
	rw.Cfg = model.LLaMA34B
	models[dfg.Reward] = rw
	p := core.NewPlan(cluster, g, models)
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range p.Models {
		costers[role] = gpumodel.NewOracle(cluster, ms.Cfg)
	}
	return p, estimator.New(cluster, costers)
}

// splitPlan is the fixed reallocation-heavy placement (actor half / critic
// half with re-parallelized generation) whose overlapped run must beat the
// serialized baseline.
func splitPlan() (*core.Plan, error) {
	cluster := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 1})
	p := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA7B, model.LLaMA7B))
	m0, err := mesh.New(0, 8, 8)
	if err != nil {
		return nil, err
	}
	m1, err := mesh.New(8, 8, 8)
	if err != nil {
		return nil, err
	}
	st := parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 2}
	stGen := parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1}
	p.Assign["ActorGen"] = core.Assignment{Mesh: m0, Strategy: stGen}
	p.Assign["RefInf"] = core.Assignment{Mesh: m0, Strategy: st}
	p.Assign["ActorTrain"] = core.Assignment{Mesh: m0, Strategy: st}
	p.Assign["RewInf"] = core.Assignment{Mesh: m1, Strategy: st}
	p.Assign["CriticInf"] = core.Assignment{Mesh: m1, Strategy: st}
	p.Assign["CriticTrain"] = core.Assignment{Mesh: m1, Strategy: st}
	return p, p.Validate()
}

// timelineHash folds a report's full timeline into one FNV-1a fingerprint:
// any reordering or retiming of any span changes it.
func timelineHash(rep *runtime.Report) uint64 {
	h := fnv.New64a()
	for _, s := range rep.Timeline {
		fmt.Fprintf(h, "%s|%d|%d|%d|%.9e|%.9e;", s.Label, s.Kind, s.Stream, s.Lane, s.StartV, s.EndV)
	}
	return h.Sum64()
}

// runBoth executes a plan serialized and overlapped and renders one golden
// line fragment. The overlapped makespan must never exceed the serialized
// one; on plans with communication it must be strictly lower.
func runBoth(p *core.Plan, requireStrict bool) (string, error) {
	serial, err := runtime.RunDefault(p)
	if err != nil {
		return "", err
	}
	over, err := runtime.RunOverlapped(p)
	if err != nil {
		return "", err
	}
	if over.MakespanV > serial.MakespanV {
		return "", fmt.Errorf("overlapped makespan %.9e exceeds serialized %.9e", over.MakespanV, serial.MakespanV)
	}
	if requireStrict && !(over.MakespanV < serial.MakespanV) {
		return "", fmt.Errorf("overlap did not strictly improve a realloc-heavy plan (%.9e vs %.9e)",
			over.MakespanV, serial.MakespanV)
	}
	return fmt.Sprintf("serial=%.9e overlap=%.9e comm=%.9e tl_serial=%016x tl_overlap=%016x",
		serial.MakespanV, over.MakespanV, serial.CommTimeV,
		timelineHash(serial), timelineHash(over)), nil
}

func main() {
	log.SetFlags(0)
	out := flag.String("out", "testdata/golden_plans.txt", "output file")
	steps := flag.Int("steps", 600, "MCMC step bound for the pinned solves")
	flag.Parse()

	var b strings.Builder
	b.WriteString("# Golden execution plans and runtime timings.\n")
	b.WriteString("# Regenerate deliberately with: go run ./cmd/goldengen -out testdata/golden_plans.txt\n")
	b.WriteString("# CI re-runs the generator and fails on `git diff --exit-code testdata/`.\n")

	for _, seed := range []int64{1, 7, 42} {
		plan, est := goldenProblem()
		res, err := search.Search(est, plan, search.Options{MaxSteps: *steps, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		runs, err := runBoth(res.Plan, false)
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		fmt.Fprintf(&b, "mcmc seed=%d steps=%d cost=%.9e fp=%s %s\n",
			seed, *steps, res.Cost, res.Plan.Fingerprint(), runs)
	}

	split, err := splitPlan()
	if err != nil {
		log.Fatal(err)
	}
	runs, err := runBoth(split, true)
	if err != nil {
		log.Fatalf("split plan: %v", err)
	}
	fmt.Fprintf(&b, "split fp=%s %s\n", split.Fingerprint(), runs)

	// Overlap-aware section: the same seeds solved with candidates scored
	// under the overlapped-engine semantics (estimator.Estimator.OverlapComm
	// via search.Problem.Overlap). The serialized section above must stay
	// byte-identical — the knob defaults off.
	b.WriteString("# Overlap-aware search (candidates costed with estimator OverlapComm).\n")
	for _, seed := range []int64{1, 7, 42} {
		plan, est := goldenProblem()
		res, err := search.Solve(context.Background(), "mcmc",
			search.Problem{Est: est, Plan: plan, Overlap: true},
			search.Options{MaxSteps: *steps, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		runs, err := runBoth(res.Plan, false)
		if err != nil {
			log.Fatalf("overlap-aware seed %d: %v", seed, err)
		}
		fmt.Fprintf(&b, "mcmc-overlap seed=%d steps=%d cost=%.9e fp=%s %s\n",
			seed, *steps, res.Cost, res.Plan.Fingerprint(), runs)
	}

	// Offload-aware section: the memory-constrained 4-GPU problem solved
	// with per-call host offload as a searched dimension
	// (search.Options.OffloadSearch) and the memory ledger as a hard
	// constraint. The sections above must stay byte-identical — the knob
	// defaults off and touches no default-path RNG stream.
	b.WriteString("# Offload-aware search (host offload searched per call, memory as a hard constraint).\n")
	for _, seed := range []int64{1, 7, 42} {
		plan, est := offloadProblem()
		res, err := search.Solve(context.Background(), "mcmc",
			search.Problem{Est: est, Plan: plan},
			search.Options{MaxSteps: *steps, Seed: seed, OffloadSearch: true})
		if err != nil {
			log.Fatal(err)
		}
		if res.Estimate.OOM {
			log.Fatalf("offload-aware seed %d: chosen plan infeasible (max %d bytes)", seed, res.Estimate.MaxMem)
		}
		runs, err := runBoth(res.Plan, false)
		if err != nil {
			log.Fatalf("offload-aware seed %d: %v", seed, err)
		}
		fmt.Fprintf(&b, "mcmc-offload seed=%d steps=%d cost=%.9e fp=%s %s\n",
			seed, *steps, res.Cost, res.Plan.Fingerprint(), runs)
	}

	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
