// Command benchdiff converts `go test -bench` output into a JSON benchmark
// manifest and gates it against a committed baseline — the CI
// benchmark-regression check.
//
// The repo's benchmarks report two kinds of numbers:
//
//   - custom metrics (virtual seconds, speedups, percentages): deterministic
//     functions of the simulated cluster, identical on any machine. These
//     are compared two-sided against the baseline with a tight relative
//     tolerance — any drift, faster or slower, is a semantic change that
//     must be accompanied by a deliberate baseline regeneration.
//   - ns/op (and MB/s): physical, machine-dependent. These are gated
//     one-sided with a generous factor to catch order-of-magnitude blowups
//     without flaking on runner variance; 0 disables that gate.
//   - allocs/op and B/op: allocation counts are a property of the code, not
//     the machine, so they get their own much tighter one-sided -alloc-factor
//     gate. The solver hot path is allocation-free by construction; a creep
//     back to per-step garbage is a regression even when ns/op stays inside
//     the noisy time gate.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run '^$' . | go run ./cmd/benchdiff -current - -out BENCH_new.json
//	go run ./cmd/benchdiff -current bench.txt -baseline BENCH_baseline.json -out BENCH_new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's parsed results.
type Bench struct {
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics maps a unit (e.g. "overlap-e2e-s") to its reported value.
	// Physical units (B/op, allocs/op, MB/s) live here too.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Manifest is the JSON artifact: benchmark name (GOMAXPROCS suffix
// stripped) to results.
type Manifest struct {
	Benchmarks map[string]Bench `json:"benchmarks"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// physicalUnits are machine-dependent and gated one-sided by -time-factor.
var physicalUnits = map[string]bool{"ns/op": true, "MB/s": true}

// allocUnits are machine-independent allocation counters, gated one-sided by
// the tighter -alloc-factor.
var allocUnits = map[string]bool{"B/op": true, "allocs/op": true}

func parseBenchOutput(r io.Reader) (*Manifest, error) {
	m := &Manifest{Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines: Name-N  iterations  (value unit)+
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := strings.TrimPrefix(procSuffix.ReplaceAllString(fields[0], ""), "Benchmark")
		b := Bench{Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = val
			} else {
				b.Metrics[unit] = val
			}
		}
		m.Benchmarks[name] = b
	}
	return m, sc.Err()
}

// compare gates current against baseline; it returns the list of failures
// (empty means the gate passes).
func compare(baseline, current *Manifest, metricTol, timeFactor, allocFactor float64) []string {
	var fails []string
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: benchmark missing from current run", name))
			continue
		}
		if timeFactor > 0 && base.NsPerOp > 0 && cur.NsPerOp > base.NsPerOp*timeFactor {
			fails = append(fails, fmt.Sprintf("%s: ns/op %.0f exceeds baseline %.0f by more than %gx",
				name, cur.NsPerOp, base.NsPerOp, timeFactor))
		}
		units := make([]string, 0, len(base.Metrics))
		for unit := range base.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			bv := base.Metrics[unit]
			cv, ok := cur.Metrics[unit]
			if !ok {
				fails = append(fails, fmt.Sprintf("%s: metric %q missing from current run", name, unit))
				continue
			}
			if physicalUnits[unit] {
				if timeFactor > 0 && bv > 0 && cv > bv*timeFactor {
					fails = append(fails, fmt.Sprintf("%s: %s %.0f exceeds baseline %.0f by more than %gx",
						name, unit, cv, bv, timeFactor))
				}
				continue
			}
			if allocUnits[unit] {
				if allocFactor <= 0 {
					continue
				}
				// A zero baseline means the path is allocation-free; hold it
				// there exactly rather than letting a multiplicative gate
				// vacuously pass any creep.
				if bv == 0 && cv > 0 {
					fails = append(fails, fmt.Sprintf("%s: %s grew 0 -> %.0f (allocation-free baseline)",
						name, unit, cv))
				} else if cv > bv*allocFactor {
					fails = append(fails, fmt.Sprintf("%s: %s %.0f exceeds baseline %.0f by more than %gx",
						name, unit, cv, bv, allocFactor))
				}
				continue
			}
			scale := math.Max(math.Abs(bv), 1e-12)
			if math.Abs(cv-bv)/scale > metricTol {
				fails = append(fails, fmt.Sprintf("%s: %s drifted %.6g -> %.6g (>%.2g%% relative)",
					name, unit, bv, cv, 100*metricTol))
			}
		}
	}
	return fails
}

func main() {
	log.SetFlags(0)
	current := flag.String("current", "", "bench output text to parse ('-' for stdin)")
	baselinePath := flag.String("baseline", "", "baseline manifest JSON to gate against (optional)")
	out := flag.String("out", "", "write the parsed manifest JSON here (optional)")
	metricTol := flag.Float64("metric-tol", 0.01,
		"two-sided relative tolerance for deterministic custom metrics")
	timeFactor := flag.Float64("time-factor", 8,
		"one-sided blowup factor for machine-dependent ns/op-style numbers (0 disables)")
	allocFactor := flag.Float64("alloc-factor", 1.5,
		"one-sided growth factor for allocs/op and B/op; zero baselines are held at zero (0 disables)")
	flag.Parse()

	if *current == "" {
		log.Fatal("benchdiff: -current is required")
	}
	var in io.Reader = os.Stdin
	if *current != "-" {
		f, err := os.Open(*current)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	manifest, err := parseBenchOutput(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(manifest.Benchmarks) == 0 {
		log.Fatal("benchdiff: no benchmark lines found in input")
	}
	if *out != "" {
		data, err := json.MarshalIndent(manifest, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(manifest.Benchmarks))
	}
	if *baselinePath == "" {
		return
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	var baseline Manifest
	if err := json.Unmarshal(data, &baseline); err != nil {
		log.Fatalf("benchdiff: bad baseline %s: %v", *baselinePath, err)
	}
	fails := compare(&baseline, manifest, *metricTol, *timeFactor, *allocFactor)
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) against %s\n", len(fails), *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within tolerance of %s\n",
		len(baseline.Benchmarks), *baselinePath)
}
