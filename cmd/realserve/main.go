// Command realserve runs the plan service: an HTTP/JSON frontend over one
// shared realhf.Planner session. Identical concurrent requests are
// coalesced into a single solve, plan and cost caches are shared across
// tenants while per-tenant calibration stays isolated, and a bounded
// admission queue answers overload with 429 + Retry-After instead of
// queueing unboundedly. SIGINT/SIGTERM drains gracefully: in-flight solves
// finish (up to -drain-timeout), new requests get 503.
//
// Usage:
//
//	realserve -addr :7799 -nodes 4
//	realserve -addr 127.0.0.1:7799 -max-solves 4 -queue-depth 32
//
//	curl -s localhost:7799/v1/plan -d '{"algo":"ppo","actor_type":"llama7b","critic_type":"llama7b-critic","config":{"batch_size":256}}'
//	curl -s localhost:7799/v1/stats
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"realhf"
	"realhf/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7799", "listen address")
	nodes := flag.Int("nodes", 2, "default cluster size in 8-GPU nodes for requests that set none")
	gpusPerNode := flag.Int("gpus-per-node", 8, "GPUs per node")
	planCache := flag.Int("plan-cache", 0, "plan cache entries (0 = library default)")
	problemCache := flag.Int("problem-cache", 0, "per-problem cost cache entries (0 = library default)")
	maxSolves := flag.Int("max-solves", 2, "solves running concurrently")
	queueDepth := flag.Int("queue-depth", 16, "admitted solves allowed to wait for a slot before 429")
	defaultDeadline := flag.Duration("default-deadline", 60*time.Second, "deadline for requests that send no deadline_ms")
	maxDeadline := flag.Duration("max-deadline", 5*time.Minute, "cap on client-supplied deadlines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight solves before canceling them")
	flag.Parse()

	planner := realhf.NewPlanner(realhf.ClusterConfig{
		Nodes:               *nodes,
		GPUsPerNode:         *gpusPerNode,
		PlanCacheEntries:    *planCache,
		ProblemCacheEntries: *problemCache,
	})
	srv, err := serve.New(serve.Config{
		Planner:             planner,
		MaxConcurrentSolves: *maxSolves,
		QueueDepth:          *queueDepth,
		DefaultDeadline:     *defaultDeadline,
		MaxDeadline:         *maxDeadline,
	})
	if err != nil {
		log.Print(err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("realserve: listening on http://%s (nodes=%d gpus/node=%d max-solves=%d queue-depth=%d)",
		ln.Addr(), *nodes, *gpusPerNode, *maxSolves, *queueDepth)

	select {
	case sig := <-sigs:
		log.Printf("realserve: %v received, draining (timeout %v)", sig, *drainTimeout)
	case err := <-errCh:
		log.Printf("realserve: serve: %v", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("realserve: drain timed out, in-flight solves canceled: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
	}
	log.Print("realserve: drained, bye")
	return 0
}
