package realhf

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/hardware"
	"realhf/internal/realloc"
	"realhf/internal/runtime"
)

// Trainer is a long-lived, concurrency-safe training session — the
// execution-side twin of the Planner. Where Experiment.Run rebuilds model
// workers and a transport for every call, a Trainer owns a persistent
// worker fleet and transport across the whole campaign, resetting (not
// rebuilding) them between iterations, and it closes the planning↔execution
// loop the one-shot API leaves open:
//
//   - profile feedback: observed per-RPC durations from each iteration's
//     runtime report are folded back into the estimator as calibration
//     multipliers (observed / predicted per call), layered over the pure
//     cost model;
//   - replanning: when estimate-vs-observed drift exceeds the replan
//     threshold, or a WithGenLenSchedule workload ramp changes the config
//     (the paper's §8 limitation — generation length drifting over a
//     training run), the Trainer replans through the owning Planner's
//     caches with the calibrated estimator and switches plans only when the
//     predicted gain covers the switch cost;
//   - switch pricing: a plan switch is charged the parameter-reallocation
//     cost of moving every model from its old home layout to the new one,
//     priced exactly as §5 prices reallocation (parallel broadcasts, the
//     busiest GPU bounds the wall time), and accounted in the iteration
//     report and the campaign total;
//   - elastic resize: Resize replans the campaign onto a different node
//     count mid-training, charges the reallocation into the new mesh, and
//     swaps the worker fleet.
//
// Calibrated replans live in calibration-keyed planner problems, so a
// Trainer never poisons the session's default plan or cost caches: a plain
// Planner.Plan for the same config before and after a campaign returns
// byte-identical estimates.
//
// Step, Campaign, Resize, Stats and Close may be called from any goroutine;
// the session serializes them internally (iterations are inherently
// sequential — each consumes the previous one's profile feedback).
type Trainer struct {
	planner *Planner

	mu   sync.Mutex
	base ExperimentConfig // defaults applied; GenLen/Nodes evolve with schedule and resizes
	opts trainOptions
	run  RunOptions

	pool *runtime.WorkerPool
	hw   hardware.Cluster // execution cluster (run-option scaling applied)

	plan       *core.Plan       // current execution plan (assignments)
	plannedCfg ExperimentConfig // config the current plan was last (re)considered at
	calib      *estimator.Calibration
	drifted    bool // profile feedback demands a replan before the next iteration

	workerTimeout time.Duration

	iter              int
	replans, switches int
	workerFailures    int
	switchCostV       float64
	totalV            float64
	pendingSwitchCost float64
	closed            bool
}

// TrainOption customizes a training session.
type TrainOption func(*trainOptions)

type trainOptions struct {
	progress    func(IterationReport)
	genLen      func(iter int) int
	threshold   float64
	frozen      bool
	runOpts     *RunOptions
	planOpts    []AutoOption
	hasRunOpts  bool
	poolFactory WorkerPoolFactory
}

// defaultReplanThreshold is the estimate-vs-observed relative drift above
// which the Trainer replans (15%): comfortably above the estimator's
// residual error on predictable workloads (Fig. 12 reports single-digit
// percentages there), and comfortably below the drift a real generation
// length change produces.
const defaultReplanThreshold = 0.15

// defaultWorkerTimeout is the liveness bound Trainer sessions run under
// when RunOptions.WorkerTimeout is unset: generous against scheduling
// jitter (the simulated fleet answers in microseconds), tight enough that
// a dead worker costs a campaign seconds, not forever.
const defaultWorkerTimeout = 2 * time.Second

// WorkerPoolFactory builds the worker fleet a Trainer executes on — called
// at session open, on every Resize, and on every shrink-replan after a
// worker loss (pools are rebuilt, never patched, so adopted transports and
// custom deployments work uniformly). The default wraps
// runtime.NewWorkerPool (in-process channel workers). Custom factories are
// how campaigns run over other transports: build the fleet, wrap its
// transport (e.g. runtime.NewFaultyTransport for chaos tests, or a
// TCPTransport fleet), and return runtime.NewWorkerPoolWith.
type WorkerPoolFactory func(numGPUs int, memoryBytes int64) (*runtime.WorkerPool, error)

// WithWorkerPoolFactory routes every worker-fleet (re)build through fn.
// The Trainer owns the returned pools (it closes the old pool before
// requesting a replacement); any caller-owned far side (a TCP worker
// server, say) stays the caller's to tear down.
func WithWorkerPoolFactory(fn WorkerPoolFactory) TrainOption {
	return func(o *trainOptions) { o.poolFactory = fn }
}

// WithIterationProgress streams every iteration's report to fn as the
// campaign runs — makespan, observed per-RPC durations, drift, charged
// reallocation cost and the plan fingerprint. fn runs on the training
// critical path between iterations (with the session unlocked, so it may
// call back into the Trainer) and must be fast.
func WithIterationProgress(fn func(IterationReport)) TrainOption {
	return func(o *trainOptions) { o.progress = fn }
}

// WithGenLenSchedule makes the workload dynamic: iteration i generates
// fn(i) tokens instead of the config's fixed GenLen. This is the §8
// scenario — generation length drifting over a training run — and a change
// in the scheduled length is a replan trigger (the Trainer still switches
// plans only when the predicted gain covers the reallocation cost).
func WithGenLenSchedule(fn func(iter int) int) TrainOption {
	return func(o *trainOptions) { o.genLen = fn }
}

// WithReplanThreshold sets the estimate-vs-observed relative drift (e.g.
// 0.15 for 15%) above which profile feedback triggers a replan. Values <= 0
// are rejected by Train.
func WithReplanThreshold(frac float64) TrainOption {
	return func(o *trainOptions) { o.threshold = frac }
}

// WithFrozenPlan pins the iteration-0 plan for the whole campaign: no
// profile feedback, no replanning, no switch charges — the one-shot
// baseline the replanning Trainer is measured against (and the only mode
// the pre-Trainer API could express). Reports still stream. One exception:
// a lost worker still forces a shrink-replan (the frozen plan's mesh no
// longer exists) — survival outranks baseline purity.
func WithFrozenPlan() TrainOption {
	return func(o *trainOptions) { o.frozen = true }
}

// WithTrainRunOptions executes every iteration under the given run options
// instead of DefaultRunOptions. Options are validated by Train with the
// same shared checker as Run/RunWith/WithRunOptions. Note that cluster
// overrides (bandwidth, latency, memory scales) apply to execution only —
// planning still models the unscaled cluster, so the resulting
// estimate-vs-observed drift is real feedback the session calibrates away.
func WithTrainRunOptions(opts RunOptions) TrainOption {
	return func(o *trainOptions) { o.runOpts, o.hasRunOpts = &opts, true }
}

// WithPlanOptions forwards planning options (WithSolver,
// WithSearchParallelism, WithOverlapAwareSearch, ...) to the initial plan
// and to every replan the session issues.
func WithPlanOptions(opts ...AutoOption) TrainOption {
	return func(o *trainOptions) { o.planOpts = append(o.planOpts, opts...) }
}

// IterationReport describes one executed campaign iteration.
type IterationReport struct {
	// Iter is the iteration index within the campaign (0-based).
	Iter int
	// GenLen and Nodes are the workload and cluster scale this iteration
	// executed at.
	GenLen, Nodes int
	// MakespanV is the iteration's virtual wall time (excluding any plan
	// switch; see ReallocSwitchCost). EstMakespanV is what the (calibrated)
	// estimator predicted for the executed plan under this iteration's
	// workload — the pair the session's drift detection and the Fig. 12
	// estimator-accuracy comparison are built from.
	MakespanV    float64
	EstMakespanV float64
	// ThroughputPFLOPs is the iteration's end-to-end throughput.
	ThroughputPFLOPs float64
	// CallTimes are the observed per-RPC durations from the runtime report;
	// EstCallTimes are the (calibrated) estimator's predictions for the same
	// calls. Their ratio is the profile feedback folded into the session's
	// calibration.
	CallTimes, EstCallTimes map[string]float64
	// Drift is the largest relative |observed-estimated|/estimated over the
	// iteration's calls, measured before this iteration's feedback was
	// folded in. Exceeding the replan threshold schedules a replan.
	Drift float64
	// Replanned reports that a replan ran before this iteration; Switched
	// that it actually changed the plan (a replan whose candidate cannot pay
	// for its own reallocation keeps the incumbent). PlanCached reports the
	// replan was answered from the Planner's plan cache without a search.
	Replanned, Switched, PlanCached bool
	// ReallocSwitchCost is the §5-priced parameter-reallocation cost charged
	// between the previous iteration and this one (0 when the plan was
	// kept). It is included in the campaign's total makespan.
	ReallocSwitchCost float64
	// PlanFingerprint identifies the executed plan's assignments.
	PlanFingerprint string
	// WorkerLost reports that one or more workers died during this
	// iteration's attempts; LostGPUs lists them in detection order. Each
	// loss evicted the failed device's host node and forced a
	// shrink-replan (Replanned/Switched are set, ReallocSwitchCost charges
	// the move), after which the iteration re-executed on the survivor
	// mesh — so MakespanV and Nodes describe the degraded, surviving run.
	WorkerLost bool
	LostGPUs   []int
	// OOM and Errors surface worker diagnostics.
	OOM    bool
	Errors []string
}

// CampaignReport aggregates a multi-iteration run.
type CampaignReport struct {
	Iterations []IterationReport
	// CompletedIterations counts iterations that fully executed —
	// len(Iterations), maintained explicitly so a campaign that ends early
	// (context cancellation or a runtime error) still hands back a
	// consistent partial report: the accounting below always describes
	// exactly the completed prefix, whatever ended the campaign.
	CompletedIterations int
	// TotalMakespanV is the campaign's virtual wall time: the sum of
	// iteration makespans plus every charged plan-switch reallocation cost.
	TotalMakespanV float64
	// SwitchCostV is the reallocation total alone.
	SwitchCostV float64
	// Replans counts replan attempts; Switches counts adopted plan changes.
	Replans, Switches int
	// WorkerFailures counts workers lost (and survived via shrink-replan)
	// across the campaign.
	WorkerFailures int
}

// TrainerStats snapshots a session.
type TrainerStats struct {
	// Iterations is the number of iterations executed so far.
	Iterations int
	// Replans counts replan attempts (drift- or schedule-triggered, plus
	// resizes); Switches counts the ones that changed the plan.
	Replans, Switches int
	// SwitchCostV and TotalMakespanV mirror the campaign accounting.
	SwitchCostV, TotalMakespanV float64
	// WorkerFailures counts workers lost (and survived) so far.
	WorkerFailures int
	// Nodes is the current cluster scale.
	Nodes int
	// PlanFingerprint identifies the current plan.
	PlanFingerprint string
	// CalibrationFactors is the current profile-feedback state: per-call
	// observed/predicted multipliers (nil when the pure cost model has been
	// accurate so far).
	CalibrationFactors map[string]float64
}

// Train opens a training session for cfg: it plans the first iteration
// through the session's caches (exactly as Plan would), then hands the plan
// to a persistent worker fleet the returned Trainer drives across
// iterations. The context governs the initial planning only; each
// Step/Campaign call takes its own.
//
// A GenLen schedule (WithGenLenSchedule) makes iteration 0's length the
// schedule's, not the config's. Close the Trainer to release its workers.
func (p *Planner) Train(ctx context.Context, cfg ExperimentConfig, opts ...TrainOption) (*Trainer, error) {
	o := trainOptions{threshold: defaultReplanThreshold}
	for _, fn := range opts {
		fn(&o)
	}
	if o.threshold <= 0 {
		return nil, fmt.Errorf("realhf: replan threshold %v must be positive: %w", o.threshold, ErrInvalidConfig)
	}
	run := DefaultRunOptions()
	if o.hasRunOpts {
		run = *o.runOpts
	}
	if err := run.Validate(); err != nil {
		return nil, err
	}
	cfg = p.merge(cfg).withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Align the planning objective with the engine the campaign executes on:
	// with communication overlap enabled (the default), every session plan —
	// initial, replans, resizes — is searched and estimated under the
	// overlapped cost semantics. Replanning decisions compare estimates
	// against observed makespans, and comparing a serialized estimate
	// against an overlapped runtime would systematically mis-adopt plans.
	if run.OverlapComm {
		cfg.PlanForOverlap = true
	}
	if o.genLen != nil {
		g0 := o.genLen(0)
		if g0 <= 0 {
			return nil, fmt.Errorf("realhf: GenLen schedule returned %d for iteration 0: %w", g0, ErrInvalidConfig)
		}
		cfg.GenLen = g0
	}
	if o.poolFactory == nil {
		o.poolFactory = func(numGPUs int, memoryBytes int64) (*runtime.WorkerPool, error) {
			return runtime.NewWorkerPool(numGPUs, memoryBytes), nil
		}
	}
	wt := run.WorkerTimeout
	if wt == 0 {
		wt = defaultWorkerTimeout
	}
	exp, err := p.Plan(ctx, cfg, o.planOpts...)
	if err != nil {
		return nil, err
	}
	hw := run.scaleCluster(exp.Cluster)
	pool, err := o.poolFactory(hw.NumGPUs(), hw.GPU.MemoryBytes)
	if err != nil {
		return nil, fmt.Errorf("realhf: worker pool for %d GPUs: %w", hw.NumGPUs(), err)
	}
	pool.SetFenceTimeout(wt)
	t := &Trainer{
		planner:       p,
		base:          cfg,
		opts:          o,
		run:           run,
		pool:          pool,
		hw:            hw,
		plan:          exp.Plan,
		plannedCfg:    exp.Config,
		workerTimeout: wt,
	}
	return t, nil
}

// Step executes the next campaign iteration: it applies the GenLen
// schedule, replans if profile feedback or the workload demands it (never
// in a frozen session), charges any plan-switch reallocation, resets the
// worker fleet, runs the iteration, and folds the observed per-RPC
// durations back into the session's calibration.
func (t *Trainer) Step(ctx context.Context) (*IterationReport, error) {
	return t.step(ctx)
}

// step runs one locked iteration and then streams its report with the lock
// released, so a WithIterationProgress callback may freely call back into
// the session (Stats, even Resize) without deadlocking.
func (t *Trainer) step(ctx context.Context) (*IterationReport, error) {
	t.mu.Lock()
	rep, err := t.stepLocked(ctx)
	t.mu.Unlock()
	if err == nil && t.opts.progress != nil {
		t.opts.progress(*rep)
	}
	return rep, err
}

func (t *Trainer) stepLocked(ctx context.Context) (*IterationReport, error) {
	if t.closed {
		return nil, fmt.Errorf("realhf: %w", ErrTrainerClosed)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("realhf: training step cancelled: %w", err)
	}
	iter := t.iter
	workCfg := t.base
	if t.opts.genLen != nil {
		g := t.opts.genLen(iter)
		if g <= 0 {
			return nil, fmt.Errorf("realhf: GenLen schedule returned %d for iteration %d: %w", g, iter, ErrInvalidConfig)
		}
		workCfg.GenLen = g
	}

	report := IterationReport{Iter: iter, GenLen: workCfg.GenLen, Nodes: workCfg.Nodes}
	if !t.opts.frozen && (workCfg.GenLen != t.plannedCfg.GenLen || t.drifted) {
		switched, cached, err := t.replanLocked(ctx, workCfg)
		if err != nil {
			return nil, err
		}
		report.Replanned, report.Switched, report.PlanCached = true, switched, cached
	}

	// Execute, surviving worker loss: a *runtime.ErrWorkerLost from Reset or
	// Run (fence timeout, dead transport stream, or no reply within the
	// worker timeout) evicts the failed device's node, shrink-replans onto
	// the survivors and re-executes the whole iteration there. The failed
	// attempt's partial progress is discarded — virtual makespans stay
	// deterministic functions of the executed plan. Anything that is not a
	// worker loss aborts the step as before.
	var (
		execPlan *core.Plan
		est      *estimator.Result
		rep      *runtime.Report
	)
	for {
		// The replan loop is bounded by the shrinking mesh (shrinkLocked
		// fails out at one node), but each attempt re-checks the caller's
		// context so a cancellation never waits on another full attempt.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("realhf: training step cancelled: %w", err)
		}
		var err error
		execPlan, est, err = t.instantiateLocked(workCfg)
		if err != nil {
			return nil, err
		}
		static := estimator.StaticPerGPU(execPlan)
		if err := t.pool.Reset(static); err != nil {
			if lost := (*runtime.ErrWorkerLost)(nil); errors.As(err, &lost) {
				if serr := t.shrinkLocked(ctx, &workCfg, &report, lost); serr != nil {
					return nil, serr
				}
				continue
			}
			return nil, err
		}
		rep, err = t.pool.Run(execPlan, runtime.Options{
			UseCUDAGraph:  t.run.UseCUDAGraph,
			OverlapComm:   t.run.OverlapComm,
			Context:       ctx,
			WorkerTimeout: t.workerTimeout,
		})
		if err != nil {
			if lost := (*runtime.ErrWorkerLost)(nil); errors.As(err, &lost) {
				if serr := t.shrinkLocked(ctx, &workCfg, &report, lost); serr != nil {
					return nil, serr
				}
				continue
			}
			return nil, fmt.Errorf("realhf: iteration %d failed: %w", iter, err)
		}
		break
	}

	report.MakespanV = rep.MakespanV
	report.EstMakespanV = est.TimeCost
	report.CallTimes = rep.CallTimes
	report.EstCallTimes = est.CallTimes
	report.OOM = rep.OOM
	report.Errors = rep.Errors
	report.PlanFingerprint = execPlan.Fingerprint()
	report.ReallocSwitchCost = t.pendingSwitchCost
	if !rep.OOM {
		report.ThroughputPFLOPs = estimator.Throughput(execPlan, rep.MakespanV)
	}

	// Profile feedback: compare what ran against what the (calibrated)
	// estimator predicted, fold the ratios into the calibration, and flag a
	// replan when the model was off by more than the threshold. OOM
	// iterations carry truncated durations and are not folded in.
	if !rep.OOM {
		drift, next := foldFeedback(t.calib, rep.CallTimes, est.CallTimes)
		report.Drift = drift
		if !t.opts.frozen {
			t.calib = next
			t.drifted = drift > t.opts.threshold
		}
	}

	t.totalV += rep.MakespanV + t.pendingSwitchCost
	t.switchCostV += t.pendingSwitchCost
	t.pendingSwitchCost = 0
	t.iter++
	return &report, nil
}

// foldFeedback derives the post-iteration calibration and the observed
// drift: for every call with both an observed and a predicted duration, the
// new absolute factor is observed/pure-model-prediction (obtained by
// multiplying the current factor by observed/calibrated-prediction).
func foldFeedback(cur *estimator.Calibration, observed, predicted map[string]float64) (float64, *estimator.Calibration) {
	var drift float64
	factors := cur.Factors()
	if factors == nil {
		factors = map[string]float64{}
	}
	for name, obs := range observed {
		pred, ok := predicted[name]
		if !ok || pred <= 0 || obs <= 0 {
			continue
		}
		ratio := obs / pred
		if d := ratio - 1; d > drift {
			drift = d
		} else if d := 1 - ratio; d > drift {
			drift = d
		}
		f := cur.Factor(name) * ratio
		factors[name] = f
	}
	return drift, estimator.NewCalibration(factors)
}

// replanLocked re-searches the plan for workCfg through the owning
// Planner's caches under the session calibration, warm-starting the search
// from the incumbent plan re-attached to the new workload — so the fresh
// estimate can never regress below what keeping the old plan predicts — and
// adopts the candidate only when its predicted iteration cost plus the
// §5-priced switch reallocation beats the incumbent on the new workload.
// Either way the workload is considered handled: the schedule must change
// (or new drift appear) before the next replan.
func (t *Trainer) replanLocked(ctx context.Context, workCfg ExperimentConfig) (switched, cached bool, err error) {
	opts := append(append([]AutoOption{}, t.opts.planOpts...), withCalibration(t.calib))
	stalePlan, staleEst, staleErr := t.evaluateLocked(workCfg, t.plan)
	if staleErr == nil {
		opts = append(opts, WithWarmStart(stalePlan))
	}
	exp, err := t.planner.Plan(ctx, workCfg, opts...)
	if err != nil {
		return false, false, err
	}
	t.replans++
	adopt := false
	if exp.Plan.Fingerprint() != t.plan.Fingerprint() {
		cost := realloc.SwitchCost(t.plan, exp.Plan, t.hw)
		if staleErr != nil {
			// The incumbent no longer validates on the new workload: the
			// switch is forced, and its reallocation still charged.
			adopt = true
		} else {
			adopt = exp.Estimate.Cost+cost < staleEst.Cost
		}
		if adopt {
			t.pendingSwitchCost += cost
			t.plan = exp.Plan
			t.switches++
		}
	}
	t.plannedCfg = exp.Config
	t.drifted = false
	return adopt, exp.Cached, nil
}

// shrinkLocked recovers from a lost worker: it evicts the failed device's
// host node from the campaign, re-solves the plan onto the surviving mesh
// through the Planner's caches (calibrated, warm-started from the incumbent
// when it still validates there), charges the §5-priced reallocation of
// moving every model onto the survivors, and swaps the worker fleet to the
// shrunken size. The inverse of Resize, forced rather than elective — it
// runs even in WithFrozenPlan sessions, because the frozen plan's mesh no
// longer exists; survival outranks baseline purity. When no surviving node
// remains (or the shrink replan itself fails) it returns an error wrapping
// ErrWorkerLost, ending the campaign.
func (t *Trainer) shrinkLocked(ctx context.Context, workCfg *ExperimentConfig, report *IterationReport, lost *runtime.ErrWorkerLost) error {
	report.WorkerLost = true
	report.LostGPUs = append(report.LostGPUs, lost.GPU)
	t.workerFailures++
	if t.base.Nodes <= 1 {
		return fmt.Errorf("realhf: iteration %d: worker gpu %d lost and no surviving nodes remain: %w: %w",
			report.Iter, lost.GPU, ErrWorkerLost, lost)
	}
	newCfg := t.base
	newCfg.Nodes--
	newCfg.GenLen = workCfg.GenLen
	opts := append(append([]AutoOption{}, t.opts.planOpts...), withCalibration(t.calib))
	if stalePlan, _, staleErr := t.evaluateLocked(newCfg, t.plan); staleErr == nil {
		opts = append(opts, WithWarmStart(stalePlan))
	}
	exp, err := t.planner.Plan(ctx, newCfg, opts...)
	if err != nil {
		return fmt.Errorf("realhf: iteration %d: shrink to %d nodes after losing worker gpu %d: %w: %w",
			report.Iter, newCfg.Nodes, lost.GPU, ErrWorkerLost, err)
	}
	newHW := t.run.scaleCluster(exp.Cluster)
	// Price the reallocation on the old, larger cluster: its device range
	// spans both the dying mesh and the survivors, exactly as Resize prices
	// a grow on the larger of the two.
	t.pendingSwitchCost += realloc.SwitchCost(t.plan, exp.Plan, t.hw)
	if err := t.pool.Close(); err != nil {
		return fmt.Errorf("realhf: iteration %d: closing failed worker fleet: %w: %w",
			report.Iter, ErrWorkerLost, err)
	}
	pool, err := t.opts.poolFactory(newHW.NumGPUs(), newHW.GPU.MemoryBytes)
	if err != nil {
		return fmt.Errorf("realhf: iteration %d: worker pool for %d surviving GPUs: %w: %w",
			report.Iter, newHW.NumGPUs(), ErrWorkerLost, err)
	}
	pool.SetFenceTimeout(t.workerTimeout)
	t.pool = pool
	t.replans++
	t.switches++
	t.base.Nodes = newCfg.Nodes
	t.plannedCfg = exp.Config
	t.plan = exp.Plan
	t.hw = newHW
	t.drifted = false
	workCfg.Nodes = newCfg.Nodes
	report.Nodes = newCfg.Nodes
	report.Replanned, report.Switched, report.PlanCached = true, true, exp.Cached
	return nil
}

// instantiateLocked re-attaches the current assignments to workCfg's graph
// (the workload may have moved since the plan was searched) and estimates
// it through the planner's calibrated problem state. The returned execution
// plan carries the Trainer's (possibly run-option-scaled) cluster; the
// estimate is always computed against the canonical unscaled problem, so
// shared cost caches stay consistent.
func (t *Trainer) instantiateLocked(workCfg ExperimentConfig) (*core.Plan, *estimator.Result, error) {
	plan, res, err := t.evaluateLocked(workCfg, t.plan)
	if err != nil {
		return nil, nil, err
	}
	exec := plan.Clone()
	exec.Cluster = t.hw
	return exec, res, nil
}

// evaluateLocked builds workCfg's graph with the given plan's assignments
// and returns the (calibrated) estimate via the planner's shared caches.
func (t *Trainer) evaluateLocked(workCfg ExperimentConfig, src *core.Plan) (*core.Plan, *estimator.Result, error) {
	ps, hw, g, models, err := t.planner.problemFor(workCfg, t.calib)
	if err != nil {
		return nil, nil, err
	}
	plan := core.NewPlan(hw, g, models)
	for name, a := range src.Assign {
		plan.Assign[name] = a
	}
	if err := plan.Validate(); err != nil {
		return nil, nil, err
	}
	res, err := ps.cache.Evaluate(ps.est, plan)
	if err != nil {
		return nil, nil, err
	}
	return plan, res, nil
}

// Campaign runs n iterations back to back, aggregating their reports. A
// context cancellation mid-campaign returns the completed prefix together
// with the wrapped error — the accounting mirrors Report.IterTime's
// partial-run semantics: only iterations that actually ran are summed.
// Each iteration locks the session individually (so progress callbacks run
// unlocked); a Step or Resize issued concurrently from another goroutine
// may therefore interleave between a campaign's iterations, never inside
// one.
func (t *Trainer) Campaign(ctx context.Context, n int) (*CampaignReport, error) {
	out := &CampaignReport{}
	for i := 0; i < n; i++ {
		rep, err := t.step(ctx)
		if err != nil {
			return out, err
		}
		out.Iterations = append(out.Iterations, *rep)
		out.CompletedIterations = len(out.Iterations)
		out.TotalMakespanV += rep.MakespanV + rep.ReallocSwitchCost
		out.SwitchCostV += rep.ReallocSwitchCost
		if rep.Replanned {
			out.Replans++
		}
		if rep.Switched {
			out.Switches++
		}
		out.WorkerFailures += len(rep.LostGPUs)
	}
	return out, nil
}

// Resize moves the campaign to a different node count mid-training: the
// session replans on the new mesh through the Planner's caches (calibrated
// with everything profiled so far), charges the parameter reallocation into
// the new layout — priced on the larger of the two clusters, whose device
// range spans both meshes — and swaps the worker fleet to the new size. The
// cost lands on the next iteration's report.
func (t *Trainer) Resize(ctx context.Context, nodes int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("realhf: %w", ErrTrainerClosed)
	}
	if nodes <= 0 {
		return fmt.Errorf("realhf: resize to %d nodes: %w", nodes, ErrInvalidConfig)
	}
	if nodes == t.base.Nodes {
		return nil
	}
	newCfg := t.base
	newCfg.Nodes = nodes
	// Plan the new mesh at the workload the next iteration will actually
	// execute: with an active schedule, the upcoming iteration's length —
	// not the pre-resize one — or the very next Step would immediately
	// replan (and possibly charge a second switch) on the fresh mesh.
	newCfg.GenLen = t.plannedCfg.GenLen
	if t.opts.genLen != nil {
		if g := t.opts.genLen(t.iter); g > 0 {
			newCfg.GenLen = g
		}
	}
	opts := append(append([]AutoOption{}, t.opts.planOpts...), withCalibration(t.calib))
	exp, err := t.planner.Plan(ctx, newCfg, opts...)
	if err != nil {
		return fmt.Errorf("realhf: resize to %d nodes: %w", nodes, err)
	}
	newHW := t.run.scaleCluster(exp.Cluster)
	priceHW := t.hw
	if newHW.NumGPUs() > priceHW.NumGPUs() {
		priceHW = newHW
	}
	t.pendingSwitchCost += realloc.SwitchCost(t.plan, exp.Plan, priceHW)
	// Rebuild, never patch: routing resizes through the pool factory keeps
	// custom fleets (adopted transports, chaos wrappers) resizable the same
	// way the default in-process fleet is.
	if err := t.pool.Close(); err != nil {
		return fmt.Errorf("realhf: resize to %d nodes: closing worker fleet: %w", nodes, err)
	}
	pool, err := t.opts.poolFactory(newHW.NumGPUs(), newHW.GPU.MemoryBytes)
	if err != nil {
		return fmt.Errorf("realhf: resize to %d nodes: worker pool: %w", nodes, err)
	}
	pool.SetFenceTimeout(t.workerTimeout)
	t.pool = pool
	t.replans++
	t.switches++
	t.base.Nodes = nodes
	t.plannedCfg = exp.Config
	t.plan = exp.Plan
	t.hw = newHW
	t.drifted = false
	return nil
}

// Stats snapshots the session counters and profile-feedback state.
func (t *Trainer) Stats() TrainerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TrainerStats{
		Iterations:         t.iter,
		Replans:            t.replans,
		Switches:           t.switches,
		SwitchCostV:        t.switchCostV,
		TotalMakespanV:     t.totalV,
		WorkerFailures:     t.workerFailures,
		Nodes:              t.base.Nodes,
		PlanFingerprint:    t.plan.Fingerprint(),
		CalibrationFactors: t.calib.Factors(),
	}
}

// Close releases the session's worker fleet. Idempotent; a closed Trainer
// rejects further Steps.
func (t *Trainer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.pool.Close()
}
