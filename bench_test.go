package realhf

// One benchmark per paper table/figure. Each bench regenerates its artifact
// at a reduced-but-meaningful scale and reports the headline quantity as a
// custom metric, so `go test -bench=. -benchmem` reproduces the shape of the
// paper's evaluation end to end. cmd/realbench runs the same experiments at
// full paper scale.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/experiments"
	"realhf/internal/hardware"
	"realhf/internal/mesh"
	"realhf/internal/model"
	"realhf/internal/parallel"
	realruntime "realhf/internal/runtime"
	"realhf/internal/search"
)

const benchSteps = 1500

// BenchmarkTable1ModelConfigs regenerates Table 1 (exact parameter counts).
func BenchmarkTable1ModelConfigs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := experiments.Table1()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTablePlans regenerates the Tables 2–5 plan listings and the
// Table 6 breakdown (quick scale).
func BenchmarkTablePlans(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, cases, err := experiments.Tables2to6(benchSteps, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty report")
		}
		b.ReportMetric(cases[0].HeuristicE2E[0]/cases[0].SearchedE2E[0], "speedup-vs-heuristic")
	}
}

// BenchmarkTable6Breakdown measures the searched-vs-heuristic end-to-end gap
// for the paper's small representative case including the ±CUDAGraph rows.
func BenchmarkTable6Breakdown(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunBreakdownCase("7b+7b", s, benchSteps, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.SearchedE2E[0], "real-e2e-s")
		b.ReportMetric(c.HeuristicE2E[0], "heur-e2e-s")
		b.ReportMetric(c.SearchedGen[1]/c.SearchedGen[0], "cudagraph-gen-gain")
	}
}

// BenchmarkFig2Opportunity regenerates the sequential optimization-gain
// figure.
func BenchmarkFig2Opportunity(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(s, benchSteps, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7EndToEnd compares ReaL against all baseline systems at the
// 16-GPU weak-scaling point.
func BenchmarkFig7EndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig7(model.LLaMA7B, []int{16}, benchSteps)
		if err != nil {
			b.Fatal(err)
		}
		var real, best float64
		for _, r := range rows {
			if r.System == "real" {
				real = r.PFLOPs
			} else if !r.OOM && r.PFLOPs > best {
				best = r.PFLOPs
			}
		}
		b.ReportMetric(real, "real-pflops")
		b.ReportMetric(real/best, "speedup-vs-best-baseline")
	}
}

// BenchmarkFig8Heuristic compares searched plans against the heuristic at
// context lengths 2048 and 8192.
func BenchmarkFig8Heuristic(b *testing.B) {
	b.ReportAllocs()
	combos := [][2]model.Config{{model.LLaMA7B, model.LLaMA7B}}
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig8(combos, 2, []int{2048, 8192}, benchSteps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].Improvement, "gain-ctx2048-%")
		b.ReportMetric(100*rows[1].Improvement, "gain-ctx8192-%")
	}
}

// BenchmarkFig9Progressive regenerates the progressive-optimization walk.
func BenchmarkFig9Progressive(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	for i := 0; i < b.N; i++ {
		stages, _, err := experiments.Fig9(s, benchSteps, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stages[0].WallTime/stages[len(stages)-1].WallTime, "total-speedup")
	}
}

// BenchmarkFig10KernelTrace regenerates the simplified kernel traces.
func BenchmarkFig10KernelTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig10(16); len(out) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkFig11GPUTime regenerates the GPU-time decomposition.
func BenchmarkFig11GPUTime(b *testing.B) {
	b.ReportAllocs()
	combos := [][2]model.Config{{model.LLaMA7B, model.LLaMA7B}}
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig11(combos, 2, benchSteps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].Real.Compute, "real-compute-%")
		b.ReportMetric(100*rows[0].Heur.Compute, "heur-compute-%")
	}
}

// BenchmarkFig12Estimator regenerates the estimator-accuracy study.
func BenchmarkFig12Estimator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Fig12([]int{2}, benchSteps)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, p := range points {
			if p.RelError > worst {
				worst = p.RelError
			}
		}
		b.ReportMetric(100*worst, "max-est-error-%")
	}
}

// BenchmarkFig13Search regenerates the search-convergence curves.
func BenchmarkFig13Search(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		curves, _, err := experiments.Fig13(benchSteps, []int{2048})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(curves[0].FinalRatio(), "improvement-ratio-7b")
	}
}

// BenchmarkFig14Pruning regenerates the 1024-GPU pruning ablation (reduced
// step budget; the full run lives in cmd/realbench).
func BenchmarkFig14Pruning(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		curves, _, err := experiments.Fig14(400, []int{100, 300})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(curves[0].FinalRatio(), "ratio-small-space")
		b.ReportMetric(curves[len(curves)-1].FinalRatio(), "ratio-large-space")
	}
}

// BenchmarkFig15Optimality regenerates the MCMC-vs-brute-force study.
func BenchmarkFig15Optimality(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig15(benchSteps, 4)
		if err != nil {
			b.Fatal(err)
		}
		gap := (results[0].MCMCBest - results[0].OptimalCost) / results[0].OptimalCost
		b.ReportMetric(100*gap, "gap-to-optimal-%")
	}
}

// BenchmarkFig16Algorithms regenerates the DPO/GRPO/ReMax comparison.
func BenchmarkFig16Algorithms(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig16(2, benchSteps, model.LLaMA13B, model.LLaMA7B)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.Improvement, r.Algo+"-gain-%")
		}
	}
}

// BenchmarkFig17StrongScaling regenerates the strong-scaling study.
func BenchmarkFig17StrongScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig17([]model.Config{model.LLaMA7B}, []int{1, 2, 4}, 700)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].PFLOPs/rows[0].PFLOPs, "scaling-8-to-32gpu")
	}
}

// BenchmarkAblationNoRealloc quantifies parameter reallocation's
// contribution versus the best one-layout-per-model plan.
func BenchmarkAblationNoRealloc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationNoRealloc(2, benchSteps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].Advantage, "realloc-advantage-%")
	}
}

// BenchmarkAblationCrossIter measures cross-iteration overlap on the
// concatenated dataflow graph.
func BenchmarkAblationCrossIter(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA13B)
	for i := 0; i < b.N; i++ {
		single, double, _, err := experiments.AblationCrossIter(s, benchSteps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(2*single-double, "overlap-saved-s")
	}
}

// BenchmarkLimitationStudy measures estimator degradation under dynamic
// generation lengths (the paper's §7 predictability limitation).
func BenchmarkLimitationStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.LimitationStudy(2, 800, []float64{0, 0.5}, 9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[1].EstimateErr, "est-err-at-50pct-spread-%")
	}
}

// BenchmarkSearchThroughput measures raw planner speed: MCMC steps per
// second on the 7B+7B/16-GPU problem (the quantity behind the paper's
// seconds-scale search times).
func BenchmarkSearchThroughput(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	pr, err := experiments.NewProblem(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.SearchPlan(500, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelMCMCWallClock compares plan cost at equal wall clock:
// the sequential single-chain walker versus parallel-mcmc with
// max(4, GOMAXPROCS) chains under the same TimeLimit. The parallel solver
// shares one memoized cost cache across chains and reduces to the best
// chain, so its cost must stay at or below the single chain's (the
// speedup-x metric stays >= 1); with more cores the gap widens because
// chains explore concurrently instead of time-sharing.
func BenchmarkParallelMCMCWallClock(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	pr, err := experiments.NewProblem(s)
	if err != nil {
		b.Fatal(err)
	}
	limit := time.Second
	chains := runtime.GOMAXPROCS(0)
	if chains < 4 {
		chains = 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		single, err := pr.SolveWith("mcmc", search.Options{
			TimeLimit: limit, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		multi, err := pr.SolveWith("parallel-mcmc", search.Options{
			TimeLimit: limit, Seed: int64(i + 1), Chains: chains,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(single.Cost, "single-chain-cost-s")
		b.ReportMetric(multi.Cost, "parallel-cost-s")
		b.ReportMetric(single.Cost/multi.Cost, "parallel-speedup-x")
		b.ReportMetric(multi.CacheHitRate()*100, "cache-hit-%")
	}
}

// BenchmarkOverlapAwareSearch pins the search-side ±overlap ablation: one
// workload planned under serialized and under overlapped cost semantics
// (same seed and step budget; the overlap-aware solve warm-starts from the
// serialized winner), both chosen plans executed on the overlapped runtime.
// All metrics are deterministic virtual quantities gated exactly by the CI
// bench-regression check; overlap-vs-serial-x must never exceed 1.
func BenchmarkOverlapAwareSearch(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	pr, err := experiments.NewProblem(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial, err := pr.SearchPlanFor(false, benchSteps, 1)
		if err != nil {
			b.Fatal(err)
		}
		over, err := pr.SearchPlanOverlapWarm(benchSteps, 1, serial.Plan)
		if err != nil {
			b.Fatal(err)
		}
		sRep, err := realruntime.RunOverlapped(serial.Plan)
		if err != nil {
			b.Fatal(err)
		}
		oRep, err := realruntime.RunOverlapped(over.Plan)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sRep.MakespanV, "serial-searched-e2e-s")
		b.ReportMetric(oRep.MakespanV, "overlap-searched-e2e-s")
		b.ReportMetric(oRep.MakespanV/sRep.MakespanV, "overlap-vs-serial-x")
	}
}

// BenchmarkOffloadSearch pins the offload-as-a-plan-dimension ablation: the
// memory-constrained 4-GPU workload (7B trainable actor/critic, 34B frozen
// ref/reward) solved by the default search — whose optimum is infeasible —
// and by the same seed/step budget with OffloadSearch, whose winner must fit
// device memory by parking frozen calls in host memory. Every metric is a
// deterministic virtual quantity gated exactly by the CI bench-regression
// check: default-oom must stay 1, offload-oom must stay 0.
func BenchmarkOffloadSearch(b *testing.B) {
	b.ReportAllocs()
	pr, err := experiments.OffloadProblem()
	if err != nil {
		b.Fatal(err)
	}
	const offloadBenchSteps = 400
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		def, err := pr.SolveWith("mcmc", search.Options{MaxSteps: offloadBenchSteps, Seed: 60})
		if err != nil {
			b.Fatal(err)
		}
		off, err := pr.SolveWith("mcmc", search.Options{
			MaxSteps: offloadBenchSteps, Seed: 60, OffloadSearch: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		offloaded := 0
		for _, a := range off.Plan.Assign {
			if a.Offload {
				offloaded++
			}
		}
		b.ReportMetric(boolMetric(def.Estimate.OOM), "default-oom")
		b.ReportMetric(boolMetric(off.Estimate.OOM), "offload-oom")
		b.ReportMetric(float64(offloaded), "offloaded-calls")
		b.ReportMetric(float64(def.Estimate.MaxMem)/(1<<30), "default-maxmem-gb")
		b.ReportMetric(float64(off.Estimate.MaxMem)/(1<<30), "offload-maxmem-gb")
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkTrainerReplan pins the training-campaign ablation behind the
// Trainer session API: the same 4-iteration generation-length ramp
// (1024 -> 128, the paper's §8 drift scenario) executed by a frozen-plan
// baseline and by the replanning Trainer, both over persistent worker
// pools. Every metric is a deterministic virtual quantity (step-bounded
// seed-fixed searches, virtual runtime), gated exactly by the CI
// bench-regression check; replan-vs-frozen-x must stay below 1 — the
// replanning campaign wins even after paying every charged plan-switch
// reallocation (replan-switch-s).
func BenchmarkTrainerReplan(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	const iters = 4
	for i := 0; i < b.N; i++ {
		planner := NewPlanner(ClusterConfig{})
		frozenTr, err := planner.Train(ctx, trainerConfig(),
			WithGenLenSchedule(rampSchedule), WithFrozenPlan())
		if err != nil {
			b.Fatal(err)
		}
		frozen, err := frozenTr.Campaign(ctx, iters)
		if err != nil {
			b.Fatal(err)
		}
		frozenTr.Close()
		replanTr, err := planner.Train(ctx, trainerConfig(), WithGenLenSchedule(rampSchedule))
		if err != nil {
			b.Fatal(err)
		}
		replan, err := replanTr.Campaign(ctx, iters)
		if err != nil {
			b.Fatal(err)
		}
		replanTr.Close()
		b.ReportMetric(frozen.TotalMakespanV, "frozen-campaign-s")
		b.ReportMetric(replan.TotalMakespanV, "replan-campaign-s")
		b.ReportMetric(replan.TotalMakespanV/frozen.TotalMakespanV, "replan-vs-frozen-x")
		b.ReportMetric(replan.SwitchCostV, "replan-switch-s")
		b.ReportMetric(float64(replan.Replans), "replans")
	}
}

// BenchmarkShrinkReplan measures the price of surviving a worker loss: a
// 2-node campaign loses a device at the iteration-1 boundary, shrink-replans
// onto the surviving node and finishes degraded, against the same campaign
// running fault-free. Every metric is a deterministic virtual quantity (the
// failed attempt's partial progress is discarded on re-execution), so CI
// pins them exactly: the degraded campaign must cost more than the healthy
// one, by the survivor-mesh slowdown plus the charged §5 reallocation.
func BenchmarkShrinkReplan(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	const iters = 4
	cfg := trainerConfig()
	cfg.Nodes = 2
	for i := 0; i < b.N; i++ {
		planner := NewPlanner(ClusterConfig{})
		healthyTr, err := planner.Train(ctx, cfg, WithFrozenPlan())
		if err != nil {
			b.Fatal(err)
		}
		healthy, err := healthyTr.Campaign(ctx, iters)
		if err != nil {
			b.Fatal(err)
		}
		healthyTr.Close()

		rig := &chaosRig{}
		var shrinkTr *Trainer
		shrinkTr, err = planner.Train(ctx, cfg,
			WithWorkerPoolFactory(rig.factory),
			WithIterationProgress(func(r IterationReport) {
				if r.Iter == 1 {
					rig.transport().Fail(5, realruntime.FaultKill)
				}
			}))
		if err != nil {
			b.Fatal(err)
		}
		shrink, err := shrinkTr.Campaign(ctx, iters)
		if err != nil {
			b.Fatal(err)
		}
		if shrink.WorkerFailures != 1 || shrinkTr.Stats().Nodes != 1 {
			b.Fatalf("campaign did not shrink: %+v", shrink)
		}
		shrinkTr.Close()

		b.ReportMetric(healthy.TotalMakespanV, "healthy-campaign-s")
		b.ReportMetric(shrink.TotalMakespanV, "shrink-campaign-s")
		b.ReportMetric(shrink.TotalMakespanV/healthy.TotalMakespanV, "shrink-vs-healthy-x")
		b.ReportMetric(shrink.SwitchCostV, "shrink-switch-s")
		b.ReportMetric(float64(shrink.WorkerFailures), "lost-workers")
	}
}

// BenchmarkPlannerCachedPlan measures the steady-state cost of a Planner
// session answering a repeated request from the plan cache — no MCMC, no
// estimator work, one keyed lookup plus a private plan clone. The
// deterministic custom metrics pin the cache-hit semantics in CI: every
// timed iteration must be a hit and must return exactly the originally
// solved cost.
func BenchmarkPlannerCachedPlan(b *testing.B) {
	b.ReportAllocs()
	planner := NewPlanner(ClusterConfig{})
	cfg := ExperimentConfig{
		Nodes: 1, BatchSize: 64, PromptLen: 256, GenLen: 256,
		RPCs: PPORPCs("llama7b", "llama7b-critic"), SearchSteps: 300, Seed: 1,
	}
	warm, err := planner.Plan(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	hits := 0
	cost := warm.Estimate.Cost
	for i := 0; i < b.N; i++ {
		exp, err := planner.Plan(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if exp.Cached {
			hits++
		}
		cost = exp.Estimate.Cost
	}
	b.ReportMetric(100*float64(hits)/float64(b.N), "plan-cache-hit-%")
	b.ReportMetric(cost, "cached-cost-s")
	b.ReportMetric(cost/warm.Estimate.Cost, "cost-ratio-vs-solve")
}

// BenchmarkEstimatorEvaluate measures one cost-estimation call — the paper
// quotes hundreds of microseconds per candidate plan.
func BenchmarkEstimatorEvaluate(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	pr, err := experiments.NewProblem(s)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := baselines.BuildHeuristic(pr.Cluster, pr.Graph, pr.Models)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Est.Evaluate(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorDelta measures the incremental re-costing path the MCMC
// inner loop rides: a warmed EvalSession re-evaluating a plan that differs by
// one call's assignment per step. Alongside time and allocations it reports
// the session's per-eval node counts, which are deterministic: graph-nodes is
// the augmented-graph size, and recost-nodes must be 0 once both variants are
// warm — every step is answered from the per-slot signature memo.
func BenchmarkEstimatorDelta(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	pr, err := experiments.NewProblem(s)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := baselines.BuildHeuristic(pr.Cluster, pr.Graph, pr.Models)
	if err != nil {
		b.Fatal(err)
	}
	// Two legal assignments for one call, differing only in micro-batching:
	// the single-RPC mutation shape the solver proposes.
	const mutated = "ActorTrain"
	base := plan.Assign[mutated]
	alt := base
	if alt.Strategy.MicroBatches == 1 {
		alt.Strategy.MicroBatches = 2
	} else {
		alt.Strategy.MicroBatches = 1
	}
	variants := [2]core.Assignment{base, alt}
	sess := pr.Est.NewSession(nil)
	for _, v := range variants {
		plan.Assign[mutated] = v
		if err := plan.Validate(); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Evaluate(plan); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Assign[mutated] = variants[i%2]
		if _, err := sess.Evaluate(plan); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// A fixed two-eval probe (one per variant) keeps the reported counts
	// independent of b.N: the variants' augmented graphs differ in size, so
	// averaging over the timed loop would depend on its parity.
	st0 := sess.Stats()
	for _, v := range variants {
		plan.Assign[mutated] = v
		if _, err := sess.Evaluate(plan); err != nil {
			b.Fatal(err)
		}
	}
	st := sess.Stats()
	b.ReportMetric(float64(st.NodeLookups-st0.NodeLookups)/2, "graph-nodes")
	b.ReportMetric(float64(st.NodeRecosts-st0.NodeRecosts)/2, "recost-nodes")
}

// BenchmarkRuntimeExecution measures the runtime engine's dispatch loop
// (master + 16 workers, one PPO iteration).
func BenchmarkRuntimeExecution(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	pr, err := experiments.NewProblem(s)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := baselines.BuildHeuristic(pr.Cluster, pr.Graph, pr.Models)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := realruntime.RunDefault(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeOverlap executes a reallocation-heavy split placement with
// the comm stream off and on, reporting the virtual-time ±overlap ablation.
// All reported metrics are deterministic virtual quantities — the CI
// bench-regression gate pins them exactly (within float tolerance), while
// ns/op tracks the physical dispatch loop.
func BenchmarkRuntimeOverlap(b *testing.B) {
	b.ReportAllocs()
	cluster := hardware.DefaultCluster(2)
	g := dfg.BuildPPO(dfg.Spec{Batch: 256, PromptLen: 512, GenLen: 512, Iterations: 2})
	plan := core.NewPlan(cluster, g, core.PPOModels(model.LLaMA7B, model.LLaMA7B))
	m0, err := mesh.New(0, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	m1, err := mesh.New(8, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	st := parallel.Strategy{DP: 1, TP: 8, PP: 1, MicroBatches: 2}
	stGen := parallel.Strategy{DP: 4, TP: 2, PP: 1, MicroBatches: 1}
	plan.Assign["ActorGen"] = core.Assignment{Mesh: m0, Strategy: stGen}
	plan.Assign["RefInf"] = core.Assignment{Mesh: m0, Strategy: st}
	plan.Assign["ActorTrain"] = core.Assignment{Mesh: m0, Strategy: st}
	plan.Assign["RewInf"] = core.Assignment{Mesh: m1, Strategy: st}
	plan.Assign["CriticInf"] = core.Assignment{Mesh: m1, Strategy: st}
	plan.Assign["CriticTrain"] = core.Assignment{Mesh: m1, Strategy: st}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial, err := realruntime.RunDefault(plan)
		if err != nil {
			b.Fatal(err)
		}
		over, err := realruntime.RunOverlapped(plan)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(serial.MakespanV, "serial-e2e-s")
		b.ReportMetric(over.MakespanV, "overlap-e2e-s")
		b.ReportMetric(serial.CommTimeV, "comm-s")
		b.ReportMetric(100*(serial.MakespanV-over.MakespanV)/serial.CommTimeV, "comm-hidden-%")
	}
}

// BenchmarkGreedySeed measures greedy seed-plan construction over the full
// candidate space.
func BenchmarkGreedySeed(b *testing.B) {
	b.ReportAllocs()
	s := experiments.PaperSetting(2, model.LLaMA7B, model.LLaMA7B)
	pr, err := experiments.NewProblem(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Greedy(pr.Est, pr.EmptyPlan(), search.PruneNone); err != nil {
			b.Fatal(err)
		}
	}
}
