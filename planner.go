package realhf

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/model"
	"realhf/internal/search"
)

// ClusterConfig configures a Planner session. Like ExperimentConfig it is a
// wire type: MarshalJSON emits the canonical defaults-applied form (see
// wire.go), which is what cmd/realserve logs and serves.
type ClusterConfig struct {
	// Nodes is the default number of 8-GPU hosts for requests that leave
	// ExperimentConfig.Nodes at 0. A request carrying its own Nodes value
	// may plan at any scale; the planner keys its caches by cluster shape.
	Nodes int `json:"nodes"`
	// GPUsPerNode is the default device count per host (0 = 8).
	GPUsPerNode int `json:"gpus_per_node"`
	// PlanCacheEntries bounds the LRU cache of searched plans (default 64).
	PlanCacheEntries int `json:"plan_cache_entries"`
	// ProblemCacheEntries bounds the LRU pool of per-problem cost caches
	// and estimators (default 8). A "problem" is a distinct (cluster,
	// workload, RPCs) combination; each owns one search.CostCache shared
	// by every request that plans it.
	ProblemCacheEntries int `json:"problem_cache_entries"`
}

// Planner is a long-lived, concurrency-safe planning service — the
// session-oriented replacement for one-shot Auto calls. It owns the
// cluster model, per-model costers and estimators, a pool of memoized
// search.CostCache instances (one per distinct problem, shared across
// requests and search chains), and an LRU plan cache keyed by a canonical
// ExperimentConfig fingerprint, so a repeated or equivalent request is
// answered without re-running MCMC at all.
//
// Any number of goroutines may call Plan, Heuristic and LoadExperiment
// concurrently. Identical concurrent requests may each run a solve (the
// cache is at-least-once, not at-most-once), but step-bounded searches are
// deterministic, so every caller still receives the same plan fingerprint.
// Cached Estimates, traces and stats are shared and must be treated as
// immutable; returned Plans are private clones and safe to mutate.
type Planner struct {
	cc ClusterConfig

	mu       sync.Mutex
	costers  map[costerKey]gpumodel.ModelCoster
	problems *lruCache // problemKey -> *problemState
	plans    *lruCache // request fingerprint -> canonical *Experiment

	planRequests, planHits, planMisses atomic.Int64
}

// costerKey identifies one per-model coster: the oracle's tables depend
// only on the cluster shape and the architecture.
type costerKey struct {
	nodes, gpusPerNode int
	arch               string
}

// problemState is what the planner keeps per distinct problem: the
// estimator over the problem's role→coster mapping and the memoized cost
// cache every request for this problem shares. (A CostCache is scoped to
// one problem/estimator pair — see its contract — which is exactly the
// granularity of this pool.)
type problemState struct {
	est   *estimator.Estimator
	cache *search.CostCache
}

// withDefaults resolves the session defaults NewPlanner applies — the
// canonical form ClusterConfig.MarshalJSON emits.
func (cc ClusterConfig) withDefaults() ClusterConfig {
	if cc.PlanCacheEntries <= 0 {
		cc.PlanCacheEntries = 64
	}
	if cc.ProblemCacheEntries <= 0 {
		cc.ProblemCacheEntries = 8
	}
	return cc
}

// NewPlanner creates a planning session. The zero ClusterConfig is valid:
// requests then size the cluster themselves via ExperimentConfig.Nodes.
func NewPlanner(cc ClusterConfig) *Planner {
	cc = cc.withDefaults()
	return &Planner{
		cc:       cc,
		costers:  map[costerKey]gpumodel.ModelCoster{},
		problems: newLRU(cc.ProblemCacheEntries),
		plans:    newLRU(cc.PlanCacheEntries),
	}
}

var (
	defaultPlannerOnce sync.Once
	defaultPlannerInst *Planner
)

// DefaultPlanner returns the lazily-initialized package-level Planner
// behind Auto, Heuristic and LoadExperiment.
func DefaultPlanner() *Planner {
	defaultPlannerOnce.Do(func() { defaultPlannerInst = NewPlanner(ClusterConfig{}) })
	return defaultPlannerInst
}

// AutoOption customizes one Plan request.
type AutoOption func(*autoOptions)

type autoOptions struct {
	progress      func(search.ProgressPoint)
	warmStarts    []*core.Plan
	solver        string
	chains        int
	hasChains     bool
	overlapAware  bool
	offloadSearch bool
	runOpts       *RunOptions
	// calib attaches profile-feedback calibration to the request's problem:
	// Trainer sessions set it directly when replanning, and
	// WithCalibrationFactors builds it from caller-supplied multipliers
	// (calibFactors, validated first). Either way it isolates the calibrated
	// problem (estimator, cost cache, plan-cache entries) from every
	// uncalibrated request via the calibration key.
	calib        *estimator.Calibration
	calibFactors map[string]float64
}

// validate rejects malformed per-request options — RunOptions bound via
// WithRunOptions (sharing RunOptions.Validate with the execution-time
// checks) and calibration factors bound via WithCalibrationFactors.
func (o *autoOptions) validate() error {
	if o.runOpts != nil {
		if err := o.runOpts.Validate(); err != nil {
			return err
		}
	}
	for name, f := range o.calibFactors {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("realhf: calibration factor %q = %v: %w (must be a positive finite multiplier)",
				name, f, ErrInvalidConfig)
		}
	}
	return nil
}

// finish resolves derived option state after validation: caller-supplied
// calibration factors become the request's estimator.Calibration. (Unit-only
// factor maps canonicalize to the uncalibrated base, exactly like a Trainer
// whose feedback never drifted.)
func (o *autoOptions) finish() {
	if o.calib == nil && len(o.calibFactors) > 0 {
		o.calib = estimator.NewCalibration(o.calibFactors)
	}
}

// requestKey is the plan-cache (and coalescing) key for one prepared
// request: the canonical config fingerprint extended with the calibration
// and warm-start tokens.
func (o *autoOptions) requestKey(cfg ExperimentConfig) string {
	return cfg.fingerprint() + calibToken(o.calib) + warmStartKey(o.warmStarts)
}

// withCalibration routes a Trainer's profile feedback into a plan request.
func withCalibration(c *estimator.Calibration) AutoOption {
	return func(o *autoOptions) { o.calib = c }
}

// WithProgress streams the search's convergence (periodic samples and every
// best-cost improvement) to fn while Plan runs. Multi-chain solvers
// serialize invocations; fn runs on the search's critical path and must be
// fast. Plan-cache hits skip the search and emit no points.
func WithProgress(fn func(search.ProgressPoint)) AutoOption {
	return func(o *autoOptions) { o.progress = fn }
}

// WithWarmStart seeds the search with previously found plans (e.g. loaded
// via LoadExperiment from an earlier session): the solver starts from the
// cheapest of the warm starts and its own greedy/heuristic seeds. Warm
// starts participate in the plan-cache key, so requests with different
// seeds never alias.
func WithWarmStart(plans ...*core.Plan) AutoOption {
	return func(o *autoOptions) { o.warmStarts = append(o.warmStarts, plans...) }
}

// WithSolver overrides ExperimentConfig.Solver for this request ("mcmc",
// "parallel-mcmc", "greedy", "exhaustive", or any registered name).
func WithSolver(name string) AutoOption {
	return func(o *autoOptions) { o.solver = name }
}

// WithSearchParallelism overrides ExperimentConfig.SearchParallelism for
// this request (the number of concurrent MCMC chains).
func WithSearchParallelism(chains int) AutoOption {
	return func(o *autoOptions) { o.chains, o.hasChains = chains, true }
}

// WithOverlapAwareSearch makes this request search under the
// overlapped-engine cost semantics — the per-request mirror of
// ExperimentConfig.PlanForOverlap. The solver then minimizes the makespan
// the overlapped runtime (realhf.DefaultRunOptions) will actually achieve,
// instead of the serialized schedule's.
func WithOverlapAwareSearch() AutoOption {
	return func(o *autoOptions) { o.overlapAware = true }
}

// WithOffloadSearch makes this request search over per-call host offload —
// the per-request mirror of ExperimentConfig.OffloadSearch. The solver then
// treats parameter residency of frozen roles as a plan dimension and the
// memory ledger as a hard constraint: a feasible plan beats any infeasible
// one regardless of time cost. Offload participates in the problem key, so
// offload-aware and default requests never share a cost cache.
func WithOffloadSearch() AutoOption {
	return func(o *autoOptions) { o.offloadSearch = true }
}

// WithRunOptions binds run options to the returned Experiment: its Run()
// executes under them instead of DefaultRunOptions. Run options do not
// affect planning and are not part of the plan-cache key.
func WithRunOptions(opts RunOptions) AutoOption {
	return func(o *autoOptions) { o.runOpts = &opts }
}

// WithCalibrationFactors layers per-call duration multipliers (observed /
// predicted, e.g. exported from TrainerStats.CalibrationFactors or a
// tenant's own profiling) over the pure cost model for this request. The
// factors join the problem and plan-cache keys, so calibrated requests own
// their own estimator, cost cache and plan-cache entries and can never
// poison the uncalibrated ones — the isolation contract multi-tenant
// frontends (internal/serve) rely on. Factors must be positive and finite;
// Plan rejects anything else with a wrapped ErrInvalidConfig. An empty or
// all-unit map is the uncalibrated base and shares its caches.
func WithCalibrationFactors(factors map[string]float64) AutoOption {
	return func(o *autoOptions) {
		if len(factors) == 0 {
			return
		}
		if o.calibFactors == nil {
			o.calibFactors = make(map[string]float64, len(factors))
		}
		for name, f := range factors {
			o.calibFactors[name] = f
		}
	}
}

// merge fills request fields the caller left at zero from the session
// defaults.
func (p *Planner) merge(cfg ExperimentConfig) ExperimentConfig {
	if cfg.Nodes == 0 {
		cfg.Nodes = p.cc.Nodes
	}
	if cfg.GPUsPerNode == 0 {
		cfg.GPUsPerNode = p.cc.GPUsPerNode
	}
	return cfg
}

// Canonicalize returns the session's defaults-applied view of cfg: zero
// fields are filled from the ClusterConfig and the package defaults, exactly
// as Plan would before solving. Two configs with equal canonical forms are
// one request to this session — Canonicalize(cfg).Fingerprint() is the key
// the plan cache (and any coalescing frontend) dedupes on. Canonicalize is
// idempotent and does not validate; Plan still rejects a canonicalized but
// malformed config.
func (p *Planner) Canonicalize(cfg ExperimentConfig) ExperimentConfig {
	return p.merge(cfg).withDefaults()
}

// prepare folds options into the config, applies the session defaults and
// validates both — the shared prologue of Plan and PlanCached.
func (p *Planner) prepare(cfg ExperimentConfig, opts []AutoOption) (ExperimentConfig, *autoOptions, error) {
	o := &autoOptions{}
	for _, fn := range opts {
		fn(o)
	}
	cfg = p.merge(cfg)
	if o.solver != "" {
		cfg.Solver = o.solver
	}
	if o.hasChains {
		cfg.SearchParallelism = o.chains
	}
	if o.overlapAware {
		cfg.PlanForOverlap = true
	}
	if o.offloadSearch {
		cfg.OffloadSearch = true
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return cfg, nil, err
	}
	if err := o.validate(); err != nil {
		return cfg, nil, err
	}
	o.finish()
	return cfg, o, nil
}

// Plan searches for an efficient execution plan for cfg — the session
// analogue of Auto. The context is honored for the whole request:
// cancellation or a deadline aborts the solver mid-search with a wrapped
// context error. An equivalent step-bounded config planned before (same
// canonical fingerprint after defaults, same warm starts) is answered from
// the plan cache without running a solver; the returned Experiment then has
// Cached == true and carries the original solve's estimate, trace and
// stats. Time-bounded searches (SearchTime with SearchSteps == 0) are
// nondeterministic and bypass the plan cache.
func (p *Planner) Plan(ctx context.Context, cfg ExperimentConfig, opts ...AutoOption) (*Experiment, error) {
	cfg, o, err := p.prepare(cfg, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("realhf: plan request cancelled: %w: %w", ErrSolveCanceled, err)
	}

	cacheable := cfg.SearchSteps > 0
	key := o.requestKey(cfg)
	p.planRequests.Add(1)
	if cacheable {
		if exp, ok := p.cachedPlan(key); ok {
			p.planHits.Add(1)
			return exp.instantiate(o.runOpts), nil
		}
	}

	solver, err := search.New(cfg.Solver)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrInvalidConfig)
	}
	ps, hw, g, models, err := p.problemFor(cfg, o.calib)
	if err != nil {
		return nil, err
	}
	plan := core.NewPlan(hw, g, models)
	var seeds []*core.Plan
	if heur, err := baselines.BuildHeuristic(hw, g, models); err == nil {
		seeds = append(seeds, heur)
	}
	seeds = append(seeds, o.warmStarts...)
	sol, stats, err := solver.Solve(ctx,
		search.Problem{Est: ps.est, Plan: plan, Overlap: cfg.PlanForOverlap},
		search.Options{
			MaxSteps:       cfg.SearchSteps,
			TimeLimit:      cfg.SearchTime,
			Seed:           cfg.Seed,
			Chains:         cfg.SearchParallelism,
			OffloadSearch:  cfg.OffloadSearch,
			SeedCandidates: seeds,
			Cache:          ps.cache,
			Progress:       o.progress,
		})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("realhf: %w: %w", ErrSolveCanceled, err)
		}
		return nil, err
	}
	p.planMisses.Add(1) // a completed solve, cacheable or not
	exp := &Experiment{
		Config: cfg, Cluster: hw, Plan: sol.Plan,
		Estimate: sol.Estimate, SearchTrace: stats.Trace, SearchStats: stats,
		est: ps.est, runOpts: o.runOpts,
	}
	if cacheable {
		p.storePlan(key, exp)
	}
	return exp, nil
}

// PlanCached answers cfg from the session's plan cache without ever running
// a solver: it returns the cached experiment and true when an equivalent
// deterministic request (same canonical fingerprint, calibration and warm
// starts) was solved before, and (nil, false) otherwise — including for
// malformed configs and time-bounded searches, which Plan will then reject
// or solve respectively. A probe hit counts as a request and a cache hit in
// PlannerStats; a miss counts as nothing (the Plan call that follows it
// does the counting). This is the admission-free fast path network
// frontends use so cached requests never queue behind running solves.
func (p *Planner) PlanCached(cfg ExperimentConfig, opts ...AutoOption) (*Experiment, bool) {
	cfg, o, err := p.prepare(cfg, opts)
	if err != nil || cfg.SearchSteps <= 0 {
		return nil, false
	}
	exp, ok := p.cachedPlan(o.requestKey(cfg))
	if !ok {
		return nil, false
	}
	p.planRequests.Add(1)
	p.planHits.Add(1)
	return exp.instantiate(o.runOpts), true
}

// Heuristic builds cfg's experiment with the pre-training-style symmetric
// 3D plan instead of a searched one (the paper's REAL-Heuristic baseline),
// sharing the session's estimators and cost caches — its evaluation also
// pre-warms the cost cache a later Plan call for the same problem draws on.
// No search runs, so the only applicable option is WithRunOptions; passing
// a search-shaping option (WithProgress, WithWarmStart, WithSolver,
// WithSearchParallelism, WithOverlapAwareSearch, WithOffloadSearch) is an
// error rather than a
// silent no-op. (To estimate the heuristic plan under the overlapped
// semantics, set cfg.PlanForOverlap — that is a config property, not a
// search option.)
func (p *Planner) Heuristic(cfg ExperimentConfig, opts ...AutoOption) (*Experiment, error) {
	var o autoOptions
	for _, fn := range opts {
		fn(&o)
	}
	if o.progress != nil || o.warmStarts != nil || o.solver != "" || o.hasChains || o.overlapAware ||
		o.offloadSearch || o.calib != nil || o.calibFactors != nil {
		return nil, fmt.Errorf("realhf: Heuristic runs no search and accepts only WithRunOptions: %w", ErrInvalidConfig)
	}
	cfg = p.merge(cfg).withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	ps, hw, g, models, err := p.problemFor(cfg, nil)
	if err != nil {
		return nil, err
	}
	plan, err := baselines.BuildHeuristic(hw, g, models)
	if err != nil {
		return nil, err
	}
	res, err := ps.cache.Evaluate(ps.est, plan)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		Config: cfg, Cluster: hw, Plan: plan, Estimate: res,
		est: ps.est, runOpts: o.runOpts,
	}, nil
}

// LoadExperiment rebuilds a runnable Experiment from a plan saved by
// Experiment.SavePlan (or realsearch -save): cfg reconstructs the dataflow
// graph and cost model, the file supplies the assignments, and the session
// estimator re-derives the estimate. The stored cluster shape and model
// cast must agree with cfg. LoadExperimentBytes is the in-memory twin for
// plans carried over the wire instead of the filesystem.
func (p *Planner) LoadExperiment(path string, cfg ExperimentConfig) (*Experiment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("realhf: read plan: %w", err)
	}
	return p.loadExperiment(data, path, cfg)
}

// loadExperiment rebuilds an Experiment from serialized plan bytes; label
// names the source (a path, or "plan bytes") in errors.
func (p *Planner) loadExperiment(data []byte, label string, cfg ExperimentConfig) (*Experiment, error) {
	cfg = p.merge(cfg).withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ps, hw, g, models, err := p.problemFor(cfg, nil)
	if err != nil {
		return nil, err
	}
	loaded, err := core.UnmarshalPlan(data, g)
	if err != nil {
		// Malformed or invalid stored plans (including an OffloadWhenIdle
		// hint on a trainable role) are config errors: retrying the identical
		// request can never succeed, so serve maps them to HTTP 400.
		return nil, fmt.Errorf("realhf: plan %s: %w: %w", label, err, ErrInvalidConfig)
	}
	if loaded.Cluster.Nodes != hw.Nodes || loaded.Cluster.GPUsPerNode != hw.GPUsPerNode {
		return nil, fmt.Errorf("realhf: plan %s was saved for a %d-node×%d-GPU cluster, config describes %d×%d: %w",
			label, loaded.Cluster.Nodes, loaded.Cluster.GPUsPerNode, hw.Nodes, hw.GPUsPerNode, ErrInvalidConfig)
	}
	for role, ms := range models {
		lm, ok := loaded.Models[role]
		if !ok || lm.Cfg.Name != ms.Cfg.Name {
			return nil, fmt.Errorf("realhf: plan %s disagrees with the config about model %q: %w", label, role, ErrInvalidConfig)
		}
	}
	// Re-attach the assignments to the config's own graph and models so the
	// estimator and runtime see one consistent problem.
	plan := core.NewPlan(hw, g, models)
	for name, a := range loaded.Assign {
		plan.Assign[name] = a
	}
	res, err := ps.cache.Evaluate(ps.est, plan)
	if err != nil {
		return nil, err
	}
	return &Experiment{Config: cfg, Cluster: hw, Plan: plan, Estimate: res, est: ps.est}, nil
}

// LoadExperiment rebuilds a runnable Experiment from a saved plan through
// the default Planner — the package-level mirror of Planner.LoadExperiment.
func LoadExperiment(path string, cfg ExperimentConfig) (*Experiment, error) {
	return DefaultPlanner().LoadExperiment(path, cfg)
}

// PlannerStats reports a session's cache effectiveness. It is also a wire
// type: the plan service's /v1/stats endpoint returns it alongside the
// server's own counters.
type PlannerStats struct {
	// PlanRequests counts Plan calls that passed validation (including
	// PlanCached probe hits).
	PlanRequests int64 `json:"plan_requests"`
	// PlanCacheHits counts requests answered from the plan cache without
	// running a solver; PlanCacheMisses counts completed solves. Requests
	// that fail (bad config, unknown solver, cancellation) count as
	// neither.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	// Problems is the number of live per-problem cost caches.
	Problems int `json:"problems"`
	// CostCacheHits and CostCacheMisses aggregate the plan-level
	// cost-cache counters across the live problem caches (entries evicted
	// from the problem pool drop out of the totals).
	CostCacheHits   int64 `json:"cost_cache_hits"`
	CostCacheMisses int64 `json:"cost_cache_misses"`
}

// Stats snapshots the session's counters.
func (p *Planner) Stats() PlannerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PlannerStats{
		PlanRequests:    p.planRequests.Load(),
		PlanCacheHits:   p.planHits.Load(),
		PlanCacheMisses: p.planMisses.Load(),
		Problems:        p.problems.len(),
	}
	p.problems.each(func(v any) {
		ps := v.(*problemState)
		st.CostCacheHits += ps.cache.Hits()
		st.CostCacheMisses += ps.cache.Misses()
	})
	return st
}

// cachedPlan looks up the canonical experiment for a request key.
func (p *Planner) cachedPlan(key string) (*Experiment, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.plans.get(key)
	if !ok {
		return nil, false
	}
	return v.(*Experiment), true
}

// storePlan caches a canonical copy of a solved experiment. The plan is
// cloned on the way in and again on the way out (instantiate), so neither
// the original caller nor later ones can mutate the cached assignments.
func (p *Planner) storePlan(key string, exp *Experiment) {
	canon := *exp
	canon.Plan = exp.Plan.Clone()
	canon.runOpts = nil
	p.mu.Lock()
	p.plans.add(key, &canon)
	p.mu.Unlock()
}

// instantiate derives a per-request Experiment from a cached canonical one.
func (e *Experiment) instantiate(runOpts *RunOptions) *Experiment {
	out := *e
	out.Plan = e.Plan.Clone()
	out.Cached = true
	out.runOpts = runOpts
	return &out
}

// problemFor resolves the session state for cfg's problem — building the
// graph and model cast fresh (they are cheap and per-request) while the
// estimator, costers and cost cache come from the session pools. A non-nil
// calibration selects (or creates) the problem's calibrated twin: the
// calibration key joins the pool key, so a calibrated problem owns its own
// estimator and search.CostCache and can never poison the uncalibrated
// (or overlap-semantics) entries a default request reads.
func (p *Planner) problemFor(cfg ExperimentConfig, calib *estimator.Calibration) (*problemState, hardware.Cluster, *dfg.Graph, map[dfg.Role]core.ModelSpec, error) {
	hw := hardware.DefaultCluster(cfg.Nodes)
	hw.GPUsPerNode = cfg.GPUsPerNode
	g, models, err := buildGraph(cfg)
	if err != nil {
		return nil, hw, nil, nil, err
	}
	key := cfg.problemKey() + calibToken(calib)
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.problems.get(key); ok {
		return v.(*problemState), hw, g, models, nil
	}
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range models {
		costers[role] = p.costerLocked(hw, ms.Cfg)
	}
	est := estimator.New(hw, costers)
	// The problem's cost semantics follow the config: with PlanForOverlap
	// set, every estimate this problem produces (search, Heuristic,
	// LoadExperiment) simulates the overlapped engine. problemKey encodes
	// the flag, so the serialized twin keeps its own estimator and cache.
	est.OverlapComm = cfg.PlanForOverlap
	est.Calib = calib
	ps := &problemState{est: est, cache: search.NewCostCache()}
	p.problems.add(key, ps)
	return ps, hw, g, models, nil
}

// calibToken folds a calibration into a problem or plan-cache key ("" for
// the uncalibrated base, so every existing key is unchanged).
func calibToken(c *estimator.Calibration) string {
	if k := c.Key(); k != "" {
		return ";calib=" + k
	}
	return ""
}

// costerLocked returns the session's coster for (cluster shape, arch),
// creating it on first use. Callers hold p.mu.
func (p *Planner) costerLocked(hw hardware.Cluster, cfg model.Config) gpumodel.ModelCoster {
	k := costerKey{nodes: hw.Nodes, gpusPerNode: hw.GPUsPerNode, arch: cfg.Name}
	if mc, ok := p.costers[k]; ok {
		return mc
	}
	mc := gpumodel.NewOracle(hw, cfg)
	p.costers[k] = mc
	return mc
}

// --- canonical request keys ---

// appendToken writes a length-prefixed string, so user-chosen names can
// never alias two different configs onto one cache key.
func appendToken(b *strings.Builder, s string) {
	fmt.Fprintf(b, "%d:%s,", len(s), s)
}

// problemKey canonically encodes everything that defines the problem —
// cluster shape, workload, cost semantics and the full RPC list — but none
// of the search knobs. Equal keys mean one graph, one estimator, one cost
// cache. PlanForOverlap is part of the key because it selects the
// estimator's schedule semantics: serialized and overlap-aware solves of
// one workload must never share a cost cache, or each would poison the
// other's plan-level makespans. withDefaults must have been applied.
func (c ExperimentConfig) problemKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster=%d.%d;work=%d.%d.%d.%d.%d;overlap=%t;offload=%t;rpcs=",
		c.Nodes, c.GPUsPerNode, c.BatchSize, c.PromptLen, c.GenLen, c.MiniBatches, c.Iterations, c.PlanForOverlap, c.OffloadSearch)
	for _, r := range c.RPCs {
		// Canonicalize per-call fields the graph builder treats as
		// equivalent, so e.g. BatchScale 0 and 1 (both "unscaled"), a
		// MiniBatches value on a non-train call (ignored), or an explicit
		// train MiniBatches equal to the experiment default never split the
		// caches into duplicate entries for one workload.
		scale := r.BatchScale
		if scale < 1 {
			scale = 1
		}
		mini := 0
		if r.InterfaceType == TrainStep {
			mini = c.MiniBatches
			if r.MiniBatches > 0 {
				mini = r.MiniBatches
			}
		}
		fmt.Fprintf(&b, "[%d.%d.%d;", int(r.InterfaceType), scale, mini)
		appendToken(&b, r.Name)
		appendToken(&b, r.ModelName)
		appendToken(&b, r.ModelType)
		b.WriteString("in;")
		for _, s := range r.InputData {
			appendToken(&b, s)
		}
		b.WriteString("out;")
		for _, s := range r.OutputData {
			appendToken(&b, s)
		}
		b.WriteString("]")
	}
	return b.String()
}

// fingerprint extends problemKey with the search knobs: two configs with
// equal fingerprints request the same deterministic solve, which is what
// the plan cache keys on. PlanForOverlap reaches the fingerprint through
// problemKey, so a serialized and an overlap-aware request never alias in
// the plan cache either. withDefaults must have been applied.
func (c ExperimentConfig) fingerprint() string {
	return c.problemKey() + fmt.Sprintf(";solver=%s;steps=%d;time=%d;seed=%d;chains=%d",
		c.Solver, c.SearchSteps, int64(c.SearchTime), c.Seed, c.SearchParallelism)
}

// warmStartKey folds WithWarmStart plans into the request key.
func warmStartKey(plans []*core.Plan) string {
	if len(plans) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(";warm=")
	for _, p := range plans {
		if p == nil {
			continue
		}
		b.WriteString(p.Fingerprint())
		b.WriteString("+")
	}
	return b.String()
}

// --- minimal LRU, guarded by the planner mutex ---

type lruCache struct {
	capacity int
	ll       *list.List
	items    map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{capacity: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) add(key string, val any) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }

func (c *lruCache) each(f func(any)) {
	for el := c.ll.Front(); el != nil; el = el.Next() {
		f(el.Value.(*lruEntry).val)
	}
}
