package realhf

import (
	"strings"
	"testing"
)

func quickConfig() ExperimentConfig {
	return ExperimentConfig{
		Nodes: 2, BatchSize: 256, PromptLen: 512, GenLen: 512,
		RPCs: PPORPCs("llama7b", "llama7b-critic"), SearchSteps: 800, Seed: 7,
	}
}

func TestAutoProducesRunnablePlan(t *testing.T) {
	exp, err := Auto(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Plan.Validate(); err != nil {
		t.Fatalf("auto plan invalid: %v", err)
	}
	if exp.Estimate.OOM {
		t.Error("auto plan should be memory-feasible")
	}
	rep, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOM {
		t.Fatalf("run OOMed: %v", rep.Errors)
	}
	if rep.IterationTime <= 0 || rep.ThroughputPFLOPs <= 0 {
		t.Errorf("bad report: %+v", rep)
	}
	if len(rep.CallTimes) != 6 {
		t.Errorf("expected 6 calls, got %d", len(rep.CallTimes))
	}
}

func TestAutoBeatsHeuristic(t *testing.T) {
	cfg := quickConfig()
	cfg.BatchSize = 512
	cfg.PromptLen, cfg.GenLen = 1024, 1024
	cfg.SearchSteps = 2000
	auto, err := Auto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := Heuristic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := auto.Run()
	if err != nil {
		t.Fatal(err)
	}
	hr, err := heur.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ar.IterationTime > hr.IterationTime {
		t.Errorf("auto (%.1fs) lost to heuristic (%.1fs)", ar.IterationTime, hr.IterationTime)
	}
}

func TestPPORPCsWiring(t *testing.T) {
	rpcs := PPORPCs("llama7b", "llama7b-critic")
	if len(rpcs) != 6 {
		t.Fatalf("PPO has %d RPCs, want 6", len(rpcs))
	}
	cfg := quickConfig()
	g, models, err := buildGraph(cfg.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 6 {
		t.Errorf("graph has %d nodes, want 6", len(g.Nodes))
	}
	if !models["actor"].Trainable || !models["critic"].Trainable {
		t.Error("actor and critic must be trainable")
	}
	if models["ref"].Trainable || models["reward"].Trainable {
		t.Error("ref and reward must be frozen")
	}
	if !models["critic"].IsCritic || !models["reward"].IsCritic {
		t.Error("critic-typed models must be scalar-head")
	}
	// actor/GENERATE feeds the three inferences and both trainings (its
	// sequences and log-probs are training inputs).
	var gen int
	for _, n := range g.Nodes {
		if n.Name == "actor/GENERATE" {
			gen = len(g.Children(n))
		}
	}
	if gen != 5 {
		t.Errorf("generation feeds %d calls, want 5", gen)
	}
}

func TestBuildGraphRejectsBadInput(t *testing.T) {
	cfg := quickConfig()
	cfg.RPCs = nil
	if _, err := Auto(cfg); err == nil {
		t.Error("empty RPC list must fail")
	}
	cfg = quickConfig()
	cfg.RPCs = append([]ModelFunctionCallDef{}, cfg.RPCs...)
	cfg.RPCs[0].ModelType = "gpt99"
	if _, err := Auto(cfg); err == nil {
		t.Error("unknown model type must fail")
	}
	cfg = quickConfig()
	cfg.RPCs = append([]ModelFunctionCallDef{}, cfg.RPCs...)
	cfg.RPCs[4] = ModelFunctionCallDef{ModelName: "actor", ModelType: "llama13b",
		InterfaceType: TrainStep, InputData: []string{"seq"}}
	if _, err := Auto(cfg); err == nil {
		t.Error("conflicting architectures for one model must fail")
	}
	cfg = quickConfig()
	cfg.Nodes = 0
	if _, err := Auto(cfg); err == nil {
		t.Error("zero nodes must fail")
	}
}

func TestMultiIterationGraph(t *testing.T) {
	cfg := quickConfig()
	cfg.Iterations = 2
	cfg.SearchSteps = 300
	exp, err := Auto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(exp.Plan.Graph.Nodes); got != 12 {
		t.Errorf("2-iteration graph has %d nodes, want 12", got)
	}
	rep, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.IterationTime <= 0 {
		t.Error("per-iteration time must be positive")
	}
}

func TestPlanTableRendering(t *testing.T) {
	exp, err := Auto(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := exp.PlanTable()
	for _, want := range []string{"actor/GENERATE", "TP", "DP", "PP"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("plan table missing %q:\n%s", want, tbl)
		}
	}
}

func TestCustomWorkflow(t *testing.T) {
	// A DPO-style two-call workflow through the public API.
	cfg := ExperimentConfig{
		Nodes: 1, BatchSize: 128, PromptLen: 512, GenLen: 512,
		SearchSteps: 400, Seed: 3,
		RPCs: []ModelFunctionCallDef{
			{ModelName: "ref", ModelType: "llama7b", InterfaceType: Inference,
				InputData: []string{"pairs"}, OutputData: []string{"ref_logp"}},
			{ModelName: "actor", ModelType: "llama7b", InterfaceType: TrainStep,
				InputData: []string{"pairs", "ref_logp"}},
		},
	}
	exp, err := Auto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CallTimes) != 2 {
		t.Errorf("DPO workflow has %d calls, want 2", len(rep.CallTimes))
	}
}

func TestInterfaceTypeString(t *testing.T) {
	if Generate.String() != "GENERATE" || TrainStep.String() != "TRAIN_STEP" {
		t.Error("InterfaceType strings wrong")
	}
}

func TestAutoSolverSelection(t *testing.T) {
	cfg := quickConfig()
	cfg.SearchSteps = 300

	base, err := Auto(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Explicit "mcmc" must match the default-solver plan exactly.
	cfg.Solver = "mcmc"
	same, err := Auto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Plan.Fingerprint() != same.Plan.Fingerprint() {
		t.Error("explicit mcmc solver must reproduce the default plan")
	}

	// SearchParallelism > 1 without a solver name upgrades to parallel-mcmc
	// and reports per-chain stats.
	cfg.Solver = ""
	cfg.SearchParallelism = 3
	par, err := Auto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Plan.Validate(); err != nil {
		t.Fatalf("parallel-searched plan invalid: %v", err)
	}
	if len(par.SearchStats.Chains) != 3 {
		t.Errorf("want 3 chain stats, got %d", len(par.SearchStats.Chains))
	}
	if par.Estimate.Cost > base.Estimate.Cost*1.001 {
		t.Errorf("3 chains (%.3f) should not lose to one (%.3f)",
			par.Estimate.Cost, base.Estimate.Cost)
	}

	// Unknown solver names fail fast.
	cfg.Solver = "simulated-annealing"
	if _, err := Auto(cfg); err == nil {
		t.Error("unknown solver name must error")
	}
}

func TestAutoDeterministicAcrossSolverRuns(t *testing.T) {
	cfg := quickConfig()
	cfg.SearchSteps = 300
	cfg.Solver = "parallel-mcmc"
	cfg.SearchParallelism = 2
	a, err := Auto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Auto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan.Fingerprint() != b.Plan.Fingerprint() {
		t.Error("same seed must reproduce the same parallel-searched plan")
	}
	// Auto shares the default Planner's session cost cache, so a solve that
	// follows an equivalent problem may see zero misses; lookups must still
	// be accounted.
	if a.SearchStats.CacheHits+a.SearchStats.CacheMisses == 0 {
		t.Error("search stats must report cost-cache counters")
	}
}

func TestRunWithOverlapKnob(t *testing.T) {
	exp, err := Auto(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	over, err := exp.RunWith(RunOptions{UseCUDAGraph: true, OverlapComm: true})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := exp.RunWith(RunOptions{UseCUDAGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if !over.OverlapComm || serial.OverlapComm {
		t.Error("RunReport must echo the OverlapComm option")
	}
	if over.IterationTime > serial.IterationTime+1e-9 {
		t.Errorf("overlapped run (%.2fs) must not lose to serialized (%.2fs)",
			over.IterationTime, serial.IterationTime)
	}
	// Run() uses DefaultRunOptions (overlap on).
	def, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !def.OverlapComm {
		t.Error("Run() must execute under DefaultRunOptions (overlap on)")
	}
	if def.IterationTime != over.IterationTime {
		t.Errorf("Run() (%.6f) must match RunWith(DefaultRunOptions()) (%.6f)",
			def.IterationTime, over.IterationTime)
	}
}
