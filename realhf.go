// Package realhf is a Go reproduction of ReaL ("ReaL: Efficient RLHF
// Training of Large Language Models with Parameter Reallocation", MLSys
// 2025): an RLHF training system that searches for an execution plan —
// a device mesh and 3D-parallelization strategy per model function call,
// with parameters reallocated between calls — and executes it with a
// master/model-worker runtime engine.
//
// The public API mirrors the paper's user interface (Fig. 18): an
// experiment is a list of ModelFunctionCallDef values wired together by
// named data dependencies; Auto derives an efficient execution plan via
// MCMC search over a profiling-backed cost model, and Run executes it.
// Physical GPUs are replaced by a calibrated analytic cluster model (see
// DESIGN.md); every system layer above the kernels — planner, estimator,
// reallocation, runtime protocol — runs for real.
//
//	exp, err := realhf.Auto(realhf.ExperimentConfig{
//	    Nodes:     2,
//	    BatchSize: 512,
//	    PromptLen: 1024,
//	    GenLen:    1024,
//	    RPCs:      realhf.PPORPCs("llama7b", "llama7b-critic"),
//	})
//	report, err := exp.Run()
package realhf

import (
	"context"
	"fmt"
	"strings"
	"time"

	"realhf/internal/baselines"
	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/gpumodel"
	"realhf/internal/hardware"
	"realhf/internal/model"
	"realhf/internal/runtime"
	"realhf/internal/search"
)

// InterfaceType is the kind of computation a model function call performs.
type InterfaceType int

// The three interface types of §2.1.
const (
	Generate InterfaceType = iota
	Inference
	TrainStep
)

func (t InterfaceType) String() string {
	switch t {
	case Generate:
		return "GENERATE"
	case Inference:
		return "INFERENCE"
	case TrainStep:
		return "TRAIN_STEP"
	}
	return fmt.Sprintf("InterfaceType(%d)", int(t))
}

// ModelFunctionCallDef declares one model function call, following the
// paper's Python API: models sharing ModelName share parameters; InputData
// names the data the call consumes and OutputData what it produces, which
// together induce the dataflow graph.
type ModelFunctionCallDef struct {
	// Name optionally overrides the call's display name; defaults to
	// "<ModelName>/<InterfaceType>".
	Name string
	// ModelName identifies the LLM ("actor", "critic", "ref", "reward").
	ModelName string
	// ModelType names the architecture: "llama7b", "llama13b", "llama34b",
	// "llama70b", with an optional "-critic" suffix for scalar-head models.
	ModelType string
	// InterfaceType selects generation, inference, or training.
	InterfaceType InterfaceType
	// InputData and OutputData wire the dataflow graph.
	InputData  []string
	OutputData []string
}

// ExperimentConfig describes one RLHF experiment, the input to Auto.
type ExperimentConfig struct {
	// Nodes is the number of 8-GPU hosts (the paper's testbed shape).
	Nodes int
	// GPUsPerNode overrides the default of 8.
	GPUsPerNode int
	// BatchSize is the global number of prompts per iteration.
	BatchSize int
	// PromptLen and GenLen are per-sequence token counts.
	PromptLen, GenLen int
	// MiniBatches is the PPO mini-batch count for TrainStep calls
	// (default 8, after InstructGPT).
	MiniBatches int
	// Iterations concatenates multiple RLHF iterations into one dataflow
	// graph (default 1), enabling cross-iteration overlap.
	Iterations int
	// RPCs is the workflow definition.
	RPCs []ModelFunctionCallDef

	// SearchSteps bounds the MCMC search (default 4000; per chain for the
	// parallel solver).
	SearchSteps int
	// SearchTime optionally bounds search wall time instead.
	SearchTime time.Duration
	// Seed fixes the search RNG (default 1). Multi-chain solvers derive
	// per-chain seeds from it, and a fixed seed with a step-bounded search
	// reproduces the chosen plan byte for byte.
	Seed int64
	// Solver selects the planning engine by registry name: "mcmc" (the
	// default sequential Metropolis–Hastings walker of §5.2),
	// "parallel-mcmc" (K independent chains with periodic best-plan
	// exchange and a shared memoized cost cache), "greedy" (the per-call
	// seed plan only), or "exhaustive" (the bounded brute-force reference
	// of Fig. 15; small problems only). Leaving it empty keeps the
	// pre-Solver behavior: "mcmc", upgraded to "parallel-mcmc" when
	// SearchParallelism > 1.
	Solver string
	// SearchParallelism is the number of concurrent MCMC chains for the
	// parallel solver. 0 or 1 keeps the sequential engine (backward
	// compatible); with Solver == "parallel-mcmc" and SearchParallelism
	// left at 0 the solver uses GOMAXPROCS chains.
	SearchParallelism int
}

func (c ExperimentConfig) withDefaults() ExperimentConfig {
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 8
	}
	if c.MiniBatches == 0 {
		c.MiniBatches = 8
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.SearchSteps == 0 && c.SearchTime == 0 {
		c.SearchSteps = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Solver == "" {
		c.Solver = "mcmc"
		if c.SearchParallelism > 1 {
			c.Solver = "parallel-mcmc"
		}
	}
	return c
}

// PPORPCs returns the standard PPO workflow of Fig. 4: actor generation,
// reward/ref/critic inference, and actor/critic training.
func PPORPCs(actorType, criticType string) []ModelFunctionCallDef {
	return []ModelFunctionCallDef{
		{ModelName: "actor", ModelType: actorType, InterfaceType: Generate,
			InputData: []string{"prompts"}, OutputData: []string{"seq", "logp"}},
		{ModelName: "reward", ModelType: criticType, InterfaceType: Inference,
			InputData: []string{"seq"}, OutputData: []string{"r"}},
		{ModelName: "ref", ModelType: actorType, InterfaceType: Inference,
			InputData: []string{"seq"}, OutputData: []string{"ref_logp"}},
		{ModelName: "critic", ModelType: criticType, InterfaceType: Inference,
			InputData: []string{"seq"}, OutputData: []string{"v"}},
		{ModelName: "actor", ModelType: actorType, InterfaceType: TrainStep,
			InputData: []string{"seq", "logp", "ref_logp", "r", "v"}},
		{ModelName: "critic", ModelType: criticType, InterfaceType: TrainStep,
			InputData: []string{"seq", "r", "v", "ref_logp", "logp"}},
	}
}

// parseModelType resolves a ModelType string.
func parseModelType(s string) (model.Config, bool, error) {
	critic := strings.HasSuffix(s, "-critic")
	name := strings.TrimSuffix(s, "-critic")
	name = strings.TrimPrefix(name, "llama")
	cfg, err := model.ByName(name)
	if err != nil {
		return model.Config{}, false, fmt.Errorf("realhf: bad ModelType %q: %w", s, err)
	}
	return cfg, critic, nil
}

// buildGraph lowers RPC definitions into the internal dataflow graph.
func buildGraph(c ExperimentConfig) (*dfg.Graph, map[dfg.Role]core.ModelSpec, error) {
	if len(c.RPCs) == 0 {
		return nil, nil, fmt.Errorf("realhf: experiment has no RPCs")
	}
	g := dfg.NewGraph("custom")
	models := map[dfg.Role]core.ModelSpec{}

	type produced struct{ node *dfg.Node }
	var prevTrain map[dfg.Role]*dfg.Node

	for iter := 0; iter < c.Iterations; iter++ {
		producers := map[string]produced{}
		var nodes []*dfg.Node
		// First pass: create nodes and record outputs.
		for _, rpc := range c.RPCs {
			cfg, critic, err := parseModelType(rpc.ModelType)
			if err != nil {
				return nil, nil, err
			}
			role := dfg.Role(rpc.ModelName)
			ms, ok := models[role]
			if !ok {
				ms = core.ModelSpec{Role: role, Cfg: cfg, IsCritic: critic}
			} else if ms.Cfg.Name != cfg.Name {
				return nil, nil, fmt.Errorf("realhf: model %q declared with types %q and %q",
					rpc.ModelName, ms.Cfg.Name, cfg.Name)
			}
			name := rpc.Name
			if name == "" {
				name = fmt.Sprintf("%s/%s", rpc.ModelName, rpc.InterfaceType)
			}
			var typ dfg.CallType
			work := dfg.Workload{Batch: c.BatchSize, PromptLen: c.PromptLen, GenLen: c.GenLen}
			switch rpc.InterfaceType {
			case Generate:
				typ = dfg.Generate
			case Inference:
				typ = dfg.Inference
			case TrainStep:
				typ = dfg.Train
				work.MiniBatches = c.MiniBatches
				ms.Trainable = true
			default:
				return nil, nil, fmt.Errorf("realhf: bad interface type %v", rpc.InterfaceType)
			}
			models[role] = ms
			n := g.AddNode(name, role, typ, iter, work)
			nodes = append(nodes, n)
			for _, out := range rpc.OutputData {
				producers[out] = produced{node: n}
			}
		}
		// Second pass: wire data dependencies within the iteration
		// (deduplicated: several named tensors may flow along one edge).
		for i, rpc := range c.RPCs {
			wired := map[int]bool{}
			for _, in := range rpc.InputData {
				p, ok := producers[in]
				if !ok || p.node == nodes[i] || wired[p.node.ID] {
					continue
				}
				wired[p.node.ID] = true
				g.AddEdge(p.node, nodes[i])
			}
		}
		// Parameter-version edges from the previous iteration's training.
		for i, rpc := range c.RPCs {
			role := dfg.Role(rpc.ModelName)
			if prev, ok := prevTrain[role]; ok && prev != nil {
				g.AddEdge(prev, nodes[i])
			}
		}
		prevTrain = map[dfg.Role]*dfg.Node{}
		for i, rpc := range c.RPCs {
			if rpc.InterfaceType == TrainStep {
				prevTrain[dfg.Role(rpc.ModelName)] = nodes[i]
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return g, models, nil
}

// Experiment is a planned RLHF experiment ready to run.
type Experiment struct {
	Config  ExperimentConfig
	Cluster hardware.Cluster
	Plan    *core.Plan
	// Estimate is the planner's prediction for the chosen plan.
	Estimate *estimator.Result
	// SearchTrace records the planner's convergence.
	SearchTrace []search.ProgressPoint
	// SearchStats carries the solver's counters: steps, acceptance,
	// cost-cache hit rate, and per-chain breakdowns for parallel solvers.
	SearchStats search.Stats

	est *estimator.Estimator
}

// Auto builds the experiment and searches for an efficient execution plan —
// the analogue of the paper's @auto decorator. The planning engine is
// selected by cfg.Solver via the search package's solver registry.
func Auto(cfg ExperimentConfig) (*Experiment, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("realhf: Nodes must be positive")
	}
	solver, err := search.New(cfg.Solver)
	if err != nil {
		return nil, err
	}
	hw := hardware.DefaultCluster(cfg.Nodes)
	hw.GPUsPerNode = cfg.GPUsPerNode
	g, models, err := buildGraph(cfg)
	if err != nil {
		return nil, err
	}
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range models {
		costers[role] = gpumodel.NewOracle(hw, ms.Cfg)
	}
	est := estimator.New(hw, costers)
	plan := core.NewPlan(hw, g, models)
	var seeds []*core.Plan
	if heur, err := baselines.BuildHeuristic(hw, g, models); err == nil {
		seeds = append(seeds, heur)
	}
	sol, stats, err := solver.Solve(context.Background(),
		search.Problem{Est: est, Plan: plan},
		search.Options{
			MaxSteps:       cfg.SearchSteps,
			TimeLimit:      cfg.SearchTime,
			Seed:           cfg.Seed,
			Chains:         cfg.SearchParallelism,
			SeedCandidates: seeds,
		})
	if err != nil {
		return nil, err
	}
	return &Experiment{
		Config: cfg, Cluster: hw, Plan: sol.Plan,
		Estimate: sol.Estimate, SearchTrace: stats.Trace, SearchStats: stats, est: est,
	}, nil
}

// Heuristic builds the same experiment with the pre-training-style symmetric
// 3D plan instead of a searched one (the paper's REAL-Heuristic baseline).
func Heuristic(cfg ExperimentConfig) (*Experiment, error) {
	cfg = cfg.withDefaults()
	hw := hardware.DefaultCluster(cfg.Nodes)
	hw.GPUsPerNode = cfg.GPUsPerNode
	g, models, err := buildGraph(cfg)
	if err != nil {
		return nil, err
	}
	plan, err := baselines.BuildHeuristic(hw, g, models)
	if err != nil {
		return nil, err
	}
	costers := map[dfg.Role]gpumodel.ModelCoster{}
	for role, ms := range models {
		costers[role] = gpumodel.NewOracle(hw, ms.Cfg)
	}
	est := estimator.New(hw, costers)
	res, err := est.Evaluate(plan)
	if err != nil {
		return nil, err
	}
	return &Experiment{Config: cfg, Cluster: hw, Plan: plan, Estimate: res, est: est}, nil
}

// RunOptions configures plan execution — the public mirror of the runtime
// engine's options.
type RunOptions struct {
	// UseCUDAGraph captures decoding kernels into CUDA graphs (Table 6's
	// ±CUDAGraph ablation).
	UseCUDAGraph bool
	// OverlapComm executes parameter reallocation, data transfer and
	// offload traffic on per-worker communication streams, overlapped with
	// computation (§6). Disabling it serializes every node per device —
	// the baseline side of the ±overlap ablation.
	OverlapComm bool
}

// DefaultRunOptions is the paper's full runtime configuration: CUDA graphs
// and communication overlap both enabled.
func DefaultRunOptions() RunOptions {
	return RunOptions{UseCUDAGraph: true, OverlapComm: true}
}

// RunReport summarizes an executed experiment.
type RunReport struct {
	// IterationTime is the virtual wall time of one RLHF iteration.
	IterationTime float64
	// ThroughputPFLOPs is the paper's end-to-end metric.
	ThroughputPFLOPs float64
	// CallTimes breaks the iteration into per-call durations.
	CallTimes map[string]float64
	// CommTime is the total parameter-reallocation/data-transfer time
	// (spent, whether or not it was hidden behind computation).
	CommTime float64
	// OverlapComm echoes the option the run executed under.
	OverlapComm bool
	// OOM reports whether the plan ran out of device memory.
	OOM bool
	// Errors carries worker diagnostics for failed runs.
	Errors []string
}

// Run executes the experiment's plan on the simulated cluster through the
// runtime engine (master worker + per-GPU model workers) under
// DefaultRunOptions.
func (e *Experiment) Run() (*RunReport, error) {
	return e.RunWith(DefaultRunOptions())
}

// RunWith executes the experiment's plan under explicit run options.
func (e *Experiment) RunWith(opts RunOptions) (*RunReport, error) {
	rep, err := runtime.Run(e.Plan, runtime.Options{
		UseCUDAGraph: opts.UseCUDAGraph,
		OverlapComm:  opts.OverlapComm,
	})
	if err != nil {
		return nil, err
	}
	out := &RunReport{
		IterationTime: rep.IterTime(),
		CallTimes:     rep.CallTimes,
		CommTime:      rep.CommTimeV,
		OverlapComm:   rep.OverlapComm,
		OOM:           rep.OOM,
		Errors:        rep.Errors,
	}
	if !rep.OOM {
		out.ThroughputPFLOPs = estimator.Throughput(e.Plan, rep.MakespanV)
	}
	return out, nil
}

// PlanTable renders the execution plan in the format of paper Tables 2–5,
// with estimated per-call durations.
func (e *Experiment) PlanTable() string {
	var times map[string]float64
	if e.Estimate != nil {
		times = e.Estimate.CallTimes
	}
	return e.Plan.Table(times)
}
