// Package realhf is a Go reproduction of ReaL ("ReaL: Efficient RLHF
// Training of Large Language Models with Parameter Reallocation", MLSys
// 2025): an RLHF training system that searches for an execution plan —
// a device mesh and 3D-parallelization strategy per model function call,
// with parameters reallocated between calls — and executes it with a
// master/model-worker runtime engine.
//
// The public API mirrors the paper's user interface (Fig. 18): an
// experiment is a list of ModelFunctionCallDef values wired together by
// named data dependencies. A long-lived Planner session derives efficient
// execution plans via MCMC search over a profiling-backed cost model,
// reusing per-model costers, memoized cost caches and previously searched
// plans across requests, and Run executes the chosen plan. Physical GPUs
// are replaced by a calibrated analytic cluster model (see DESIGN.md);
// every system layer above the kernels — planner, estimator, reallocation,
// runtime protocol — runs for real.
//
//	planner := realhf.NewPlanner(realhf.ClusterConfig{Nodes: 2})
//	exp, err := planner.Plan(ctx, realhf.ExperimentConfig{
//	    BatchSize: 512,
//	    PromptLen: 1024,
//	    GenLen:    1024,
//	    RPCs:      realhf.PPORPCs("llama7b", "llama7b-critic"),
//	})
//	report, err := exp.Run()
//
// The one-shot Auto/Heuristic helpers — the paper's @auto decorator shape —
// survive as thin wrappers over a lazily-initialized default Planner.
package realhf

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"realhf/internal/core"
	"realhf/internal/dfg"
	"realhf/internal/estimator"
	"realhf/internal/hardware"
	"realhf/internal/model"
	"realhf/internal/runtime"
	"realhf/internal/search"
)

// InterfaceType is the kind of computation a model function call performs.
type InterfaceType int

// The three interface types of §2.1.
const (
	Generate InterfaceType = iota
	Inference
	TrainStep
)

func (t InterfaceType) String() string {
	switch t {
	case Generate:
		return "GENERATE"
	case Inference:
		return "INFERENCE"
	case TrainStep:
		return "TRAIN_STEP"
	}
	return fmt.Sprintf("InterfaceType(%d)", int(t))
}

// ModelFunctionCallDef declares one model function call, following the
// paper's Python API: models sharing ModelName share parameters; InputData
// names the data the call consumes and OutputData what it produces, which
// together induce the dataflow graph.
type ModelFunctionCallDef struct {
	// Name optionally overrides the call's display name; defaults to
	// "<ModelName>/<InterfaceType>".
	Name string `json:"name,omitempty"`
	// ModelName identifies the LLM ("actor", "critic", "ref", "reward").
	ModelName string `json:"model_name"`
	// ModelType names the architecture: "llama7b", "llama13b", "llama34b",
	// "llama70b", with an optional "-critic" suffix for scalar-head models.
	ModelType string `json:"model_type"`
	// InterfaceType selects generation, inference, or training.
	InterfaceType InterfaceType `json:"interface_type"`
	// InputData and OutputData wire the dataflow graph.
	InputData  []string `json:"input_data,omitempty"`
	OutputData []string `json:"output_data,omitempty"`
	// BatchScale multiplies the experiment's BatchSize for this call
	// (0 or 1 means unscaled). The algorithm presets use it where a
	// workflow inflates the sequence count per prompt: GRPO's grouped
	// generation processes BatchSize×GroupSize sequences, and DPO's calls
	// see both the chosen and rejected sequence of every preference pair.
	BatchScale int `json:"batch_scale,omitempty"`
	// MiniBatches overrides ExperimentConfig.MiniBatches for this TrainStep
	// call (0 keeps the experiment-wide default). DPO and ReMax train over
	// the full batch (MiniBatches = 1) while PPO defaults to 8.
	MiniBatches int `json:"mini_batches,omitempty"`
}

// ExperimentConfig describes one RLHF experiment, the input to Auto. It is
// also the plan service's wire type: MarshalJSON emits the canonical
// defaults-applied form and UnmarshalJSON parses it back, round-tripping
// bit-stably through the config fingerprint (see wire.go).
type ExperimentConfig struct {
	// Nodes is the number of 8-GPU hosts (the paper's testbed shape).
	Nodes int `json:"nodes"`
	// GPUsPerNode overrides the default of 8.
	GPUsPerNode int `json:"gpus_per_node"`
	// BatchSize is the global number of prompts per iteration.
	BatchSize int `json:"batch_size"`
	// PromptLen and GenLen are per-sequence token counts.
	PromptLen int `json:"prompt_len"`
	GenLen    int `json:"gen_len"`
	// MiniBatches is the PPO mini-batch count for TrainStep calls
	// (default 8, after InstructGPT).
	MiniBatches int `json:"mini_batches"`
	// Iterations concatenates multiple RLHF iterations into one dataflow
	// graph (default 1), enabling cross-iteration overlap.
	Iterations int `json:"iterations"`
	// RPCs is the workflow definition.
	RPCs []ModelFunctionCallDef `json:"rpcs"`

	// SearchSteps bounds the MCMC search (default 4000; per chain for the
	// parallel solver).
	SearchSteps int `json:"search_steps"`
	// SearchTime optionally bounds search wall time instead.
	SearchTime time.Duration `json:"search_time_ns"`
	// Seed fixes the search RNG (default 1). Multi-chain solvers derive
	// per-chain seeds from it, and a fixed seed with a step-bounded search
	// reproduces the chosen plan byte for byte.
	Seed int64 `json:"seed"`
	// Solver selects the planning engine by registry name: "mcmc" (the
	// default sequential Metropolis–Hastings walker of §5.2),
	// "parallel-mcmc" (K independent chains with periodic best-plan
	// exchange and a shared memoized cost cache), "greedy" (the per-call
	// seed plan only), or "exhaustive" (the bounded brute-force reference
	// of Fig. 15; small problems only). Leaving it empty keeps the
	// pre-Solver behavior: "mcmc", upgraded to "parallel-mcmc" when
	// SearchParallelism > 1.
	Solver string `json:"solver"`
	// SearchParallelism is the number of concurrent MCMC chains for the
	// parallel solver. 0 or 1 keeps the sequential engine (backward
	// compatible); with Solver == "parallel-mcmc" and SearchParallelism
	// left at 0 the solver uses GOMAXPROCS chains.
	SearchParallelism int `json:"search_parallelism"`
	// PlanForOverlap makes the search score candidate plans under the
	// overlapped-engine cost semantics (estimator.Estimator.OverlapComm) —
	// the schedule the runtime executes under DefaultRunOptions — instead of
	// the historical fully-serialized objective. The returned Estimate then
	// predicts the overlapped iteration time. Default off: existing configs
	// keep their plans and estimates byte for byte. The flag is part of the
	// planner's problem and plan-cache keys, so serialized and overlap-aware
	// solves of one workload never share cost caches or cached plans.
	PlanForOverlap bool `json:"plan_for_overlap"`
	// OffloadSearch makes host offload a searched plan dimension
	// (search.Options.OffloadSearch): the solver explores parking frozen
	// models' parameters in host memory per call, with the memory ledger as a
	// hard feasibility constraint — the path to the paper's 70B-on-one-node
	// regime, which a fixed-offload search can never discover. Default off:
	// existing configs keep their plans byte for byte. Like PlanForOverlap,
	// the flag is part of the planner's problem and plan-cache keys.
	OffloadSearch bool `json:"offload_search"`
}

func (c ExperimentConfig) withDefaults() ExperimentConfig {
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 8
	}
	if c.MiniBatches == 0 {
		c.MiniBatches = 8
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.SearchSteps == 0 && c.SearchTime == 0 {
		c.SearchSteps = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Solver == "" {
		c.Solver = "mcmc"
		if c.SearchParallelism > 1 {
			c.Solver = "parallel-mcmc"
		}
	}
	return c
}

// validate reports configuration errors. It is the single checker shared by
// every planning entry point — Auto, Heuristic and Planner.Plan — so all of
// them reject a bad config with the same error, wrapping ErrInvalidConfig.
func (c ExperimentConfig) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("realhf: Nodes must be positive: %w", ErrInvalidConfig)
	}
	return nil
}

// PPORPCs returns the standard PPO workflow of Fig. 4: actor generation,
// reward/ref/critic inference, and actor/critic training.
func PPORPCs(actorType, criticType string) []ModelFunctionCallDef {
	return []ModelFunctionCallDef{
		{ModelName: "actor", ModelType: actorType, InterfaceType: Generate,
			InputData: []string{"prompts"}, OutputData: []string{"seq", "logp"}},
		{ModelName: "reward", ModelType: criticType, InterfaceType: Inference,
			InputData: []string{"seq"}, OutputData: []string{"r"}},
		{ModelName: "ref", ModelType: actorType, InterfaceType: Inference,
			InputData: []string{"seq"}, OutputData: []string{"ref_logp"}},
		{ModelName: "critic", ModelType: criticType, InterfaceType: Inference,
			InputData: []string{"seq"}, OutputData: []string{"v"}},
		{ModelName: "actor", ModelType: actorType, InterfaceType: TrainStep,
			InputData: []string{"seq", "logp", "ref_logp", "r", "v"}},
		{ModelName: "critic", ModelType: criticType, InterfaceType: TrainStep,
			InputData: []string{"seq", "r", "v", "ref_logp", "logp"}},
	}
}

// DPORPCs returns the DPO workflow of paper Fig. 16: reference inference
// over preference pairs feeding one actor training call — no generation, no
// critic. BatchSize counts preference pairs; both the chosen and rejected
// sequence of each pair pass through every call (BatchScale 2), and
// training runs over the full batch (MiniBatches 1).
func DPORPCs(actorType string) []ModelFunctionCallDef {
	return []ModelFunctionCallDef{
		{Name: "RefInf", ModelName: "ref", ModelType: actorType,
			InterfaceType: Inference, BatchScale: 2,
			InputData: []string{"pairs"}, OutputData: []string{"ref_logp"}},
		{Name: "ActorTrain", ModelName: "actor", ModelType: actorType,
			InterfaceType: TrainStep, BatchScale: 2, MiniBatches: 1,
			InputData: []string{"pairs", "ref_logp"}},
	}
}

// GRPOGroupSize is the per-prompt response-group size of the GRPO preset
// (8 in the paper).
const GRPOGroupSize = 8

// GRPORPCs returns the GRPO workflow of paper Fig. 16: grouped actor
// generation (GRPOGroupSize sampled responses per prompt) feeding reward and
// reference inference, then actor training over group-normalized advantages
// — GRPO has no critic. BatchSize counts prompts; every call processes
// BatchSize×GRPOGroupSize sequences, which the paper notes makes the
// workload compute-bounded and shrinks ReaL's relative gain.
func GRPORPCs(actorType, rewardType string) []ModelFunctionCallDef {
	return []ModelFunctionCallDef{
		{Name: "ActorGen", ModelName: "actor", ModelType: actorType,
			InterfaceType: Generate, BatchScale: GRPOGroupSize,
			InputData: []string{"prompts"}, OutputData: []string{"seq"}},
		{Name: "RewInf", ModelName: "reward", ModelType: rewardType,
			InterfaceType: Inference, BatchScale: GRPOGroupSize,
			InputData: []string{"seq"}, OutputData: []string{"r"}},
		{Name: "RefInf", ModelName: "ref", ModelType: actorType,
			InterfaceType: Inference, BatchScale: GRPOGroupSize,
			InputData: []string{"seq"}, OutputData: []string{"ref_logp"}},
		{Name: "ActorTrain", ModelName: "actor", ModelType: actorType,
			InterfaceType: TrainStep, BatchScale: GRPOGroupSize,
			InputData: []string{"seq", "r", "ref_logp"}},
	}
}

// ReMaxRPCs returns the ReMax workflow of paper Fig. 16: two independent
// generations (sampled and greedy) feed two reward inferences, and the
// training call consumes both rewards (the greedy one is the
// variance-reduction baseline). The two generation calls have no mutual
// dependency — the paper notes ReaL gains most on ReMax by running them
// concurrently on disjoint device meshes.
func ReMaxRPCs(actorType, rewardType string) []ModelFunctionCallDef {
	return []ModelFunctionCallDef{
		{Name: "SampleGen", ModelName: "actor", ModelType: actorType,
			InterfaceType: Generate,
			InputData:     []string{"prompts"}, OutputData: []string{"sample_seq"}},
		{Name: "GreedyGen", ModelName: "actor", ModelType: actorType,
			InterfaceType: Generate,
			InputData:     []string{"prompts"}, OutputData: []string{"greedy_seq"}},
		{Name: "SampleRew", ModelName: "reward", ModelType: rewardType,
			InterfaceType: Inference,
			InputData:     []string{"sample_seq"}, OutputData: []string{"sample_r"}},
		{Name: "GreedyRew", ModelName: "reward", ModelType: rewardType,
			InterfaceType: Inference,
			InputData:     []string{"greedy_seq"}, OutputData: []string{"greedy_r"}},
		{Name: "ActorTrain", ModelName: "actor", ModelType: actorType,
			InterfaceType: TrainStep, MiniBatches: 1,
			InputData: []string{"sample_seq", "sample_r", "greedy_r"}},
	}
}

// AlgoRPCs resolves an RLHF algorithm name ("ppo", "dpo", "grpo", "remax")
// to its workflow preset. criticType names the scalar-head model used for
// reward/critic roles and is ignored by DPO, which has neither.
func AlgoRPCs(algo, actorType, criticType string) ([]ModelFunctionCallDef, error) {
	switch algo {
	case "ppo":
		return PPORPCs(actorType, criticType), nil
	case "dpo":
		return DPORPCs(actorType), nil
	case "grpo":
		return GRPORPCs(actorType, criticType), nil
	case "remax":
		return ReMaxRPCs(actorType, criticType), nil
	}
	return nil, fmt.Errorf("realhf: unknown algorithm %q (have ppo, dpo, grpo, remax): %w", algo, ErrInvalidConfig)
}

// PaperExperiment returns the paper's base configuration (Appendix A —
// InstructGPT-style: prompt 1024, generation 1024, 8 PPO mini-batches,
// weak-scaled batch of 512 prompts per 16 GPUs when batch is 0) at the
// given scale for the named algorithm. It is the config behind
// cmd/realsearch and cmd/realrun; tune the returned value freely.
func PaperExperiment(algo, actorType, criticType string, nodes, batch int) (ExperimentConfig, error) {
	rpcs, err := AlgoRPCs(algo, actorType, criticType)
	if err != nil {
		return ExperimentConfig{}, err
	}
	if batch == 0 {
		batch = 512 * nodes / 2
		if batch < 32 {
			batch = 32
		}
	}
	return ExperimentConfig{
		Nodes: nodes, BatchSize: batch, PromptLen: 1024, GenLen: 1024,
		MiniBatches: 8, RPCs: rpcs,
	}, nil
}

// parseModelType resolves a ModelType string.
func parseModelType(s string) (model.Config, bool, error) {
	critic := strings.HasSuffix(s, "-critic")
	name := strings.TrimSuffix(s, "-critic")
	name = strings.TrimPrefix(name, "llama")
	cfg, err := model.ByName(name)
	if err != nil {
		return model.Config{}, false, fmt.Errorf("realhf: bad ModelType %q: %w: %w", s, err, ErrInvalidConfig)
	}
	return cfg, critic, nil
}

// buildGraph lowers RPC definitions into the internal dataflow graph.
func buildGraph(c ExperimentConfig) (*dfg.Graph, map[dfg.Role]core.ModelSpec, error) {
	if len(c.RPCs) == 0 {
		return nil, nil, fmt.Errorf("realhf: experiment has no RPCs: %w", ErrInvalidConfig)
	}
	g := dfg.NewGraph("custom")
	models := map[dfg.Role]core.ModelSpec{}

	type produced struct{ node *dfg.Node }
	var prevTrain map[dfg.Role]*dfg.Node

	for iter := 0; iter < c.Iterations; iter++ {
		producers := map[string]produced{}
		var nodes []*dfg.Node
		// First pass: create nodes and record outputs.
		for _, rpc := range c.RPCs {
			cfg, critic, err := parseModelType(rpc.ModelType)
			if err != nil {
				return nil, nil, err
			}
			role := dfg.Role(rpc.ModelName)
			ms, ok := models[role]
			if !ok {
				ms = core.ModelSpec{Role: role, Cfg: cfg, IsCritic: critic}
			} else if ms.Cfg.Name != cfg.Name {
				return nil, nil, fmt.Errorf("realhf: model %q declared with types %q and %q: %w",
					rpc.ModelName, ms.Cfg.Name, cfg.Name, ErrInvalidConfig)
			}
			name := rpc.Name
			if name == "" {
				name = fmt.Sprintf("%s/%s", rpc.ModelName, rpc.InterfaceType)
			}
			var typ dfg.CallType
			work := dfg.Workload{Batch: c.BatchSize, PromptLen: c.PromptLen, GenLen: c.GenLen}
			if rpc.BatchScale > 1 {
				work.Batch *= rpc.BatchScale
			}
			switch rpc.InterfaceType {
			case Generate:
				typ = dfg.Generate
			case Inference:
				typ = dfg.Inference
			case TrainStep:
				typ = dfg.Train
				work.MiniBatches = c.MiniBatches
				if rpc.MiniBatches > 0 {
					work.MiniBatches = rpc.MiniBatches
				}
				ms.Trainable = true
			default:
				return nil, nil, fmt.Errorf("realhf: bad interface type %v: %w", rpc.InterfaceType, ErrInvalidConfig)
			}
			models[role] = ms
			n := g.AddNode(name, role, typ, iter, work)
			nodes = append(nodes, n)
			for _, out := range rpc.OutputData {
				producers[out] = produced{node: n}
			}
		}
		// Second pass: wire data dependencies within the iteration
		// (deduplicated: several named tensors may flow along one edge).
		for i, rpc := range c.RPCs {
			wired := map[int]bool{}
			for _, in := range rpc.InputData {
				p, ok := producers[in]
				if !ok || p.node == nodes[i] || wired[p.node.ID] {
					continue
				}
				wired[p.node.ID] = true
				g.AddEdge(p.node, nodes[i])
			}
		}
		// Parameter-version edges from the previous iteration's training.
		for i, rpc := range c.RPCs {
			role := dfg.Role(rpc.ModelName)
			if prev, ok := prevTrain[role]; ok && prev != nil {
				g.AddEdge(prev, nodes[i])
			}
		}
		prevTrain = map[dfg.Role]*dfg.Node{}
		for i, rpc := range c.RPCs {
			if rpc.InterfaceType == TrainStep {
				prevTrain[dfg.Role(rpc.ModelName)] = nodes[i]
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%w: %w", err, ErrInvalidConfig)
	}
	return g, models, nil
}

// Experiment is a planned RLHF experiment ready to run.
type Experiment struct {
	Config  ExperimentConfig
	Cluster hardware.Cluster
	Plan    *core.Plan
	// Estimate is the planner's prediction for the chosen plan.
	Estimate *estimator.Result
	// SearchTrace records the planner's convergence.
	SearchTrace []search.ProgressPoint
	// SearchStats carries the solver's counters: steps, acceptance,
	// cost-cache hit rate, and per-chain breakdowns for parallel solvers.
	SearchStats search.Stats
	// Cached reports that this experiment was answered from a Planner's
	// plan cache: Plan, Estimate, SearchTrace and SearchStats were carried
	// over from the original solve of an equivalent config, and no search
	// ran for this request.
	Cached bool

	est     *estimator.Estimator
	runOpts *RunOptions
}

// Auto builds the experiment and searches for an efficient execution plan —
// the analogue of the paper's @auto decorator. It is a thin wrapper over
// the package's lazily-initialized default Planner: repeated Auto calls
// share its per-model costers, memoized cost caches and plan cache, and a
// repeated equivalent config is answered from the plan cache without
// re-running search. The planning engine is selected by cfg.Solver via the
// search package's solver registry.
func Auto(cfg ExperimentConfig) (*Experiment, error) {
	return DefaultPlanner().Plan(context.Background(), cfg)
}

// Heuristic builds the same experiment with the pre-training-style symmetric
// 3D plan instead of a searched one (the paper's REAL-Heuristic baseline),
// through the default Planner's shared caches and config validation.
func Heuristic(cfg ExperimentConfig) (*Experiment, error) {
	return DefaultPlanner().Heuristic(cfg)
}

// SavePlan writes the experiment's execution plan to a JSON file. Load it
// later with LoadExperiment (or Planner.LoadExperiment) to run the same
// plan without re-searching — the plan-once-run-many workflow.
func (e *Experiment) SavePlan(path string) error {
	return core.SavePlan(e.Plan, path)
}

// RunOptions configures plan execution — the public mirror of the runtime
// engine's options, plus optional overrides of the analytic cluster model
// for what-if runs (a slower fabric, higher latencies, less HBM).
type RunOptions struct {
	// UseCUDAGraph captures decoding kernels into CUDA graphs (Table 6's
	// ±CUDAGraph ablation).
	UseCUDAGraph bool
	// OverlapComm executes parameter reallocation, data transfer and
	// offload traffic on per-worker communication streams, overlapped with
	// computation (§6). Disabling it serializes every node per device —
	// the baseline side of the ±overlap ablation.
	OverlapComm bool

	// BandwidthScale, LatencyScale and MemoryScale override the cluster
	// model for this run only: interconnect bandwidths (NVLink, RoCE, PCIe),
	// communication latencies (per-hop and collective sync), and device HBM
	// capacity are multiplied by the respective factor. Zero means "leave
	// unchanged"; any other value must be positive and finite — Validate
	// (run by Run, RunWith and every option-accepting entry point) rejects
	// negative, NaN and infinite overrides with a wrapped
	// ErrInvalidRunOptions. Planning is unaffected: searched plans and
	// estimates always describe the unscaled cluster, which is exactly what
	// makes a scaled run drift from its estimate (and what a Trainer's
	// profile feedback then calibrates away).
	BandwidthScale float64
	LatencyScale   float64
	MemoryScale    float64

	// WorkerTimeout bounds how long the runtime waits for an unresponsive
	// worker before abandoning the run with a typed worker-lost error
	// (wrapping ErrWorkerLost) instead of hanging — the failure-detection
	// half of the resilience contract. Zero keeps the default: disabled
	// for one-shot Run/RunWith (whose in-process workers cannot die
	// independently), and a conservative 2s liveness bound for Trainer
	// sessions, whose pools may front real remote fleets. Negative values
	// are rejected by Validate.
	WorkerTimeout time.Duration
}

// Validate rejects malformed option values: each cluster override must be
// either 0 (unset) or a positive, finite multiplier. It is the single
// checker shared by every entry point that accepts RunOptions — Run and
// RunWith at execution time, WithRunOptions/WithTrainRunOptions at
// planning time — so all of them reject a bad value with the same wrapped
// error.
func (o RunOptions) Validate() error {
	for _, f := range []struct {
		name  string
		value float64
	}{
		{"BandwidthScale", o.BandwidthScale},
		{"LatencyScale", o.LatencyScale},
		{"MemoryScale", o.MemoryScale},
	} {
		if f.value == 0 {
			continue
		}
		if math.IsNaN(f.value) || math.IsInf(f.value, 0) || f.value < 0 {
			return fmt.Errorf("realhf: %s = %v: %w (must be 0 to keep the default, or a positive finite multiplier)",
				f.name, f.value, ErrInvalidRunOptions)
		}
	}
	if o.WorkerTimeout < 0 {
		return fmt.Errorf("realhf: WorkerTimeout = %v: %w (must be 0 to keep the default, or a positive duration)",
			o.WorkerTimeout, ErrInvalidRunOptions)
	}
	return nil
}

// scalesCluster reports whether any cluster override is set.
func (o RunOptions) scalesCluster() bool {
	return o.BandwidthScale != 0 || o.LatencyScale != 0 || o.MemoryScale != 0
}

// scaleCluster applies the validated overrides to a copy of the cluster.
func (o RunOptions) scaleCluster(hw hardware.Cluster) hardware.Cluster {
	if s := o.BandwidthScale; s != 0 {
		hw.Net.IntraNodeBandwidth *= s
		hw.Net.InterNodeBandwidth *= s
		hw.Net.PCIeBandwidth *= s
	}
	if s := o.LatencyScale; s != 0 {
		hw.Net.IntraNodeLatency *= s
		hw.Net.InterNodeLatency *= s
		hw.Net.CollectiveSyncOverhead *= s
		hw.Net.PCIeLatency *= s
	}
	if s := o.MemoryScale; s != 0 {
		hw.GPU.MemoryBytes = int64(float64(hw.GPU.MemoryBytes) * s)
	}
	return hw
}

// DefaultRunOptions is the paper's full runtime configuration: CUDA graphs
// and communication overlap both enabled.
func DefaultRunOptions() RunOptions {
	return RunOptions{UseCUDAGraph: true, OverlapComm: true}
}

// RunReport summarizes an executed experiment.
type RunReport struct {
	// IterationTime is the virtual wall time of one RLHF iteration.
	IterationTime float64
	// ThroughputPFLOPs is the paper's end-to-end metric.
	ThroughputPFLOPs float64
	// CallTimes breaks the iteration into per-call durations.
	CallTimes map[string]float64
	// CommTime is the total parameter-reallocation/data-transfer time
	// (spent, whether or not it was hidden behind computation).
	CommTime float64
	// OverlapComm echoes the option the run executed under.
	OverlapComm bool
	// OOM reports whether the plan ran out of device memory.
	OOM bool
	// Errors carries worker diagnostics for failed runs.
	Errors []string
}

// Run executes the experiment's plan on the simulated cluster through the
// runtime engine (master worker + per-GPU model workers). It uses the
// options bound by WithRunOptions at planning time, or DefaultRunOptions
// when none were set.
func (e *Experiment) Run() (*RunReport, error) {
	if e.runOpts != nil {
		return e.RunWith(*e.runOpts)
	}
	return e.RunWith(DefaultRunOptions())
}

// RunWith executes the experiment's plan under explicit run options.
func (e *Experiment) RunWith(opts RunOptions) (*RunReport, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	plan := e.Plan
	if opts.scalesCluster() {
		plan = e.Plan.Clone()
		plan.Cluster = opts.scaleCluster(plan.Cluster)
	}
	rep, err := runtime.Run(plan, runtime.Options{
		UseCUDAGraph:  opts.UseCUDAGraph,
		OverlapComm:   opts.OverlapComm,
		WorkerTimeout: opts.WorkerTimeout,
	})
	if err != nil {
		return nil, err
	}
	out := &RunReport{
		IterationTime: rep.IterTime(),
		CallTimes:     rep.CallTimes,
		CommTime:      rep.CommTimeV,
		OverlapComm:   rep.OverlapComm,
		OOM:           rep.OOM,
		Errors:        rep.Errors,
	}
	if !rep.OOM {
		out.ThroughputPFLOPs = estimator.Throughput(e.Plan, rep.MakespanV)
	}
	return out, nil
}

// PlanTable renders the execution plan in the format of paper Tables 2–5,
// with estimated per-call durations.
func (e *Experiment) PlanTable() string {
	var times map[string]float64
	if e.Estimate != nil {
		times = e.Estimate.CallTimes
	}
	return e.Plan.Table(times)
}
