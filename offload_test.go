package realhf

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// offloadConfig is the memory-constrained public-API workload: 7B trainable
// actor/critic with 34B frozen ref/reward on a single 4-GPU node. Every
// residency-fixed plan overflows the 80 GB devices, so the default search
// can only return an infeasible optimum; only offload-aware search finds a
// feasible plan.
func offloadConfig() ExperimentConfig {
	rpcs := PPORPCs("llama7b", "llama7b-critic")
	for i := range rpcs {
		switch rpcs[i].ModelName {
		case "ref":
			rpcs[i].ModelType = "llama34b"
		case "reward":
			rpcs[i].ModelType = "llama34b-critic"
		}
	}
	return ExperimentConfig{
		Nodes: 1, GPUsPerNode: 4, BatchSize: 64, PromptLen: 256, GenLen: 256,
		MiniBatches: 8, RPCs: rpcs, SearchSteps: 400, Seed: 5,
	}
}

// TestOffloadSearchEndToEnd is the feature's public acceptance path: the
// default search on the constrained workload reports ErrInfeasibleMemory
// (HTTP 422 through serve), the same request with WithOffloadSearch finds a
// feasible plan, the plan survives the save/load round trip, and the runtime
// executes it reproducibly.
func TestOffloadSearchEndToEnd(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	ctx := context.Background()

	def, err := p.Plan(ctx, offloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := def.FeasibleMemory(); !errors.Is(err, ErrInfeasibleMemory) {
		t.Fatalf("default search: %v, want wrapped ErrInfeasibleMemory", err)
	}

	exp, err := p.Plan(ctx, offloadConfig(), WithOffloadSearch())
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.FeasibleMemory(); err != nil {
		t.Fatalf("offload-aware search still infeasible: %v", err)
	}
	if !exp.Config.OffloadSearch {
		t.Error("WithOffloadSearch did not set Config.OffloadSearch")
	}
	offloaded := 0
	for _, n := range exp.Plan.Graph.Nodes {
		a := exp.Plan.Assign[n.Name]
		if a.Offload {
			if exp.Plan.Models[n.Role].Trainable {
				t.Fatalf("plan offloads trainable call %s", n.Name)
			}
			offloaded++
		}
	}
	if offloaded == 0 {
		t.Error("feasible plan parks no calls in host memory")
	}

	// The two requests are distinct problems and distinct plan-cache
	// entries: re-asking without the option must still be infeasible.
	def2, err := p.Plan(ctx, offloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !def2.Cached {
		t.Error("repeated default request missed the plan cache")
	}
	if err := def2.FeasibleMemory(); !errors.Is(err, ErrInfeasibleMemory) {
		t.Error("offload-aware result leaked into the default request's cache entry")
	}

	// Save/load round trip through the public API preserves the offload
	// decisions and the estimate's feasibility.
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := exp.SavePlan(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := p.LoadExperiment(path, offloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Plan.Fingerprint() != exp.Plan.Fingerprint() {
		t.Error("save/load round trip changed the plan fingerprint")
	}
	if err := loaded.FeasibleMemory(); err != nil {
		t.Errorf("loaded plan re-estimated infeasible: %v", err)
	}

	// The runtime executes the offloaded plan deterministically.
	r1, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.IterationTime != r2.IterationTime || r1.ThroughputPFLOPs != r2.ThroughputPFLOPs {
		t.Errorf("runtime not reproducible: %.6f/%.6f vs %.6f/%.6f",
			r1.IterationTime, r1.ThroughputPFLOPs, r2.IterationTime, r2.ThroughputPFLOPs)
	}
	if r1.OOM {
		t.Error("runtime reported OOM for the feasible offloaded plan")
	}
}

// TestHeuristicRejectsOffloadSearch: Heuristic runs no search, so the
// search-shaping option is an explicit error, not a silent no-op.
func TestHeuristicRejectsOffloadSearch(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	if _, err := p.Heuristic(fastConfig(), WithOffloadSearch()); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("Heuristic with WithOffloadSearch: %v, want wrapped ErrInvalidConfig", err)
	}
}
