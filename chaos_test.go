package realhf

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"realhf/internal/runtime"
)

// tcpChaosRig builds Trainer worker fleets served over real TCP sockets
// (runtime.ServeWorkersTCP + NewTCPTransport) with a FaultyTransport
// wrapped around the wire, so worker death is injected under the same
// concurrency the socket transport brings: decoder goroutines per
// connection, the wrapper's pump goroutine, and the master — the topology
// the race detector is pointed at.
type tcpChaosRig struct {
	t  *testing.T
	mu sync.Mutex
	ft *runtime.FaultyTransport
}

func (r *tcpChaosRig) factory(numGPUs int, memoryBytes int64) (*runtime.WorkerPool, error) {
	workers := make([]*runtime.ModelWorker, numGPUs)
	for i := range workers {
		workers[i] = runtime.NewModelWorker(i, memoryBytes)
	}
	addr, stop, err := runtime.ServeWorkersTCP(workers)
	if err != nil {
		return nil, err
	}
	r.t.Cleanup(stop)
	tcp, err := runtime.NewTCPTransport(addr, numGPUs)
	if err != nil {
		return nil, err
	}
	ft := runtime.NewFaultyTransport(tcp)
	r.mu.Lock()
	r.ft = ft
	r.mu.Unlock()
	return runtime.NewWorkerPoolWith(workers, ft), nil
}

func (r *tcpChaosRig) transport() *runtime.FaultyTransport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ft
}

// TestChaosCampaignOverTCP is the end-to-end resilience drill the ISSUE
// prescribes, run under -race in CI: a campaign over a TCP worker fleet
// loses a device mid-iteration, the Trainer shrink-replans onto the
// survivor mesh and finishes the campaign; a checkpoint taken afterwards
// resumes on a fresh planner (over the default in-process transport — the
// virtual timeline is transport-independent) and replays the next
// iteration byte-identically.
func TestChaosCampaignOverTCP(t *testing.T) {
	ctx := context.Background()
	rig := &tcpChaosRig{t: t}
	cfg := trainerConfig()
	cfg.Nodes = 2
	run := DefaultRunOptions()
	run.WorkerTimeout = 500 * time.Millisecond
	schedule := WithGenLenSchedule(rampSchedule)

	tr, err := NewPlanner(ClusterConfig{}).Train(ctx, cfg,
		WithWorkerPoolFactory(rig.factory),
		WithTrainRunOptions(run),
		schedule,
		WithIterationProgress(func(r IterationReport) {
			if r.Iter == 0 {
				// Arm mid-iteration death: gpu 5's third delivery during the
				// next iteration (the two Reset fences, then its first
				// dispatch) finds the worker dead, replies already in flight
				// vanish, and fresh sends fail.
				rig.transport().InjectAfter(5, 3, runtime.FaultKill)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	rep, err := tr.Campaign(ctx, 3)
	if err != nil {
		t.Fatalf("chaos campaign must survive the injected death: %v", err)
	}
	if rep.CompletedIterations != 3 || len(rep.Iterations) != 3 {
		t.Fatalf("campaign completed %d/3 iterations", rep.CompletedIterations)
	}
	if rep.WorkerFailures != 1 {
		t.Fatalf("campaign recorded %d worker failures, want 1", rep.WorkerFailures)
	}
	lossIter := -1
	for _, r := range rep.Iterations {
		if r.WorkerLost {
			if lossIter >= 0 {
				t.Fatalf("two iterations report losses: %d and %d", lossIter, r.Iter)
			}
			lossIter = r.Iter
			if len(r.LostGPUs) != 1 || r.LostGPUs[0] != 5 {
				t.Fatalf("iteration %d lost gpus %v, want [5]", r.Iter, r.LostGPUs)
			}
			if !r.Replanned || !r.Switched || r.ReallocSwitchCost <= 0 {
				t.Fatalf("loss iteration did not adopt a shrink-replan: %+v", r)
			}
			if r.Nodes != 1 {
				t.Fatalf("loss iteration ran on %d nodes, want the 1 survivor", r.Nodes)
			}
		}
	}
	if lossIter <= 0 {
		t.Fatalf("no iteration after the first recorded the injected loss (lossIter %d)", lossIter)
	}
	if st := tr.Stats(); st.Nodes != 1 || st.WorkerFailures != 1 {
		t.Fatalf("post-chaos stats: %+v", st)
	}

	// Durable resume replays the degraded campaign exactly.
	var ckpt bytes.Buffer
	if err := tr.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	cont, err := tr.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewPlanner(ClusterConfig{}).ResumeTrain(ctx, &ckpt, cfg,
		WithTrainRunOptions(run), schedule)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	replay, err := resumed.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Iter != cont.Iter || replay.PlanFingerprint != cont.PlanFingerprint ||
		replay.MakespanV != cont.MakespanV || replay.ReallocSwitchCost != cont.ReallocSwitchCost {
		t.Fatalf("resumed replay diverged:\n got %+v\nwant %+v", replay, cont)
	}
}
