package realhf

import (
	"context"
	"fmt"
	"io"

	"realhf/internal/checkpoint"
	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/runtime"
)

// Checkpoint writes the session's durable state to w in the
// internal/checkpoint wire format: the incumbent plan (SavePlan codec), its
// fingerprint, the profile-feedback calibration, and every campaign counter
// — exactly what Planner.ResumeTrain needs beyond the caller-re-supplied
// config and options to continue the campaign as if the process had never
// died. Checkpoints are deterministic: equal sessions write identical
// bytes. Call it between iterations (a WithIterationProgress callback is
// the natural place); the session lock serializes it against Steps from
// other goroutines.
func (t *Trainer) Checkpoint(w io.Writer) error {
	t.mu.Lock()
	state, err := t.checkpointLocked()
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return checkpoint.Write(w, state)
}

// CheckpointFile durably checkpoints the session to path via
// internal/checkpoint's atomic temp-file-and-rename Save: a crash
// mid-checkpoint leaves the previous checkpoint intact, never a torn file.
func (t *Trainer) CheckpointFile(path string) error {
	t.mu.Lock()
	state, err := t.checkpointLocked()
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return checkpoint.Save(path, state)
}

func (t *Trainer) checkpointLocked() (*checkpoint.State, error) {
	if t.closed {
		return nil, fmt.Errorf("realhf: %w", ErrTrainerClosed)
	}
	planBytes, err := t.plan.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("realhf: checkpoint: marshal plan: %w", err)
	}
	return &checkpoint.State{
		Version:            checkpoint.Version,
		Iteration:          t.iter,
		Replans:            t.replans,
		Switches:           t.switches,
		WorkerFailures:     t.workerFailures,
		SwitchCostV:        t.switchCostV,
		TotalMakespanV:     t.totalV,
		PendingSwitchCostV: t.pendingSwitchCost,
		Drifted:            t.drifted,
		Nodes:              t.base.Nodes,
		PlannedGenLen:      t.plannedCfg.GenLen,
		Plan:               planBytes,
		PlanFingerprint:    t.plan.Fingerprint(),
		Calibration:        t.calib.Factors(),
	}, nil
}

// ResumeTrain reopens a training session from a checkpoint written by
// Trainer.Checkpoint: the caller re-supplies the campaign's config and
// options (neither is serialized — code, schedules and factories cannot
// ride a checkpoint), the checkpoint supplies everything else. The restored
// session is exact: its next Step replans, charges and executes precisely
// as the uninterrupted session's would have — same plan fingerprint, same
// iteration counter, same accounting.
//
// The checkpoint's Nodes count overrides cfg's (shrinks and resizes applied
// before the crash carry over), and its plan must validate against the
// config's cluster shape, model cast and stored fingerprint — any
// disagreement wraps ErrInvalidConfig, because a checkpoint resumed under
// the wrong config can never succeed.
func (p *Planner) ResumeTrain(ctx context.Context, r io.Reader, cfg ExperimentConfig, opts ...TrainOption) (*Trainer, error) {
	state, err := checkpoint.Read(r)
	if err != nil {
		return nil, fmt.Errorf("realhf: resume: %w: %w", err, ErrInvalidConfig)
	}
	return p.resumeTrain(ctx, state, cfg, opts...)
}

// ResumeTrainFile resumes from a checkpoint saved by Trainer.CheckpointFile.
func (p *Planner) ResumeTrainFile(ctx context.Context, path string, cfg ExperimentConfig, opts ...TrainOption) (*Trainer, error) {
	state, err := checkpoint.Load(path)
	if err != nil {
		return nil, fmt.Errorf("realhf: resume %s: %w: %w", path, err, ErrInvalidConfig)
	}
	return p.resumeTrain(ctx, state, cfg, opts...)
}

func (p *Planner) resumeTrain(ctx context.Context, state *checkpoint.State, cfg ExperimentConfig, opts ...TrainOption) (*Trainer, error) {
	// Option and config handling mirrors Train exactly — a resumed session
	// must sit in the same option state the uninterrupted one would.
	o := trainOptions{threshold: defaultReplanThreshold}
	for _, fn := range opts {
		fn(&o)
	}
	if o.threshold <= 0 {
		return nil, fmt.Errorf("realhf: replan threshold %v must be positive: %w", o.threshold, ErrInvalidConfig)
	}
	run := DefaultRunOptions()
	if o.hasRunOpts {
		run = *o.runOpts
	}
	if err := run.Validate(); err != nil {
		return nil, err
	}
	if o.poolFactory == nil {
		o.poolFactory = func(numGPUs int, memoryBytes int64) (*runtime.WorkerPool, error) {
			return runtime.NewWorkerPool(numGPUs, memoryBytes), nil
		}
	}
	wt := run.WorkerTimeout
	if wt == 0 {
		wt = defaultWorkerTimeout
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("realhf: resume cancelled: %w: %w", err, ErrSolveCanceled)
	}
	if state.Nodes <= 0 {
		return nil, fmt.Errorf("realhf: resume: checkpoint records %d nodes: %w", state.Nodes, ErrInvalidConfig)
	}
	if state.PlannedGenLen <= 0 {
		return nil, fmt.Errorf("realhf: resume: checkpoint records planned GenLen %d: %w", state.PlannedGenLen, ErrInvalidConfig)
	}
	// The checkpointed scale wins over the config's: shrinks and resizes
	// applied before the crash are campaign state, not configuration.
	cfg.Nodes = state.Nodes
	cfg = p.merge(cfg).withDefaults()
	cfg.Nodes = state.Nodes
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if run.OverlapComm {
		cfg.PlanForOverlap = true
	}
	if o.genLen != nil {
		g0 := o.genLen(0)
		if g0 <= 0 {
			return nil, fmt.Errorf("realhf: GenLen schedule returned %d for iteration 0: %w", g0, ErrInvalidConfig)
		}
		cfg.GenLen = g0
	}
	for name, f := range state.Calibration {
		if f <= 0 || f != f {
			return nil, fmt.Errorf("realhf: resume: calibration factor %q = %v: %w", name, f, ErrInvalidConfig)
		}
	}
	calib := estimator.NewCalibration(state.Calibration)

	// Rebuild the incumbent plan exactly as LoadExperiment rebuilds a saved
	// one, but against the checkpointed planned workload and under the
	// checkpointed calibration, so the session's problem caches pick up
	// where they left off.
	plannedCfg := cfg
	plannedCfg.GenLen = state.PlannedGenLen
	ps, hw, g, models, err := p.problemFor(plannedCfg, calib)
	if err != nil {
		return nil, err
	}
	loaded, err := core.UnmarshalPlan(state.Plan, g)
	if err != nil {
		return nil, fmt.Errorf("realhf: resume: checkpointed plan: %w: %w", err, ErrInvalidConfig)
	}
	if loaded.Cluster.Nodes != hw.Nodes || loaded.Cluster.GPUsPerNode != hw.GPUsPerNode {
		return nil, fmt.Errorf("realhf: resume: checkpointed plan spans a %d-node×%d-GPU cluster, config describes %d×%d: %w",
			loaded.Cluster.Nodes, loaded.Cluster.GPUsPerNode, hw.Nodes, hw.GPUsPerNode, ErrInvalidConfig)
	}
	for role, ms := range models {
		lm, ok := loaded.Models[role]
		if !ok || lm.Cfg.Name != ms.Cfg.Name {
			return nil, fmt.Errorf("realhf: resume: checkpointed plan disagrees with the config about model %q: %w", role, ErrInvalidConfig)
		}
	}
	plan := core.NewPlan(hw, g, models)
	for name, a := range loaded.Assign {
		plan.Assign[name] = a
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("realhf: resume: checkpointed plan: %w: %w", err, ErrInvalidConfig)
	}
	// Fingerprint integrity: the stored bytes must decode to the very plan
	// that was checkpointed — a mismatch means the file was corrupted or
	// hand-edited, and silently resuming a different plan would poison
	// every downstream comparison.
	if fp := plan.Fingerprint(); fp != state.PlanFingerprint {
		return nil, fmt.Errorf("realhf: resume: plan fingerprint %s does not match checkpointed %s: %w",
			fp, state.PlanFingerprint, ErrInvalidConfig)
	}
	if _, err := ps.cache.Evaluate(ps.est, plan); err != nil {
		return nil, err
	}

	execHW := run.scaleCluster(hw)
	pool, err := o.poolFactory(execHW.NumGPUs(), execHW.GPU.MemoryBytes)
	if err != nil {
		return nil, fmt.Errorf("realhf: worker pool for %d GPUs: %w", execHW.NumGPUs(), err)
	}
	pool.SetFenceTimeout(wt)
	return &Trainer{
		planner:           p,
		base:              cfg,
		opts:              o,
		run:               run,
		pool:              pool,
		hw:                execHW,
		plan:              plan,
		plannedCfg:        plannedCfg,
		calib:             calib,
		drifted:           state.Drifted,
		workerTimeout:     wt,
		iter:              state.Iteration,
		replans:           state.Replans,
		switches:          state.Switches,
		workerFailures:    state.WorkerFailures,
		switchCostV:       state.SwitchCostV,
		totalV:            state.TotalMakespanV,
		pendingSwitchCost: state.PendingSwitchCostV,
	}, nil
}
