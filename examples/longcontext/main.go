// Long-context scenario: the paper's Fig. 8 observation that ReaL's
// advantage over the symmetric heuristic grows with the context length
// (+54% average at 2048 tokens, +81% at 8192). This example runs one size
// combination at both context lengths with a fixed token budget through a
// single Planner session — both problems share the session's per-model
// costers — and prints the gains.
package main

import (
	"context"
	"fmt"
	"log"

	"realhf"
)

func run(planner *realhf.Planner, ctxLen int) (realSpeed, heurSpeed float64) {
	// Fixed token budget: the batch shrinks as the context grows.
	batch := 512 * 2048 / ctxLen
	cfg := realhf.ExperimentConfig{
		Nodes:       2,
		BatchSize:   batch,
		PromptLen:   1024,
		GenLen:      ctxLen - 1024,
		MiniBatches: 8,
		RPCs:        realhf.PPORPCs("llama13b", "llama7b-critic"),
		SearchSteps: 3000,
		Seed:        int64(ctxLen),
	}
	exp, err := planner.Plan(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	heur, err := planner.Heuristic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hrep, err := heur.Run()
	if err != nil {
		log.Fatal(err)
	}
	return rep.ThroughputPFLOPs, hrep.ThroughputPFLOPs
}

func main() {
	log.SetFlags(0)
	planner := realhf.NewPlanner(realhf.ClusterConfig{Nodes: 2})
	fmt.Println("13B actor + 7B critic on 16 GPUs, fixed token budget:")
	fmt.Printf("%8s %12s %12s %8s\n", "Context", "ReaL PF/s", "Heur PF/s", "Gain")
	var gains []float64
	for _, ctxLen := range []int{2048, 8192} {
		r, h := run(planner, ctxLen)
		gain := (r - h) / h
		gains = append(gains, gain)
		fmt.Printf("%8d %12.2f %12.2f %+7.0f%%\n", ctxLen, r, h, 100*gain)
	}
	if gains[1] > gains[0] {
		fmt.Println("\nAs in the paper, the searched plan's advantage grows with context length.")
	}
}
