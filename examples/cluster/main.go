// Distributed runtime: the paper's §6 deployment shape — a master worker
// driving per-GPU model workers over sockets. This example plans the
// symmetric heuristic through the public Planner session, reshards
// generation so the run includes a parameter reallocation, serves 16 model
// workers over real TCP connections with gob-encoded requests, executes the
// plan through the socket transport, and verifies the result matches the
// in-process transport exactly. (The TCP transport and worker types are
// deployment machinery below the public planning API.) It then plans the
// same workload twice more through the session — under serialized and
// overlap-aware search costs — and compares both searched plans on the
// overlapped runtime the cluster actually executes.
package main

import (
	"context"
	"fmt"
	"log"

	"realhf"
	"realhf/internal/core"
	"realhf/internal/estimator"
	"realhf/internal/runtime"
)

func main() {
	log.SetFlags(0)

	planner := realhf.NewPlanner(realhf.ClusterConfig{Nodes: 2})
	cfg := realhf.ExperimentConfig{
		BatchSize: 512, PromptLen: 1024, GenLen: 1024, MiniBatches: 8,
		RPCs: realhf.PPORPCs("llama7b", "llama7b-critic"),
	}
	exp, err := planner.Heuristic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	plan := exp.Plan
	tweakGenerationStrategy(plan)

	// Start one model worker per GPU behind a TCP listener.
	static := estimator.StaticPerGPU(plan)
	workers := make([]*runtime.ModelWorker, exp.Cluster.NumGPUs())
	for i := range workers {
		workers[i] = runtime.NewModelWorker(i, exp.Cluster.GPU.MemoryBytes)
		workers[i].StaticBytes = static[i]
	}
	addr, stop, err := runtime.ServeWorkersTCP(workers)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	fmt.Printf("model workers serving on %s (%d GPUs)\n", addr, len(workers))

	// The master dials every worker and drives the plan over the sockets.
	tr, err := runtime.NewTCPTransport(addr, len(workers))
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	rep, err := runtime.Run(plan, runtime.Options{
		UseCUDAGraph: true, Transport: tr, Workers: workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration over TCP:     %.2fs (comm %.2fs, peak %.1f GB)\n",
		rep.MakespanV, rep.CommTimeV, float64(rep.PeakBytes)/(1<<30))

	// Cross-check: the transport is a carrier, not a model — the in-process
	// run must produce identical virtual timing.
	local, err := runtime.RunDefault(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration in-process:   %.2fs\n", local.MakespanV)
	if diff := rep.MakespanV - local.MakespanV; diff == 0 {
		fmt.Println("transports agree exactly.")
	} else {
		fmt.Printf("transports disagree by %.6fs\n", diff)
	}

	// Overlap-aware search through the same session: the cluster executes
	// overlapped (realhf.DefaultRunOptions), so let the search optimize that
	// schedule instead of the serialized one, and compare both searched
	// plans on the engine that actually runs.
	searchCfg := cfg
	searchCfg.SearchSteps = 800
	serialExp, err := planner.Plan(context.Background(), searchCfg)
	if err != nil {
		log.Fatal(err)
	}
	overlapExp, err := planner.Plan(context.Background(), searchCfg, realhf.WithOverlapAwareSearch(),
		realhf.WithWarmStart(serialExp.Plan))
	if err != nil {
		log.Fatal(err)
	}
	serialRun, err := runtime.RunOverlapped(serialExp.Plan)
	if err != nil {
		log.Fatal(err)
	}
	overlapRun, err := runtime.RunOverlapped(overlapExp.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noverlapped-runtime makespan, serialized-cost search:   %.2fs\n", serialRun.MakespanV)
	fmt.Printf("overlapped-runtime makespan, overlap-aware search:     %.2fs\n", overlapRun.MakespanV)
	// The warm start guarantees the overlap-aware plan wins in *estimator*
	// space; the runtime is a separate simulation, so allow its small
	// disagreement margin before declaring a regression.
	if overlapRun.MakespanV > serialRun.MakespanV*1.01 {
		log.Fatalf("overlap-aware search regressed the overlapped makespan (%.2fs > %.2fs)",
			overlapRun.MakespanV, serialRun.MakespanV)
	}
}

// tweakGenerationStrategy reshards generation to TP=2 so the run includes a
// parameter reallocation over the sockets.
func tweakGenerationStrategy(plan *core.Plan) {
	const gen = "actor/GENERATE"
	a := plan.Assign[gen]
	a.Strategy.TP, a.Strategy.DP, a.Strategy.PP = 2, a.Mesh.NumGPUs()/2, 1
	a.Strategy.MicroBatches = 1
	plan.Assign[gen] = a
	if err := plan.Validate(); err != nil {
		log.Fatal(err)
	}
}
