// Quickstart: open a realhf.Planner session, let ReaL search for an
// execution plan for a PPO experiment (the paper's Fig. 18-style API), run
// one RLHF iteration on the simulated cluster, and show the session's
// plan-once-run-many behavior: an equivalent second request is answered
// from the plan cache without re-running MCMC.
package main

import (
	"context"
	"fmt"
	"log"

	"realhf"
)

func main() {
	log.SetFlags(0)

	// The session owns the cluster model, per-model costers, memoized cost
	// caches and the plan cache; requests inherit its Nodes default.
	planner := realhf.NewPlanner(realhf.ClusterConfig{Nodes: 2})

	// A 7B actor with a 7B-scale critic on two 8-GPU nodes — the paper's
	// small representative case (Tables 4/5).
	cfg := realhf.ExperimentConfig{
		BatchSize:   512,
		PromptLen:   1024,
		GenLen:      1024,
		MiniBatches: 8,
		RPCs:        realhf.PPORPCs("llama7b", "llama7b-critic"),
		SearchSteps: 3000,
		Seed:        1,
	}
	exp, err := planner.Plan(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Searched execution plan:")
	fmt.Println(exp.PlanTable())

	report, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Iteration time:  %.1fs\n", report.IterationTime)
	fmt.Printf("Throughput:      %.2f PFLOP/s\n", report.ThroughputPFLOPs)
	fmt.Printf("Realloc/transfer %.2fs\n", report.CommTime)

	// Compare against the pre-training-inspired symmetric plan.
	heur, err := planner.Heuristic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	heurReport, err := heur.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHeuristic iteration time: %.1fs  (ReaL speedup: %.2fx)\n",
		heurReport.IterationTime, heurReport.IterationTime/report.IterationTime)

	// Re-planning an equivalent config skips the search entirely.
	again, err := planner.Plan(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := planner.Stats()
	fmt.Printf("\nSecond request: cached=%v identical-plan=%v (session: %d requests, %d cache hits)\n",
		again.Cached, again.Plan.Fingerprint() == exp.Plan.Fingerprint(),
		st.PlanRequests, st.PlanCacheHits)
}
