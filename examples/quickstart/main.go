// Quickstart: define a PPO experiment with the paper's Fig. 18-style API,
// let ReaL search for an execution plan, and run one RLHF iteration on the
// simulated cluster.
package main

import (
	"fmt"
	"log"

	"realhf"
)

func main() {
	log.SetFlags(0)

	// A 7B actor with a 7B-scale critic on two 8-GPU nodes — the paper's
	// small representative case (Tables 4/5).
	exp, err := realhf.Auto(realhf.ExperimentConfig{
		Nodes:       2,
		BatchSize:   512,
		PromptLen:   1024,
		GenLen:      1024,
		MiniBatches: 8,
		RPCs:        realhf.PPORPCs("llama7b", "llama7b-critic"),
		SearchSteps: 3000,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Searched execution plan:")
	fmt.Println(exp.PlanTable())

	report, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Iteration time:  %.1fs\n", report.IterationTime)
	fmt.Printf("Throughput:      %.2f PFLOP/s\n", report.ThroughputPFLOPs)
	fmt.Printf("Realloc/transfer %.2fs\n", report.CommTime)

	// Compare against the pre-training-inspired symmetric plan.
	heur, err := realhf.Heuristic(exp.Config)
	if err != nil {
		log.Fatal(err)
	}
	heurReport, err := heur.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHeuristic iteration time: %.1fs  (ReaL speedup: %.2fx)\n",
		heurReport.IterationTime, heurReport.IterationTime/report.IterationTime)
}
