// Example campaign: a multi-iteration RLHF training campaign through a
// long-lived realhf.Trainer session — the execution-side twin of the
// Planner session.
//
// The workload follows the paper's §8 limitation scenario: generation
// lengths drift over training (here a 1024 → 128 ramp as the policy
// sharpens). A frozen plan — chosen once at iteration 0, the only thing the
// one-shot API could express — grows stale; the Trainer replans through the
// Planner's caches whenever the schedule moves the workload (or observed
// per-RPC durations drift from the estimates), pays the §5-priced
// parameter-reallocation cost for every adopted switch, and still finishes
// the campaign sooner. The session then resizes elastically to twice the
// cluster and keeps training.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"realhf"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	cfg := realhf.ExperimentConfig{
		Nodes:     1,
		BatchSize: 128,
		PromptLen: 256,
		RPCs:      realhf.PPORPCs("llama7b", "llama7b-critic"),
		// Step-bounded, seed-fixed searches keep the whole campaign
		// deterministic (and every replan plan-cacheable).
		SearchSteps: 600,
		Seed:        1,
	}
	ramp := func(iter int) int {
		g := 1024 >> iter
		if g < 128 {
			g = 128
		}
		return g
	}
	const iters = 4

	planner := realhf.NewPlanner(realhf.ClusterConfig{})

	// Baseline: the iteration-0 plan pinned for the whole campaign.
	frozenTr, err := planner.Train(ctx, cfg,
		realhf.WithGenLenSchedule(ramp), realhf.WithFrozenPlan())
	if err != nil {
		log.Fatal(err)
	}
	frozen, err := frozenTr.Campaign(ctx, iters)
	if err != nil {
		log.Fatal(err)
	}
	frozenTr.Close()

	// The replanning session, streaming per-iteration reports.
	fmt.Println("Replanning campaign (GenLen 1024 -> 128 over 4 iterations):")
	tr, err := planner.Train(ctx, cfg,
		realhf.WithGenLenSchedule(ramp),
		realhf.WithIterationProgress(func(r realhf.IterationReport) {
			note := "kept plan"
			switch {
			case r.Switched:
				note = fmt.Sprintf("switched plans (+%.3fs realloc)", r.ReallocSwitchCost)
			case r.Replanned:
				note = "replanned, kept incumbent"
			}
			fmt.Printf("  iter %d  gen %4d  %6.2fs  %s\n", r.Iter, r.GenLen, r.MakespanV, note)
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	replan, err := tr.Campaign(ctx, iters)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nFrozen plan total:  %6.2fs\n", frozen.TotalMakespanV)
	fmt.Printf("Replanning total:   %6.2fs (incl. %.3fs switch realloc; %d replans, %d switches)\n",
		replan.TotalMakespanV, replan.SwitchCostV, replan.Replans, replan.Switches)
	fmt.Printf("Campaign speedup:   %+.1f%%\n\n",
		100*(frozen.TotalMakespanV-replan.TotalMakespanV)/frozen.TotalMakespanV)

	// Elastic resize: double the cluster mid-campaign. The session replans
	// onto the new mesh (reusing everything it has profiled so far), charges
	// the reallocation into the new layout, and swaps its worker fleet.
	if err := tr.Resize(ctx, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Resized to 2 nodes; continuing the campaign:")
	for i := 0; i < 2; i++ {
		rep, err := tr.Step(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iter %d  gen %4d  %6.2fs on %d nodes  (switch realloc %.3fs)\n",
			rep.Iter, rep.GenLen, rep.MakespanV, rep.Nodes, rep.ReallocSwitchCost)
	}

	st := tr.Stats()
	fmt.Printf("\nSession: %d iterations, %d replans, %d switches, %.3fs realloc charged, plan %.16s...\n",
		st.Iterations, st.Replans, st.Switches, st.SwitchCostV, st.PlanFingerprint)
	if len(st.CalibrationFactors) > 0 {
		names := make([]string, 0, len(st.CalibrationFactors))
		for name := range st.CalibrationFactors {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("Calibration factors (observed/predicted):")
		for _, name := range names {
			fmt.Printf("  %-16s %.3f\n", name, st.CalibrationFactors[name])
		}
	}
}
