// Planning-as-a-service: stand up the plan server over one shared
// realhf.Planner, fan five identical clients at it concurrently, and show
// the singleflight contract — one solve, five answers — plus per-tenant
// calibration isolation (a calibrated tenant gets its own solve, never
// another tenant's cache entry) and a graceful drain.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"realhf"
	"realhf/internal/serve"
)

func main() {
	log.SetFlags(0)

	// One shared planning session: its plan and cost caches are the
	// cross-tenant shared state.
	planner := realhf.NewPlanner(realhf.ClusterConfig{Nodes: 2})
	srv, err := serve.New(serve.Config{Planner: planner, MaxConcurrentSolves: 2})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("plan server listening on %s\n\n", base)

	cfg := realhf.ExperimentConfig{
		BatchSize:   512,
		PromptLen:   1024,
		GenLen:      1024,
		MiniBatches: 8,
		RPCs:        realhf.PPORPCs("llama7b", "llama7b-critic"),
		SearchSteps: 1500,
		Seed:        1,
	}

	// Five tenants ask for the same plan at the same time: the server runs
	// one MCMC solve and fans the answer out to every waiter.
	const clients = 5
	responses := make([]*serve.PlanResponse, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := serve.NewClient(base, serve.WithTenant(fmt.Sprintf("team-%d", i)))
			resp, err := c.Plan(context.Background(), cfg, nil)
			if err != nil {
				log.Fatal(err)
			}
			responses[i] = resp
		}(i)
	}
	wg.Wait()

	coalesced := 0
	for _, r := range responses {
		if r.Coalesced {
			coalesced++
		}
	}
	stats, err := serve.NewClient(base).Stats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d identical concurrent requests -> %d solve(s), %d coalesced, %d cache hit(s)\n",
		clients, stats.Server.Solves, stats.Server.Coalesced, stats.Server.CacheHits)
	fmt.Printf("all plans identical: %v (fingerprint %s)\n",
		allSameFingerprint(responses), responses[0].Fingerprint)
	fmt.Printf("predicted iteration time: %.1fs\n\n", responses[0].Estimate.TimeCostSeconds)

	// A replay is a plan-cache hit: answered inline, no solve, no queueing.
	replay, err := serve.NewClient(base).Plan(context.Background(), cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: cached=%v coalesced=%v\n\n", replay.Cached, replay.Coalesced)

	// A tenant whose profiling says generation runs 1.3x slower than the
	// cost model sends its calibration factors. The calibration fingerprint
	// joins the cache and coalescing keys, so this request gets its own
	// solve — tenant A's calibrated timings can never answer tenant B.
	calibrated, err := serve.NewClient(base, serve.WithTenant("team-calibrated")).
		Plan(context.Background(), cfg, map[string]float64{"actor/GENERATE": 1.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated tenant: cached=%v, predicted %.1fs (uncalibrated %.1fs)\n\n",
		calibrated.Cached, calibrated.Estimate.TimeCostSeconds, responses[0].Estimate.TimeCostSeconds)

	// The plan bytes rebuild a runnable Experiment against a local session.
	exp, err := replay.Experiment(planner)
	if err != nil {
		log.Fatal(err)
	}
	report, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuilt experiment ran: %.1fs/iteration (predicted %.1fs)\n\n",
		report.IterationTime, replay.Estimate.TimeCostSeconds)

	// Graceful drain: in-flight solves finish, new requests get 503.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	httpSrv.Shutdown(ctx)
	fmt.Println("server drained cleanly")
}

func allSameFingerprint(rs []*serve.PlanResponse) bool {
	for _, r := range rs {
		if r.Fingerprint != rs[0].Fingerprint {
			return false
		}
	}
	return true
}
