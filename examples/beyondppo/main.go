// Beyond PPO: ReaL accelerates any RLHF algorithm whose workflow is a DAG of
// generation/inference/training calls (paper §4, Fig. 16). This example
// declares ReMax — two independent generations (sampled and greedy) feeding
// two reward inferences and one training call — through the public API, and
// shows that the planner runs the two generations concurrently on disjoint
// device meshes.
package main

import (
	"fmt"
	"log"

	"realhf"
)

func main() {
	log.SetFlags(0)

	remax := []realhf.ModelFunctionCallDef{
		{Name: "SampleGen", ModelName: "actor", ModelType: "llama7b",
			InterfaceType: realhf.Generate,
			InputData:     []string{"prompts"}, OutputData: []string{"sample_seq"}},
		{Name: "GreedyGen", ModelName: "actor", ModelType: "llama7b",
			InterfaceType: realhf.Generate,
			InputData:     []string{"prompts"}, OutputData: []string{"greedy_seq"}},
		{Name: "SampleRew", ModelName: "reward", ModelType: "llama7b-critic",
			InterfaceType: realhf.Inference,
			InputData:     []string{"sample_seq"}, OutputData: []string{"sample_r"}},
		{Name: "GreedyRew", ModelName: "reward", ModelType: "llama7b-critic",
			InterfaceType: realhf.Inference,
			InputData:     []string{"greedy_seq"}, OutputData: []string{"greedy_r"}},
		{Name: "ActorTrain", ModelName: "actor", ModelType: "llama7b",
			InterfaceType: realhf.TrainStep,
			InputData:     []string{"sample_seq", "sample_r", "greedy_r"}},
	}

	cfg := realhf.ExperimentConfig{
		Nodes:       2,
		BatchSize:   256,
		PromptLen:   1024,
		GenLen:      1024,
		RPCs:        remax,
		SearchSteps: 3000,
		Seed:        42,
	}
	exp, err := realhf.Auto(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ReMax execution plan (note the two generation calls):")
	fmt.Println(exp.PlanTable())

	rep, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	heur, err := realhf.Heuristic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hrep, err := heur.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReaL:      %.1fs/iter  (%.2f PFLOP/s)\n", rep.IterationTime, rep.ThroughputPFLOPs)
	fmt.Printf("Heuristic: %.1fs/iter  (%.2f PFLOP/s)\n", hrep.IterationTime, hrep.ThroughputPFLOPs)
	fmt.Printf("Speedup:   %.2fx — ReMax benefits most from concurrent generations (paper Fig. 16)\n",
		hrep.IterationTime/rep.IterationTime)

	a := exp.Plan.Assign["SampleGen"]
	b := exp.Plan.Assign["GreedyGen"]
	if !a.Mesh.Overlaps(b.Mesh) {
		fmt.Println("\nThe two generations were placed on disjoint meshes and run concurrently.")
	}
}
