// Beyond PPO: ReaL accelerates any RLHF algorithm whose workflow is a DAG of
// generation/inference/training calls (paper §4, Fig. 16). This example
// plans ReMax — two independent generations (sampled and greedy) feeding
// two reward inferences and one training call — through the public
// realhf.ReMaxRPCs preset and a Planner session, streams the search's
// convergence with WithProgress, and shows that the planner runs the two
// generations concurrently on disjoint device meshes.
package main

import (
	"context"
	"fmt"
	"log"

	"realhf"
	"realhf/internal/search"
)

func main() {
	log.SetFlags(0)

	cfg := realhf.ExperimentConfig{
		Nodes:       2,
		BatchSize:   256,
		PromptLen:   1024,
		GenLen:      1024,
		RPCs:        realhf.ReMaxRPCs("llama7b", "llama7b-critic"),
		SearchSteps: 3000,
		Seed:        42,
	}
	planner := realhf.NewPlanner(realhf.ClusterConfig{})

	// WithProgress streams best-cost improvements while MCMC runs.
	improvements := 0
	exp, err := planner.Plan(context.Background(), cfg,
		realhf.WithProgress(func(pt search.ProgressPoint) {
			improvements++
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReMax execution plan (%d progress points; note the two generation calls):\n",
		improvements)
	fmt.Println(exp.PlanTable())

	rep, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	heur, err := planner.Heuristic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hrep, err := heur.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReaL:      %.1fs/iter  (%.2f PFLOP/s)\n", rep.IterationTime, rep.ThroughputPFLOPs)
	fmt.Printf("Heuristic: %.1fs/iter  (%.2f PFLOP/s)\n", hrep.IterationTime, hrep.ThroughputPFLOPs)
	fmt.Printf("Speedup:   %.2fx — ReMax benefits most from concurrent generations (paper Fig. 16)\n",
		hrep.IterationTime/rep.IterationTime)

	a := exp.Plan.Assign["SampleGen"]
	b := exp.Plan.Assign["GreedyGen"]
	if !a.Mesh.Overlaps(b.Mesh) {
		fmt.Println("\nThe two generations were placed on disjoint meshes and run concurrently.")
	}
}
